// Package docscheck lints the godoc coverage of the packages that form
// fragmd's user-facing and scheduler API: every exported identifier —
// and the package clauses themselves — must carry a doc comment. The
// check is a plain go/ast walk, so it runs as an ordinary test with no
// external tooling.
package docscheck

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// targets are the packages whose exported API the lint covers,
// relative to this directory. The facade (repo root) and the scheduler
// core are the surfaces library users and backend authors read first.
var targets = []string{
	"../../",        // package fragmd: the public facade
	"../coord",      // scheduling policy core (backend authors)
	"../resilience", // checkpoint/restart API
	"../netcoord",   // distributed backend (operators)
	"../sched",      // live engine options and executor seam
	"../serve",      // trajectory-server API (service operators)
}

// TestExportedAPIDocumented fails for every exported top-level
// declaration (func, method, type, var, const) without a doc comment,
// and for packages without a package comment.
func TestExportedAPIDocumented(t *testing.T) {
	for _, dir := range targets {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for name, pkg := range pkgs {
			if strings.HasSuffix(name, "_test") {
				continue
			}
			checkPackage(t, fset, name, pkg)
		}
	}
}

func checkPackage(t *testing.T, fset *token.FileSet, name string, pkg *ast.Package) {
	t.Helper()
	hasPkgDoc := false
	for _, f := range pkg.Files {
		if f.Doc != nil {
			hasPkgDoc = true
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() || !exportedRecv(d) {
					continue
				}
				if d.Doc == nil {
					report(t, fset, d.Pos(), name, "func/method "+d.Name.Name)
				}
			case *ast.GenDecl:
				checkGenDecl(t, fset, name, d)
			}
		}
	}
	if !hasPkgDoc {
		t.Errorf("package %s has no package comment", name)
	}
}

// exportedRecv reports whether a method's receiver type is exported
// (methods on unexported types are not part of the public API).
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true // plain function
	}
	typ := d.Recv.List[0].Type
	for {
		switch tt := typ.(type) {
		case *ast.StarExpr:
			typ = tt.X
		case *ast.IndexExpr:
			typ = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}

func checkGenDecl(t *testing.T, fset *token.FileSet, pkgName string, d *ast.GenDecl) {
	t.Helper()
	switch d.Tok {
	case token.TYPE:
		for _, spec := range d.Specs {
			s := spec.(*ast.TypeSpec)
			if !s.Name.IsExported() {
				continue
			}
			if d.Doc == nil && s.Doc == nil {
				report(t, fset, s.Pos(), pkgName, "type "+s.Name.Name)
			}
		}
	case token.VAR, token.CONST:
		// A doc comment on the grouped decl covers the whole block;
		// otherwise each exported spec needs its own.
		for _, spec := range d.Specs {
			s := spec.(*ast.ValueSpec)
			for _, n := range s.Names {
				if !n.IsExported() {
					continue
				}
				if d.Doc == nil && s.Doc == nil && s.Comment == nil {
					report(t, fset, n.Pos(), pkgName, d.Tok.String()+" "+n.Name)
				}
			}
		}
	}
}

func report(t *testing.T, fset *token.FileSet, pos token.Pos, pkgName, what string) {
	t.Helper()
	p := fset.Position(pos)
	t.Errorf("%s:%d: exported %s in package %s has no doc comment",
		filepath.Base(p.Filename), p.Line, what, pkgName)
}
