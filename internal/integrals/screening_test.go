package integrals

import (
	"math"
	"testing"

	"github.com/fragmd/fragmd/internal/basis"
	"github.com/fragmd/fragmd/internal/molecule"
)

// farDimer returns two H2 molecules separated far enough that every
// cross-molecule shell pair is negligible — guaranteed prey for the
// Schwarz screen at loose thresholds.
func farDimer(t *testing.T) (*molecule.Geometry, *basis.Set) {
	t.Helper()
	g := molecule.New()
	g.AddAtom(1, 0, 0, 0)
	g.AddAtom(1, 0, 0, 1.4)
	g.AddAtom(1, 0, 0, 14.0)
	g.AddAtom(1, 0, 0, 15.4)
	bs, err := basis.Build("sto-3g", g)
	if err != nil {
		t.Fatal(err)
	}
	return g, bs
}

// Screened three-center integrals must converge monotonically to the
// unscreened tensor as the threshold tightens, with every deviation
// bounded by the Schwarz estimate of what was dropped.
func TestThreeCenterScreenedConvergesToUnscreened(t *testing.T) {
	g, bs := farDimer(t)
	aux := basis.BuildAux(bs, g, basis.AuxOptions{})
	exact := ThreeCenterScreened(bs, aux, nil, 0) // screening disabled
	sw := SchwarzShellPairs(bs)

	maxdiff := func(a, b []float64) float64 {
		var m float64
		for i := range a {
			if d := math.Abs(a[i] - b[i]); d > m {
				m = d
			}
		}
		return m
	}

	prev := math.Inf(1)
	dropped := false
	for _, thresh := range []float64{1e-4, 1e-6, 1e-8, 1e-10} {
		scr := ThreeCenterScreened(bs, aux, sw, thresh)
		d := maxdiff(scr.Data, exact.Data)
		// Each skipped shell batch satisfies |(μν|P)| ≤ Q_μν·Q_P <
		// thresh elementwise (Cauchy–Schwarz), so deviations cannot
		// exceed the threshold by more than roundoff.
		if d > 2*thresh {
			t.Errorf("thresh %.0e: screened deviation %.3e exceeds Schwarz bound", thresh, d)
		}
		if d > prev+1e-15 {
			t.Errorf("thresh %.0e: deviation %.3e not monotone (previous %.3e)", thresh, d, prev)
		}
		if d > 0 {
			dropped = true
		}
		prev = d
	}
	if !dropped {
		t.Error("screening dropped nothing even at 1e-4 on a far-separated dimer — screen inactive?")
	}
}

// ThreeCenter (no screen arguments) must agree exactly with the
// explicitly disabled screened path: both are the reference tensor.
func TestThreeCenterDefaultIsUnscreened(t *testing.T) {
	g, bs := farDimer(t)
	aux := basis.BuildAux(bs, g, basis.AuxOptions{})
	a := ThreeCenter(bs, aux)
	b := ThreeCenterScreened(bs, aux, nil, 0)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("ThreeCenter and disabled ThreeCenterScreened differ at %d", i)
		}
	}
	// A negative threshold also disables the screen even with bounds.
	sw := SchwarzShellPairs(bs)
	c := ThreeCenterScreened(bs, aux, sw, -1)
	for i := range a.Data {
		if a.Data[i] != c.Data[i] {
			t.Fatalf("negative threshold did not disable screening at %d", i)
		}
	}
}

// SchwarzAux bounds must be strictly positive and actually bound the
// three-center integrals: |(μν|P)| ≤ Q_μν · Q_P.
func TestSchwarzAuxBoundsThreeCenter(t *testing.T) {
	g, bs := farDimer(t)
	aux := basis.BuildAux(bs, g, basis.AuxOptions{})
	qaux := SchwarzAux(aux)
	if len(qaux) != len(aux.Shells) {
		t.Fatalf("SchwarzAux length %d != aux shell count %d", len(qaux), len(aux.Shells))
	}
	for ip, q := range qaux {
		if !(q > 0) {
			t.Fatalf("SchwarzAux[%d] = %g, want > 0", ip, q)
		}
	}
	sw := SchwarzShellPairs(bs)
	t3 := ThreeCenter(bs, aux)
	for ip, shp := range aux.Shells {
		for i, shi := range bs.Shells {
			for j, shj := range bs.Shells {
				bound := sw.At(i, j) * qaux[ip]
				for p := shp.Start; p < shp.Start+shp.NCart(); p++ {
					for mu := shi.Start; mu < shi.Start+shi.NCart(); mu++ {
						for nu := shj.Start; nu < shj.Start+shj.NCart(); nu++ {
							if v := math.Abs(t3.At(p, mu, nu)); v > bound*(1+1e-10)+1e-14 {
								t.Fatalf("Schwarz bound violated: |(%d %d|%d)| = %.3e > %.3e",
									mu, nu, p, v, bound)
							}
						}
					}
				}
			}
		}
	}
}
