package integrals

import "math"

// eTable holds the 1D Hermite expansion coefficients E_t^{ij} of a
// primitive Gaussian product for 0 ≤ i ≤ imax, 0 ≤ j ≤ jmax, 0 ≤ t ≤ i+j.
type eTable [][][]float64

// newETable computes the Hermite expansion coefficients for exponents
// a, b and the 1D center separation ab = A−B via the standard MD
// transfer recurrences.
func newETable(imax, jmax int, a, b, ab float64) eTable {
	p := a + b
	mu := a * b / p
	xpa := -b / p * ab // P − A
	xpb := a / p * ab  // P − B
	inv2p := 1 / (2 * p)

	e := make(eTable, imax+1)
	for i := range e {
		e[i] = make([][]float64, jmax+1)
		for j := range e[i] {
			e[i][j] = make([]float64, i+j+1)
		}
	}
	e[0][0][0] = math.Exp(-mu * ab * ab)
	// Raise i with j = 0.
	for i := 0; i < imax; i++ {
		src := e[i][0]
		dst := e[i+1][0]
		for t := 0; t <= i+1; t++ {
			var v float64
			if t > 0 {
				v += inv2p * src[t-1]
			}
			if t <= i {
				v += xpa * src[t]
			}
			if t+1 <= i {
				v += float64(t+1) * src[t+1]
			}
			dst[t] = v
		}
	}
	// Raise j for every i.
	for i := 0; i <= imax; i++ {
		for j := 0; j < jmax; j++ {
			src := e[i][j]
			dst := e[i][j+1]
			for t := 0; t <= i+j+1; t++ {
				var v float64
				if t > 0 {
					v += inv2p * src[t-1]
				}
				if t <= i+j {
					v += xpb * src[t]
				}
				if t+1 <= i+j {
					v += float64(t+1) * src[t+1]
				}
				dst[t] = v
			}
		}
	}
	return e
}

// rCube holds Hermite Coulomb integrals R⁰_{tuv} for t+u+v ≤ tmax,
// addressed r[t][u][v].
type rCube [][][]float64

// newRCube evaluates R⁰_{tuv}(α, Δ) for t+u+v ≤ tmax where Δ = P−Q.
// Levels n = tmax … 0 are built downward; level n only needs entries
// with t+u+v ≤ tmax−n.
func newRCube(tmax int, alpha float64, dx, dy, dz float64) rCube {
	r2 := dx*dx + dy*dy + dz*dz
	f := make([]float64, tmax+1)
	boys(tmax, alpha*r2, f)

	alloc := func() rCube {
		c := make(rCube, tmax+1)
		for t := range c {
			c[t] = make([][]float64, tmax+1-t)
			for u := range c[t] {
				c[t][u] = make([]float64, tmax+1-t-u)
			}
		}
		return c
	}
	cur := alloc()
	var prev rCube
	for n := tmax; n >= 0; n-- {
		lim := tmax - n
		for t := 0; t <= lim; t++ {
			for u := 0; u <= lim-t; u++ {
				for v := 0; v <= lim-t-u; v++ {
					var val float64
					switch {
					case t == 0 && u == 0 && v == 0:
						val = math.Pow(-2*alpha, float64(n)) * f[n]
					case t > 0:
						if t >= 2 {
							val = float64(t-1) * prev[t-2][u][v]
						}
						val += dx * prev[t-1][u][v]
					case u > 0:
						if u >= 2 {
							val = float64(u-1) * prev[t][u-2][v]
						}
						val += dy * prev[t][u-1][v]
					default:
						if v >= 2 {
							val = float64(v-1) * prev[t][u][v-2]
						}
						val += dz * prev[t][u][v-1]
					}
					cur[t][u][v] = val
				}
			}
		}
		if n > 0 {
			prev, cur = cur, prev
			if cur == nil {
				cur = alloc()
			}
		}
	}
	return cur
}
