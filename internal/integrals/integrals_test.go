package integrals

import (
	"math"
	"math/rand"
	"testing"

	"github.com/fragmd/fragmd/internal/basis"
	"github.com/fragmd/fragmd/internal/linalg"
	"github.com/fragmd/fragmd/internal/molecule"
)

// --- Boys function -------------------------------------------------------

func TestBoysF0AgainstErf(t *testing.T) {
	// F_0(x) = ½ √(π/x) erf(√x)
	for _, x := range []float64{1e-14, 1e-6, 0.1, 0.5, 1, 3, 10, 30, 34.9, 35.1, 50, 200} {
		out := make([]float64, 1)
		boys(0, x, out)
		var want float64
		if x < 1e-12 {
			want = 1
		} else {
			want = 0.5 * math.Sqrt(math.Pi/x) * math.Erf(math.Sqrt(x))
		}
		if math.Abs(out[0]-want) > 1e-12 {
			t.Errorf("F0(%g) = %.15f, want %.15f", x, out[0], want)
		}
	}
}

func TestBoysRecursionConsistency(t *testing.T) {
	// Upward recursion identity: F_{m+1} = ((2m+1) F_m − e^{−x}) / (2x).
	for _, x := range []float64{0.3, 2, 8, 20, 34, 36, 80} {
		out := make([]float64, 9)
		boys(8, x, out)
		for m := 0; m < 8; m++ {
			want := (float64(2*m+1)*out[m] - math.Exp(-x)) / (2 * x)
			if math.Abs(out[m+1]-want) > 1e-11*math.Max(1, out[m]) {
				t.Errorf("x=%g m=%d: recursion violated: %g vs %g", x, m, out[m+1], want)
			}
		}
	}
}

func TestBoysDerivativeIdentity(t *testing.T) {
	// dF_m/dx = −F_{m+1}, checked by central differences.
	h := 1e-6
	for _, x := range []float64{0.5, 4, 15} {
		fp := make([]float64, 4)
		fm := make([]float64, 4)
		f := make([]float64, 5)
		boys(3, x+h, fp)
		boys(3, x-h, fm)
		boys(4, x, f)
		for m := 0; m <= 3; m++ {
			fd := (fp[m] - fm[m]) / (2 * h)
			if math.Abs(fd+f[m+1]) > 1e-8 {
				t.Errorf("x=%g m=%d: dF/dx=%g, −F_{m+1}=%g", x, m, fd, -f[m+1])
			}
		}
	}
}

// --- helper geometries/bases ---------------------------------------------

// h2Basis builds the Szabo–Ostlund H2/STO-3G system: two H atoms at
// separation 1.4 Bohr.
func h2() (*molecule.Geometry, *basis.Set) {
	g := molecule.New()
	g.AddAtom(1, 0, 0, 0)
	g.AddAtom(1, 0, 0, 1.4)
	bs, err := basis.Build("sto-3g", g)
	if err != nil {
		panic(err)
	}
	return g, bs
}

func waterSTO() (*molecule.Geometry, *basis.Set) {
	g := molecule.Water()
	bs, err := basis.Build("sto-3g", g)
	if err != nil {
		panic(err)
	}
	return g, bs
}

// --- one-electron anchors (Szabo & Ostlund, Table 3.5 / §3.5.2) ----------

func TestH2OneElectronAnchors(t *testing.T) {
	g, bs := h2()
	s := Overlap(bs)
	if math.Abs(s.At(0, 0)-1) > 1e-9 || math.Abs(s.At(1, 1)-1) > 1e-9 {
		t.Fatalf("diagonal overlap not 1: %g %g", s.At(0, 0), s.At(1, 1))
	}
	if math.Abs(s.At(0, 1)-0.6593) > 2e-4 {
		t.Errorf("S12 = %.4f, want 0.6593", s.At(0, 1))
	}
	k := Kinetic(bs)
	if math.Abs(k.At(0, 0)-0.7600) > 2e-4 {
		t.Errorf("T11 = %.4f, want 0.7600", k.At(0, 0))
	}
	if math.Abs(k.At(0, 1)-0.2365) > 2e-4 {
		t.Errorf("T12 = %.4f, want 0.2365", k.At(0, 1))
	}
	v := Nuclear(bs, g)
	// V11 (both nuclei): −1.2266 + −0.6538 = −1.8804 (S&O).
	if math.Abs(v.At(0, 0)-(-1.8804)) > 5e-4 {
		t.Errorf("V11 = %.4f, want −1.8804", v.At(0, 0))
	}
}

func TestKineticSinglePrimitive(t *testing.T) {
	// ⟨T⟩ of a normalised s primitive with exponent a is 3a/2.
	for _, a := range []float64{0.5, 1.24, 7.7} {
		sh := basis.NewCustomShell(0, [3]float64{0.3, -0.2, 0.9}, 0, []float64{a}, []float64{1})
		bs := basis.FromShells("test", 1, sh)
		k := Kinetic(bs)
		if math.Abs(k.At(0, 0)-1.5*a) > 1e-10 {
			t.Errorf("a=%g: T=%g, want %g", a, k.At(0, 0), 1.5*a)
		}
	}
}

func TestNuclearSinglePrimitiveOnCenter(t *testing.T) {
	// ⟨1/r⟩ of a normalised s primitive about its own center = 2√(2a/π).
	g := molecule.New()
	g.AddAtom(1, 0, 0, 0)
	a := 1.7
	sh := basis.NewCustomShell(0, [3]float64{0, 0, 0}, 0, []float64{a}, []float64{1})
	bs := basis.FromShells("test", 1, sh)
	v := Nuclear(bs, g)
	want := -2 * math.Sqrt(2*a/math.Pi)
	if math.Abs(v.At(0, 0)-want) > 1e-10 {
		t.Errorf("V = %.10f, want %.10f", v.At(0, 0), want)
	}
}

func TestOverlapOrthonormalDiagonal(t *testing.T) {
	g := molecule.Water()
	for _, name := range []string{"sto-3g", "dzp"} {
		bs, err := basis.Build(name, g)
		if err != nil {
			t.Fatal(err)
		}
		s := Overlap(bs)
		for i := 0; i < bs.N; i++ {
			if math.Abs(s.At(i, i)-1) > 1e-9 {
				t.Fatalf("%s: S[%d,%d] = %.12f, want 1", name, i, i, s.At(i, i))
			}
		}
		// Symmetry and positive definiteness.
		for i := 0; i < bs.N; i++ {
			for j := 0; j < bs.N; j++ {
				if math.Abs(s.At(i, j)-s.At(j, i)) > 1e-12 {
					t.Fatalf("%s: S not symmetric", name)
				}
			}
		}
		if _, err := linalg.Cholesky(s); err != nil {
			t.Fatalf("%s: S not positive definite: %v", name, err)
		}
	}
}

// --- two-electron anchors --------------------------------------------------

func TestH2TwoElectronAnchors(t *testing.T) {
	_, bs := h2()
	eri := FourCenterAll(bs)
	n := bs.N
	get := func(i, j, k, l int) float64 { return eri[ERIIndex(n, i, j, k, l)] }
	checks := []struct {
		i, j, k, l int
		want       float64
		name       string
	}{
		{0, 0, 0, 0, 0.7746, "(11|11)"},
		{0, 0, 1, 1, 0.5697, "(11|22)"},
		{1, 0, 0, 0, 0.4441, "(21|11)"},
		{1, 0, 1, 0, 0.2970, "(21|21)"},
	}
	for _, c := range checks {
		if math.Abs(get(c.i, c.j, c.k, c.l)-c.want) > 2e-4 {
			t.Errorf("%s = %.4f, want %.4f", c.name, get(c.i, c.j, c.k, c.l), c.want)
		}
	}
	// Permutational symmetry of the full tensor.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				for l := 0; l < n; l++ {
					v := get(i, j, k, l)
					for _, w := range []float64{get(j, i, k, l), get(i, j, l, k), get(k, l, i, j)} {
						if math.Abs(v-w) > 1e-11 {
							t.Fatalf("permutational symmetry violated at %d%d%d%d", i, j, k, l)
						}
					}
				}
			}
		}
	}
}

func TestTwoCenterAnalyticSS(t *testing.T) {
	// (P|Q) for two normalised s primitives a, b at distance R:
	// N_a N_b (π/a)^{3/2} (π/b)^{3/2} erf(√α R)/R, α = ab/(a+b).
	a, b := 0.8, 1.9
	r := 2.3
	shA := basis.NewCustomShell(0, [3]float64{0, 0, 0}, 0, []float64{a}, []float64{1})
	shB := basis.NewCustomShell(1, [3]float64{0, 0, r}, 0, []float64{b}, []float64{1})
	aux := basis.FromShells("test", 2, shA, shB)
	m := TwoCenter(aux)
	na := math.Pow(2*a/math.Pi, 0.75)
	nb := math.Pow(2*b/math.Pi, 0.75)
	alpha := a * b / (a + b)
	want := na * nb * math.Pow(math.Pi/a, 1.5) * math.Pow(math.Pi/b, 1.5) * math.Erf(math.Sqrt(alpha)*r) / r
	if math.Abs(m.At(0, 1)-want) > 1e-10 {
		t.Errorf("(P|Q) = %.12f, want %.12f", m.At(0, 1), want)
	}
	// Metric must be symmetric positive definite.
	if _, err := linalg.Cholesky(m); err != nil {
		t.Errorf("metric not SPD: %v", err)
	}
}

func TestThreeCenterMatchesFourCenterLimit(t *testing.T) {
	// (μν|P) computed by the 3-center path must equal the 4-center
	// integral where one ket function is an s primitive with tiny
	// exponent... instead, exact check: (μν|P) with P an s primitive
	// equals (μν|PP') where the ket pair is the same primitive split —
	// simplest exact identity: compare against a 4-center integral with
	// the ket pair being (P, unit-s-at-same-center with exponent 0⁺) is
	// ill-conditioned. Use instead the Coulomb metric consistency:
	// (P|Q) from TwoCenter must equal the 3-center integral where the
	// bra pair is a single aux function against a dummy "1" — skipped;
	// here we verify (μν|P) symmetry and RI reconstruction quality.
	g, bs := waterSTO()
	aux := basis.BuildAux(bs, g, basis.AuxOptions{})
	t3 := ThreeCenter(bs, aux)
	for p := 0; p < aux.N; p += 7 {
		for mu := 0; mu < bs.N; mu++ {
			for nu := 0; nu < bs.N; nu++ {
				if math.Abs(t3.At(p, mu, nu)-t3.At(p, nu, mu)) > 1e-12 {
					t.Fatalf("(μν|P) not symmetric in μν")
				}
			}
		}
	}
	// RI reconstruction: (μν|λσ)_RI = Σ_PQ (μν|P) J⁻¹_PQ (Q|λσ) should
	// approximate the exact integrals.
	j := TwoCenter(aux)
	jinv12 := linalg.InvSqrtSym(j, 1e-10)
	b := linalg.NewTensor3(aux.N, bs.N, bs.N)
	linalg.Gemm(linalg.NoTrans, linalg.NoTrans, 1, jinv12, t3.Flatten(), 0, b.Flatten())
	eri := FourCenterAll(bs)
	var maxErr, sumErr float64
	cnt := 0
	for mu := 0; mu < bs.N; mu++ {
		for nu := 0; nu < bs.N; nu++ {
			for la := 0; la < bs.N; la++ {
				for si := 0; si < bs.N; si++ {
					var ri float64
					for p := 0; p < aux.N; p++ {
						ri += b.At(p, mu, nu) * b.At(p, la, si)
					}
					err := math.Abs(ri - eri[ERIIndex(bs.N, mu, nu, la, si)])
					sumErr += err
					cnt++
					if err > maxErr {
						maxErr = err
					}
				}
			}
		}
	}
	if maxErr > 0.02 {
		t.Errorf("RI max error %.4g too large", maxErr)
	}
	if sumErr/float64(cnt) > 2e-3 {
		t.Errorf("RI mean error %.4g too large", sumErr/float64(cnt))
	}
}

// --- derivative checks (finite differences) -------------------------------

// fdGrad computes a central-difference gradient of f with respect to all
// atomic coordinates of g.
func fdGrad(g *molecule.Geometry, f func(*molecule.Geometry) float64, h float64) []float64 {
	grad := make([]float64, 3*g.N())
	for i := range g.Atoms {
		for d := 0; d < 3; d++ {
			gp := g.Clone()
			gp.Atoms[i].Pos[d] += h
			gm := g.Clone()
			gm.Atoms[i].Pos[d] -= h
			grad[3*i+d] = (f(gp) - f(gm)) / (2 * h)
		}
	}
	return grad
}

func randWeight(rng *rand.Rand, n int) *linalg.Mat {
	w := linalg.NewMat(n, n)
	for i := range w.Data {
		w.Data[i] = rng.NormFloat64()
	}
	return w
}

func gradsClose(t *testing.T, name string, got, want []float64, tol float64) {
	t.Helper()
	for i := range got {
		if math.Abs(got[i]-want[i]) > tol {
			t.Errorf("%s grad[%d]: analytic %.10f vs FD %.10f", name, i, got[i], want[i])
		}
	}
}

func TestOverlapDerivFD(t *testing.T) {
	g, bs := waterSTO()
	rng := rand.New(rand.NewSource(11))
	w := randWeight(rng, bs.N) // non-symmetric on purpose
	energy := func(gg *molecule.Geometry) float64 {
		b2, _ := basis.Build("sto-3g", gg)
		return linalg.Dot(w, Overlap(b2))
	}
	grad := make([]float64, 3*g.N())
	OverlapDeriv(bs, w, 1, grad)
	gradsClose(t, "overlap", grad, fdGrad(g, energy, 1e-5), 1e-7)
}

func TestKineticDerivFD(t *testing.T) {
	g, bs := waterSTO()
	rng := rand.New(rand.NewSource(12))
	w := randWeight(rng, bs.N)
	energy := func(gg *molecule.Geometry) float64 {
		b2, _ := basis.Build("sto-3g", gg)
		return linalg.Dot(w, Kinetic(b2))
	}
	grad := make([]float64, 3*g.N())
	KineticDeriv(bs, w, 1, grad)
	gradsClose(t, "kinetic", grad, fdGrad(g, energy, 1e-5), 1e-7)
}

func TestNuclearDerivFD(t *testing.T) {
	g, bs := waterSTO()
	rng := rand.New(rand.NewSource(13))
	w := randWeight(rng, bs.N)
	energy := func(gg *molecule.Geometry) float64 {
		b2, _ := basis.Build("sto-3g", gg)
		return linalg.Dot(w, Nuclear(b2, gg))
	}
	grad := make([]float64, 3*g.N())
	NuclearDeriv(bs, g, w, 1, grad)
	gradsClose(t, "nuclear", grad, fdGrad(g, energy, 1e-5), 1e-6)
}

func TestTwoCenterDerivFD(t *testing.T) {
	g := molecule.Water()
	bs, _ := basis.Build("sto-3g", g)
	auxOpts := basis.AuxOptions{PerL: []int{3, 2}, MaxL: 1}
	aux := basis.BuildAux(bs, g, auxOpts)
	rng := rand.New(rand.NewSource(14))
	zeta := randWeight(rng, aux.N)
	energy := func(gg *molecule.Geometry) float64 {
		b2, _ := basis.Build("sto-3g", gg)
		a2 := basis.BuildAux(b2, gg, auxOpts)
		return linalg.Dot(zeta, TwoCenter(a2))
	}
	grad := make([]float64, 3*g.N())
	TwoCenterDeriv(aux, zeta, 1, grad)
	gradsClose(t, "twocenter", grad, fdGrad(g, energy, 1e-5), 1e-6)
}

func TestThreeCenterDerivFD(t *testing.T) {
	g := molecule.Water()
	bs, _ := basis.Build("sto-3g", g)
	auxOpts := basis.AuxOptions{PerL: []int{3, 2}, MaxL: 1}
	aux := basis.BuildAux(bs, g, auxOpts)
	rng := rand.New(rand.NewSource(15))
	z := linalg.NewTensor3(aux.N, bs.N, bs.N)
	for i := range z.Data {
		z.Data[i] = rng.NormFloat64()
	}
	energy := func(gg *molecule.Geometry) float64 {
		b2, _ := basis.Build("sto-3g", gg)
		a2 := basis.BuildAux(b2, gg, auxOpts)
		t3 := ThreeCenter(b2, a2)
		var s float64
		for i, v := range t3.Data {
			s += z.Data[i] * v
		}
		return s
	}
	grad := make([]float64, 3*g.N())
	ThreeCenterDeriv(bs, aux, z, 1, grad)
	gradsClose(t, "threecenter", grad, fdGrad(g, energy, 1e-5), 1e-6)
}

func TestFourCenterDerivHFFD(t *testing.T) {
	g := molecule.New()
	g.AddAtom(1, 0, 0, 0)
	g.AddAtom(8, 0, 0, 1.8)
	g.AddAtom(1, 0, 1.5, 2.6)
	bs, _ := basis.Build("sto-3g", g)
	rng := rand.New(rand.NewSource(16))
	// A fixed symmetric "density" (not SCF-derived — the contraction
	// identity must hold for any symmetric matrix).
	d := randWeight(rng, bs.N).Sym()
	energy := func(gg *molecule.Geometry) float64 {
		b2, _ := basis.Build("sto-3g", gg)
		eri := FourCenterAll(b2)
		var e float64
		n := b2.N
		for mu := 0; mu < n; mu++ {
			for nu := 0; nu < n; nu++ {
				for la := 0; la < n; la++ {
					for si := 0; si < n; si++ {
						e += (0.5*d.At(mu, nu)*d.At(la, si) - 0.25*d.At(mu, la)*d.At(nu, si)) *
							eri[ERIIndex(n, mu, nu, la, si)]
					}
				}
			}
		}
		return e
	}
	sw := SchwarzShellPairs(bs)
	grad := make([]float64, 3*g.N())
	FourCenterDerivHF(bs, d, sw, 1e-14, 1, grad)
	gradsClose(t, "fourcenter", grad, fdGrad(g, energy, 1e-5), 5e-6)
}

func TestFockDirectMatchesStoredERI(t *testing.T) {
	g, bs := waterSTO()
	_ = g
	rng := rand.New(rand.NewSource(17))
	d := randWeight(rng, bs.N).Sym()
	sw := SchwarzShellPairs(bs)
	got := FockDirect(bs, d, sw, 1e-14)
	eri := FourCenterAll(bs)
	n := bs.N
	want := linalg.NewMat(n, n)
	for mu := 0; mu < n; mu++ {
		for nu := 0; nu < n; nu++ {
			var s float64
			for la := 0; la < n; la++ {
				for si := 0; si < n; si++ {
					s += d.At(la, si) * (eri[ERIIndex(n, mu, nu, la, si)] - 0.5*eri[ERIIndex(n, mu, la, nu, si)])
				}
			}
			want.Set(mu, nu, s)
		}
	}
	for i := range got.Data {
		if math.Abs(got.Data[i]-want.Data[i]) > 1e-10 {
			t.Fatalf("FockDirect mismatch at %d: %g vs %g", i, got.Data[i], want.Data[i])
		}
	}
}

func TestTranslationalInvariance(t *testing.T) {
	// All integral matrices must be unchanged by rigid translation.
	g, bs := waterSTO()
	s1 := Overlap(bs)
	k1 := Kinetic(bs)
	v1 := Nuclear(bs, g)
	g2 := g.Clone()
	g2.Translate(1.7, -2.4, 0.9)
	bs2, _ := basis.Build("sto-3g", g2)
	s2 := Overlap(bs2)
	k2 := Kinetic(bs2)
	v2 := Nuclear(bs2, g2)
	for i := range s1.Data {
		if math.Abs(s1.Data[i]-s2.Data[i]) > 1e-11 ||
			math.Abs(k1.Data[i]-k2.Data[i]) > 1e-11 ||
			math.Abs(v1.Data[i]-v2.Data[i]) > 1e-10 {
			t.Fatal("integrals not translation invariant")
		}
	}
}
