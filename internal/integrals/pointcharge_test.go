package integrals

import (
	"math"
	"math/rand"
	"testing"

	"github.com/fragmd/fragmd/internal/basis"
	"github.com/fragmd/fragmd/internal/linalg"
	"github.com/fragmd/fragmd/internal/molecule"
)

// testField places three charges of mixed sign around a water molecule
// (Bohr), far enough from the nuclei that the classical terms stay
// smooth for finite differences.
func testField() *PointCharges {
	return &PointCharges{
		Pos: []float64{
			4.0, 0.5, -0.3,
			-3.5, 2.0, 1.0,
			0.7, -4.2, 2.5,
		},
		Q: []float64{0.4, -0.3, 0.25},
	}
}

// Point charges of magnitude Z placed on the nuclei must reproduce the
// nuclear-attraction operator exactly — same Hermite code, external
// centers.
func TestPointChargeMatrixMatchesNuclear(t *testing.T) {
	g := molecule.Water()
	bs, err := basis.Build("sto-3g", g)
	if err != nil {
		t.Fatal(err)
	}
	pc := &PointCharges{}
	for _, at := range g.Atoms {
		pc.Pos = append(pc.Pos, at.Pos[0], at.Pos[1], at.Pos[2])
		pc.Q = append(pc.Q, float64(at.Z))
	}
	vn := Nuclear(bs, g)
	vp := PointChargeMatrix(bs, pc)
	for i := 0; i < bs.N; i++ {
		for j := 0; j < bs.N; j++ {
			if d := math.Abs(vn.At(i, j) - vp.At(i, j)); d > 1e-13 {
				t.Fatalf("V[%d,%d]: nuclear %.15f vs point-charge %.15f", i, j, vn.At(i, j), vp.At(i, j))
			}
		}
	}
}

// The bra-atom and site shares of PointChargeDeriv must together equal
// NuclearDeriv when the sites coincide with the nuclei (there the
// operator-center forces land back on the atoms).
func TestPointChargeDerivSplitsNuclearDeriv(t *testing.T) {
	g := molecule.Water()
	bs, err := basis.Build("sto-3g", g)
	if err != nil {
		t.Fatal(err)
	}
	pc := &PointCharges{}
	for _, at := range g.Atoms {
		pc.Pos = append(pc.Pos, at.Pos[0], at.Pos[1], at.Pos[2])
		pc.Q = append(pc.Q, float64(at.Z))
	}
	rng := rand.New(rand.NewSource(7))
	w := linalg.NewMat(bs.N, bs.N)
	for i := range w.Data {
		w.Data[i] = rng.NormFloat64()
	}
	want := make([]float64, 3*g.N())
	NuclearDeriv(bs, g, w, 1, want)
	grad := make([]float64, 3*g.N())
	site := make([]float64, 3*pc.N())
	PointChargeDeriv(bs, pc, w, 1, grad, site)
	for i := range want {
		if d := math.Abs(want[i] - (grad[i] + site[i])); d > 1e-11 {
			t.Fatalf("component %d: nuclear %.12e vs split %.12e", i, want[i], grad[i]+site[i])
		}
	}
}

// Central-difference validation of both gradient shares of the
// electron–field attraction: E(R) = Σ_μν w_μν V^pc_μν for a fixed
// weight matrix, differentiated against atom and site displacements.
func TestPointChargeDerivFD(t *testing.T) {
	g := molecule.Water()
	pc := testField()
	rng := rand.New(rand.NewSource(3))
	bs0, err := basis.Build("sto-3g", g)
	if err != nil {
		t.Fatal(err)
	}
	w := linalg.NewMat(bs0.N, bs0.N)
	for i := range w.Data {
		w.Data[i] = rng.NormFloat64()
	}
	energy := func(gg *molecule.Geometry, field *PointCharges) float64 {
		bb, err := basis.Build("sto-3g", gg)
		if err != nil {
			t.Fatal(err)
		}
		return linalg.Dot(w, PointChargeMatrix(bb, field))
	}
	grad := make([]float64, 3*g.N())
	site := make([]float64, 3*pc.N())
	PointChargeDeriv(bs0, pc, w, 1, grad, site)

	const h = 1e-5
	for idx := 0; idx < 3*g.N(); idx++ {
		gp, gm := g.Clone(), g.Clone()
		gp.Atoms[idx/3].Pos[idx%3] += h
		gm.Atoms[idx/3].Pos[idx%3] -= h
		fd := (energy(gp, pc) - energy(gm, pc)) / (2 * h)
		if d := math.Abs(fd - grad[idx]); d > 1e-7 {
			t.Errorf("atom grad[%d]: analytic %.10f vs FD %.10f", idx, grad[idx], fd)
		}
	}
	for idx := 0; idx < 3*pc.N(); idx++ {
		pp, pm := pc.Clone(), pc.Clone()
		pp.Pos[idx] += h
		pm.Pos[idx] -= h
		fd := (energy(g, pp) - energy(g, pm)) / (2 * h)
		if d := math.Abs(fd - site[idx]); d > 1e-7 {
			t.Errorf("site grad[%d]: analytic %.10f vs FD %.10f", idx, site[idx], fd)
		}
	}
}

// The classical nuclear–field term and its two-sided gradient.
func TestNuclearFieldEnergyFD(t *testing.T) {
	g := molecule.Water()
	pc := testField()
	grad := make([]float64, 3*g.N())
	site := make([]float64, 3*pc.N())
	NuclearFieldDeriv(g, pc, 1, grad, site)
	const h = 1e-6
	for idx := 0; idx < 3*g.N(); idx++ {
		gp, gm := g.Clone(), g.Clone()
		gp.Atoms[idx/3].Pos[idx%3] += h
		gm.Atoms[idx/3].Pos[idx%3] -= h
		fd := (NuclearFieldEnergy(gp, pc) - NuclearFieldEnergy(gm, pc)) / (2 * h)
		if math.Abs(fd-grad[idx]) > 1e-8 {
			t.Errorf("atom grad[%d]: analytic %.10f vs FD %.10f", idx, grad[idx], fd)
		}
	}
	for idx := 0; idx < 3*pc.N(); idx++ {
		pp, pm := pc.Clone(), pc.Clone()
		pp.Pos[idx] += h
		pm.Pos[idx] -= h
		fd := (NuclearFieldEnergy(g, pp) - NuclearFieldEnergy(g, pm)) / (2 * h)
		if math.Abs(fd-site[idx]) > 1e-8 {
			t.Errorf("site grad[%d]: analytic %.10f vs FD %.10f", idx, site[idx], fd)
		}
	}
}

// A vanishing field leaves the nil-safe helpers inert.
func TestPointChargesNilSafety(t *testing.T) {
	var pc *PointCharges
	if pc.N() != 0 || pc.Clone() != nil {
		t.Fatal("nil PointCharges must be empty and clone to nil")
	}
	g := molecule.Water()
	bs, err := basis.Build("sto-3g", g)
	if err != nil {
		t.Fatal(err)
	}
	m := PointChargeMatrix(bs, nil)
	if m.MaxAbs() != 0 {
		t.Fatal("nil field must produce a zero matrix")
	}
	PointChargeDeriv(bs, nil, m, 1, nil, nil) // must not panic
}
