package integrals

import (
	"math"

	"github.com/fragmd/fragmd/internal/basis"
	"github.com/fragmd/fragmd/internal/linalg"
	"github.com/fragmd/fragmd/internal/molecule"
)

// PointCharges is an external electrostatic field of point charges —
// the embedding environment of an EE-MBE fragment evaluation. A
// positive charge attracts electrons exactly like a nucleus of the
// same magnitude. The charge–charge interaction *among* the field
// sites is never included in any energy here: it is a property of the
// environment, not of the embedded fragment.
type PointCharges struct {
	Pos []float64 // flat 3M site positions, Bohr
	Q   []float64 // M charges, units of e
}

// N returns the number of charge sites (nil-safe).
func (pc *PointCharges) N() int {
	if pc == nil {
		return 0
	}
	return len(pc.Q)
}

// Clone deep-copies the field (nil stays nil).
func (pc *PointCharges) Clone() *PointCharges {
	if pc == nil {
		return nil
	}
	return &PointCharges{
		Pos: append([]float64(nil), pc.Pos...),
		Q:   append([]float64(nil), pc.Q...),
	}
}

// PointChargeMatrix returns the electron–field attraction matrix
// V^pc_μν = Σ_c −q_c (μ|1/r_c|ν), the external-field contribution to
// the core Hamiltonian. It reuses the nuclear-attraction Hermite
// machinery with the field sites as attraction centers.
func PointChargeMatrix(bs *basis.Set, pc *PointCharges) *linalg.Mat {
	m := linalg.NewMat(bs.N, bs.N)
	if pc.N() == 0 {
		return m
	}
	pairs := upperPairs(len(bs.Shells))
	parallelFor(len(pairs), func(lo, hi int) {
		for idx := lo; idx < hi; idx++ {
			sa, sb := &bs.Shells[pairs[idx][0]], &bs.Shells[pairs[idx][1]]
			blk := linalg.NewMat(sa.NCart(), sb.NCart())
			coulombPair(sa, sb, pc.Pos, pc.Q, blk, nil, 0, nil, nil)
			for i := 0; i < blk.Rows; i++ {
				for j := 0; j < blk.Cols; j++ {
					v := blk.At(i, j)
					m.Set(sa.Start+i, sb.Start+j, v)
					m.Set(sb.Start+j, sa.Start+i, v)
				}
			}
		}
	})
	return m
}

// PointChargeDeriv accumulates the derivative of the electron–field
// attraction contracted with the weights w: factor·Σ_μν w_μν ∂V^pc_μν
// lands on the basis-function atoms in grad (length 3·natoms) and, via
// the operator-center share, on the field sites in siteGrad (length
// 3·M). Both orientations of w are contracted (ordered pair visits).
func PointChargeDeriv(bs *basis.Set, pc *PointCharges, w *linalg.Mat, factor float64, grad, siteGrad []float64) {
	if pc.N() == 0 {
		return
	}
	pairs := allPairs(len(bs.Shells))
	reduceGrads2(len(pairs), grad, siteGrad, func(lo, hi int, bufA, bufS []float64) {
		for idx := lo; idx < hi; idx++ {
			sa, sb := &bs.Shells[pairs[idx][0]], &bs.Shells[pairs[idx][1]]
			coulombPair(sa, sb, pc.Pos, pc.Q, nil, w, factor, bufA, bufS)
		}
	})
}

// CoulombPairTerm returns the classical Coulomb energy q_a·q_b/r of
// two point charges and the energy gradient with respect to the first
// position (the second's gradient is its negation) — the one kernel
// behind every classical charge–charge term of the EE-MBE machinery:
// the nuclear–field interaction here, the surrogate potential's
// embedded Coulomb, and the far-pair residual correction.
func CoulombPairTerm(pa, pb [3]float64, qa, qb float64) (e float64, dA [3]float64) {
	var d [3]float64
	var r2 float64
	for k := 0; k < 3; k++ {
		d[k] = pa[k] - pb[k]
		r2 += d[k] * d[k]
	}
	r := math.Sqrt(r2)
	e = qa * qb / r
	s := -qa * qb / (r2 * r)
	for k := 0; k < 3; k++ {
		dA[k] = s * d[k]
	}
	return e, dA
}

// NuclearFieldEnergy returns the classical interaction of the nuclei
// with the field, Σ_A Σ_c Z_A q_c / |R_A − R_c| (Hartree).
func NuclearFieldEnergy(g *molecule.Geometry, pc *PointCharges) float64 {
	var e float64
	for _, at := range g.Atoms {
		for c := 0; c < pc.N(); c++ {
			ec, _ := CoulombPairTerm(at.Pos, [3]float64{pc.Pos[3*c], pc.Pos[3*c+1], pc.Pos[3*c+2]},
				float64(at.Z), pc.Q[c])
			e += ec
		}
	}
	return e
}

// NuclearFieldDeriv accumulates factor·∇(Σ Z_A q_c/r_Ac) onto the
// nuclei (grad) and the field sites (siteGrad).
func NuclearFieldDeriv(g *molecule.Geometry, pc *PointCharges, factor float64, grad, siteGrad []float64) {
	for ai, at := range g.Atoms {
		for c := 0; c < pc.N(); c++ {
			_, dA := CoulombPairTerm(at.Pos, [3]float64{pc.Pos[3*c], pc.Pos[3*c+1], pc.Pos[3*c+2]},
				float64(at.Z), pc.Q[c])
			for k := 0; k < 3; k++ {
				grad[3*ai+k] += factor * dA[k]
				siteGrad[3*c+k] -= factor * dA[k]
			}
		}
	}
}
