package integrals

import (
	"math"
	"runtime"
	"sync"

	"github.com/fragmd/fragmd/internal/basis"
	"github.com/fragmd/fragmd/internal/linalg"
	"github.com/fragmd/fragmd/internal/molecule"
)

// parallelFor splits [0, n) across GOMAXPROCS goroutines.
func parallelFor(n int, fn func(lo, hi int)) {
	nw := runtime.GOMAXPROCS(0)
	if nw > n {
		nw = n
	}
	if nw <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + nw - 1) / nw
	for w := 0; w < nw; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// reduceGrads runs fn on per-worker gradient buffers and sums them into
// grad. n is the loop bound passed through to parallelFor.
func reduceGrads(n int, grad []float64, fn func(lo, hi int, buf []float64)) {
	reduceGrads2(n, grad, nil, func(lo, hi int, buf, _ []float64) { fn(lo, hi, buf) })
}

// reduceGrads2 is reduceGrads over two accumulators (the bra-atom and
// field-site gradients of the point-charge derivatives); gb may be nil.
func reduceGrads2(n int, ga, gb []float64, fn func(lo, hi int, bufA, bufB []float64)) {
	var mu sync.Mutex
	parallelFor(n, func(lo, hi int) {
		bufA := make([]float64, len(ga))
		bufB := make([]float64, len(gb))
		fn(lo, hi, bufA, bufB)
		mu.Lock()
		for i, v := range bufA {
			ga[i] += v
		}
		for i, v := range bufB {
			gb[i] += v
		}
		mu.Unlock()
	})
}

// upperPairs enumerates (i, j) with i ≤ j < n.
func upperPairs(n int) [][2]int {
	out := make([][2]int, 0, n*(n+1)/2)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			out = append(out, [2]int{i, j})
		}
	}
	return out
}

// allPairs enumerates all ordered (i, j) with i, j < n.
func allPairs(n int) [][2]int {
	out := make([][2]int, 0, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			out = append(out, [2]int{i, j})
		}
	}
	return out
}

// stKind selects which one-electron operator stBlock evaluates.
type stKind int

const (
	kindOverlap stKind = iota
	kindKinetic
)

// stPair evaluates the overlap or kinetic block between two shells and,
// when deriv is true, the three bra-center derivative blocks
// ∂/∂A_d obtained from the raise/lower relation
// ∂/∂A x^i = 2a·x^{i+1} − i·x^{i-1} applied per primitive.
func stPair(sa, sb *basis.Shell, kind stKind, deriv bool) (val *linalg.Mat, dA [3]*linalg.Mat) {
	compA := basis.CartComponents(sa.L)
	compB := basis.CartComponents(sb.L)
	na, nb := len(compA), len(compB)
	val = linalg.NewMat(na, nb)
	if deriv {
		for d := 0; d < 3; d++ {
			dA[d] = linalg.NewMat(na, nb)
		}
	}
	imax := sa.L
	if deriv {
		imax++
	}
	jmax := sb.L
	if kind == kindKinetic {
		jmax += 2
	}
	var ab [3]float64
	for d := 0; d < 3; d++ {
		ab[d] = sa.Center[d] - sb.Center[d]
	}
	var e [3]eTable
	for p, a := range sa.Exps {
		for q, b := range sb.Exps {
			pexp := a + b
			pre := math.Pow(math.Pi/pexp, 1.5)
			for d := 0; d < 3; d++ {
				e[d] = newETable(imax, jmax, a, b, ab[d])
			}
			// 1D overlap factor (without the √(π/p) prefactor, folded
			// into pre as (π/p)^{3/2} for the 3D product).
			s1 := func(d, i, j int) float64 {
				if i < 0 || j < 0 {
					return 0
				}
				return e[d][i][j][0]
			}
			// 1D kinetic factor ⟨i| −½ d²/dx² |j⟩.
			k1 := func(d, i, j int) float64 {
				if i < 0 {
					return 0
				}
				v := -2*b*b*s1(d, i, j+2) + b*float64(2*j+1)*s1(d, i, j)
				if j >= 2 {
					v -= 0.5 * float64(j*(j-1)) * s1(d, i, j-2)
				}
				return v
			}
			// 3D assembly for bra Cartesian powers ia against the ket
			// powers jb fixed in the closure below.
			for ca, A := range compA {
				for cb, B := range compB {
					coef := sa.Coefs[ca][p] * sb.Coefs[cb][q] * pre
					jb := B
					value := func(ia [3]int) float64 {
						if kind == kindOverlap {
							return s1(0, ia[0], jb[0]) * s1(1, ia[1], jb[1]) * s1(2, ia[2], jb[2])
						}
						return k1(0, ia[0], jb[0])*s1(1, ia[1], jb[1])*s1(2, ia[2], jb[2]) +
							s1(0, ia[0], jb[0])*k1(1, ia[1], jb[1])*s1(2, ia[2], jb[2]) +
							s1(0, ia[0], jb[0])*s1(1, ia[1], jb[1])*k1(2, ia[2], jb[2])
					}
					val.Add(ca, cb, coef*value(A))
					if deriv {
						for d := 0; d < 3; d++ {
							up, down := A, A
							up[d]++
							down[d]--
							dv := 2 * a * value(up)
							if A[d] > 0 {
								dv -= float64(A[d]) * value(down)
							}
							dA[d].Add(ca, cb, coef*dv)
						}
					}
				}
			}
		}
	}
	return val, dA
}

// Overlap returns the overlap matrix S.
func Overlap(bs *basis.Set) *linalg.Mat { return oneElectronMat(bs, kindOverlap) }

// Kinetic returns the kinetic-energy matrix T.
func Kinetic(bs *basis.Set) *linalg.Mat { return oneElectronMat(bs, kindKinetic) }

func oneElectronMat(bs *basis.Set, kind stKind) *linalg.Mat {
	m := linalg.NewMat(bs.N, bs.N)
	pairs := upperPairs(len(bs.Shells))
	parallelFor(len(pairs), func(lo, hi int) {
		for idx := lo; idx < hi; idx++ {
			sa, sb := &bs.Shells[pairs[idx][0]], &bs.Shells[pairs[idx][1]]
			blk, _ := stPair(sa, sb, kind, false)
			for i := 0; i < blk.Rows; i++ {
				for j := 0; j < blk.Cols; j++ {
					v := blk.At(i, j)
					m.Set(sa.Start+i, sb.Start+j, v)
					m.Set(sb.Start+j, sa.Start+i, v)
				}
			}
		}
	})
	return m
}

// coulombPair evaluates the charge-attraction block Σ_c −q_c·(μ|1/r_c|ν)
// for one shell pair over an arbitrary set of attraction sites (flat 3M
// positions pos, charges q — the geometry's nuclei or an external
// point-charge field). When braGrad is non-nil it instead contracts the
// derivative integrals with the weights w on the fly:
//
//	braGrad[3·atom(A)+d] += factor·Σ_μν w_μν ∂V_μν/∂A_d    (bra share)
//	siteGrad[3·c+d]      −= factor·Σ_μν w_μν ∂(V_c)_μν/∂A_d (operator share)
//
// Two ordered visits of each pair make −(∂A+∂B) the complete
// (Hellmann–Feynman + Pulay) force via translational invariance. For
// the nuclear-attraction case braGrad and siteGrad are the same slice;
// for an external field the site forces land in the field's own array.
func coulombPair(sa, sb *basis.Shell, sitePos, siteQ []float64, val *linalg.Mat, w *linalg.Mat, factor float64, braGrad, siteGrad []float64) {
	compA := basis.CartComponents(sa.L)
	compB := basis.CartComponents(sb.L)
	deriv := braGrad != nil
	imax := sa.L
	if deriv {
		imax++
	}
	jmax := sb.L
	tmax := imax + jmax
	var ab [3]float64
	for d := 0; d < 3; d++ {
		ab[d] = sa.Center[d] - sb.Center[d]
	}
	var e [3]eTable
	for p, a := range sa.Exps {
		for q, b := range sb.Exps {
			pexp := a + b
			pre := 2 * math.Pi / pexp
			for d := 0; d < 3; d++ {
				e[d] = newETable(imax, jmax, a, b, ab[d])
			}
			var pc [3]float64
			for d := 0; d < 3; d++ {
				pc[d] = (a*sa.Center[d] + b*sb.Center[d]) / pexp
			}
			for ci := range siteQ {
				r := newRCube(tmax, pexp, pc[0]-sitePos[3*ci], pc[1]-sitePos[3*ci+1], pc[2]-sitePos[3*ci+2])
				charge := -siteQ[ci]
				contract := func(ia, jb [3]int) float64 {
					var sum float64
					ex := e[0][ia[0]][jb[0]]
					for t := range ex {
						et := ex[t]
						if et == 0 {
							continue
						}
						ey := e[1][ia[1]][jb[1]]
						for u := range ey {
							eu := ey[u]
							if eu == 0 {
								continue
							}
							etu := et * eu
							ez := e[2][ia[2]][jb[2]]
							rv := r[t][u]
							for v := range ez {
								sum += etu * ez[v] * rv[v]
							}
						}
					}
					return sum
				}
				for ca, A := range compA {
					for cb, B := range compB {
						coef := sa.Coefs[ca][p] * sb.Coefs[cb][q] * pre * charge
						if val != nil {
							val.Add(ca, cb, coef*contract(A, B))
						}
						if deriv {
							// Ordered-visit left-derivative scheme: the
							// effective weight is w_μν + w_νμ (see stDeriv).
							wv := (w.At(sa.Start+ca, sb.Start+cb) + w.At(sb.Start+cb, sa.Start+ca)) * factor * coef
							if wv == 0 {
								continue
							}
							for d := 0; d < 3; d++ {
								up, down := A, A
								up[d]++
								down[d]--
								dv := 2 * a * contract(up, B)
								if A[d] > 0 {
									dv -= float64(A[d]) * contract(down, B)
								}
								braGrad[3*sa.Atom+d] += wv * dv
								siteGrad[3*ci+d] -= wv * dv
							}
						}
					}
				}
			}
		}
	}
}

// nuclearSites flattens a geometry's nuclei into attraction sites.
func nuclearSites(g *molecule.Geometry) (pos, q []float64) {
	pos = make([]float64, 3*g.N())
	q = make([]float64, g.N())
	for i, at := range g.Atoms {
		for d := 0; d < 3; d++ {
			pos[3*i+d] = at.Pos[d]
		}
		q[i] = float64(at.Z)
	}
	return pos, q
}

// Nuclear returns the nuclear-attraction matrix V = Σ_C −Z_C (μ|1/r_C|ν).
func Nuclear(bs *basis.Set, g *molecule.Geometry) *linalg.Mat {
	pos, q := nuclearSites(g)
	m := linalg.NewMat(bs.N, bs.N)
	pairs := upperPairs(len(bs.Shells))
	parallelFor(len(pairs), func(lo, hi int) {
		for idx := lo; idx < hi; idx++ {
			sa, sb := &bs.Shells[pairs[idx][0]], &bs.Shells[pairs[idx][1]]
			blk := linalg.NewMat(sa.NCart(), sb.NCart())
			coulombPair(sa, sb, pos, q, blk, nil, 0, nil, nil)
			for i := 0; i < blk.Rows; i++ {
				for j := 0; j < blk.Cols; j++ {
					v := blk.At(i, j)
					m.Set(sa.Start+i, sb.Start+j, v)
					m.Set(sb.Start+j, sa.Start+i, v)
				}
			}
		}
	})
	return m
}

// Hcore returns the one-electron core Hamiltonian T + V.
func Hcore(bs *basis.Set, g *molecule.Geometry) *linalg.Mat {
	h := Kinetic(bs)
	h.AxpyMat(1, Nuclear(bs, g))
	return h
}

// OverlapDeriv accumulates factor·Σ_μν w_μν ∂S_μν/∂R into grad
// (length 3·natoms). w may be non-symmetric; both orientations are
// contracted.
func OverlapDeriv(bs *basis.Set, w *linalg.Mat, factor float64, grad []float64) {
	stDeriv(bs, w, factor, grad, kindOverlap)
}

// KineticDeriv accumulates factor·Σ_μν w_μν ∂T_μν/∂R into grad.
func KineticDeriv(bs *basis.Set, w *linalg.Mat, factor float64, grad []float64) {
	stDeriv(bs, w, factor, grad, kindKinetic)
}

// stDeriv visits all ordered shell pairs computing only the bra-center
// derivative blocks. For a symmetric two-center integral the ket-slot
// contribution Σ w_μν ∂I/∂(center ν) relabels to Σ w_νμ ∂I/∂(center μ),
// so contracting each visit with the weight (w_μν + w_νμ) and
// accumulating on the bra atom yields the complete gradient.
func stDeriv(bs *basis.Set, w *linalg.Mat, factor float64, grad []float64, kind stKind) {
	pairs := allPairs(len(bs.Shells))
	reduceGrads(len(pairs), grad, func(lo, hi int, buf []float64) {
		for idx := lo; idx < hi; idx++ {
			sa, sb := &bs.Shells[pairs[idx][0]], &bs.Shells[pairs[idx][1]]
			_, dA := stPair(sa, sb, kind, true)
			for d := 0; d < 3; d++ {
				var s float64
				for i := 0; i < dA[d].Rows; i++ {
					for j := 0; j < dA[d].Cols; j++ {
						s += (w.At(sa.Start+i, sb.Start+j) + w.At(sb.Start+j, sa.Start+i)) * dA[d].At(i, j)
					}
				}
				buf[3*sa.Atom+d] += factor * s
			}
		}
	})
}

// NuclearDeriv accumulates factor·Σ_μν w_μν ∂V_μν/∂R into grad,
// including the forces on the nuclei acting as attraction centers.
func NuclearDeriv(bs *basis.Set, g *molecule.Geometry, w *linalg.Mat, factor float64, grad []float64) {
	pos, q := nuclearSites(g)
	pairs := allPairs(len(bs.Shells))
	reduceGrads(len(pairs), grad, func(lo, hi int, buf []float64) {
		for idx := lo; idx < hi; idx++ {
			sa, sb := &bs.Shells[pairs[idx][0]], &bs.Shells[pairs[idx][1]]
			coulombPair(sa, sb, pos, q, nil, w, factor, buf, buf)
		}
	})
}
