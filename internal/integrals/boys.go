// Package integrals evaluates all molecular integrals over contracted
// Cartesian Gaussians with the McMurchie–Davidson (MD) scheme: overlap,
// kinetic, nuclear attraction, two-center (P|Q), three-center (μν|P) and
// four-center (μν|λσ) electron-repulsion integrals, plus the analytic
// nuclear derivatives of every class.
//
// The derivative routines contract the derivative integrals with
// caller-supplied coefficient matrices on the fly, accumulating straight
// into the molecular gradient without storing derivative tensors — the
// design the paper adopts for its GPU pipeline (§V-E: "integral
// derivatives ... calculated and accumulated into the final gradient on
// the fly, without needing to be stored").
//
// Derivatives with respect to the final center of each integral class are
// obtained from translational invariance (the sum of all center
// derivatives vanishes), so only bra-side raise/lower recursions
// (∂/∂A x^i = 2a·x^{i+1} − i·x^{i-1}) are implemented.
package integrals

import "math"

// boys fills out[0..m] with Boys function values F_k(x).
//
// Three regimes: the x→0 limit F_k = 1/(2k+1); a convergent ascending
// series for moderate x followed by stable downward recursion; and the
// asymptotic form with upward recursion for large x.
func boys(m int, x float64, out []float64) {
	switch {
	case x < 1e-13:
		for k := 0; k <= m; k++ {
			out[k] = 1 / float64(2*k+1)
		}
	case x <= 35:
		// Series for F_m: F_m(x) = e^{-x} Σ_k (2x)^k / (2m+1)(2m+3)...(2m+2k+1)
		ex := math.Exp(-x)
		term := 1 / float64(2*m+1)
		sum := term
		for k := 1; k < 300; k++ {
			term *= 2 * x / float64(2*m+2*k+1)
			sum += term
			if term < 1e-17*sum {
				break
			}
		}
		out[m] = ex * sum
		// Downward recursion is numerically stable.
		for k := m - 1; k >= 0; k-- {
			out[k] = (2*x*out[k+1] + ex) / float64(2*k+1)
		}
	default:
		ex := math.Exp(-x)
		out[0] = 0.5 * math.Sqrt(math.Pi/x)
		for k := 0; k < m; k++ {
			out[k+1] = (float64(2*k+1)*out[k] - ex) / (2 * x)
		}
	}
}
