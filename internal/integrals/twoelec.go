package integrals

import (
	"math"

	"github.com/fragmd/fragmd/internal/basis"
	"github.com/fragmd/fragmd/internal/linalg"
)

// twoERIPre is the 2π^{5/2} prefactor common to all ERI classes.
var twoERIPre = 2 * math.Pow(math.Pi, 2.5)

// hermiteSingle returns the three 1D Hermite expansion tables of a single
// primitive Gaussian of angular momentum l and exponent a (imax may
// exceed l for derivative raising).
func hermiteSingle(imax int, a float64) [3]eTable {
	t := newETable(imax, 0, a, 0, 0)
	return [3]eTable{t, t, t}
}

// contractHermite sums E^bra ⊗ E^ket against the R cube with the MD sign
// (−1)^{t'+u'+v'} on the ket indices:
//
//	Σ_{tuv} Σ_{t'u'v'} Ebx[t]·Eby[u]·Ebz[v]·Ekx[t']·Eky[u']·Ekz[v']·(−1)^{t'+u'+v'}·R[t+t'][u+u'][v+v']
func contractHermite(ebx, eby, ebz, ekx, eky, ekz []float64, r rCube) float64 {
	var sum float64
	for t := range ebx {
		bt := ebx[t]
		if bt == 0 {
			continue
		}
		for u := range eby {
			bu := eby[u]
			if bu == 0 {
				continue
			}
			btu := bt * bu
			for v := range ebz {
				bv := ebz[v]
				if bv == 0 {
					continue
				}
				btuv := btu * bv
				for t2 := range ekx {
					kt := ekx[t2]
					if kt == 0 {
						continue
					}
					if t2&1 == 1 {
						kt = -kt
					}
					rt := r[t+t2]
					for u2 := range eky {
						ku := eky[u2]
						if ku == 0 {
							continue
						}
						if u2&1 == 1 {
							ku = -ku
						}
						ktu := kt * ku
						ru := rt[u+u2]
						for v2 := range ekz {
							kv := ekz[v2]
							if kv == 0 {
								continue
							}
							if v2&1 == 1 {
								kv = -kv
							}
							sum += btuv * ktu * kv * ru[v+v2]
						}
					}
				}
			}
		}
	}
	return sum
}

// TwoCenter returns the Coulomb metric (P|Q) over the auxiliary basis.
func TwoCenter(aux *basis.Set) *linalg.Mat {
	m := linalg.NewMat(aux.N, aux.N)
	pairs := upperPairs(len(aux.Shells))
	parallelFor(len(pairs), func(lo, hi int) {
		for idx := lo; idx < hi; idx++ {
			sp, sq := &aux.Shells[pairs[idx][0]], &aux.Shells[pairs[idx][1]]
			blk := twoCenterBlock(sp, sq, nil, 0, nil)
			for i := 0; i < blk.Rows; i++ {
				for j := 0; j < blk.Cols; j++ {
					v := blk.At(i, j)
					m.Set(sp.Start+i, sq.Start+j, v)
					m.Set(sq.Start+j, sp.Start+i, v)
				}
			}
		}
	})
	return m
}

// TwoCenterDeriv accumulates factor·Σ_PQ ζ_PQ ∂(P|Q)/∂R into grad.
func TwoCenterDeriv(aux *basis.Set, zeta *linalg.Mat, factor float64, grad []float64) {
	pairs := allPairs(len(aux.Shells))
	reduceGrads(len(pairs), grad, func(lo, hi int, buf []float64) {
		for idx := lo; idx < hi; idx++ {
			sp, sq := &aux.Shells[pairs[idx][0]], &aux.Shells[pairs[idx][1]]
			twoCenterBlock(sp, sq, zeta, factor, buf)
		}
	})
}

// twoCenterBlock computes the (P|Q) block for a shell pair. With grad
// non-nil it instead contracts the bra-center derivative with the weight
// (ζ_PQ + ζ_QP), accumulating on the bra atom (ordered-visit scheme).
func twoCenterBlock(sp, sq *basis.Shell, zeta *linalg.Mat, factor float64, grad []float64) *linalg.Mat {
	compP := basis.CartComponents(sp.L)
	compQ := basis.CartComponents(sq.L)
	deriv := grad != nil
	var val *linalg.Mat
	if !deriv {
		val = linalg.NewMat(len(compP), len(compQ))
	}
	imax := sp.L
	if deriv {
		imax++
	}
	tmax := imax + sq.L
	dx := sp.Center[0] - sq.Center[0]
	dy := sp.Center[1] - sq.Center[1]
	dz := sp.Center[2] - sq.Center[2]
	for p, a := range sp.Exps {
		eb := hermiteSingle(imax, a)
		for q, b := range sq.Exps {
			ek := hermiteSingle(sq.L, b)
			alpha := a * b / (a + b)
			pre := twoERIPre / (a * b * math.Sqrt(a+b))
			r := newRCube(tmax, alpha, dx, dy, dz)
			for cp, P := range compP {
				for cq, Q := range compQ {
					coef := sp.Coefs[cp][p] * sq.Coefs[cq][q] * pre
					value := func(ia [3]int) float64 {
						return contractHermite(
							eb[0][ia[0]][0], eb[1][ia[1]][0], eb[2][ia[2]][0],
							ek[0][Q[0]][0], ek[1][Q[1]][0], ek[2][Q[2]][0], r)
					}
					if !deriv {
						val.Add(cp, cq, coef*value(P))
						continue
					}
					wv := (zeta.At(sp.Start+cp, sq.Start+cq) + zeta.At(sq.Start+cq, sp.Start+cp)) * factor * coef
					if wv == 0 {
						continue
					}
					for d := 0; d < 3; d++ {
						up, down := P, P
						up[d]++
						down[d]--
						dv := 2 * a * value(up)
						if P[d] > 0 {
							dv -= float64(P[d]) * value(down)
						}
						grad[3*sp.Atom+d] += wv * dv
					}
				}
			}
		}
	}
	return val
}

// ThreeCenter returns the three-center ERI tensor (μν|P) stored as
// (P, μ, ν) — the B-tensor precursor of paper Eq. 6.
func ThreeCenter(bs, aux *basis.Set) *linalg.Tensor3 {
	return ThreeCenterScreened(bs, aux, nil, 0)
}

// SchwarzAux returns the per-auxiliary-shell Cauchy–Schwarz bounds
// Q_P = √max|(P|P)| over the shell's diagonal metric block — the
// ket-side factor of the three-center bound |(μν|P)| ≤ Q_μν·Q_P.
func SchwarzAux(aux *basis.Set) []float64 {
	q := make([]float64, len(aux.Shells))
	parallelFor(len(aux.Shells), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sp := &aux.Shells[i]
			blk := twoCenterBlock(sp, sp, nil, 0, nil)
			var mx float64
			for c := 0; c < blk.Rows; c++ {
				if v := math.Abs(blk.At(c, c)); v > mx {
					mx = v
				}
			}
			q[i] = math.Sqrt(mx)
		}
	})
	return q
}

// ThreeCenterScreened is ThreeCenter with Cauchy–Schwarz screening: a
// bra shell pair whose bound Q_μν·max_P Q_P falls below thresh is
// skipped outright, and a surviving pair skips the individual auxiliary
// shells with Q_μν·Q_P < thresh. sw is SchwarzShellPairs(bs); a nil sw
// or thresh ≤ 0 disables screening. Skipped blocks are exact zeros in
// the returned tensor, and every retained element is computed at full
// precision, so the screened tensor converges elementwise to the
// unscreened one as thresh → 0 with max error below thresh.
func ThreeCenterScreened(bs, aux *basis.Set, sw *linalg.Mat, thresh float64) *linalg.Tensor3 {
	t := linalg.NewTensor3(aux.N, bs.N, bs.N)
	screen := sw != nil && thresh > 0
	var qaux []float64
	pairs := upperPairs(len(bs.Shells))
	if screen {
		qaux = SchwarzAux(aux)
		var qmax float64
		for _, v := range qaux {
			if v > qmax {
				qmax = v
			}
		}
		kept := pairs[:0]
		for _, pr := range pairs {
			if sw.At(pr[0], pr[1])*qmax >= thresh {
				kept = append(kept, pr)
			}
		}
		pairs = kept
	}
	parallelFor(len(pairs), func(lo, hi int) {
		for idx := lo; idx < hi; idx++ {
			ia, ib := pairs[idx][0], pairs[idx][1]
			sa, sb := &bs.Shells[ia], &bs.Shells[ib]
			var bound float64
			if screen {
				bound = sw.At(ia, ib)
			}
			for ip := range aux.Shells {
				if screen && bound*qaux[ip] < thresh {
					continue
				}
				sp := &aux.Shells[ip]
				blk := threeCenterBlock(sa, sb, sp, nil, 0, nil)
				na, nb := sa.NCart(), sb.NCart()
				for i := 0; i < na; i++ {
					for j := 0; j < nb; j++ {
						for k := 0; k < sp.NCart(); k++ {
							v := blk[(i*nb+j)*sp.NCart()+k]
							t.Set(sp.Start+k, sa.Start+i, sb.Start+j, v)
							t.Set(sp.Start+k, sb.Start+j, sa.Start+i, v)
						}
					}
				}
			}
		}
	})
	return t
}

// ThreeCenterDeriv accumulates factor·Σ_Pμν Z_Pμν ∂(μν|P)/∂R into grad.
func ThreeCenterDeriv(bs, aux *basis.Set, z *linalg.Tensor3, factor float64, grad []float64) {
	pairs := allPairs(len(bs.Shells))
	reduceGrads(len(pairs), grad, func(lo, hi int, buf []float64) {
		for idx := lo; idx < hi; idx++ {
			sa, sb := &bs.Shells[pairs[idx][0]], &bs.Shells[pairs[idx][1]]
			for ip := range aux.Shells {
				threeCenterBlock(sa, sb, &aux.Shells[ip], z, factor, buf)
			}
		}
	})
}

// threeCenterBlock computes the (μν|P) block for a bra shell pair and one
// auxiliary shell, returned flattened as [(i·nb+j)·nP+k]. With grad
// non-nil it instead contracts the bra-left derivative with the weight
// (Z_Pμν + Z_Pνμ), accumulating +contribution on the bra-left atom and
// −contribution on the auxiliary atom (translational invariance supplies
// the auxiliary-center derivative across the two ordered bra visits).
func threeCenterBlock(sa, sb, sp *basis.Shell, z *linalg.Tensor3, factor float64, grad []float64) []float64 {
	compA := basis.CartComponents(sa.L)
	compB := basis.CartComponents(sb.L)
	compP := basis.CartComponents(sp.L)
	deriv := grad != nil
	var val []float64
	if !deriv {
		val = make([]float64, len(compA)*len(compB)*len(compP))
	}
	imax := sa.L
	if deriv {
		imax++
	}
	tmax := imax + sb.L + sp.L
	var ab [3]float64
	for d := 0; d < 3; d++ {
		ab[d] = sa.Center[d] - sb.Center[d]
	}
	var e [3]eTable
	for p, a := range sa.Exps {
		for q, b := range sb.Exps {
			pexp := a + b
			for d := 0; d < 3; d++ {
				e[d] = newETable(imax, sb.L, a, b, ab[d])
			}
			var pab [3]float64
			for d := 0; d < 3; d++ {
				pab[d] = (a*sa.Center[d] + b*sb.Center[d]) / pexp
			}
			for pp, c := range sp.Exps {
				ek := hermiteSingle(sp.L, c)
				alpha := pexp * c / (pexp + c)
				pre := twoERIPre / (pexp * c * math.Sqrt(pexp+c))
				r := newRCube(tmax, alpha, pab[0]-sp.Center[0], pab[1]-sp.Center[1], pab[2]-sp.Center[2])
				for ca, A := range compA {
					for cb, B := range compB {
						cf := sa.Coefs[ca][p] * sb.Coefs[cb][q] * pre
						for cp, P := range compP {
							coef := cf * sp.Coefs[cp][pp]
							value := func(ia [3]int) float64 {
								return contractHermite(
									e[0][ia[0]][B[0]], e[1][ia[1]][B[1]], e[2][ia[2]][B[2]],
									ek[0][P[0]][0], ek[1][P[1]][0], ek[2][P[2]][0], r)
							}
							if !deriv {
								val[(ca*len(compB)+cb)*len(compP)+cp] += coef * value(A)
								continue
							}
							wv := (z.At(sp.Start+cp, sa.Start+ca, sb.Start+cb) +
								z.At(sp.Start+cp, sb.Start+cb, sa.Start+ca)) * factor * coef
							if wv == 0 {
								continue
							}
							for d := 0; d < 3; d++ {
								up, down := A, A
								up[d]++
								down[d]--
								dv := 2 * a * value(up)
								if A[d] > 0 {
									dv -= float64(A[d]) * value(down)
								}
								grad[3*sa.Atom+d] += wv * dv
								grad[3*sp.Atom+d] -= wv * dv
							}
						}
					}
				}
			}
		}
	}
	return val
}

// ERIIndex addresses the flat four-center array returned by
// FourCenterAll: ((μ·n+ν)·n+λ)·n+σ.
func ERIIndex(n, mu, nu, la, si int) int { return ((mu*n+nu)*n+la)*n + si }

// FourCenterAll computes the full (μν|λσ) tensor. Memory is O(N⁴); it is
// intended for the conventional-method baselines and for validating the
// RI approximation on small systems.
func FourCenterAll(bs *basis.Set) []float64 {
	n := bs.N
	out := make([]float64, n*n*n*n)
	nsh := len(bs.Shells)
	quartets := make([][4]int, 0, nsh*nsh*nsh*nsh/4)
	for i := 0; i < nsh; i++ {
		for j := i; j < nsh; j++ {
			for k := 0; k < nsh; k++ {
				for l := k; l < nsh; l++ {
					quartets = append(quartets, [4]int{i, j, k, l})
				}
			}
		}
	}
	parallelFor(len(quartets), func(lo, hi int) {
		for qi := lo; qi < hi; qi++ {
			q := quartets[qi]
			sa, sb, sc, sd := &bs.Shells[q[0]], &bs.Shells[q[1]], &bs.Shells[q[2]], &bs.Shells[q[3]]
			blk := fourCenterBlock(sa, sb, sc, sd, nil, 0, nil)
			na, nb, nc, nd := sa.NCart(), sb.NCart(), sc.NCart(), sd.NCart()
			for i := 0; i < na; i++ {
				for j := 0; j < nb; j++ {
					for k := 0; k < nc; k++ {
						for l := 0; l < nd; l++ {
							v := blk[((i*nb+j)*nc+k)*nd+l]
							mu, nu, la, si := sa.Start+i, sb.Start+j, sc.Start+k, sd.Start+l
							out[ERIIndex(n, mu, nu, la, si)] = v
							out[ERIIndex(n, nu, mu, la, si)] = v
							out[ERIIndex(n, mu, nu, si, la)] = v
							out[ERIIndex(n, nu, mu, si, la)] = v
						}
					}
				}
			}
		}
	})
	return out
}

// fourCenterBlock computes the (μν|λσ) block of a shell quartet,
// flattened as [((i·nb+j)·nc+k)·nd+l]. With grad non-nil it contracts the
// slot-1 (bra-left) derivative with the caller-provided weight function
// w4(μ,ν,λ,σ) (global indices), accumulating on the bra-left atom.
func fourCenterBlock(sa, sb, sc, sd *basis.Shell, w4 func(mu, nu, la, si int) float64, factor float64, grad []float64) []float64 {
	compA := basis.CartComponents(sa.L)
	compB := basis.CartComponents(sb.L)
	compC := basis.CartComponents(sc.L)
	compD := basis.CartComponents(sd.L)
	deriv := grad != nil
	var val []float64
	if !deriv {
		val = make([]float64, len(compA)*len(compB)*len(compC)*len(compD))
	}
	imax := sa.L
	if deriv {
		imax++
	}
	tmax := imax + sb.L + sc.L + sd.L
	var abv, cdv [3]float64
	for d := 0; d < 3; d++ {
		abv[d] = sa.Center[d] - sb.Center[d]
		cdv[d] = sc.Center[d] - sd.Center[d]
	}
	var eb, ek [3]eTable
	for p1, a := range sa.Exps {
		for p2, b := range sb.Exps {
			pexp := a + b
			for d := 0; d < 3; d++ {
				eb[d] = newETable(imax, sb.L, a, b, abv[d])
			}
			var pab [3]float64
			for d := 0; d < 3; d++ {
				pab[d] = (a*sa.Center[d] + b*sb.Center[d]) / pexp
			}
			for p3, c := range sc.Exps {
				for p4, dd := range sd.Exps {
					qexp := c + dd
					for d := 0; d < 3; d++ {
						ek[d] = newETable(sc.L, sd.L, c, dd, cdv[d])
					}
					var pcd [3]float64
					for d := 0; d < 3; d++ {
						pcd[d] = (c*sc.Center[d] + dd*sd.Center[d]) / qexp
					}
					alpha := pexp * qexp / (pexp + qexp)
					pre := twoERIPre / (pexp * qexp * math.Sqrt(pexp+qexp))
					r := newRCube(tmax, alpha, pab[0]-pcd[0], pab[1]-pcd[1], pab[2]-pcd[2])
					for ca, A := range compA {
						for cb, B := range compB {
							cfab := sa.Coefs[ca][p1] * sb.Coefs[cb][p2] * pre
							for cc, C := range compC {
								for cd, D := range compD {
									coef := cfab * sc.Coefs[cc][p3] * sd.Coefs[cd][p4]
									value := func(ia [3]int) float64 {
										return contractHermite(
											eb[0][ia[0]][B[0]], eb[1][ia[1]][B[1]], eb[2][ia[2]][B[2]],
											ek[0][C[0]][D[0]], ek[1][C[1]][D[1]], ek[2][C[2]][D[2]], r)
									}
									if !deriv {
										val[((ca*len(compB)+cb)*len(compC)+cc)*len(compD)+cd] += coef * value(A)
										continue
									}
									wv := w4(sa.Start+ca, sb.Start+cb, sc.Start+cc, sd.Start+cd) * factor * coef
									if wv == 0 {
										continue
									}
									for d := 0; d < 3; d++ {
										up, down := A, A
										up[d]++
										down[d]--
										dv := 2 * a * value(up)
										if A[d] > 0 {
											dv -= float64(A[d]) * value(down)
										}
										grad[3*sa.Atom+d] += wv * dv
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return val
}

// SchwarzShellPairs returns the Cauchy–Schwarz bounds
// Q_ab = √max|(ab|ab)| per shell pair, used to screen quartets.
func SchwarzShellPairs(bs *basis.Set) *linalg.Mat {
	nsh := len(bs.Shells)
	q := linalg.NewMat(nsh, nsh)
	pairs := upperPairs(nsh)
	parallelFor(len(pairs), func(lo, hi int) {
		for idx := lo; idx < hi; idx++ {
			i, j := pairs[idx][0], pairs[idx][1]
			sa, sb := &bs.Shells[i], &bs.Shells[j]
			blk := fourCenterBlock(sa, sb, sa, sb, nil, 0, nil)
			na, nb := sa.NCart(), sb.NCart()
			var mx float64
			for ii := 0; ii < na; ii++ {
				for jj := 0; jj < nb; jj++ {
					v := math.Abs(blk[((ii*nb+jj)*na+ii)*nb+jj])
					if v > mx {
						mx = v
					}
				}
			}
			v := math.Sqrt(mx)
			q.Set(i, j, v)
			q.Set(j, i, v)
		}
	})
	return q
}

// FockDirect builds the two-electron part of the closed-shell Fock matrix
// G_μν = Σ_λσ D_λσ [(μν|λσ) − ½(μλ|νσ)] with integral recomputation and
// Schwarz screening — the conventional O(N⁴) path the paper's RI
// formulation replaces (§V-C).
func FockDirect(bs *basis.Set, dmat *linalg.Mat, sw *linalg.Mat, thresh float64) *linalg.Mat {
	n := bs.N
	nsh := len(bs.Shells)
	dmax := dmat.MaxAbs()
	type quartet struct{ a, b, c, d int }
	var quartets []quartet
	for i := 0; i < nsh; i++ {
		for j := 0; j < nsh; j++ {
			qij := sw.At(i, j)
			for k := 0; k < nsh; k++ {
				for l := 0; l < nsh; l++ {
					if qij*sw.At(k, l)*dmax < thresh {
						continue
					}
					quartets = append(quartets, quartet{i, j, k, l})
				}
			}
		}
	}
	var g *linalg.Mat
	{
		results := make(chan *linalg.Mat, 8)
		nw := 0
		chunk := (len(quartets) + 1) / 2
		if chunk == 0 {
			chunk = 1
		}
		for lo := 0; lo < len(quartets); lo += chunk {
			hi := lo + chunk
			if hi > len(quartets) {
				hi = len(quartets)
			}
			nw++
			go func(lo, hi int) {
				loc := linalg.NewMat(n, n)
				for qi := lo; qi < hi; qi++ {
					q := quartets[qi]
					sa, sb, sc, sd := &bs.Shells[q.a], &bs.Shells[q.b], &bs.Shells[q.c], &bs.Shells[q.d]
					blk := fourCenterBlock(sa, sb, sc, sd, nil, 0, nil)
					na, nb, nc, nd := sa.NCart(), sb.NCart(), sc.NCart(), sd.NCart()
					for i := 0; i < na; i++ {
						mu := sa.Start + i
						for j := 0; j < nb; j++ {
							nu := sb.Start + j
							for k := 0; k < nc; k++ {
								la := sc.Start + k
								for l := 0; l < nd; l++ {
									si := sd.Start + l
									v := blk[((i*nb+j)*nc+k)*nd+l]
									// Coulomb: J_μν += D_λσ (μν|λσ)
									loc.Add(mu, nu, dmat.At(la, si)*v)
									// Exchange: K_μλ += D_νσ (μν|λσ); G −= ½K
									loc.Add(mu, la, -0.5*dmat.At(nu, si)*v)
								}
							}
						}
					}
				}
				results <- loc
			}(lo, hi)
		}
		g = linalg.NewMat(n, n)
		for w := 0; w < nw; w++ {
			g.AxpyMat(1, <-results)
		}
	}
	return g
}

// FourCenterDerivHF accumulates the conventional closed-shell HF
// two-electron gradient
//
//	factor·Σ ∂(μν|λσ)/∂R · [½ D_μν D_λσ − ¼ D_μλ D_νσ]
//
// into grad, recomputing derivative integrals on the fly. Every ordered
// quartet is visited once with only the slot-1 derivative evaluated; the
// four-slot sum is recovered with the permuted weight
// W = 2·D_μν·D_λσ − ½·(D_μλ·D_νσ + D_νλ·D_μσ) (see package comment).
func FourCenterDerivHF(bs *basis.Set, dmat *linalg.Mat, sw *linalg.Mat, thresh, factor float64, grad []float64) {
	nsh := len(bs.Shells)
	dmax := dmat.MaxAbs()
	w4 := func(mu, nu, la, si int) float64 {
		return 2*dmat.At(mu, nu)*dmat.At(la, si) -
			0.5*(dmat.At(mu, la)*dmat.At(nu, si)+dmat.At(nu, la)*dmat.At(mu, si))
	}
	var quartets [][4]int
	for i := 0; i < nsh; i++ {
		for j := 0; j < nsh; j++ {
			qij := sw.At(i, j)
			for k := 0; k < nsh; k++ {
				for l := 0; l < nsh; l++ {
					if qij*sw.At(k, l)*dmax*dmax < thresh {
						continue
					}
					quartets = append(quartets, [4]int{i, j, k, l})
				}
			}
		}
	}
	reduceGrads(len(quartets), grad, func(lo, hi int, buf []float64) {
		for qi := lo; qi < hi; qi++ {
			q := quartets[qi]
			fourCenterBlock(&bs.Shells[q[0]], &bs.Shells[q[1]], &bs.Shells[q[2]], &bs.Shells[q[3]],
				w4, factor, buf)
		}
	})
}
