package cluster

import (
	"fmt"
	"math"

	"github.com/fragmd/fragmd/internal/coord"
)

// MonomerSpec describes one monomer of a simulated workload: where it
// sits and how large its fragment calculations are.
type MonomerSpec struct {
	Centroid [3]float64 // Å
	Atoms    int
	NBf      int
	NOcc     int
	NAux     int
	// Bonded lists covalently linked monomers (H-cap dependencies);
	// empty for molecular crystals.
	Bonded []int
}

// Polymer is a compact monomer/dimer/trimer reference.
type Polymer struct {
	M     [3]int32
	Order int8
}

func (p Polymer) members() []int32 { return p.M[:p.Order] }

// Workload is a fragment workload: monomers, enumerated polymers under
// the cutoffs, and the dependency metadata the simulator needs.
type Workload struct {
	Monomers  []MonomerSpec
	Polymers  []Polymer
	DimerCut  float64 // Å
	TrimerCut float64 // Å

	graph   *coord.Graph // shared scheduling task graph (internal/coord)
	refMono int
}

// Graph returns the workload's scheduling task graph in the shared
// internal/coord representation: per-polymer members, dependency touch
// sets (members ∪ bonded neighbours) and queue priorities.
func (w *Workload) Graph() *coord.Graph { return w.graph }

// RefMono returns the reference monomer the queue priorities are
// anchored to (the monomer farthest from the system centroid).
func (w *Workload) RefMono() int { return w.refMono }

// NewWorkload enumerates monomers, dimers within dimerCut and trimers
// whose three pairwise centroid distances are within trimerCut, using a
// cell-list neighbour search (the full 2M-electron workloads have >10⁴
// monomers and >10⁶ polymers).
func NewWorkload(monomers []MonomerSpec, dimerCut, trimerCut float64) *Workload {
	w := &Workload{Monomers: monomers, DimerCut: dimerCut, TrimerCut: trimerCut}
	n := len(monomers)

	// Cell list over the larger cutoff.
	cell := math.Max(dimerCut, trimerCut)
	if cell <= 0 {
		cell = 1
	}
	grid := map[[3]int][]int32{}
	key := func(c [3]float64) [3]int {
		return [3]int{int(math.Floor(c[0] / cell)), int(math.Floor(c[1] / cell)), int(math.Floor(c[2] / cell))}
	}
	for i, m := range monomers {
		k := key(m.Centroid)
		grid[k] = append(grid[k], int32(i))
	}
	neighbors := func(i int, cutoff float64) []int32 {
		var out []int32
		k := key(monomers[i].Centroid)
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for dz := -1; dz <= 1; dz++ {
					for _, j := range grid[[3]int{k[0] + dx, k[1] + dy, k[2] + dz}] {
						if int(j) == i {
							continue
						}
						if dist3(monomers[i].Centroid, monomers[j].Centroid) <= cutoff {
							out = append(out, j)
						}
					}
				}
			}
		}
		return out
	}

	// Monomers.
	for i := 0; i < n; i++ {
		w.Polymers = append(w.Polymers, Polymer{M: [3]int32{int32(i)}, Order: 1})
	}
	// Dimers.
	trimerNbrs := make([][]int32, n)
	for i := 0; i < n; i++ {
		for _, j := range neighbors(i, dimerCut) {
			if int32(i) < j {
				w.Polymers = append(w.Polymers, Polymer{M: [3]int32{int32(i), j}, Order: 2})
			}
		}
		nb := neighbors(i, trimerCut)
		trimerNbrs[i] = nb
	}
	// Trimers: for each pair (i, j) within trimerCut, common neighbours
	// k > j of both.
	for i := 0; i < n; i++ {
		inI := map[int32]bool{}
		for _, x := range trimerNbrs[i] {
			inI[x] = true
		}
		for _, j := range trimerNbrs[i] {
			if int32(i) >= j {
				continue
			}
			for _, k := range trimerNbrs[j] {
				if k > j && inI[k] {
					w.Polymers = append(w.Polymers, Polymer{M: [3]int32{int32(i), j, k}, Order: 3})
				}
			}
		}
	}

	w.buildDependencies()
	return w
}

// buildDependencies computes touch sets, queue priorities and the
// reference monomer, assembling the shared internal/coord task graph.
func (w *Workload) buildDependencies() {
	n := len(w.Monomers)
	members := make([][]int32, len(w.Polymers))
	touch := make([][]int32, len(w.Polymers))
	for pi, p := range w.Polymers {
		members[pi] = p.members()
		seen := map[int32]bool{}
		var t []int32
		for _, m := range p.members() {
			if !seen[m] {
				seen[m] = true
				t = append(t, m)
			}
			for _, b := range w.Monomers[m].Bonded {
				if !seen[int32(b)] {
					seen[int32(b)] = true
					t = append(t, int32(b))
				}
			}
		}
		touch[pi] = t
	}
	// Reference monomer (farthest from the system centroid) and queue
	// priorities via the shared policy computation (DESIGN.md §6).
	var c [3]float64
	for _, m := range w.Monomers {
		for k := 0; k < 3; k++ {
			c[k] += m.Centroid[k]
		}
	}
	for k := 0; k < 3; k++ {
		c[k] /= float64(n)
	}
	var dist []float64
	w.refMono, dist = coord.Priorities(n, members,
		func(mi int) [3]float64 { return w.Monomers[mi].Centroid }, c, -1)
	g, err := coord.NewGraph(n, members, touch, dist)
	if err != nil {
		// The workload enumerations above construct consistent inputs;
		// failing here is a programming error, not a user error.
		panic(fmt.Sprintf("cluster: inconsistent workload graph: %v", err))
	}
	w.graph = g
}

// Size returns the fragment dimensions of a polymer (sums over members).
func (w *Workload) Size(p Polymer) (nbf, nocc, naux int) {
	for _, m := range p.members() {
		nbf += w.Monomers[m].NBf
		nocc += w.Monomers[m].NOcc
		naux += w.Monomers[m].NAux
	}
	return
}

// Electrons returns the total electron count of the workload.
func (w *Workload) Electrons() int {
	n := 0
	for _, m := range w.Monomers {
		n += 2 * m.NOcc
	}
	return n
}

// CountByOrder returns the number of monomers, dimers and trimers.
func (w *Workload) CountByOrder() (m1, m2, m3 int) {
	for _, p := range w.Polymers {
		switch p.Order {
		case 1:
			m1++
		case 2:
			m2++
		default:
			m3++
		}
	}
	return
}

// --- workload builders for the paper's benchmark systems ----------------

// ccpvdz-like per-element function counts (Cartesian): H 5, C/N/O 15;
// auxiliary ≈ 3.3 × orbital.
func specFromComposition(heavy, hydrogens int, centroid [3]float64) MonomerSpec {
	nbf := 15*heavy + 5*hydrogens
	return MonomerSpec{
		Centroid: centroid,
		Atoms:    heavy + hydrogens,
		NBf:      nbf,
		NAux:     nbf * 33 / 10,
	}
}

// UreaWorkload builds a spherical urea-crystal workload with nMolecules
// molecules grouped molsPerMonomer per monomer (the paper uses 4 → 32
// atoms, 128 electrons per monomer) and the given cutoffs in Å.
func UreaWorkload(nMolecules, molsPerMonomer int, dimerCut, trimerCut float64) *Workload {
	cents := latticeSphereCentroids(nMolecules, 5.565, 4.684)
	var monomers []MonomerSpec
	for i := 0; i < len(cents); i += molsPerMonomer {
		hi := i + molsPerMonomer
		if hi > len(cents) {
			hi = len(cents)
		}
		var c [3]float64
		for _, x := range cents[i:hi] {
			for k := 0; k < 3; k++ {
				c[k] += x[k]
			}
		}
		for k := 0; k < 3; k++ {
			c[k] /= float64(hi - i)
		}
		mols := hi - i
		// Urea CH4N2O: 4 heavy + 4 H, 32 electrons per molecule.
		sp := specFromComposition(4*mols, 4*mols, c)
		sp.NOcc = 16 * mols
		monomers = append(monomers, sp)
	}
	return NewWorkload(monomers, dimerCut, trimerCut)
}

// ParacetamolWorkload builds the Fig. 7 strong-scaling system: an
// nMolecules paracetamol sphere, one molecule per monomer.
func ParacetamolWorkload(nMolecules int, dimerCut, trimerCut float64) *Workload {
	cents := latticeSphereCentroids(nMolecules, 7.1, 7.1)
	var monomers []MonomerSpec
	for _, c := range cents {
		// C8H9NO2: 11 heavy + 9 H, 80 electrons.
		sp := specFromComposition(11, 9, c)
		sp.NOcc = 40
		monomers = append(monomers, sp)
	}
	return NewWorkload(monomers, dimerCut, trimerCut)
}

// FibrilWorkload builds a synthetic β-fibril workload: strands ×
// residuesPerStrand glycine-like monomers (7–16 atoms) with covalent
// links along each strand (H-cap dependencies), 4.8 Å inter-strand
// spacing and 3.63 Å residue rise — the 6PQ5/2BEG analogues.
func FibrilWorkload(strands, residuesPerStrand int, dimerCut, trimerCut float64) *Workload {
	var monomers []MonomerSpec
	idx := func(s, r int) int { return s*residuesPerStrand + r }
	for s := 0; s < strands; s++ {
		for r := 0; r < residuesPerStrand; r++ {
			c := [3]float64{float64(r) * 3.63, 0, float64(s) * 4.8}
			// Gly residue: 3 heavy + 4 H (≈10 atoms with termini mix).
			sp := specFromComposition(3, 4, c)
			sp.NOcc = 15
			if r > 0 {
				sp.Bonded = append(sp.Bonded, idx(s, r-1))
			}
			if r < residuesPerStrand-1 {
				sp.Bonded = append(sp.Bonded, idx(s, r+1))
			}
			monomers = append(monomers, sp)
		}
	}
	return NewWorkload(monomers, dimerCut, trimerCut)
}

// UreaWorkloadPolymerTarget sizes a urea workload so that the polymer
// count lands near target (within ~15 %), used for weak-scaling studies
// with a constant number of polymers per GCD (Fig. 8).
func UreaWorkloadPolymerTarget(target, molsPerMonomer int, dimerCut, trimerCut float64) *Workload {
	lo, hi := molsPerMonomer*8, molsPerMonomer*8
	// Grow hi until it overshoots.
	for {
		w := UreaWorkload(hi, molsPerMonomer, dimerCut, trimerCut)
		if len(w.Polymers) >= target {
			break
		}
		hi *= 2
	}
	var best *Workload
	for iter := 0; iter < 20 && lo < hi; iter++ {
		mid := (lo + hi) / 2
		mid -= mid % molsPerMonomer
		if mid <= lo {
			break
		}
		w := UreaWorkload(mid, molsPerMonomer, dimerCut, trimerCut)
		best = w
		n := len(w.Polymers)
		switch {
		case n > target*115/100:
			hi = mid
		case n < target*85/100:
			lo = mid
		default:
			return w
		}
	}
	if best == nil {
		best = UreaWorkload(lo, molsPerMonomer, dimerCut, trimerCut)
	}
	return best
}

// latticeSphereCentroids returns n centroids filling a sphere cut from a
// tetragonal lattice with two sites per cell (Å).
func latticeSphereCentroids(n int, a, c float64) [][3]float64 {
	var out [][3]float64
	// Grow the radius until the sphere holds n sites.
	density := 2 / (a * a * c)
	radius := math.Cbrt(3 * float64(n) / (4 * math.Pi * density))
	for len(out) < n {
		out = out[:0]
		nmax := int(radius/math.Min(a, c)) + 2
		for i := -nmax; i <= nmax && len(out) < n+64; i++ {
			for j := -nmax; j <= nmax && len(out) < n+64; j++ {
				for k := -nmax; k <= nmax && len(out) < n+64; k++ {
					for half := 0; half < 2; half++ {
						x := float64(i) * a
						y := float64(j) * a
						z := float64(k) * c
						if half == 1 {
							x += a / 2
							y += a / 2
							z += c / 2
						}
						if math.Sqrt(x*x+y*y+z*z) <= radius {
							out = append(out, [3]float64{x, y, z})
						}
					}
				}
			}
		}
		if len(out) < n {
			radius *= 1.05
		}
	}
	return out[:n]
}

// String summarises the workload.
func (w *Workload) String() string {
	m1, m2, m3 := w.CountByOrder()
	return fmt.Sprintf("%d monomers, %d dimers, %d trimers (%d polymers, %d electrons)",
		m1, m2, m3, len(w.Polymers), w.Electrons())
}
