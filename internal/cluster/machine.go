// Package cluster is a discrete-event simulator of the paper's
// distributed AIMD execution on the Frontier and Perlmutter
// supercomputers. Real hardware at that scale is a gate this
// reproduction cannot cross (DESIGN.md §2), so the machines are modelled:
// workers are GCDs/GPUs with the published sustained FP64 matrix peaks, a
// fragment's execution time follows the RI-MP2 GEMM operation counts
// divided by a size-dependent efficiency curve, and the super-coordinator
// is a serialised resource with a per-assignment service time plus a
// dispatch round-trip latency.
//
// The simulator is the discrete-event backend of the shared scheduling
// core in internal/coord — the *same* policy implementation (priority
// queue ordered by distance-to-reference then size, per-monomer
// dependency release, optional global barrier, hierarchical group
// coordinators with batched dispatch and work stealing) that drives the
// live engine in package sched. That is what lets it regenerate the
// shapes of Fig. 7 (strong scaling), Fig. 8 (weak scaling), Table V
// (sustained PFLOP/s) and the §VII-A async-vs-sync latency gains, and
// lets scheduling-policy changes be A/B'd at simulated machine scale
// before they run a live trajectory.
package cluster

import "math"

// Machine models one HPC system.
type Machine struct {
	Name        string
	Nodes       int     // total nodes in the machine
	GCDsPerNode int     // accelerator dies per node
	PeakTF      float64 // sustained FP64 matrix TFLOP/s per GCD
	// EffMax and EffHalf parameterise the GEMM efficiency curve
	// eff(nbf) = EffMax · nbf / (nbf + EffHalf): small fragments run at
	// low FLOP rates (suboptimal GEMM shapes, FLOP-inefficient O(N³)
	// eigensolves and integrals — §VII-A), large fragments approach the
	// machine's practical ceiling.
	EffMax  float64
	EffHalf float64
	// DispatchLatency is the coordinator→worker round trip (seconds).
	DispatchLatency float64
	// CoordService is the serialised per-assignment coordinator time;
	// it produces the dynamic-load-balancing overhead the paper observes
	// at 4,096-node weak scaling (seconds).
	CoordService float64
	// GroupService and GroupLatency model the group-coordinator layer
	// of the hierarchical scheduler (DESIGN.md §6): the serialised
	// per-task service time of one group coordinator and its local
	// group→worker latency. Zero selects the defaults CoordService and
	// DispatchLatency/8 (group coordinators run the same bookkeeping on
	// the same hardware, but dispatch within their partition of the
	// interconnect).
	GroupService float64
	GroupLatency float64
	// RestartSeconds is how long a failed worker stays down before it
	// rejoins the pool (Options.MTBF failures; DESIGN.md §7). Zero
	// selects the default 30 s — a node reboot plus job-manager
	// re-registration, optimistic for a real machine but enough to make
	// recovery visibly non-free in the model.
	RestartSeconds float64
}

// groupService returns the effective group-coordinator per-task service
// time.
func (m Machine) groupService() float64 {
	if m.GroupService > 0 {
		return m.GroupService
	}
	return m.CoordService
}

// groupLatency returns the effective group→worker dispatch latency.
func (m Machine) groupLatency() float64 {
	if m.GroupLatency > 0 {
		return m.GroupLatency
	}
	return m.DispatchLatency / 8
}

// restartSeconds returns the effective worker restart delay.
func (m Machine) restartSeconds() float64 {
	if m.RestartSeconds > 0 {
		return m.RestartSeconds
	}
	return 30
}

// Frontier returns the OLCF Frontier model: 9,408 nodes × 4 MI250X
// (8 GCDs), 22.8 TFLOP/s sustained FP64 per GCD (1.715 EF total).
func Frontier() Machine {
	return Machine{
		Name:            "Frontier",
		Nodes:           9408,
		GCDsPerNode:     8,
		PeakTF:          22.8,
		EffMax:          0.80,
		EffHalf:         290,
		DispatchLatency: 300e-6,
		CoordService:    1.5e-6,
	}
}

// Perlmutter returns the NERSC Perlmutter model: 1,536 GPU nodes × 4
// A100, 18.4 TFLOP/s sustained FP64 per GPU (113 PF total). The A100
// model is relatively better on small fragments (lower EffHalf), as the
// paper observes (§VII-C).
func Perlmutter() Machine {
	return Machine{
		Name:            "Perlmutter",
		Nodes:           1536,
		GCDsPerNode:     4,
		PeakTF:          18.4,
		EffMax:          0.85,
		EffHalf:         170,
		DispatchLatency: 250e-6,
		CoordService:    1.5e-6,
	}
}

// Efficiency returns the modelled fraction of sustained peak a fragment
// with nbf basis functions achieves.
func (m Machine) Efficiency(nbf int) float64 {
	return m.EffMax * float64(nbf) / (float64(nbf) + m.EffHalf)
}

// TotalPeakPF returns the sustained FP64 peak of n nodes in PFLOP/s.
func (m Machine) TotalPeakPF(nodes int) float64 {
	return float64(nodes*m.GCDsPerNode) * m.PeakTF / 1e3
}

// RIMP2GradientFLOPs estimates the floating-point operations of one
// fragment RI-HF + RI-MP2 gradient from the leading GEMM terms:
//
//	B-tensor build + J^{-1/2} application:   2·naux²·nbf² + 4·naux·nbf³ (MO transforms)
//	(ia|jb) assembly (Eq. 9):                2·naux·nocc²·nvir²
//	amplitude/density/Γ/Λ stages:            ≈ 3× the (ia|jb) cost
//	Z-vector CG (≈10 iterations of G[M]):    10·4·naux·nbf²·nocc-ish
//	derivative contractions:                 ≈ 2·naux²·nbf²
//
// Absolute prefactors matter less than how cost scales with fragment
// size; the constants below reproduce the paper's few-second protein
// fragments and ~minutes/step million-electron aggregate workloads.
func RIMP2GradientFLOPs(nbf, nocc, naux int) float64 {
	nvir := nbf - nocc
	if nvir < 0 {
		nvir = 0
	}
	fb := float64(nbf)
	fo := float64(nocc)
	fv := float64(nvir)
	fx := float64(naux)
	b := 2*fx*fx*fb*fb + 4*fx*fb*fb*fb
	iajb := 2 * fx * fo * fo * fv * fv
	amp := 3 * iajb
	zvec := 40 * fx * fb * fb * fo
	deriv := 2 * fx * fx * fb * fb
	eig := 18 * fb * fb * fb // low-rate O(N³) phases, charged as FLOPs at GEMM rate penalty via Efficiency
	return b + iajb + amp + zvec + deriv + eig
}

// Seconds returns the modelled wall time of a fragment with the given
// dimensions on one GCD of m.
func (m Machine) Seconds(nbf, nocc, naux int) (secs, flops float64) {
	flops = RIMP2GradientFLOPs(nbf, nocc, naux)
	rate := m.PeakTF * 1e12 * m.Efficiency(nbf)
	return flops / rate, flops
}

// dist3 is a small vector helper shared by the workload builders.
func dist3(a, b [3]float64) float64 {
	dx, dy, dz := a[0]-b[0], a[1]-b[1], a[2]-b[2]
	return math.Sqrt(dx*dx + dy*dy + dz*dz)
}
