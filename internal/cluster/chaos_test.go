package cluster

import (
	"fmt"
	"strings"
	"testing"

	"github.com/fragmd/fragmd/internal/coord"
	"github.com/fragmd/fragmd/internal/resilience"
)

// A simulated run with a nonzero failure rate completes every time
// step, records the recoveries, and loses work — but no steps.
func TestSimulateMTBFFailuresRecover(t *testing.T) {
	w := UreaWorkload(96, 1, 4.0, 0)
	m := Frontier()
	m.RestartSeconds = 0.5

	clean, err := Simulate(w, m, Options{Nodes: 2, Steps: 3, Async: true})
	if err != nil {
		t.Fatal(err)
	}
	// MTBF of a fraction of the clean makespan per worker guarantees
	// failures strike mid-run.
	res, err := Simulate(w, m, Options{
		Nodes: 2, Steps: 3, Async: true,
		MTBF: clean.Makespan / 4, MaxRetries: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Recoveries == 0 {
		t.Fatal("no recoveries with MTBF a quarter of the makespan — failures never struck")
	}
	if res.LostWork <= 0 {
		t.Error("failures recorded but no lost work")
	}
	if res.RestartOverhead <= 0 {
		t.Error("restarting workers recorded no downtime")
	}
	if len(res.StepSeconds) != 3 {
		t.Fatalf("%d step spans, want 3", len(res.StepSeconds))
	}
	for i, s := range res.StepSeconds {
		if s <= 0 || s != s {
			t.Errorf("step %d span %g — a time step was lost", i, s)
		}
	}
	if res.Makespan < clean.Makespan {
		t.Errorf("failures sped the run up: %g < %g", res.Makespan, clean.Makespan)
	}
	if res.Evicted != 0 {
		t.Errorf("restartable failures evicted %d workers", res.Evicted)
	}
}

// Permanent failures evict workers; the run still completes on the
// survivors.
func TestSimulatePermanentFailuresEvict(t *testing.T) {
	w := UreaWorkload(64, 1, 4.0, 0)
	m := Frontier()
	clean, err := Simulate(w, m, Options{Nodes: 2, Steps: 2, Async: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(w, m, Options{
		Nodes: 2, Steps: 2, Async: true,
		MTBF: clean.Makespan, FailPermanent: true, MaxRetries: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evicted == 0 {
		t.Fatal("no workers evicted under permanent failures at MTBF ≈ makespan")
	}
	if res.Evicted >= res.Workers {
		t.Fatalf("all %d workers evicted yet the run completed", res.Workers)
	}
	if res.Recoveries == 0 {
		t.Error("evictions without reclaimed in-flight tasks")
	}
}

// Dispatch — and therefore the whole simulation — is deterministic for
// a fixed seed, with failures, stragglers and speculation all active.
func TestSimulateChaosDeterministicForSeed(t *testing.T) {
	w := UreaWorkload(64, 1, 4.0, 0)
	m := Frontier()
	m.RestartSeconds = 0.2
	run := func() ([]string, *Result) {
		inj, err := resilience.NewFailureInjector(resilience.InjectOptions{
			Seed: 13, TaskFailProb: 0.05, StragglerProb: 0.05, StragglerFactor: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		var trace []string
		res, err := Simulate(w, m, Options{
			Nodes: 1, Steps: 2, Async: true, Seed: 21, Jitter: 0.2,
			MTBF: 0.05, MaxRetries: 100, Speculate: true, Injector: inj,
			TraceDispatch: func(tk coord.Task, meta coord.DispatchMeta) {
				trace = append(trace, fmt.Sprintf("%d@%d#%d spec=%v", tk.Poly, tk.Step, meta.Attempt, meta.Speculative))
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return trace, res
	}
	t1, r1 := run()
	t2, r2 := run()
	if len(t1) != len(t2) {
		t.Fatalf("dispatch traces differ in length: %d vs %d", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("dispatch %d differs: %q vs %q", i, t1[i], t2[i])
		}
	}
	if r1.Makespan != r2.Makespan || r1.Recoveries != r2.Recoveries ||
		r1.LostWork != r2.LostWork || r1.Speculated != r2.Speculated {
		t.Errorf("results differ for the same seed:\n%+v\n%+v", r1, r2)
	}
	if r1.Recoveries == 0 {
		t.Error("chaos configuration produced no failures — test is vacuous")
	}
	if len(t1) <= r1.NPolymers*2 {
		t.Errorf("trace has %d dispatches for %d tasks — no retries/speculation visible",
			len(t1), r1.NPolymers*2)
	}
}

// Toggling MTBF must not perturb the jitter stream: a failure-free run
// and the baseline produce identical makespans when MTBF is far beyond
// the run's horizon.
func TestSimulateFailureRNGIndependentOfJitter(t *testing.T) {
	w := UreaWorkload(48, 1, 4.0, 0)
	m := Frontier()
	base, err := Simulate(w, m, Options{Nodes: 1, Steps: 2, Async: true, Seed: 3, Jitter: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	far, err := Simulate(w, m, Options{Nodes: 1, Steps: 2, Async: true, Seed: 3, Jitter: 0.3,
		MTBF: 1e12, MaxRetries: 1})
	if err != nil {
		t.Fatal(err)
	}
	if base.Makespan != far.Makespan {
		t.Errorf("enabling an (unreachable) MTBF changed the jitter draws: %g vs %g",
			base.Makespan, far.Makespan)
	}
}

func TestSimulateFailureValidation(t *testing.T) {
	w := UreaWorkload(16, 1, 4.0, 0)
	if _, err := Simulate(w, Frontier(), Options{Nodes: 1, Steps: 1, MTBF: -1}); err == nil {
		t.Error("negative MTBF accepted")
	}
	_, err := Simulate(w, Frontier(), Options{Nodes: 1, Steps: 1, MTBF: 10})
	if err == nil || !strings.Contains(err.Error(), "MaxRetries") {
		t.Errorf("MTBF without a retry budget: got %v, want a MaxRetries error", err)
	}
}
