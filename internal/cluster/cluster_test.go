package cluster

import (
	"math"
	"testing"
)

func TestWorkloadEnumeration(t *testing.T) {
	w := UreaWorkload(400, 4, 15.3, 15.3)
	m1, m2, m3 := w.CountByOrder()
	if m1 != 100 {
		t.Fatalf("monomers = %d, want 100", m1)
	}
	if m2 == 0 || m3 == 0 {
		t.Fatalf("expected dimers and trimers, got %d / %d", m2, m3)
	}
	// Electron accounting: 32 e− per urea molecule.
	if w.Electrons() != 400*32 {
		t.Errorf("electrons = %d, want %d", w.Electrons(), 400*32)
	}
	// Every trimer's pairwise distances must respect the cutoff.
	for _, p := range w.Polymers {
		if p.Order != 3 {
			continue
		}
		for a := 0; a < 3; a++ {
			for b := a + 1; b < 3; b++ {
				d := dist3(w.Monomers[p.M[a]].Centroid, w.Monomers[p.M[b]].Centroid)
				if d > 15.3+1e-9 {
					t.Fatalf("trimer pair distance %.2f beyond cutoff", d)
				}
			}
		}
	}
}

// The paper's 63,854-molecule system yields >2.8 M polymers at 15.3 Å
// cutoffs; our lattice workload must land in the same regime.
func TestMillionElectronPolymerCount(t *testing.T) {
	if testing.Short() {
		t.Skip("large enumeration")
	}
	w := UreaWorkload(63854, 4, 15.3, 15.3)
	if e := w.Electrons(); e != 2043328 {
		t.Errorf("electrons = %d, want 2,043,328", e)
	}
	if len(w.Polymers) < 1_500_000 {
		t.Errorf("polymers = %d, want >1.5M (paper: >2.8M contributions)", len(w.Polymers))
	}
	t.Logf("workload: %s", w)
}

func TestFLOPModelScaling(t *testing.T) {
	// Quintic-ish growth in fragment size: doubling nbf/nocc/naux must
	// grow FLOPs by far more than 2×.
	f1 := RIMP2GradientFLOPs(100, 20, 330)
	f2 := RIMP2GradientFLOPs(200, 40, 660)
	if f2 < 8*f1 {
		t.Errorf("FLOP model grows too slowly: %g → %g", f1, f2)
	}
	// Efficiency curve monotone increasing, bounded by EffMax.
	m := Frontier()
	prev := 0.0
	for _, nbf := range []int{50, 100, 400, 1200, 5000} {
		e := m.Efficiency(nbf)
		if e <= prev || e >= m.EffMax {
			t.Fatalf("efficiency curve broken at nbf=%d: %g", nbf, e)
		}
		prev = e
	}
}

func TestAsyncFasterThanSync(t *testing.T) {
	w := FibrilWorkload(4, 53, 20, 12) // the 2BEG analogue
	m := Perlmutter()
	async, err := Simulate(w, m, Options{Nodes: 1024, Steps: 4, Async: true})
	if err != nil {
		t.Fatal(err)
	}
	sync, err := Simulate(w, m, Options{Nodes: 1024, Steps: 4, Async: false})
	if err != nil {
		t.Fatal(err)
	}
	if async.AvgStep >= sync.AvgStep {
		t.Errorf("async step %.3fs not faster than sync %.3fs", async.AvgStep, sync.AvgStep)
	}
	gain := sync.AvgStep/async.AvgStep - 1
	t.Logf("2BEG analogue: async %.3fs vs sync %.3fs per step (%.0f%% gain; paper: 40%%)",
		async.AvgStep, sync.AvgStep, 100*gain)
	if gain < 0.05 || gain > 2.0 {
		t.Errorf("async gain %.0f%% outside plausible band", 100*gain)
	}
}

func TestStrongScalingEfficiency(t *testing.T) {
	w := UreaWorkload(2400, 4, 15.3, 15.3)
	m := Frontier()
	base, err := Simulate(w, m, Options{Nodes: 64, Steps: 3, Async: true})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Simulate(w, m, Options{Nodes: 256, Steps: 3, Async: true})
	if err != nil {
		t.Fatal(err)
	}
	speedup := base.AvgStep / big.AvgStep
	eff := speedup / (256.0 / 64.0)
	t.Logf("strong scaling 64→256 nodes: speedup %.2f, efficiency %.0f%%", speedup, 100*eff)
	if eff < 0.5 || eff > 1.05 {
		t.Errorf("parallel efficiency %.2f outside plausible band", eff)
	}
	// Peak fractions within the paper's observed 31–62%+ window.
	for _, r := range []*Result{base, big} {
		if r.PeakFraction < 0.2 || r.PeakFraction > 0.9 {
			t.Errorf("peak fraction %.2f at %d nodes outside band", r.PeakFraction, r.Nodes)
		}
	}
}

func TestWeakScalingShape(t *testing.T) {
	// Constant work per GCD (≈4 polymers/GCD): the effective step
	// latency should stay roughly flat as nodes and system grow
	// together.
	m := Frontier()
	var lat []float64
	for _, nodes := range []int{8, 16, 32} {
		gcds := nodes * m.GCDsPerNode
		w := UreaWorkloadPolymerTarget(4*gcds, 4, 15.3, 15.3)
		r, err := Simulate(w, m, Options{Nodes: nodes, Steps: 3, Async: true})
		if err != nil {
			t.Fatal(err)
		}
		lat = append(lat, r.AvgStep)
		t.Logf("nodes=%d polymers=%d (%.1f/GCD) step=%.1fs peak=%.0f%%",
			nodes, len(w.Polymers), float64(len(w.Polymers))/float64(gcds), r.AvgStep, 100*r.PeakFraction)
	}
	for i := 1; i < len(lat); i++ {
		if lat[i] > 1.8*lat[0] || lat[i] < lat[0]/1.8 {
			t.Errorf("weak scaling not flat: %.3fs vs %.3fs", lat[i], lat[0])
		}
	}
}

func TestSimValidation(t *testing.T) {
	w := UreaWorkload(40, 4, 15.3, 15.3)
	m := Frontier()
	if _, err := Simulate(w, m, Options{Nodes: 0, Steps: 1}); err == nil {
		t.Error("expected node validation error")
	}
	if _, err := Simulate(w, m, Options{Nodes: 10, Steps: 0}); err == nil {
		t.Error("expected step validation error")
	}
	if _, err := Simulate(w, m, Options{Nodes: 99999, Steps: 1}); err == nil {
		t.Error("expected too-many-nodes error")
	}
	if _, err := Simulate(w, m, Options{Nodes: 10, Steps: 1, Groups: -1}); err == nil {
		t.Error("expected negative-groups error")
	}
	if _, err := Simulate(w, m, Options{Nodes: 10, Steps: 1, Batch: -3}); err == nil {
		t.Error("expected negative-batch error")
	}
	if _, err := Simulate(w, m, Options{Nodes: 10, Steps: 1, Jitter: 1.5}); err == nil {
		t.Error("expected out-of-range jitter error")
	}
}

func TestSimConservationInvariants(t *testing.T) {
	w := UreaWorkload(200, 4, 15.3, 15.3)
	m := Frontier()
	r, err := Simulate(w, m, Options{Nodes: 8, Steps: 2, Async: true})
	if err != nil {
		t.Fatal(err)
	}
	// Total FLOPs = 2 × Σ per-polymer FLOPs.
	var want float64
	for _, p := range w.Polymers {
		nbf, nocc, naux := w.Size(p)
		want += RIMP2GradientFLOPs(nbf, nocc, naux)
	}
	want *= 2
	if math.Abs(r.TotalFLOPs-want)/want > 1e-12 {
		t.Errorf("FLOP accounting: %g vs %g", r.TotalFLOPs, want)
	}
	if r.Makespan <= 0 || r.PFLOPS <= 0 {
		t.Error("non-positive timing results")
	}
	// Makespan must be at least the serial-critical-path of one worker's
	// average share.
	if r.PeakFraction > 1 {
		t.Errorf("peak fraction %.2f exceeds 1", r.PeakFraction)
	}
}

func TestFibrilBondedDependencies(t *testing.T) {
	w := FibrilWorkload(2, 5, 10, 8)
	// Interior residues must have two bonded neighbours feeding their
	// touch sets.
	found := false
	for pi, p := range w.Polymers {
		if p.Order == 1 && len(w.Graph().Touch[pi]) >= 3 {
			found = true
			_ = p
			break
		}
	}
	if !found {
		t.Error("no monomer task carries bonded-neighbour dependencies")
	}
}

// dispatchBound builds a workload of thousands of tiny single-molecule
// fragments with no dimers (cutoff below the 4.59 Å lattice
// nearest-neighbour distance): ~1.4 ms tasks against ≥1024 workers make
// the flat serialised coordinator the bottleneck.
func dispatchBound() *Workload { return UreaWorkload(4000, 1, 4.0, 0) }

// The point of the hierarchy: on a dispatch-bound workload, batched
// group coordinators must cut super-coordinator utilisation and raise
// task throughput versus the flat scheduler.
func TestHierarchicalBeatsFlatWhenDispatchBound(t *testing.T) {
	w := dispatchBound()
	m := Frontier()
	flat, err := Simulate(w, m, Options{Nodes: 512, Steps: 2, Async: true})
	if err != nil {
		t.Fatal(err)
	}
	hier, err := Simulate(w, m, Options{Nodes: 512, Steps: 2, Async: true,
		Groups: 8, Batch: 32, Steal: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("flat: %.1f ms/step, util %.0f%%, %.0f tasks/s | hier: %.1f ms/step, util %.0f%%, %.0f tasks/s (%d batches, %d steals)",
		1e3*flat.AvgStep, 100*flat.CoordUtil, flat.Throughput,
		1e3*hier.AvgStep, 100*hier.CoordUtil, hier.Throughput, hier.Batches, hier.Steals)
	if flat.CoordUtil < 0.5 {
		t.Fatalf("flat coordinator utilisation %.2f — workload is not dispatch-bound, test is vacuous", flat.CoordUtil)
	}
	if hier.Throughput <= flat.Throughput {
		t.Errorf("hierarchical throughput %.0f tasks/s not above flat %.0f", hier.Throughput, flat.Throughput)
	}
	if hier.CoordUtil >= flat.CoordUtil {
		t.Errorf("hierarchical coordinator utilisation %.2f not below flat %.2f", hier.CoordUtil, flat.CoordUtil)
	}
	if hier.Batches >= flat.Batches {
		t.Errorf("batching did not reduce super-coordinator transfers: %d vs %d", hier.Batches, flat.Batches)
	}
	// Same physics either way: identical FLOPs executed.
	if math.Abs(hier.TotalFLOPs-flat.TotalFLOPs) > 1e-6*flat.TotalFLOPs {
		t.Errorf("hier executed %g FLOPs, flat %g — schedulers must do identical work", hier.TotalFLOPs, flat.TotalFLOPs)
	}
}

// Seeded jitter must be reproducible run-to-run and actually move the
// clock when the seed changes.
func TestJitterSeedReproducible(t *testing.T) {
	w := UreaWorkload(200, 4, 15.3, 15.3)
	m := Frontier()
	run := func(seed int64) *Result {
		r, err := Simulate(w, m, Options{Nodes: 8, Steps: 2, Async: true, Jitter: 0.2, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(42), run(42)
	if a.Makespan != b.Makespan {
		t.Errorf("same seed, different makespans: %.9f vs %.9f", a.Makespan, b.Makespan)
	}
	if c := run(43); c.Makespan == a.Makespan {
		t.Errorf("different seeds produced identical makespan %.9f", a.Makespan)
	}
	// Zero jitter ignores the seed entirely: the deterministic model.
	d1, err := Simulate(w, m, Options{Nodes: 8, Steps: 2, Async: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Simulate(w, m, Options{Nodes: 8, Steps: 2, Async: true, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if d1.Makespan != d2.Makespan {
		t.Errorf("deterministic model moved with the seed: %.9f vs %.9f", d1.Makespan, d2.Makespan)
	}
}

// Work stealing under jitter: with imbalanced groups the simulator must
// record steals, and stealing must not lose or duplicate work.
func TestWorkStealingActivates(t *testing.T) {
	w := dispatchBound()
	m := Frontier()
	r, err := Simulate(w, m, Options{Nodes: 64, Steps: 2, Async: true,
		Groups: 8, Batch: 64, Steal: true, Jitter: 0.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if r.Steals == 0 {
		t.Error("no steals recorded on an imbalanced hierarchical run")
	}
	var want float64
	for _, p := range w.Polymers {
		nbf, nocc, naux := w.Size(p)
		want += RIMP2GradientFLOPs(nbf, nocc, naux)
	}
	want *= float64(r.Steps)
	if math.Abs(r.TotalFLOPs-want)/want > 1e-12 {
		t.Errorf("stealing lost work: %g FLOPs executed, want %g", r.TotalFLOPs, want)
	}
}
