package cluster

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/fragmd/fragmd/internal/coord"
)

// Options configures one simulation run.
type Options struct {
	// Nodes actually used (≤ Machine.Nodes).
	Nodes int
	// Steps is the number of AIMD time steps.
	Steps int
	// Async enables the per-monomer asynchronous time-step scheme;
	// false inserts a global barrier between steps.
	Async bool

	// Groups is the number of group coordinators of the hierarchical
	// scheduler (≤ 1 = flat super-coordinator, the paper's baseline);
	// Batch is the number of tasks per super→group transfer (≤ 1 =
	// single-task dispatch); Steal enables work stealing between group
	// queues. See DESIGN.md §6.
	Groups int
	Batch  int
	Steal  bool

	// Jitter adds uniform ±Jitter relative noise to every task's
	// modelled execution time (0 ≤ Jitter < 1; 0 = the deterministic
	// cost model). Non-zero jitter creates the load imbalance that
	// exercises dynamic balancing and work stealing.
	Jitter float64
	// Seed seeds the jitter RNG so runs are reproducible run-to-run;
	// 0 selects the default seed 1.
	Seed int64

	// TraceDispatch, when non-nil, observes every dispatch in order —
	// the policy-equivalence test hook shared with the live engine.
	TraceDispatch func(t coord.Task, m coord.DispatchMeta)
}

// Result reports a simulated run.
type Result struct {
	Machine      string
	Nodes        int
	Workers      int
	Steps        int
	Makespan     float64   // seconds, whole run
	StepSeconds  []float64 // per-step span (first dispatch → last completion; spans overlap under async)
	AvgStep      float64   // effective time-step latency = Makespan/Steps (the paper's throughput measure)
	TotalFLOPs   float64
	PFLOPS       float64 // sustained TotalFLOPs / Makespan
	PeakFraction float64 // PFLOPS / machine sustained peak at this node count
	NPolymers    int

	// Coordination diagnostics of the hierarchical scheduler.
	CoordBusy  float64 // seconds the serialised super-coordinator was occupied
	CoordUtil  float64 // CoordBusy / Makespan
	Batches    int     // super→group batch transfers
	Steals     int     // inter-group work steals
	Throughput float64 // completed tasks per second of makespan
}

// doneEvent is a completion in the running set.
type doneEvent struct {
	t      float64
	task   coord.Task
	worker int
}

type eventHeap []doneEvent

func (h eventHeap) Len() int            { return len(h) }
func (h eventHeap) Less(i, j int) bool  { return h[i].t < h[j].t }
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(doneEvent)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	it := old[len(old)-1]
	*h = old[:len(old)-1]
	return it
}

// Simulate runs the discrete-event simulation of w on nodes of m,
// driving the shared internal/coord scheduling policy through a
// simulated-clock backend.
//
// Cost model: with a flat scheduler every dispatch serialises on the
// super-coordinator for CoordService and pays DispatchLatency to reach
// its worker. Under the hierarchy the super-coordinator is charged once
// per *batch* (amortising its serialised service across Batch tasks),
// the batch lands at its group coordinator after DispatchLatency, and
// each task then pays the group's own GroupService/GroupLatency — group
// coordinators serialise independently, in parallel.
func Simulate(w *Workload, m Machine, opt Options) (*Result, error) {
	if opt.Nodes <= 0 || opt.Nodes > m.Nodes {
		return nil, fmt.Errorf("cluster: node count %d outside 1..%d", opt.Nodes, m.Nodes)
	}
	if opt.Steps <= 0 {
		return nil, errors.New("cluster: need at least one step")
	}
	if opt.Jitter < 0 || opt.Jitter >= 1 {
		return nil, fmt.Errorf("cluster: jitter %g outside 0..1", opt.Jitter)
	}
	nWorkers := opt.Nodes * m.GCDsPerNode
	nPoly := len(w.Polymers)

	pol, err := coord.NewPolicy(w.Graph(), coord.Options{
		Steps: opt.Steps, Workers: nWorkers, Sync: !opt.Async,
		Groups: opt.Groups, Batch: opt.Batch, Steal: opt.Steal,
	})
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	hier := coord.Options{Groups: pol.Groups(), Batch: pol.Batch()}.Hierarchical()

	// Per-polymer cost (static workload: same every step).
	secs := make([]float64, nPoly)
	flops := make([]float64, nPoly)
	for pi, p := range w.Polymers {
		nbf, nocc, naux := w.Size(p)
		secs[pi], flops[pi] = m.Seconds(nbf, nocc, naux)
	}
	seed := opt.Seed
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))

	running := &eventHeap{}
	heap.Init(running)
	var now, superFree, superBusy float64
	groupFree := make([]float64, pol.Groups())  // group coordinator serialised resource
	groupReady := make([]float64, pol.Groups()) // when the group's latest batch lands
	gsvc, glat := m.groupService(), m.groupLatency()
	firstStart := make([]float64, opt.Steps)
	lastDone := make([]float64, opt.Steps)
	for t := range firstStart {
		firstStart[t] = math.Inf(1)
	}
	var totalFlops float64
	completions := 0

	backend := &coord.BackendFuncs{
		NumWorkers: nWorkers,
		DispatchFn: func(wk int, t coord.Task, meta coord.DispatchMeta) {
			if opt.TraceDispatch != nil {
				opt.TraceDispatch(t, meta)
			}
			var begin float64
			if !hier {
				start := math.Max(now, superFree)
				superFree = start + m.CoordService
				superBusy += m.CoordService
				begin = start + m.DispatchLatency
			} else {
				g := meta.Group
				if meta.Refill > 0 {
					// One serialised super-coordinator assignment for the
					// whole batch; the batch reaches the group after the
					// dispatch round trip.
					start := math.Max(now, superFree)
					superFree = start + m.CoordService
					superBusy += m.CoordService
					if arr := start + m.DispatchLatency; arr > groupReady[g] {
						groupReady[g] = arr
					}
				}
				if meta.Stolen > 0 {
					// Peer-to-peer transfer: one inter-group round trip.
					if arr := now + m.DispatchLatency; arr > groupReady[g] {
						groupReady[g] = arr
					}
				}
				start := math.Max(now, math.Max(groupReady[g], groupFree[g]))
				groupFree[g] = start + gsvc
				begin = start + glat
			}
			dur := secs[t.Poly]
			if opt.Jitter > 0 {
				dur *= 1 + opt.Jitter*(2*rng.Float64()-1)
			}
			if begin < firstStart[t.Step] {
				firstStart[t.Step] = begin
			}
			heap.Push(running, doneEvent{t: begin + dur, task: t, worker: wk})
		},
		AwaitFn: func() (coord.Completion, error) {
			ev := heap.Pop(running).(doneEvent)
			now = ev.t
			completions++
			if now > lastDone[ev.task.Step] {
				lastDone[ev.task.Step] = now
			}
			totalFlops += flops[ev.task.Poly]
			return coord.Completion{Worker: ev.worker, Task: ev.task}, nil
		},
	}
	if err := coord.Run(pol, backend, nil); err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}

	res := &Result{
		Machine:    m.Name,
		Nodes:      opt.Nodes,
		Workers:    nWorkers,
		Steps:      opt.Steps,
		Makespan:   now,
		TotalFLOPs: totalFlops,
		NPolymers:  nPoly,
		CoordBusy:  superBusy,
		Batches:    pol.Batches(),
		Steals:     pol.Steals(),
	}
	for t := 0; t < opt.Steps; t++ {
		res.StepSeconds = append(res.StepSeconds, lastDone[t]-firstStart[t])
	}
	// Effective step latency: total wall time over steps, the paper's
	// time-to-solution metric (under async, individual step spans
	// overlap and would double-count).
	res.AvgStep = now / float64(opt.Steps)
	res.PFLOPS = totalFlops / now / 1e15
	res.PeakFraction = res.PFLOPS / m.TotalPeakPF(opt.Nodes)
	res.CoordUtil = superBusy / now
	res.Throughput = float64(completions) / now
	return res, nil
}
