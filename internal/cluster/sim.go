package cluster

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/fragmd/fragmd/internal/coord"
	"github.com/fragmd/fragmd/internal/resilience"
)

// Options configures one simulation run.
type Options struct {
	// Nodes actually used (≤ Machine.Nodes).
	Nodes int
	// Steps is the number of AIMD time steps.
	Steps int
	// Async enables the per-monomer asynchronous time-step scheme;
	// false inserts a global barrier between steps.
	Async bool

	// Groups is the number of group coordinators of the hierarchical
	// scheduler (≤ 1 = flat super-coordinator, the paper's baseline);
	// Batch is the number of tasks per super→group transfer (≤ 1 =
	// single-task dispatch); Steal enables work stealing between group
	// queues. See DESIGN.md §6.
	Groups int
	Batch  int
	Steal  bool

	// ChargeRounds simulates the EE-MBE two-phase pipeline (DESIGN.md
	// §8): each step runs this many barriered rounds of per-monomer
	// charge tasks (costed as one monomer-sized SCF each) before its
	// polymer evaluations. 0 = vacuum MBE. Mirrors
	// sched.Options.Embed, so the two backends stay dispatch-identical.
	ChargeRounds int

	// Jitter adds uniform ±Jitter relative noise to every task's
	// modelled execution time (0 ≤ Jitter < 1; 0 = the deterministic
	// cost model). Non-zero jitter creates the load imbalance that
	// exercises dynamic balancing and work stealing.
	Jitter float64
	// Seed seeds the jitter and failure RNGs so runs are reproducible
	// run-to-run; 0 selects the default seed 1.
	Seed int64

	// MTBF is the per-worker mean time between failures in simulated
	// seconds (exponentially distributed, drawn from Seed); 0 disables
	// node failures. A failure kills the attempt in flight: the
	// coordinator re-queues it on a surviving worker and the failed
	// worker rejoins after Machine.RestartSeconds — or never, with
	// FailPermanent.
	MTBF float64
	// FailPermanent makes every failure a node loss for the rest of the
	// run: the worker is evicted instead of restarting.
	FailPermanent bool
	// MaxRetries is the per-task failure budget (required > 0 when MTBF
	// or an Injector can fail attempts; 0 keeps failures fatal).
	MaxRetries int
	// Speculate enables straggler re-dispatch: idle workers re-run the
	// oldest in-flight task, first copy wins.
	Speculate bool
	// Injector, when non-nil, adds seeded deterministic task failures
	// and stragglers on top of (or instead of) the MTBF process — the
	// chaos-test hook shared with the live engine.
	Injector *resilience.FailureInjector

	// TraceDispatch, when non-nil, observes every dispatch in order —
	// the policy-equivalence test hook shared with the live engine.
	TraceDispatch func(t coord.Task, m coord.DispatchMeta)
}

// Result reports a simulated run.
type Result struct {
	Machine      string
	Nodes        int
	Workers      int
	Steps        int
	Makespan     float64   // seconds, whole run
	StepSeconds  []float64 // per-step span (first dispatch → last completion; spans overlap under async)
	AvgStep      float64   // effective time-step latency = Makespan/Steps (the paper's throughput measure)
	TotalFLOPs   float64
	PFLOPS       float64 // sustained TotalFLOPs / Makespan
	PeakFraction float64 // PFLOPS / machine sustained peak at this node count
	NPolymers    int

	// Coordination diagnostics of the hierarchical scheduler.
	CoordBusy  float64 // seconds the serialised super-coordinator was occupied
	CoordUtil  float64 // CoordBusy / Makespan
	Batches    int     // super→group batch transfers
	Steals     int     // inter-group work steals
	Throughput float64 // completed tasks per second of makespan

	// Resilience diagnostics (Options.MTBF / Injector; DESIGN.md §7).
	Recoveries      int     // failed attempts recovered by re-queueing
	LostWork        float64 // seconds of computation thrown away by failures
	RestartOverhead float64 // seconds of worker downtime spent restarting
	Evicted         int     // workers lost for good (FailPermanent)
	Speculated      int     // straggler copies dispatched
}

// errNodeFailure marks an attempt lost to a simulated MTBF node
// failure.
var errNodeFailure = errors.New("cluster: simulated node failure")

// doneEvent is a completion in the running set.
type doneEvent struct {
	t      float64
	dur    float64 // modelled execution seconds of the attempt
	task   coord.Task
	worker int
	err    error // non-nil: the attempt was lost to a failure
	down   bool  // the worker is gone for good
}

type eventHeap []doneEvent

func (h eventHeap) Len() int            { return len(h) }
func (h eventHeap) Less(i, j int) bool  { return h[i].t < h[j].t }
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(doneEvent)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	it := old[len(old)-1]
	*h = old[:len(old)-1]
	return it
}

// Simulate runs the discrete-event simulation of w on nodes of m,
// driving the shared internal/coord scheduling policy through a
// simulated-clock backend.
//
// Cost model: with a flat scheduler every dispatch serialises on the
// super-coordinator for CoordService and pays DispatchLatency to reach
// its worker. Under the hierarchy the super-coordinator is charged once
// per *batch* (amortising its serialised service across Batch tasks),
// the batch lands at its group coordinator after DispatchLatency, and
// each task then pays the group's own GroupService/GroupLatency — group
// coordinators serialise independently, in parallel.
func Simulate(w *Workload, m Machine, opt Options) (*Result, error) {
	if opt.Nodes <= 0 || opt.Nodes > m.Nodes {
		return nil, fmt.Errorf("cluster: node count %d outside 1..%d", opt.Nodes, m.Nodes)
	}
	if opt.Steps <= 0 {
		return nil, errors.New("cluster: need at least one step")
	}
	if opt.Jitter < 0 || opt.Jitter >= 1 {
		return nil, fmt.Errorf("cluster: jitter %g outside 0..1", opt.Jitter)
	}
	if opt.MTBF < 0 {
		return nil, fmt.Errorf("cluster: MTBF %g must not be negative", opt.MTBF)
	}
	if opt.MTBF > 0 && opt.MaxRetries <= 0 {
		return nil, errors.New("cluster: MTBF failures need a positive MaxRetries budget")
	}
	nWorkers := opt.Nodes * m.GCDsPerNode
	nPoly := len(w.Polymers)

	pol, err := coord.NewPolicy(w.Graph(), coord.Options{
		Steps: opt.Steps, Workers: nWorkers, Sync: !opt.Async,
		Groups: opt.Groups, Batch: opt.Batch, Steal: opt.Steal,
		MaxRetries: opt.MaxRetries, Speculate: opt.Speculate,
		ChargeRounds: opt.ChargeRounds,
	})
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	hier := coord.Options{Groups: pol.Groups(), Batch: pol.Batch()}.Hierarchical()

	// Per-polymer cost (static workload: same every step).
	secs := make([]float64, nPoly)
	flops := make([]float64, nPoly)
	for pi, p := range w.Polymers {
		nbf, nocc, naux := w.Size(p)
		secs[pi], flops[pi] = m.Seconds(nbf, nocc, naux)
	}
	// Per-monomer charge-task cost: one monomer-sized SCF (the phase-1
	// Mulliken derivation of EE-MBE).
	var chargeSecs, chargeFlops []float64
	if opt.ChargeRounds > 0 {
		chargeSecs = make([]float64, len(w.Monomers))
		chargeFlops = make([]float64, len(w.Monomers))
		for mi, ms := range w.Monomers {
			chargeSecs[mi], chargeFlops[mi] = m.Seconds(ms.NBf, ms.NOcc, ms.NAux)
		}
	}
	taskCost := func(t coord.Task) (float64, float64) {
		if int(t.Phase) < opt.ChargeRounds {
			return chargeSecs[t.Poly], chargeFlops[t.Poly]
		}
		return secs[t.Poly], flops[t.Poly]
	}
	seed := opt.Seed
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))

	running := &eventHeap{}
	heap.Init(running)
	var now, superFree, superBusy float64
	groupFree := make([]float64, pol.Groups())  // group coordinator serialised resource
	groupReady := make([]float64, pol.Groups()) // when the group's latest batch lands
	gsvc, glat := m.groupService(), m.groupLatency()
	firstStart := make([]float64, opt.Steps)
	lastDone := make([]float64, opt.Steps)
	for t := range firstStart {
		firstStart[t] = math.Inf(1)
	}
	var totalFlops float64
	completions := 0

	// Failure machinery: each worker's failure times follow a seeded
	// exponential process (separate RNG so toggling MTBF never perturbs
	// the jitter draws); a failed worker is unavailable until
	// availableAt[w].
	inj := opt.Injector
	var lostWork, restartOverhead float64
	availableAt := make([]float64, nWorkers)
	tasksDone := make([]int, nWorkers)
	var nextFail []float64
	var failRng *rand.Rand
	restart := m.restartSeconds()
	if opt.MTBF > 0 {
		failRng = rand.New(rand.NewSource(seed ^ 0x6a09e667f3bcc908))
		nextFail = make([]float64, nWorkers)
		for wk := range nextFail {
			nextFail[wk] = failRng.ExpFloat64() * opt.MTBF
		}
	}

	backend := &coord.BackendFuncs{
		NumWorkers: nWorkers,
		DispatchFn: func(wk int, t coord.Task, meta coord.DispatchMeta) {
			if opt.TraceDispatch != nil {
				opt.TraceDispatch(t, meta)
			}
			var begin float64
			if !hier {
				start := math.Max(now, superFree)
				superFree = start + m.CoordService
				superBusy += m.CoordService
				begin = start + m.DispatchLatency
			} else {
				g := meta.Group
				if meta.Refill > 0 {
					// One serialised super-coordinator assignment for the
					// whole batch; the batch reaches the group after the
					// dispatch round trip.
					start := math.Max(now, superFree)
					superFree = start + m.CoordService
					superBusy += m.CoordService
					if arr := start + m.DispatchLatency; arr > groupReady[g] {
						groupReady[g] = arr
					}
				}
				if meta.Stolen > 0 {
					// Peer-to-peer transfer: one inter-group round trip.
					if arr := now + m.DispatchLatency; arr > groupReady[g] {
						groupReady[g] = arr
					}
				}
				start := math.Max(now, math.Max(groupReady[g], groupFree[g]))
				groupFree[g] = start + gsvc
				begin = start + glat
			}
			begin = math.Max(begin, availableAt[wk]) // node still restarting
			dur, _ := taskCost(t)
			if opt.Jitter > 0 {
				dur *= 1 + opt.Jitter*(2*rng.Float64()-1)
			}
			dur *= inj.Straggle(wk, t.Poly, t.Step)
			if begin < firstStart[t.Step] {
				firstStart[t.Step] = begin
			}
			if inj.WorkerDies(wk, tasksDone[wk]) {
				// Injected node death: the attempt dies with the worker,
				// which never comes back.
				heap.Push(running, doneEvent{t: begin, task: t, worker: wk,
					err: resilience.ErrWorkerDeath, down: true})
				return
			}
			if nextFail != nil && nextFail[wk] < begin+dur {
				// An MTBF failure strikes before the attempt completes
				// (possibly while the node sat idle — the dispatch then
				// fails on arrival). The work done so far is lost; the
				// node restarts, or is gone with FailPermanent. The
				// next failure is drawn from the moment the node is
				// back up — downtime accrues no failures.
				failAt := math.Max(begin, nextFail[wk])
				nextFail[wk] = failAt + restart + failRng.ExpFloat64()*opt.MTBF
				lostWork += failAt - begin
				if !opt.FailPermanent {
					availableAt[wk] = failAt + restart
					restartOverhead += restart
				}
				heap.Push(running, doneEvent{t: failAt, task: t, worker: wk,
					err: errNodeFailure, down: opt.FailPermanent})
				return
			}
			if inj.FailTask(t.Poly, t.Step, meta.Attempt) {
				// Injected task failure: the attempt runs to completion
				// and its result is lost.
				lostWork += dur
				heap.Push(running, doneEvent{t: begin + dur, dur: dur, task: t, worker: wk,
					err: resilience.ErrInjected})
				return
			}
			heap.Push(running, doneEvent{t: begin + dur, dur: dur, task: t, worker: wk})
		},
		AwaitFn: func(context.Context) (coord.Completion, error) {
			ev := heap.Pop(running).(doneEvent)
			now = ev.t
			if ev.err != nil {
				return coord.Completion{Worker: ev.worker, Task: ev.task,
					Err:        fmt.Errorf("cluster: task %v on worker %d: %w", ev.task, ev.worker, ev.err),
					WorkerDown: ev.down}, nil
			}
			tasksDone[ev.worker]++
			if pol.Completed(ev.task) {
				// Losing copy of a speculated task: its payload is
				// dropped, the attempt's seconds join the lost work.
				lostWork += ev.dur
				return coord.Completion{Worker: ev.worker, Task: ev.task}, nil
			}
			completions++
			if now > lastDone[ev.task.Step] {
				lastDone[ev.task.Step] = now
			}
			_, fl := taskCost(ev.task)
			totalFlops += fl
			return coord.Completion{Worker: ev.worker, Task: ev.task}, nil
		},
	}
	runStats, err := coord.RunContext(context.Background(), pol, backend, nil)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}

	res := &Result{
		Machine:    m.Name,
		Nodes:      opt.Nodes,
		Workers:    nWorkers,
		Steps:      opt.Steps,
		Makespan:   now,
		TotalFLOPs: totalFlops,
		NPolymers:  nPoly,
		CoordBusy:  superBusy,
		Batches:    pol.Batches(),
		Steals:     pol.Steals(),

		Recoveries:      runStats.Retries,
		LostWork:        lostWork,
		RestartOverhead: restartOverhead,
		Evicted:         runStats.Evicted,
		Speculated:      runStats.Speculated,
	}
	for t := 0; t < opt.Steps; t++ {
		res.StepSeconds = append(res.StepSeconds, lastDone[t]-firstStart[t])
	}
	// Effective step latency: total wall time over steps, the paper's
	// time-to-solution metric (under async, individual step spans
	// overlap and would double-count).
	res.AvgStep = now / float64(opt.Steps)
	res.PFLOPS = totalFlops / now / 1e15
	res.PeakFraction = res.PFLOPS / m.TotalPeakPF(opt.Nodes)
	res.CoordUtil = superBusy / now
	res.Throughput = float64(completions) / now
	return res, nil
}
