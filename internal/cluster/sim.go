package cluster

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
)

// Options configures one simulation run.
type Options struct {
	// Nodes actually used (≤ Machine.Nodes).
	Nodes int
	// Steps is the number of AIMD time steps.
	Steps int
	// Async enables the per-monomer asynchronous time-step scheme;
	// false inserts a global barrier between steps.
	Async bool
}

// Result reports a simulated run.
type Result struct {
	Machine      string
	Nodes        int
	Workers      int
	Steps        int
	Makespan     float64   // seconds, whole run
	StepSeconds  []float64 // per-step span (first dispatch → last completion; spans overlap under async)
	AvgStep      float64   // effective time-step latency = Makespan/Steps (the paper's throughput measure)
	TotalFLOPs   float64
	PFLOPS       float64 // sustained TotalFLOPs / Makespan
	PeakFraction float64 // PFLOPS / machine sustained peak at this node count
	NPolymers    int
}

// simTask is a queued polymer evaluation.
type simTask struct {
	poly int32
	step int32
}

// readyHeap orders tasks by (step, distance to reference asc, order desc).
type readyHeap struct {
	items []simTask
	w     *Workload
}

func (h *readyHeap) Len() int { return len(h.items) }
func (h *readyHeap) Less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if a.step != b.step {
		return a.step < b.step
	}
	da, db := h.w.prioDist[a.poly], h.w.prioDist[b.poly]
	if da != db {
		return da < db
	}
	return h.w.Polymers[a.poly].Order > h.w.Polymers[b.poly].Order
}
func (h *readyHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *readyHeap) Push(x interface{}) { h.items = append(h.items, x.(simTask)) }
func (h *readyHeap) Pop() interface{} {
	old := h.items
	it := old[len(old)-1]
	h.items = old[:len(old)-1]
	return it
}

// doneEvent is a completion in the running set.
type doneEvent struct {
	t    float64
	task simTask
}

type eventHeap []doneEvent

func (h eventHeap) Len() int            { return len(h) }
func (h eventHeap) Less(i, j int) bool  { return h[i].t < h[j].t }
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(doneEvent)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	it := old[len(old)-1]
	*h = old[:len(old)-1]
	return it
}

// Simulate runs the discrete-event simulation of w on nodes of m.
func Simulate(w *Workload, m Machine, opt Options) (*Result, error) {
	if opt.Nodes <= 0 || opt.Nodes > m.Nodes {
		return nil, fmt.Errorf("cluster: node count %d outside 1..%d", opt.Nodes, m.Nodes)
	}
	if opt.Steps <= 0 {
		return nil, errors.New("cluster: need at least one step")
	}
	nWorkers := opt.Nodes * m.GCDsPerNode
	nPoly := len(w.Polymers)
	nMono := len(w.Monomers)
	steps := int32(opt.Steps)

	// Per-polymer cost (static workload: same every step).
	secs := make([]float64, nPoly)
	flops := make([]float64, nPoly)
	for pi, p := range w.Polymers {
		nbf, nocc, naux := w.Size(p)
		secs[pi], flops[pi] = m.Seconds(nbf, nocc, naux)
	}

	monoStep := make([]int32, nMono)
	monoPending := make([]int32, nMono)
	for mi := range monoPending {
		monoPending[mi] = int32(len(w.touching[mi]))
	}
	nextStep := make([]int32, nPoly)
	var globalMin int32

	ready := &readyHeap{w: w}
	heap.Init(ready)

	tryEnqueue := func(pi int32) {
		for nextStep[pi] < steps {
			t := nextStep[pi]
			ok := true
			for _, mi := range w.touch[pi] {
				if monoStep[mi] < t {
					ok = false
					break
				}
			}
			if ok && !opt.Async && globalMin < t {
				ok = false
			}
			if !ok {
				return
			}
			heap.Push(ready, simTask{poly: pi, step: t})
			nextStep[pi]++
		}
	}
	for pi := int32(0); pi < int32(nPoly); pi++ {
		tryEnqueue(pi)
	}

	running := &eventHeap{}
	heap.Init(running)
	idle := nWorkers
	var now, coordFree float64
	firstStart := make([]float64, opt.Steps)
	lastDone := make([]float64, opt.Steps)
	for t := range firstStart {
		firstStart[t] = math.Inf(1)
	}
	var totalFlops float64
	completions := 0
	target := nPoly * opt.Steps

	advance := func(mi int32, t int32) {
		monoStep[mi] = t + 1
		monoPending[mi] = int32(len(w.touching[mi]))
		if !opt.Async {
			newMin := monoStep[mi]
			for _, s := range monoStep {
				if s < newMin {
					newMin = s
				}
			}
			if newMin > globalMin {
				globalMin = newMin
				for pi := int32(0); pi < int32(nPoly); pi++ {
					tryEnqueue(pi)
				}
			}
			return
		}
		for _, pi := range w.touching[mi] {
			tryEnqueue(pi)
		}
	}

	for completions < target {
		// Dispatch while workers and tasks are available.
		for idle > 0 && ready.Len() > 0 {
			task := heap.Pop(ready).(simTask)
			start := math.Max(now, coordFree)
			coordFree = start + m.CoordService
			begin := start + m.DispatchLatency
			end := begin + secs[task.poly]
			if begin < firstStart[task.step] {
				firstStart[task.step] = begin
			}
			heap.Push(running, doneEvent{t: end, task: task})
			idle--
		}
		if running.Len() == 0 {
			return nil, errors.New("cluster: deadlock — no running tasks")
		}
		ev := heap.Pop(running).(doneEvent)
		now = ev.t
		idle++
		completions++
		t := ev.task.step
		if now > lastDone[t] {
			lastDone[t] = now
		}
		totalFlops += flops[ev.task.poly]
		for _, mi := range w.touch[ev.task.poly] {
			monoPending[mi]--
			if monoPending[mi] == 0 && monoStep[mi] == t {
				advance(mi, t)
			}
		}
	}

	res := &Result{
		Machine:    m.Name,
		Nodes:      opt.Nodes,
		Workers:    nWorkers,
		Steps:      opt.Steps,
		Makespan:   now,
		TotalFLOPs: totalFlops,
		NPolymers:  nPoly,
	}
	for t := 0; t < opt.Steps; t++ {
		res.StepSeconds = append(res.StepSeconds, lastDone[t]-firstStart[t])
	}
	// Effective step latency: total wall time over steps, the paper's
	// time-to-solution metric (under async, individual step spans
	// overlap and would double-count).
	res.AvgStep = now / float64(opt.Steps)
	res.PFLOPS = totalFlops / now / 1e15
	res.PeakFraction = res.PFLOPS / m.TotalPeakPF(opt.Nodes)
	return res, nil
}
