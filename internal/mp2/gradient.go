package mp2

import (
	"errors"
	"math"

	"github.com/fragmd/fragmd/internal/integrals"
	"github.com/fragmd/fragmd/internal/linalg"
)

// Gradient returns the analytic nuclear gradient of the total
// RI-HF + RI-MP2 energy (flat [3N], Hartree/Bohr).
//
// The implementation follows the Lagrangian formulation the paper's
// appendix is based on (Weigend–Häser extended to an RI-HF reference),
// re-derived here in the occupation-2 convention. With
// t_ijab = (ia|jb)/Δ_ijab, T̃ = 2t − t(a↔b) and B the RI factor
// (one J^{-1/2} absorbed):
//
//	γ^P_ia   = Σ_jb T̃_ijab B^P_jb                       (amplitude 3-index density)
//	P_ij     = −2 Σ_kab T̃_ikab t_jkab                   (unrelaxed occ block)
//	P_ab     = +2 Σ_ijc T̃_ijac t_ijbc                   (unrelaxed vir block)
//	Λ_pi     = 4 Σ_Pa B^P_pa γ^P_ia                     (occ-column Lagrangian)
//	Λ_pa     = 4 Σ_Pi B^P_pi γ^P_ia                     (vir-column Lagrangian)
//	Θ_ai     = Λ_ai − Λ_ia + 4 (CᵀG[P̄]C)_ai            (Z-vector RHS)
//	A z = Θ with A_{ai,bj} = (εa−εi)δ + 4(ai|bj) − (ab|ij) − (aj|ib)
//
// The total derivative then assembles exactly four AO contraction
// classes (paper Eq. 10): h^ξ with D_HF + P̄ + Pz; S^ξ with the total
// energy-weighted W; (P|μν)^ξ with Z^P (separable + 4·J^{-1/2}γ); and
// (P|Q)^ξ with ζ. No four-center derivatives appear anywhere.
//
// Every piece above is finite-difference validated in the test suite.
func (r *Result) Gradient() ([]float64, error) {
	parts, err := r.gradientParts(false)
	if err != nil {
		return nil, err
	}
	return parts["total"], nil
}

// Gradients returns the analytic nuclear gradient plus, when the
// reference SCF was embedded in a point-charge field, the gradient on
// the field sites (nil in vacuum). The embedding enters the MP2
// derivative exactly like any one-electron operator: contracted with
// the relaxed density D_HF + P̄ + Pz, holding the charge values fixed.
func (r *Result) Gradients() (grad, siteGrad []float64, err error) {
	parts, err := r.gradientParts(false)
	if err != nil {
		return nil, nil, err
	}
	return parts["total"], r.embedGrad, nil
}

// gradientParts computes the gradient; with split=true the two-electron
// contraction classes are evaluated in separate passes and returned under
// individual keys (diagnostics), otherwise a single accumulated pass is
// used and only "total" is returned.
func (r *Result) gradientParts(split bool) (map[string][]float64, error) {
	ref := r.SCF
	if ref.B == nil {
		return nil, errors.New("mp2: gradient requires RI intermediates")
	}
	nbf := ref.Bs.N
	nocc := ref.NOcc
	nvir := ref.NVirt()
	naux := ref.Aux.N
	eps := ref.Eps
	tuner := r.opts.Tuner
	// The gradient reuses the batched Qov from the energy stage: bov is
	// a pure reorder of it, and the full-MO bmo is built lazily here
	// with the same two-batched-GEMM pipeline.
	if r.bov == nil {
		r.buildBov()
	}
	if r.bmo == nil {
		r.buildBmo()
	}

	// ---- amplitudes, unrelaxed density blocks, gamma --------------------
	// t_ij kept for all ordered (i,j): t_ji = t_ijᵀ.
	tAll := make([]*linalg.Mat, nocc*nocc)
	vij := linalg.NewMat(nvir, nvir)
	for i := 0; i < nocc; i++ {
		bi := r.bov.Slice(i)
		for j := i; j < nocc; j++ {
			tuner.Gemm(linalg.Trans, linalg.NoTrans, 1, bi, r.bov.Slice(j), 0, vij)
			tij := linalg.NewMat(nvir, nvir)
			for a := 0; a < nvir; a++ {
				ea := eps[i] + eps[j] - eps[nocc+a]
				for b := 0; b < nvir; b++ {
					tij.Set(a, b, vij.At(a, b)/(ea-eps[nocc+b]))
				}
			}
			tAll[i*nocc+j] = tij
			if i != j {
				tAll[j*nocc+i] = tij.T()
			}
		}
	}
	tildeOf := func(t *linalg.Mat) *linalg.Mat {
		tt := linalg.NewMat(nvir, nvir)
		for a := 0; a < nvir; a++ {
			for b := 0; b < nvir; b++ {
				tt.Set(a, b, 2*t.At(a, b)-t.At(b, a))
			}
		}
		return tt
	}

	poo := linalg.NewMat(nocc, nocc)
	pvv := linalg.NewMat(nvir, nvir)
	gamma := linalg.NewTensor3(nocc, naux, nvir) // γ^P_ia arranged (i, P, a)
	for i := 0; i < nocc; i++ {
		gi := gamma.Slice(i)
		for j := 0; j < nocc; j++ {
			tij := tAll[i*nocc+j]
			tt := tildeOf(tij)
			// P_ij = −2 Σ_kab T̃_ikab t_jkab — accumulate at (i, j) over k=j loop index trick:
			// here the pair (i,k=j) contributes to P with second index scanned below.
			// γ_i += B_j · T̃_ijᵀ.
			tuner.Gemm(linalg.NoTrans, linalg.Trans, 1, r.bov.Slice(j), tt, 1, gi)
			// P_vv += 2 T̃_ijᵀ? : P_ab = 2 Σ_c T̃_ij[a,c] t_ij[b,c] → GEMM NT.
			tuner.Gemm(linalg.NoTrans, linalg.Trans, 2, tt, tij, 1, pvv)
		}
	}
	for i := 0; i < nocc; i++ {
		for j := 0; j < nocc; j++ {
			var s float64
			for k := 0; k < nocc; k++ {
				s += linalg.Dot(tildeOf(tAll[i*nocc+k]), tAll[j*nocc+k])
			}
			poo.Set(i, j, -2*s)
		}
	}

	// ---- Lagrangian Λ ----------------------------------------------------
	lamOcc := linalg.NewMat(nbf, nocc) // Λ_pi
	lamVir := linalg.NewMat(nbf, nvir) // Λ_pa
	bpo := linalg.NewMat(nbf, nocc)
	bpv := linalg.NewMat(nbf, nvir)
	gp := linalg.NewMat(nocc, nvir)
	for p := 0; p < naux; p++ {
		bp := r.bmo.Slice(p)
		for q := 0; q < nbf; q++ {
			copy(bpo.Row(q), bp.Row(q)[:nocc])
			copy(bpv.Row(q), bp.Row(q)[nocc:])
		}
		for i := 0; i < nocc; i++ {
			copy(gp.Row(i), gamma.Slice(i).Row(p))
		}
		// Λ_pi += 4 Σ_a B_pa γ_ia ; Λ_pa += 4 Σ_i B_pi γ_ia.
		tuner.Gemm(linalg.NoTrans, linalg.Trans, 4, bpv, gp, 1, lamOcc)
		tuner.Gemm(linalg.NoTrans, linalg.NoTrans, 4, bpo, gp, 1, lamVir)
	}

	// ---- AO response densities and the G operator ------------------------
	co := ref.COcc()
	cv := ref.CVirt()
	pooAO := sandwich(tuner, co, poo, co)
	pvvAO := sandwich(tuner, cv, pvv, cv)
	pbar := pooAO.Clone()
	pbar.AxpyMat(1, pvvAO)

	gop := func(m *linalg.Mat) *linalg.Mat { return r.gOperator(m) }
	gpbarMO := r.toMO(gop(pbar))

	// ---- Z-vector ---------------------------------------------------------
	theta := linalg.NewMat(nvir, nocc)
	for a := 0; a < nvir; a++ {
		for i := 0; i < nocc; i++ {
			theta.Set(a, i, lamOcc.At(nocc+a, i)-lamVir.At(i, a)+4*gpbarMO.At(nocc+a, i))
		}
	}
	z, err := r.solveZVector(theta, co, cv, gop)
	if err != nil {
		return nil, err
	}
	dz := symOV(tuner, cv, z, co) // Cv z Coᵀ + Co zᵀ Cvᵀ
	pz := dz.Clone().Scale(-0.5)

	// ---- total one-particle densities -------------------------------------
	ptot := pbar.Clone()
	ptot.AxpyMat(1, pz)
	dh := ref.D.Clone() // HF density
	dh.AxpyMat(1, ptot)

	// ---- energy-weighted density W (MO, then AO) --------------------------
	wmo := linalg.NewMat(nbf, nbf)
	for i := 0; i < nocc; i++ {
		// HF part: W_ij += 2 εi δij (occupation-2 convention).
		wmo.Add(i, i, 2*eps[i])
		for j := 0; j < nocc; j++ {
			wmo.Add(i, j, 0.5*(eps[i]+eps[j])*poo.At(i, j)+0.5*lamOcc.At(i, j))
		}
	}
	for a := 0; a < nvir; a++ {
		for b := 0; b < nvir; b++ {
			wmo.Add(nocc+a, nocc+b, 0.5*(eps[nocc+a]+eps[nocc+b])*pvv.At(a, b)+0.5*lamVir.At(nocc+a, b))
		}
	}
	for i := 0; i < nocc; i++ {
		for a := 0; a < nvir; a++ {
			wmo.Add(i, nocc+a, lamVir.At(i, a)) // −S^(ξ)_ia Λ_ia elimination term
			wmo.Add(nocc+a, i, -eps[i]*z.At(a, i))
		}
	}
	// Fock-response couplings to occupied-occupied overlap derivatives.
	gdzMO := r.toMO(gop(dz))
	for i := 0; i < nocc; i++ {
		for j := 0; j < nocc; j++ {
			wmo.Add(i, j, 2*gpbarMO.At(i, j)-gdzMO.At(i, j))
		}
	}
	// MO → AO back-transform: W^AO = C·W^MO·Cᵀ.
	wao := sandwich(tuner, ref.C, wmo, ref.C)

	// ---- skeleton contractions --------------------------------------------
	parts := map[string][]float64{}
	newPart := func(name string) []float64 {
		p := make([]float64, 3*ref.Geom.N())
		parts[name] = p
		return p
	}
	grad := newPart("total")
	copy(grad, ref.Geom.NuclearRepulsionGradient())
	integrals.KineticDeriv(ref.Bs, dh, 1, grad)
	integrals.NuclearDeriv(ref.Bs, ref.Geom, dh, 1, grad)
	if pc := ref.Opts().EmbedCharges; pc.N() > 0 {
		r.embedGrad = make([]float64, 3*pc.N())
		integrals.PointChargeDeriv(ref.Bs, pc, dh, 1, grad, r.embedGrad)
		integrals.NuclearFieldDeriv(ref.Geom, pc, 1, grad, r.embedGrad)
	}
	integrals.OverlapDeriv(ref.Bs, wao, -1, grad)
	if split {
		p := newPart("mp2-1e")
		integrals.KineticDeriv(ref.Bs, ptot, 1, p)
		integrals.NuclearDeriv(ref.Bs, ref.Geom, ptot, 1, p)
		pw := newPart("mp2-w")
		wHF := ref.EnergyWeightedDensity()
		wmp2 := wao.Clone()
		wmp2.AxpyMat(-1, wHF)
		integrals.OverlapDeriv(ref.Bs, wmp2, -1, pw)
	}

	zAcc := linalg.NewTensor3(naux, nbf, nbf)
	zetaAcc := linalg.NewMat(naux, naux)
	ref.AddRISeparableCoeffs(ref.D, ref.D, 0.5, zAcc, zetaAcc) // HF two-electron
	ref.AddRISeparableCoeffs(ptot, ref.D, 1.0, zAcc, zetaAcc)  // orbital response
	if split {
		z1 := linalg.NewTensor3(naux, nbf, nbf)
		c1 := linalg.NewMat(naux, naux)
		ref.AddRISeparableCoeffs(ptot, ref.D, 1.0, z1, c1)
		p := newPart("mp2-sep")
		integrals.ThreeCenterDeriv(ref.Bs, ref.Aux, z1, 1, p)
		integrals.TwoCenterDeriv(ref.Aux, c1, 1, p)
	}

	// Amplitude skeleton: Z^{amp} = 4 (J^{-1/2} γ)^AO and
	// ζ^{amp} = −2 Σ_ia (J^{-1/2}B)_Pia (J^{-1/2}γ)_Qia.
	gamAux := linalg.NewMat(naux, nocc*nvir)
	bAux := linalg.NewMat(naux, nocc*nvir)
	for i := 0; i < nocc; i++ {
		gi := gamma.Slice(i)
		bi := r.bov.Slice(i)
		for p := 0; p < naux; p++ {
			copy(gamAux.Row(p)[i*nvir:(i+1)*nvir], gi.Row(p))
			copy(bAux.Row(p)[i*nvir:(i+1)*nvir], bi.Row(p))
		}
	}
	gamT := linalg.NewMat(naux, nocc*nvir)
	tuner.Gemm(linalg.NoTrans, linalg.NoTrans, 1, ref.JInvHalf, gamAux, 0, gamT)
	bT := linalg.NewMat(naux, nocc*nvir)
	tuner.Gemm(linalg.NoTrans, linalg.NoTrans, 1, ref.JInvHalf, bAux, 0, bT)

	gmo := linalg.NewMat(nocc, nvir)
	t2 := linalg.NewMat(nocc, nbf)
	t3 := linalg.NewMat(nbf, nbf)
	for p := 0; p < naux; p++ {
		for i := 0; i < nocc; i++ {
			copy(gmo.Row(i), gamT.Row(p)[i*nvir:(i+1)*nvir])
		}
		// Z^{amp}_P += 4 · C_o · Γ̃_P · C_vᵀ  (AO back-transform).
		tuner.Gemm(linalg.NoTrans, linalg.Trans, 1, gmo, cv, 0, t2)
		tuner.Gemm(linalg.NoTrans, linalg.NoTrans, 1, co, t2, 0, t3)
		zAcc.Slice(p).AxpyMat(4, t3)
	}
	zetaAmp := linalg.NewMat(naux, naux)
	tuner.Gemm(linalg.NoTrans, linalg.Trans, 1, bT, gamT, 0, zetaAmp)
	for p := 0; p < naux; p++ {
		for q := 0; q < naux; q++ {
			zetaAcc.Add(p, q, -(zetaAmp.At(p, q) + zetaAmp.At(q, p)))
		}
	}
	if split {
		z1 := linalg.NewTensor3(naux, nbf, nbf)
		gmo2 := linalg.NewMat(nocc, nvir)
		for p := 0; p < naux; p++ {
			for i := 0; i < nocc; i++ {
				copy(gmo2.Row(i), gamT.Row(p)[i*nvir:(i+1)*nvir])
			}
			tuner.Gemm(linalg.NoTrans, linalg.Trans, 1, gmo2, cv, 0, t2)
			tuner.Gemm(linalg.NoTrans, linalg.NoTrans, 1, co, t2, 0, t3)
			z1.Slice(p).AxpyMat(4, t3)
		}
		c1 := linalg.NewMat(naux, naux)
		for p := 0; p < naux; p++ {
			for q := 0; q < naux; q++ {
				c1.Add(p, q, -(zetaAmp.At(p, q) + zetaAmp.At(q, p)))
			}
		}
		p := newPart("mp2-amp")
		integrals.ThreeCenterDeriv(ref.Bs, ref.Aux, z1, 1, p)
		integrals.TwoCenterDeriv(ref.Aux, c1, 1, p)
	}

	integrals.ThreeCenterDeriv(ref.Bs, ref.Aux, zAcc, 1, grad)
	integrals.TwoCenterDeriv(ref.Aux, zetaAcc, 1, grad)
	return parts, nil
}

// gOperator applies the closed-shell response operator
// G[M] = J[M] − ½K[M] in the AO basis via the resident B tensor.
func (r *Result) gOperator(m *linalg.Mat) *linalg.Mat {
	ref := r.SCF
	nbf := ref.Bs.N
	naux := ref.Aux.N
	tuner := r.opts.Tuner
	mvec := &linalg.Mat{Rows: nbf * nbf, Cols: 1, Data: m.Data}
	u := linalg.NewMat(naux, 1)
	tuner.Gemm(linalg.NoTrans, linalg.NoTrans, 1, ref.B.Flatten(), mvec, 0, u)
	jvec := linalg.NewMat(nbf*nbf, 1)
	tuner.Gemm(linalg.Trans, linalg.NoTrans, 1, ref.B.Flatten(), u, 0, jvec)
	out := &linalg.Mat{Rows: nbf, Cols: nbf, Data: jvec.Data}
	t1 := linalg.NewMat(nbf, nbf)
	t2 := linalg.NewMat(nbf, nbf)
	for p := 0; p < naux; p++ {
		bp := ref.B.Slice(p)
		tuner.Gemm(linalg.NoTrans, linalg.NoTrans, 1, bp, m, 0, t1)
		tuner.Gemm(linalg.NoTrans, linalg.NoTrans, 1, t1, bp, 0, t2)
		out.AxpyMat(-0.5, t2)
	}
	return out
}

// toMO transforms an AO matrix to the MO basis: CᵀXC.
func (r *Result) toMO(x *linalg.Mat) *linalg.Mat {
	return sandwichFull(r.opts.Tuner, r.SCF.C, x)
}

// sandwich computes A·M·Bᵀ.
func sandwich(tuner gemmer, a, m, b *linalg.Mat) *linalg.Mat {
	t := linalg.NewMat(a.Rows, m.Cols)
	tuner.Gemm(linalg.NoTrans, linalg.NoTrans, 1, a, m, 0, t)
	out := linalg.NewMat(a.Rows, b.Rows)
	tuner.Gemm(linalg.NoTrans, linalg.Trans, 1, t, b, 0, out)
	return out
}

// sandwichFull computes CᵀXC.
func sandwichFull(tuner gemmer, c, x *linalg.Mat) *linalg.Mat {
	t := linalg.NewMat(c.Cols, x.Cols)
	tuner.Gemm(linalg.Trans, linalg.NoTrans, 1, c, x, 0, t)
	out := linalg.NewMat(c.Cols, c.Cols)
	tuner.Gemm(linalg.NoTrans, linalg.NoTrans, 1, t, c, 0, out)
	return out
}

// symOV builds the symmetric AO density Cv·z·Coᵀ + Co·zᵀ·Cvᵀ.
func symOV(tuner gemmer, cv, z, co *linalg.Mat) *linalg.Mat {
	t := sandwich(tuner, cv, z, co)
	out := t.Clone()
	out.AxpyMat(1, t.T())
	return out
}

type gemmer interface {
	Gemm(tA, tB linalg.Transpose, alpha float64, a, b *linalg.Mat, beta float64, c *linalg.Mat)
}

// solveZVector solves A z = Θ by conjugate gradients, where the
// Hessian-vector product is evaluated through the G operator:
// (Az)_ai = (εa−εi) z_ai + 2 (CᵀG[Dz]C)_ai.
func (r *Result) solveZVector(theta *linalg.Mat, co, cv *linalg.Mat, gop func(*linalg.Mat) *linalg.Mat) (*linalg.Mat, error) {
	ref := r.SCF
	nocc := ref.NOcc
	nvir := ref.NVirt()
	eps := ref.Eps
	tuner := r.opts.Tuner

	apply := func(z *linalg.Mat) *linalg.Mat {
		dz := symOV(tuner, cv, z, co)
		gmo := r.toMO(gop(dz))
		out := linalg.NewMat(nvir, nocc)
		for a := 0; a < nvir; a++ {
			for i := 0; i < nocc; i++ {
				out.Set(a, i, (eps[nocc+a]-eps[i])*z.At(a, i)+2*gmo.At(nocc+a, i))
			}
		}
		return out
	}

	z := linalg.NewMat(nvir, nocc)
	// Jacobi preconditioner / initial guess: z = Θ/Δ.
	for a := 0; a < nvir; a++ {
		for i := 0; i < nocc; i++ {
			z.Set(a, i, theta.At(a, i)/(eps[nocc+a]-eps[i]))
		}
	}
	res := theta.Clone()
	res.AxpyMat(-1, apply(z))
	p := res.Clone()
	rr := linalg.Dot(res, res)
	norm0 := math.Sqrt(linalg.Dot(theta, theta))
	if norm0 == 0 {
		return z, nil
	}
	for iter := 0; iter < r.opts.ZVecMaxIter; iter++ {
		if math.Sqrt(rr) < r.opts.ZVecTol*math.Max(1, norm0) {
			return z, nil
		}
		ap := apply(p)
		alpha := rr / linalg.Dot(p, ap)
		z.AxpyMat(alpha, p)
		res.AxpyMat(-alpha, ap)
		rrNew := linalg.Dot(res, res)
		p.Scale(rrNew / rr)
		p.AxpyMat(1, res)
		rr = rrNew
	}
	return nil, errors.New("mp2: Z-vector CG did not converge")
}
