package mp2

import (
	"math"
	"testing"

	"github.com/fragmd/fragmd/internal/basis"
	"github.com/fragmd/fragmd/internal/integrals"
	"github.com/fragmd/fragmd/internal/scf"

	"github.com/fragmd/fragmd/internal/molecule"
)

var bigAux = basis.AuxOptions{PerL: []int{12, 9, 7}}
var smallAux = basis.AuxOptions{PerL: []int{5, 4, 3}}

func runSCF(t *testing.T, g *molecule.Geometry, useRI bool, aux basis.AuxOptions) *scf.Result {
	t.Helper()
	bs, err := basis.Build("sto-3g", g)
	if err != nil {
		t.Fatal(err)
	}
	res, err := scf.RHF(g, bs, scf.Options{UseRI: useRI, AuxOpts: aux, ConvE: 1e-12, ConvErr: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// H2/STO-3G is small enough for a pencil-and-paper MP2 check: one
// occupied, one virtual orbital, E2 = (ov|ov)²/(2ε_o − 2ε_v).
func TestH2MP2ClosedForm(t *testing.T) {
	g := molecule.New()
	g.AddAtom(1, 0, 0, 0)
	g.AddAtom(1, 0, 0, 1.4)
	ref := runSCF(t, g, false, basis.AuxOptions{})
	eri := integrals.FourCenterAll(ref.Bs)
	e2, err := ConventionalMP2(ref, eri)
	if err != nil {
		t.Fatal(err)
	}
	// Closed form from MO integrals.
	n := ref.Bs.N
	var ovov float64
	for mu := 0; mu < n; mu++ {
		for nu := 0; nu < n; nu++ {
			for la := 0; la < n; la++ {
				for si := 0; si < n; si++ {
					ovov += ref.C.At(mu, 0) * ref.C.At(nu, 1) * ref.C.At(la, 0) * ref.C.At(si, 1) *
						eri[integrals.ERIIndex(n, mu, nu, la, si)]
				}
			}
		}
	}
	want := ovov * ovov / (2*ref.Eps[0] - 2*ref.Eps[1])
	if math.Abs(e2-want) > 1e-10 {
		t.Errorf("H2 MP2 = %.10f, closed form %.10f", e2, want)
	}
	if e2 >= 0 {
		t.Errorf("MP2 correlation energy must be negative, got %g", e2)
	}
}

func TestRIMP2MatchesConventional(t *testing.T) {
	g := molecule.Water()
	conv := runSCF(t, g, false, basis.AuxOptions{})
	eri := integrals.FourCenterAll(conv.Bs)
	e2conv, err := ConventionalMP2(conv, eri)
	if err != nil {
		t.Fatal(err)
	}

	refSmall := runSCF(t, g, true, smallAux)
	small, err := RIMP2(refSmall, Options{})
	if err != nil {
		t.Fatal(err)
	}
	refBig := runSCF(t, g, true, bigAux)
	big, err := RIMP2(refBig, Options{})
	if err != nil {
		t.Fatal(err)
	}
	errSmall := math.Abs(small.Ecorr - e2conv)
	errBig := math.Abs(big.Ecorr - e2conv)
	if errBig > 5e-4 {
		t.Errorf("RI-MP2 (large aux) error %.2e vs conventional %.6f (got %.6f)", errBig, e2conv, big.Ecorr)
	}
	if errBig > errSmall+1e-7 {
		t.Errorf("larger aux did not improve RI-MP2: %.2e vs %.2e", errBig, errSmall)
	}
	if big.Ecorr >= 0 {
		t.Error("correlation energy must be negative")
	}
}

func TestSCSDecomposition(t *testing.T) {
	ref := runSCF(t, molecule.Water(), true, smallAux)
	r, err := RIMP2(ref, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Ecorr-(r.EcorrOS+r.EcorrSS)) > 1e-12 {
		t.Error("Ecorr != OS + SS")
	}
	want := 1.2*r.EcorrOS + r.EcorrSS/3
	if math.Abs(r.ESCS-want) > 1e-12 {
		t.Error("SCS scaling wrong")
	}
	if r.EcorrOS >= 0 || r.EcorrSS >= 0 {
		t.Error("both spin components should be negative for water")
	}
	// SCS option changes only ETotal.
	r2, _ := RIMP2(ref, Options{SCS: true})
	if math.Abs(r2.ETotal-(ref.Energy+r2.ESCS)) > 1e-12 {
		t.Error("SCS ETotal wrong")
	}
}

// The flagship correctness test: the analytic RI-HF + RI-MP2 gradient
// must match central finite differences of the same RI total energy.
func TestMP2GradientFD(t *testing.T) {
	g := molecule.Water()
	energy := func(gg *molecule.Geometry) float64 {
		bs, _ := basis.Build("sto-3g", gg)
		ref, err := scf.RHF(gg, bs, scf.Options{UseRI: true, AuxOpts: smallAux, ConvE: 1e-12, ConvErr: 1e-10})
		if err != nil {
			t.Fatal(err)
		}
		r, err := RIMP2(ref, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return r.ETotal
	}
	ref := runSCF(t, g, true, smallAux)
	r, err := RIMP2(ref, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Gradient()
	if err != nil {
		t.Fatal(err)
	}
	h := 1e-4
	for i := range g.Atoms {
		for d := 0; d < 3; d++ {
			gp := g.Clone()
			gp.Atoms[i].Pos[d] += h
			gm := g.Clone()
			gm.Atoms[i].Pos[d] -= h
			fd := (energy(gp) - energy(gm)) / (2 * h)
			if math.Abs(got[3*i+d]-fd) > 2e-6 {
				t.Errorf("grad[%d,%d]: analytic %.9f vs FD %.9f (Δ=%.2e)",
					i, d, got[3*i+d], fd, got[3*i+d]-fd)
			}
		}
	}
}

func TestMP2GradientSumRule(t *testing.T) {
	g := molecule.WaterDimer(3.0)
	ref := runSCF(t, g, true, smallAux)
	r, err := RIMP2(ref, Options{})
	if err != nil {
		t.Fatal(err)
	}
	grad, err := r.Gradient()
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 3; d++ {
		var s float64
		for i := 0; i < g.N(); i++ {
			s += grad[3*i+d]
		}
		if math.Abs(s) > 1e-6 {
			t.Errorf("net MP2 force along %d = %.2e", d, s)
		}
	}
}

func TestRIMP2RequiresRIReference(t *testing.T) {
	ref := runSCF(t, molecule.Water(), false, basis.AuxOptions{})
	if _, err := RIMP2(ref, Options{}); err == nil {
		t.Fatal("expected error for non-RI reference")
	}
}
