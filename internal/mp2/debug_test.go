package mp2

import (
	"fmt"
	"math"
	"testing"

	"github.com/fragmd/fragmd/internal/basis"
	"github.com/fragmd/fragmd/internal/linalg"
	"github.com/fragmd/fragmd/internal/molecule"
	"github.com/fragmd/fragmd/internal/scf"
)

// White-box identity checks on the gradient intermediates.
func TestDebugIdentities(t *testing.T) {
	g := molecule.Water()
	ref := runSCF(t, g, true, smallAux)
	r, err := RIMP2(ref, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The energy stage only materializes Qov; the gradient intermediates
	// this test white-boxes are built on demand.
	r.buildBov()
	r.buildBmo()
	nocc := ref.NOcc
	nvir := ref.NVirt()
	naux := ref.Aux.N
	eps := ref.Eps
	tuner := r.opts.Tuner

	// Rebuild amplitudes/gamma exactly as Gradient does.
	tAll := make([]*linalg.Mat, nocc*nocc)
	vij := linalg.NewMat(nvir, nvir)
	for i := 0; i < nocc; i++ {
		bi := r.bov.Slice(i)
		for j := i; j < nocc; j++ {
			tuner.Gemm(linalg.Trans, linalg.NoTrans, 1, bi, r.bov.Slice(j), 0, vij)
			tij := linalg.NewMat(nvir, nvir)
			for a := 0; a < nvir; a++ {
				ea := eps[i] + eps[j] - eps[nocc+a]
				for b := 0; b < nvir; b++ {
					tij.Set(a, b, vij.At(a, b)/(ea-eps[nocc+b]))
				}
			}
			tAll[i*nocc+j] = tij
			if i != j {
				tAll[j*nocc+i] = tij.T()
			}
		}
	}
	tilde := func(tm *linalg.Mat) *linalg.Mat {
		tt := linalg.NewMat(nvir, nvir)
		for a := 0; a < nvir; a++ {
			for b := 0; b < nvir; b++ {
				tt.Set(a, b, 2*tm.At(a, b)-tm.At(b, a))
			}
		}
		return tt
	}
	gamma := linalg.NewTensor3(nocc, naux, nvir)
	for i := 0; i < nocc; i++ {
		gi := gamma.Slice(i)
		for j := 0; j < nocc; j++ {
			tuner.Gemm(linalg.NoTrans, linalg.Trans, 1, r.bov.Slice(j), tilde(tAll[i*nocc+j]), 1, gi)
		}
	}
	// Identity 1: E2 = Σ_Pia γ^P_ia B^P_ia.
	var e2check float64
	for i := 0; i < nocc; i++ {
		e2check += linalg.Dot(gamma.Slice(i), r.bov.Slice(i))
	}
	fmt.Printf("E2 = %.10f, Σγ·B = %.10f (Δ=%.2e)\n", r.Ecorr, e2check, r.Ecorr-e2check)
	if math.Abs(e2check-r.Ecorr) > 1e-10 {
		t.Error("identity E2 = γ·B violated")
	}

	// Identity 2: Λ_{j,i} − Λ_{i,j} = 2(εi−εj)P_ij on the oo block.
	nbf := ref.Bs.N
	lamOcc := linalg.NewMat(nbf, nocc)
	bpo := linalg.NewMat(nbf, nocc)
	bpv := linalg.NewMat(nbf, nvir)
	gp := linalg.NewMat(nocc, nvir)
	lamVir := linalg.NewMat(nbf, nvir)
	for p := 0; p < naux; p++ {
		bp := r.bmo.Slice(p)
		for q := 0; q < nbf; q++ {
			copy(bpo.Row(q), bp.Row(q)[:nocc])
			copy(bpv.Row(q), bp.Row(q)[nocc:])
		}
		for i := 0; i < nocc; i++ {
			copy(gp.Row(i), gamma.Slice(i).Row(p))
		}
		tuner.Gemm(linalg.NoTrans, linalg.Trans, 4, bpv, gp, 1, lamOcc)
		tuner.Gemm(linalg.NoTrans, linalg.NoTrans, 4, bpo, gp, 1, lamVir)
	}
	poo := linalg.NewMat(nocc, nocc)
	for i := 0; i < nocc; i++ {
		for j := 0; j < nocc; j++ {
			var s float64
			for k := 0; k < nocc; k++ {
				s += linalg.Dot(tilde(tAll[i*nocc+k]), tAll[j*nocc+k])
			}
			poo.Set(i, j, -2*s)
		}
	}
	for i := 0; i < nocc; i++ {
		for j := 0; j < nocc; j++ {
			lhs := lamOcc.At(j, i) - lamOcc.At(i, j)
			rhs := 2 * (eps[i] - eps[j]) * poo.At(i, j)
			if math.Abs(lhs-rhs) > 1e-8 {
				t.Errorf("Λ asym identity violated at (%d,%d): %.8f vs %.8f", i, j, lhs, rhs)
			}
		}
	}

	// Identity 3 (vv analogue): Λ_{b,a} − Λ_{a,b} = 2(εa−εb)P_ab.
	pvv := linalg.NewMat(nvir, nvir)
	for i := 0; i < nocc; i++ {
		for j := 0; j < nocc; j++ {
			tij := tAll[i*nocc+j]
			tuner.Gemm(linalg.NoTrans, linalg.Trans, 2, tilde(tij), tij, 1, pvv)
		}
	}
	for a := 0; a < nvir; a++ {
		for b := 0; b < nvir; b++ {
			lhs := lamVir.At(nocc+b, a) - lamVir.At(nocc+a, b)
			rhs := 2 * (eps[nocc+a] - eps[nocc+b]) * pvv.At(a, b)
			if math.Abs(lhs-rhs) > 1e-8 {
				t.Errorf("Λvv asym identity violated at (%d,%d): %.8f vs %.8f", a, b, lhs, rhs)
			}
		}
	}
}

// Compare the MP2-only analytic gradient against FD of Ecorr on H2.
func TestDebugH2Decomposition(t *testing.T) {
	g := molecule.New()
	g.AddAtom(1, 0, 0, 0)
	g.AddAtom(1, 0, 0, 1.4)

	ecorr := func(gg *molecule.Geometry) float64 {
		bs, _ := basis.Build("sto-3g", gg)
		ref, err := scf.RHF(gg, bs, scf.Options{UseRI: true, AuxOpts: smallAux, ConvE: 1e-13, ConvErr: 1e-11})
		if err != nil {
			t.Fatal(err)
		}
		rr, err := RIMP2(ref, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return rr.Ecorr
	}
	h := 1e-4
	gp := g.Clone()
	gp.Atoms[1].Pos[2] += h
	gm := g.Clone()
	gm.Atoms[1].Pos[2] -= h
	fd := (ecorr(gp) - ecorr(gm)) / (2 * h)

	ref := runSCF(t, g, true, smallAux)
	r, _ := RIMP2(ref, Options{})
	parts, err := r.gradientParts(true)
	if err != nil {
		t.Fatal(err)
	}
	hf := ref.Gradient()
	total := parts["total"]
	fmt.Printf("dE2/dz2: FD = %.9f, analytic = %.9f (Δ=%.2e)\n",
		fd, total[5]-hf[5], total[5]-hf[5]-fd)
	for _, k := range []string{"mp2-1e", "mp2-w", "mp2-sep", "mp2-amp"} {
		fmt.Printf("  %-8s z2 = %+.9f\n", k, parts[k][5])
	}
	sum := parts["mp2-1e"][5] + parts["mp2-w"][5] + parts["mp2-sep"][5] + parts["mp2-amp"][5]
	fmt.Printf("  parts sum = %+.9f (want FD %.9f)\n", sum, fd)
}
