// Package mp2 implements second-order Møller–Plesset perturbation theory
// on top of a converged RI-HF reference: the RI-MP2 energy (paper Eq. 9),
// its spin-component-scaled variant, the conventional (four-center) MP2
// baseline, and the fully analytic combined RI-HF + RI-MP2 nuclear
// gradient (paper Eq. 10 and appendix) — the paper's innovation (ii).
//
// Every bottleneck is expressed as a GEMM sequence routed through the
// runtime auto-tuner, mirroring the paper's GPU pipeline; the B tensor
// computed during the SCF is reused, never recomputed. The AO→MO
// transform runs as two batched GEMMs over the flattened (naux·nbf)
// dimension producing an explicit Qov tensor, and the (i,j)-pair energy
// loop contracts a whole strip of j-columns per GEMM, so the packed
// engine always sees macro-tile-sized problems (DESIGN.md §9).
package mp2

import (
	"errors"
	"fmt"
	"sync/atomic"

	"github.com/fragmd/fragmd/internal/autotune"
	"github.com/fragmd/fragmd/internal/linalg"
	"github.com/fragmd/fragmd/internal/scf"
)

// DegenGapTol is the minimum HOMO–LUMO gap (Ha) accepted by the MP2
// energy denominators. Orbital energies are sorted ascending, so every
// pair denominator satisfies |Δ_ijab| ≥ 2·(ε_LUMO − ε_HOMO); below this
// gap the perturbation series is meaningless and naive division would
// silently produce ±Inf/NaN energies that propagate into trajectories,
// so the energy routines return a descriptive error instead.
const DegenGapTol = 1e-8

// Options configures an MP2 calculation.
type Options struct {
	// SCS applies spin-component scaling (1.2·E_OS + E_SS/3) to the
	// reported total energy.
	SCS bool
	// Tuner routes GEMMs; nil uses autotune.Default.
	Tuner *autotune.Tuner
	// Precision selects the packed-panel storage precision for the
	// Qov transform and the blocked pair-energy contractions — the
	// GEMM-bound bulk of RI-MP2. linalg.F32 bounds the correlation-
	// energy deviation near 1e-7 relative (see DESIGN.md §11); the
	// default F64 is exact. The unblocked reference path is always
	// exact.
	Precision linalg.Precision
	// PairBlock is the occupied tile width of the blocked (i,j)-pair
	// energy loop: each GEMM contracts a (PairBlock·nvir)-square tile
	// of pair integrals. 0 picks a width targeting macro-tile-sized
	// products (see pairBlockFor).
	PairBlock int
	// ZVecTol is the conjugate-gradient residual threshold for the
	// Z-vector equation (default 1e-10).
	ZVecTol float64
	// ZVecMaxIter bounds the Z-vector CG iterations (default 200).
	ZVecMaxIter int
}

func (o *Options) fill() {
	if o.Tuner == nil {
		o.Tuner = autotune.Default
	}
	if o.ZVecTol == 0 {
		o.ZVecTol = 1e-10
	}
	if o.ZVecMaxIter == 0 {
		o.ZVecMaxIter = 200
	}
}

// Result holds the MP2 energy decomposition and retains what the
// analytic gradient needs.
type Result struct {
	Ecorr   float64 // plain MP2 correlation energy
	EcorrOS float64 // opposite-spin component
	EcorrSS float64 // same-spin component
	ESCS    float64 // SCS-MP2 correlation energy
	ETotal  float64 // reference + correlation (SCS if Options.SCS)

	SCF  *scf.Result
	opts Options

	qov       *linalg.Tensor3 // Q^P_ia arranged (P, i, a) — the batched DF factor
	bov       *linalg.Tensor3 // B^P_ia arranged (i, P, a), derived from qov for the gradient
	bmo       *linalg.Tensor3 // B^P_pq full MO (P, p, q), built lazily for the gradient
	embedGrad []float64       // field-site gradient of the last Gradients call
}

// RIMP2 computes the RI-MP2 correlation energy from a converged RI-HF
// reference. The reference must have been run with scf.Options.UseRI.
func RIMP2(ref *scf.Result, opts Options) (*Result, error) {
	opts.fill()
	if ref.B == nil {
		return nil, errors.New("mp2: reference SCF has no RI intermediates (run with UseRI)")
	}
	if !ref.Converged {
		return nil, errors.New("mp2: reference SCF not converged")
	}
	nocc := ref.NOcc
	nvir := ref.NVirt()
	if nocc == 0 || nvir == 0 {
		// No correlated pairs: the MP2 correction vanishes identically.
		return &Result{SCF: ref, ETotal: ref.Energy, opts: opts}, nil
	}
	r := &Result{SCF: ref, opts: opts}
	r.buildQov()

	eos, ess, err := PairEnergiesBlocked(r.qov, ref.Eps, nocc, opts.PairBlock, opts.Tuner, opts.Precision)
	if err != nil {
		return nil, err
	}
	r.EcorrOS = eos
	r.EcorrSS = ess
	r.Ecorr = r.EcorrOS + r.EcorrSS
	r.ESCS = 1.2*r.EcorrOS + r.EcorrSS/3
	if opts.SCS {
		r.ETotal = ref.Energy + r.ESCS
	} else {
		r.ETotal = ref.Energy + r.Ecorr
	}
	return r, nil
}

// checkDenominators verifies the orbital-energy spectrum admits safe
// pair denominators: eps ascending with at least DegenGapTol between
// the highest occupied and lowest virtual level, which bounds every
// Δ_ijab = ε_i + ε_j − ε_a − ε_b away from zero by twice the gap.
func checkDenominators(eps []float64, nocc, nvir int) error {
	if nocc == 0 || nvir == 0 {
		return nil
	}
	if gap := eps[nocc] - eps[nocc-1]; gap < DegenGapTol {
		return fmt.Errorf("mp2: HOMO–LUMO gap %.3e Ha below %.0e — degenerate reference, "+
			"pair denominators vanish (ε_HOMO=%.6f, ε_LUMO=%.6f)", gap, DegenGapTol, eps[nocc-1], eps[nocc])
	}
	return nil
}

// pairBlockFor picks the occupied tile width of the blocked pair loop:
// wide enough that the (jblk·nvir)-square tile products are
// macro-tile-sized for the packed engine, clamped to the occupied
// count. The target tile edge balances GEMM efficiency (bigger is
// better) against the wasted j < i half of the diagonal tiles (a
// jblk/nocc work fraction).
func pairBlockFor(nocc, nvir int) int {
	if nvir <= 0 {
		return 1
	}
	jblk := (95 + nvir) / nvir // target tile edge ≈ 96 columns
	if jblk > nocc {
		jblk = nocc
	}
	if jblk < 1 {
		jblk = 1
	}
	return jblk
}

// PairEnergiesBlocked computes the opposite-spin and same-spin MP2 pair
// energy sums from a Qov tensor arranged (P, i, a): naux × nocc × nvir.
// eps holds orbital energies ascending with occupied levels in
// eps[:nocc] and virtuals from eps[nocc:]. The (i,j)-pair loop is tiled
// in both occupied indices: each upper-triangle tile of jblk×jblk pairs
// is contracted as one (jblk·nvir) × (jblk·nvir) GEMM over a pair of
// j-column strips instead of jblk² small nvir × nvir products, so the
// hot path stays inside large, square macro kernels. Permutational
// symmetry is preserved (only tiles with i0 ≤ j0 are formed, pairs with
// j < i inside diagonal tiles are skipped, off-diagonal pairs doubled);
// jblk ≤ 0 selects an automatic tile width. A near-degenerate reference
// (vanishing HOMO–LUMO gap) returns an error instead of silently
// propagating ±Inf/NaN energies. prec selects the packed-panel storage
// precision of the tile GEMMs (linalg.F64 is exact).
func PairEnergiesBlocked(qov *linalg.Tensor3, eps []float64, nocc, jblk int, tuner *autotune.Tuner, prec linalg.Precision) (eos, ess float64, err error) {
	naux, nvir := qov.N1, qov.N3
	if qov.N2 != nocc {
		return 0, 0, fmt.Errorf("mp2: Qov occupied dimension %d != nocc %d", qov.N2, nocc)
	}
	if nocc == 0 || nvir == 0 {
		return 0, 0, nil
	}
	if err := checkDenominators(eps, nocc, nvir); err != nil {
		return 0, 0, err
	}
	if tuner == nil {
		tuner = autotune.Default
	}
	if jblk <= 0 {
		jblk = pairBlockFor(nocc, nvir)
	}
	if jblk > nocc {
		jblk = nocc
	}

	// Rows of the flat Qov are contiguous, so an occupied-column strip
	// is one memcpy per auxiliary row; the strip and tile buffers are
	// reused across blocks. The j-strip copy is hoisted outside the
	// i-tile loop, and the diagonal tile reuses it as both operands.
	qflat := qov.Flatten() // naux × (nocc·nvir)
	jstripBuf := make([]float64, naux*jblk*nvir)
	istripBuf := make([]float64, naux*jblk*nvir)
	vBuf := make([]float64, jblk*nvir*jblk*nvir)
	for j0 := 0; j0 < nocc; j0 += jblk {
		j1 := j0 + jblk
		if j1 > nocc {
			j1 = nocc
		}
		wj := (j1 - j0) * nvir
		jstrip := &linalg.Mat{Rows: naux, Cols: wj, Data: jstripBuf[:naux*wj]}
		for p := 0; p < naux; p++ {
			copy(jstrip.Row(p), qflat.Row(p)[j0*nvir:j1*nvir])
		}
		for i0 := 0; i0 <= j0; i0 += jblk {
			i1 := i0 + jblk
			if i1 > nocc {
				i1 = nocc
			}
			wi := (i1 - i0) * nvir
			istrip := jstrip
			if i0 != j0 {
				istrip = &linalg.Mat{Rows: naux, Cols: wi, Data: istripBuf[:naux*wi]}
				for p := 0; p < naux; p++ {
					copy(istrip.Row(p), qflat.Row(p)[i0*nvir:i1*nvir])
				}
			}
			// (ia|jb) for the whole tile: V = [B_i0 … B_i1−1]ᵀ ·
			// [B_j0 … B_j1−1] (paper Eq. 9), one square macro GEMM
			// instead of jblk² small ones.
			v := &linalg.Mat{Rows: wi, Cols: wj, Data: vBuf[:wi*wj]}
			tuner.GemmPrec(prec, linalg.Trans, linalg.NoTrans, 1, istrip, jstrip, 0, v)
			for i := i0; i < i1 && i < j1; i++ {
				iOff := (i - i0) * nvir
				jStart := i
				if jStart < j0 {
					jStart = j0
				}
				for j := jStart; j < j1; j++ {
					jOff := (j - j0) * nvir
					var eosP, essP float64
					for a := 0; a < nvir; a++ {
						ea := eps[i] + eps[j] - eps[nocc+a]
						row := v.Row(iOff + a)[jOff : jOff+nvir]
						for b := 0; b < nvir; b++ {
							de := ea - eps[nocc+b]
							vab := row[b]
							eosP += vab * vab / de
							essP += vab * (vab - v.At(iOff+b, jOff+a)) / de
						}
					}
					if i != j {
						eosP *= 2
						essP *= 2
					}
					eos += eosP
					ess += essP
				}
			}
		}
	}
	return eos, ess, nil
}

// PairEnergiesUnblocked is the pre-blocking reference implementation:
// one small nvir × nvir GEMM per (i,j) pair over the (i, P, a)-arranged
// B tensor. Retained as the correctness cross-check and the benchmark
// baseline the blocked loop is CI-gated against.
func PairEnergiesUnblocked(bov *linalg.Tensor3, eps []float64, nocc int, tuner *autotune.Tuner) (eos, ess float64, err error) {
	nvir := bov.N3
	if bov.N1 != nocc {
		return 0, 0, fmt.Errorf("mp2: B tensor occupied dimension %d != nocc %d", bov.N1, nocc)
	}
	if nocc == 0 || nvir == 0 {
		return 0, 0, nil
	}
	if err := checkDenominators(eps, nocc, nvir); err != nil {
		return 0, 0, err
	}
	if tuner == nil {
		tuner = autotune.Default
	}
	vij := linalg.NewMat(nvir, nvir)
	for i := 0; i < nocc; i++ {
		bi := bov.Slice(i) // naux × nvir
		for j := i; j < nocc; j++ {
			tuner.Gemm(linalg.Trans, linalg.NoTrans, 1, bi, bov.Slice(j), 0, vij)
			var eosP, essP float64
			for a := 0; a < nvir; a++ {
				ea := eps[i] + eps[j] - eps[nocc+a]
				row := vij.Row(a)
				for b := 0; b < nvir; b++ {
					de := ea - eps[nocc+b]
					v := row[b]
					eosP += v * v / de
					essP += v * (v - vij.At(b, a)) / de
				}
			}
			if i != j {
				eosP *= 2
				essP *= 2
			}
			eos += eosP
			ess += essP
		}
	}
	return eos, ess, nil
}

// buildQov forms the explicit Q^P_ia tensor, arranged (P, i, a), with
// two batched GEMMs over the flattened (naux·nbf) row dimension — the
// DF-MP2 macro-tile pipeline (SNIPPETS.md Snippets 2–3) replacing naux
// small per-P transforms:
//
//	T_Pμi  = Σ_ν B_Pμν C_νi     one (naux·nbf) × nbf × nocc GEMM
//	Q_Pia  = Σ_μ T_Pμi C_μa     one (naux·nocc) × nbf × nvir GEMM
//
// with a P-blockwise (μ,i) → (i,μ) transpose between the two.
func (r *Result) buildQov() {
	ref := r.SCF
	nbf := ref.Bs.N
	naux := ref.Aux.N
	nocc := ref.NOcc
	nvir := ref.NVirt()
	tuner := r.opts.Tuner

	co := ref.COcc()
	cv := ref.CVirt()
	half := linalg.NewTensor3(naux, nbf, nocc)
	tuner.GemmPrec(r.opts.Precision, linalg.NoTrans, linalg.NoTrans, 1, ref.B.FlattenRows(), co, 0, half.FlattenRows())
	halfT := half.TransposeBlocks() // (P, i, μ)
	r.qov = linalg.NewTensor3(naux, nocc, nvir)
	tuner.GemmPrec(r.opts.Precision, linalg.NoTrans, linalg.NoTrans, 1, halfT.FlattenRows(), cv, 0, r.qov.FlattenRows())
}

// buildBov derives the (i, P, a) arrangement the gradient's amplitude
// loops index by occupied orbital — a pure reorder of the batched Qov,
// no additional GEMMs.
func (r *Result) buildBov() {
	if r.qov == nil {
		r.buildQov()
	}
	ref := r.SCF
	nocc := ref.NOcc
	naux := ref.Aux.N
	nvir := ref.NVirt()
	r.bov = linalg.NewTensor3(nocc, naux, nvir)
	for p := 0; p < naux; p++ {
		qp := r.qov.Slice(p)
		for i := 0; i < nocc; i++ {
			copy(r.bov.Slice(i).Row(p), qp.Row(i))
		}
	}
}

// buildBmo forms the full-MO B^P_pq = (Cᵀ B_P C) for every P with two
// batched GEMMs over the flattened (naux·nbf) dimension. The blockwise
// transpose between them exploits B_P = B_Pᵀ: with T_P = B_P·C,
// (T_Pᵀ·C)(q,p) = (Cᵀ B_P C)(p,q), and Cᵀ B_P C is symmetric, so the
// second flat product lands the MO blocks directly. Only the gradient
// needs the full nbf × nbf MO blocks, so this is built lazily.
func (r *Result) buildBmo() {
	ref := r.SCF
	nbf := ref.Bs.N
	naux := ref.Aux.N
	tuner := r.opts.Tuner

	tmp := linalg.NewTensor3(naux, nbf, nbf)
	tuner.Gemm(linalg.NoTrans, linalg.NoTrans, 1, ref.B.FlattenRows(), ref.C, 0, tmp.FlattenRows())
	tmpT := tmp.TransposeBlocks()
	r.bmo = linalg.NewTensor3(naux, nbf, nbf)
	tuner.Gemm(linalg.NoTrans, linalg.NoTrans, 1, tmpT.FlattenRows(), ref.C, 0, r.bmo.FlattenRows())
}

// quarticLive counts the N⁴ scratch arrays currently alive in
// ConventionalMP2's transform and quarticPeak its high-water mark — the
// regression guard that the eager-release rewrite holds at most two
// quarter-transform arrays at once (the pre-fix code kept three alive
// through the whole energy loop).
var (
	quarticLive atomic.Int64
	quarticPeak atomic.Int64
)

func newQuartic(n int) []float64 {
	live := quarticLive.Add(1)
	for {
		p := quarticPeak.Load()
		if live <= p || quarticPeak.CompareAndSwap(p, live) {
			break
		}
	}
	return make([]float64, n*n*n*n)
}

func dropQuartic() { quarticLive.Add(-1) }

// QuarticScratchPeak returns the high-water mark of simultaneously live
// N⁴ scratch arrays since the last reset (test/benchmark hook).
func QuarticScratchPeak() int { return int(quarticPeak.Load()) }

// ResetQuarticScratchStats zeroes the quartic-scratch accounting.
func ResetQuarticScratchStats() {
	quarticLive.Store(0)
	quarticPeak.Store(0)
}

// ConventionalMP2 computes the MP2 correlation energy from stored
// four-center integrals with a naive O(N⁵) AO→MO transformation — the
// textbook path retained as the Table III / Fig. 3 baseline. Suitable
// for small systems only. All four quarter transforms are materialized,
// each scratch array released as soon as the next is built, so at most
// two N⁴ arrays are alive at any moment and the o²v² energy loop reads
// fully transformed integrals in O(1) instead of re-deriving the σ→s
// contraction per element.
func ConventionalMP2(ref *scf.Result, eri []float64) (float64, error) {
	if !ref.Converged {
		return 0, errors.New("mp2: reference SCF not converged")
	}
	n := ref.Bs.N
	if len(eri) != n*n*n*n {
		return 0, fmt.Errorf("mp2: ERI length %d != %d", len(eri), n*n*n*n)
	}
	nocc := ref.NOcc
	nvir := n - nocc
	if err := checkDenominators(ref.Eps, nocc, nvir); err != nil {
		return 0, err
	}
	if nocc == 0 || nvir == 0 {
		return 0, nil
	}
	c := ref.C
	// Quarter transformations, each O(N⁵).
	t1 := newQuartic(n) // (p ν | λ σ)
	for p := 0; p < n; p++ {
		for nu := 0; nu < n; nu++ {
			for la := 0; la < n; la++ {
				for si := 0; si < n; si++ {
					var s float64
					for mu := 0; mu < n; mu++ {
						s += c.At(mu, p) * eri[((mu*n+nu)*n+la)*n+si]
					}
					t1[((p*n+nu)*n+la)*n+si] = s
				}
			}
		}
	}
	t2 := newQuartic(n) // (p q | λ σ)
	for p := 0; p < n; p++ {
		for q := 0; q < n; q++ {
			for la := 0; la < n; la++ {
				for si := 0; si < n; si++ {
					var s float64
					for nu := 0; nu < n; nu++ {
						s += c.At(nu, q) * t1[((p*n+nu)*n+la)*n+si]
					}
					t2[((p*n+q)*n+la)*n+si] = s
				}
			}
		}
	}
	t1 = nil
	dropQuartic()
	t3 := newQuartic(n) // (p q | r σ)
	for p := 0; p < n; p++ {
		for q := 0; q < n; q++ {
			for rr := 0; rr < n; rr++ {
				for si := 0; si < n; si++ {
					var s float64
					for la := 0; la < n; la++ {
						s += c.At(la, rr) * t2[((p*n+q)*n+la)*n+si]
					}
					t3[((p*n+q)*n+rr)*n+si] = s
				}
			}
		}
	}
	t2 = nil
	dropQuartic()
	t4 := newQuartic(n) // (p q | r s)
	for p := 0; p < n; p++ {
		for q := 0; q < n; q++ {
			for rr := 0; rr < n; rr++ {
				for ss := 0; ss < n; ss++ {
					var v float64
					for si := 0; si < n; si++ {
						v += c.At(si, ss) * t3[((p*n+q)*n+rr)*n+si]
					}
					t4[((p*n+q)*n+rr)*n+ss] = v
				}
			}
		}
	}
	t3 = nil
	dropQuartic()
	defer dropQuartic()
	var e2 float64
	eps := ref.Eps
	for i := 0; i < nocc; i++ {
		for j := 0; j < nocc; j++ {
			for a := 0; a < nvir; a++ {
				for b := 0; b < nvir; b++ {
					iajb := t4[((i*n+nocc+a)*n+j)*n+nocc+b]
					ibja := t4[((i*n+nocc+b)*n+j)*n+nocc+a]
					de := eps[i] + eps[j] - eps[nocc+a] - eps[nocc+b]
					e2 += iajb * (2*iajb - ibja) / de
				}
			}
		}
	}
	return e2, nil
}
