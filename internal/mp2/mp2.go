// Package mp2 implements second-order Møller–Plesset perturbation theory
// on top of a converged RI-HF reference: the RI-MP2 energy (paper Eq. 9),
// its spin-component-scaled variant, the conventional (four-center) MP2
// baseline, and the fully analytic combined RI-HF + RI-MP2 nuclear
// gradient (paper Eq. 10 and appendix) — the paper's innovation (ii).
//
// Every bottleneck is expressed as a GEMM sequence routed through the
// runtime auto-tuner, mirroring the paper's GPU pipeline; the B tensor
// computed during the SCF is reused, never recomputed.
package mp2

import (
	"errors"
	"fmt"

	"github.com/fragmd/fragmd/internal/autotune"
	"github.com/fragmd/fragmd/internal/linalg"
	"github.com/fragmd/fragmd/internal/scf"
)

// Options configures an MP2 calculation.
type Options struct {
	// SCS applies spin-component scaling (1.2·E_OS + E_SS/3) to the
	// reported total energy.
	SCS bool
	// Tuner routes GEMMs; nil uses autotune.Default.
	Tuner *autotune.Tuner
	// ZVecTol is the conjugate-gradient residual threshold for the
	// Z-vector equation (default 1e-10).
	ZVecTol float64
	// ZVecMaxIter bounds the Z-vector CG iterations (default 200).
	ZVecMaxIter int
}

func (o *Options) fill() {
	if o.Tuner == nil {
		o.Tuner = autotune.Default
	}
	if o.ZVecTol == 0 {
		o.ZVecTol = 1e-10
	}
	if o.ZVecMaxIter == 0 {
		o.ZVecMaxIter = 200
	}
}

// Result holds the MP2 energy decomposition and retains what the
// analytic gradient needs.
type Result struct {
	Ecorr   float64 // plain MP2 correlation energy
	EcorrOS float64 // opposite-spin component
	EcorrSS float64 // same-spin component
	ESCS    float64 // SCS-MP2 correlation energy
	ETotal  float64 // reference + correlation (SCS if Options.SCS)

	SCF  *scf.Result
	opts Options

	bov       *linalg.Tensor3 // B^P_ia arranged (i, P, a)
	bmo       *linalg.Tensor3 // B^P_pq full MO (P, p, q)
	embedGrad []float64       // field-site gradient of the last Gradients call
}

// RIMP2 computes the RI-MP2 correlation energy from a converged RI-HF
// reference. The reference must have been run with scf.Options.UseRI.
func RIMP2(ref *scf.Result, opts Options) (*Result, error) {
	opts.fill()
	if ref.B == nil {
		return nil, errors.New("mp2: reference SCF has no RI intermediates (run with UseRI)")
	}
	if !ref.Converged {
		return nil, errors.New("mp2: reference SCF not converged")
	}
	nocc := ref.NOcc
	nvir := ref.NVirt()
	if nvir == 0 {
		res := &Result{SCF: ref, ETotal: ref.Energy, opts: opts}
		return res, nil
	}
	r := &Result{SCF: ref, opts: opts}
	r.buildMOIntegrals()

	naux := ref.Aux.N
	eps := ref.Eps
	tuner := opts.Tuner
	vij := linalg.NewMat(nvir, nvir)
	for i := 0; i < nocc; i++ {
		bi := r.bov.Slice(i) // naux × nvir
		for j := i; j < nocc; j++ {
			bj := r.bov.Slice(j)
			_ = naux
			// (ia|jb) = Σ_P B_Pia B_Pjb  (paper Eq. 9)
			tuner.Gemm(linalg.Trans, linalg.NoTrans, 1, bi, bj, 0, vij)
			var eos, ess float64
			for a := 0; a < nvir; a++ {
				ea := eps[i] + eps[j] - eps[nocc+a]
				row := vij.Row(a)
				for b := 0; b < nvir; b++ {
					de := ea - eps[nocc+b]
					v := row[b]
					eos += v * v / de
					ess += v * (v - vij.At(b, a)) / de
				}
			}
			if i != j {
				eos *= 2
				ess *= 2
			}
			r.EcorrOS += eos
			r.EcorrSS += ess
		}
	}
	r.Ecorr = r.EcorrOS + r.EcorrSS
	r.ESCS = 1.2*r.EcorrOS + r.EcorrSS/3
	if opts.SCS {
		r.ETotal = ref.Energy + r.ESCS
	} else {
		r.ETotal = ref.Energy + r.Ecorr
	}
	return r, nil
}

// buildMOIntegrals forms B^P_pq in the MO basis and the (i, P, a)
// arrangement used by the pair loops.
func (r *Result) buildMOIntegrals() {
	ref := r.SCF
	nbf := ref.Bs.N
	naux := ref.Aux.N
	nocc := ref.NOcc
	nvir := ref.NVirt()
	tuner := r.opts.Tuner

	r.bmo = linalg.NewTensor3(naux, nbf, nbf)
	tmp := linalg.NewMat(nbf, nbf)
	for p := 0; p < naux; p++ {
		// Cᵀ B_P C.
		tuner.Gemm(linalg.Trans, linalg.NoTrans, 1, ref.C, ref.B.Slice(p), 0, tmp)
		tuner.Gemm(linalg.NoTrans, linalg.NoTrans, 1, tmp, ref.C, 0, r.bmo.Slice(p))
	}
	r.bov = linalg.NewTensor3(nocc, naux, nvir)
	for p := 0; p < naux; p++ {
		bp := r.bmo.Slice(p)
		for i := 0; i < nocc; i++ {
			copy(r.bov.Slice(i).Row(p), bp.Row(i)[nocc:])
		}
	}
}

// ConventionalMP2 computes the MP2 correlation energy from stored
// four-center integrals with a naive O(N⁵) AO→MO transformation — the
// textbook path retained as the Table III / Fig. 3 baseline. Suitable for
// small systems only.
func ConventionalMP2(ref *scf.Result, eri []float64) (float64, error) {
	if !ref.Converged {
		return 0, errors.New("mp2: reference SCF not converged")
	}
	n := ref.Bs.N
	if len(eri) != n*n*n*n {
		return 0, fmt.Errorf("mp2: ERI length %d != %d", len(eri), n*n*n*n)
	}
	nocc := ref.NOcc
	nvir := n - nocc
	c := ref.C
	// Quarter transformations, each O(N⁵).
	t1 := make([]float64, n*n*n*n) // (p ν | λ σ)
	for p := 0; p < n; p++ {
		for nu := 0; nu < n; nu++ {
			for la := 0; la < n; la++ {
				for si := 0; si < n; si++ {
					var s float64
					for mu := 0; mu < n; mu++ {
						s += c.At(mu, p) * eri[((mu*n+nu)*n+la)*n+si]
					}
					t1[((p*n+nu)*n+la)*n+si] = s
				}
			}
		}
	}
	t2 := make([]float64, n*n*n*n) // (p q | λ σ)
	for p := 0; p < n; p++ {
		for q := 0; q < n; q++ {
			for la := 0; la < n; la++ {
				for si := 0; si < n; si++ {
					var s float64
					for nu := 0; nu < n; nu++ {
						s += c.At(nu, q) * t1[((p*n+nu)*n+la)*n+si]
					}
					t2[((p*n+q)*n+la)*n+si] = s
				}
			}
		}
	}
	t3 := make([]float64, n*n*n*n) // (p q | r σ)
	for p := 0; p < n; p++ {
		for q := 0; q < n; q++ {
			for rr := 0; rr < n; rr++ {
				for si := 0; si < n; si++ {
					var s float64
					for la := 0; la < n; la++ {
						s += c.At(la, rr) * t2[((p*n+q)*n+la)*n+si]
					}
					t3[((p*n+q)*n+rr)*n+si] = s
				}
			}
		}
	}
	mo := func(p, q, rr, s int) float64 {
		var v float64
		for si := 0; si < n; si++ {
			v += c.At(si, s) * t3[((p*n+q)*n+rr)*n+si]
		}
		return v
	}
	var e2 float64
	eps := ref.Eps
	for i := 0; i < nocc; i++ {
		for j := 0; j < nocc; j++ {
			for a := 0; a < nvir; a++ {
				for b := 0; b < nvir; b++ {
					iajb := mo(i, nocc+a, j, nocc+b)
					ibja := mo(i, nocc+b, j, nocc+a)
					de := eps[i] + eps[j] - eps[nocc+a] - eps[nocc+b]
					e2 += iajb * (2*iajb - ibja) / de
				}
			}
		}
	}
	return e2, nil
}
