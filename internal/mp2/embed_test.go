package mp2

import (
	"math"
	"testing"

	"github.com/fragmd/fragmd/internal/basis"
	"github.com/fragmd/fragmd/internal/integrals"
	"github.com/fragmd/fragmd/internal/molecule"
	"github.com/fragmd/fragmd/internal/scf"
)

// The embedded RI-MP2 gradient: the external field enters the
// correlated derivative through the relaxed one-particle density, so
// analytic forces on atoms *and* field sites must match central
// differences of the total embedded MP2 energy at fixed charges.
func TestEmbeddedRIMP2GradientFD(t *testing.T) {
	g := molecule.Water()
	pc := &integrals.PointCharges{
		Pos: []float64{3.8, 0.6, -0.4, -3.2, 1.8, 1.1, 0.5, -4.0, 2.2},
		Q:   []float64{0.35, -0.3, 0.2},
	}
	auxOpts := basis.AuxOptions{PerL: []int{5, 4, 3}}
	run := func(gg *molecule.Geometry, field *integrals.PointCharges) *Result {
		bs, err := basis.Build("sto-3g", gg)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := scf.RHF(gg, bs, scf.Options{
			UseRI: true, AuxOpts: auxOpts, EmbedCharges: field,
			ConvE: 1e-12, ConvErr: 1e-10,
		})
		if err != nil {
			t.Fatal(err)
		}
		r, err := RIMP2(ref, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	r := run(g, pc)
	grad, siteGrad, err := r.Gradients()
	if err != nil {
		t.Fatal(err)
	}
	if len(siteGrad) != 3*pc.N() {
		t.Fatalf("site gradient length %d, want %d", len(siteGrad), 3*pc.N())
	}
	const h = 1e-4
	for _, idx := range []int{0, 2, 4, 7} {
		gp, gm := g.Clone(), g.Clone()
		gp.Atoms[idx/3].Pos[idx%3] += h
		gm.Atoms[idx/3].Pos[idx%3] -= h
		fd := (run(gp, pc).ETotal - run(gm, pc).ETotal) / (2 * h)
		if math.Abs(fd-grad[idx]) > 1e-6 {
			t.Errorf("atom grad[%d]: analytic %.9f vs FD %.9f", idx, grad[idx], fd)
		}
	}
	for _, idx := range []int{0, 4, 8} {
		pp, pm := pc.Clone(), pc.Clone()
		pp.Pos[idx] += h
		pm.Pos[idx] -= h
		fd := (run(g, pp).ETotal - run(g, pm).ETotal) / (2 * h)
		if math.Abs(fd-siteGrad[idx]) > 1e-6 {
			t.Errorf("site grad[%d]: analytic %.9f vs FD %.9f", idx, siteGrad[idx], fd)
		}
	}
}

// The field shifts the correlation energy, not just the reference:
// orbital relaxation in the field changes the MP2 pair energies.
func TestEmbeddedMP2CorrelationShift(t *testing.T) {
	g := molecule.Water()
	bs, _ := basis.Build("sto-3g", g)
	vac, err := scf.RHF(g, bs, scf.Options{UseRI: true})
	if err != nil {
		t.Fatal(err)
	}
	rv, err := RIMP2(vac, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pc := &integrals.PointCharges{Pos: []float64{0, 0, 5.0}, Q: []float64{0.8}}
	emb, err := scf.RHF(g, bs, scf.Options{UseRI: true, EmbedCharges: pc})
	if err != nil {
		t.Fatal(err)
	}
	re, err := RIMP2(emb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(re.Ecorr-rv.Ecorr) < 1e-8 {
		t.Errorf("correlation energy unchanged by the field: %.10f", re.Ecorr)
	}
}
