package mp2

import (
	"math"
	"strings"
	"testing"

	"github.com/fragmd/fragmd/internal/basis"
	"github.com/fragmd/fragmd/internal/integrals"
	"github.com/fragmd/fragmd/internal/linalg"
	"github.com/fragmd/fragmd/internal/molecule"
	"github.com/fragmd/fragmd/internal/scf"
)

// synthPairProblem builds a deterministic Qov tensor in both layouts
// plus a well-gapped orbital spectrum for kernel-level pair-loop tests.
func synthPairProblem(nocc, nvir, naux int) (qov, bov *linalg.Tensor3, eps []float64) {
	qov = linalg.NewTensor3(naux, nocc, nvir)
	for i := range qov.Data {
		qov.Data[i] = math.Sin(0.37*float64(i)) / float64(naux)
	}
	bov = linalg.NewTensor3(nocc, naux, nvir)
	for p := 0; p < naux; p++ {
		qp := qov.Slice(p)
		for i := 0; i < nocc; i++ {
			copy(bov.Slice(i).Row(p), qp.Row(i))
		}
	}
	eps = make([]float64, nocc+nvir)
	for i := 0; i < nocc; i++ {
		eps[i] = -2 + 0.013*float64(i)
	}
	for a := 0; a < nvir; a++ {
		eps[nocc+a] = 0.4 + 0.021*float64(a)
	}
	return qov, bov, eps
}

// The tiled pair loop must reproduce the per-pair reference for every
// tile width, including widths that leave remainder tiles, width 1
// (pure per-pair), the whole occupied space, and an over-wide request.
func TestPairEnergiesBlockedMatchesUnblocked(t *testing.T) {
	const nocc, nvir, naux = 10, 3, 24
	qov, bov, eps := synthPairProblem(nocc, nvir, naux)
	refOS, refSS, err := PairEnergiesUnblocked(bov, eps, nocc, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, jblk := range []int{0, 1, 2, 3, 5, nocc, nocc + 7} {
		eos, ess, err := PairEnergiesBlocked(qov, eps, nocc, jblk, nil, linalg.F64)
		if err != nil {
			t.Fatalf("jblk=%d: %v", jblk, err)
		}
		if math.Abs(eos-refOS) > 1e-12 || math.Abs(ess-refSS) > 1e-12 {
			t.Errorf("jblk=%d: blocked (%.14f, %.14f) != per-pair (%.14f, %.14f)",
				jblk, eos, ess, refOS, refSS)
		}
	}
}

// A vanishing HOMO–LUMO gap must surface as a descriptive error from
// both pair-loop kernels, never as ±Inf/NaN energies.
func TestPairEnergiesDegenerateGapError(t *testing.T) {
	const nocc, nvir, naux = 4, 3, 12
	qov, bov, eps := synthPairProblem(nocc, nvir, naux)
	eps[nocc] = eps[nocc-1] // collapse the gap

	if _, _, err := PairEnergiesBlocked(qov, eps, nocc, 0, nil, linalg.F64); err == nil {
		t.Error("blocked loop accepted a degenerate reference")
	} else if !strings.Contains(err.Error(), "HOMO–LUMO") {
		t.Errorf("blocked loop error not descriptive: %v", err)
	}
	if _, _, err := PairEnergiesUnblocked(bov, eps, nocc, nil); err == nil {
		t.Error("per-pair loop accepted a degenerate reference")
	}
}

// ConventionalMP2 must reject a degenerate reference the same way.
func TestConventionalMP2DegenerateGapError(t *testing.T) {
	ref := &scf.Result{
		Converged: true,
		Bs:        &basis.Set{N: 2},
		NOcc:      1,
		C:         linalg.NewMat(2, 2),
		Eps:       []float64{-0.5, -0.5 + DegenGapTol/2},
	}
	eri := make([]float64, 16)
	if _, err := ConventionalMP2(ref, eri); err == nil {
		t.Error("ConventionalMP2 accepted a degenerate reference")
	}
}

// Empty occupied or virtual spaces are valid inputs with an identically
// zero correlation energy.
func TestPairEnergiesEmptySpaces(t *testing.T) {
	for _, c := range []struct{ nocc, nvir int }{{0, 3}, {4, 0}, {0, 0}} {
		qov := linalg.NewTensor3(8, c.nocc, c.nvir)
		bov := linalg.NewTensor3(c.nocc, 8, c.nvir)
		eps := make([]float64, c.nocc+c.nvir)
		eos, ess, err := PairEnergiesBlocked(qov, eps, c.nocc, 0, nil, linalg.F64)
		if err != nil || eos != 0 || ess != 0 {
			t.Errorf("blocked nocc=%d nvir=%d: (%g, %g, %v), want zeros", c.nocc, c.nvir, eos, ess, err)
		}
		eos, ess, err = PairEnergiesUnblocked(bov, eps, c.nocc, nil)
		if err != nil || eos != 0 || ess != 0 {
			t.Errorf("per-pair nocc=%d nvir=%d: (%g, %g, %v), want zeros", c.nocc, c.nvir, eos, ess, err)
		}
	}
}

// Single occupied and single virtual orbital: the tiled loop's smallest
// possible problem, cross-checked against the closed-form pair energy.
func TestPairEnergiesSingleOrbital(t *testing.T) {
	qov, bov, eps := synthPairProblem(1, 1, 6)
	var v float64
	for p := 0; p < 6; p++ {
		v += qov.At(p, 0, 0) * qov.At(p, 0, 0)
	}
	de := 2*eps[0] - 2*eps[1]
	wantOS := v * v / de
	eos, ess, err := PairEnergiesBlocked(qov, eps, 1, 0, nil, linalg.F64)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eos-wantOS) > 1e-14 || math.Abs(ess) > 1e-14 {
		t.Errorf("single orbital: got (%.16f, %.16f), want (%.16f, 0)", eos, ess, wantOS)
	}
	peos, pess, err := PairEnergiesUnblocked(bov, eps, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if eos != peos || ess != pess {
		t.Errorf("single-orbital blocked (%.16g, %.16g) != per-pair (%.16g, %.16g)", eos, ess, peos, pess)
	}
}

// ConventionalMP2 must never hold more than two N⁴ scratch arrays at
// once: each quarter transform releases its input before the next is
// allocated (the pre-fix transform kept three alive and re-derived the
// fourth quarter inside the energy loop).
func TestConventionalMP2QuarticScratchPeak(t *testing.T) {
	ref := runSCF(t, molecule.Water(), false, basis.AuxOptions{})
	eri := integrals.FourCenterAll(ref.Bs)
	ResetQuarticScratchStats()
	if _, err := ConventionalMP2(ref, eri); err != nil {
		t.Fatal(err)
	}
	if peak := QuarticScratchPeak(); peak != 2 {
		t.Errorf("quartic scratch high-water mark = %d arrays, want 2", peak)
	}
}

// Schwarz-screened three-center integrals at the default threshold must
// reproduce the unscreened RI-MP2 energies to well below chemical
// noise (the ISSUE acceptance bar is 1e-8 Ha).
func TestRIMP2ScreenedMatchesUnscreened(t *testing.T) {
	g := molecule.Water()
	bs, err := basis.Build("sto-3g", g)
	if err != nil {
		t.Fatal(err)
	}
	run := func(thresh float64) *Result {
		ref, err := scf.RHF(g, bs, scf.Options{
			UseRI: true, AuxOpts: smallAux,
			ConvE: 1e-12, ConvErr: 1e-10,
			RIScreenThresh: thresh,
		})
		if err != nil {
			t.Fatal(err)
		}
		r, err := RIMP2(ref, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	unscreened := run(-1) // negative disables the screen
	screened := run(0)    // 0 selects the 1e-12 default
	loose := run(1e-10)   // tighter than chemical accuracy, looser than default
	for _, c := range []struct {
		name string
		r    *Result
	}{{"default", screened}, {"1e-10", loose}} {
		if d := math.Abs(c.r.Ecorr - unscreened.Ecorr); d > 1e-8 {
			t.Errorf("%s screen: Ecorr deviates %.3e Ha from unscreened", c.name, d)
		}
		if d := math.Abs(c.r.ETotal - unscreened.ETotal); d > 1e-8 {
			t.Errorf("%s screen: ETotal deviates %.3e Ha from unscreened", c.name, d)
		}
	}
}
