package serve

import (
	"encoding/json"
	"errors"
	"net/http"
)

// Handler returns the server's HTTP API:
//
//	POST /v1/jobs              submit a JobSpec        → 201 JobView
//	GET  /v1/jobs/{id}         job status              → 200 JobView
//	GET  /v1/jobs/{id}/stream  NDJSON live step stream → 200 StepRecord*
//	GET  /v1/jobs/{id}/result  full stats payload      → 200 JobResult
//	POST /v1/jobs/{id}/cancel  cancel                  → 200 JobView
//	GET  /v1/healthz           liveness + drain flag   → 200
//	GET  /v1/stats             per-tenant census       → 200
//
// Overload and drain reject submissions with 503; invalid specs are
// 400; unknown jobs are 404.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	return mux
}

// writeJSON sends one JSON document.
func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

// apiError is the uniform error payload.
type apiError struct {
	Error string `json:"error"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{"bad request body: " + err.Error()})
		return
	}
	view, err := s.Submit(spec)
	switch {
	case err == nil:
		writeJSON(w, http.StatusCreated, view)
	case errors.Is(err, ErrBusy), errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, apiError{err.Error()})
	default:
		writeJSON(w, http.StatusBadRequest, apiError{err.Error()})
	}
}

// lookup resolves {id} or writes a 404.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*job, bool) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{"no job " + r.PathValue("id")})
	}
	return j, ok
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	j.mu.Lock()
	view := j.viewLocked()
	j.mu.Unlock()
	writeJSON(w, http.StatusOK, view)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	j.mu.Lock()
	res := JobResult{JobView: j.viewLocked()}
	res.Stats = append(res.Stats, j.stats...)
	j.mu.Unlock()
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	if err := s.Cancel(j.spec.ID); err != nil {
		writeJSON(w, http.StatusInternalServerError, apiError{err.Error()})
		return
	}
	j.mu.Lock()
	view := j.viewLocked()
	j.mu.Unlock()
	writeJSON(w, http.StatusOK, view)
}

// handleStream follows a job live as NDJSON: every completed step as
// one StepRecord line, then one terminal {"status":...} line when the
// job reaches a terminal state. A parked job (server draining) holds
// the stream open until the client gives up or the server exits; the
// re-reported steps of a later resume are not re-sent, because the
// stream indexes by global step.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	next := 0
	for {
		j.mu.Lock()
		for next < len(j.stats) {
			enc.Encode(j.stats[next])
			next++
		}
		st, errMsg := j.status, j.errMsg
		update := j.update
		j.mu.Unlock()
		if flusher != nil {
			flusher.Flush()
		}
		if st.terminal() {
			enc.Encode(struct {
				Status Status `json:"status"`
				Error  string `json:"error,omitempty"`
			}{st, errMsg})
			return
		}
		select {
		case <-update:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Status   string `json:"status"`
		Draining bool   `json:"draining"`
	}{"ok", s.Draining()})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	tenants, draining := s.Stats()
	writeJSON(w, http.StatusOK, struct {
		Draining bool                    `json:"draining"`
		Tenants  map[string]TenantCounts `json:"tenants"`
	}{draining, tenants})
}
