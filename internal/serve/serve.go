// Package serve is the multi-tenant trajectory server (ROADMAP item 4,
// DESIGN.md §12): fragmd as a service. Clients submit molecules over an
// HTTP/JSON API (stdlib net/http — the module stays zero-dep), the
// server runs each as an asynchronous MBE AIMD trajectory, streams
// per-step statistics live, and serves results.
//
// Three properties define the design:
//
//   - Admission-controlled fair scheduling: submissions are bounded by
//     a queue cap (overload is an immediate 503, never an unbounded
//     backlog), and the dispatcher drains per-tenant FIFOs round-robin,
//     so a tenant submitting thousands of jobs cannot starve one
//     submitting a handful.
//
//   - Shared incremental-evaluation state: jobs over the same system
//     under the same physics share one warm-start cache (and the
//     process-global GEMM autotuner), so a fleet of near-identical
//     trajectories pays the cold-start cost once. Sharing is keyed so
//     it can never relax a job's accuracy: warm starts are exact, and
//     skip reuse only joins jobs that asked for the same tolerance.
//
//   - Durable work: every job is persisted at admission and
//     checkpointed (internal/resilience, crash-durably) every
//     CheckpointEvery steps, so Drain parks running jobs at their next
//     chunk boundary and a restarted server resumes every non-terminal
//     job with no lost or duplicated steps — trajectory chunking reuses
//     the boundary-step semantics of cmd/fragmd's runMD, so a resumed
//     job reproduces the uninterrupted trajectory's energies.
//
// The server can also front a netcoord worker fleet (Options.
// Coordinator): evaluations then execute in remote worker processes.
// Because an executor snapshot owns the fleet's slots for one engine
// run, concurrent jobs time-share the fleet at chunk granularity
// instead of running truly concurrently.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/fragmd/fragmd/internal/chem"
	"github.com/fragmd/fragmd/internal/fragment"
	"github.com/fragmd/fragmd/internal/md"
	"github.com/fragmd/fragmd/internal/netcoord"
	"github.com/fragmd/fragmd/internal/resilience"
	"github.com/fragmd/fragmd/internal/sched"
	"github.com/fragmd/fragmd/internal/warmstart"
)

// Options configures a Server.
type Options struct {
	// StateDir is the durable root: jobs/<id>.json records and
	// ck/<id>.ck checkpoints. Required.
	StateDir string
	// MaxActive bounds concurrently running jobs (default 4).
	MaxActive int
	// MaxQueued bounds admitted-but-not-running jobs across all tenants
	// (default 256); beyond it submissions fail with ErrBusy (HTTP 503).
	MaxQueued int
	// CheckpointEvery is the trajectory chunk length in MD steps
	// (default 5): the checkpoint cadence, and therefore the drain
	// latency bound — a drain waits at most one chunk per running job.
	CheckpointEvery int
	// JobWorkers is the default per-job evaluation goroutine count when
	// a spec leaves Workers zero (default 1 — server throughput comes
	// from job concurrency, not per-job width).
	JobWorkers int

	// Coordinator, when non-nil, runs every evaluation on the connected
	// netcoord worker fleet. FleetEval must then equal the EvalSpec the
	// coordinator was started with: workers build their evaluator from
	// the handshake, so a job requesting different physics is rejected
	// at admission rather than silently computed with the fleet's.
	Coordinator *netcoord.Coordinator
	FleetEval   netcoord.EvalSpec
	// FleetMinWorkers is the fleet size each chunk waits for (default 1).
	FleetMinWorkers int

	// Logf receives operational log lines (nil = silent).
	Logf func(format string, args ...interface{})
}

// ErrBusy rejects a submission when the queue is at MaxQueued.
var ErrBusy = errors.New("serve: queue full")

// ErrDraining rejects a submission while the server is draining.
var ErrDraining = errors.New("serve: draining")

// Server is a multi-tenant trajectory server. Create one with New,
// mount Handler on an http.Server, and stop with Drain (graceful,
// checkpoint-and-park) or Close (immediate, cancel-and-park).
type Server struct {
	opts    Options
	jobsDir string
	ckDir   string

	ctx    context.Context // root of every job context; Close cancels
	cancel context.CancelFunc

	// fleetMu serializes engine runs over the shared worker fleet: an
	// executor snapshot maps fleet slots to one engine's worker handles,
	// so two concurrent engines would corrupt each other's in-flight
	// bookkeeping. Held per chunk, so jobs interleave fairly.
	fleetMu sync.Mutex

	mu       sync.Mutex
	jobs     map[string]*job
	pending  map[string][]*job // per-tenant FIFO
	ring     []string          // tenant round-robin order
	rr       int
	queuedN  int
	activeN  int
	draining bool
	closed   bool
	nextID   int
	warmPool map[string]*warmstart.Cache
	wg       sync.WaitGroup // running jobs
}

// New builds a server, recovers every non-terminal job found in
// StateDir (queued and running records re-enter the queue; a running
// record means the previous process died mid-job), and starts
// dispatching.
func New(opts Options) (*Server, error) {
	if opts.StateDir == "" {
		return nil, errors.New("serve: Options.StateDir is required")
	}
	if opts.MaxActive <= 0 {
		opts.MaxActive = 4
	}
	if opts.MaxQueued <= 0 {
		opts.MaxQueued = 256
	}
	if opts.CheckpointEvery <= 0 {
		opts.CheckpointEvery = 5
	}
	if opts.JobWorkers <= 0 {
		opts.JobWorkers = 1
	}
	if opts.FleetMinWorkers <= 0 {
		opts.FleetMinWorkers = 1
	}
	s := &Server{
		opts:     opts,
		jobsDir:  filepath.Join(opts.StateDir, "jobs"),
		ckDir:    filepath.Join(opts.StateDir, "ck"),
		jobs:     map[string]*job{},
		pending:  map[string][]*job{},
		warmPool: map[string]*warmstart.Cache{},
	}
	s.ctx, s.cancel = context.WithCancel(context.Background())
	for _, dir := range []string{s.jobsDir, s.ckDir} {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.dispatchLocked()
	s.mu.Unlock()
	return s, nil
}

func (s *Server) logf(format string, args ...interface{}) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// recover scans the jobs directory and re-enqueues every non-terminal
// record. Terminal records stay loaded so results remain fetchable
// across restarts.
func (s *Server) recover() error {
	entries, err := os.ReadDir(s.jobsDir)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	var recs []*Record
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		path := filepath.Join(s.jobsDir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("serve: %w", err)
		}
		rec := new(Record)
		if err := json.Unmarshal(data, rec); err != nil {
			return fmt.Errorf("serve: job record %s: %w", path, err)
		}
		if rec.Schema != RecordSchema {
			return fmt.Errorf("serve: job record %s has schema %q, want %q", path, rec.Schema, RecordSchema)
		}
		recs = append(recs, rec)
	}
	// Deterministic revival order: by ID, which is submission order.
	sort.Slice(recs, func(i, j int) bool { return recs[i].Spec.ID < recs[j].Spec.ID })
	revived := 0
	for _, rec := range recs {
		var n int
		if _, err := fmt.Sscanf(rec.Spec.ID, "j-%d", &n); err == nil && n >= s.nextID {
			s.nextID = n + 1
		}
		j := s.newJob(rec.Spec)
		j.status = rec.Status
		j.errMsg = rec.Error
		j.done = rec.StepsDone
		j.stats = rec.Stats
		j.e0, j.hasE0 = rec.E0, rec.HasE0
		s.jobs[j.spec.ID] = j
		if !rec.Status.terminal() {
			j.status = StatusQueued
			s.enqueueLocked(j)
			revived++
		}
	}
	if revived > 0 {
		s.logf("serve: recovered %d unfinished job(s) from %s", revived, s.opts.StateDir)
	}
	return nil
}

// newJob wires a job's context and paths; no locking needed beyond the
// caller's.
func (s *Server) newJob(spec JobSpec) *job {
	j := &job{
		spec:    spec,
		recPath: filepath.Join(s.jobsDir, spec.ID+".json"),
		ckPath:  filepath.Join(s.ckDir, spec.ID+".ck"),
		status:  StatusQueued,
		update:  make(chan struct{}),
	}
	j.ctx, j.cancel = context.WithCancel(s.ctx)
	return j
}

// persist writes the job's durable record; callers hold j.mu (not
// s.mu — record writes happen off the scheduler lock).
func (s *Server) persistLocked(j *job) error {
	data, err := json.Marshal(j.recordLocked())
	if err != nil {
		return fmt.Errorf("serve: encode job %s: %w", j.spec.ID, err)
	}
	if err := resilience.AtomicWriteFile(j.recPath, data); err != nil {
		return fmt.Errorf("serve: persist job %s: %w", j.spec.ID, err)
	}
	return nil
}

// Submit validates and admits one job: the spec is normalized, the
// queued record is made durable, and only then is the job visible and
// eligible to run — an acknowledged submission survives any crash.
func (s *Server) Submit(spec JobSpec) (JobView, error) {
	if err := spec.normalize(); err != nil {
		return JobView{}, fmt.Errorf("serve: invalid job: %w", err)
	}
	if s.opts.Coordinator != nil && spec.eval() != s.opts.FleetEval {
		return JobView{}, fmt.Errorf("serve: invalid job: this server fronts a %s/%s worker fleet; the job's potential/basis/scs/ri_screen must match",
			s.opts.FleetEval.Potential, s.opts.FleetEval.Basis)
	}
	s.mu.Lock()
	if s.draining || s.closed {
		s.mu.Unlock()
		return JobView{}, ErrDraining
	}
	if s.queuedN >= s.opts.MaxQueued {
		s.mu.Unlock()
		return JobView{}, ErrBusy
	}
	spec.ID = fmt.Sprintf("j-%06d", s.nextID)
	s.nextID++
	// Reserve queue capacity while the record is written outside the
	// lock, so concurrent submitters cannot oversubscribe the cap.
	s.queuedN++
	s.mu.Unlock()

	j := s.newJob(spec)
	j.mu.Lock()
	err := s.persistLocked(j)
	view := j.viewLocked()
	j.mu.Unlock()

	s.mu.Lock()
	s.queuedN-- // enqueueLocked re-counts it
	if err != nil {
		s.mu.Unlock()
		return JobView{}, err
	}
	s.jobs[spec.ID] = j
	s.enqueueLocked(j)
	s.dispatchLocked()
	s.mu.Unlock()
	return view, nil
}

// enqueueLocked appends the job to its tenant FIFO; callers hold s.mu.
func (s *Server) enqueueLocked(j *job) {
	t := j.spec.Tenant
	if _, ok := s.pending[t]; !ok {
		s.ring = append(s.ring, t)
	}
	s.pending[t] = append(s.pending[t], j)
	s.queuedN++
}

// popNextLocked removes and returns the next job in tenant round-robin
// order (nil when nothing is queued); callers hold s.mu.
func (s *Server) popNextLocked() *job {
	for range s.ring {
		t := s.ring[s.rr%len(s.ring)]
		s.rr++
		q := s.pending[t]
		if len(q) == 0 {
			continue
		}
		j := q[0]
		s.pending[t] = q[1:]
		s.queuedN--
		return j
	}
	return nil
}

// dispatchLocked launches queued jobs while capacity allows; callers
// hold s.mu.
func (s *Server) dispatchLocked() {
	for !s.draining && !s.closed && s.activeN < s.opts.MaxActive {
		j := s.popNextLocked()
		if j == nil {
			return
		}
		s.activeN++
		j.mu.Lock()
		j.status = StatusRunning
		j.notifyLocked()
		j.mu.Unlock()
		s.wg.Add(1)
		go s.runJob(j)
	}
}

// Job returns a job by ID.
func (s *Server) Job(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Cancel terminates a job: a queued job is cancelled in place, a
// running one has its context cancelled and finishes as cancelled at
// the next evaluation boundary.
func (s *Server) Cancel(id string) error {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("serve: no job %s", id)
	}
	// Remove from the pending FIFO if still queued, so the dispatcher
	// cannot race the cancellation.
	q := s.pending[j.spec.Tenant]
	for i, qj := range q {
		if qj == j {
			s.pending[j.spec.Tenant] = append(q[:i:i], q[i+1:]...)
			s.queuedN--
			break
		}
	}
	s.mu.Unlock()

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status.terminal() {
		return nil
	}
	j.cancelled = true
	j.cancel()
	if j.status == StatusQueued {
		j.status = StatusCancelled
		j.notifyLocked()
		if err := s.persistLocked(j); err != nil {
			return err
		}
	}
	return nil
}

// Draining reports whether the server has stopped admitting jobs.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// TenantCounts is the per-tenant job census (GET /v1/stats).
type TenantCounts struct {
	Queued    int `json:"queued"`
	Running   int `json:"running"`
	Done      int `json:"done"`
	Failed    int `json:"failed"`
	Cancelled int `json:"cancelled"`
}

// Stats returns the per-tenant census and the drain flag.
func (s *Server) Stats() (map[string]TenantCounts, bool) {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	draining := s.draining
	s.mu.Unlock()
	out := map[string]TenantCounts{}
	for _, j := range jobs {
		j.mu.Lock()
		st := j.status
		j.mu.Unlock()
		c := out[j.spec.Tenant]
		switch st {
		case StatusQueued:
			c.Queued++
		case StatusRunning:
			c.Running++
		case StatusDone:
			c.Done++
		case StatusFailed:
			c.Failed++
		case StatusCancelled:
			c.Cancelled++
		}
		out[j.spec.Tenant] = c
	}
	return out, draining
}

// Drain gracefully quiesces the server: admissions stop (503), queued
// jobs stay queued (durably, for the next process), and running jobs
// park at their next chunk boundary with a fresh checkpoint. It
// returns when no job is running or ctx expires.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		s.logf("serve: draining: admissions stopped, parking %d running job(s)", s.activeN)
	}
	s.mu.Unlock()
	for {
		s.mu.Lock()
		n := s.activeN
		s.mu.Unlock()
		if n == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("serve: drain: %d job(s) still running: %w", n, ctx.Err())
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// Close stops the server immediately: every running job's context is
// cancelled, so engines abort mid-chunk and jobs park at their last
// checkpoint. Durability makes this safe — a successor server resumes
// them — but Drain is the graceful path.
func (s *Server) Close() error {
	s.mu.Lock()
	s.draining = true
	s.closed = true
	s.mu.Unlock()
	s.cancel()
	s.wg.Wait()
	return nil
}

// sharedCache returns the pool cache for the job's system fingerprint,
// creating it on first use; nil when the spec asked for no reuse.
func (s *Server) sharedCache(j *job) *warmstart.Cache {
	sp := &j.spec
	if !sp.Warm && sp.SkipTolA <= 0 {
		return nil
	}
	g, _, err := sp.system()
	if err != nil {
		return nil // surfaces properly in execute
	}
	key := sp.fingerprint(g)
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.warmPool[key]
	if !ok {
		c = warmstart.NewCache(sp.SkipTolA*chem.BohrPerAngstrom, sp.MaxSkip)
		s.warmPool[key] = c
	}
	return c
}

// runJob executes one job to a terminal status or a parked (queued)
// state, then releases its active slot.
func (s *Server) runJob(j *job) {
	defer s.wg.Done()
	s.execute(j)
	s.mu.Lock()
	s.activeN--
	s.dispatchLocked()
	s.mu.Unlock()
}

// park persists the job as queued at its last durable boundary: stats
// past the checkpoint are discarded (the resumed run re-reports them
// identically), so the record never claims steps a restart cannot
// reproduce.
func (s *Server) park(j *job) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.status = StatusQueued
	if len(j.stats) > j.done {
		j.stats = j.stats[:j.done]
	}
	j.notifyLocked()
	if err := s.persistLocked(j); err != nil {
		s.logf("serve: park %s: %v", j.spec.ID, err)
	}
}

// finish persists a terminal status and drops the checkpoint.
func (s *Server) finish(j *job, st Status, errMsg string) {
	j.mu.Lock()
	j.status = st
	j.errMsg = errMsg
	j.notifyLocked()
	err := s.persistLocked(j)
	j.mu.Unlock()
	if err != nil {
		s.logf("serve: finish %s: %v", j.spec.ID, err)
	}
	os.Remove(j.ckPath) // best-effort tidy; a stale checkpoint is ignored anyway
	s.logf("serve: job %s (%s) %s", j.spec.ID, j.spec.Tenant, st)
}

// execute runs the trajectory in checkpointed chunks, mirroring
// cmd/fragmd's runMD boundary semantics: a continuation chunk
// re-evaluates the checkpointed geometry as its local step 0 and does
// not re-report it, so the assembled stats reproduce an uninterrupted
// run's. Write order per chunk is record first, checkpoint second:
// a crash between them leaves the checkpoint behind the record, and
// the resumed run re-reports the overlap idempotently (stats are keyed
// by global step).
func (s *Server) execute(j *job) {
	sp := &j.spec
	g, f, err := sp.system()
	if err != nil {
		s.finish(j, StatusFailed, err.Error())
		return
	}
	eval, err := sp.eval().Build()
	if err != nil {
		s.finish(j, StatusFailed, err.Error())
		return
	}
	cache := s.sharedCache(j)
	workers := sp.Workers
	if workers == 0 {
		workers = s.opts.JobWorkers
	}
	engOpts := sched.Options{
		Workers: workers, Async: true, Dt: sp.DtFs * chem.AtomicTimePerFs,
		WarmStart: sp.Warm, SkipTol: sp.SkipTolA * chem.BohrPerAngstrom, MaxSkip: sp.MaxSkip,
		Cache: cache,
	}
	if s.opts.Coordinator != nil {
		eval = nil // evaluations happen in the workers
		engOpts.MaxRetries = 1
	}

	var state *md.State
	done := 0
	if ck, err := resilience.Load(j.ckPath); err == nil {
		if !ck.Matches(g) {
			s.finish(j, StatusFailed, "checkpoint belongs to a different system")
			return
		}
		if state, err = ck.State(); err != nil {
			s.finish(j, StatusFailed, err.Error())
			return
		}
		if cache != nil && cache.Len() == 0 {
			// Re-seed the shared cache only when it is cold: live entries
			// from concurrent jobs are at least as fresh as the
			// checkpointed ones.
			if err := ck.RestoreCache(cache); err != nil {
				s.finish(j, StatusFailed, err.Error())
				return
			}
		}
		done = ck.StepsDone
		j.mu.Lock()
		j.done = done
		if len(j.stats) > done {
			j.stats = j.stats[:done]
		}
		if ck.HasE0 {
			j.e0, j.hasE0 = ck.E0, true
		}
		j.mu.Unlock()
		s.logf("serve: job %s resumes at step %d/%d", sp.ID, done, sp.Steps)
	} else if errors.Is(err, os.ErrNotExist) {
		state = md.NewState(g)
		state.SampleVelocities(sp.TempK, rand.New(rand.NewSource(sp.Seed)))
	} else {
		s.finish(j, StatusFailed, fmt.Sprintf("load checkpoint: %v", err))
		return
	}

	for done < sp.Steps {
		if j.ctx.Err() != nil {
			break
		}
		if s.Draining() {
			s.park(j)
			return
		}
		offset := 0
		if done > 0 {
			offset = 1
		}
		chunk := sp.Steps - done + offset
		if max := s.opts.CheckpointEvery + offset; chunk > max {
			chunk = max
		}
		err := s.runChunk(j, f, eval, engOpts, state, chunk, offset, done)
		if err != nil {
			if j.ctx.Err() != nil {
				break // cancelled or closed mid-chunk; sort it out below
			}
			s.finish(j, StatusFailed, err.Error())
			return
		}
		done += chunk - offset
		j.mu.Lock()
		j.done = done
		perr := s.persistLocked(j)
		e0, hasE0 := j.e0, j.hasE0
		j.mu.Unlock()
		if perr != nil {
			s.finish(j, StatusFailed, perr.Error())
			return
		}
		ck := resilience.Snapshot(state, done, engOpts.Dt)
		ck.TotalSteps = sp.Steps
		ck.Seed = sp.Seed
		ck.E0, ck.HasE0 = e0, hasE0
		ck.AttachCache(cache)
		if err := resilience.Save(j.ckPath, ck); err != nil {
			s.finish(j, StatusFailed, err.Error())
			return
		}
	}

	if j.ctx.Err() != nil {
		j.mu.Lock()
		cancelled := j.cancelled
		j.mu.Unlock()
		if cancelled {
			s.finish(j, StatusCancelled, "")
		} else {
			s.park(j) // server shutdown, not a client decision
		}
		return
	}
	s.finish(j, StatusDone, "")
}

// runChunk runs one engine over chunk steps, reporting global stats
// through the job. With a fleet coordinator the chunk exclusively owns
// an executor snapshot for its duration.
func (s *Server) runChunk(j *job, f *fragment.Fragmentation, eval fragment.Evaluator, engOpts sched.Options,
	state *md.State, chunk, offset, done int) error {
	if c := s.opts.Coordinator; c != nil {
		s.fleetMu.Lock()
		defer s.fleetMu.Unlock()
		if _, err := c.WaitWorkers(j.ctx, s.opts.FleetMinWorkers); err != nil {
			return err
		}
		x := c.Executor()
		engOpts.Exec = x
		engOpts.Workers = 0 // adopt the snapshot's slot count
		engOpts.Groups = x.Procs()
	}
	eng, err := sched.New(f, eval, engOpts)
	if err != nil {
		return err
	}
	_, err = eng.RunContext(j.ctx, state, chunk, func(st sched.StepStats) {
		if st.Step < offset {
			return // boundary step, already reported
		}
		global := done - offset + st.Step
		j.mu.Lock()
		if !j.hasE0 {
			j.e0, j.hasE0 = st.Etot, true
		}
		rec := StepRecord{Step: global, Etot: st.Etot, Epot: st.Epot, Ekin: st.Ekin,
			SCFIters: st.SCFIters, Skipped: st.Skipped}
		if global < len(j.stats) {
			j.stats[global] = rec
		} else {
			for len(j.stats) < global {
				// Unreachable by construction (steps finalize in order),
				// but never leave a hole silently.
				j.stats = append(j.stats, StepRecord{Step: len(j.stats)})
			}
			j.stats = append(j.stats, rec)
		}
		j.notifyLocked()
		j.mu.Unlock()
	})
	return err
}
