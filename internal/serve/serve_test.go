package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/fragmd/fragmd/internal/chem"
	"github.com/fragmd/fragmd/internal/md"
	"github.com/fragmd/fragmd/internal/molecule"
	"github.com/fragmd/fragmd/internal/netcoord"
	"github.com/fragmd/fragmd/internal/sched"
	"github.com/fragmd/fragmd/internal/warmstart"
)

// waterXYZ renders an n-molecule water cluster as XYZ text, the wire
// form a client submits.
func waterXYZ(t *testing.T, n int) string {
	t.Helper()
	var buf bytes.Buffer
	if err := molecule.WaterCluster(n).WriteXYZ(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// ljSpec is the small standard job of this suite: a Lennard-Jones
// water-cluster trajectory, fast enough to run by the dozen under
// -race.
func ljSpec(t *testing.T, tenant string, molecules, steps int) JobSpec {
	t.Helper()
	return JobSpec{
		Tenant: tenant, XYZ: waterXYZ(t, molecules), Potential: "lj",
		Steps: steps, Warm: true,
	}
}

// serialEnergies runs the spec's trajectory directly through one
// single-worker engine — the reference the server's concurrent,
// chunked, possibly-resumed runs must reproduce.
func serialEnergies(t *testing.T, spec JobSpec) []float64 {
	t.Helper()
	if err := spec.normalize(); err != nil {
		t.Fatal(err)
	}
	g, f, err := spec.system()
	if err != nil {
		t.Fatal(err)
	}
	eval, err := spec.eval().Build()
	if err != nil {
		t.Fatal(err)
	}
	opts := sched.Options{
		Workers: 1, Async: true, Dt: spec.DtFs * chem.AtomicTimePerFs,
		WarmStart: spec.Warm, SkipTol: spec.SkipTolA * chem.BohrPerAngstrom, MaxSkip: spec.MaxSkip,
	}
	if opts.WarmStart || opts.SkipTol > 0 {
		opts.Cache = warmstart.NewCache(opts.SkipTol, opts.MaxSkip)
	}
	eng, err := sched.New(f, eval, opts)
	if err != nil {
		t.Fatal(err)
	}
	state := md.NewState(g)
	state.SampleVelocities(spec.TempK, rand.New(rand.NewSource(spec.Seed)))
	stats, err := eng.Run(state, spec.Steps, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, len(stats))
	for i, st := range stats {
		out[i] = st.Etot
	}
	return out
}

// postJob submits a spec over HTTP and returns the assigned ID.
func postJob(t *testing.T, base string, spec JobSpec) string {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var view JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	return view.ID
}

// waitTerminal polls a job over HTTP until it reaches a terminal
// status.
func waitTerminal(t *testing.T, base, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var view JobView
		err = json.NewDecoder(resp.Body).Decode(&view)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if view.Status.terminal() {
			return view
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, view.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// fetchResult retrieves the full stats payload.
func fetchResult(t *testing.T, base, id string) JobResult {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var res JobResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	return res
}

// assertTrajectory checks a completed job's stats against the serial
// reference: every step exactly once, in order, energies within tol.
func assertTrajectory(t *testing.T, res JobResult, ref []float64, tol float64) {
	t.Helper()
	if res.Status != StatusDone {
		t.Fatalf("job %s: status %s (%s)", res.ID, res.Status, res.Error)
	}
	if len(res.Stats) != len(ref) {
		t.Fatalf("job %s: %d steps reported, want %d", res.ID, len(res.Stats), len(ref))
	}
	for i, st := range res.Stats {
		if st.Step != i {
			t.Fatalf("job %s: stats[%d] is step %d — lost or duplicated steps", res.ID, i, st.Step)
		}
		if d := math.Abs(st.Etot - ref[i]); d > tol {
			t.Errorf("job %s step %d: Etot %.12f, serial %.12f (|Δ| %.2e > %g)",
				res.ID, i, st.Etot, ref[i], d, tol)
		}
	}
}

// N tenants × M concurrent jobs over one shared warm-start cache must
// each reproduce the serial single-engine trajectory to ≤1e-10 Ha.
func TestConcurrentTenantsMatchSerial(t *testing.T) {
	s, err := New(Options{StateDir: t.TempDir(), MaxActive: 6, CheckpointEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ref := serialEnergies(t, ljSpec(t, "ref", 2, 6))
	tenants := []string{"alice", "bob", "carol"}
	var ids []string
	for _, tenant := range tenants {
		for k := 0; k < 3; k++ {
			ids = append(ids, postJob(t, ts.URL, ljSpec(t, tenant, 2, 6)))
		}
	}
	for _, id := range ids {
		waitTerminal(t, ts.URL, id)
		assertTrajectory(t, fetchResult(t, ts.URL, id), ref, 1e-10)
	}
	counts, _ := s.Stats()
	for _, tenant := range tenants {
		if got := counts[tenant].Done; got != 3 {
			t.Errorf("tenant %s: %d done, want 3", tenant, got)
		}
	}
}

// Killing the server mid-job (Close cancels every engine) and starting
// a successor on the same state directory must resume every
// checkpointed job with no lost or duplicated steps and unchanged
// energies.
func TestCloseRestartResumesEveryJob(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Options{StateDir: dir, MaxActive: 2, CheckpointEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	ref := serialEnergies(t, ljSpec(t, "ref", 2, 8))
	var ids []string
	for k := 0; k < 6; k++ {
		view, err := s.Submit(ljSpec(t, fmt.Sprintf("tenant-%d", k%2), 2, 8))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, view.ID)
	}
	// Let at least one job make checkpointed progress, then kill.
	deadline := time.Now().Add(30 * time.Second)
	for {
		j, _ := s.Job(ids[0])
		j.mu.Lock()
		progressed := j.done > 0
		j.mu.Unlock()
		if progressed || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	s.Close()

	s2, err := New(Options{StateDir: dir, MaxActive: 2, CheckpointEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	ts := httptest.NewServer(s2.Handler())
	defer ts.Close()
	for _, id := range ids {
		waitTerminal(t, ts.URL, id)
		assertTrajectory(t, fetchResult(t, ts.URL, id), ref, 1e-10)
	}
}

// Drain must stop admissions with 503, park running jobs durably as
// queued, and leave a state directory a successor fully completes.
func TestDrainParksJobsDurably(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Options{StateDir: dir, MaxActive: 1, CheckpointEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	ref := serialEnergies(t, ljSpec(t, "ref", 2, 50))
	var ids []string
	for k := 0; k < 3; k++ {
		view, err := s.Submit(ljSpec(t, "solo", 2, 50))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, view.ID)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(ljSpec(t, "late", 2, 2)); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit while draining: %v, want ErrDraining", err)
	}
	s.Close()

	s2, err := New(Options{StateDir: dir, MaxActive: 2, CheckpointEvery: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	ts := httptest.NewServer(s2.Handler())
	defer ts.Close()
	for _, id := range ids {
		waitTerminal(t, ts.URL, id)
		assertTrajectory(t, fetchResult(t, ts.URL, id), ref, 1e-10)
	}
}

// holdActive fakes a saturated server so queue behaviour is
// deterministic; the returned release function restores dispatch.
func holdActive(s *Server) (release func()) {
	s.mu.Lock()
	s.activeN += s.opts.MaxActive
	s.mu.Unlock()
	return func() {
		s.mu.Lock()
		s.activeN -= s.opts.MaxActive
		s.dispatchLocked()
		s.mu.Unlock()
	}
}

// Admission control: the queue cap is a hard 503, not a backlog.
func TestAdmissionControl(t *testing.T) {
	s, err := New(Options{StateDir: t.TempDir(), MaxQueued: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	release := holdActive(s)
	defer release()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for k := 0; k < 2; k++ {
		if _, err := s.Submit(ljSpec(t, "t", 2, 2)); err != nil {
			t.Fatal(err)
		}
	}
	body, _ := json.Marshal(ljSpec(t, "t", 2, 2))
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-cap submit: status %d, want 503", resp.StatusCode)
	}
}

// The dispatcher must drain tenant FIFOs round-robin: a tenant with a
// deep backlog cannot push other tenants' first jobs behind it.
func TestRoundRobinFairness(t *testing.T) {
	s, err := New(Options{StateDir: t.TempDir(), MaxQueued: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	release := holdActive(s)
	defer release()
	for k := 0; k < 4; k++ {
		if _, err := s.Submit(ljSpec(t, "greedy", 2, 2)); err != nil {
			t.Fatal(err)
		}
	}
	for _, tenant := range []string{"patient", "quiet"} {
		if _, err := s.Submit(ljSpec(t, tenant, 2, 2)); err != nil {
			t.Fatal(err)
		}
	}
	s.mu.Lock()
	var order []string
	for j := s.popNextLocked(); j != nil; j = s.popNextLocked() {
		order = append(order, j.spec.Tenant)
	}
	s.mu.Unlock()
	if len(order) != 6 {
		t.Fatalf("popped %d jobs, want 6", len(order))
	}
	head := strings.Join(order[:3], ",")
	if head != "greedy,patient,quiet" {
		t.Errorf("first dispatch round %q, want one job per tenant (greedy,patient,quiet)", head)
	}
}

// Cancelling a queued job is immediate and durable; cancelling a
// running job stops it at the next evaluation boundary.
func TestCancel(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Options{StateDir: dir, MaxActive: 1, CheckpointEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	release := holdActive(s)
	queued := postJob(t, ts.URL, ljSpec(t, "t", 2, 2))
	resp, err := http.Post(ts.URL+"/v1/jobs/"+queued+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if view := waitTerminal(t, ts.URL, queued); view.Status != StatusCancelled {
		t.Fatalf("queued job after cancel: %s", view.Status)
	}
	release()

	running := postJob(t, ts.URL, ljSpec(t, "t", 2, 5000))
	// Wait until it is visibly underway, then cancel.
	deadline := time.Now().Add(30 * time.Second)
	for {
		j, _ := s.Job(running)
		j.mu.Lock()
		started := len(j.stats) > 0
		j.mu.Unlock()
		if started || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	resp, err = http.Post(ts.URL+"/v1/jobs/"+running+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if view := waitTerminal(t, ts.URL, running); view.Status != StatusCancelled {
		t.Fatalf("running job after cancel: %s", view.Status)
	}
	// Cancellation is terminal: a restart must not revive it.
	s.Close()
	s2, err := New(Options{StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	j, ok := s2.Job(running)
	if !ok {
		t.Fatal("cancelled job forgotten after restart")
	}
	j.mu.Lock()
	st := j.status
	j.mu.Unlock()
	if st != StatusCancelled {
		t.Fatalf("cancelled job revived as %s after restart", st)
	}
}

// The NDJSON stream delivers every step live, in order, and closes with
// a terminal status line.
func TestStream(t *testing.T) {
	s, err := New(Options{StateDir: t.TempDir(), CheckpointEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	id := postJob(t, ts.URL, ljSpec(t, "t", 2, 5))
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	step := 0
	sawTerminal := false
	for sc.Scan() {
		var line struct {
			Step   *int   `json:"step"`
			Status Status `json:"status"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("stream line %q: %v", sc.Text(), err)
		}
		if line.Status != "" {
			if line.Status != StatusDone {
				t.Fatalf("terminal stream status %s", line.Status)
			}
			sawTerminal = true
			break
		}
		if line.Step == nil || *line.Step != step {
			t.Fatalf("stream line %q, want step %d", sc.Text(), step)
		}
		step++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawTerminal || step != 5 {
		t.Fatalf("stream delivered %d steps (terminal: %t), want 5 + terminal line", step, sawTerminal)
	}
}

// Invalid specs are rejected at admission with 400, unknown jobs with
// 404 — never accepted and failed later.
func TestRejection(t *testing.T) {
	s, err := New(Options{StateDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	bad := []JobSpec{
		{XYZ: waterXYZ(t, 1), Steps: 3},                                       // no tenant
		{Tenant: "t", Steps: 3},                                               // no geometry
		{Tenant: "t", XYZ: waterXYZ(t, 1)},                                    // no steps
		{Tenant: "t", XYZ: "not xyz at all", Steps: 3},                        // unparsable
		{Tenant: "t", XYZ: waterXYZ(t, 1), Steps: 3, Potential: "mystery"},    // unknown potential
		{Tenant: "t", XYZ: waterXYZ(t, 1), Steps: 3, AtomsPerMonomer: -1},     // bad fragmentation
		{Tenant: "t", XYZ: waterXYZ(t, 1), Steps: 3, DtFs: -0.5},              // bad dt
		{Tenant: "t", XYZ: waterXYZ(t, 1), Steps: 3, BoxA: []float64{10, 10}}, // wrong edge count
		{Tenant: "t", XYZ: waterXYZ(t, 1), Steps: 3, BoxA: []float64{-10}},    // non-positive edge
	}
	for i, spec := range bad {
		body, _ := json.Marshal(spec)
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad spec %d: status %d, want 400", i, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/j-999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", resp.StatusCode)
	}
}

// serve can front a netcoord worker fleet: the evaluations run in a
// worker process (here a goroutine) and the trajectory still matches
// the serial reference. Mismatched physics is rejected at admission.
func TestFleetMode(t *testing.T) {
	fleetEval := netcoord.EvalSpec{Potential: "lj", Basis: "sto-3g"}
	c, err := netcoord.Listen("127.0.0.1:0", netcoord.CoordinatorOptions{Eval: fleetEval})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go netcoord.RunWorker(ctx, c.Addr(), netcoord.WorkerOptions{Slots: 1, Redial: -1})

	s, err := New(Options{
		StateDir: t.TempDir(), CheckpointEvery: 2,
		Coordinator: c, FleetEval: fleetEval,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if _, err := s.Submit(JobSpec{Tenant: "t", XYZ: waterXYZ(t, 2), Steps: 2, Potential: "hf"}); err == nil {
		t.Fatal("job with non-fleet potential admitted")
	}

	ref := serialEnergies(t, ljSpec(t, "ref", 2, 4))
	ids := []string{
		postJob(t, ts.URL, ljSpec(t, "a", 2, 4)),
		postJob(t, ts.URL, ljSpec(t, "b", 2, 4)),
	}
	for _, id := range ids {
		waitTerminal(t, ts.URL, id)
		assertTrajectory(t, fetchResult(t, ts.URL, id), ref, 1e-10)
	}
}

// The warm-start pool fingerprint treats boundary conditions as part of
// the system identity: a periodic job never shares a cache pool with an
// open-boundary job over the same atoms, two periodic jobs share only
// when their cells match exactly, and a single cubic edge is the same
// cell as its three-edge spelling.
func TestFingerprintSeparatesBoundaryConditions(t *testing.T) {
	fp := func(sp JobSpec) string {
		t.Helper()
		if err := sp.normalize(); err != nil {
			t.Fatal(err)
		}
		g, _, err := sp.system()
		if err != nil {
			t.Fatal(err)
		}
		return sp.fingerprint(g)
	}
	open := ljSpec(t, "t", 2, 1)
	cubic := ljSpec(t, "t", 2, 1)
	cubic.BoxA = []float64{20}
	cubicLong := ljSpec(t, "t", 2, 1)
	cubicLong.BoxA = []float64{20, 20, 20}
	rect := ljSpec(t, "t", 2, 1)
	rect.BoxA = []float64{20, 20, 25}

	if fp(open) == fp(cubic) {
		t.Error("periodic job shares a fingerprint with an open-boundary job")
	}
	if fp(cubic) == fp(rect) {
		t.Error("different cells share a fingerprint")
	}
	if fp(cubic) != fp(cubicLong) {
		t.Error("cubic cell fingerprint depends on its spelling")
	}
}
