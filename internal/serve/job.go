package serve

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"strings"
	"sync"

	"github.com/fragmd/fragmd/internal/chem"
	"github.com/fragmd/fragmd/internal/fragment"
	"github.com/fragmd/fragmd/internal/molecule"
	"github.com/fragmd/fragmd/internal/netcoord"
)

// Status is a job's lifecycle state. queued and running jobs are
// revived after a server restart; done, failed and cancelled are
// terminal.
type Status string

const (
	// StatusQueued marks a job admitted but not yet running — including
	// jobs parked by a drain, which resume from their checkpoint.
	StatusQueued Status = "queued"
	// StatusRunning marks a job whose trajectory is being integrated.
	StatusRunning Status = "running"
	// StatusDone marks a job that completed every requested step.
	StatusDone Status = "done"
	// StatusFailed marks a job whose evaluation errored; Error says why.
	StatusFailed Status = "failed"
	// StatusCancelled marks a job stopped by POST /v1/jobs/{id}/cancel.
	StatusCancelled Status = "cancelled"
)

// terminal reports whether a status can never change again.
func (s Status) terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCancelled
}

// JobSpec is one trajectory request, submitted as the JSON body of
// POST /v1/jobs. ID is assigned by the server; every other field is
// client input. Zero values select the documented defaults.
type JobSpec struct {
	// ID is the server-assigned job identifier (ignored on submit).
	ID string `json:"id,omitempty"`
	// Tenant names the submitting client for fair-share scheduling;
	// required.
	Tenant string `json:"tenant"`
	// XYZ is the inline geometry in XYZ format (Å); required.
	XYZ string `json:"xyz"`
	// BoxA requests periodic (minimum-image) boundaries: either one
	// edge length (cubic) or three, in Å. It overrides any cell=
	// comment in the XYZ; empty keeps the XYZ's cell, or open
	// boundaries if the XYZ has none.
	BoxA []float64 `json:"box,omitempty"`

	// Potential selects the evaluator ("rimp2", "hf", "hf4c", "lj";
	// default "rimp2"); Basis, SCS and RIScreen mirror the CLI knobs.
	Potential string  `json:"potential,omitempty"`
	Basis     string  `json:"basis,omitempty"`
	SCS       bool    `json:"scs,omitempty"`
	RIScreen  float64 `json:"ri_screen,omitempty"`

	// AtomsPerMonomer fragments the cluster molecule-by-molecule
	// (default 3); DimerCutA/TrimerCutA are centroid cutoffs in Å
	// (0 = none).
	AtomsPerMonomer int     `json:"atoms_per_monomer,omitempty"`
	DimerCutA       float64 `json:"dimer_cut,omitempty"`
	TrimerCutA      float64 `json:"trimer_cut,omitempty"`

	// Steps is the trajectory length in MD steps; required ≥ 1. DtFs
	// (default 0.5 fs), TempK (default 150 K) and Seed (default 1) fix
	// the integration and the Maxwell–Boltzmann draw, so a spec is a
	// complete, reproducible description of its trajectory.
	Steps int     `json:"steps"`
	DtFs  float64 `json:"dt_fs,omitempty"`
	TempK float64 `json:"temp_k,omitempty"`
	Seed  int64   `json:"seed,omitempty"`

	// Warm, SkipTolA (Å) and MaxSkip engage incremental evaluation;
	// jobs over the same system share one warm-start cache (see the
	// package comment's sharing semantics).
	Warm     bool    `json:"warm,omitempty"`
	SkipTolA float64 `json:"skip_tol,omitempty"`
	MaxSkip  int     `json:"max_skip,omitempty"`

	// Workers caps this job's evaluation goroutines (0 = the server's
	// per-job default), so one greedy job cannot monopolise the host.
	Workers int `json:"workers,omitempty"`
}

// normalize applies defaults and validates everything cheap to check at
// admission time, so a bad spec is a 400 at submit, never a failed job.
func (sp *JobSpec) normalize() error {
	if strings.TrimSpace(sp.Tenant) == "" {
		return errors.New("tenant is required")
	}
	if sp.XYZ == "" {
		return errors.New("xyz geometry is required")
	}
	if sp.Steps < 1 {
		return errors.New("steps must be at least 1")
	}
	if sp.Potential == "" {
		sp.Potential = "rimp2"
	}
	if sp.Basis == "" {
		sp.Basis = "sto-3g"
	}
	if sp.AtomsPerMonomer == 0 {
		sp.AtomsPerMonomer = 3
	}
	if sp.AtomsPerMonomer < 1 {
		return errors.New("atoms_per_monomer must be at least 1")
	}
	if sp.DtFs == 0 {
		sp.DtFs = 0.5
	}
	if sp.DtFs < 0 {
		return errors.New("dt_fs must be positive")
	}
	if sp.TempK == 0 {
		sp.TempK = 150
	}
	if sp.TempK < 0 {
		return errors.New("temp_k must not be negative")
	}
	if sp.Seed == 0 {
		sp.Seed = 1
	}
	if sp.SkipTolA < 0 || sp.MaxSkip < 0 || sp.Workers < 0 {
		return errors.New("skip_tol, max_skip and workers must not be negative")
	}
	if _, err := sp.eval().Build(); err != nil {
		return fmt.Errorf("potential: %v", err)
	}
	if _, _, err := sp.system(); err != nil {
		return err
	}
	return nil
}

// eval is the evaluator description the job needs — the same portable
// form the network handshake ships, so serve and netcoord agree on the
// physics vocabulary by construction.
func (sp *JobSpec) eval() netcoord.EvalSpec {
	return netcoord.EvalSpec{Potential: sp.Potential, Basis: sp.Basis, SCS: sp.SCS, RIScreen: sp.RIScreen}
}

// system parses and fragments the spec's geometry.
func (sp *JobSpec) system() (*molecule.Geometry, *fragment.Fragmentation, error) {
	g, err := molecule.ParseXYZ(strings.NewReader(sp.XYZ))
	if err != nil {
		return nil, nil, fmt.Errorf("xyz: %v", err)
	}
	if len(sp.BoxA) != 0 {
		var cell *molecule.Cell
		switch len(sp.BoxA) {
		case 1:
			cell, err = molecule.NewCellAngstrom(sp.BoxA[0], sp.BoxA[0], sp.BoxA[0])
		case 3:
			cell, err = molecule.NewCellAngstrom(sp.BoxA[0], sp.BoxA[1], sp.BoxA[2])
		default:
			return nil, nil, fmt.Errorf("box: want 1 or 3 edge lengths, got %d", len(sp.BoxA))
		}
		if err != nil {
			return nil, nil, fmt.Errorf("box: %v", err)
		}
		g.Cell = cell
	}
	opts := fragment.Options{}
	if sp.DimerCutA > 0 {
		opts.DimerCutoff = sp.DimerCutA * chem.BohrPerAngstrom
	}
	if sp.TrimerCutA > 0 {
		opts.TrimerCutoff = sp.TrimerCutA * chem.BohrPerAngstrom
	}
	f, err := fragment.ByMolecule(g, sp.AtomsPerMonomer, 1, opts)
	if err != nil {
		return nil, nil, fmt.Errorf("fragmentation: %v", err)
	}
	return g, f, nil
}

// fingerprint keys the shared warm-start cache pool: jobs share a cache
// exactly when they describe the same system under the same physics and
// the same reuse tolerances, so cross-job reuse can never relax a job's
// own accuracy contract. Polymer cache keys are monomer-index based, so
// anything that changes the fragment identity must change the pool key.
// The boundary conditions are part of the system: a periodic job never
// shares a pool with an open-boundary one, and two periodic jobs share
// only when their cells match exactly.
func (sp *JobSpec) fingerprint(g *molecule.Geometry) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%t|%g|%d|%g|%g|%g|%d|", sp.Potential, sp.Basis, sp.SCS, sp.RIScreen,
		sp.AtomsPerMonomer, sp.DimerCutA, sp.TrimerCutA, sp.SkipTolA, sp.MaxSkip)
	if c := g.Cell; c != nil {
		fmt.Fprintf(h, "cell=%g,%g,%g|", c.L[0], c.L[1], c.L[2])
	} else {
		fmt.Fprintf(h, "open|")
	}
	for _, a := range g.Atoms {
		fmt.Fprintf(h, "%d,", a.Z)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// StepRecord is one completed MD step of a job — the serve-side
// projection of sched.StepStats, keyed by the global step index so
// re-evaluated resume boundaries overwrite idempotently.
type StepRecord struct {
	Step     int     `json:"step"`
	Etot     float64 `json:"etot"`
	Epot     float64 `json:"epot"`
	Ekin     float64 `json:"ekin"`
	SCFIters int     `json:"scf_iters"`
	Skipped  int     `json:"skipped"`
}

// Record is the durable on-disk form of a job
// (StateDir/jobs/<id>.json, written via resilience.AtomicWriteFile).
// Stats never run ahead of what a restart can reproduce: they are
// truncated to the checkpoint boundary whenever a job parks.
type Record struct {
	Schema    string       `json:"schema"`
	Spec      JobSpec      `json:"spec"`
	Status    Status       `json:"status"`
	Error     string       `json:"error,omitempty"`
	StepsDone int          `json:"steps_done"`
	E0        float64      `json:"e0,omitempty"`
	HasE0     bool         `json:"has_e0,omitempty"`
	Stats     []StepRecord `json:"stats,omitempty"`
}

// RecordSchema identifies the job-record layout.
const RecordSchema = "fragmd-serve-job/v1"

// job is the in-memory state of one trajectory. The persisted Record
// is derived from it under mu; streamers follow stats via the
// close-and-replace update channel.
type job struct {
	spec    JobSpec
	recPath string
	ckPath  string

	ctx    context.Context
	cancel context.CancelFunc

	mu        sync.Mutex
	status    Status
	errMsg    string
	done      int // completed global steps, durable (checkpoint boundary)
	stats     []StepRecord
	e0        float64
	hasE0     bool
	cancelled bool          // client asked; distinguishes cancel from server drain
	update    chan struct{} // closed and replaced on every visible mutation
}

// notifyLocked wakes every waiter; callers hold j.mu.
func (j *job) notifyLocked() {
	close(j.update)
	j.update = make(chan struct{})
}

// snapshot returns the job's durable record; callers hold j.mu.
func (j *job) recordLocked() *Record {
	rec := &Record{
		Schema: RecordSchema, Spec: j.spec, Status: j.status, Error: j.errMsg,
		StepsDone: j.done, E0: j.e0, HasE0: j.hasE0,
	}
	rec.Stats = append(rec.Stats, j.stats...)
	return rec
}

// JobView is the API projection of a job (GET /v1/jobs/{id}).
type JobView struct {
	ID        string  `json:"id"`
	Tenant    string  `json:"tenant"`
	Status    Status  `json:"status"`
	Error     string  `json:"error,omitempty"`
	Steps     int     `json:"steps"`
	StepsDone int     `json:"steps_done"`
	E0        float64 `json:"e0,omitempty"`
}

// JobResult is the full terminal payload (GET /v1/jobs/{id}/result).
type JobResult struct {
	JobView
	Stats []StepRecord `json:"stats"`
}

func (j *job) viewLocked() JobView {
	return JobView{
		ID: j.spec.ID, Tenant: j.spec.Tenant, Status: j.status, Error: j.errMsg,
		Steps: j.spec.Steps, StepsDone: len(j.stats), E0: j.e0,
	}
}
