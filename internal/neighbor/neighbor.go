// Package neighbor provides O(N) neighbor enumeration over point sets —
// the linked-cell ("cell list") machinery behind the fragmentation
// path's dimer/trimer enumeration, bond detection, and EE-MBE field
// assembly (DESIGN.md §13).
//
// A Source enumerates, for a given cutoff, the index pairs (i<j) whose
// points lie within the cutoff, the triples (i<j<k) with all three
// pairwise distances within it, and the points near an arbitrary query
// position. Two implementations sit behind the interface:
//
//   - CellList: linked-cell binning with a 27-bin stencil, O(N) for
//     bounded density. With a periodic box it applies the minimum-image
//     convention and wraps the stencil; without one it bins over the
//     bounding box.
//   - Brute: the O(N²)/O(N³) direct scan, retained as the correctness
//     oracle. CellList must reproduce its output exactly — same pairs,
//     same order.
//
// Determinism: both implementations yield pairs in lexicographic order
// (i ascending, then j) and triples in (i, j, k) order, so a caller
// swapping one for the other sees bitwise-identical downstream results.
// Distance comparisons are inclusive (d ≤ cutoff) and evaluated in
// squared form, avoiding a square root in the hot loop; callers with
// per-pair thresholds (bond detection) enumerate with a covering cutoff
// and filter.
//
// The package is intentionally stdlib-only and geometry-agnostic: it
// sees points and an optional box, never atoms, so both the molecule
// and fragment layers can build on it without an import cycle.
package neighbor

import (
	"math"
	"sort"
)

// Source enumerates neighbors within a cutoff over a fixed point set.
// Implementations must yield deterministically: pairs in (i, j)
// lexicographic order, triples in (i, j, k) order, Near in index order.
// Returning false from a yield stops the enumeration.
type Source interface {
	// Pairs yields every (i, j), i < j, with dist(i, j) ≤ cutoff.
	Pairs(cutoff float64, yield func(i, j int) bool)
	// Triples yields every (i, j, k), i < j < k, with all three
	// pairwise distances ≤ cutoff.
	Triples(cutoff float64, yield func(i, j, k int) bool)
	// Near yields every point index with dist(point, p) ≤ cutoff.
	Near(p [3]float64, cutoff float64, yield func(i int) bool)
}

// minImage folds a displacement component into (−L/2, L/2].
func minImage(d, l float64) float64 {
	if l <= 0 {
		return d
	}
	return d - l*math.Round(d/l)
}

// distSq returns the squared distance between a and b under an optional
// periodic box (box nil or zero-length components = open boundaries on
// those axes).
func distSq(a, b [3]float64, box *[3]float64) float64 {
	var s float64
	for k := 0; k < 3; k++ {
		d := a[k] - b[k]
		if box != nil {
			d = minImage(d, box[k])
		}
		s += d * d
	}
	return s
}

// Brute is the O(N²) direct-scan Source — the correctness oracle the
// cell list is tested against, and the fallback for cutoffs the binning
// cannot cover (no finite cutoff, or a periodic box shorter than three
// bins per axis).
type Brute struct {
	pts [][3]float64
	box *[3]float64
}

// NewBrute returns a brute-force Source over pts. box, when non-nil,
// holds orthorhombic box edge lengths and switches distances to the
// minimum-image convention.
func NewBrute(pts [][3]float64, box *[3]float64) *Brute {
	return &Brute{pts: pts, box: box}
}

// Pairs implements Source by direct double loop.
func (b *Brute) Pairs(cutoff float64, yield func(i, j int) bool) {
	c2 := cutoff * cutoff
	inf := math.IsInf(cutoff, 1)
	for i := 0; i < len(b.pts); i++ {
		for j := i + 1; j < len(b.pts); j++ {
			if inf || distSq(b.pts[i], b.pts[j], b.box) <= c2 {
				if !yield(i, j) {
					return
				}
			}
		}
	}
}

// Triples implements Source by direct triple loop.
func (b *Brute) Triples(cutoff float64, yield func(i, j, k int) bool) {
	c2 := cutoff * cutoff
	inf := math.IsInf(cutoff, 1)
	within := func(i, j int) bool {
		return inf || distSq(b.pts[i], b.pts[j], b.box) <= c2
	}
	for i := 0; i < len(b.pts); i++ {
		for j := i + 1; j < len(b.pts); j++ {
			if !within(i, j) {
				continue
			}
			for k := j + 1; k < len(b.pts); k++ {
				if within(i, k) && within(j, k) {
					if !yield(i, j, k) {
						return
					}
				}
			}
		}
	}
}

// Near implements Source by direct scan.
func (b *Brute) Near(p [3]float64, cutoff float64, yield func(i int) bool) {
	c2 := cutoff * cutoff
	inf := math.IsInf(cutoff, 1)
	for i := range b.pts {
		if inf || distSq(p, b.pts[i], b.box) <= c2 {
			if !yield(i) {
				return
			}
		}
	}
}

// CellList is the linked-cell Source: points are binned into a grid of
// cells at least one cutoff wide, so each point's neighbors live in its
// own and the 26 surrounding bins. Binning is built lazily per cutoff
// and cached, so repeated enumerations at the same cutoff (the
// Pairs-then-Triples pattern in fragment.Terms) bin once.
type CellList struct {
	pts [][3]float64
	box *[3]float64

	grid *grid // cached binning for grid.cutoff
}

// New returns a cell-list Source over pts with open boundaries.
func New(pts [][3]float64) *CellList { return &CellList{pts: pts} }

// NewPeriodic returns a cell-list Source over pts in an orthorhombic
// periodic box with the given edge lengths; distances use the
// minimum-image convention. Points may lie outside [0, L) — they are
// wrapped for binning only, never mutated.
func NewPeriodic(pts [][3]float64, box [3]float64) *CellList {
	return &CellList{pts: pts, box: &box}
}

// grid is one binning of the point set at a specific cutoff.
type grid struct {
	cutoff   float64
	nb       [3]int     // bins per axis
	origin   [3]float64 // bounding-box corner (open boundaries)
	width    [3]float64 // bin width per axis (≥ cutoff)
	periodic bool
	bins     [][]int // bin → point indices, in index order
	binOf    []int   // point → bin
	brute    *Brute  // non-nil when binning cannot cover the cutoff
}

// build constructs (or reuses) the binning for a cutoff.
func (l *CellList) build(cutoff float64) *grid {
	if l.grid != nil && l.grid.cutoff == cutoff {
		return l.grid
	}
	g := &grid{cutoff: cutoff, periodic: l.box != nil}
	// A cutoff the binning cannot cover degrades to the brute oracle:
	// +Inf (the "no cutoff" convention), NaN, non-positive, or a
	// periodic box shorter than three bins on some axis (the 27-stencil
	// would double-count wrapped neighbors).
	degenerate := !(cutoff > 0) || math.IsInf(cutoff, 1)
	if !degenerate && g.periodic {
		for k := 0; k < 3; k++ {
			if int(math.Floor(l.box[k]/cutoff)) < 3 {
				degenerate = true
				break
			}
		}
	}
	if degenerate || len(l.pts) == 0 {
		g.brute = NewBrute(l.pts, l.box)
		l.grid = g
		return g
	}
	if g.periodic {
		for k := 0; k < 3; k++ {
			g.nb[k] = int(math.Floor(l.box[k] / cutoff))
			g.width[k] = l.box[k] / float64(g.nb[k])
		}
	} else {
		lo, hi := l.pts[0], l.pts[0]
		for _, p := range l.pts[1:] {
			for k := 0; k < 3; k++ {
				lo[k] = math.Min(lo[k], p[k])
				hi[k] = math.Max(hi[k], p[k])
			}
		}
		g.origin = lo
		for k := 0; k < 3; k++ {
			ext := hi[k] - lo[k]
			g.nb[k] = 1
			if ext > 0 {
				if n := int(math.Floor(ext / cutoff)); n > 1 {
					g.nb[k] = n
				}
			}
			if ext > 0 {
				g.width[k] = ext / float64(g.nb[k])
			} else {
				g.width[k] = cutoff
			}
		}
	}
	g.bins = make([][]int, g.nb[0]*g.nb[1]*g.nb[2])
	g.binOf = make([]int, len(l.pts))
	for i, p := range l.pts {
		b := g.binIndex(g.coords(p))
		g.binOf[i] = b
		g.bins[b] = append(g.bins[b], i)
	}
	l.grid = g
	return g
}

// coords maps a point to its bin coordinates, wrapping (periodic) or
// clamping (open) so out-of-range points land in a valid bin.
func (g *grid) coords(p [3]float64) [3]int {
	var c [3]int
	for k := 0; k < 3; k++ {
		var f float64
		if g.periodic {
			f = math.Floor(p[k] / g.width[k])
			n := float64(g.nb[k])
			f = f - n*math.Floor(f/n) // wrap into [0, nb)
		} else {
			f = math.Floor((p[k] - g.origin[k]) / g.width[k])
		}
		i := int(f)
		if i < 0 {
			i = 0
		}
		if i >= g.nb[k] {
			i = g.nb[k] - 1
		}
		c[k] = i
	}
	return c
}

func (g *grid) binIndex(c [3]int) int {
	return (c[0]*g.nb[1]+c[1])*g.nb[2] + c[2]
}

// stencil calls fn for each bin in the 27-bin neighborhood of c,
// wrapping across periodic boundaries and clamping at open ones. Each
// bin is visited at most once (relevant when an axis has < 3 bins in
// the open-boundary case).
func (g *grid) stencil(c [3]int, fn func(bin int)) {
	var seen [27]int
	n := 0
	for dx := -1; dx <= 1; dx++ {
		for dy := -1; dy <= 1; dy++ {
			for dz := -1; dz <= 1; dz++ {
				cc := [3]int{c[0] + dx, c[1] + dy, c[2] + dz}
				ok := true
				for k := 0; k < 3; k++ {
					if g.periodic {
						cc[k] = (cc[k] + g.nb[k]) % g.nb[k]
					} else if cc[k] < 0 || cc[k] >= g.nb[k] {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				b := g.binIndex(cc)
				dup := false
				for s := 0; s < n; s++ {
					if seen[s] == b {
						dup = true
						break
					}
				}
				if dup {
					continue
				}
				seen[n] = b
				n++
				fn(b)
			}
		}
	}
}

// neighborsOf returns the sorted indices j > i within cutoff of point i,
// appended into buf (reused across calls to avoid per-point allocation).
func (l *CellList) neighborsOf(g *grid, i int, buf []int) []int {
	c2 := g.cutoff * g.cutoff
	p := l.pts[i]
	buf = buf[:0]
	g.stencil(g.coordsOfBin(g.binOf[i]), func(bin int) {
		for _, j := range g.bins[bin] {
			if j > i && distSq(p, l.pts[j], l.box) <= c2 {
				buf = append(buf, j)
			}
		}
	})
	sort.Ints(buf)
	return buf
}

// coordsOfBin inverts binIndex.
func (g *grid) coordsOfBin(b int) [3]int {
	z := b % g.nb[2]
	b /= g.nb[2]
	y := b % g.nb[1]
	x := b / g.nb[1]
	return [3]int{x, y, z}
}

// Pairs implements Source.
func (l *CellList) Pairs(cutoff float64, yield func(i, j int) bool) {
	g := l.build(cutoff)
	if g.brute != nil {
		g.brute.Pairs(cutoff, yield)
		return
	}
	var buf []int
	for i := range l.pts {
		buf = l.neighborsOf(g, i, buf)
		for _, j := range buf {
			if !yield(i, j) {
				return
			}
		}
	}
}

// Triples implements Source: for each i, the sorted forward neighbor
// list is closed over the third pair distance, reproducing the brute
// (i, j, k) enumeration exactly.
func (l *CellList) Triples(cutoff float64, yield func(i, j, k int) bool) {
	g := l.build(cutoff)
	if g.brute != nil {
		g.brute.Triples(cutoff, yield)
		return
	}
	c2 := cutoff * cutoff
	var buf []int
	for i := range l.pts {
		buf = l.neighborsOf(g, i, buf)
		for x := 0; x < len(buf); x++ {
			for y := x + 1; y < len(buf); y++ {
				j, k := buf[x], buf[y]
				if distSq(l.pts[j], l.pts[k], l.box) <= c2 {
					if !yield(i, j, k) {
						return
					}
				}
			}
		}
	}
}

// Near implements Source for an arbitrary query position.
func (l *CellList) Near(p [3]float64, cutoff float64, yield func(i int) bool) {
	g := l.build(cutoff)
	if g.brute != nil {
		g.brute.Near(p, cutoff, yield)
		return
	}
	c2 := cutoff * cutoff
	var buf []int
	g.stencil(g.coords(p), func(bin int) {
		for _, i := range g.bins[bin] {
			if distSq(p, l.pts[i], l.box) <= c2 {
				buf = append(buf, i)
			}
		}
	})
	sort.Ints(buf)
	for _, i := range buf {
		if !yield(i) {
			return
		}
	}
}
