package neighbor

import (
	"math"
	"math/rand"
	"testing"
)

// collect materialises a Source's enumerations for comparison.
func collectPairs(s Source, cutoff float64) [][2]int {
	var out [][2]int
	s.Pairs(cutoff, func(i, j int) bool {
		out = append(out, [2]int{i, j})
		return true
	})
	return out
}

func collectTriples(s Source, cutoff float64) [][3]int {
	var out [][3]int
	s.Triples(cutoff, func(i, j, k int) bool {
		out = append(out, [3]int{i, j, k})
		return true
	})
	return out
}

func collectNear(s Source, p [3]float64, cutoff float64) []int {
	var out []int
	s.Near(p, cutoff, func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}

// checkAgainstOracle asserts the cell list reproduces the brute oracle
// exactly — same members, same order — for pairs, triples, and Near.
func checkAgainstOracle(t *testing.T, pts [][3]float64, box *[3]float64, cutoff float64) {
	t.Helper()
	var cl Source
	if box != nil {
		cl = NewPeriodic(pts, *box)
	} else {
		cl = New(pts)
	}
	oracle := NewBrute(pts, box)

	gp, wp := collectPairs(cl, cutoff), collectPairs(oracle, cutoff)
	if len(gp) != len(wp) {
		t.Fatalf("cutoff %g: cell list found %d pairs, oracle %d", cutoff, len(gp), len(wp))
	}
	for i := range gp {
		if gp[i] != wp[i] {
			t.Fatalf("cutoff %g: pair %d: cell list %v, oracle %v", cutoff, i, gp[i], wp[i])
		}
	}
	gt, wt := collectTriples(cl, cutoff), collectTriples(oracle, cutoff)
	if len(gt) != len(wt) {
		t.Fatalf("cutoff %g: cell list found %d triples, oracle %d", cutoff, len(gt), len(wt))
	}
	for i := range gt {
		if gt[i] != wt[i] {
			t.Fatalf("cutoff %g: triple %d: cell list %v, oracle %v", cutoff, i, gt[i], wt[i])
		}
	}
	for _, q := range [][3]float64{{0, 0, 0}, pts[0], {1e3, -1e3, 0.5}} {
		gn, wn := collectNear(cl, q, cutoff), collectNear(oracle, q, cutoff)
		if len(gn) != len(wn) {
			t.Fatalf("cutoff %g: Near(%v): cell list %d hits, oracle %d", cutoff, q, len(gn), len(wn))
		}
		for i := range gn {
			if gn[i] != wn[i] {
				t.Fatalf("cutoff %g: Near(%v) hit %d: cell list %d, oracle %d", cutoff, q, i, gn[i], wn[i])
			}
		}
	}
}

// TestCellListMatchesOracleOpen fuzzes random open-boundary point sets
// across cutoffs spanning sub-spacing to beyond the cloud diameter.
func TestCellListMatchesOracleOpen(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(60)
		pts := make([][3]float64, n)
		for i := range pts {
			for k := 0; k < 3; k++ {
				pts[i][k] = (rng.Float64() - 0.5) * 30
			}
		}
		for _, cutoff := range []float64{0.5, 2, 5, 12, 40, math.Inf(1)} {
			checkAgainstOracle(t, pts, nil, cutoff)
		}
	}
}

// TestCellListMatchesOraclePeriodic fuzzes periodic boxes, including
// points outside the primary cell and cutoffs straddling the box
// length (where the list must fall back to the min-image brute scan).
func TestCellListMatchesOraclePeriodic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		box := [3]float64{8 + rng.Float64()*10, 8 + rng.Float64()*10, 8 + rng.Float64()*10}
		n := 2 + rng.Intn(60)
		pts := make([][3]float64, n)
		for i := range pts {
			for k := 0; k < 3; k++ {
				// Deliberately outside [0, L): binning must wrap.
				pts[i][k] = (rng.Float64()*3 - 1) * box[k]
			}
		}
		minL := math.Min(box[0], math.Min(box[1], box[2]))
		for _, cutoff := range []float64{0.5, minL / 4, minL / 3.01, minL / 2, minL, 2 * minL, math.Inf(1)} {
			checkAgainstOracle(t, pts, &box, cutoff)
		}
	}
}

// TestCellListBoundaryAtoms places atoms exactly on cell-bin boundaries
// and box corners, where floor() rounding is most fragile.
func TestCellListBoundaryAtoms(t *testing.T) {
	box := [3]float64{12, 12, 12}
	var pts [][3]float64
	for _, v := range []float64{0, 3, 6, 9, 12} { // 12 ≡ 0 under wrap
		pts = append(pts, [3]float64{v, 0, 0}, [3]float64{0, v, 0}, [3]float64{v, v, v})
	}
	pts = append(pts, [3]float64{-3, 12, 24}, [3]float64{11.999999999, 0, 0})
	for _, cutoff := range []float64{3, 4, 6, 11.9} {
		checkAgainstOracle(t, pts, &box, cutoff)
	}
	checkAgainstOracle(t, pts, nil, 3)
}

// TestCellListEarlyStop verifies yield=false stops enumeration.
func TestCellListEarlyStop(t *testing.T) {
	pts := [][3]float64{{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {1, 1, 0}}
	cl := New(pts)
	count := 0
	cl.Pairs(10, func(i, j int) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("Pairs continued after yield returned false: %d calls", count)
	}
	count = 0
	cl.Triples(10, func(i, j, k int) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatalf("Triples continued after yield returned false: %d calls", count)
	}
}

// TestCellListCutoffInclusive pins the d ≤ cutoff (inclusive) contract
// on an exact-distance pair in both implementations.
func TestCellListCutoffInclusive(t *testing.T) {
	pts := [][3]float64{{0, 0, 0}, {5, 0, 0}}
	for _, s := range []Source{New(pts), NewBrute(pts, nil)} {
		if got := collectPairs(s, 5); len(got) != 1 {
			t.Fatalf("distance exactly at cutoff must be included; got %d pairs", len(got))
		}
		if got := collectPairs(s, 4.999999); len(got) != 0 {
			t.Fatalf("distance beyond cutoff must be excluded; got %d pairs", len(got))
		}
	}
}

// TestMinImageDisplacement pins the min-image fold: result in
// (−L/2, L/2], symmetric under a↔b up to sign, and never longer than
// the unwrapped displacement.
func TestMinImageDisplacement(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	box := [3]float64{10, 14, 7}
	for trial := 0; trial < 200; trial++ {
		var a, b [3]float64
		for k := 0; k < 3; k++ {
			a[k] = (rng.Float64()*4 - 2) * box[k]
			b[k] = (rng.Float64()*4 - 2) * box[k]
		}
		dw := math.Sqrt(distSq(a, b, &box))
		du := math.Sqrt(distSq(a, b, nil))
		if dw > du+1e-12 {
			t.Fatalf("min-image dist %g exceeds unwrapped %g", dw, du)
		}
		if rev := math.Sqrt(distSq(b, a, &box)); rev != dw {
			t.Fatalf("min-image dist not symmetric: %g vs %g", dw, rev)
		}
		for k := 0; k < 3; k++ {
			d := minImage(a[k]-b[k], box[k])
			if d <= -box[k]/2-1e-9 || d > box[k]/2+1e-9 {
				t.Fatalf("minImage(%g, %g) = %g outside (−L/2, L/2]", a[k]-b[k], box[k], d)
			}
		}
	}
}

func BenchmarkPairsCellList(b *testing.B) {
	pts := benchCloud(4000)
	box := [3]float64{80, 80, 80}
	cl := NewPeriodic(pts, box)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		count := 0
		cl.grid = nil // force rebinning: measure build + enumerate
		cl.Pairs(6, func(i, j int) bool { count++; return true })
	}
}

func BenchmarkPairsBrute(b *testing.B) {
	pts := benchCloud(4000)
	box := [3]float64{80, 80, 80}
	br := NewBrute(pts, &box)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		count := 0
		br.Pairs(6, func(i, j int) bool { count++; return true })
	}
}

func benchCloud(n int) [][3]float64 {
	rng := rand.New(rand.NewSource(1))
	pts := make([][3]float64, n)
	for i := range pts {
		for k := 0; k < 3; k++ {
			pts[i][k] = rng.Float64() * 80
		}
	}
	return pts
}
