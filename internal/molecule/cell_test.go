package molecule

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"github.com/fragmd/fragmd/internal/chem"
)

// TestMinImageDistProperties pins the minimum-image distance contract:
// symmetric, never longer than the unwrapped distance, and equal to it
// when both atoms sit in the same image well inside the box.
func TestMinImageDistProperties(t *testing.T) {
	cell, err := NewCell(20, 24, 16)
	if err != nil {
		t.Fatal(err)
	}
	g := New()
	g.Cell = cell
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 40; i++ {
		g.AddAtom(1, (rng.Float64()*6-3)*20, (rng.Float64()*6-3)*24, (rng.Float64()*6-3)*16)
	}
	open := g.Clone()
	open.Cell = nil
	for i := 0; i < g.N(); i++ {
		for j := i + 1; j < g.N(); j++ {
			dw := g.Dist(i, j)
			if rev := g.Dist(j, i); rev != dw {
				t.Fatalf("Dist(%d,%d)=%g but Dist(%d,%d)=%g", i, j, dw, j, i, rev)
			}
			if du := open.Dist(i, j); dw > du+1e-12 {
				t.Fatalf("min-image Dist(%d,%d)=%g exceeds unwrapped %g", i, j, dw, du)
			}
			half := math.Sqrt(10*10 + 12*12 + 8*8)
			if dw > half+1e-9 {
				t.Fatalf("min-image Dist(%d,%d)=%g exceeds half-diagonal %g", i, j, dw, half)
			}
		}
	}
}

// TestDisplacementMatchesDist checks |Displacement| ≡ Dist and the
// antisymmetry Displacement(i,j) = −Displacement(j,i).
func TestDisplacementMatchesDist(t *testing.T) {
	g := WaterBox(2, 2, 2, 1)
	for i := 0; i < g.N(); i += 3 {
		for j := i + 3; j < g.N(); j += 5 {
			d := g.Displacement(i, j)
			r := math.Sqrt(d[0]*d[0] + d[1]*d[1] + d[2]*d[2])
			if math.Abs(r-g.Dist(i, j)) > 1e-12 {
				t.Fatalf("|Displacement(%d,%d)| = %g, Dist = %g", i, j, r, g.Dist(i, j))
			}
			rd := g.Displacement(j, i)
			for k := 0; k < 3; k++ {
				if d[k] != -rd[k] {
					t.Fatalf("Displacement not antisymmetric at (%d,%d)[%d]", i, j, k)
				}
			}
		}
	}
}

// TestCellWrap folds positions into [0, L).
func TestCellWrap(t *testing.T) {
	cell, _ := NewCell(10, 10, 10)
	for _, p := range [][3]float64{{-1, 11, 25}, {0, 0, 0}, {9.999, -30, 10}} {
		w := cell.Wrap(p)
		for k := 0; k < 3; k++ {
			if w[k] < 0 || w[k] >= 10 {
				t.Fatalf("Wrap(%v) = %v outside [0, 10)", p, w)
			}
		}
	}
}

// TestNewCellValidation rejects non-positive or infinite edges.
func TestNewCellValidation(t *testing.T) {
	for _, l := range [][3]float64{{0, 1, 1}, {1, -2, 1}, {1, 1, math.Inf(1)}, {math.NaN(), 1, 1}} {
		if _, err := NewCell(l[0], l[1], l[2]); err == nil {
			t.Fatalf("NewCell(%v) accepted an invalid cell", l)
		}
	}
	if _, err := NewCell(1, 2, 3); err != nil {
		t.Fatalf("NewCell(1,2,3): %v", err)
	}
}

// TestXYZCellRoundTrip writes a periodic geometry and parses it back,
// checking the cell and comment survive exactly.
func TestXYZCellRoundTrip(t *testing.T) {
	g := WaterBox(2, 3, 2, 7)
	var sb strings.Builder
	if err := g.WriteXYZ(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := ParseXYZ(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Cell == nil {
		t.Fatal("round-tripped geometry lost its cell")
	}
	for k := 0; k < 3; k++ {
		if math.Abs(back.Cell.L[k]-g.Cell.L[k]) > 1e-9 {
			t.Fatalf("cell edge %d: wrote %g, parsed %g", k, g.Cell.L[k], back.Cell.L[k])
		}
	}
	if back.Comment != g.Comment {
		t.Fatalf("comment: wrote %q, parsed %q", g.Comment, back.Comment)
	}
	if back.N() != g.N() {
		t.Fatalf("atom count: wrote %d, parsed %d", g.N(), back.N())
	}
	// Open-boundary geometries must stay cell-free.
	open := Water()
	sb.Reset()
	if err := open.WriteXYZ(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "cell=") {
		t.Fatal("open geometry emitted a cell token")
	}
}

// TestParseXYZBadCell rejects malformed cell tokens.
func TestParseXYZBadCell(t *testing.T) {
	for _, comment := range []string{"cell=1,2", "cell=1,2,x", "cell=0,2,3", "cell=1,2,3,4"} {
		in := "1\n" + comment + "\nO 0 0 0\n"
		if _, err := ParseXYZ(strings.NewReader(in)); err == nil {
			t.Fatalf("ParseXYZ accepted bad comment %q", comment)
		}
	}
}

// TestWaterBox pins size, density, determinism, and periodic bond
// detection (no spurious inter-molecular bonds across images).
func TestWaterBox(t *testing.T) {
	g := WaterBox(3, 3, 3, 1)
	if g.N() != 27*3 {
		t.Fatalf("WaterBox(3,3,3): %d atoms, want 81", g.N())
	}
	if g.Cell == nil {
		t.Fatal("WaterBox has no cell")
	}
	want := 3 * WaterBoxSpacing * chem.BohrPerAngstrom
	for k := 0; k < 3; k++ {
		if math.Abs(g.Cell.L[k]-want) > 1e-9 {
			t.Fatalf("cell edge %d = %g, want %g", k, g.Cell.L[k], want)
		}
	}
	if h := WaterBox(3, 3, 3, 1); h.Atoms[40] != g.Atoms[40] {
		t.Fatal("WaterBox is not deterministic for a fixed seed")
	}
	if h := WaterBox(3, 3, 3, 2); h.Atoms[40] == g.Atoms[40] {
		t.Fatal("WaterBox seed has no effect")
	}
	// Every bond must be intra-molecular (O–H within a 3-atom block).
	for _, b := range g.Bonds(1.25) {
		if b[0]/3 != b[1]/3 {
			t.Fatalf("WaterBox has inter-molecular bond %v", b)
		}
	}
}

// TestUreaSupercell pins size and per-molecule bond closure.
func TestUreaSupercell(t *testing.T) {
	g := UreaSupercell(2, 2, 2)
	if g.N() != 2*2*2*2*8 {
		t.Fatalf("UreaSupercell(2,2,2): %d atoms, want 128", g.N())
	}
	if g.Cell == nil {
		t.Fatal("UreaSupercell has no cell")
	}
	for _, b := range g.Bonds(1.25) {
		if b[0]/8 != b[1]/8 {
			t.Fatalf("UreaSupercell has inter-molecular bond %v", b)
		}
	}
}

// TestSolvatedSolute checks the shell geometry and monomer lists.
func TestSolvatedSolute(t *testing.T) {
	g, monomers := SolvatedSolute(Urea(), 6)
	if g.Cell != nil {
		t.Fatal("SolvatedSolute droplet must be open-boundary")
	}
	if len(monomers) < 2 {
		t.Fatalf("SolvatedSolute placed no waters: %d monomers", len(monomers))
	}
	if len(monomers[0]) != 8 {
		t.Fatalf("first monomer is not the urea core: %d atoms", len(monomers[0]))
	}
	seen := make(map[int]bool)
	total := 0
	for _, m := range monomers {
		for _, a := range m {
			if seen[a] {
				t.Fatalf("atom %d in two monomers", a)
			}
			seen[a] = true
		}
		total += len(m)
	}
	if total != g.N() {
		t.Fatalf("monomers cover %d of %d atoms", total, g.N())
	}
	// No water oxygen may clash with the core.
	for _, m := range monomers[1:] {
		for _, ci := range monomers[0] {
			if d := g.Dist(ci, m[0]); d < 2.4*chem.BohrPerAngstrom {
				t.Fatalf("water %v only %g Bohr from core atom %d", m, d, ci)
			}
		}
	}
}

// TestBondsMatchesBruteScan cross-checks the cell-list Bonds against
// the direct all-pairs scan, open and periodic.
func TestBondsMatchesBruteScan(t *testing.T) {
	brute := func(g *Geometry, scale float64) [][2]int {
		var bonds [][2]int
		for i := 0; i < len(g.Atoms); i++ {
			ri := chem.CovalentRadius(g.Atoms[i].Z)
			for j := i + 1; j < len(g.Atoms); j++ {
				rj := chem.CovalentRadius(g.Atoms[j].Z)
				if g.Dist(i, j) < scale*(ri+rj) {
					bonds = append(bonds, [2]int{i, j})
				}
			}
		}
		return bonds
	}
	for _, g := range []*Geometry{WaterCluster(20), WaterBox(3, 2, 2, 3), UreaSupercell(2, 1, 1), Paracetamol()} {
		got, want := g.Bonds(1.25), brute(g, 1.25)
		if len(got) != len(want) {
			t.Fatalf("%s: cell-list Bonds found %d, brute %d", g.Comment, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: bond %d: cell list %v, brute %v", g.Comment, i, got[i], want[i])
			}
		}
	}
}
