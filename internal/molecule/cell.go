package molecule

import (
	"fmt"
	"math"

	"github.com/fragmd/fragmd/internal/chem"
)

// Cell is an orthorhombic periodic box. A Geometry with a non-nil Cell
// is periodic: distances and displacements use the minimum-image
// convention, and neighbor enumeration wraps across the boundaries.
//
// Conventions (DESIGN.md §13):
//
//   - Atom positions are stored UNWRAPPED. Integrators and Translate
//     move raw coordinates; nothing ever folds an atom back into
//     [0, L). This keeps trajectories continuous (no position jumps at
//     boundary crossings) and keeps the open-boundary code paths
//     bitwise-unchanged when Cell is nil.
//   - Centroid and CentroidOf average the raw (unwrapped) coordinates.
//     For molecule-sized subsets this is the physically meaningful
//     centre as long as each molecule's atoms stay image-coherent,
//     which unwrapped storage guarantees.
//   - Dist, Displacement, bonded-pair detection, nuclear repulsion and
//     its gradient all apply the minimum image, so every energy and
//     force is a smooth function of the raw coordinates.
type Cell struct {
	// L holds the box edge lengths in Bohr; all three must be positive.
	L [3]float64
}

// NewCell returns an orthorhombic cell with edge lengths in Bohr.
func NewCell(lx, ly, lz float64) (*Cell, error) {
	c := &Cell{L: [3]float64{lx, ly, lz}}
	for k := 0; k < 3; k++ {
		if !(c.L[k] > 0) || math.IsInf(c.L[k], 0) {
			return nil, fmt.Errorf("molecule: cell edge %d must be positive and finite, got %g", k, c.L[k])
		}
	}
	return c, nil
}

// NewCellAngstrom returns an orthorhombic cell with edge lengths in Å.
func NewCellAngstrom(lx, ly, lz float64) (*Cell, error) {
	const f = chem.BohrPerAngstrom
	return NewCell(lx*f, ly*f, lz*f)
}

// Clone returns a copy of the cell (nil-safe).
func (c *Cell) Clone() *Cell {
	if c == nil {
		return nil
	}
	d := *c
	return &d
}

// Volume returns the box volume in Bohr³.
func (c *Cell) Volume() float64 { return c.L[0] * c.L[1] * c.L[2] }

// MinImage folds a displacement vector into the primary image, each
// component into (−L/2, L/2]. Nil-safe: a nil cell returns d unchanged.
func (c *Cell) MinImage(d [3]float64) [3]float64 {
	if c == nil {
		return d
	}
	for k := 0; k < 3; k++ {
		d[k] -= c.L[k] * math.Round(d[k]/c.L[k])
	}
	return d
}

// Wrap folds a position into the primary cell [0, L). Atom storage
// never calls this (positions stay unwrapped); it exists for analysis
// and visualisation.
func (c *Cell) Wrap(p [3]float64) [3]float64 {
	if c == nil {
		return p
	}
	for k := 0; k < 3; k++ {
		p[k] -= c.L[k] * math.Floor(p[k]/c.L[k])
	}
	return p
}

// Displacement returns the minimum-image displacement from atom j to
// atom i (Pos[i] − Pos[j], folded when the geometry is periodic).
func (g *Geometry) Displacement(i, j int) [3]float64 {
	d := [3]float64{
		g.Atoms[i].Pos[0] - g.Atoms[j].Pos[0],
		g.Atoms[i].Pos[1] - g.Atoms[j].Pos[1],
		g.Atoms[i].Pos[2] - g.Atoms[j].Pos[2],
	}
	return g.Cell.MinImage(d)
}

// DistBetween returns the distance between two points under the
// geometry's boundary conditions (minimum image when periodic).
func (g *Geometry) DistBetween(a, b [3]float64) float64 {
	d := g.Cell.MinImage([3]float64{a[0] - b[0], a[1] - b[1], a[2] - b[2]})
	return math.Sqrt(d[0]*d[0] + d[1]*d[1] + d[2]*d[2])
}
