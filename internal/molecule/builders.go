package molecule

import (
	"math"
	"math/rand"
)

// Standard template geometries, in Ångström, for the paper's benchmark
// molecules. They are chemically sensible idealised structures (standard
// bond lengths and angles), not crystallographic coordinates: the paper's
// workloads depend on fragment sizes, electron counts and packing
// distances, all of which these templates match (see DESIGN.md §2).

// Water returns a single water molecule (gas-phase geometry: r(OH) =
// 0.9572 Å, ∠HOH = 104.52°), oxygen at the origin.
func Water() *Geometry {
	g := New()
	g.Comment = "water"
	const r = 0.9572
	half := 104.52 / 2 * math.Pi / 180
	g.AddAtomAngstrom(8, 0, 0, 0)
	g.AddAtomAngstrom(1, r*math.Sin(half), r*math.Cos(half), 0)
	g.AddAtomAngstrom(1, -r*math.Sin(half), r*math.Cos(half), 0)
	return g
}

// WaterDimer returns a hydrogen-bonded water dimer with the given O–O
// separation in Ångström (2.98 Å is near the equilibrium).
func WaterDimer(roo float64) *Geometry {
	g := Water()
	g.Comment = "water dimer"
	w2 := Water()
	w2.RotateZ(math.Pi)
	w2.Translate(roo/0.529177210903, 0, 0)
	g.Append(w2)
	return g
}

// WaterCluster returns n water molecules on a cubic grid with ~3.1 Å
// nearest-neighbour O–O spacing, orientations alternating to avoid
// clashes. Used for MBE accuracy and scaling tests.
func WaterCluster(n int) *Geometry {
	g := New()
	g.Comment = "water cluster"
	side := int(math.Ceil(math.Cbrt(float64(n))))
	const spacing = 3.1 // Å
	count := 0
	for i := 0; i < side && count < n; i++ {
		for j := 0; j < side && count < n; j++ {
			for k := 0; k < side && count < n; k++ {
				w := Water()
				w.RotateZ(float64((i+2*j+3*k)%4) * math.Pi / 2)
				w.Translate(float64(i)*spacing/0.529177210903,
					float64(j)*spacing/0.529177210903,
					float64(k)*spacing/0.529177210903)
				g.Append(w)
				count++
			}
		}
	}
	return g
}

// WaterBoxSpacing is the WaterBox lattice constant in Å, chosen so the
// box reproduces liquid-water density (≈29.9 Å³ per molecule at
// 0.997 g/cm³).
const WaterBoxSpacing = 3.105

// WaterBox returns nx×ny×nz water molecules (TIP3P gas-phase monomer
// geometry) on a cubic lattice at liquid density inside a periodic
// orthorhombic cell of (nx, ny, nz) × WaterBoxSpacing Å. Each molecule
// gets a deterministic jittered position (±0.15 Å) and random
// orientation from the seed, so two boxes with the same arguments are
// bitwise identical. Atoms are emitted molecule-by-molecule (O, H, H),
// ready for ByMolecule fragmentation with 3 atoms per monomer.
func WaterBox(nx, ny, nz int, seed int64) *Geometry {
	g := New()
	g.Comment = "periodic water box"
	rng := rand.New(rand.NewSource(seed))
	if nx < 1 || ny < 1 || nz < 1 {
		panic("molecule: WaterBox dimensions must be at least 1")
	}
	const s = WaterBoxSpacing
	cell, err := NewCellAngstrom(float64(nx)*s, float64(ny)*s, float64(nz)*s)
	if err != nil {
		panic(err) // unreachable: dimensions validated above
	}
	g.Cell = cell
	const f = 1 / 0.529177210903 // Bohr per Å
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			for k := 0; k < nz; k++ {
				w := Water()
				w.RotateZ(rng.Float64() * 2 * math.Pi)
				jx := (rng.Float64() - 0.5) * 0.30
				jy := (rng.Float64() - 0.5) * 0.30
				jz := (rng.Float64() - 0.5) * 0.30
				w.Translate(((float64(i)+0.5)*s+jx)*f,
					((float64(j)+0.5)*s+jy)*f,
					((float64(k)+0.5)*s+jz)*f)
				g.Append(w)
			}
		}
	}
	return g
}

// SolvatedSolute returns the core molecule centred at the origin inside
// an open-boundary water droplet of the given radius (Å): lattice
// waters within the shell radius are kept unless they clash with the
// core (any atom closer than 2.4 Å). The second return value lists the
// monomers for fragment.New — the whole core first, then each water —
// since the mixed atom counts rule out ByMolecule's regular blocks.
func SolvatedSolute(core *Geometry, shellRadius float64) (*Geometry, [][]int) {
	g := New()
	g.Comment = "solvated " + core.Comment
	c := core.Clone()
	c.Cell = nil
	cen := c.Centroid()
	c.Translate(-cen[0], -cen[1], -cen[2])
	g.Append(c)
	coreMono := make([]int, c.N())
	for i := range coreMono {
		coreMono[i] = i
	}
	monomers := [][]int{coreMono}

	const s = WaterBoxSpacing
	const clash = 2.4 // Å, min water-O to core-atom distance
	rb := shellRadius / 0.529177210903
	cb := clash / 0.529177210903
	sb := s / 0.529177210903
	nmax := int(shellRadius/s) + 1
	for i := -nmax; i <= nmax; i++ {
		for j := -nmax; j <= nmax; j++ {
			for k := -nmax; k <= nmax; k++ {
				x := (float64(i) + 0.5) * sb
				y := (float64(j) + 0.5) * sb
				z := (float64(k) + 0.5) * sb
				if math.Sqrt(x*x+y*y+z*z) > rb {
					continue
				}
				tooClose := false
				for _, a := range c.Atoms {
					if Dist(a.Pos, [3]float64{x, y, z}) < cb {
						tooClose = true
						break
					}
				}
				if tooClose {
					continue
				}
				w := Water()
				w.RotateZ(float64((i+2*j+3*k)%4) * math.Pi / 2)
				w.Translate(x, y, z)
				first := g.Append(w)
				monomers = append(monomers, []int{first, first + 1, first + 2})
			}
		}
	}
	return g, monomers
}

// UreaSupercell returns an na×nb×nc supercell of the idealised
// tetragonal urea lattice (a = b = 5.565 Å, c = 4.684 Å, two molecules
// per cell with alternating orientation) under periodic boundary
// conditions — the infinite-crystal counterpart of UreaCrystalSphere.
// Atoms are emitted molecule-by-molecule (8 atoms each) for ByMolecule.
func UreaSupercell(na, nb, nc int) *Geometry {
	const a, c = 5.565, 4.684
	g := New()
	g.Comment = "urea supercell"
	cell, err := NewCellAngstrom(float64(na)*a, float64(nb)*a, float64(nc)*c)
	if err != nil {
		panic("molecule: UreaSupercell dimensions must be at least 1")
	}
	g.Cell = cell
	template := Urea()
	const f = 1 / 0.529177210903
	for i := 0; i < na; i++ {
		for j := 0; j < nb; j++ {
			for k := 0; k < nc; k++ {
				for half := 0; half < 2; half++ {
					x := float64(i) * a
					y := float64(j) * a
					z := float64(k) * c
					if half == 1 {
						x += a / 2
						y += a / 2
						z += c / 2
					}
					m := template.Clone()
					if half == 1 {
						m.RotateZ(math.Pi / 2)
					}
					// Offset so molecules sit inside the cell interior.
					m.Translate((x+a/4)*f, (y+a/4)*f, (z+c/4)*f)
					g.Append(m)
				}
			}
		}
	}
	return g
}

// Urea returns one urea molecule, CH₄N₂O (8 atoms, 32 electrons),
// planar idealised geometry, carbon at the origin.
func Urea() *Geometry {
	g := New()
	g.Comment = "urea"
	g.AddAtomAngstrom(6, 0, 0, 0)          // C
	g.AddAtomAngstrom(8, 0, 1.225, 0)      // O (C=O 1.225)
	g.AddAtomAngstrom(7, 1.156, -0.684, 0) // N1 (C–N 1.344)
	g.AddAtomAngstrom(7, -1.156, -0.684, 0)
	g.AddAtomAngstrom(1, 2.052, -0.245, 0) // H on N1
	g.AddAtomAngstrom(1, 1.170, -1.685, 0)
	g.AddAtomAngstrom(1, -2.052, -0.245, 0) // H on N2
	g.AddAtomAngstrom(1, -1.170, -1.685, 0)
	return g
}

// UreaCrystalSphere returns a spherical section of an idealised
// tetragonal urea lattice (a = 5.565 Å, c = 4.684 Å, two molecules per
// cell with alternating orientation), keeping molecules whose centroid
// lies within radius Å of the origin. This mirrors the paper's
// "increasing-radii spherical sections of crystal lattices" (§VI-B).
func UreaCrystalSphere(radius float64) *Geometry {
	return crystalSphere(Urea(), 5.565, 5.565, 4.684, radius)
}

// UreaCluster returns a spherical urea lattice section with at least n
// molecules (smallest radius achieving the count).
func UreaCluster(n int) *Geometry {
	r := 4.0
	for {
		g := UreaCrystalSphere(r)
		if g.N() >= n*8 {
			return g
		}
		r *= 1.2
	}
}

// Paracetamol returns one paracetamol molecule, C₈H₉NO₂ (20 atoms,
// 80 electrons): benzene ring, para hydroxyl, acetamide arm.
func Paracetamol() *Geometry {
	g := New()
	g.Comment = "paracetamol"
	const rc = 1.397 // aromatic C–C
	// Ring carbons in the xy-plane.
	var ring [6][2]float64
	for i := 0; i < 6; i++ {
		th := float64(i) * math.Pi / 3
		ring[i] = [2]float64{rc * math.Cos(th), rc * math.Sin(th)}
		g.AddAtomAngstrom(6, ring[i][0], ring[i][1], 0)
	}
	// Ring hydrogens on positions 1,2,4,5 (0 carries N, 3 carries OH).
	for _, i := range []int{1, 2, 4, 5} {
		th := float64(i) * math.Pi / 3
		g.AddAtomAngstrom(1, (rc+1.08)*math.Cos(th), (rc+1.08)*math.Sin(th), 0)
	}
	// Para hydroxyl on ring position 3.
	ox := (rc + 1.36) * math.Cos(math.Pi)
	g.AddAtomAngstrom(8, ox, 0, 0)
	g.AddAtomAngstrom(1, ox-0.30, 0.90, 0)
	// Acetamide arm on ring position 0: N–H, C=O, CH3.
	nx := rc + 1.40
	g.AddAtomAngstrom(7, nx, 0, 0)
	g.AddAtomAngstrom(1, nx+0.06, -1.00, 0)
	ccx, ccy := nx+1.20, 0.75
	g.AddAtomAngstrom(6, ccx, ccy, 0) // carbonyl C
	g.AddAtomAngstrom(8, ccx-0.20, 1.95, 0)
	cmx, cmy := ccx+1.45, 0.45
	g.AddAtomAngstrom(6, cmx, cmy, 0) // methyl C
	g.AddAtomAngstrom(1, cmx+0.55, 1.25, 0.60)
	g.AddAtomAngstrom(1, cmx+0.55, -0.40, -0.35)
	g.AddAtomAngstrom(1, cmx-0.35, 0.35, -0.95)
	return g
}

// ParacetamolSphere returns a spherical section of an idealised
// paracetamol lattice (7.1 Å cubic spacing). The paper's strong-scaling
// workload is an 80-molecule, 36 Å-diameter dense sphere (§VII-B).
func ParacetamolSphere(radius float64) *Geometry {
	return crystalSphere(Paracetamol(), 7.1, 7.1, 7.1, radius)
}

// ParacetamolCluster returns a spherical paracetamol lattice section
// with at least n molecules.
func ParacetamolCluster(n int) *Geometry {
	r := 6.0
	for {
		g := ParacetamolSphere(r)
		if g.N() >= n*20 {
			return g
		}
		r *= 1.2
	}
}

// crystalSphere tiles template on a lattice with two alternately rotated
// molecules per cell and cuts a sphere of the given radius (Å).
func crystalSphere(template *Geometry, a, b, c, radius float64) *Geometry {
	g := New()
	g.Comment = template.Comment + " crystal sphere"
	rb := radius / 0.529177210903
	ab := a / 0.529177210903
	bb := b / 0.529177210903
	cb := c / 0.529177210903
	nmax := int(radius/math.Min(a, c)) + 2
	for i := -nmax; i <= nmax; i++ {
		for j := -nmax; j <= nmax; j++ {
			for k := -nmax; k <= nmax; k++ {
				for half := 0; half < 2; half++ {
					x := float64(i) * ab
					y := float64(j) * bb
					z := float64(k) * cb
					if half == 1 {
						x += ab / 2
						y += bb / 2
						z += cb / 2
					}
					if math.Sqrt(x*x+y*y+z*z) > rb {
						continue
					}
					m := template.Clone()
					if half == 1 {
						m.RotateZ(math.Pi / 2)
					}
					m.Translate(x, y, z)
					g.Append(m)
				}
			}
		}
	}
	return g
}

// glycine backbone template in Ångström; the repeat vector is
// (3.63, 0, 0) and the amide C′(i)–N(i+1) distance is 1.33 Å.
var glyTemplate = []struct {
	z        int
	x, y, zz float64
}{
	{7, 0.000, 0.000, 0.000},   // N
	{1, -0.100, -0.995, 0.000}, // H on N
	{6, 1.458, 0.000, 0.000},   // Cα
	{1, 1.778, -0.450, 0.890},  // Hα1
	{1, 1.778, -0.450, -0.890}, // Hα2
	{6, 2.668, 0.920, 0.000},   // C′
	{8, 2.315, 2.098, 0.000},   // O
}

// GlyResidueAtoms is the number of atoms in one glycine residue
// (N, H, Cα, 2Hα, C′, O).
const GlyResidueAtoms = 7

// Polyglycine returns an extended-conformation polyglycine chain Gly_n
// with an extra N-terminal hydrogen and a C-terminal hydroxyl
// (7n + 3 atoms). These are the Table III latency benchmark systems.
// The second return value gives, for each residue, the indices of its
// atoms (terminal caps are attached to the first and last residues),
// which is the paper's "monomers composed of individual amino acids"
// fragmentation.
func Polyglycine(n int) (*Geometry, [][]int) {
	g := New()
	g.Comment = "polyglycine"
	residues := make([][]int, n)
	const repeat = 3.63
	for r := 0; r < n; r++ {
		x0 := float64(r) * repeat
		for _, t := range glyTemplate {
			idx := g.AddAtomAngstrom(t.z, t.x+x0, t.y, t.zz)
			residues[r] = append(residues[r], idx)
		}
	}
	// N-terminal second hydrogen.
	idx := g.AddAtomAngstrom(1, -0.820, 0.570, 0)
	residues[0] = append(residues[0], idx)
	// C-terminal hydroxyl on the last C′.
	lastX := float64(n-1) * repeat
	o2 := g.AddAtomAngstrom(8, lastX+3.678, 0.060, 0)
	h2 := g.AddAtomAngstrom(1, lastX+4.280, 0.800, 0)
	residues[n-1] = append(residues[n-1], o2, h2)
	return g, residues
}

// BetaFibril builds a synthetic β-strand fibril: strands parallel
// polyglycine chains of residuesPerStrand residues each, stacked with
// 4.8 Å inter-strand spacing (the β-sheet hydrogen-bond register).
// It stands in for the PDB structures the paper simulates — 6PQ5
// (36 monomers, 7–14 atoms each) ≈ BetaFibril(6, 6) and the 4-strand
// 2BEG variant (1,496 atoms) ≈ BetaFibril(4, 53). The residue lists are
// the AIMD monomers.
func BetaFibril(strands, residuesPerStrand int) (*Geometry, [][]int) {
	g := New()
	g.Comment = "synthetic beta fibril"
	var monomers [][]int
	for s := 0; s < strands; s++ {
		chain, res := Polyglycine(residuesPerStrand)
		// Alternate strand direction (antiparallel sheet) and offset.
		if s%2 == 1 {
			chain.RotateZ(math.Pi)
			chain.Translate(float64(residuesPerStrand)*3.63/0.529177210903, 0, 0)
		}
		chain.Translate(0, 0, float64(s)*4.8/0.529177210903)
		off := g.Append(chain)
		for _, r := range res {
			m := make([]int, len(r))
			for i, a := range r {
				m[i] = a + off
			}
			monomers = append(monomers, m)
		}
	}
	return g, monomers
}
