// Package molecule holds molecular geometries and procedural builders for
// the paper's benchmark systems: water clusters, urea and paracetamol
// crystal spheres, polyglycine chains (Table III), and synthetic β-strand
// protein fibrils standing in for the 6PQ5 prion and 2BEG amyloid
// structures (see DESIGN.md §2 for the substitution rationale).
//
// Positions are stored in Bohr; XYZ files use Ångström.
package molecule

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"github.com/fragmd/fragmd/internal/chem"
	"github.com/fragmd/fragmd/internal/neighbor"
)

// Atom is a nucleus: atomic number and position in Bohr.
type Atom struct {
	Z   int
	Pos [3]float64
}

// Geometry is an ordered collection of atoms. A non-nil Cell makes the
// geometry periodic in an orthorhombic box (see Cell for the
// minimum-image and unwrapped-storage conventions).
type Geometry struct {
	Atoms   []Atom
	Comment string
	Cell    *Cell
}

// New returns an empty geometry.
func New() *Geometry { return &Geometry{} }

// AddAtom appends an atom with position in Bohr and returns its index.
func (g *Geometry) AddAtom(z int, x, y, zz float64) int {
	g.Atoms = append(g.Atoms, Atom{Z: z, Pos: [3]float64{x, y, zz}})
	return len(g.Atoms) - 1
}

// AddAtomAngstrom appends an atom with position in Ångström.
func (g *Geometry) AddAtomAngstrom(z int, x, y, zz float64) int {
	const f = chem.BohrPerAngstrom
	return g.AddAtom(z, x*f, y*f, zz*f)
}

// N returns the number of atoms.
func (g *Geometry) N() int { return len(g.Atoms) }

// NumElectrons returns the electron count for a neutral system.
func (g *Geometry) NumElectrons() int {
	n := 0
	for _, a := range g.Atoms {
		n += a.Z
	}
	return n
}

// Clone returns a deep copy of the geometry.
func (g *Geometry) Clone() *Geometry {
	c := &Geometry{Comment: g.Comment, Atoms: make([]Atom, len(g.Atoms)), Cell: g.Cell.Clone()}
	copy(c.Atoms, g.Atoms)
	return c
}

// Translate shifts every atom by (dx, dy, dz) Bohr.
func (g *Geometry) Translate(dx, dy, dz float64) {
	for i := range g.Atoms {
		g.Atoms[i].Pos[0] += dx
		g.Atoms[i].Pos[1] += dy
		g.Atoms[i].Pos[2] += dz
	}
}

// RotateZ rotates every atom by angle (radians) about the z axis.
func (g *Geometry) RotateZ(angle float64) {
	c, s := math.Cos(angle), math.Sin(angle)
	for i := range g.Atoms {
		x, y := g.Atoms[i].Pos[0], g.Atoms[i].Pos[1]
		g.Atoms[i].Pos[0] = c*x - s*y
		g.Atoms[i].Pos[1] = s*x + c*y
	}
}

// Append merges another geometry's atoms into g and returns the index of
// the first appended atom.
func (g *Geometry) Append(other *Geometry) int {
	first := len(g.Atoms)
	g.Atoms = append(g.Atoms, other.Atoms...)
	return first
}

// Centroid returns the unweighted centre of the atom positions.
func (g *Geometry) Centroid() [3]float64 {
	var c [3]float64
	if len(g.Atoms) == 0 {
		return c
	}
	for _, a := range g.Atoms {
		for k := 0; k < 3; k++ {
			c[k] += a.Pos[k]
		}
	}
	inv := 1 / float64(len(g.Atoms))
	for k := 0; k < 3; k++ {
		c[k] *= inv
	}
	return c
}

// CentroidOf returns the centroid of a subset of atoms.
func (g *Geometry) CentroidOf(idx []int) [3]float64 {
	var c [3]float64
	if len(idx) == 0 {
		return c
	}
	for _, i := range idx {
		for k := 0; k < 3; k++ {
			c[k] += g.Atoms[i].Pos[k]
		}
	}
	inv := 1 / float64(len(idx))
	for k := 0; k < 3; k++ {
		c[k] *= inv
	}
	return c
}

// Dist returns the distance in Bohr between atoms i and j — the
// minimum-image distance when the geometry is periodic.
func (g *Geometry) Dist(i, j int) float64 {
	if g.Cell == nil {
		return Dist(g.Atoms[i].Pos, g.Atoms[j].Pos)
	}
	d := g.Displacement(i, j)
	return math.Sqrt(d[0]*d[0] + d[1]*d[1] + d[2]*d[2])
}

// Dist returns the Euclidean distance between two points.
func Dist(a, b [3]float64) float64 {
	dx := a[0] - b[0]
	dy := a[1] - b[1]
	dz := a[2] - b[2]
	return math.Sqrt(dx*dx + dy*dy + dz*dz)
}

// NuclearRepulsion returns the nucleus-nucleus Coulomb energy in Hartree
// (nearest images only when periodic).
func (g *Geometry) NuclearRepulsion() float64 {
	var e float64
	for i := 0; i < len(g.Atoms); i++ {
		for j := i + 1; j < len(g.Atoms); j++ {
			e += float64(g.Atoms[i].Z*g.Atoms[j].Z) / g.Dist(i, j)
		}
	}
	return e
}

// NuclearRepulsionGradient returns ∂E_nuc/∂R as a flat [3N] slice,
// consistent with NuclearRepulsion (minimum-image displacements when
// periodic).
func (g *Geometry) NuclearRepulsionGradient() []float64 {
	grad := make([]float64, 3*len(g.Atoms))
	for i := 0; i < len(g.Atoms); i++ {
		for j := i + 1; j < len(g.Atoms); j++ {
			dd := g.Displacement(i, j)
			r := math.Sqrt(dd[0]*dd[0] + dd[1]*dd[1] + dd[2]*dd[2])
			f := -float64(g.Atoms[i].Z*g.Atoms[j].Z) / (r * r * r)
			for k := 0; k < 3; k++ {
				grad[3*i+k] += f * dd[k]
				grad[3*j+k] -= f * dd[k]
			}
		}
	}
	return grad
}

// NeighborSource returns an O(N) cell-list neighbor enumerator over the
// atom positions, minimum-image aware when the geometry is periodic.
func (g *Geometry) NeighborSource() neighbor.Source {
	pts := make([][3]float64, len(g.Atoms))
	for i, a := range g.Atoms {
		pts[i] = a.Pos
	}
	if g.Cell != nil {
		return neighbor.NewPeriodic(pts, g.Cell.L)
	}
	return neighbor.New(pts)
}

// Bonds returns all pairs (i, j), i<j, closer than scale × the sum of
// covalent radii. scale = 1.2–1.3 is customary; the fragmenters use 1.25.
// Enumeration goes through the cell list with a covering cutoff (twice
// the largest covalent radius present, scaled) and filters per pair, so
// the cost is O(N) for bounded density instead of the former all-pairs
// scan, with identical output order (i ascending, then j).
func (g *Geometry) Bonds(scale float64) [][2]int {
	var rmax float64
	for _, a := range g.Atoms {
		rmax = math.Max(rmax, chem.CovalentRadius(a.Z))
	}
	cover := scale * 2 * rmax
	var bonds [][2]int
	g.NeighborSource().Pairs(cover, func(i, j int) bool {
		ri := chem.CovalentRadius(g.Atoms[i].Z)
		rj := chem.CovalentRadius(g.Atoms[j].Z)
		if g.Dist(i, j) < scale*(ri+rj) {
			bonds = append(bonds, [2]int{i, j})
		}
		return true
	})
	return bonds
}

// WriteXYZ writes the geometry in XYZ format (Ångström). A periodic
// geometry records its box as a "cell=Lx,Ly,Lz" token (Å) on the
// comment line; ParseXYZ round-trips it.
func (g *Geometry) WriteXYZ(w io.Writer) error {
	comment := g.Comment
	if g.Cell != nil {
		tok := fmt.Sprintf("cell=%s,%s,%s",
			strconv.FormatFloat(g.Cell.L[0]*chem.AngstromPerBohr, 'g', -1, 64),
			strconv.FormatFloat(g.Cell.L[1]*chem.AngstromPerBohr, 'g', -1, 64),
			strconv.FormatFloat(g.Cell.L[2]*chem.AngstromPerBohr, 'g', -1, 64))
		comment = strings.TrimSpace(comment + " " + tok)
	}
	if _, err := fmt.Fprintf(w, "%d\n%s\n", len(g.Atoms), comment); err != nil {
		return err
	}
	for _, a := range g.Atoms {
		_, err := fmt.Fprintf(w, "%-3s % 15.8f % 15.8f % 15.8f\n", chem.Symbol(a.Z),
			a.Pos[0]*chem.AngstromPerBohr, a.Pos[1]*chem.AngstromPerBohr, a.Pos[2]*chem.AngstromPerBohr)
		if err != nil {
			return err
		}
	}
	return nil
}

// ParseXYZ reads an XYZ-format geometry (Ångström).
func ParseXYZ(r io.Reader) (*Geometry, error) {
	sc := bufio.NewScanner(r)
	if !sc.Scan() {
		return nil, fmt.Errorf("molecule: empty XYZ input")
	}
	n, err := strconv.Atoi(strings.TrimSpace(sc.Text()))
	if err != nil {
		return nil, fmt.Errorf("molecule: bad atom count: %w", err)
	}
	g := New()
	if sc.Scan() {
		g.Comment = strings.TrimSpace(sc.Text())
		if cell, rest, err := parseCellComment(g.Comment); err != nil {
			return nil, err
		} else if cell != nil {
			g.Cell, g.Comment = cell, rest
		}
	}
	for i := 0; i < n; i++ {
		if !sc.Scan() {
			return nil, fmt.Errorf("molecule: truncated XYZ after %d atoms", i)
		}
		f := strings.Fields(sc.Text())
		if len(f) < 4 {
			return nil, fmt.Errorf("molecule: bad XYZ line %q", sc.Text())
		}
		el, err := chem.BySymbol(f[0])
		if err != nil {
			return nil, err
		}
		var xyz [3]float64
		for k := 0; k < 3; k++ {
			v, err := strconv.ParseFloat(f[k+1], 64)
			if err != nil {
				return nil, fmt.Errorf("molecule: bad coordinate %q: %w", f[k+1], err)
			}
			xyz[k] = v
		}
		g.AddAtomAngstrom(el.Z, xyz[0], xyz[1], xyz[2])
	}
	return g, sc.Err()
}

// parseCellComment scans an XYZ comment line for a "cell=Lx,Ly,Lz"
// token (Å). It returns the parsed cell (nil when absent) and the
// comment with the token removed.
func parseCellComment(comment string) (*Cell, string, error) {
	var cell *Cell
	var rest []string
	for _, f := range strings.Fields(comment) {
		if !strings.HasPrefix(f, "cell=") {
			rest = append(rest, f)
			continue
		}
		parts := strings.Split(strings.TrimPrefix(f, "cell="), ",")
		if len(parts) != 3 {
			return nil, "", fmt.Errorf("molecule: bad cell token %q: want cell=Lx,Ly,Lz", f)
		}
		var l [3]float64
		for k, p := range parts {
			v, err := strconv.ParseFloat(p, 64)
			if err != nil {
				return nil, "", fmt.Errorf("molecule: bad cell edge %q: %w", p, err)
			}
			l[k] = v
		}
		c, err := NewCellAngstrom(l[0], l[1], l[2])
		if err != nil {
			return nil, "", err
		}
		cell = c
	}
	return cell, strings.Join(rest, " "), nil
}
