package molecule

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"github.com/fragmd/fragmd/internal/chem"
)

func TestWaterGeometry(t *testing.T) {
	g := Water()
	if g.N() != 3 || g.NumElectrons() != 10 {
		t.Fatalf("water: %d atoms, %d electrons", g.N(), g.NumElectrons())
	}
	roh := g.Dist(0, 1) * chem.AngstromPerBohr
	if math.Abs(roh-0.9572) > 1e-6 {
		t.Errorf("r(OH) = %.4f Å", roh)
	}
	// H–O–H angle.
	a, b, c := g.Atoms[1].Pos, g.Atoms[0].Pos, g.Atoms[2].Pos
	var v1, v2 [3]float64
	var d1, d2, dot float64
	for k := 0; k < 3; k++ {
		v1[k] = a[k] - b[k]
		v2[k] = c[k] - b[k]
		d1 += v1[k] * v1[k]
		d2 += v2[k] * v2[k]
		dot += v1[k] * v2[k]
	}
	angle := math.Acos(dot/math.Sqrt(d1*d2)) * 180 / math.Pi
	if math.Abs(angle-104.52) > 0.01 {
		t.Errorf("∠HOH = %.2f°", angle)
	}
}

func TestBuildersComposition(t *testing.T) {
	if g := Urea(); g.N() != 8 || g.NumElectrons() != 32 {
		t.Errorf("urea: %d atoms, %d e−", g.N(), g.NumElectrons())
	}
	if g := Paracetamol(); g.N() != 20 || g.NumElectrons() != 80 {
		t.Errorf("paracetamol: %d atoms, %d e−", g.N(), g.NumElectrons())
	}
	g, res := Polyglycine(4)
	if g.N() != 7*4+3 {
		t.Errorf("Gly4: %d atoms, want %d", g.N(), 7*4+3)
	}
	if len(res) != 4 || len(res[0]) != 8 || len(res[3]) != 9 {
		t.Errorf("Gly4 residues: %d, terminal sizes %d/%d", len(res), len(res[0]), len(res[3]))
	}
	// 2BEG-scale fibril: 4 strands × 53 residues = 1,496 atoms (paper).
	fib, monomers := BetaFibril(4, 53)
	if fib.N() != 1496 {
		t.Errorf("2BEG analogue: %d atoms, want 1496", fib.N())
	}
	if len(monomers) != 4*53 {
		t.Errorf("monomers = %d", len(monomers))
	}
}

func TestBondsDetectChain(t *testing.T) {
	g, _ := Polyglycine(2)
	bonds := g.Bonds(1.25)
	// A chain must be connected: at least natoms−1 bonds.
	if len(bonds) < g.N()-1 {
		t.Errorf("only %d bonds for %d atoms", len(bonds), g.N())
	}
	// No absurdly short contacts in the builders.
	for i := 0; i < g.N(); i++ {
		for j := i + 1; j < g.N(); j++ {
			if g.Dist(i, j) < 0.8*chem.BohrPerAngstrom {
				t.Fatalf("atoms %d,%d only %.2f Å apart", i, j, g.Dist(i, j)*chem.AngstromPerBohr)
			}
		}
	}
}

func TestCrystalSphere(t *testing.T) {
	g := UreaCrystalSphere(7)
	if g.N()%8 != 0 {
		t.Fatalf("urea sphere atoms %d not divisible by 8", g.N())
	}
	if g.N() < 8*10 {
		t.Errorf("7 Å urea sphere too small: %d molecules", g.N()/8)
	}
	big := UreaCrystalSphere(10)
	if big.N() <= g.N() {
		t.Error("larger radius must add molecules")
	}
}

func TestXYZRoundTrip(t *testing.T) {
	g := Water()
	var buf bytes.Buffer
	if err := g.WriteXYZ(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ParseXYZ(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != 3 {
		t.Fatalf("round trip atoms = %d", g2.N())
	}
	for i := range g.Atoms {
		if g.Atoms[i].Z != g2.Atoms[i].Z {
			t.Fatal("element mismatch")
		}
		for k := 0; k < 3; k++ {
			if math.Abs(g.Atoms[i].Pos[k]-g2.Atoms[i].Pos[k]) > 1e-7 {
				t.Fatal("coordinate mismatch")
			}
		}
	}
	if _, err := ParseXYZ(strings.NewReader("x\n")); err == nil {
		t.Error("expected parse error")
	}
	if _, err := ParseXYZ(strings.NewReader("2\nc\nH 0 0 0\n")); err == nil {
		t.Error("expected truncation error")
	}
}

func TestNuclearRepulsionGradientFD(t *testing.T) {
	g := Water()
	grad := g.NuclearRepulsionGradient()
	h := 1e-6
	for i := range g.Atoms {
		for d := 0; d < 3; d++ {
			gp := g.Clone()
			gp.Atoms[i].Pos[d] += h
			gm := g.Clone()
			gm.Atoms[i].Pos[d] -= h
			fd := (gp.NuclearRepulsion() - gm.NuclearRepulsion()) / (2 * h)
			if math.Abs(grad[3*i+d]-fd) > 1e-7 {
				t.Errorf("E_nuc grad[%d,%d]: %.9f vs FD %.9f", i, d, grad[3*i+d], fd)
			}
		}
	}
}

func TestTransformations(t *testing.T) {
	g := Water()
	c0 := g.Centroid()
	g.Translate(1, 2, 3)
	c1 := g.Centroid()
	for k, want := range []float64{1, 2, 3} {
		if math.Abs(c1[k]-c0[k]-want) > 1e-12 {
			t.Fatal("translate broken")
		}
	}
	d0 := g.Dist(0, 1)
	g.RotateZ(0.7)
	if math.Abs(g.Dist(0, 1)-d0) > 1e-12 {
		t.Fatal("rotation must preserve distances")
	}
}
