// Package autotune implements the runtime GEMM auto-tuning scheme of the
// paper (§V-G, innovation iv). For every distinct GEMM shape (m, k, n)
// encountered during execution, the tuner trials each of the four
// algorithmic variants (NN, NT, TN, TT) on the first calls with that
// shape — measuring the full cost including any operand transposes — and
// then routes all subsequent calls with the same shape to the fastest
// variant. Measurement is in-situ: trial calls perform useful work, so
// no computation is wasted.
//
// Changing the variant is possible because a transpose is cheap relative
// to a GEMM: C = A·B can be recast as D = Aᵀ followed by C = Dᵀ·B, and so
// on. The paper reports up to 20× spread between variants on MI250X
// (Table IV) and 12–13 % end-to-end AIMD speedups from the tuner; the
// pure-Go kernels show the same qualitative spread because their loop
// orders have different cache behaviour per shape.
package autotune

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/fragmd/fragmd/internal/linalg"
)

// shape identifies a GEMM problem: C(m×n) = op(A)·op(B) with inner
// dimension k, for the *logical* (already-op-applied) dimensions.
type shape struct{ m, k, n int }

// trialsPerVariant is how many timed calls each variant receives before
// the tuner locks in a winner (the paper trials each variant once; we
// average a couple of calls to de-noise CPU timing).
const trialsPerVariant = 1

// state tracks the tuning progress for one shape.
type state struct {
	trials [4]int     // calls measured per variant
	total  [4]float64 // accumulated seconds per variant
	best   linalg.Variant
	locked bool
}

// Stats describes the tuning outcome for one GEMM shape.
type Stats struct {
	M, K, N    int
	Best       linalg.Variant
	Locked     bool
	Seconds    [4]float64 // mean seconds per variant (0 if untried)
	SpeedupPct float64    // best vs worst tried variant, percent
}

// Tuner performs per-shape GEMM variant selection. The zero value is not
// usable; create with New. A disabled tuner (Enabled == false) always
// dispatches the variant the caller asked for, which is the ablation
// baseline for the §V-G speedup measurement.
type Tuner struct {
	// Enabled turns auto-tuning on. When false every call uses the
	// natural (caller-specified) variant.
	Enabled bool

	mu     sync.Mutex
	shapes map[shape]*state
}

// New returns an enabled Tuner.
func New() *Tuner {
	return &Tuner{Enabled: true, shapes: make(map[shape]*state)}
}

// Default is the process-wide tuner used by the chemistry kernels.
var Default = New()

// Gemm computes C = alpha·op(A)·op(B) + beta·C like linalg.Gemm, but may
// internally transpose operands to execute a faster variant for this
// logical shape. Results are identical up to floating-point rounding.
func (t *Tuner) Gemm(tA, tB linalg.Transpose, alpha float64, a, b *linalg.Mat, beta float64, c *linalg.Mat) {
	if t == nil || !t.Enabled {
		linalg.Gemm(tA, tB, alpha, a, b, beta, c)
		return
	}
	m, k := a.Rows, a.Cols
	if tA {
		m, k = a.Cols, a.Rows
	}
	n := b.Cols
	if tB {
		n = b.Rows
	}
	sh := shape{m, k, n}

	t.mu.Lock()
	st, ok := t.shapes[sh]
	if !ok {
		st = &state{}
		t.shapes[sh] = st
	}
	var variant linalg.Variant
	if st.locked {
		variant = st.best
	} else {
		// Pick the least-tried variant for this call.
		variant = linalg.VariantNN
		for v := linalg.VariantNN; v <= linalg.VariantTT; v++ {
			if st.trials[v] < st.trials[variant] {
				variant = v
			}
		}
	}
	locked := st.locked
	t.mu.Unlock()

	start := time.Now()
	runVariant(variant, tA, tB, alpha, a, b, beta, c)
	elapsed := time.Since(start).Seconds()

	if locked {
		return
	}
	t.mu.Lock()
	st.trials[variant]++
	st.total[variant] += elapsed
	done := true
	for v := linalg.VariantNN; v <= linalg.VariantTT; v++ {
		if st.trials[v] < trialsPerVariant {
			done = false
			break
		}
	}
	if done && !st.locked {
		best := linalg.VariantNN
		for v := linalg.VariantNN; v <= linalg.VariantTT; v++ {
			if st.total[v]/float64(st.trials[v]) < st.total[best]/float64(st.trials[best]) {
				best = v
			}
		}
		st.best = best
		st.locked = true
	}
	t.mu.Unlock()
}

// runVariant executes the logical product op(A)·op(B) using the requested
// physical variant, inserting explicit transposes as needed.
//
// Logical orientation (tA,tB) asks for op(A), op(B); the physical variant
// says which orientations the kernel should see. If they differ for an
// operand, we materialise its transpose so the kernel's orientation flag
// flips while the math stays the same.
func runVariant(v linalg.Variant, tA, tB linalg.Transpose, alpha float64, a, b *linalg.Mat, beta float64, c *linalg.Mat) {
	wantTA := v == linalg.VariantTN || v == linalg.VariantTT
	wantTB := v == linalg.VariantNT || v == linalg.VariantTT
	pa, pb := a, b
	fa, fb := tA, tB
	if bool(tA) != wantTA {
		pa = a.T()
		fa = linalg.Transpose(wantTA)
	}
	if bool(tB) != wantTB {
		pb = b.T()
		fb = linalg.Transpose(wantTB)
	}
	linalg.Gemm(fa, fb, alpha, pa, pb, beta, c)
}

// Reset clears all tuning state (shapes must be re-trialled).
func (t *Tuner) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.shapes = make(map[shape]*state)
}

// Snapshot returns per-shape tuning statistics sorted by descending
// problem size, for reporting (cmd/mbebench table4).
func (t *Tuner) Snapshot() []Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Stats, 0, len(t.shapes))
	for sh, st := range t.shapes {
		s := Stats{M: sh.m, K: sh.k, N: sh.n, Best: st.best, Locked: st.locked}
		bestT, worstT := 0.0, 0.0
		for v := 0; v < 4; v++ {
			if st.trials[v] == 0 {
				continue
			}
			mean := st.total[v] / float64(st.trials[v])
			s.Seconds[v] = mean
			if bestT == 0 || mean < bestT {
				bestT = mean
			}
			if mean > worstT {
				worstT = mean
			}
		}
		if bestT > 0 {
			s.SpeedupPct = 100 * (worstT - bestT) / worstT
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].M*out[i].K*out[i].N > out[j].M*out[j].K*out[j].N
	})
	return out
}

// String summarises a Stats row.
func (s Stats) String() string {
	return fmt.Sprintf("(%d×%d)·(%d×%d) best=%v locked=%v", s.M, s.K, s.K, s.N, s.Best, s.Locked)
}
