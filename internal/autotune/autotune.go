// Package autotune implements the runtime GEMM auto-tuning scheme of the
// paper (§V-G, innovation iv), extended with engine arbitration. For
// every distinct GEMM shape (m, k, n) encountered during execution, the
// tuner trials each candidate execution strategy on the first calls with
// that shape — measuring the full cost including any operand transposes
// or packing — and then routes all subsequent calls with the same shape
// to the fastest. Measurement is in-situ: trial calls perform useful
// work, so no computation is wasted.
//
// The candidate set covers the four streaming variants (NN, NT, TN, TT:
// different loop orders, selected by materialising cheap transposes) and
// the packed, register-blocked engine (one orientation-free micro-kernel;
// the transposes fold into the pack step, but small shapes pay a packing
// cost the streaming loops avoid). The paper reports up to 20× spread
// between variants on MI250X (Table IV) and 12–13 % end-to-end AIMD
// speedups from the tuner; the pure-Go engines show the same qualitative
// spread because their cache behaviour differs per shape.
package autotune

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/fragmd/fragmd/internal/linalg"
)

// shape identifies a GEMM problem: C(m×n) = op(A)·op(B) with inner
// dimension k, for the *logical* (already-op-applied) dimensions, plus
// the precision the caller allows. Precision is part of the key so an
// exact call never inherits a winner arbitrated with the reduced-
// precision candidate in play (and vice versa).
type shape struct {
	m, k, n int
	prec    linalg.Precision
}

// Candidate execution strategies: the four streaming variants, the
// packed engine, and the mixed-precision packed engine (arbitrated only
// for calls that opted into F32).
const (
	candNN     = int(linalg.VariantNN)
	candNT     = int(linalg.VariantNT)
	candTN     = int(linalg.VariantTN)
	candTT     = int(linalg.VariantTT)
	candPacked = 4
	candP32    = 5

	// numCandidates is the arbitration arity: 4 streaming variants + 2
	// packed engines. candP32 must stay last: exact (F64) calls
	// arbitrate over the prefix [0, candP32).
	numCandidates = 6
)

var candidateNames = [numCandidates]string{"NN", "NT", "TN", "TT", "PK", "P32"}

// CandidateName returns the display name of candidate index i
// ("NN".."TT" for the streaming variants, "PK" for the packed engine).
func CandidateName(i int) string { return candidateNames[i] }

// trialsPerCandidate is how many timed calls each candidate receives
// before the tuner locks in a winner (the paper trials each variant
// once; more calls would de-noise CPU timing at the cost of running
// slow candidates longer).
const trialsPerCandidate = 1

// state tracks the tuning progress for one shape.
type state struct {
	trials [numCandidates]int     // calls measured per candidate
	total  [numCandidates]float64 // accumulated seconds per candidate
	best   int
	locked bool
}

// Stats describes the tuning outcome for one GEMM shape.
type Stats struct {
	M, K, N    int
	Prec       linalg.Precision // precision class this arbitration ran under
	Best       int              // winning candidate index (see CandidateName)
	Locked     bool
	Seconds    [numCandidates]float64 // mean seconds per candidate (0 if untried)
	GFLOPS     [numCandidates]float64 // 2mnk / mean seconds (0 if untried)
	SpeedupPct float64                // best vs worst tried candidate, percent
}

// BestName returns the display name of the winning candidate.
func (s Stats) BestName() string { return candidateNames[s.Best] }

// Tuner performs per-shape GEMM strategy selection. The zero value is
// not usable; create with New. A disabled tuner (Enabled == false)
// always dispatches the variant the caller asked for through the
// default engine heuristic, which is the ablation baseline for the §V-G
// speedup measurement.
type Tuner struct {
	// Enabled turns auto-tuning on. When false every call uses the
	// natural (caller-specified) variant.
	Enabled bool

	mu     sync.Mutex
	shapes map[shape]*state
}

// New returns an enabled Tuner.
func New() *Tuner {
	return &Tuner{Enabled: true, shapes: make(map[shape]*state)}
}

// Default is the process-wide tuner used by the chemistry kernels.
var Default = New()

// Gemm computes C = alpha·op(A)·op(B) + beta·C like linalg.Gemm, but may
// internally transpose operands or route to the packed engine to execute
// the fastest strategy for this logical shape. Results are identical up
// to floating-point rounding.
func (t *Tuner) Gemm(tA, tB linalg.Transpose, alpha float64, a, b *linalg.Mat, beta float64, c *linalg.Mat) {
	t.GemmPrec(linalg.F64, tA, tB, alpha, a, b, beta, c)
}

// GemmPrec is Gemm with a panel-precision request. F64 arbitrates the
// exact candidates only. F32 admits the mixed-precision packed engine
// as a sixth candidate — the call declares ~1e-7 relative accuracy is
// acceptable, and the tuner decides per shape whether the halved panel
// bandwidth actually wins (it can lose on small shapes, and on
// architectures whose asm kernel has no f32 variant). Arbitration state
// is keyed by (shape, precision), so exact and reduced-precision
// traffic never share a winner.
func (t *Tuner) GemmPrec(prec linalg.Precision, tA, tB linalg.Transpose, alpha float64, a, b *linalg.Mat, beta float64, c *linalg.Mat) {
	if t == nil || !t.Enabled {
		linalg.GemmPrec(prec, tA, tB, alpha, a, b, beta, c)
		return
	}
	m, k := a.Rows, a.Cols
	if tA {
		m, k = a.Cols, a.Rows
	}
	n := b.Cols
	if tB {
		n = b.Rows
	}
	sh := shape{m, k, n, prec}
	lim := numCandidates // F32: all candidates
	if prec != linalg.F32 {
		lim = candP32 // exact call: exact candidates only
	}

	t.mu.Lock()
	st, ok := t.shapes[sh]
	if !ok {
		st = &state{}
		t.shapes[sh] = st
	}
	var cand int
	if st.locked {
		cand = st.best
	} else {
		// Pick the least-tried candidate for this call.
		cand = candNN
		for v := candNN; v < lim; v++ {
			if st.trials[v] < st.trials[cand] {
				cand = v
			}
		}
	}
	locked := st.locked
	t.mu.Unlock()

	start := time.Now()
	runCandidate(cand, tA, tB, alpha, a, b, beta, c)
	elapsed := time.Since(start).Seconds()

	if locked {
		return
	}
	t.mu.Lock()
	st.trials[cand]++
	st.total[cand] += elapsed
	done := true
	for v := candNN; v < lim; v++ {
		if st.trials[v] < trialsPerCandidate {
			done = false
			break
		}
	}
	if done && !st.locked {
		best := candNN
		for v := candNN; v < lim; v++ {
			if st.total[v]/float64(st.trials[v]) < st.total[best]/float64(st.trials[best]) {
				best = v
			}
		}
		st.best = best
		st.locked = true
	}
	t.mu.Unlock()
}

// MatMul returns op(A)·op(B) as a fresh matrix (alpha=1, beta=0) routed
// through the tuner, mirroring linalg.MatMul.
func (t *Tuner) MatMul(tA, tB linalg.Transpose, a, b *linalg.Mat) *linalg.Mat {
	m := a.Rows
	if tA {
		m = a.Cols
	}
	n := b.Cols
	if tB {
		n = b.Rows
	}
	c := linalg.NewMat(m, n)
	t.Gemm(tA, tB, 1, a, b, 0, c)
	return c
}

// runCandidate executes the logical product op(A)·op(B) using the
// requested strategy.
//
// For the packed engine the logical orientation passes straight through:
// packing folds both transposes, so no operand is materialised. For a
// streaming candidate, the variant says which orientations the kernel
// should see; if they differ from the logical orientation for an
// operand, we materialise its transpose so the kernel's orientation
// flag flips while the math stays the same.
func runCandidate(cand int, tA, tB linalg.Transpose, alpha float64, a, b *linalg.Mat, beta float64, c *linalg.Mat) {
	if cand == candPacked {
		linalg.GemmKernel(linalg.KernelPacked, tA, tB, alpha, a, b, beta, c)
		return
	}
	if cand == candP32 {
		linalg.GemmKernel(linalg.KernelPackedF32, tA, tB, alpha, a, b, beta, c)
		return
	}
	v := linalg.Variant(cand)
	wantTA := v == linalg.VariantTN || v == linalg.VariantTT
	wantTB := v == linalg.VariantNT || v == linalg.VariantTT
	pa, pb := a, b
	fa, fb := tA, tB
	if bool(tA) != wantTA {
		pa = a.T()
		fa = linalg.Transpose(wantTA)
	}
	if bool(tB) != wantTB {
		pb = b.T()
		fb = linalg.Transpose(wantTB)
	}
	linalg.GemmKernel(linalg.KernelStream, fa, fb, alpha, pa, pb, beta, c)
}

// Reset clears all tuning state (shapes must be re-trialled).
func (t *Tuner) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.shapes = make(map[shape]*state)
}

// Snapshot returns per-shape tuning statistics sorted by descending
// problem size, for reporting (cmd/mbebench table4).
func (t *Tuner) Snapshot() []Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Stats, 0, len(t.shapes))
	for sh, st := range t.shapes {
		s := Stats{M: sh.m, K: sh.k, N: sh.n, Prec: sh.prec, Best: st.best, Locked: st.locked}
		flops := 2 * float64(sh.m) * float64(sh.k) * float64(sh.n)
		bestT, worstT := 0.0, 0.0
		for v := 0; v < numCandidates; v++ {
			if st.trials[v] == 0 {
				continue
			}
			mean := st.total[v] / float64(st.trials[v])
			s.Seconds[v] = mean
			if mean > 0 {
				s.GFLOPS[v] = flops / mean / 1e9
			}
			if bestT == 0 || mean < bestT {
				bestT = mean
			}
			if mean > worstT {
				worstT = mean
			}
		}
		if bestT > 0 {
			s.SpeedupPct = 100 * (worstT - bestT) / worstT
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].M*out[i].K*out[i].N > out[j].M*out[j].K*out[j].N
	})
	return out
}

// String summarises a Stats row.
func (s Stats) String() string {
	return fmt.Sprintf("(%d×%d)·(%d×%d) best=%s locked=%v", s.M, s.K, s.K, s.N, s.BestName(), s.Locked)
}
