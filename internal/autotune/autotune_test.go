package autotune

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"github.com/fragmd/fragmd/internal/linalg"
)

func randMat(rng *rand.Rand, r, c int) *linalg.Mat {
	m := linalg.NewMat(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// The tuner must produce numerically identical results (up to rounding)
// to a direct Gemm call, for every logical orientation, at every stage of
// the trial sequence.
func TestTunerCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tu := New()
	for _, tA := range []linalg.Transpose{linalg.NoTrans, linalg.Trans} {
		for _, tB := range []linalg.Transpose{linalg.NoTrans, linalg.Trans} {
			m, k, n := 9, 14, 6
			var a, b *linalg.Mat
			if tA {
				a = randMat(rng, k, m)
			} else {
				a = randMat(rng, m, k)
			}
			if tB {
				b = randMat(rng, n, k)
			} else {
				b = randMat(rng, k, n)
			}
			// 8 calls: covers all trial phases plus locked phase.
			for call := 0; call < 8; call++ {
				got := randMat(rng, m, n)
				want := got.Clone()
				tu.Gemm(tA, tB, 1.5, a, b, 0.5, got)
				linalg.Gemm(tA, tB, 1.5, a, b, 0.5, want)
				for i := range got.Data {
					if math.Abs(got.Data[i]-want.Data[i]) > 1e-10 {
						t.Fatalf("tA=%v tB=%v call %d: mismatch", tA, tB, call)
					}
				}
			}
		}
	}
}

func TestTunerLocksAfterTrials(t *testing.T) {
	tu := New()
	rng := rand.New(rand.NewSource(2))
	a := randMat(rng, 20, 30)
	b := randMat(rng, 30, 10)
	c := linalg.NewMat(20, 10)
	for i := 0; i < candP32*trialsPerCandidate; i++ {
		tu.Gemm(linalg.NoTrans, linalg.NoTrans, 1, a, b, 0, c)
	}
	snap := tu.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("expected 1 shape, got %d", len(snap))
	}
	if !snap[0].Locked {
		t.Fatal("tuner should be locked after trialling all candidates")
	}
	// All exact candidates (four streaming variants + packed) must have
	// been timed with a GFLOP/s figure; the mixed-precision candidate
	// must NOT have been trialled on an exact (F64) call stream.
	for v := 0; v < candP32; v++ {
		if snap[0].Seconds[v] == 0 {
			t.Fatalf("candidate %s never trialled", CandidateName(v))
		}
		if snap[0].GFLOPS[v] <= 0 {
			t.Fatalf("candidate %s has no GFLOP/s record", CandidateName(v))
		}
	}
	if snap[0].Seconds[candP32] != 0 {
		t.Fatal("P32 candidate must not be trialled by exact calls")
	}
	if name := snap[0].BestName(); name == "" {
		t.Fatal("empty best-candidate name")
	}
}

// An F32 call stream arbitrates all six candidates, locks, keeps its
// state separate from the F64 entry for the same (m,k,n), and stays
// within the mixed-precision error envelope throughout.
func TestTunerGemmPrecF32(t *testing.T) {
	tu := New()
	rng := rand.New(rand.NewSource(7))
	a := randMat(rng, 20, 30)
	b := randMat(rng, 30, 10)
	want := linalg.NewMat(20, 10)
	linalg.Gemm(linalg.NoTrans, linalg.NoTrans, 1, a, b, 0, want)
	for i := 0; i < numCandidates*trialsPerCandidate+2; i++ {
		c := linalg.NewMat(20, 10)
		tu.GemmPrec(linalg.F32, linalg.NoTrans, linalg.NoTrans, 1, a, b, 0, c)
		for j := range c.Data {
			if math.Abs(c.Data[j]-want.Data[j]) > 1e-5 {
				t.Fatalf("call %d: f32 path error %g beyond envelope", i, math.Abs(c.Data[j]-want.Data[j]))
			}
		}
	}
	// One exact call with the same logical shape: must land in a
	// distinct arbitration entry.
	c := linalg.NewMat(20, 10)
	tu.Gemm(linalg.NoTrans, linalg.NoTrans, 1, a, b, 0, c)
	snap := tu.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("expected separate (shape, precision) entries, got %d", len(snap))
	}
	var f32Stats *Stats
	for i := range snap {
		if snap[i].Prec == linalg.F32 {
			f32Stats = &snap[i]
		}
	}
	if f32Stats == nil {
		t.Fatal("no F32 arbitration entry in snapshot")
	}
	if !f32Stats.Locked {
		t.Fatal("F32 entry should be locked after trialling all candidates")
	}
	for v := 0; v < numCandidates; v++ {
		if f32Stats.Seconds[v] == 0 {
			t.Fatalf("F32 stream: candidate %s never trialled", CandidateName(v))
		}
	}
}

// The packed-engine candidate must be numerically interchangeable with
// the streaming candidates at every orientation — the tuner may pick it
// for any shape.
func TestTunerPackedCandidateCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, tA := range []linalg.Transpose{linalg.NoTrans, linalg.Trans} {
		for _, tB := range []linalg.Transpose{linalg.NoTrans, linalg.Trans} {
			m, k, n := 13, 21, 9
			var a, b *linalg.Mat
			if tA {
				a = randMat(rng, k, m)
			} else {
				a = randMat(rng, m, k)
			}
			if tB {
				b = randMat(rng, n, k)
			} else {
				b = randMat(rng, k, n)
			}
			got := randMat(rng, m, n)
			want := got.Clone()
			runCandidate(candPacked, tA, tB, 1.25, a, b, 0.5, got)
			linalg.GemmKernel(linalg.KernelStream, tA, tB, 1.25, a, b, 0.5, want)
			for i := range got.Data {
				if math.Abs(got.Data[i]-want.Data[i]) > 1e-12 {
					t.Fatalf("tA=%v tB=%v: packed candidate mismatch at %d", tA, tB, i)
				}
			}
		}
	}
}

func TestTunerMatMul(t *testing.T) {
	tu := New()
	rng := rand.New(rand.NewSource(6))
	a := randMat(rng, 7, 11)
	b := randMat(rng, 11, 5)
	got := tu.MatMul(linalg.NoTrans, linalg.NoTrans, a, b)
	want := linalg.MatMul(linalg.NoTrans, linalg.NoTrans, a, b)
	for i := range got.Data {
		if math.Abs(got.Data[i]-want.Data[i]) > 1e-12 {
			t.Fatal("Tuner.MatMul mismatch")
		}
	}
	gt := tu.MatMul(linalg.Trans, linalg.Trans, b, a)
	if gt.Rows != 5 || gt.Cols != 7 {
		t.Fatalf("Tuner.MatMul TT dims %dx%d", gt.Rows, gt.Cols)
	}
}

func TestTunerDisabledPassThrough(t *testing.T) {
	tu := New()
	tu.Enabled = false
	rng := rand.New(rand.NewSource(3))
	a := randMat(rng, 5, 5)
	b := randMat(rng, 5, 5)
	c := linalg.NewMat(5, 5)
	tu.Gemm(linalg.NoTrans, linalg.NoTrans, 1, a, b, 0, c)
	if len(tu.Snapshot()) != 0 {
		t.Fatal("disabled tuner must not record shapes")
	}
}

func TestTunerNilSafe(t *testing.T) {
	var tu *Tuner
	a := linalg.Identity(3)
	c := linalg.NewMat(3, 3)
	tu.Gemm(linalg.NoTrans, linalg.NoTrans, 1, a, a, 0, c) // must not panic
	if c.At(1, 1) != 1 {
		t.Fatal("nil tuner should still compute")
	}
}

func TestTunerConcurrentUse(t *testing.T) {
	tu := New()
	rng := rand.New(rand.NewSource(4))
	a := randMat(rng, 16, 16)
	b := randMat(rng, 16, 16)
	want := linalg.MatMul(linalg.NoTrans, linalg.NoTrans, a, b)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				c := linalg.NewMat(16, 16)
				tu.Gemm(linalg.NoTrans, linalg.NoTrans, 1, a, b, 0, c)
				for j := range c.Data {
					if math.Abs(c.Data[j]-want.Data[j]) > 1e-10 {
						t.Error("concurrent result mismatch")
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

func TestTunerReset(t *testing.T) {
	tu := New()
	a := linalg.Identity(4)
	c := linalg.NewMat(4, 4)
	tu.Gemm(linalg.NoTrans, linalg.NoTrans, 1, a, a, 0, c)
	if len(tu.Snapshot()) == 0 {
		t.Fatal("expected recorded shape")
	}
	tu.Reset()
	if len(tu.Snapshot()) != 0 {
		t.Fatal("reset must clear shapes")
	}
}
