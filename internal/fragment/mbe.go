package fragment

import (
	"fmt"
	"sort"

	"github.com/fragmd/fragmd/internal/molecule"
	"github.com/fragmd/fragmd/internal/warmstart"
)

// Evaluator computes the total energy and nuclear gradient of a
// standalone fragment geometry. Implementations live in package
// potential (RI-MP2, RI-HF, and fast surrogate potentials).
type Evaluator interface {
	Evaluate(g *molecule.Geometry) (energy float64, grad []float64, err error)
}

// StatefulEvaluator is an Evaluator that can additionally start from —
// and hand back — a reusable electronic state, the incremental-
// evaluation hook for AIMD: prev (which may be nil for a cold start) is
// injected as the SCF initial guess, and the returned state snapshots
// the new converged result for the next step. Evaluate(g) must be
// numerically equivalent to EvaluateFrom(g, nil). Evaluators with no
// electronic state (the LJ surrogate) pass through and return a
// minimal state carrying only energy/gradient/geometry, which still
// supports skip reuse.
type StatefulEvaluator interface {
	Evaluator
	EvaluateFrom(g *molecule.Geometry, prev *warmstart.State) (energy float64, grad []float64, next *warmstart.State, err error)
}

// EvaluateWithCache runs one polymer evaluation through the cache:
// skip reuse when the geometry has barely moved, warm-started stateful
// evaluation when available, plain evaluation otherwise. It returns
// the energy, gradient, SCF iteration count, and whether the
// evaluation was skipped. It is shared by the serial Compute path and
// the asynchronous scheduler (which calls it from concurrent workers —
// the cache synchronises internally). Under straggler speculation the
// scheduler may evaluate the same polymer key concurrently with itself
// on the same geometry; both copies converge to equivalent states and
// the cache keeps whichever Put lands last, so the race is benign.
func EvaluateWithCache(eval Evaluator, cache *warmstart.Cache, key string, g *molecule.Geometry) (float64, []float64, int, bool, error) {
	if cache != nil {
		if st, ok := cache.Reuse(key, g); ok {
			return st.Energy, st.Grad, 0, true, nil
		}
	}
	if se, ok := eval.(StatefulEvaluator); ok {
		var prev *warmstart.State
		if cache != nil {
			prev = cache.Guess(key, g)
		}
		e, grad, st, err := se.EvaluateFrom(g, prev)
		if err != nil {
			return 0, nil, 0, false, err
		}
		iters := 0
		if st != nil {
			iters = st.SCFIters
			if cache != nil {
				cache.Put(key, st)
			}
		}
		return e, grad, iters, false, nil
	}
	e, grad, err := eval.Evaluate(g)
	if err != nil {
		return 0, nil, 0, false, err
	}
	if cache != nil {
		cache.Put(key, warmstart.NewState(g, e, grad))
	}
	return e, grad, 0, false, nil
}

// Terms classifies the polymers of the truncated expansion.
type Terms struct {
	Monomers []Polymer
	// Dimers within the dimer cutoff: contribute ΔE_IJ.
	Dimers []Polymer
	// Trimers within the trimer cutoff: contribute ΔE_IJK.
	Trimers []Polymer
	// ExtraDimers are outside the dimer cutoff but constituents of an
	// included trimer; they are evaluated for the ΔE_IJK assembly but
	// contribute no ΔE_IJ of their own.
	ExtraDimers []Polymer
}

// All returns every polymer requiring evaluation, monomers first, then
// dimers (included + extra), then trimers.
func (t *Terms) All() []Polymer {
	out := make([]Polymer, 0, len(t.Monomers)+len(t.Dimers)+len(t.ExtraDimers)+len(t.Trimers))
	out = append(out, t.Monomers...)
	out = append(out, t.Dimers...)
	out = append(out, t.ExtraDimers...)
	out = append(out, t.Trimers...)
	return out
}

// Terms enumerates the truncated MBE polymer lists under the configured
// cutoffs (centroid distances, paper §V-B; minimum-image when the
// geometry is periodic). Monomer centroids are computed once for the
// whole pass and enumeration runs through the cell list (or the brute
// oracle under Opts.Brute — both yield identical lists in identical
// order), so the cost is O(nm) for bounded density rather than the
// former O(nm³) of per-pair centroid recomputation.
func (f *Fragmentation) Terms() *Terms {
	n := len(f.Monomers)
	t := &Terms{}
	for i := 0; i < n; i++ {
		t.Monomers = append(t.Monomers, Polymer{Monomers: []int{i}})
	}
	cents := f.centroids()
	src := f.centroidSource(cents)
	inCut := map[[2]int]bool{}
	src.Pairs(f.Opts.DimerCutoff, func(i, j int) bool {
		inCut[[2]int{i, j}] = true
		t.Dimers = append(t.Dimers, Polymer{Monomers: []int{i, j}}) // lex order by contract
		return true
	})
	if f.Opts.MaxOrder >= 3 {
		needed := map[[2]int]bool{}
		src.Triples(f.Opts.TrimerCutoff, func(i, j, k int) bool {
			t.Trimers = append(t.Trimers, Polymer{Monomers: []int{i, j, k}})
			for _, d := range [][2]int{{i, j}, {i, k}, {j, k}} {
				if !inCut[d] {
					needed[d] = true
				}
			}
			return true
		})
		for d := range needed {
			t.ExtraDimers = append(t.ExtraDimers, Polymer{Monomers: []int{d[0], d[1]}})
		}
		sortPolymers(t.ExtraDimers)
	}
	return t
}

func sortPolymers(ps []Polymer) {
	sort.Slice(ps, func(a, b int) bool {
		pa, pb := ps[a].Monomers, ps[b].Monomers
		for k := range pa {
			if pa[k] != pb[k] {
				return pa[k] < pb[k]
			}
		}
		return false
	})
}

// Coefficients returns the raw-energy MBE coefficient of every polymer
// to evaluate: E_MBE = Σ_p coeff(p)·E_p. Monomers start at 1 and are
// decremented by their dimer and incremented by their trimer
// memberships; dimers in cutoff get +1 and −1 per containing trimer;
// extra dimers get −1 per containing trimer only; trimers get +1.
func (t *Terms) Coefficients() map[string]float64 {
	coeff := map[string]float64{}
	for _, m := range t.Monomers {
		coeff[m.Key()] = 1
	}
	for _, d := range t.Dimers {
		coeff[d.Key()] += 1
		coeff[Polymer{Monomers: []int{d.Monomers[0]}}.Key()]--
		coeff[Polymer{Monomers: []int{d.Monomers[1]}}.Key()]--
	}
	for _, tr := range t.Trimers {
		coeff[tr.Key()] += 1
		i, j, k := tr.Monomers[0], tr.Monomers[1], tr.Monomers[2]
		for _, d := range [][2]int{{i, j}, {i, k}, {j, k}} {
			coeff[Polymer{Monomers: []int{d[0], d[1]}}.Key()]--
		}
		for _, m := range tr.Monomers {
			coeff[Polymer{Monomers: []int{m}}.Key()]++
		}
	}
	return coeff
}

// Result is an assembled MBE energy and gradient for the parent system.
type Result struct {
	Energy     float64
	Gradient   []float64 // 3N parent gradient
	NPolymers  int
	PolymerE   map[string]float64 // raw fragment energies
	DeltaDimer map[string]float64 // ΔE_IJ for dimers within cutoff
	DeltaTri   map[string]float64 // ΔE_IJK

	// SCFIters totals the SCF iterations across polymer evaluations
	// (0 when the evaluator is stateless); Skipped counts polymers
	// whose cached energy/gradient were reused without re-evaluation.
	SCFIters int
	Skipped  int

	// EE-MBE extras (ComputeEmbedded only; zero/nil for vacuum MBE).
	// Charges are the phase-1 per-parent-atom embedding charges,
	// SCCRounds the number of charge rounds actually run, and
	// EPairResidual the far-pair double-counting correction included in
	// Energy (see embed.go).
	Charges       []float64
	SCCRounds     int
	EPairResidual float64
}

// Compute evaluates every required polymer with eval and assembles the
// MBE energy and gradient. It is the serial reference path; package
// sched provides the asynchronous distributed engine with identical
// numerics.
func (f *Fragmentation) Compute(eval Evaluator) (*Result, error) {
	return f.ComputeWithCache(eval, nil)
}

// ComputeWithCache is Compute with incremental evaluation through a
// warm-start cache: stateful evaluators receive each polymer's cached
// state as their SCF initial guess, and polymers under the cache's
// skip tolerance reuse their cached energy/gradient without
// re-evaluation. A nil cache reproduces Compute exactly. The cache is
// keyed by polymer identity and may be carried across successive
// calls on (slightly) updated geometries — the AIMD usage.
func (f *Fragmentation) ComputeWithCache(eval Evaluator, cache *warmstart.Cache) (*Result, error) {
	terms := f.Terms()
	coeff := terms.Coefficients()
	all := terms.All()

	res := &Result{
		Gradient:   make([]float64, 3*f.Geom.N()),
		NPolymers:  len(all),
		PolymerE:   map[string]float64{},
		DeltaDimer: map[string]float64{},
		DeltaTri:   map[string]float64{},
	}
	grads := map[string][]float64{}
	extracts := map[string]*Extracted{}
	for _, p := range all {
		key := p.Key()
		if _, done := res.PolymerE[key]; done {
			return nil, fmt.Errorf("fragment: polymer %s enumerated twice", key)
		}
		ex := f.Extract(p)
		e, g, iters, skipped, err := EvaluateWithCache(eval, cache, key, ex.Geom)
		if err != nil {
			return nil, fmt.Errorf("fragment: polymer %s: %w", key, err)
		}
		res.SCFIters += iters
		if skipped {
			res.Skipped++
		}
		res.PolymerE[key] = e
		grads[key] = g
		extracts[key] = ex
	}

	// Deterministic assembly order (the enumeration order, not map
	// range): float accumulation is order-sensitive in the last bits,
	// and the golden-trajectory regressions compare bit-for-bit.
	allGrads := true
	for _, p := range all {
		key := p.Key()
		c := coeff[key]
		if c == 0 {
			continue
		}
		res.Energy += c * res.PolymerE[key]
		if grads[key] == nil {
			allGrads = false // energy-only evaluator
			continue
		}
		extracts[key].FoldGradient(grads[key], c, res.Gradient)
	}
	if !allGrads {
		res.Gradient = nil
	}

	// ΔE bookkeeping for analysis (Fig. 5).
	mKey := func(i int) string { return Polymer{Monomers: []int{i}}.Key() }
	dimerDelta := func(d Polymer) float64 {
		return res.PolymerE[d.Key()] - res.PolymerE[mKey(d.Monomers[0])] - res.PolymerE[mKey(d.Monomers[1])]
	}
	for _, d := range terms.Dimers {
		res.DeltaDimer[d.Key()] = dimerDelta(d)
	}
	for _, tr := range terms.Trimers {
		i, j, k := tr.Monomers[0], tr.Monomers[1], tr.Monomers[2]
		delta := res.PolymerE[tr.Key()]
		for _, d := range [][2]int{{i, j}, {i, k}, {j, k}} {
			delta -= res.PolymerE[Polymer{Monomers: []int{d[0], d[1]}}.Key()]
		}
		delta += res.PolymerE[mKey(i)] + res.PolymerE[mKey(j)] + res.PolymerE[mKey(k)]
		res.DeltaTri[tr.Key()] = delta
	}
	return res, nil
}

// Contribution is one polymer's |ΔE| against its maximum centroid
// separation — the data behind the paper's Fig. 5 cutoff analysis.
type Contribution struct {
	Order  int
	Dist   float64 // Bohr
	DeltaE float64 // Hartree
}

// Contributions lists dimer and trimer ΔE values with distances.
// Centroids are computed once for the pass (not per MonomerDist call).
func (f *Fragmentation) Contributions(res *Result) []Contribution {
	cents := f.centroids()
	dist := func(i, j int) float64 { return f.Geom.DistBetween(cents[i], cents[j]) }
	var out []Contribution
	parse := func(key string) []int {
		var a, b, c int
		switch n, _ := fmt.Sscanf(key, "%d-%d-%d", &a, &b, &c); n {
		case 3:
			return []int{a, b, c}
		default:
			fmt.Sscanf(key, "%d-%d", &a, &b)
			return []int{a, b}
		}
	}
	for key, de := range res.DeltaDimer {
		m := parse(key)
		out = append(out, Contribution{Order: 2, Dist: dist(m[0], m[1]), DeltaE: de})
	}
	for key, de := range res.DeltaTri {
		m := parse(key)
		d := dist(m[0], m[1])
		if x := dist(m[0], m[2]); x > d {
			d = x
		}
		if x := dist(m[1], m[2]); x > d {
			d = x
		}
		out = append(out, Contribution{Order: 3, Dist: d, DeltaE: de})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Dist < out[j].Dist })
	return out
}
