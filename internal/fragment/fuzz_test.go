package fragment

import (
	"sort"
	"strings"
	"testing"

	"github.com/fragmd/fragmd/internal/coord"
	"github.com/fragmd/fragmd/internal/molecule"
)

// FuzzMBECoefficients drives the MBE term enumeration and the shared
// scheduling-graph construction across arbitrary cutoffs and
// fragmentation sizes, asserting the structural invariants that make
// the truncated expansion and its task graph correct:
//
//   - size additivity: Σ_p coeff(p)·order(p) equals the monomer count,
//     so any per-monomer-additive property is reproduced exactly by the
//     weighted sum (the paper's Eq. 2 telescopes);
//   - extra dimers (evaluated only as trimer constituents) carry
//     strictly negative coefficients;
//   - every enumerated trimer carries coefficient +1;
//   - the coord.Graph built from the fragmentation (exactly as the
//     live engine builds it) validates, and its monomer→polymer
//     reverse index is consistent with the touch sets.
//
// The workload is a β-fibril analogue, so covalent boundaries and
// H-cap dependency sets (TouchSet) are exercised, not just molecular
// clusters.
func FuzzMBECoefficients(f *testing.F) {
	f.Add(uint8(3), 22.0, 9.0, uint8(3))
	f.Add(uint8(1), 0.0, 0.0, uint8(2))
	f.Add(uint8(7), -5.0, 1e300, uint8(3))
	f.Add(uint8(4), 7.5, 7.5, uint8(200))
	f.Fuzz(func(t *testing.T, nRaw uint8, dimerCut, trimerCut float64, orderRaw uint8) {
		strands := int(nRaw)%2 + 1
		residues := int(nRaw/2)%3 + 2
		g, monomers := molecule.BetaFibril(strands, residues)
		frag, err := New(g, monomers, Options{
			DimerCutoff:  dimerCut,
			TrimerCutoff: trimerCut,
			MaxOrder:     2 + int(orderRaw)%2,
		})
		if dimerCut < 0 || trimerCut < 0 {
			// Negative cutoffs are invalid input, not a degenerate
			// expansion: New must reject them loudly.
			if err == nil {
				t.Fatalf("negative cutoffs (%g/%g) accepted", dimerCut, trimerCut)
			}
			return
		}
		if err != nil {
			t.Fatalf("fibril fragmentation rejected: %v", err)
		}
		terms := frag.Terms()
		coeff := terms.Coefficients()

		order := func(key string) int { return strings.Count(key, "-") + 1 }
		var weighted float64
		for key, c := range coeff {
			weighted += c * float64(order(key))
		}
		nMono := len(frag.Monomers)
		if weighted != float64(nMono) {
			t.Errorf("Σ coeff·order = %g, want monomer count %d (cutoffs %g/%g)",
				weighted, nMono, dimerCut, trimerCut)
		}
		for _, d := range terms.ExtraDimers {
			if c := coeff[d.Key()]; c >= 0 {
				t.Errorf("extra dimer %s has coefficient %g, want strictly negative", d.Key(), c)
			}
		}
		for _, tr := range terms.Trimers {
			if c := coeff[tr.Key()]; c != 1 {
				t.Errorf("trimer %s has coefficient %g, want 1", tr.Key(), c)
			}
		}

		// The scheduling graph, built exactly as the live engine builds
		// it (sched.New), must validate and round-trip its reverse
		// index.
		all := terms.All()
		members := make([][]int32, len(all))
		touch := make([][]int32, len(all))
		for pi, p := range all {
			ms := make([]int32, len(p.Monomers))
			for i, m := range p.Monomers {
				ms[i] = int32(m)
			}
			sort.Slice(ms, func(i, j int) bool { return ms[i] < ms[j] })
			members[pi] = ms
			for _, m := range frag.TouchSet(p) {
				touch[pi] = append(touch[pi], int32(m))
			}
			// A polymer always touches its own members.
			inTouch := map[int32]bool{}
			for _, m := range touch[pi] {
				inTouch[m] = true
			}
			for _, m := range ms {
				if !inTouch[m] {
					t.Fatalf("polymer %s touch set %v misses its own member %d", p.Key(), touch[pi], m)
				}
			}
		}
		_, dist := coord.Priorities(nMono, members, frag.Centroid, frag.Geom.Centroid(), -1)
		graph, err := coord.NewGraph(nMono, members, touch, dist)
		if err != nil {
			t.Fatalf("graph construction rejected a valid fragmentation: %v", err)
		}
		var touchTotal, reverseTotal int
		for _, ts := range touch {
			touchTotal += len(ts)
		}
		for _, ps := range graph.Touching {
			reverseTotal += len(ps)
		}
		if touchTotal != reverseTotal {
			t.Errorf("reverse index has %d edges, touch sets %d", reverseTotal, touchTotal)
		}
	})
}

// The full (cutoff-free) MBE3 expansion carries the textbook inclusion–
// exclusion coefficients: this pins the closed form the fuzz property
// implies.
func TestCoefficientsFullExpansion(t *testing.T) {
	g := molecule.WaterCluster(4)
	frag, err := ByMolecule(g, 3, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	terms := frag.Terms()
	coeff := terms.Coefficients()
	n := 4.0
	// Monomer: 1 − (n−1) dimers + C(n−1,2) trimers.
	wantMono := 1 - (n - 1) + (n-1)*(n-2)/2
	// Dimer: 1 − (n−2) containing trimers.
	wantDimer := 1 - (n - 2)
	for _, m := range terms.Monomers {
		if c := coeff[m.Key()]; c != wantMono {
			t.Errorf("monomer %s coefficient %g, want %g", m.Key(), c, wantMono)
		}
	}
	for _, d := range terms.Dimers {
		if c := coeff[d.Key()]; c != wantDimer {
			t.Errorf("dimer %s coefficient %g, want %g", d.Key(), c, wantDimer)
		}
	}
	if len(terms.ExtraDimers) != 0 {
		t.Errorf("full expansion has %d extra dimers, want 0", len(terms.ExtraDimers))
	}
}
