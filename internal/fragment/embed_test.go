package fragment

import (
	"math"
	"testing"

	"github.com/fragmd/fragmd/internal/racecheck"

	"github.com/fragmd/fragmd/internal/molecule"
	"github.com/fragmd/fragmd/internal/potential"
)

// ljq is the surrogate's fixed water-like charge model; because the
// charges are geometry-independent the embedded LJ MBE is exactly
// conservative, so full-system finite differences validate the entire
// gradient assembly (fragment fold, cap chain rule, field-site fold,
// pair-residual correction).
var ljq = map[int]float64{1: 0.18, 8: -0.36, 6: 0.1, 7: -0.3}

func ljEval() *potential.LennardJones { return &potential.LennardJones{Charges: ljq} }

// The acceptance criterion: embedded MBE(2) on the water cluster moves
// the energy toward the supersystem reference — the EE-MBE error must
// be strictly smaller than the vacuum MBE error.
func TestEmbeddedMBE2BeatsVacuumOnWaterCluster(t *testing.T) {
	if racecheck.Enabled {
		t.Skip("pure-numerical suite; adds no race coverage and is slow under -race")
	}
	sizes := []int{3}
	if !testing.Short() {
		sizes = append(sizes, 4)
	}
	eval := &potential.HF{UseRI: true}
	for _, n := range sizes {
		g := molecule.WaterCluster(n)
		super, _, err := eval.Evaluate(g)
		if err != nil {
			t.Fatal(err)
		}
		f, err := ByMolecule(g, 3, 1, Options{MaxOrder: 2})
		if err != nil {
			t.Fatal(err)
		}
		vac, err := f.Compute(eval)
		if err != nil {
			t.Fatal(err)
		}
		emb, err := f.ComputeEmbedded(eval, nil, EmbedOptions{})
		if err != nil {
			t.Fatal(err)
		}
		errVac := math.Abs(vac.Energy - super)
		errEmb := math.Abs(emb.Energy - super)
		t.Logf("n=%d: super %.8f, vacuum err %.3e, embedded err %.3e", n, super, errVac, errEmb)
		if errEmb >= errVac {
			t.Errorf("n=%d: embedding did not shrink the MBE2 error: %.3e vs %.3e", n, errEmb, errVac)
		}
		if len(emb.Charges) != g.N() {
			t.Errorf("n=%d: %d embedding charges for %d atoms", n, len(emb.Charges), g.N())
		}
	}
}

// fdMBEGradient computes the central-difference gradient of the total
// embedded MBE energy, recomputing the charges at every displaced
// geometry — so it only matches the analytic gradient exactly when the
// charge model is geometry-independent (the LJ surrogate).
func fdMBEGradient(t *testing.T, g *molecule.Geometry, monomers [][]int, opts Options, eo EmbedOptions, h float64) []float64 {
	t.Helper()
	energy := func(gg *molecule.Geometry) float64 {
		f, err := New(gg, monomers, opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := f.ComputeEmbedded(ljEval(), nil, eo)
		if err != nil {
			t.Fatal(err)
		}
		return res.Energy
	}
	grad := make([]float64, 3*g.N())
	for i := range g.Atoms {
		for d := 0; d < 3; d++ {
			gp, gm := g.Clone(), g.Clone()
			gp.Atoms[i].Pos[d] += h
			gm.Atoms[i].Pos[d] -= h
			grad[3*i+d] = (energy(gp) - energy(gm)) / (2 * h)
		}
	}
	return grad
}

// The assembled EE-MBE gradient is analytic end to end: fragment
// forces, H-cap chain rule, field-site back-folding and the
// pair-residual correction must together match finite differences of
// the total energy. Checked on a capped covalent system with a dimer
// cutoff (so extra dimers and the residual correction are all active).
func TestEmbeddedMBEGradientFD(t *testing.T) {
	g, residues := molecule.Polyglycine(4)
	opts := Options{MaxOrder: 2, DimerCutoff: 8}
	eo := EmbedOptions{SCC: 1, Damping: 0.25}
	f, err := New(g, residues, opts)
	if err != nil {
		t.Fatal(err)
	}
	nMono := len(f.Monomers)
	if got, full := len(f.Terms().Dimers), nMono*(nMono-1)/2; got >= full {
		t.Fatalf("cutoff excluded no dimer (%d of %d) — the residual correction would be untested", got, full)
	}
	res, err := f.ComputeEmbedded(ljEval(), nil, eo)
	if err != nil {
		t.Fatal(err)
	}
	if res.EPairResidual == 0 {
		t.Error("pair-residual correction inactive despite the dimer cutoff")
	}
	want := fdMBEGradient(t, g, residues, opts, eo, 1e-6)
	for i := range want {
		if d := math.Abs(res.Gradient[i] - want[i]); d > 1e-8 {
			t.Errorf("grad[%d]: analytic %.12f vs FD %.12f (Δ %.2e)", i, res.Gradient[i], want[i], d)
		}
	}
}

// Zero charges reduce the embedded driver to the vacuum expansion
// exactly (empty fields, zero residual).
func TestEmbeddedMBEZeroChargesMatchesVacuum(t *testing.T) {
	g := molecule.WaterCluster(4)
	f, err := ByMolecule(g, 3, 1, Options{MaxOrder: 2, DimerCutoff: 10})
	if err != nil {
		t.Fatal(err)
	}
	lj := &potential.LennardJones{} // nil charge map: all zeros
	vac, err := f.Compute(lj)
	if err != nil {
		t.Fatal(err)
	}
	emb, err := f.ComputeEmbedded(lj, nil, EmbedOptions{SCC: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Map-ordered accumulation reassociates sums between the two
	// drivers, so compare at rounding level, not bitwise.
	if math.Abs(vac.Energy-emb.Energy) > 1e-14 {
		t.Errorf("zero-charge embedding changed the energy: %.15f vs %.15f", emb.Energy, vac.Energy)
	}
	for i := range vac.Gradient {
		if math.Abs(vac.Gradient[i]-emb.Gradient[i]) > 1e-14 {
			t.Fatalf("zero-charge embedding changed gradient[%d]: %.17g vs %.17g",
				i, vac.Gradient[i], emb.Gradient[i])
		}
	}
}

// With the complete polymer set every pair is fully included (s_IJ = 1)
// and the residual correction must vanish identically; a cutoff must
// activate it.
func TestPairInclusion(t *testing.T) {
	g := molecule.WaterCluster(5)
	for _, tc := range []struct {
		name   string
		opts   Options
		allOne bool
	}{
		{"full-mbe2", Options{MaxOrder: 2}, true},
		{"full-mbe3", Options{MaxOrder: 3}, true},
		{"cut-mbe2", Options{MaxOrder: 2, DimerCutoff: 9}, false},
	} {
		f, err := ByMolecule(g, 3, 1, tc.opts)
		if err != nil {
			t.Fatal(err)
		}
		terms := f.Terms()
		s := pairInclusion(len(f.Monomers), terms.All(), terms.Coefficients())
		n := len(f.Monomers)
		sawPartial := false
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				v := s[i*n+j]
				if tc.allOne && math.Abs(v-1) > 1e-12 {
					t.Errorf("%s: s[%d,%d] = %g, want 1", tc.name, i, j, v)
				}
				if math.Abs(v-1) > 1e-12 {
					sawPartial = true
				}
			}
		}
		if !tc.allOne && !sawPartial {
			t.Errorf("%s: expected at least one partially included pair", tc.name)
		}
	}
}

// MonomerCharges: charges fold back onto parent atoms (caps onto their
// inner bond atoms), the SCC loop stops early once converged, and a
// fixed-charge model converges after one refinement round.
func TestMonomerCharges(t *testing.T) {
	g, residues := molecule.Polyglycine(3)
	f, err := New(g, residues, Options{})
	if err != nil {
		t.Fatal(err)
	}
	q, iters, rounds, err := f.MonomerCharges(ljEval(), EmbedOptions{SCC: 5, SCCTol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if iters != 0 {
		t.Errorf("stateless charge source reported %d SCF iterations", iters)
	}
	// The LJ charges ignore the field, so round 1 changes nothing and
	// the tolerance stops the loop immediately after it.
	if rounds != 2 {
		t.Errorf("fixed-charge SCC ran %d rounds, want 2 (vacuum + one converged check)", rounds)
	}
	if len(q) != g.N() {
		t.Fatalf("%d charges for %d atoms", len(q), g.N())
	}
	// Caps fold onto inner atoms: totals per monomer must equal the
	// capped fragment's total charge, and every atom's charge is its
	// element charge plus any cap folds (cap H carries ljq[1]).
	for mi := range f.Monomers {
		ex := f.Extract(Polymer{Monomers: []int{mi}})
		var want float64
		for _, a := range ex.Geom.Atoms {
			want += ljq[a.Z]
		}
		var got float64
		for _, a := range f.Monomers[mi].Atoms {
			got += q[a]
		}
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("monomer %d folded charge %.6f, capped fragment total %.6f", mi, got, want)
		}
	}
}

// Invalid embed options are rejected loudly.
func TestEmbedOptionsValidation(t *testing.T) {
	g := molecule.WaterCluster(2)
	f, err := ByMolecule(g, 3, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, eo := range []EmbedOptions{
		{SCC: -1},
		{SCCTol: -1e-3},
		{Damping: 1.0},
		{Damping: -0.1},
	} {
		if _, err := f.ComputeEmbedded(ljEval(), nil, eo); err == nil {
			t.Errorf("options %+v accepted", eo)
		}
	}
	// An evaluator without the embedding interfaces is refused.
	if _, err := f.ComputeEmbedded(additiveEvaluator{c: 1}, nil, EmbedOptions{}); err == nil {
		t.Error("non-embeddable evaluator accepted")
	}
}

// Negative cutoffs are invalid input (satellite fix): New must error
// instead of silently producing a dimerless expansion.
func TestNegativeCutoffRejected(t *testing.T) {
	g := molecule.WaterCluster(2)
	if _, err := ByMolecule(g, 3, 1, Options{DimerCutoff: -1}); err == nil {
		t.Error("negative dimer cutoff accepted")
	}
	if _, err := ByMolecule(g, 3, 1, Options{TrimerCutoff: -0.5}); err == nil {
		t.Error("negative trimer cutoff accepted")
	}
}
