package fragment

import (
	"math"
	"testing"

	"github.com/fragmd/fragmd/internal/molecule"
	"github.com/fragmd/fragmd/internal/potential"
	"github.com/fragmd/fragmd/internal/warmstart"
)

// ComputeWithCache(eval, nil) must reproduce Compute (the assembly
// iterates a map, so summation order — and hence the last bits — can
// differ between runs; compare at accumulation-noise level).
func TestComputeWithNilCacheIsCompute(t *testing.T) {
	g := molecule.WaterCluster(4)
	f, err := ByMolecule(g, 3, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	eval := &potential.LennardJones{}
	a, err := f.Compute(eval)
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.ComputeWithCache(eval, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Energy-b.Energy) > 1e-14 || a.Skipped != 0 || b.Skipped != 0 {
		t.Errorf("nil-cache compute differs: %.17f vs %.17f", a.Energy, b.Energy)
	}
	for i := range a.Gradient {
		if math.Abs(a.Gradient[i]-b.Gradient[i]) > 1e-14 {
			t.Fatal("gradients differ beyond accumulation noise")
		}
	}
}

// Repeated ComputeWithCache on an unchanged geometry must skip every
// polymer (within the staleness bound) and reproduce the energy and
// gradient exactly; once the bound is exhausted everything is
// re-evaluated and the counters reset.
func TestComputeWithCacheSkipCycle(t *testing.T) {
	g := molecule.WaterCluster(3)
	f, err := ByMolecule(g, 3, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	eval := &potential.LennardJones{}
	cache := warmstart.NewCache(0.01, 2)

	first, err := f.ComputeWithCache(eval, cache)
	if err != nil {
		t.Fatal(err)
	}
	if first.Skipped != 0 {
		t.Fatalf("first pass skipped %d polymers", first.Skipped)
	}
	if cache.Len() != first.NPolymers {
		t.Fatalf("cache holds %d states, want %d", cache.Len(), first.NPolymers)
	}
	for pass := 0; pass < 2; pass++ {
		res, err := f.ComputeWithCache(eval, cache)
		if err != nil {
			t.Fatal(err)
		}
		if res.Skipped != first.NPolymers {
			t.Fatalf("pass %d skipped %d of %d", pass, res.Skipped, first.NPolymers)
		}
		if math.Abs(res.Energy-first.Energy) > 1e-14 {
			t.Errorf("skip-reuse energy %.17f != %.17f", res.Energy, first.Energy)
		}
		for i := range first.Gradient {
			if math.Abs(res.Gradient[i]-first.Gradient[i]) > 1e-14 {
				t.Fatal("skip-reuse gradient differs beyond accumulation noise")
			}
		}
	}
	// Staleness bound (2) exhausted: full re-evaluation, counter reset.
	res, err := f.ComputeWithCache(eval, cache)
	if err != nil {
		t.Fatal(err)
	}
	if res.Skipped != 0 {
		t.Errorf("stale pass skipped %d polymers, want 0", res.Skipped)
	}
	res, err = f.ComputeWithCache(eval, cache)
	if err != nil {
		t.Fatal(err)
	}
	if res.Skipped != first.NPolymers {
		t.Errorf("post-reset pass skipped %d, want %d", res.Skipped, first.NPolymers)
	}
}

// A displaced geometry beyond the tolerance must invalidate skip reuse
// for the moved monomer's polymers only.
func TestComputeWithCacheDisplacementInvalidation(t *testing.T) {
	g := molecule.WaterCluster(3)
	f, err := ByMolecule(g, 3, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	eval := &potential.LennardJones{}
	cache := warmstart.NewCache(0.01, 100)
	if _, err := f.ComputeWithCache(eval, cache); err != nil {
		t.Fatal(err)
	}
	// Move one atom of monomer 0 well past the tolerance.
	g.Atoms[0].Pos[0] += 0.5
	res, err := f.ComputeWithCache(eval, cache)
	if err != nil {
		t.Fatal(err)
	}
	// Monomer 0 touches: itself, dimers 0-1, 0-2 and the trimer → 4 of
	// the 7 polymers re-evaluate; monomers 1, 2 and dimer 1-2 skip.
	if res.Skipped != 3 {
		t.Errorf("skipped %d polymers after moving monomer 0, want 3", res.Skipped)
	}
	// The reused polymers are exact, so the energy must match a fresh
	// computation exactly for this additive test case.
	fresh, err := f.Compute(eval)
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(res.Energy - fresh.Energy); d > 1e-12 {
		t.Errorf("cached energy deviates by %.2e", d)
	}
}

// countingEvaluator wraps LJ (without method promotion, so it stays a
// plain, non-stateful Evaluator) and counts real evaluations.
type countingEvaluator struct {
	lj    potential.LennardJones
	calls int
}

func (c *countingEvaluator) Evaluate(g *molecule.Geometry) (float64, []float64, error) {
	c.calls++
	return c.lj.Evaluate(g)
}

// A non-stateful evaluator must still get skip reuse via the minimal
// snapshot path.
func TestComputeWithCacheStatelessEvaluator(t *testing.T) {
	g := molecule.WaterCluster(2)
	f, err := ByMolecule(g, 3, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ev := &countingEvaluator{}
	cache := warmstart.NewCache(0.01, 5)
	if _, err := f.ComputeWithCache(ev, cache); err != nil {
		t.Fatal(err)
	}
	n1 := ev.calls
	res, err := f.ComputeWithCache(ev, cache)
	if err != nil {
		t.Fatal(err)
	}
	if ev.calls != n1 {
		t.Errorf("stateless evaluator called %d more times despite skip reuse", ev.calls-n1)
	}
	if res.Skipped != res.NPolymers {
		t.Errorf("skipped %d of %d", res.Skipped, res.NPolymers)
	}
}
