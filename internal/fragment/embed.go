package fragment

import (
	"fmt"
	"math"
	"sort"

	"github.com/fragmd/fragmd/internal/integrals"
	"github.com/fragmd/fragmd/internal/molecule"
	"github.com/fragmd/fragmd/internal/neighbor"
	"github.com/fragmd/fragmd/internal/warmstart"
)

// This file implements the electrostatically embedded many-body
// expansion (EE-MBE): every monomer/dimer/trimer SCF is evaluated in
// the point-charge field of all monomers outside the polymer, so the
// expansion captures long-range polarisation that bare-fragment MBE
// misses at biomolecular scale. The driver is two-phase:
//
//	phase 1 — per-monomer partial charges (Mulliken), optionally
//	          iterated to self-consistency (each monomer embedded in
//	          the others' charges) with damping;
//	phase 2 — every MBE term evaluated in the resulting charge field,
//	          with the standard MBE coefficients applied to embedded
//	          energies (Dahlke–Truhlar EE-MBE).
//
// With the complete polymer set the fragment–field interaction terms
// cancel exactly in the coefficient sum (each W(I;q_K) appears with
// net coefficient 1 − s_IK where s_IK = Σ_{P ⊇ {I,K}} coeff(P) = 1).
// Under distance cutoffs s_IK < 1 for far pairs and each such pair's
// electrostatics survives once from each side — double counted. The
// driver therefore subtracts (1 − s_IK)·E_qq(I,K), the classical
// charge–charge interaction of the pair, leaving far-pair
// electrostatics counted once (the FMO-style far-pair treatment).
//
// Gradients are analytic under the frozen-charge convention: the
// charge *values* are treated as constants of the geometry (their
// response ∂q/∂R is neglected, the standard EE-MBE gradient
// approximation), while the field *sites* ride on their parent atoms,
// so every embedding force — on fragment atoms, H-caps and field
// sites — folds back onto the parent system exactly.

// EmbeddedEvaluator evaluates a standalone fragment geometry inside an
// external point-charge field, returning additionally the gradient on
// the field sites (charges held fixed). prev optionally warm-starts
// the SCF; the returned state must snapshot the field
// (warmstart.State.SnapshotField) so the cache can detect stale
// charges. A nil field must reproduce Evaluate exactly.
type EmbeddedEvaluator interface {
	Evaluator
	EvaluateEmbedded(g *molecule.Geometry, field *integrals.PointCharges, prev *warmstart.State) (energy float64, grad, fieldGrad []float64, next *warmstart.State, err error)
}

// ChargeSource computes per-atom partial charges of a standalone
// fragment geometry, optionally itself embedded in a field — the
// phase-1 primitive of EE-MBE. iters reports SCF iterations (0 for
// stateless models).
type ChargeSource interface {
	PartialCharges(g *molecule.Geometry, field *integrals.PointCharges) (q []float64, iters int, err error)
}

// EmbedOptions configures the two-phase EE-MBE driver.
type EmbedOptions struct {
	// SCC is the number of self-consistent charge refinement rounds
	// beyond the initial vacuum round: 0 embeds phase 2 in vacuum
	// monomer charges; r > 0 re-derives each monomer's charges embedded
	// in the others' charges r times.
	SCC int
	// SCCTol stops the SCC iteration early once max |Δq| < SCCTol (e).
	// 0 runs all SCC rounds unconditionally — the mode the asynchronous
	// engine uses, where the task graph is static.
	SCCTol float64
	// Damping mixes each SCC round with the previous charges,
	// q ← (1−Damping)·q_new + Damping·q_old, for 0 ≤ Damping < 1.
	// 0 disables mixing. The vacuum round is never damped.
	Damping float64
}

// Validate rejects malformed embed options (shared by the serial
// driver and the asynchronous engine).
func (eo *EmbedOptions) Validate() error {
	if eo.SCC < 0 {
		return fmt.Errorf("fragment: SCC round count %d must not be negative", eo.SCC)
	}
	if eo.SCCTol < 0 {
		return fmt.Errorf("fragment: SCC tolerance %g must not be negative", eo.SCCTol)
	}
	if eo.Damping < 0 || eo.Damping >= 1 {
		return fmt.Errorf("fragment: damping %g outside [0, 1)", eo.Damping)
	}
	return nil
}

// Rounds returns the total number of charge rounds (vacuum + SCC).
func (eo EmbedOptions) Rounds() int { return 1 + eo.SCC }

// Field is an embedding point-charge field whose sites sit on parent
// atoms, with the mapping needed to fold site forces back.
type Field struct {
	Charges integrals.PointCharges
	Parent  []int // site → parent atom index
}

// PC returns the field as the integrals-layer type (nil when empty, so
// vacuum and empty-field evaluations are indistinguishable).
func (fl *Field) PC() *integrals.PointCharges {
	if fl == nil || len(fl.Charges.Q) == 0 {
		return nil
	}
	return &fl.Charges
}

// FoldGradient adds factor·fieldGrad onto the parent atoms backing the
// sites. Because each site sits exactly on its parent atom (frozen
// charge values), the site force *is* the parent-atom share of the
// embedding force — no chain rule beyond the identity.
func (fl *Field) FoldGradient(fieldGrad []float64, factor float64, parentGrad []float64) {
	if fl == nil || fieldGrad == nil {
		return
	}
	for s, pa := range fl.Parent {
		for k := 0; k < 3; k++ {
			parentGrad[3*pa+k] += factor * fieldGrad[3*s+k]
		}
	}
}

// FieldFor builds the embedding field of polymer p from per-parent-atom
// charges: a site on every atom outside p's monomers, except the
// cap-partner (outer) atoms of p's cut bonds — those atoms are
// represented by the H-caps already, and a point charge on top of a cap
// hydrogen would double-count the severed bond. Zero-charge sites are
// dropped. pos supplies atom positions (the scheduler's per-step
// histories, or the current geometry).
//
// Under a finite Opts.FieldCutoff only monomers whose centroid lies
// within the cutoff of some member monomer's centroid contribute sites
// (minimum-image distances when periodic). For repeated assembly over
// one position snapshot, NewFieldAssembler amortises the centroid pass
// and the cell list across polymers; this entry point recomputes them,
// which the asynchronous scheduler needs anyway because every polymer
// evaluates at its own time step. Periodic field sites are emitted at
// the nearest image relative to the first member monomer's centroid,
// matching the image convention of ExtractAt.
func (f *Fragmentation) FieldFor(p Polymer, charges []float64, pos func(atom int) [3]float64) *Field {
	if math.IsInf(f.Opts.FieldCutoff, 1) && f.Geom.Cell == nil {
		return f.fieldFull(p, charges, pos)
	}
	return f.fieldLocal(p, charges, pos, f.centroidsAt(pos), nil)
}

// fieldFull is the untruncated open-boundary field: every non-excluded
// atom in index order — the exact pre-cutoff code path.
func (f *Fragmentation) fieldFull(p Polymer, charges []float64, pos func(atom int) [3]float64) *Field {
	exclude := f.fieldExclusion(p)
	fl := &Field{}
	for a := 0; a < f.Geom.N(); a++ {
		if exclude[a] || charges[a] == 0 {
			continue
		}
		xyz := pos(a)
		fl.Charges.Pos = append(fl.Charges.Pos, xyz[0], xyz[1], xyz[2])
		fl.Charges.Q = append(fl.Charges.Q, charges[a])
		fl.Parent = append(fl.Parent, a)
	}
	return fl
}

// fieldExclusion returns the atoms carrying no field site for polymer
// p: its members plus the cut-bond outer partners (see FieldFor).
func (f *Fragmentation) fieldExclusion(p Polymer) map[int]bool {
	exclude := map[int]bool{}
	for _, mi := range p.Monomers {
		for _, a := range f.Monomers[mi].Atoms {
			exclude[a] = true
		}
	}
	for _, b := range f.cutBonds {
		switch {
		case exclude[b[0]] && !exclude[b[1]]:
			exclude[b[1]] = true
		case exclude[b[1]] && !exclude[b[0]]:
			exclude[b[0]] = true
		}
	}
	return exclude
}

// fieldLocal builds the cutoff-local (and/or periodic) field. A monomer
// contributes sites when its centroid lies within FieldCutoff of any
// member monomer's centroid; src, when non-nil, answers those queries
// through the cell list, otherwise a direct scan decides with the exact
// same squared-distance arithmetic, so both paths agree bitwise. Sites
// are emitted in atom-index order to match fieldFull.
func (f *Fragmentation) fieldLocal(p Polymer, charges []float64, pos func(atom int) [3]float64, cents [][3]float64, src neighbor.Source) *Field {
	n := len(f.Monomers)
	rc := f.Opts.FieldCutoff
	include := make([]bool, n)
	if math.IsInf(rc, 1) {
		for i := range include {
			include[i] = true
		}
	} else if src != nil {
		for _, mi := range p.Monomers {
			src.Near(cents[mi], rc, func(j int) bool {
				include[j] = true
				return true
			})
		}
	} else {
		rc2 := rc * rc
		for _, mi := range p.Monomers {
			for j := 0; j < n; j++ {
				if !include[j] && f.centroidDistSq(cents[mi], cents[j]) <= rc2 {
					include[j] = true
				}
			}
		}
	}
	exclude := f.fieldExclusion(p)
	var atoms []int
	for j := 0; j < n; j++ {
		if include[j] {
			atoms = append(atoms, f.Monomers[j].Atoms...)
		}
	}
	sort.Ints(atoms)
	ref := f.monomerCentroidAt(p.Monomers[0], pos)
	fl := &Field{}
	for _, a := range atoms {
		if exclude[a] || charges[a] == 0 {
			continue
		}
		xyz := f.nearestImageOf(pos(a), ref)
		fl.Charges.Pos = append(fl.Charges.Pos, xyz[0], xyz[1], xyz[2])
		fl.Charges.Q = append(fl.Charges.Q, charges[a])
		fl.Parent = append(fl.Parent, a)
	}
	return fl
}

// FieldAssembler amortises EE-MBE field construction across the
// polymers of one pass: monomer centroids and the cell list over them
// are built once per (charges, positions) snapshot instead of per
// polymer. The serial driver and the scaling bench use it; results are
// bitwise identical to per-polymer FieldFor calls.
type FieldAssembler struct {
	f       *Fragmentation
	charges []float64
	pos     func(atom int) [3]float64
	cents   [][3]float64
	src     neighbor.Source
}

// NewFieldAssembler prepares field assembly over one position/charge
// snapshot.
func (f *Fragmentation) NewFieldAssembler(charges []float64, pos func(atom int) [3]float64) *FieldAssembler {
	fa := &FieldAssembler{f: f, charges: charges, pos: pos}
	if !math.IsInf(f.Opts.FieldCutoff, 1) || f.Geom.Cell != nil {
		fa.cents = f.centroidsAt(pos)
		fa.src = f.centroidSource(fa.cents)
	}
	return fa
}

// FieldFor builds polymer p's embedding field from the shared pass
// state.
func (fa *FieldAssembler) FieldFor(p Polymer) *Field {
	if fa.src == nil {
		return fa.f.fieldFull(p, fa.charges, fa.pos)
	}
	return fa.f.fieldLocal(p, fa.charges, fa.pos, fa.cents, fa.src)
}

// FoldCharges maps a capped fragment's per-atom charges back onto the
// parent system: real atoms map through ParentAtom, and each H-cap's
// charge is added to its inner bond atom (so every monomer's folded
// charges sum to the fragment's total charge). Entries accumulate into
// out (length = parent atom count).
func (ex *Extracted) FoldCharges(fragQ []float64, out []float64) {
	nReal := len(ex.ParentAtom)
	for i, pa := range ex.ParentAtom {
		out[pa] += fragQ[i]
	}
	for ci, cap := range ex.Caps {
		out[cap.Inner] += fragQ[nReal+ci]
	}
}

// MonomerCharges runs EE-MBE phase 1: per-monomer partial charges on
// the parent atoms, with optional self-consistent refinement (each
// monomer embedded in the others' current charges), damping and early
// convergence stop. It returns the charges, the total SCF iteration
// count, and the number of rounds actually run.
func (f *Fragmentation) MonomerCharges(cs ChargeSource, eo EmbedOptions) (q []float64, iters, rounds int, err error) {
	if err := eo.Validate(); err != nil {
		return nil, 0, 0, err
	}
	n := f.Geom.N()
	q = make([]float64, n)
	pos := func(a int) [3]float64 { return f.Geom.Atoms[a].Pos }
	for round := 0; round < eo.Rounds(); round++ {
		qNew := make([]float64, n)
		var fa *FieldAssembler
		if round > 0 {
			fa = f.NewFieldAssembler(q, pos)
		}
		for mi := range f.Monomers {
			p := Polymer{Monomers: []int{mi}}
			ex := f.Extract(p)
			var field *integrals.PointCharges
			if fa != nil {
				field = fa.FieldFor(p).PC()
			}
			fq, it, err := cs.PartialCharges(ex.Geom, field)
			if err != nil {
				return nil, 0, 0, fmt.Errorf("fragment: monomer %d charges (round %d): %w", mi, round, err)
			}
			if len(fq) != ex.Geom.N() {
				return nil, 0, 0, fmt.Errorf("fragment: monomer %d charges: got %d values for %d atoms",
					mi, len(fq), ex.Geom.N())
			}
			iters += it
			ex.FoldCharges(fq, qNew)
		}
		var maxD float64
		if round > 0 {
			if eo.Damping > 0 {
				for i := range qNew {
					qNew[i] = (1-eo.Damping)*qNew[i] + eo.Damping*q[i]
				}
			}
			for i := range qNew {
				if d := math.Abs(qNew[i] - q[i]); d > maxD {
					maxD = d
				}
			}
		}
		q = qNew
		rounds = round + 1
		if round > 0 && eo.SCCTol > 0 && maxD < eo.SCCTol {
			break
		}
	}
	return q, iters, rounds, nil
}

// EvaluateEmbeddedWithCache is EvaluateWithCache for embedded polymer
// evaluations: skip reuse additionally requires the embedding field to
// sit inside the cache's tolerance (stale charges invalidate), and the
// cached field-site gradient rides along with the energy/gradient.
func EvaluateEmbeddedWithCache(eval EmbeddedEvaluator, cache *warmstart.Cache, key string, g *molecule.Geometry, field *Field) (e float64, grad, fieldGrad []float64, iters int, skipped bool, err error) {
	pc := field.PC()
	var fpos, fq []float64
	if pc != nil {
		fpos, fq = pc.Pos, pc.Q
	}
	if cache != nil {
		if st, ok := cache.ReuseEmbedded(key, g, fpos, fq); ok {
			return st.Energy, st.Grad, st.FieldGrad, 0, true, nil
		}
	}
	var prev *warmstart.State
	if cache != nil {
		prev = cache.Guess(key, g)
	}
	e, grad, fieldGrad, st, err := eval.EvaluateEmbedded(g, pc, prev)
	if err != nil {
		return 0, nil, nil, 0, false, err
	}
	if st != nil {
		iters = st.SCFIters
		if cache != nil {
			cache.Put(key, st)
		}
	}
	return e, grad, fieldGrad, iters, false, nil
}

// PairInclusion returns s_IJ = Σ_{P ⊇ {I,J}} coeff(P) for every
// monomer pair, keyed [I*n+J] with I < J. s_IJ = 1 marks a pair fully
// treated by the expansion; the residual 1 − s_IJ is the weight of the
// surviving (double-counted) embedding interaction. The result depends
// only on the enumeration, so both the serial driver and the
// asynchronous engine compute it once per fragmentation.
func (f *Fragmentation) PairInclusion() []float64 {
	terms := f.Terms()
	return pairInclusion(len(f.Monomers), terms.All(), terms.Coefficients())
}

func pairInclusion(nMono int, all []Polymer, coeff map[string]float64) []float64 {
	s := make([]float64, nMono*nMono)
	for _, p := range all {
		c := coeff[p.Key()]
		if c == 0 {
			continue
		}
		for x := 0; x < len(p.Monomers); x++ {
			for y := x + 1; y < len(p.Monomers); y++ {
				i, j := p.Monomers[x], p.Monomers[y]
				if i > j {
					i, j = j, i
				}
				s[i*nMono+j] += c
			}
		}
	}
	return s
}

// PairResidual computes the double-counted far-pair electrostatics
// correction: for every monomer pair with s_IJ ≠ 1 (s from
// PairInclusion), −(1 − s_IJ)·E_qq(I,J), the classical charge–charge
// interaction of the pair's embedding charges at the given positions.
// The returned energy is the total correction (to *add* to the
// coefficient-weighted embedded sum); its analytic gradient
// accumulates into grad when non-nil. With full polymer coverage (no
// cutoffs) every s_IJ is 1 and the correction vanishes identically.
// Under a finite Opts.FieldCutoff the correction is restricted to
// pairs within the cutoff (centroid distance, enumerated through the
// cell list): monomers beyond it contribute no field sites, so there
// is no double-counted interaction to remove — beyond-cutoff
// electrostatics is simply neglected, the documented truncation. On a
// periodic geometry each pair interacts through its minimum image.
func (f *Fragmentation) PairResidual(s, charges []float64, pos func(atom int) [3]float64, grad []float64) float64 {
	n := len(f.Monomers)
	var corr float64
	pair := func(i, j int) {
		w := 1 - s[i*n+j]
		if math.Abs(w) < 1e-12 {
			return
		}
		for _, a := range f.Monomers[i].Atoms {
			qa := charges[a]
			if qa == 0 {
				continue
			}
			pa := pos(a)
			for _, b := range f.Monomers[j].Atoms {
				qb := charges[b]
				if qb == 0 {
					continue
				}
				pb := f.nearestImageOf(pos(b), pa)
				e, dA := integrals.CoulombPairTerm(pa, pb, qa, qb)
				corr -= w * e
				if grad != nil {
					for k := 0; k < 3; k++ {
						grad[3*a+k] -= w * dA[k]
						grad[3*b+k] += w * dA[k]
					}
				}
			}
		}
	}
	if math.IsInf(f.Opts.FieldCutoff, 1) {
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				pair(i, j)
			}
		}
		return corr
	}
	cents := f.centroidsAt(pos)
	f.centroidSource(cents).Pairs(f.Opts.FieldCutoff, func(i, j int) bool {
		pair(i, j)
		return true
	})
	return corr
}

// ComputeEmbedded evaluates the electrostatically embedded MBE: phase 1
// derives monomer charges (MonomerCharges), phase 2 evaluates every
// polymer in the resulting field, folding fragment, H-cap and
// field-site gradients back onto the parent system, and the far-pair
// residual correction removes the electrostatics the truncated
// expansion double-counts. The evaluator must implement both
// EmbeddedEvaluator and ChargeSource. A nil cache disables reuse, as
// in Compute.
func (f *Fragmentation) ComputeEmbedded(eval Evaluator, cache *warmstart.Cache, eo EmbedOptions) (*Result, error) {
	ee, ok := eval.(EmbeddedEvaluator)
	if !ok {
		return nil, fmt.Errorf("fragment: evaluator %T cannot evaluate embedded fragments", eval)
	}
	cs, ok := eval.(ChargeSource)
	if !ok {
		return nil, fmt.Errorf("fragment: evaluator %T cannot derive monomer charges", eval)
	}
	charges, chargeIters, rounds, err := f.MonomerCharges(cs, eo)
	if err != nil {
		return nil, err
	}

	terms := f.Terms()
	coeff := terms.Coefficients()
	all := terms.All()
	res := &Result{
		Gradient:   make([]float64, 3*f.Geom.N()),
		NPolymers:  len(all),
		PolymerE:   map[string]float64{},
		DeltaDimer: map[string]float64{},
		DeltaTri:   map[string]float64{},
		Charges:    charges,
		SCCRounds:  rounds,
		SCFIters:   chargeIters,
	}
	pos := func(a int) [3]float64 { return f.Geom.Atoms[a].Pos }
	fa := f.NewFieldAssembler(charges, pos)
	grads := map[string][]float64{}
	fieldGrads := map[string][]float64{}
	extracts := map[string]*Extracted{}
	fields := map[string]*Field{}
	for _, p := range all {
		key := p.Key()
		if _, done := res.PolymerE[key]; done {
			return nil, fmt.Errorf("fragment: polymer %s enumerated twice", key)
		}
		ex := f.Extract(p)
		fl := fa.FieldFor(p)
		e, g, fg, iters, skipped, err := EvaluateEmbeddedWithCache(ee, cache, key, ex.Geom, fl)
		if err != nil {
			return nil, fmt.Errorf("fragment: polymer %s: %w", key, err)
		}
		res.SCFIters += iters
		if skipped {
			res.Skipped++
		}
		res.PolymerE[key] = e
		grads[key] = g
		fieldGrads[key] = fg
		extracts[key] = ex
		fields[key] = fl
	}

	// Deterministic assembly order — see ComputeWithCache: the goldens
	// compare bit-for-bit, so never iterate a map here.
	allGrads := true
	for _, p := range all {
		key := p.Key()
		c := coeff[key]
		if c == 0 {
			continue
		}
		res.Energy += c * res.PolymerE[key]
		if grads[key] == nil {
			allGrads = false // energy-only evaluator
			continue
		}
		extracts[key].FoldGradient(grads[key], c, res.Gradient)
		fields[key].FoldGradient(fieldGrads[key], c, res.Gradient)
	}
	if !allGrads {
		res.Gradient = nil
	}

	s := pairInclusion(len(f.Monomers), all, coeff)
	res.EPairResidual = f.PairResidual(s, charges, pos, res.Gradient)
	res.Energy += res.EPairResidual

	// ΔE bookkeeping (embedded deltas: field terms of the pair cancel).
	mKey := func(i int) string { return Polymer{Monomers: []int{i}}.Key() }
	for _, d := range terms.Dimers {
		res.DeltaDimer[d.Key()] = res.PolymerE[d.Key()] -
			res.PolymerE[mKey(d.Monomers[0])] - res.PolymerE[mKey(d.Monomers[1])]
	}
	for _, tr := range terms.Trimers {
		i, j, k := tr.Monomers[0], tr.Monomers[1], tr.Monomers[2]
		delta := res.PolymerE[tr.Key()]
		for _, d := range [][2]int{{i, j}, {i, k}, {j, k}} {
			delta -= res.PolymerE[Polymer{Monomers: []int{d[0], d[1]}}.Key()]
		}
		delta += res.PolymerE[mKey(i)] + res.PolymerE[mKey(j)] + res.PolymerE[mKey(k)]
		res.DeltaTri[tr.Key()] = delta
	}
	return res, nil
}
