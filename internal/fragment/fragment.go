// Package fragment implements the many-body expansion (MBE) molecular
// fragmentation of the paper (§V-B): the system is partitioned into
// monomers; dimer and trimer corrections within distance cutoffs
// reconstruct the total energy and gradient,
//
//	E = Σ_I E_I + Σ_{I<J} ΔE_IJ + Σ_{I<J<K} ΔE_IJK
//
// with ΔE_IJ = E_IJ − E_I − E_J and
// ΔE_IJK = E_IJK − E_IJ − E_IK − E_JK + E_I + E_J + E_K.
//
// Fragments whose monomers are covalently bonded are severed at single
// bonds and capped with hydrogens (H-caps); cap positions are functions
// of the two atoms of the cut bond, and the cap forces are distributed
// back onto those atoms with the exact chain rule.
package fragment

import (
	"fmt"
	"math"
	"sort"

	"github.com/fragmd/fragmd/internal/chem"
	"github.com/fragmd/fragmd/internal/molecule"
)

// Monomer is a set of atom indices of the parent system treated as one
// fragmentation unit.
type Monomer struct {
	Atoms []int
}

// Polymer identifies a monomer, dimer or trimer by the sorted indices of
// its constituent monomers.
type Polymer struct {
	Monomers []int // 1, 2 or 3 sorted monomer indices
}

// Order returns 1, 2 or 3.
func (p Polymer) Order() int { return len(p.Monomers) }

// Key returns a canonical map key.
func (p Polymer) Key() string {
	switch len(p.Monomers) {
	case 1:
		return fmt.Sprintf("%d", p.Monomers[0])
	case 2:
		return fmt.Sprintf("%d-%d", p.Monomers[0], p.Monomers[1])
	default:
		return fmt.Sprintf("%d-%d-%d", p.Monomers[0], p.Monomers[1], p.Monomers[2])
	}
}

// Options controls fragmentation.
type Options struct {
	// DimerCutoff and TrimerCutoff are centroid-distance thresholds in
	// Bohr. A dimer (I,J) is included when dist(I,J) ≤ DimerCutoff; a
	// trimer when all three pairwise distances are ≤ TrimerCutoff.
	//
	// The zero value means *no cutoff* (+Inf) — this is the one place
	// that convention is defined; every consumer goes through fill().
	// Negative cutoffs are invalid and rejected by New with an error
	// (they would silently produce an expansion with no dimers at all).
	DimerCutoff  float64
	TrimerCutoff float64
	// MaxOrder is 2 for MBE2, 3 for MBE3 (default 3).
	MaxOrder int
	// BondScale scales covalent radii for bond detection (default 1.25).
	BondScale float64
	// CapDistance is the H-cap bond length in Bohr (default: 1.09 Å).
	CapDistance float64
}

func (o *Options) fill() {
	if o.MaxOrder == 0 {
		o.MaxOrder = 3
	}
	if o.BondScale == 0 {
		o.BondScale = 1.25
	}
	if o.CapDistance == 0 {
		o.CapDistance = 1.09 * chem.BohrPerAngstrom
	}
	// 0 means no cutoff — see the Options.DimerCutoff doc, the single
	// home of that convention. Negative values never reach here (New
	// rejects them).
	if o.DimerCutoff == 0 {
		o.DimerCutoff = math.Inf(1)
	}
	if o.TrimerCutoff == 0 {
		o.TrimerCutoff = math.Inf(1)
	}
}

// Fragmentation holds the monomer partition and bond-cut bookkeeping for
// a molecular system.
type Fragmentation struct {
	Geom     *molecule.Geometry
	Monomers []Monomer
	Opts     Options

	atomMonomer []int    // atom index → monomer index
	cutBonds    [][2]int // bonds (a, b) crossing monomer boundaries
}

// New builds a Fragmentation from an explicit monomer partition. Every
// atom must belong to exactly one monomer. Bonds crossing monomer
// boundaries are detected from covalent radii and recorded for H-capping.
func New(g *molecule.Geometry, monomers [][]int, opts Options) (*Fragmentation, error) {
	if opts.DimerCutoff < 0 || opts.TrimerCutoff < 0 {
		return nil, fmt.Errorf("fragment: negative cutoff (dimer %g, trimer %g Bohr); use 0 for no cutoff",
			opts.DimerCutoff, opts.TrimerCutoff)
	}
	opts.fill()
	f := &Fragmentation{Geom: g, Opts: opts}
	f.atomMonomer = make([]int, g.N())
	for i := range f.atomMonomer {
		f.atomMonomer[i] = -1
	}
	for mi, atoms := range monomers {
		f.Monomers = append(f.Monomers, Monomer{Atoms: append([]int(nil), atoms...)})
		for _, a := range atoms {
			if a < 0 || a >= g.N() {
				return nil, fmt.Errorf("fragment: atom index %d out of range", a)
			}
			if f.atomMonomer[a] != -1 {
				return nil, fmt.Errorf("fragment: atom %d assigned to two monomers", a)
			}
			f.atomMonomer[a] = mi
		}
	}
	for i, m := range f.atomMonomer {
		if m == -1 {
			return nil, fmt.Errorf("fragment: atom %d not assigned to any monomer", i)
		}
	}
	for _, b := range g.Bonds(opts.BondScale) {
		if f.atomMonomer[b[0]] != f.atomMonomer[b[1]] {
			f.cutBonds = append(f.cutBonds, b)
		}
	}
	return f, nil
}

// ByMolecule partitions a geometry into monomers of consecutive
// molecules of size atomsPerMol (for the crystal/cluster builders whose
// atoms are emitted molecule by molecule), grouping molsPerMonomer
// molecules into each monomer (the paper uses 1 for paracetamol and 4
// for the urea runs).
func ByMolecule(g *molecule.Geometry, atomsPerMol, molsPerMonomer int, opts Options) (*Fragmentation, error) {
	if g.N()%atomsPerMol != 0 {
		return nil, fmt.Errorf("fragment: %d atoms not divisible by %d", g.N(), atomsPerMol)
	}
	nmol := g.N() / atomsPerMol
	var monomers [][]int
	for m := 0; m < nmol; m += molsPerMonomer {
		var atoms []int
		for k := m; k < m+molsPerMonomer && k < nmol; k++ {
			for a := 0; a < atomsPerMol; a++ {
				atoms = append(atoms, k*atomsPerMol+a)
			}
		}
		monomers = append(monomers, atoms)
	}
	return New(g, monomers, opts)
}

// Centroid returns the centroid of monomer mi at the current geometry.
func (f *Fragmentation) Centroid(mi int) [3]float64 {
	return f.Geom.CentroidOf(f.Monomers[mi].Atoms)
}

// MonomerDist returns the centroid distance between two monomers (Bohr).
func (f *Fragmentation) MonomerDist(i, j int) float64 {
	return molecule.Dist(f.Centroid(i), f.Centroid(j))
}

// Polymers enumerates every polymer requiring evaluation under the
// configured cutoffs (monomers, dimers — including those needed only as
// trimer constituents — and trimers). See Terms for the classified form.
func (f *Fragmentation) Polymers() []Polymer {
	return f.Terms().All()
}

// Cap describes one hydrogen cap: a hydrogen placed along the cut bond
// a→b at fixed distance from a. Its position depends on both atoms, so
// its force Jacobian spreads onto both.
type Cap struct {
	Inner int // atom kept in the fragment
	Outer int // atom replaced by the cap
}

// Extracted is a polymer's standalone geometry plus the bookkeeping to
// fold its gradient back onto the parent system.
type Extracted struct {
	Geom *molecule.Geometry
	// ParentAtom[i] is the parent-system atom for fragment atom i
	// (the inner/real atoms; caps are appended after them).
	ParentAtom []int
	Caps       []Cap

	capDist        float64
	outerPositions map[Cap][3]float64 // cut-bond outer atom snapshots
}

// Extract builds the standalone geometry of a polymer: the union of its
// monomers' atoms plus hydrogen caps for every bond cut by the polymer
// boundary. Positions are taken from the parent geometry.
func (f *Fragmentation) Extract(p Polymer) *Extracted {
	return f.ExtractAt(p, func(a int) [3]float64 { return f.Geom.Atoms[a].Pos })
}

// TouchSet returns the monomers whose positions a polymer evaluation
// depends on: its own members plus the monomers owning the outer atoms
// of cut bonds (whose positions define the H-caps). This is the
// dependency set of the asynchronous time-step scheme (§V-F).
func (f *Fragmentation) TouchSet(p Polymer) []int {
	inSet := map[int]bool{}
	for _, mi := range p.Monomers {
		inSet[mi] = true
	}
	out := append([]int(nil), p.Monomers...)
	memberAtom := map[int]bool{}
	for _, mi := range p.Monomers {
		for _, a := range f.Monomers[mi].Atoms {
			memberAtom[a] = true
		}
	}
	for _, b := range f.cutBonds {
		var outer int
		switch {
		case memberAtom[b[0]] && !memberAtom[b[1]]:
			outer = b[1]
		case memberAtom[b[1]] && !memberAtom[b[0]]:
			outer = b[0]
		default:
			continue
		}
		om := f.atomMonomer[outer]
		if !inSet[om] {
			inSet[om] = true
			out = append(out, om)
		}
	}
	sort.Ints(out)
	return out
}

// ExtractAt is Extract with an explicit position source, used by the
// asynchronous scheduler to build a polymer's geometry from per-monomer
// position histories at a specific time step.
func (f *Fragmentation) ExtractAt(p Polymer, pos func(atom int) [3]float64) *Extracted {
	inSet := map[int]bool{}
	for _, mi := range p.Monomers {
		for _, a := range f.Monomers[mi].Atoms {
			inSet[a] = true
		}
	}
	ex := &Extracted{Geom: molecule.New(), capDist: f.Opts.CapDistance}
	var atoms []int
	for _, mi := range p.Monomers {
		atoms = append(atoms, f.Monomers[mi].Atoms...)
	}
	sort.Ints(atoms)
	for _, a := range atoms {
		xyz := pos(a)
		ex.Geom.AddAtom(f.Geom.Atoms[a].Z, xyz[0], xyz[1], xyz[2])
		ex.ParentAtom = append(ex.ParentAtom, a)
	}
	for _, b := range f.cutBonds {
		var inner, outer int
		switch {
		case inSet[b[0]] && !inSet[b[1]]:
			inner, outer = b[0], b[1]
		case inSet[b[1]] && !inSet[b[0]]:
			inner, outer = b[1], b[0]
		default:
			continue // bond fully inside or fully outside
		}
		cap := Cap{Inner: inner, Outer: outer}
		ex.Caps = append(ex.Caps, cap)
		if ex.outerPositions == nil {
			ex.outerPositions = map[Cap][3]float64{}
		}
		ex.outerPositions[cap] = pos(outer)
		capXYZ := capPosition(pos(inner), pos(outer), f.Opts.CapDistance)
		ex.Geom.AddAtom(1, capXYZ[0], capXYZ[1], capXYZ[2])
	}
	return ex
}

// AtomMonomer returns the monomer index owning each atom.
func (f *Fragmentation) AtomMonomer() []int {
	return append([]int(nil), f.atomMonomer...)
}

// capPosition places the hydrogen at distance d from inner along the
// inner→outer direction.
func capPosition(inner, outer [3]float64, d float64) [3]float64 {
	var u [3]float64
	var norm float64
	for k := 0; k < 3; k++ {
		u[k] = outer[k] - inner[k]
		norm += u[k] * u[k]
	}
	norm = math.Sqrt(norm)
	var out [3]float64
	for k := 0; k < 3; k++ {
		out[k] = inner[k] + d*u[k]/norm
	}
	return out
}

// FoldGradient maps a fragment gradient (3 × fragment atoms) back onto
// the parent system with factor, applying the exact H-cap chain rule:
// the cap position C(x_in, x_out) = x_in + d·u/|u| contributes
// ∂C/∂x_in and ∂C/∂x_out terms to both bond atoms.
func (ex *Extracted) FoldGradient(fragGrad []float64, factor float64, parentGrad []float64) {
	nReal := len(ex.ParentAtom)
	for i, pa := range ex.ParentAtom {
		for k := 0; k < 3; k++ {
			parentGrad[3*pa+k] += factor * fragGrad[3*i+k]
		}
	}
	for ci, cap := range ex.Caps {
		gi := 3 * (nReal + ci)
		inner := ex.innerPos(cap)
		outer := ex.outerPos(cap)
		var u [3]float64
		var norm float64
		for k := 0; k < 3; k++ {
			u[k] = outer[k] - inner[k]
			norm += u[k] * u[k]
		}
		norm = math.Sqrt(norm)
		d := ex.capDist
		// ∂C_k/∂out_l = d/|u| (δ_kl − û_k û_l); ∂C_k/∂in_l = δ_kl − ∂C_k/∂out_l.
		for l := 0; l < 3; l++ {
			var gOut float64
			for k := 0; k < 3; k++ {
				jac := d / norm * (delta(k, l) - u[k]*u[l]/(norm*norm))
				gOut += fragGrad[gi+k] * jac
			}
			gIn := fragGrad[gi+l] - gOut
			parentGrad[3*cap.Inner+l] += factor * gIn
			parentGrad[3*cap.Outer+l] += factor * gOut
		}
	}
}

func delta(a, b int) float64 {
	if a == b {
		return 1
	}
	return 0
}

// innerPos/outerPos read the parent positions backing a cap. The parent
// geometry is reachable through the stored positions at extraction time;
// Extracted keeps its own copies inside Geom for the inner atom, so the
// cap Jacobian is evaluated from the fragment's snapshot.
func (ex *Extracted) innerPos(c Cap) [3]float64 { return ex.posOfParent(c.Inner) }

func (ex *Extracted) posOfParent(parent int) [3]float64 {
	for i, pa := range ex.ParentAtom {
		if pa == parent {
			return ex.Geom.Atoms[i].Pos
		}
	}
	panic("fragment: cap parent atom not in fragment")
}

// outerPos reconstructs the outer-atom position from the cap placement:
// C = in + d·(out−in)/|out−in| does not retain |out−in|, so Extracted
// stores the outer position explicitly at extraction time.
func (ex *Extracted) outerPos(c Cap) [3]float64 {
	if ex.outerPositions == nil {
		panic("fragment: outer positions not recorded")
	}
	return ex.outerPositions[c]
}
