// Package fragment implements the many-body expansion (MBE) molecular
// fragmentation of the paper (§V-B): the system is partitioned into
// monomers; dimer and trimer corrections within distance cutoffs
// reconstruct the total energy and gradient,
//
//	E = Σ_I E_I + Σ_{I<J} ΔE_IJ + Σ_{I<J<K} ΔE_IJK
//
// with ΔE_IJ = E_IJ − E_I − E_J and
// ΔE_IJK = E_IJK − E_IJ − E_IK − E_JK + E_I + E_J + E_K.
//
// Fragments whose monomers are covalently bonded are severed at single
// bonds and capped with hydrogens (H-caps); cap positions are functions
// of the two atoms of the cut bond, and the cap forces are distributed
// back onto those atoms with the exact chain rule.
package fragment

import (
	"fmt"
	"math"
	"sort"

	"github.com/fragmd/fragmd/internal/chem"
	"github.com/fragmd/fragmd/internal/molecule"
	"github.com/fragmd/fragmd/internal/neighbor"
)

// Monomer is a set of atom indices of the parent system treated as one
// fragmentation unit.
type Monomer struct {
	Atoms []int
}

// Polymer identifies a monomer, dimer or trimer by the sorted indices of
// its constituent monomers.
type Polymer struct {
	Monomers []int // 1, 2 or 3 sorted monomer indices
}

// Order returns 1, 2 or 3.
func (p Polymer) Order() int { return len(p.Monomers) }

// Key returns a canonical map key.
func (p Polymer) Key() string {
	switch len(p.Monomers) {
	case 1:
		return fmt.Sprintf("%d", p.Monomers[0])
	case 2:
		return fmt.Sprintf("%d-%d", p.Monomers[0], p.Monomers[1])
	default:
		return fmt.Sprintf("%d-%d-%d", p.Monomers[0], p.Monomers[1], p.Monomers[2])
	}
}

// Options controls fragmentation.
type Options struct {
	// DimerCutoff and TrimerCutoff are centroid-distance thresholds in
	// Bohr. A dimer (I,J) is included when dist(I,J) ≤ DimerCutoff; a
	// trimer when all three pairwise distances are ≤ TrimerCutoff.
	//
	// The zero value means *no cutoff* (+Inf) — this is the one place
	// that convention is defined; every consumer goes through fill().
	// Negative cutoffs are invalid and rejected by New with an error
	// (they would silently produce an expansion with no dimers at all).
	DimerCutoff  float64
	TrimerCutoff float64
	// MaxOrder is 2 for MBE2, 3 for MBE3 (default 3).
	MaxOrder int
	// BondScale scales covalent radii for bond detection (default 1.25).
	BondScale float64
	// CapDistance is the H-cap bond length in Bohr (default: 1.09 Å).
	CapDistance float64
	// FieldCutoff truncates the EE-MBE embedding field at a centroid
	// distance in Bohr: only monomers within FieldCutoff of a polymer
	// member contribute point-charge sites, and the far-pair residual is
	// restricted to pairs inside the same radius. The zero value means
	// no truncation (+Inf) — every external monomer contributes, the
	// exact pre-cutoff behaviour. Negative values are rejected by New.
	FieldCutoff float64
	// Brute forces the O(N²)/O(N³) direct-scan neighbor oracle instead
	// of the cell list for polymer enumeration and field assembly. The
	// two must agree exactly (equivalence-tested); Brute exists for A/B
	// checks and as the reference in the scaling bench.
	Brute bool
}

func (o *Options) fill() {
	if o.MaxOrder == 0 {
		o.MaxOrder = 3
	}
	if o.BondScale == 0 {
		o.BondScale = 1.25
	}
	if o.CapDistance == 0 {
		o.CapDistance = 1.09 * chem.BohrPerAngstrom
	}
	// 0 means no cutoff — see the Options.DimerCutoff doc, the single
	// home of that convention. Negative values never reach here (New
	// rejects them).
	if o.DimerCutoff == 0 {
		o.DimerCutoff = math.Inf(1)
	}
	if o.TrimerCutoff == 0 {
		o.TrimerCutoff = math.Inf(1)
	}
	if o.FieldCutoff == 0 {
		o.FieldCutoff = math.Inf(1)
	}
}

// Fragmentation holds the monomer partition and bond-cut bookkeeping for
// a molecular system.
type Fragmentation struct {
	Geom     *molecule.Geometry
	Monomers []Monomer
	Opts     Options

	atomMonomer []int    // atom index → monomer index
	cutBonds    [][2]int // bonds (a, b) crossing monomer boundaries
}

// New builds a Fragmentation from an explicit monomer partition. Every
// atom must belong to exactly one monomer. Bonds crossing monomer
// boundaries are detected from covalent radii (one cell-list pass) and
// recorded for H-capping.
func New(g *molecule.Geometry, monomers [][]int, opts Options) (*Fragmentation, error) {
	f, err := newPartition(g, monomers, opts)
	if err != nil {
		return nil, err
	}
	for _, b := range g.Bonds(f.Opts.BondScale) {
		if f.atomMonomer[b[0]] != f.atomMonomer[b[1]] {
			f.cutBonds = append(f.cutBonds, b)
		}
	}
	return f, nil
}

// newPartition validates a monomer partition and builds the
// Fragmentation without cut-bond detection — the shared core of New
// (which detects cut bonds) and ByMolecule (which has proven the
// partition bond-closed, so the scan would find nothing).
func newPartition(g *molecule.Geometry, monomers [][]int, opts Options) (*Fragmentation, error) {
	if opts.DimerCutoff < 0 || opts.TrimerCutoff < 0 || opts.FieldCutoff < 0 {
		return nil, fmt.Errorf("fragment: negative cutoff (dimer %g, trimer %g, field %g Bohr); use 0 for no cutoff",
			opts.DimerCutoff, opts.TrimerCutoff, opts.FieldCutoff)
	}
	opts.fill()
	f := &Fragmentation{Geom: g, Opts: opts}
	f.atomMonomer = make([]int, g.N())
	for i := range f.atomMonomer {
		f.atomMonomer[i] = -1
	}
	for mi, atoms := range monomers {
		f.Monomers = append(f.Monomers, Monomer{Atoms: append([]int(nil), atoms...)})
		for _, a := range atoms {
			if a < 0 || a >= g.N() {
				return nil, fmt.Errorf("fragment: atom index %d out of range", a)
			}
			if f.atomMonomer[a] != -1 {
				return nil, fmt.Errorf("fragment: atom %d assigned to two monomers", a)
			}
			f.atomMonomer[a] = mi
		}
	}
	for i, m := range f.atomMonomer {
		if m == -1 {
			return nil, fmt.Errorf("fragment: atom %d not assigned to any monomer", i)
		}
	}
	return f, nil
}

// ByMolecule partitions a geometry into monomers of consecutive
// molecules of size atomsPerMol (for the crystal/cluster builders whose
// atoms are emitted molecule by molecule), grouping molsPerMonomer
// molecules into each monomer (the paper uses 1 for paracetamol and 4
// for the urea runs).
//
// It validates that every molecule block really is a whole molecule:
// a covalent bond crossing two blocks means the geometry is not
// molecule-regular (a builder emitted atoms out of order, or the
// system is covalently linked) and is rejected with a descriptive
// error rather than silently severed and H-capped. The proof of
// closure also means no monomer boundary can cut a bond, so the
// per-fragmentation cut-bond scan of New is skipped entirely.
func ByMolecule(g *molecule.Geometry, atomsPerMol, molsPerMonomer int, opts Options) (*Fragmentation, error) {
	if g.N()%atomsPerMol != 0 {
		return nil, fmt.Errorf("fragment: %d atoms not divisible by %d", g.N(), atomsPerMol)
	}
	scale := opts.BondScale
	if scale == 0 {
		scale = 1.25
	}
	for _, b := range g.Bonds(scale) {
		if b[0]/atomsPerMol != b[1]/atomsPerMol {
			return nil, fmt.Errorf(
				"fragment: atoms %d and %d are covalently bonded but lie in different molecule blocks (%d and %d of %d atoms); ByMolecule requires whole molecules per block — check the builder's atom order or use New with an explicit partition",
				b[0], b[1], b[0]/atomsPerMol, b[1]/atomsPerMol, atomsPerMol)
		}
	}
	nmol := g.N() / atomsPerMol
	var monomers [][]int
	for m := 0; m < nmol; m += molsPerMonomer {
		var atoms []int
		for k := m; k < m+molsPerMonomer && k < nmol; k++ {
			for a := 0; a < atomsPerMol; a++ {
				atoms = append(atoms, k*atomsPerMol+a)
			}
		}
		monomers = append(monomers, atoms)
	}
	return newPartition(g, monomers, opts)
}

// Centroid returns the centroid of monomer mi at the current geometry.
func (f *Fragmentation) Centroid(mi int) [3]float64 {
	return f.Geom.CentroidOf(f.Monomers[mi].Atoms)
}

// MonomerDist returns the centroid distance between two monomers (Bohr)
// — the minimum-image distance when the geometry is periodic. It
// recomputes both centroids; enumeration passes (Terms, Contributions)
// cache centroids once per pass instead of calling this per pair.
func (f *Fragmentation) MonomerDist(i, j int) float64 {
	return f.Geom.DistBetween(f.Centroid(i), f.Centroid(j))
}

// centroids computes every monomer centroid at the current geometry in
// one pass — the per-enumeration cache that replaces the former
// per-call recomputation (MonomerDist was called O(nm²)–O(nm³) times
// per Terms pass, each call walking both monomers' atoms). The slice is
// pass-local, so a geometry step can never leave a stale cache behind.
func (f *Fragmentation) centroids() [][3]float64 {
	return f.centroidsAt(func(a int) [3]float64 { return f.Geom.Atoms[a].Pos })
}

// centroidsAt is centroids with an explicit position source (the
// scheduler's per-step histories). The arithmetic mirrors
// Geometry.CentroidOf term for term so both paths agree bitwise.
func (f *Fragmentation) centroidsAt(pos func(atom int) [3]float64) [][3]float64 {
	out := make([][3]float64, len(f.Monomers))
	for mi, m := range f.Monomers {
		if len(m.Atoms) == 0 {
			continue
		}
		var c [3]float64
		for _, a := range m.Atoms {
			p := pos(a)
			for k := 0; k < 3; k++ {
				c[k] += p[k]
			}
		}
		inv := 1 / float64(len(m.Atoms))
		for k := 0; k < 3; k++ {
			c[k] *= inv
		}
		out[mi] = c
	}
	return out
}

// centroidSource returns the neighbor enumerator over monomer
// centroids: the O(N) cell list, or the direct-scan oracle under
// Opts.Brute, both minimum-image aware when the geometry is periodic.
func (f *Fragmentation) centroidSource(cents [][3]float64) neighbor.Source {
	var box *[3]float64
	if f.Geom.Cell != nil {
		l := f.Geom.Cell.L
		box = &l
	}
	if f.Opts.Brute {
		return neighbor.NewBrute(cents, box)
	}
	if box != nil {
		return neighbor.NewPeriodic(cents, *box)
	}
	return neighbor.New(cents)
}

// centroidDistSq is the squared centroid distance with the same
// arithmetic as the neighbor package (minimum image per component,
// then the k-ascending sum of squares), so cutoff decisions made here
// and inside a neighbor.Source agree bitwise.
func (f *Fragmentation) centroidDistSq(a, b [3]float64) float64 {
	d := [3]float64{a[0] - b[0], a[1] - b[1], a[2] - b[2]}
	d = f.Geom.Cell.MinImage(d)
	return d[0]*d[0] + d[1]*d[1] + d[2]*d[2]
}

// Polymers enumerates every polymer requiring evaluation under the
// configured cutoffs (monomers, dimers — including those needed only as
// trimer constituents — and trimers). See Terms for the classified form.
func (f *Fragmentation) Polymers() []Polymer {
	return f.Terms().All()
}

// Cap describes one hydrogen cap: a hydrogen placed along the cut bond
// a→b at fixed distance from a. Its position depends on both atoms, so
// its force Jacobian spreads onto both.
type Cap struct {
	Inner int // atom kept in the fragment
	Outer int // atom replaced by the cap
}

// Extracted is a polymer's standalone geometry plus the bookkeeping to
// fold its gradient back onto the parent system.
type Extracted struct {
	Geom *molecule.Geometry
	// ParentAtom[i] is the parent-system atom for fragment atom i
	// (the inner/real atoms; caps are appended after them).
	ParentAtom []int
	Caps       []Cap

	capDist        float64
	outerPositions map[Cap][3]float64 // cut-bond outer atom snapshots
}

// Extract builds the standalone geometry of a polymer: the union of its
// monomers' atoms plus hydrogen caps for every bond cut by the polymer
// boundary. Positions are taken from the parent geometry.
func (f *Fragmentation) Extract(p Polymer) *Extracted {
	return f.ExtractAt(p, func(a int) [3]float64 { return f.Geom.Atoms[a].Pos })
}

// TouchSet returns the monomers whose positions a polymer evaluation
// depends on: its own members plus the monomers owning the outer atoms
// of cut bonds (whose positions define the H-caps). This is the
// dependency set of the asynchronous time-step scheme (§V-F).
func (f *Fragmentation) TouchSet(p Polymer) []int {
	inSet := map[int]bool{}
	for _, mi := range p.Monomers {
		inSet[mi] = true
	}
	out := append([]int(nil), p.Monomers...)
	memberAtom := map[int]bool{}
	for _, mi := range p.Monomers {
		for _, a := range f.Monomers[mi].Atoms {
			memberAtom[a] = true
		}
	}
	for _, b := range f.cutBonds {
		var outer int
		switch {
		case memberAtom[b[0]] && !memberAtom[b[1]]:
			outer = b[1]
		case memberAtom[b[1]] && !memberAtom[b[0]]:
			outer = b[0]
		default:
			continue
		}
		om := f.atomMonomer[outer]
		if !inSet[om] {
			inSet[om] = true
			out = append(out, om)
		}
	}
	sort.Ints(out)
	return out
}

// ExtractAt is Extract with an explicit position source, used by the
// asynchronous scheduler to build a polymer's geometry from per-monomer
// position histories at a specific time step.
//
// Periodic geometries extract by nearest image: every member monomer is
// rigidly shifted by the lattice vector bringing its centroid closest
// to the first member's centroid, so a dimer straddling the box
// boundary becomes the compact physical pair, not two distant copies.
// Rigid lattice shifts leave all intra-fragment displacements — and
// therefore the fragment energy and gradient — unchanged, so
// FoldGradient needs no correction. Cut-bond outer atoms are likewise
// min-imaged relative to their inner atom before the cap is placed.
// With a nil Cell the position source passes through untouched.
func (f *Fragmentation) ExtractAt(p Polymer, pos func(atom int) [3]float64) *Extracted {
	if f.Geom.Cell != nil {
		pos = f.imageShifted(p, pos)
	}
	inSet := map[int]bool{}
	for _, mi := range p.Monomers {
		for _, a := range f.Monomers[mi].Atoms {
			inSet[a] = true
		}
	}
	ex := &Extracted{Geom: molecule.New(), capDist: f.Opts.CapDistance}
	var atoms []int
	for _, mi := range p.Monomers {
		atoms = append(atoms, f.Monomers[mi].Atoms...)
	}
	sort.Ints(atoms)
	for _, a := range atoms {
		xyz := pos(a)
		ex.Geom.AddAtom(f.Geom.Atoms[a].Z, xyz[0], xyz[1], xyz[2])
		ex.ParentAtom = append(ex.ParentAtom, a)
	}
	for _, b := range f.cutBonds {
		var inner, outer int
		switch {
		case inSet[b[0]] && !inSet[b[1]]:
			inner, outer = b[0], b[1]
		case inSet[b[1]] && !inSet[b[0]]:
			inner, outer = b[1], b[0]
		default:
			continue // bond fully inside or fully outside
		}
		cap := Cap{Inner: inner, Outer: outer}
		ex.Caps = append(ex.Caps, cap)
		if ex.outerPositions == nil {
			ex.outerPositions = map[Cap][3]float64{}
		}
		in, out := pos(inner), f.nearestImageOf(pos(outer), pos(inner))
		ex.outerPositions[cap] = out
		capXYZ := capPosition(in, out, f.Opts.CapDistance)
		ex.Geom.AddAtom(1, capXYZ[0], capXYZ[1], capXYZ[2])
	}
	return ex
}

// imageShifted wraps a position source so each member monomer of p is
// rigidly translated by the lattice vector bringing its centroid into
// the minimum image of the first member's centroid. Monomers already in
// the nearest image get no entry, keeping their positions bit-identical.
func (f *Fragmentation) imageShifted(p Polymer, pos func(atom int) [3]float64) func(atom int) [3]float64 {
	ref := f.monomerCentroidAt(p.Monomers[0], pos)
	shift := map[int][3]float64{} // atom → lattice shift
	for _, mi := range p.Monomers[1:] {
		c := f.monomerCentroidAt(mi, pos)
		d := [3]float64{c[0] - ref[0], c[1] - ref[1], c[2] - ref[2]}
		md := f.Geom.Cell.MinImage(d)
		sh := [3]float64{md[0] - d[0], md[1] - d[1], md[2] - d[2]}
		if sh == ([3]float64{}) {
			continue
		}
		for _, a := range f.Monomers[mi].Atoms {
			shift[a] = sh
		}
	}
	if len(shift) == 0 {
		return pos
	}
	return func(a int) [3]float64 {
		xyz := pos(a)
		if sh, ok := shift[a]; ok {
			xyz[0] += sh[0]
			xyz[1] += sh[1]
			xyz[2] += sh[2]
		}
		return xyz
	}
}

// monomerCentroidAt computes one monomer's centroid from a position
// source, mirroring Geometry.CentroidOf arithmetic.
func (f *Fragmentation) monomerCentroidAt(mi int, pos func(atom int) [3]float64) [3]float64 {
	var c [3]float64
	atoms := f.Monomers[mi].Atoms
	if len(atoms) == 0 {
		return c
	}
	for _, a := range atoms {
		p := pos(a)
		for k := 0; k < 3; k++ {
			c[k] += p[k]
		}
	}
	inv := 1 / float64(len(atoms))
	for k := 0; k < 3; k++ {
		c[k] *= inv
	}
	return c
}

// nearestImageOf returns the periodic image of q closest to ref (q
// itself when the geometry is open).
func (f *Fragmentation) nearestImageOf(q, ref [3]float64) [3]float64 {
	if f.Geom.Cell == nil {
		return q
	}
	d := f.Geom.Cell.MinImage([3]float64{q[0] - ref[0], q[1] - ref[1], q[2] - ref[2]})
	return [3]float64{ref[0] + d[0], ref[1] + d[1], ref[2] + d[2]}
}

// AtomMonomer returns the monomer index owning each atom.
func (f *Fragmentation) AtomMonomer() []int {
	return append([]int(nil), f.atomMonomer...)
}

// capPosition places the hydrogen at distance d from inner along the
// inner→outer direction.
func capPosition(inner, outer [3]float64, d float64) [3]float64 {
	var u [3]float64
	var norm float64
	for k := 0; k < 3; k++ {
		u[k] = outer[k] - inner[k]
		norm += u[k] * u[k]
	}
	norm = math.Sqrt(norm)
	var out [3]float64
	for k := 0; k < 3; k++ {
		out[k] = inner[k] + d*u[k]/norm
	}
	return out
}

// FoldGradient maps a fragment gradient (3 × fragment atoms) back onto
// the parent system with factor, applying the exact H-cap chain rule:
// the cap position C(x_in, x_out) = x_in + d·u/|u| contributes
// ∂C/∂x_in and ∂C/∂x_out terms to both bond atoms.
func (ex *Extracted) FoldGradient(fragGrad []float64, factor float64, parentGrad []float64) {
	nReal := len(ex.ParentAtom)
	for i, pa := range ex.ParentAtom {
		for k := 0; k < 3; k++ {
			parentGrad[3*pa+k] += factor * fragGrad[3*i+k]
		}
	}
	for ci, cap := range ex.Caps {
		gi := 3 * (nReal + ci)
		inner := ex.innerPos(cap)
		outer := ex.outerPos(cap)
		var u [3]float64
		var norm float64
		for k := 0; k < 3; k++ {
			u[k] = outer[k] - inner[k]
			norm += u[k] * u[k]
		}
		norm = math.Sqrt(norm)
		d := ex.capDist
		// ∂C_k/∂out_l = d/|u| (δ_kl − û_k û_l); ∂C_k/∂in_l = δ_kl − ∂C_k/∂out_l.
		for l := 0; l < 3; l++ {
			var gOut float64
			for k := 0; k < 3; k++ {
				jac := d / norm * (delta(k, l) - u[k]*u[l]/(norm*norm))
				gOut += fragGrad[gi+k] * jac
			}
			gIn := fragGrad[gi+l] - gOut
			parentGrad[3*cap.Inner+l] += factor * gIn
			parentGrad[3*cap.Outer+l] += factor * gOut
		}
	}
}

func delta(a, b int) float64 {
	if a == b {
		return 1
	}
	return 0
}

// innerPos/outerPos read the parent positions backing a cap. The parent
// geometry is reachable through the stored positions at extraction time;
// Extracted keeps its own copies inside Geom for the inner atom, so the
// cap Jacobian is evaluated from the fragment's snapshot.
func (ex *Extracted) innerPos(c Cap) [3]float64 { return ex.posOfParent(c.Inner) }

func (ex *Extracted) posOfParent(parent int) [3]float64 {
	for i, pa := range ex.ParentAtom {
		if pa == parent {
			return ex.Geom.Atoms[i].Pos
		}
	}
	panic("fragment: cap parent atom not in fragment")
}

// outerPos reconstructs the outer-atom position from the cap placement:
// C = in + d·(out−in)/|out−in| does not retain |out−in|, so Extracted
// stores the outer position explicitly at extraction time.
func (ex *Extracted) outerPos(c Cap) [3]float64 {
	if ex.outerPositions == nil {
		panic("fragment: outer positions not recorded")
	}
	return ex.outerPositions[c]
}
