package fragment

import (
	"math"
	"strings"
	"testing"

	"github.com/fragmd/fragmd/internal/chem"
	"github.com/fragmd/fragmd/internal/molecule"
	"github.com/fragmd/fragmd/internal/potential"
)

// termsEqual compares two Terms lists member-for-member, order included.
func termsEqual(t *testing.T, name string, got, want []Polymer) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: cell list %d polymers, brute %d", name, len(got), len(want))
	}
	for i := range got {
		a, b := got[i].Monomers, want[i].Monomers
		if len(a) != len(b) {
			t.Fatalf("%s[%d]: %v vs %v", name, i, a, b)
		}
		for k := range a {
			if a[k] != b[k] {
				t.Fatalf("%s[%d]: cell list %v, brute %v", name, i, a, b)
			}
		}
	}
}

// TestTermsCellListMatchesBrute pins the cell-list enumeration to the
// brute oracle across open/periodic systems and cutoff regimes,
// including cutoffs past the box length (brute fallback inside the
// list) and the Inf default.
func TestTermsCellListMatchesBrute(t *testing.T) {
	const b = chem.BohrPerAngstrom
	systems := []struct {
		name string
		g    *molecule.Geometry
		apm  int
	}{
		{"cluster", molecule.WaterCluster(30), 3},
		{"box", molecule.WaterBox(4, 3, 3, 2), 3},
		{"urea", molecule.UreaSupercell(2, 2, 2), 8},
	}
	for _, sys := range systems {
		for _, cut := range []float64{2 * b, 4 * b, 7 * b, 20 * b, math.Inf(1)} {
			opts := Options{DimerCutoff: cut, TrimerCutoff: cut * 0.8}
			if math.IsInf(cut, 1) {
				opts.TrimerCutoff = cut
			}
			fCell, err := ByMolecule(sys.g, sys.apm, 1, opts)
			if err != nil {
				t.Fatal(err)
			}
			opts.Brute = true
			fBrute, err := ByMolecule(sys.g, sys.apm, 1, opts)
			if err != nil {
				t.Fatal(err)
			}
			tc, tb := fCell.Terms(), fBrute.Terms()
			termsEqual(t, sys.name+" dimers", tc.Dimers, tb.Dimers)
			termsEqual(t, sys.name+" trimers", tc.Trimers, tb.Trimers)
			termsEqual(t, sys.name+" extra", tc.ExtraDimers, tb.ExtraDimers)
		}
	}
}

// TestTermsPeriodicSeesImages: two monomers adjacent only across the
// boundary must form a dimer under a cutoff smaller than their
// unwrapped distance.
func TestTermsPeriodicSeesImages(t *testing.T) {
	g := molecule.New()
	cell, _ := molecule.NewCellAngstrom(20, 20, 20)
	g.Cell = cell
	w1, w2 := molecule.Water(), molecule.Water()
	w2.Translate(17.5*chem.BohrPerAngstrom, 0, 0) // 2.5 Å across the boundary
	g.Append(w1)
	g.Append(w2)
	f, err := ByMolecule(g, 3, 1, Options{DimerCutoff: 3.5 * chem.BohrPerAngstrom})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(f.Terms().Dimers); n != 1 {
		t.Fatalf("periodic neighbors across the boundary: %d dimers, want 1", n)
	}
	open := g.Clone()
	open.Cell = nil
	fo, err := ByMolecule(open, 3, 1, Options{DimerCutoff: 3.5 * chem.BohrPerAngstrom})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(fo.Terms().Dimers); n != 0 {
		t.Fatalf("open boundaries must not see images: %d dimers", n)
	}
}

// TestExtractPeriodicImageShift: a boundary-straddling dimer extracts as
// the compact nearest-image pair, and its energy matches the same pair
// built without wrapping.
func TestExtractPeriodicImageShift(t *testing.T) {
	g := molecule.New()
	cell, _ := molecule.NewCellAngstrom(20, 20, 20)
	g.Cell = cell
	w1, w2 := molecule.Water(), molecule.Water()
	w2.Translate(17.5*chem.BohrPerAngstrom, 0, 0)
	g.Append(w1)
	g.Append(w2)
	f, err := ByMolecule(g, 3, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ex := f.Extract(Polymer{Monomers: []int{0, 1}})
	// O–O distance must be the min-image 2.5 Å gap, not 17.5 Å.
	d := molecule.Dist(ex.Geom.Atoms[0].Pos, ex.Geom.Atoms[3].Pos)
	if want := 2.5 * chem.BohrPerAngstrom; math.Abs(d-want) > 1e-9 {
		t.Fatalf("extracted O–O distance %g Bohr, want %g (nearest image)", d, want)
	}
	// Reference: the same compact pair, built openly.
	ref := molecule.New()
	r1, r2 := molecule.Water(), molecule.Water()
	r2.Translate(-2.5*chem.BohrPerAngstrom, 0, 0)
	ref.Append(r1)
	ref.Append(r2)
	lj := &potential.LennardJones{}
	e1, _, err := lj.Evaluate(ex.Geom)
	if err != nil {
		t.Fatal(err)
	}
	e2, _, err := lj.Evaluate(ref)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e1-e2) > 1e-12 {
		t.Fatalf("image-shifted dimer energy %g, compact reference %g", e1, e2)
	}
	// Monomer extraction (single member) is untouched by the shift.
	exm := f.Extract(Polymer{Monomers: []int{1}})
	if exm.Geom.Atoms[0].Pos != g.Atoms[3].Pos {
		t.Fatal("monomer extraction must not shift positions")
	}
}

// TestByMoleculeRejectsCrossBlockBonds: a covalent bond spanning two
// "molecules" (here a block size that splits real molecules) must be a
// descriptive error, not a silent cap.
func TestByMoleculeRejectsCrossBlockBonds(t *testing.T) {
	g := molecule.Water() // O–H bonds inside one 3-atom molecule
	w2 := molecule.Water()
	w2.Translate(6, 0, 0)
	g.Append(w2)
	// Block size 2 cuts each water's second O–H bond across blocks.
	if _, err := ByMolecule(g, 2, 1, Options{}); err == nil {
		t.Fatal("ByMolecule accepted a partition cutting covalent bonds")
	} else if got := err.Error(); !strings.Contains(got, "covalently bonded") || !strings.Contains(got, "molecule block") {
		t.Fatalf("error is not descriptive: %q", got)
	}
	// The legitimate 3-atom split still works and records no cut bonds.
	f, err := ByMolecule(g, 3, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.cutBonds) != 0 {
		t.Fatalf("bond-closed partition recorded %d cut bonds", len(f.cutBonds))
	}
}

// TestFieldCutoffInfMatchesFull: with the default (no) field cutoff the
// assembler and the legacy full scan build identical fields.
func TestFieldCutoffInfMatchesFull(t *testing.T) {
	g := molecule.WaterCluster(8)
	f, err := ByMolecule(g, 3, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	charges := make([]float64, g.N())
	for i := range charges {
		charges[i] = 0.1 * float64(i%5-2)
	}
	pos := func(a int) [3]float64 { return g.Atoms[a].Pos }
	fa := f.NewFieldAssembler(charges, pos)
	for mi := range f.Monomers {
		p := Polymer{Monomers: []int{mi}}
		a, b := fa.FieldFor(p), f.FieldFor(p, charges, pos)
		if len(a.Parent) != len(b.Parent) {
			t.Fatalf("monomer %d: assembler %d sites, direct %d", mi, len(a.Parent), len(b.Parent))
		}
		for s := range a.Parent {
			if a.Parent[s] != b.Parent[s] || a.Charges.Q[s] != b.Charges.Q[s] {
				t.Fatalf("monomer %d site %d differs", mi, s)
			}
			for k := 0; k < 3; k++ {
				if a.Charges.Pos[3*s+k] != b.Charges.Pos[3*s+k] {
					t.Fatalf("monomer %d site %d position differs", mi, s)
				}
			}
		}
	}
}

// TestFieldCutoffLocalises: a finite field cutoff keeps only nearby
// monomers' sites, and the assembler agrees with per-polymer FieldFor.
func TestFieldCutoffLocalises(t *testing.T) {
	g := molecule.WaterCluster(27)
	const rc = 5 * chem.BohrPerAngstrom
	f, err := ByMolecule(g, 3, 1, Options{FieldCutoff: rc})
	if err != nil {
		t.Fatal(err)
	}
	charges := make([]float64, g.N())
	for i := range charges {
		charges[i] = 0.05 + 0.001*float64(i)
	}
	pos := func(a int) [3]float64 { return g.Atoms[a].Pos }
	fa := f.NewFieldAssembler(charges, pos)
	anyTruncated := false
	for mi := range f.Monomers {
		p := Polymer{Monomers: []int{mi}}
		got := fa.FieldFor(p)
		direct := f.FieldFor(p, charges, pos)
		if len(got.Parent) != len(direct.Parent) {
			t.Fatalf("monomer %d: assembler %d sites, direct %d", mi, len(got.Parent), len(direct.Parent))
		}
		for s := range got.Parent {
			if got.Parent[s] != direct.Parent[s] {
				t.Fatalf("monomer %d site %d: assembler atom %d, direct %d", mi, s, got.Parent[s], direct.Parent[s])
			}
		}
		if len(got.Parent) < g.N()-3 {
			anyTruncated = true
		}
		// Every included site's monomer must be within the cutoff.
		for _, pa := range got.Parent {
			am := f.atomMonomer[pa]
			if d := f.MonomerDist(mi, am); d > rc+1e-9 {
				t.Fatalf("monomer %d includes site of monomer %d at %g Bohr (cutoff %g)", mi, am, d, rc)
			}
		}
	}
	if !anyTruncated {
		t.Fatal("field cutoff truncated nothing on a 27-molecule cluster")
	}
}

// TestPairResidualCutoffConsistency: with no dimer/trimer cutoffs every
// s_IJ is 1 and the residual vanishes regardless of the field cutoff;
// with cutoffs, the truncated residual must equal the full residual
// restricted to in-range pairs.
func TestPairResidualCutoffConsistency(t *testing.T) {
	g := molecule.WaterCluster(12)
	charges := make([]float64, g.N())
	for i := range charges {
		charges[i] = 0.1 * float64(i%3-1)
	}
	pos := func(a int) [3]float64 { return g.Atoms[a].Pos }
	full, err := ByMolecule(g, 3, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r := full.PairResidual(full.PairInclusion(), charges, pos, nil); r != 0 {
		t.Fatalf("complete expansion must have zero residual, got %g", r)
	}
	const dimerCut = 7 * chem.BohrPerAngstrom
	cut, err := ByMolecule(g, 3, 1, Options{DimerCutoff: dimerCut, MaxOrder: 2})
	if err != nil {
		t.Fatal(err)
	}
	rFull := cut.PairResidual(cut.PairInclusion(), charges, pos, nil)
	if rFull == 0 {
		t.Fatal("truncated expansion residual unexpectedly zero")
	}
	// A field cutoff beyond every pair distance reproduces the full sum.
	wide, err := ByMolecule(g, 3, 1, Options{DimerCutoff: dimerCut, MaxOrder: 2, FieldCutoff: 1e4})
	if err != nil {
		t.Fatal(err)
	}
	if r := wide.PairResidual(wide.PairInclusion(), charges, pos, nil); math.Abs(r-rFull) > 1e-12 {
		t.Fatalf("wide field cutoff residual %g, full %g", r, rFull)
	}
}

// BenchmarkTermsCentroidCached measures the enumeration pass on a
// 500-monomer periodic water box with the once-per-pass centroid cache
// and cell list (the shipped path).
func BenchmarkTermsCentroidCached(b *testing.B) {
	benchTerms(b, false)
}

// BenchmarkTermsBruteRecompute measures the same enumeration with the
// pre-fix shape: brute-force pair scans whose distances recompute both
// centroids per call via MonomerDist.
func BenchmarkTermsBruteRecompute(b *testing.B) {
	benchTerms(b, true)
}

func benchTerms(b *testing.B, recompute bool) {
	// MBE2 on 512 monomers, so both variants measure the same dimer
	// enumeration; the trimer pass benefits even more (it was O(nm³)
	// MonomerDist calls).
	g := molecule.WaterBox(8, 8, 8, 1) // 512 monomers
	const cut = 6 * chem.BohrPerAngstrom
	f, err := ByMolecule(g, 3, 1, Options{DimerCutoff: cut, MaxOrder: 2})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if !recompute {
			if terms := f.Terms(); len(terms.Dimers) == 0 {
				b.Fatal("no dimers")
			}
			continue
		}
		// The old code path: O(nm²) MonomerDist calls, each recomputing
		// both centroids from their atoms.
		nm := len(f.Monomers)
		count := 0
		for i := 0; i < nm; i++ {
			for j := i + 1; j < nm; j++ {
				if f.MonomerDist(i, j) <= cut {
					count++
				}
			}
		}
		if count == 0 {
			b.Fatal("no dimers")
		}
	}
}
