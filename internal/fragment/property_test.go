package fragment

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/fragmd/fragmd/internal/molecule"
)

// additiveEvaluator returns energy = c·(number of atoms) with zero
// gradient. For cap-free fragmentations the MBE identity then demands
// E_MBE == c·N_total for *any* cutoffs and any MBE order: every ΔE_IJ
// and ΔE_IJK vanishes identically, so the coefficient algebra
// (Terms/Coefficients) is exercised end to end.
type additiveEvaluator struct{ c float64 }

func (a additiveEvaluator) Evaluate(g *molecule.Geometry) (float64, []float64, error) {
	return a.c * float64(g.N()), make([]float64, 3*g.N()), nil
}

func TestQuickMBEAdditiveIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		g := molecule.WaterCluster(n)
		opts := Options{
			MaxOrder:     2 + rng.Intn(2),
			DimerCutoff:  4 + 20*rng.Float64(),
			TrimerCutoff: 4 + 16*rng.Float64(),
		}
		frag, err := ByMolecule(g, 3, 1, opts)
		if err != nil {
			return false
		}
		ev := additiveEvaluator{c: 0.5 + rng.Float64()}
		res, err := frag.Compute(ev)
		if err != nil {
			return false
		}
		want := ev.c * float64(g.N())
		return math.Abs(res.Energy-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Coefficient-sum identity: Σ_p coeff(p)·atoms(p) = N_total for cap-free
// partitions (each atom must be counted exactly once net).
func TestQuickCoefficientAtomBalance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(7)
		g := molecule.WaterCluster(n)
		frag, err := ByMolecule(g, 3, 1, Options{
			DimerCutoff:  3 + 25*rng.Float64(),
			TrimerCutoff: 3 + 20*rng.Float64(),
		})
		if err != nil {
			return false
		}
		terms := frag.Terms()
		coeff := terms.Coefficients()
		var total float64
		for _, p := range terms.All() {
			atoms := 0
			for _, mi := range p.Monomers {
				atoms += len(frag.Monomers[mi].Atoms)
			}
			total += coeff[p.Key()] * float64(atoms)
		}
		return math.Abs(total-float64(g.N())) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Touch sets always contain the polymer's own monomers and are sorted.
func TestQuickTouchSetContainsMembers(t *testing.T) {
	g, residues := molecule.Polyglycine(5)
	frag, err := New(g, residues, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range frag.Polymers() {
		ts := frag.TouchSet(p)
		for i := 1; i < len(ts); i++ {
			if ts[i] <= ts[i-1] {
				t.Fatalf("touch set not sorted/unique: %v", ts)
			}
		}
		for _, m := range p.Monomers {
			found := false
			for _, x := range ts {
				if x == m {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("touch set %v missing member %d", ts, m)
			}
		}
	}
}
