package fragment

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/fragmd/fragmd/internal/molecule"
	"github.com/fragmd/fragmd/internal/potential"
)

// additiveEvaluator returns energy = c·(number of atoms) with zero
// gradient. For cap-free fragmentations the MBE identity then demands
// E_MBE == c·N_total for *any* cutoffs and any MBE order: every ΔE_IJ
// and ΔE_IJK vanishes identically, so the coefficient algebra
// (Terms/Coefficients) is exercised end to end.
type additiveEvaluator struct{ c float64 }

func (a additiveEvaluator) Evaluate(g *molecule.Geometry) (float64, []float64, error) {
	return a.c * float64(g.N()), make([]float64, 3*g.N()), nil
}

func TestQuickMBEAdditiveIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		g := molecule.WaterCluster(n)
		opts := Options{
			MaxOrder:     2 + rng.Intn(2),
			DimerCutoff:  4 + 20*rng.Float64(),
			TrimerCutoff: 4 + 16*rng.Float64(),
		}
		frag, err := ByMolecule(g, 3, 1, opts)
		if err != nil {
			return false
		}
		ev := additiveEvaluator{c: 0.5 + rng.Float64()}
		res, err := frag.Compute(ev)
		if err != nil {
			return false
		}
		want := ev.c * float64(g.N())
		return math.Abs(res.Energy-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Coefficient-sum identity: Σ_p coeff(p)·atoms(p) = N_total for cap-free
// partitions (each atom must be counted exactly once net).
func TestQuickCoefficientAtomBalance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(7)
		g := molecule.WaterCluster(n)
		frag, err := ByMolecule(g, 3, 1, Options{
			DimerCutoff:  3 + 25*rng.Float64(),
			TrimerCutoff: 3 + 20*rng.Float64(),
		})
		if err != nil {
			return false
		}
		terms := frag.Terms()
		coeff := terms.Coefficients()
		var total float64
		for _, p := range terms.All() {
			atoms := 0
			for _, mi := range p.Monomers {
				atoms += len(frag.Monomers[mi].Atoms)
			}
			total += coeff[p.Key()] * float64(atoms)
		}
		return math.Abs(total-float64(g.N())) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// mbeBoth evaluates the MBE energy and gradient of a water cluster
// partition with and without electrostatic embedding (LJ surrogate
// with fixed water charges, so both are exact functionals of the
// geometry).
func mbeBoth(t *testing.T, g *molecule.Geometry, monomers [][]int, embed bool) (float64, []float64) {
	t.Helper()
	f, err := New(g, monomers, Options{MaxOrder: 2, DimerCutoff: 12})
	if err != nil {
		t.Fatal(err)
	}
	ev := &potential.LennardJones{Charges: map[int]float64{1: 0.2, 8: -0.4}}
	var res *Result
	if embed {
		res, err = f.ComputeEmbedded(ev, nil, EmbedOptions{SCC: 1, Damping: 0.2})
	} else {
		res, err = f.Compute(ev)
	}
	if err != nil {
		t.Fatal(err)
	}
	return res.Energy, res.Gradient
}

func clusterPartition(n int) [][]int {
	monomers := make([][]int, n)
	for m := 0; m < n; m++ {
		monomers[m] = []int{3 * m, 3*m + 1, 3*m + 2}
	}
	return monomers
}

// The MBE energy must be invariant — and the gradient equivariant —
// under rigid translation and rotation of the whole system, with and
// without embedding (the embedding field rides on the atoms, so it
// co-moves).
func TestInvarianceRigidMotion(t *testing.T) {
	const n = 4
	g := molecule.WaterCluster(n)
	monomers := clusterPartition(n)
	for _, embed := range []bool{false, true} {
		e0, g0 := mbeBoth(t, g, monomers, embed)

		tr := g.Clone()
		tr.Translate(2.5, -1.75, 3.25)
		e1, g1 := mbeBoth(t, tr, monomers, embed)
		if math.Abs(e1-e0) > 1e-11 {
			t.Errorf("embed=%v: translation changed the energy by %.2e", embed, e1-e0)
		}
		for i := range g0 {
			if math.Abs(g1[i]-g0[i]) > 1e-11 {
				t.Fatalf("embed=%v: translation changed gradient[%d] by %.2e", embed, i, g1[i]-g0[i])
			}
		}

		const theta = 0.83
		rot := g.Clone()
		rot.RotateZ(theta)
		e2, g2 := mbeBoth(t, rot, monomers, embed)
		if math.Abs(e2-e0) > 1e-11 {
			t.Errorf("embed=%v: rotation changed the energy by %.2e", embed, e2-e0)
		}
		s, c := math.Sin(theta), math.Cos(theta)
		for a := 0; a < len(g0)/3; a++ {
			wantX := c*g0[3*a] - s*g0[3*a+1]
			wantY := s*g0[3*a] + c*g0[3*a+1]
			if math.Abs(g2[3*a]-wantX) > 1e-11 || math.Abs(g2[3*a+1]-wantY) > 1e-11 ||
				math.Abs(g2[3*a+2]-g0[3*a+2]) > 1e-11 {
				t.Fatalf("embed=%v: gradient of atom %d did not co-rotate", embed, a)
			}
		}
	}
}

// Relabeling the monomers (any permutation of the partition) must not
// change the assembled energy or gradient, with and without embedding:
// the expansion is a set, not a sequence.
func TestInvarianceMonomerRelabeling(t *testing.T) {
	const n = 5
	g := molecule.WaterCluster(n)
	base := clusterPartition(n)
	perm := [][]int{base[3], base[0], base[4], base[2], base[1]}
	for _, embed := range []bool{false, true} {
		e0, g0 := mbeBoth(t, g, base, embed)
		e1, g1 := mbeBoth(t, g, perm, embed)
		if math.Abs(e1-e0) > 1e-12 {
			t.Errorf("embed=%v: relabeling changed the energy by %.2e", embed, e1-e0)
		}
		for i := range g0 {
			if math.Abs(g1[i]-g0[i]) > 1e-12 {
				t.Fatalf("embed=%v: relabeling changed gradient[%d] by %.2e", embed, i, g1[i]-g0[i])
			}
		}
	}
}

// Touch sets always contain the polymer's own monomers and are sorted.
func TestQuickTouchSetContainsMembers(t *testing.T) {
	g, residues := molecule.Polyglycine(5)
	frag, err := New(g, residues, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range frag.Polymers() {
		ts := frag.TouchSet(p)
		for i := 1; i < len(ts); i++ {
			if ts[i] <= ts[i-1] {
				t.Fatalf("touch set not sorted/unique: %v", ts)
			}
		}
		for _, m := range p.Monomers {
			found := false
			for _, x := range ts {
				if x == m {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("touch set %v missing member %d", ts, m)
			}
		}
	}
}
