package fragment

import (
	"math"
	"testing"

	"github.com/fragmd/fragmd/internal/molecule"
	"github.com/fragmd/fragmd/internal/potential"
)

func waterTrimerFrag(t *testing.T, opts Options) *Fragmentation {
	t.Helper()
	g := molecule.WaterCluster(3)
	f, err := ByMolecule(g, 3, 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// For a three-monomer system the MBE3 expansion is an exact identity:
// E_MBE3 == E_supersystem and likewise for every gradient component.
func TestMBE3ExactForThreeMonomers(t *testing.T) {
	if testing.Short() {
		t.Skip("RI-MP2 supersystem comparison is slow; run without -short")
	}
	f := waterTrimerFrag(t, Options{})
	eval := &potential.RIMP2{Basis: "sto-3g"}
	res, err := f.Compute(eval)
	if err != nil {
		t.Fatal(err)
	}
	eSuper, gSuper, err := eval.Evaluate(f.Geom)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Energy-eSuper) > 1e-8 {
		t.Errorf("MBE3 energy %.10f != supersystem %.10f", res.Energy, eSuper)
	}
	for i := range gSuper {
		if math.Abs(res.Gradient[i]-gSuper[i]) > 1e-7 {
			t.Errorf("MBE3 grad[%d] = %.9f != supersystem %.9f", i, res.Gradient[i], gSuper[i])
		}
	}
}

// MBE2 must be less accurate than MBE3 but still close; the three-body
// correction must be nonzero.
func TestMBEOrderHierarchy(t *testing.T) {
	if testing.Short() {
		t.Skip("RI-MP2 MBE2-vs-MBE3 comparison is slow; run without -short")
	}
	eval := &potential.RIMP2{Basis: "sto-3g"}
	f3 := waterTrimerFrag(t, Options{})
	res3, err := f3.Compute(eval)
	if err != nil {
		t.Fatal(err)
	}
	f2 := waterTrimerFrag(t, Options{MaxOrder: 2})
	res2, err := f2.Compute(eval)
	if err != nil {
		t.Fatal(err)
	}
	eSuper, _, _ := eval.Evaluate(f3.Geom)
	err3 := math.Abs(res3.Energy - eSuper)
	err2 := math.Abs(res2.Energy - eSuper)
	if err3 > err2 {
		t.Errorf("MBE3 error %.2e worse than MBE2 %.2e", err3, err2)
	}
	if err2 < 1e-12 {
		t.Error("MBE2 unexpectedly exact; three-body term should be nonzero")
	}
}

// Cutoffs must reduce polymer counts monotonically and reproduce the
// full expansion when loose.
func TestCutoffEnumeration(t *testing.T) {
	g := molecule.WaterCluster(8)
	fLoose, _ := ByMolecule(g, 3, 1, Options{})
	fTight, _ := ByMolecule(g, 3, 1, Options{DimerCutoff: 7.0, TrimerCutoff: 6.0})
	loose := fLoose.Terms()
	tight := fTight.Terms()
	if len(loose.Dimers) != 8*7/2 {
		t.Errorf("loose dimers = %d, want 28", len(loose.Dimers))
	}
	if len(loose.Trimers) != 8*7*6/6 {
		t.Errorf("loose trimers = %d, want 56", len(loose.Trimers))
	}
	if len(tight.Dimers) >= len(loose.Dimers) {
		t.Error("tight dimer cutoff did not reduce dimer count")
	}
	if len(tight.Trimers) >= len(loose.Trimers) {
		t.Error("tight trimer cutoff did not reduce trimer count")
	}
	// Coefficients must sum to the monomer count when no dimers/trimers
	// are cut (Σ coeff = 1 per MBE identity at full inclusion... for the
	// loose full expansion, Σ_p coeff_p = 1 means the supersystem count:
	// n − n(n−1)/2·... easier invariant: every monomer's net coefficient
	// in the exact 3-monomer case is checked by TestMBE3Exact.)
	coeff := tight.Coefficients()
	for _, d := range tight.ExtraDimers {
		// Extra dimers enter only through trimer corrections: their
		// coefficient must be strictly negative (−#containing trimers).
		if coeff[d.Key()] >= 0 {
			t.Errorf("extra dimer %s coefficient %v should be negative", d.Key(), coeff[d.Key()])
		}
	}
}

// H-caps: fragmenting a covalent chain must produce capped fragments
// with the right atom counts and a gradient that matches finite
// differences of the MBE energy (chain rule through cap positions).
func TestHCapChainRule(t *testing.T) {
	g, residues := molecule.Polyglycine(2)
	f, err := New(g, residues, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.cutBonds) != 1 {
		t.Fatalf("expected 1 cut bond for diglycine, got %d", len(f.cutBonds))
	}
	// Monomer fragments carry one cap each.
	ex0 := f.Extract(Polymer{Monomers: []int{0}})
	if len(ex0.Caps) != 1 {
		t.Fatalf("monomer 0 caps = %d, want 1", len(ex0.Caps))
	}
	if ex0.Geom.N() != len(residues[0])+1 {
		t.Fatalf("monomer 0 atoms = %d, want %d", ex0.Geom.N(), len(residues[0])+1)
	}
	// The dimer covers the whole chain: no caps.
	ex01 := f.Extract(Polymer{Monomers: []int{0, 1}})
	if len(ex01.Caps) != 0 {
		t.Fatalf("dimer caps = %d, want 0", len(ex01.Caps))
	}

	// FD check of the full MBE gradient with a cheap potential (the cap
	// chain rule is potential-independent).
	eval := &potential.LennardJones{}
	res, err := f.Compute(eval)
	if err != nil {
		t.Fatal(err)
	}
	h := 1e-6
	for _, idx := range []int{0, 5, 9, 3*g.N() - 1} {
		atom, dim := idx/3, idx%3
		gp := g.Clone()
		gp.Atoms[atom].Pos[dim] += h
		gm := g.Clone()
		gm.Atoms[atom].Pos[dim] -= h
		fp, _ := New(gp, residues, Options{})
		fm, _ := New(gm, residues, Options{})
		rp, err := fp.Compute(eval)
		if err != nil {
			t.Fatal(err)
		}
		rm, err := fm.Compute(eval)
		if err != nil {
			t.Fatal(err)
		}
		fd := (rp.Energy - rm.Energy) / (2 * h)
		if math.Abs(res.Gradient[idx]-fd) > 1e-7 {
			t.Errorf("cap chain rule grad[%d]: analytic %.10f vs FD %.10f", idx, res.Gradient[idx], fd)
		}
	}
}

// The MBE gradient of any cluster must have zero net force.
func TestMBEGradientSumRule(t *testing.T) {
	g := molecule.WaterCluster(4)
	f, _ := ByMolecule(g, 3, 1, Options{MaxOrder: 2, DimerCutoff: 12})
	res, err := f.Compute(&potential.LennardJones{})
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 3; d++ {
		var s float64
		for i := 0; i < g.N(); i++ {
			s += res.Gradient[3*i+d]
		}
		if math.Abs(s) > 1e-10 {
			t.Errorf("net MBE force along %d = %.2e", d, s)
		}
	}
}

// Fig. 5 analysis support: contributions must decay with distance.
func TestContributionsDecay(t *testing.T) {
	g := molecule.WaterCluster(6)
	f, _ := ByMolecule(g, 3, 1, Options{})
	res, err := f.Compute(&potential.LennardJones{})
	if err != nil {
		t.Fatal(err)
	}
	contribs := f.Contributions(res)
	if len(contribs) == 0 {
		t.Fatal("no contributions returned")
	}
	// The largest |ΔE| among the closest quartile must exceed the
	// largest among the farthest quartile.
	n := len(contribs)
	var nearMax, farMax float64
	for _, c := range contribs[:n/4+1] {
		if v := math.Abs(c.DeltaE); v > nearMax {
			nearMax = v
		}
	}
	for _, c := range contribs[3*n/4:] {
		if v := math.Abs(c.DeltaE); v > farMax {
			farMax = v
		}
	}
	if nearMax <= farMax {
		t.Errorf("contributions do not decay: near %.3e vs far %.3e", nearMax, farMax)
	}
}

func TestByMoleculeValidation(t *testing.T) {
	g := molecule.WaterCluster(2)
	if _, err := ByMolecule(g, 4, 1, Options{}); err == nil {
		t.Error("expected error for indivisible atom count")
	}
	if _, err := New(g, [][]int{{0, 1}}, Options{}); err == nil {
		t.Error("expected error for unassigned atoms")
	}
	if _, err := New(g, [][]int{{0, 0, 1, 2, 3, 4, 5}}, Options{}); err == nil {
		t.Error("expected error for duplicate atom")
	}
}
