// Package chem provides element data, physical constants and unit
// conversions shared by the chemistry layers. All internal computation is
// in Hartree atomic units; conversions are applied only at the I/O
// boundary.
package chem

import "fmt"

// Physical constants and unit conversions (CODATA 2018 values).
const (
	// BohrPerAngstrom converts Å → Bohr.
	BohrPerAngstrom = 1.0 / 0.529177210903
	// AngstromPerBohr converts Bohr → Å.
	AngstromPerBohr = 0.529177210903
	// KJPerMolPerHartree converts Hartree → kJ/mol.
	KJPerMolPerHartree = 2625.4996394799
	// AmuToElectronMass converts unified atomic mass units → mₑ.
	AmuToElectronMass = 1822.888486209
	// FsPerAtomicTime converts atomic time units → femtoseconds.
	FsPerAtomicTime = 0.02418884326509
	// AtomicTimePerFs converts femtoseconds → atomic time units.
	AtomicTimePerFs = 1.0 / FsPerAtomicTime
	// KelvinPerHartree converts Hartree → Kelvin (E/k_B).
	KelvinPerHartree = 315775.02480407
)

// Element describes one chemical element.
type Element struct {
	Z              int
	Symbol         string
	Name           string
	MassAMU        float64 // standard atomic weight
	CovalentRadius float64 // Bohr
}

// elements indexed by atomic number (0 unused). Covalent radii are the
// Cordero 2008 single-bond values converted to Bohr.
var elements = []Element{
	{},
	{1, "H", "hydrogen", 1.00794, 0.31 * BohrPerAngstrom},
	{2, "He", "helium", 4.002602, 0.28 * BohrPerAngstrom},
	{3, "Li", "lithium", 6.941, 1.28 * BohrPerAngstrom},
	{4, "Be", "beryllium", 9.012182, 0.96 * BohrPerAngstrom},
	{5, "B", "boron", 10.811, 0.84 * BohrPerAngstrom},
	{6, "C", "carbon", 12.0107, 0.76 * BohrPerAngstrom},
	{7, "N", "nitrogen", 14.0067, 0.71 * BohrPerAngstrom},
	{8, "O", "oxygen", 15.9994, 0.66 * BohrPerAngstrom},
	{9, "F", "fluorine", 18.9984032, 0.57 * BohrPerAngstrom},
	{10, "Ne", "neon", 20.1797, 0.58 * BohrPerAngstrom},
	{11, "Na", "sodium", 22.98976928, 1.66 * BohrPerAngstrom},
	{12, "Mg", "magnesium", 24.3050, 1.41 * BohrPerAngstrom},
	{13, "Al", "aluminium", 26.9815386, 1.21 * BohrPerAngstrom},
	{14, "Si", "silicon", 28.0855, 1.11 * BohrPerAngstrom},
	{15, "P", "phosphorus", 30.973762, 1.07 * BohrPerAngstrom},
	{16, "S", "sulfur", 32.065, 1.05 * BohrPerAngstrom},
	{17, "Cl", "chlorine", 35.453, 1.02 * BohrPerAngstrom},
	{18, "Ar", "argon", 39.948, 1.06 * BohrPerAngstrom},
}

var symbolToZ = func() map[string]int {
	m := make(map[string]int, len(elements))
	for _, e := range elements[1:] {
		m[e.Symbol] = e.Z
	}
	return m
}()

// ByZ returns the element with atomic number z.
func ByZ(z int) (Element, error) {
	if z <= 0 || z >= len(elements) {
		return Element{}, fmt.Errorf("chem: unsupported atomic number %d", z)
	}
	return elements[z], nil
}

// BySymbol returns the element with the given symbol (case-sensitive,
// e.g. "He").
func BySymbol(sym string) (Element, error) {
	z, ok := symbolToZ[sym]
	if !ok {
		return Element{}, fmt.Errorf("chem: unknown element symbol %q", sym)
	}
	return elements[z], nil
}

// Symbol returns the symbol for atomic number z, or "X?" if unknown.
func Symbol(z int) string {
	if z <= 0 || z >= len(elements) {
		return fmt.Sprintf("X%d", z)
	}
	return elements[z].Symbol
}

// MassAMU returns the standard atomic weight for z (0 if unknown).
func MassAMU(z int) float64 {
	if z <= 0 || z >= len(elements) {
		return 0
	}
	return elements[z].MassAMU
}

// CovalentRadius returns the covalent radius in Bohr (0 if unknown).
func CovalentRadius(z int) float64 {
	if z <= 0 || z >= len(elements) {
		return 0
	}
	return elements[z].CovalentRadius
}
