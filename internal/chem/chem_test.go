package chem

import (
	"math"
	"testing"
)

func TestLookups(t *testing.T) {
	o, err := BySymbol("O")
	if err != nil || o.Z != 8 {
		t.Fatalf("BySymbol(O): %v %v", o, err)
	}
	c, err := ByZ(6)
	if err != nil || c.Symbol != "C" {
		t.Fatalf("ByZ(6): %v %v", c, err)
	}
	if _, err := BySymbol("Xx"); err == nil {
		t.Error("expected unknown-symbol error")
	}
	if _, err := ByZ(0); err == nil {
		t.Error("expected out-of-range error")
	}
	if Symbol(1) != "H" || Symbol(99) == "H" {
		t.Error("Symbol lookup")
	}
	if MassAMU(1) < 1.0 || MassAMU(1) > 1.1 {
		t.Errorf("H mass = %g", MassAMU(1))
	}
	if CovalentRadius(6) <= CovalentRadius(1) {
		t.Error("C radius should exceed H radius")
	}
}

func TestUnitRoundTrips(t *testing.T) {
	if math.Abs(BohrPerAngstrom*AngstromPerBohr-1) > 1e-14 {
		t.Error("length conversion not reciprocal")
	}
	if math.Abs(FsPerAtomicTime*AtomicTimePerFs-1) > 1e-14 {
		t.Error("time conversion not reciprocal")
	}
	// 1 Hartree ≈ 2625.5 kJ/mol and ≈ 315,775 K.
	if math.Abs(KJPerMolPerHartree-2625.5) > 0.1 {
		t.Error("energy conversion off")
	}
	if math.Abs(KelvinPerHartree-315775) > 1 {
		t.Error("temperature conversion off")
	}
	// Proton/electron mass ratio ≈ 1836.
	if r := MassAMU(1) * AmuToElectronMass; math.Abs(r-1837.4) > 1 {
		t.Errorf("H mass in mₑ = %g", r)
	}
}
