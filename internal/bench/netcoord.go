package bench

import (
	"context"
	"math/rand"
	"sync/atomic"
	"time"

	"github.com/fragmd/fragmd/internal/chem"
	"github.com/fragmd/fragmd/internal/cluster"
	"github.com/fragmd/fragmd/internal/fragment"
	"github.com/fragmd/fragmd/internal/md"
	"github.com/fragmd/fragmd/internal/molecule"
	"github.com/fragmd/fragmd/internal/netcoord"
	"github.com/fragmd/fragmd/internal/potential"
	"github.com/fragmd/fragmd/internal/sched"
)

// Water-monomer electronic dimensions (STO-3G) used consistently by
// the live cost model and the simulated workload, so the two sides of
// the A/B oracle price every polymer with the same curve.
const (
	waterNBf  = 7
	waterNOcc = 5
	waterNAux = 21
)

// modelCostEval is the live half of the A/B oracle: a Lennard-Jones
// evaluator throttled to the cluster model's RI-MP2 gradient cost
// curve, normalised so one monomer task takes perMonomer. The physics
// stays cheap and exact; only the *timing* emulates ab initio work.
type modelCostEval struct {
	lj         potential.LennardJones
	perMonomer time.Duration
	evals      atomic.Int64
}

func (e *modelCostEval) Evaluate(g *molecule.Geometry) (float64, []float64, error) {
	k := g.N() / 3 // water monomers in this polymer
	scale := cluster.RIMP2GradientFLOPs(waterNBf*k, waterNOcc*k, waterNAux*k) /
		cluster.RIMP2GradientFLOPs(waterNBf, waterNOcc, waterNAux)
	time.Sleep(time.Duration(float64(e.perMonomer) * scale))
	e.evals.Add(1)
	return e.lj.Evaluate(g)
}

// NetCoord runs the network-backend A/B oracle (DESIGN.md §10): the
// same water-cluster AIMD workload executes once live — a coordinator
// and worker processes talking gob-over-TCP across localhost — and
// once in the discrete-event cluster simulator with a Machine profile
// calibrated to the live workers' task cost. Predicted and measured
// task throughput must agree within a generous factor; a larger gap
// means the transport or the model has drifted from reality.
func NetCoord(c *Config) {
	waters, steps, procs, slots := 8, 3, 2, 2
	perMonomer := 2 * time.Millisecond
	if !c.Quick {
		waters, steps, procs, slots = 12, 5, 4, 2
	}
	const dimerA, trimerA = 12.0, 9.0 // cutoffs, Å
	nWorkers := procs * slots

	g := molecule.WaterCluster(waters)
	f, err := fragment.ByMolecule(g, 3, 1, fragment.Options{
		DimerCutoff:  dimerA * chem.BohrPerAngstrom,
		TrimerCutoff: trimerA * chem.BohrPerAngstrom,
	})
	if err != nil {
		c.fail("netcoord: " + err.Error())
		return
	}
	nPoly := len(f.Terms().All())

	// Live half: real TCP transport on localhost, throttled-LJ workers.
	eval := &modelCostEval{perMonomer: perMonomer}
	coord, err := netcoord.Listen("127.0.0.1:0", netcoord.CoordinatorOptions{
		Eval:      netcoord.EvalSpec{Potential: "lj"},
		Heartbeat: 100 * time.Millisecond,
	})
	if err != nil {
		c.fail("netcoord: " + err.Error())
		return
	}
	defer coord.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < procs; i++ {
		go netcoord.RunWorker(ctx, coord.Addr(), netcoord.WorkerOptions{Slots: slots, Eval: eval})
	}
	waitCtx, waitCancel := context.WithTimeout(ctx, 30*time.Second)
	defer waitCancel()
	if _, err := coord.WaitWorkers(waitCtx, procs); err != nil {
		c.fail("netcoord: " + err.Error())
		return
	}
	x := coord.Executor()
	eng, err := sched.New(f, nil, sched.Options{
		Exec: x, Groups: x.Procs(), Async: true, Dt: 0.5 * chem.AtomicTimePerFs,
	})
	if err != nil {
		c.fail("netcoord: " + err.Error())
		return
	}
	state := md.NewState(f.Geom.Clone())
	state.SampleVelocities(150, rand.New(rand.NewSource(1)))
	start := time.Now()
	if _, err := eng.Run(state, steps, nil); err != nil {
		c.fail("netcoord: " + err.Error())
		return
	}
	wall := time.Since(start).Seconds()
	tasks := nPoly * steps
	measured := float64(tasks) / wall

	// Simulated half: the same workload under the same policy on a
	// Machine calibrated so a monomer task costs exactly perMonomer
	// (efficiency curve flattened to 1, peak set from the cost model).
	monomers := make([]cluster.MonomerSpec, len(f.Monomers))
	for i := range f.Monomers {
		ctr := f.Centroid(i)
		for k := 0; k < 3; k++ {
			ctr[k] *= chem.AngstromPerBohr
		}
		monomers[i] = cluster.MonomerSpec{
			Centroid: ctr, Atoms: 3,
			NBf: waterNBf, NOcc: waterNOcc, NAux: waterNAux,
		}
	}
	w := cluster.NewWorkload(monomers, dimerA, trimerA)
	monoFLOPs := cluster.RIMP2GradientFLOPs(waterNBf, waterNOcc, waterNAux)
	machine := cluster.Machine{
		Name:            "localhost-calibrated",
		Nodes:           nWorkers,
		GCDsPerNode:     1,
		PeakTF:          monoFLOPs / (perMonomer.Seconds() * 1e12),
		EffMax:          1,
		EffHalf:         0,
		DispatchLatency: 200e-6,
		CoordService:    1.5e-6,
	}
	res, err := cluster.Simulate(w, machine, cluster.Options{
		Nodes: nWorkers, Steps: steps, Async: true, Groups: procs,
		Seed: c.Seed, Jitter: c.Jitter,
	})
	if err != nil {
		c.fail("netcoord: " + err.Error())
		return
	}

	c.printf("Network backend A/B oracle — live localhost TCP vs calibrated simulation\n")
	c.printf("  workload              %d waters, %d polymers (sim enumerated %d), %d steps\n",
		waters, nPoly, len(w.Polymers), steps)
	c.printf("  fleet                 %d worker processes × %d slots, monomer task %s\n",
		procs, slots, perMonomer)
	c.printf("  live evaluations      %d (%d dispatched tasks) in %.2f s\n",
		eval.evals.Load(), tasks, wall)
	c.printf("  measured throughput   %8.1f tasks/s\n", measured)
	c.printf("  predicted throughput  %8.1f tasks/s (simulated makespan %.2f s)\n",
		res.Throughput, res.Makespan)
	ratio := res.Throughput / measured
	c.printf("  predicted/measured    %8.2f×\n", ratio)
	if len(w.Polymers) != nPoly {
		c.fail("netcoord: simulated workload enumerates a different polymer set than the live fragmentation")
	}
	// The simulator knows nothing about gob encoding, kernel scheduling
	// of sleeping goroutines, or localhost RTTs, so the gate is a
	// generous envelope — it catches order-of-magnitude drift (a broken
	// transport serialising all work, a miscalibrated model), not noise.
	const envelope = 8.0
	if ratio > envelope || ratio < 1/envelope {
		c.fail("netcoord: predicted and measured throughput disagree beyond the 8x envelope")
	}
}
