package bench

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"testing"

	"github.com/fragmd/fragmd/internal/chem"
	"github.com/fragmd/fragmd/internal/cluster"
	"github.com/fragmd/fragmd/internal/molecule"
	"github.com/fragmd/fragmd/internal/potential"
	"github.com/fragmd/fragmd/internal/sched"
)

func capture(fn func(*Config)) string {
	var buf bytes.Buffer
	fn(&Config{Quick: true, Out: &buf})
	return buf.String()
}

// Table1 is a pure, deterministic report: every attribute row must be
// present.
func TestTable1Report(t *testing.T) {
	out := capture(Table1)
	for _, want := range []string{
		"Table I", "MBE3/RI-MP2", "double precision", "Measurement mechanism",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 output missing %q:\n%s", want, out)
		}
	}
}

// Fig1/Table II is a fixed literature table: the two "this work" rows
// and the >1000× claim line must appear.
func TestFig1Table2Report(t *testing.T) {
	out := capture(Fig1Table2)
	rows := 0
	for _, l := range strings.Split(out, "\n") {
		if strings.HasSuffix(strings.TrimSpace(l), "this work") {
			rows++
		}
	}
	if rows != 2 {
		t.Errorf("Fig1Table2 has %d 'this work' rows, want 2", rows)
	}
	if !strings.Contains(out, "2043328") {
		t.Error("Fig1Table2 missing the 2,043,328-electron urea entry")
	}
	if !strings.Contains(out, ">1000×") {
		t.Error("Fig1Table2 missing the paper's >1000× shape note")
	}
}

// runScaling's parallel-efficiency math on a tiny simulated workload:
// doubling nodes can never yield >100 % efficiency under the
// simulator's deterministic cost model, and the base row is exactly
// 100 % by construction.
func TestRunScalingEfficiencyMath(t *testing.T) {
	w := cluster.UreaWorkload(64, 4, 15.3, 15.3)
	var buf bytes.Buffer
	c := &Config{Quick: true, Out: &buf}
	runScaling(c, w, cluster.Frontier(), []int{2, 4}, "test")
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Header + two node rows + note line.
	if len(lines) != 4 {
		t.Fatalf("runScaling printed %d lines, want 4:\n%s", len(lines), out)
	}
	var nodes int
	var sPerStep, pflops, peak, eff float64
	if _, err := fmtSscan(lines[1], &nodes, &sPerStep, &pflops, &peak, &eff); err != nil {
		t.Fatalf("cannot parse base row %q: %v", lines[1], err)
	}
	if nodes != 2 || eff != 100 {
		t.Errorf("base row nodes=%d eff=%.0f%%, want 2 and 100%%", nodes, eff)
	}
	if _, err := fmtSscan(lines[2], &nodes, &sPerStep, &pflops, &peak, &eff); err != nil {
		t.Fatalf("cannot parse second row %q: %v", lines[2], err)
	}
	if nodes != 4 || eff <= 0 || eff > 100.5 {
		t.Errorf("second row nodes=%d eff=%.1f%%, want 4 and 0 < eff ≤ 100", nodes, eff)
	}
	if sPerStep <= 0 || pflops <= 0 || peak <= 0 {
		t.Errorf("implausible scaling row: %q", lines[2])
	}
}

// glycineWorkload's fragment bookkeeping: n monomers in a chain, each
// interior residue bonded to both neighbours.
func TestGlycineWorkloadTopology(t *testing.T) {
	w := glycineWorkload(5)
	if len(w.Monomers) != 5 {
		t.Fatalf("got %d monomers, want 5", len(w.Monomers))
	}
	for i, m := range w.Monomers {
		wantBonds := 2
		if i == 0 || i == 4 {
			wantBonds = 1
		}
		if len(m.Bonded) != wantBonds {
			t.Errorf("residue %d has %d bonds, want %d", i, len(m.Bonded), wantBonds)
		}
		if m.NBf <= 0 || m.NAux <= m.NBf {
			t.Errorf("residue %d basis metadata implausible: nbf=%d naux=%d", i, m.NBf, m.NAux)
		}
	}
}

func TestMaxInt(t *testing.T) {
	if maxInt(2, 3) != 3 || maxInt(3, 2) != 3 || maxInt(-1, -2) != -1 {
		t.Error("maxInt broken")
	}
}

// warmDynamics drives the real engine; with the LJ surrogate it is
// cheap enough to verify the dynamics-report plumbing: step count,
// polymer count, and that skip reuse shows up in the stats the report
// prints.
func TestWarmDynamicsStats(t *testing.T) {
	g := molecule.WaterCluster(2)
	eval := &potential.LennardJones{}
	base := sched.Options{Workers: 2, Async: true, Dt: 0.5 * chem.AtomicTimePerFs}
	stats, err := warmDynamics(g, eval, 4, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 4 {
		t.Fatalf("got %d steps, want 4", len(stats))
	}
	if stats[0].NPolymer != 3 { // 2 monomers + 1 dimer
		t.Errorf("NPolymer = %d, want 3", stats[0].NPolymer)
	}
	for _, st := range stats {
		if st.SCFIters != 0 || st.Skipped != 0 {
			t.Errorf("LJ cold run reported SCFIters=%d Skipped=%d", st.SCFIters, st.Skipped)
		}
	}
	skipOpts := base
	skipOpts.SkipTol = 0.5
	stats, err = warmDynamics(g, eval, 4, skipOpts)
	if err != nil {
		t.Fatal(err)
	}
	var skipped int
	for _, st := range stats {
		skipped += st.Skipped
	}
	if skipped == 0 {
		t.Error("skip run reported no skipped evaluations")
	}
}

// The full warm-start ablation runs real RI-HF SCF; keep it out of
// -short but assert the report's shape when it does run.
func TestWarmStartAblationReport(t *testing.T) {
	if testing.Short() {
		t.Skip("RI-HF dynamics ablation is slow; run without -short")
	}
	out := capture(WarmStartAblation)
	for _, want := range []string{
		"Warm-start ablation", "cold SCF-iter", "warm SCF-iter",
		"SCF iterations saved", "Skip reuse",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("WarmStartAblation output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "error:") {
		t.Errorf("WarmStartAblation reported an error:\n%s", out)
	}
}

// fmtSscan parses "nodes s/step PFLOP/s peak% eff%" rows.
func fmtSscan(line string, nodes *int, sPerStep, pflops, peak, eff *float64) (int, error) {
	fields := strings.Fields(strings.ReplaceAll(line, "%", ""))
	if len(fields) < 5 {
		return 0, fmt.Errorf("bench test: %d fields in %q, want 5", len(fields), line)
	}
	var err error
	parse := func(f string, dst *float64) {
		if err != nil {
			return
		}
		v, e := strconv.ParseFloat(f, 64)
		if e != nil {
			err = e
			return
		}
		*dst = v
	}
	var nf float64
	parse(fields[0], &nf)
	*nodes = int(nf)
	parse(fields[1], sPerStep)
	parse(fields[2], pflops)
	parse(fields[3], peak)
	parse(fields[4], eff)
	return 5, err
}

// The EE-MBE experiment must report an accuracy win (it fails itself
// via Config.Failures when embedding never beats vacuum) and both
// scheduling modes.
func TestEmbedReport(t *testing.T) {
	if testing.Short() {
		t.Skip("embedded supersystem references are slow; run without -short")
	}
	var buf bytes.Buffer
	c := &Config{Quick: true, Out: &buf}
	Embed(c)
	if len(c.Failures) > 0 {
		t.Fatalf("embed experiment failed: %v", c.Failures)
	}
	out := buf.String()
	for _, want := range []string{"EE-MBE accuracy", "embedding shrank the MBE2 error", "embedded+scc"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// The resilience sweep is pure simulation and fast at Quick scale: the
// report must show recoveries at nonzero failure rates, evictions in
// the permanent-failure row, and no recorded failures.
func TestResilienceReport(t *testing.T) {
	var buf bytes.Buffer
	c := &Config{Quick: true, Out: &buf}
	Resilience(c)
	out := buf.String()
	if len(c.Failures) > 0 {
		t.Fatalf("resilience sweep recorded failures %v:\n%s", c.Failures, out)
	}
	for _, want := range []string{"no failures", "mtbf span/8", "perm", "recovered", "Shape to verify"} {
		if !strings.Contains(out, want) {
			t.Errorf("resilience output missing %q:\n%s", want, out)
		}
	}
	// The no-failure baseline row reports zero recoveries; at least one
	// failing row reports a positive count (asserted by the experiment
	// itself via c.Failures, re-checked here on the rendered table).
	var sawRecovery bool
	for _, l := range strings.Split(out, "\n") {
		f := strings.Fields(l)
		if len(f) >= 8 && strings.HasPrefix(l, "   mtbf") {
			if n, err := strconv.Atoi(f[4]); err == nil && n > 0 {
				sawRecovery = true
			}
		}
	}
	if !sawRecovery {
		t.Errorf("no recovery counts visible in the table:\n%s", out)
	}
}
