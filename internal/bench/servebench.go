package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/fragmd/fragmd/internal/molecule"
	"github.com/fragmd/fragmd/internal/serve"
)

// ServeBenchSchema identifies the BENCH_serve.json layout; bump on
// incompatible changes so the CI comparator can refuse stale baselines.
const ServeBenchSchema = "fragmd-bench-serve/v1"

// ServeBenchReport is the machine-readable output of the trajectory-
// server load test — the service latency/throughput/fairness record
// the CI serve job gates against, the way BENCH_gemm.json gates the
// kernels.
type ServeBenchReport struct {
	Schema string `json:"schema"`
	GoOS   string `json:"goos"`
	GoArch string `json:"goarch"`
	NumCPU int    `json:"numcpu"`
	Quick  bool   `json:"quick"`

	// Load-phase shape: Jobs small LJ trajectories of StepsPerJob steps
	// spread round-robin over Tenants tenants, MaxActive running at once.
	Jobs        int `json:"jobs"`
	Tenants     int `json:"tenants"`
	StepsPerJob int `json:"steps_per_job"`
	MaxActive   int `json:"max_active"`

	// Load-phase results. Latency is submit→terminal wall time per job
	// (queue wait included — it is a service-level number), throughput
	// the completed-jobs rate over the whole phase, and FairnessRatio
	// the worst max/min per-tenant completed-job ratio observed while
	// the run was 25–75 % complete (1.0 = perfectly fair; the absolute
	// gate is ≤ 2).
	WallSeconds   float64 `json:"wall_seconds"`
	JobsPerSec    float64 `json:"jobs_per_sec"`
	P50Ms         float64 `json:"p50_ms"`
	P99Ms         float64 `json:"p99_ms"`
	FairnessRatio float64 `json:"fairness_ratio"`

	// Drain-phase results: a second server is SIGTERM'd mid-burst
	// (Drain + Close), restarted on the same state directory, and every
	// job audited. Lost (admitted but never completed) and Duplicated
	// (a step reported twice or skipped) must both be zero.
	DrainInterrupted int `json:"drain_interrupted"`
	DrainResumed     int `json:"drain_resumed"`
	DrainLost        int `json:"drain_lost"`
	DrainDuplicated  int `json:"drain_duplicated"`
}

// WriteJSON writes the report to path.
func (r *ServeBenchReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadServeReport reads a report written by WriteJSON.
func LoadServeReport(path string) (*ServeBenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r ServeBenchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Schema != ServeBenchSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, r.Schema, ServeBenchSchema)
	}
	return &r, nil
}

// CompareServeReports checks current against baseline: tracked service
// numbers may not regress more than maxRegressPct percent — latency up
// (p50, p99) or throughput down. Fairness and drain integrity are
// absolute in-run gates (ServeBench applies them), not baseline-
// relative. It returns one message per violation; empty means OK.
func CompareServeReports(baseline, current *ServeBenchReport, maxRegressPct float64) []string {
	var bad []string
	tol := 1 + maxRegressPct/100
	if baseline.P50Ms > 0 && current.P50Ms > baseline.P50Ms*tol {
		bad = append(bad, fmt.Sprintf("p50 latency regressed: %.1f ms > ceiling %.1f (baseline %.1f, tolerance %.0f%%)",
			current.P50Ms, baseline.P50Ms*tol, baseline.P50Ms, maxRegressPct))
	}
	if baseline.P99Ms > 0 && current.P99Ms > baseline.P99Ms*tol {
		bad = append(bad, fmt.Sprintf("p99 latency regressed: %.1f ms > ceiling %.1f (baseline %.1f, tolerance %.0f%%)",
			current.P99Ms, baseline.P99Ms*tol, baseline.P99Ms, maxRegressPct))
	}
	floor := baseline.JobsPerSec * (1 - maxRegressPct/100)
	if baseline.JobsPerSec > 0 && current.JobsPerSec < floor {
		bad = append(bad, fmt.Sprintf("throughput regressed: %.1f jobs/s < floor %.1f (baseline %.1f, tolerance %.0f%%)",
			current.JobsPerSec, floor, baseline.JobsPerSec, maxRegressPct))
	}
	return bad
}

// serveBenchClient is the HTTP load generator: every interaction with
// the server under test goes over a real localhost TCP listener, so
// the measured latency includes the full serving stack.
type serveBenchClient struct {
	base   string
	client *http.Client
	sem    chan struct{} // caps in-flight requests (file descriptors)
}

func (c *serveBenchClient) do(req *http.Request) (*http.Response, error) {
	c.sem <- struct{}{}
	defer func() { <-c.sem }()
	return c.client.Do(req)
}

// submit POSTs one job and returns its server-assigned ID.
func (c *serveBenchClient) submit(spec serve.JobSpec) (string, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return "", err
	}
	req, err := http.NewRequest("POST", c.base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	resp, err := c.do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var view serve.JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusCreated {
		return "", fmt.Errorf("submit: HTTP %d", resp.StatusCode)
	}
	return view.ID, nil
}

// view GETs one job's current projection.
func (c *serveBenchClient) view(id string) (serve.JobView, error) {
	req, err := http.NewRequest("GET", c.base+"/v1/jobs/"+id, nil)
	if err != nil {
		return serve.JobView{}, err
	}
	resp, err := c.do(req)
	if err != nil {
		return serve.JobView{}, err
	}
	defer resp.Body.Close()
	var v serve.JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return serve.JobView{}, err
	}
	return v, nil
}

// result GETs one job's full stats payload.
func (c *serveBenchClient) result(id string) (serve.JobResult, error) {
	req, err := http.NewRequest("GET", c.base+"/v1/jobs/"+id+"/result", nil)
	if err != nil {
		return serve.JobResult{}, err
	}
	resp, err := c.do(req)
	if err != nil {
		return serve.JobResult{}, err
	}
	defer resp.Body.Close()
	var r serve.JobResult
	if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
		return serve.JobResult{}, err
	}
	return r, nil
}

// startServeBench opens a server over dir and serves it on an
// ephemeral localhost port. The returned shutdown closes the listener
// but not the server, so callers control Drain/Close ordering.
func startServeBench(dir string, opts serve.Options) (*serve.Server, *serveBenchClient, func(), error) {
	opts.StateDir = dir
	s, err := serve.New(opts)
	if err != nil {
		return nil, nil, nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		s.Close()
		return nil, nil, nil, err
	}
	httpSrv := &http.Server{Handler: s.Handler()}
	go httpSrv.Serve(ln)
	client := &serveBenchClient{
		base:   "http://" + ln.Addr().String(),
		client: &http.Client{},
		sem:    make(chan struct{}, 64),
	}
	return s, client, func() { httpSrv.Close() }, nil
}

// benchJobXYZ is the shared tiny system every load job integrates: a
// water dimer under the LJ surrogate keeps per-job compute in the
// milliseconds so the measurement stresses the serving machinery
// (admission, queueing, durability), not the quantum chemistry.
func benchJobXYZ() string {
	var b strings.Builder
	molecule.WaterCluster(2).WriteXYZ(&b)
	return b.String()
}

// serveBenchLoad runs the load phase: jobs submissions fanned across
// tenants, all completions awaited over HTTP polling.
func serveBenchLoad(c *Config, rep *ServeBenchReport) error {
	dir, err := os.MkdirTemp("", "fragmd-servebench-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	s, client, shutdown, err := startServeBench(dir, serve.Options{
		MaxActive: rep.MaxActive, MaxQueued: rep.Jobs + 16,
		CheckpointEvery: rep.StepsPerJob, // one durable chunk per job
	})
	if err != nil {
		return err
	}
	defer shutdown()
	defer s.Close()

	xyz := benchJobXYZ()
	type timing struct {
		id     string
		t0     time.Time
		lat    time.Duration
		status serve.Status
	}
	timings := make([]timing, rep.Jobs)
	start := time.Now()

	// Fairness sampler: poll the per-tenant census and keep the worst
	// completed-jobs imbalance seen in the mid-run window, where every
	// tenant should have work both done and outstanding.
	samplerDone := make(chan struct{})
	var worstRatio float64
	go func() {
		defer close(samplerDone)
		for {
			tenants, _ := s.Stats()
			total, minDone, maxDone := 0, -1, 0
			for _, tc := range tenants {
				total += tc.Done
				if minDone < 0 || tc.Done < minDone {
					minDone = tc.Done
				}
				if tc.Done > maxDone {
					maxDone = tc.Done
				}
			}
			if total >= rep.Jobs {
				return
			}
			if 4*total >= rep.Jobs && 4*total <= 3*rep.Jobs && minDone > 0 {
				if r := float64(maxDone) / float64(minDone); r > worstRatio {
					worstRatio = r
				}
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()

	var wg sync.WaitGroup
	for i := range timings {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			spec := serve.JobSpec{
				Tenant: fmt.Sprintf("tenant-%d", i%rep.Tenants),
				XYZ:    xyz, Potential: "lj", Steps: rep.StepsPerJob,
			}
			timings[i].t0 = time.Now()
			id, err := client.submit(spec)
			if err != nil {
				timings[i].status = serve.StatusFailed
				c.fail(fmt.Sprintf("serve: submit %d: %v", i, err))
				return
			}
			timings[i].id = id
			for {
				v, err := client.view(id)
				if err == nil && (v.Status == serve.StatusDone || v.Status == serve.StatusFailed || v.Status == serve.StatusCancelled) {
					timings[i].lat = time.Since(timings[i].t0)
					timings[i].status = v.Status
					return
				}
				time.Sleep(2 * time.Millisecond)
			}
		}(i)
	}
	wg.Wait()
	rep.WallSeconds = time.Since(start).Seconds()
	<-samplerDone

	lats := make([]float64, 0, rep.Jobs)
	for i, tm := range timings {
		if tm.status != serve.StatusDone {
			c.fail(fmt.Sprintf("serve: job %d (%s) ended %q, want done", i, tm.id, tm.status))
			continue
		}
		lats = append(lats, float64(tm.lat)/float64(time.Millisecond))
	}
	sort.Float64s(lats)
	if len(lats) > 0 {
		rep.P50Ms = lats[len(lats)/2]
		rep.P99Ms = lats[len(lats)*99/100]
	}
	rep.JobsPerSec = float64(len(lats)) / rep.WallSeconds
	rep.FairnessRatio = worstRatio
	return nil
}

// serveBenchDrain runs the drain-integrity phase: a burst of longer
// jobs, a mid-burst Drain+Close (the SIGTERM path), a restart on the
// same state directory, and a full audit — no job lost, no step
// duplicated or skipped.
func serveBenchDrain(c *Config, rep *ServeBenchReport) error {
	dir, err := os.MkdirTemp("", "fragmd-servebench-drain-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	const jobs, steps = 48, 20
	opts := serve.Options{MaxActive: 4, MaxQueued: jobs + 4, CheckpointEvery: 1}
	s, client, shutdown, err := startServeBench(dir, opts)
	if err != nil {
		return err
	}

	xyz := benchJobXYZ()
	ids := make([]string, jobs)
	for i := range ids {
		if ids[i], err = client.submit(serve.JobSpec{
			Tenant: fmt.Sprintf("tenant-%d", i%rep.Tenants),
			XYZ:    xyz, Potential: "lj", Steps: steps,
		}); err != nil {
			shutdown()
			s.Close()
			return err
		}
	}
	// Let a few jobs finish so the drain lands mid-burst, then pull the
	// plug the way the serve subcommand's SIGTERM handler does.
	for {
		tenants, _ := s.Stats()
		done := 0
		for _, tc := range tenants {
			done += tc.Done
		}
		if done >= 4 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := s.Drain(context.Background()); err != nil {
		shutdown()
		s.Close()
		return err
	}
	doneAtDrain := 0
	tenants, _ := s.Stats()
	for _, tc := range tenants {
		doneAtDrain += tc.Done
	}
	shutdown()
	s.Close()
	rep.DrainInterrupted = jobs - doneAtDrain
	if rep.DrainInterrupted == 0 {
		c.fail("serve: drain landed after every job finished — no interruption exercised")
	}

	// Successor on the same state directory: every parked job resumes.
	s2, client2, shutdown2, err := startServeBench(dir, opts)
	if err != nil {
		return err
	}
	defer shutdown2()
	defer s2.Close()
	deadline := time.Now().Add(5 * time.Minute)
	for _, id := range ids {
		for {
			v, err := client2.view(id)
			if err == nil && v.Status == serve.StatusDone {
				break
			}
			if err == nil && (v.Status == serve.StatusFailed || v.Status == serve.StatusCancelled) {
				c.fail(fmt.Sprintf("serve: job %s ended %q after restart", id, v.Status))
				rep.DrainLost++
				break
			}
			if time.Now().After(deadline) {
				c.fail(fmt.Sprintf("serve: job %s not done after restart (lost work)", id))
				rep.DrainLost++
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	rep.DrainResumed = jobs - doneAtDrain - rep.DrainLost

	// Audit: every job's record must hold exactly steps 0..steps-1.
	for _, id := range ids {
		res, err := client2.result(id)
		if err != nil {
			c.fail(fmt.Sprintf("serve: result %s: %v", id, err))
			continue
		}
		if len(res.Stats) != steps {
			c.fail(fmt.Sprintf("serve: job %s recorded %d steps, want %d", id, len(res.Stats), steps))
			rep.DrainLost++
			continue
		}
		for i, st := range res.Stats {
			if st.Step != i {
				c.fail(fmt.Sprintf("serve: job %s stats[%d].step = %d — duplicated or skipped step", id, i, st.Step))
				rep.DrainDuplicated++
				break
			}
		}
	}
	return nil
}

// ServeBench load-tests the multi-tenant trajectory server end to end
// over real HTTP (DESIGN.md §12): a burst of small concurrent jobs
// across tenants measuring latency, throughput and scheduling
// fairness, then a drain/restart cycle auditing that interrupted work
// is neither lost nor duplicated. Writes BENCH_serve.json when
// configured and gates against a committed baseline when one is
// supplied.
func ServeBench(c *Config) {
	rep := &ServeBenchReport{
		Schema: ServeBenchSchema,
		GoOS:   runtime.GOOS, GoArch: runtime.GOARCH, NumCPU: runtime.NumCPU(),
		Quick: c.Quick,
		Jobs:  1000, Tenants: 4, StepsPerJob: 2,
		MaxActive: runtime.NumCPU(),
	}
	if !c.Quick {
		rep.Jobs, rep.StepsPerJob = 2000, 3
	}
	if rep.MaxActive < 4 {
		rep.MaxActive = 4
	}

	c.printf("Trajectory-server load test (DESIGN.md §12): %d LJ jobs × %d steps,\n", rep.Jobs, rep.StepsPerJob)
	c.printf("%d tenants, %d active, submissions and polling over localhost HTTP\n\n", rep.Tenants, rep.MaxActive)
	if err := serveBenchLoad(c, rep); err != nil {
		c.fail(fmt.Sprintf("serve: load phase: %v", err))
		return
	}
	c.printf("  wall           %8.2f s\n", rep.WallSeconds)
	c.printf("  throughput     %8.1f jobs/s\n", rep.JobsPerSec)
	c.printf("  latency p50    %8.1f ms\n", rep.P50Ms)
	c.printf("  latency p99    %8.1f ms\n", rep.P99Ms)
	c.printf("  fairness       %8.2f max/min completed per tenant (mid-run worst; gate ≤ 2)\n", rep.FairnessRatio)
	if rep.FairnessRatio > 2 {
		c.fail(fmt.Sprintf("serve: fairness ratio %.2f exceeds 2 — round-robin admission is not holding", rep.FairnessRatio))
	}

	if err := serveBenchDrain(c, rep); err != nil {
		c.fail(fmt.Sprintf("serve: drain phase: %v", err))
		return
	}
	c.printf("\nDrain/restart audit: %d interrupted, %d resumed, %d lost, %d duplicated\n",
		rep.DrainInterrupted, rep.DrainResumed, rep.DrainLost, rep.DrainDuplicated)
	if rep.DrainLost > 0 || rep.DrainDuplicated > 0 {
		c.fail(fmt.Sprintf("serve: drain integrity: %d lost, %d duplicated (both must be 0)",
			rep.DrainLost, rep.DrainDuplicated))
	}
	c.printf("\nShape to verify: p99 stays within the same order as p50 (admission keeps\n")
	c.printf("queues bounded), per-tenant completions stay within 2× of each other, and\n")
	c.printf("the drain cycle preserves every admitted step exactly once.\n")

	if c.BenchJSON != "" {
		if err := rep.WriteJSON(c.BenchJSON); err != nil {
			c.fail(fmt.Sprintf("write %s: %v", c.BenchJSON, err))
		} else {
			c.printf("\nwrote %s\n", c.BenchJSON)
		}
	}
	if c.Baseline != "" {
		base, err := LoadServeReport(c.Baseline)
		if err != nil {
			c.fail(fmt.Sprintf("load baseline: %v", err))
			return
		}
		if base.NumCPU != rep.NumCPU || base.GoOS != rep.GoOS || base.GoArch != rep.GoArch {
			c.printf("note: baseline machine (%s/%s, %d cpu) differs from this one (%s/%s, %d cpu);\n"+
				"      absolute latency/throughput gates are weak across machine classes.\n",
				base.GoOS, base.GoArch, base.NumCPU, rep.GoOS, rep.GoArch, rep.NumCPU)
		}
		viol := CompareServeReports(base, rep, c.MaxRegressPct)
		if len(viol) == 0 {
			c.printf("baseline %s: service numbers within %.0f%% — OK\n", c.Baseline, c.MaxRegressPct)
			return
		}
		for _, v := range viol {
			c.fail(v)
		}
	}
}
