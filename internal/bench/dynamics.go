package bench

import (
	"math"
	"math/rand"
	"time"

	"github.com/fragmd/fragmd/internal/basis"
	"github.com/fragmd/fragmd/internal/chem"
	"github.com/fragmd/fragmd/internal/cluster"
	"github.com/fragmd/fragmd/internal/fragment"
	"github.com/fragmd/fragmd/internal/md"
	"github.com/fragmd/fragmd/internal/molecule"
	"github.com/fragmd/fragmd/internal/potential"
	"github.com/fragmd/fragmd/internal/sched"
)

func timeNow() time.Time            { return time.Now() }
func timeSince(t time.Time) float64 { return time.Since(t).Seconds() }

// Fig5 reproduces the dimer/trimer energy-contribution analysis (paper
// Fig. 5): |ΔE| against centroid separation for a protein-fibril
// analogue, from which the cutoffs are chosen where contributions fall
// below 0.1 kJ/mol.
func Fig5(c *Config) {
	strands, residues := 1, 4
	opts := fragment.Options{TrimerCutoff: 8 * chem.BohrPerAngstrom}
	auxOpts := basis.AuxOptions{PerL: []int{4, 3, 2}}
	if !c.Quick {
		strands, residues = 2, 4
		opts = fragment.Options{}
		auxOpts = glyAuxOpts
	}
	g, monomers := molecule.BetaFibril(strands, residues)
	f, err := fragment.New(g, monomers, opts)
	if err != nil {
		c.printf("error: %v\n", err)
		return
	}
	// Energy-only: the cutoff scan needs ΔE values, not forces.
	res, err := f.Compute(&potential.RIMP2{Basis: "sto-3g", AuxOpts: auxOpts, EnergyOnly: true})
	if err != nil {
		c.printf("error: %v\n", err)
		return
	}
	c.printf("Fig. 5 — MBE energy contributions vs centroid distance (β-fibril analogue,\n")
	c.printf("%d strands × %d residues, %d atoms, RI-MP2/sto-3g)\n", strands, residues, g.N())
	c.printf("%8s %6s %14s\n", "dist(Å)", "order", "|ΔE| kJ/mol")
	threshold := 0.1 // kJ/mol, the paper's negligibility line
	var maxBeyond10 float64
	for _, ct := range f.Contributions(res) {
		kj := math.Abs(ct.DeltaE) * chem.KJPerMolPerHartree
		c.printf("%8.2f %6d %14.4f\n", ct.Dist*chem.AngstromPerBohr, ct.Order, kj)
		if ct.Dist*chem.AngstromPerBohr > 10 && kj > maxBeyond10 {
			maxBeyond10 = kj
		}
	}
	c.printf("\nShape to verify: contributions decay with distance; beyond ~10 Å the largest\n")
	c.printf("is %.4f kJ/mol (cutoff criterion: drop below %.1f kJ/mol, §VII-A).\n", maxBeyond10, threshold)
}

// Fig6 reproduces the total-energy conservation trajectory (paper
// Fig. 6): NVE AIMD with asynchronous time steps; the total energy must
// fluctuate without drifting.
func Fig6(c *Config) {
	var f *fragment.Fragmentation
	var eval fragment.Evaluator
	var steps int
	var dtFs float64
	if c.Quick {
		// Real MBE3/RI-MP2 dynamics on a small water cluster.
		g := molecule.WaterCluster(3)
		var err error
		f, err = fragment.ByMolecule(g, 3, 1, fragment.Options{})
		if err != nil {
			c.printf("error: %v\n", err)
			return
		}
		eval = &potential.RIMP2{Basis: "sto-3g", AuxOpts: glyAuxOpts}
		steps, dtFs = 6, 0.5
	} else {
		// Longer trajectory on the 6PQ5-analogue with the surrogate
		// potential (full QC would take days on a dev box).
		g, monomers := molecule.BetaFibril(6, 6)
		var err error
		f, err = fragment.New(g, monomers, fragment.Options{
			DimerCutoff:  22 * chem.BohrPerAngstrom,
			TrimerCutoff: 9 * chem.BohrPerAngstrom,
		})
		if err != nil {
			c.printf("error: %v\n", err)
			return
		}
		eval = &potential.LennardJones{}
		steps, dtFs = 200, 1.0
	}
	eng, err := sched.New(f, eval, sched.Options{Workers: 2, Async: true, Dt: dtFs * chem.AtomicTimePerFs})
	if err != nil {
		c.printf("error: %v\n", err)
		return
	}
	state := md.NewState(f.Geom.Clone())
	state.SampleVelocities(150, rand.New(rand.NewSource(42)))
	c.printf("Fig. 6 — NVE total energy with asynchronous time steps (%d atoms, dt=%.2f fs)\n",
		f.Geom.N(), dtFs)
	c.printf("%6s %18s %14s %14s\n", "step", "Etot (Ha)", "Ekin (Ha)", "drift (µHa)")
	var e0 float64
	stats, err := eng.Run(state, steps, nil)
	if err != nil {
		c.printf("error: %v\n", err)
		return
	}
	var maxDrift float64
	for i, st := range stats {
		if i == 0 {
			e0 = st.Etot
		}
		drift := (st.Etot - e0) * 1e6
		if math.Abs(drift) > maxDrift {
			maxDrift = math.Abs(drift)
		}
		if i%maxInt(1, steps/12) == 0 || i == steps-1 {
			c.printf("%6d %18.8f %14.8f %14.2f\n", st.Step, st.Etot, st.Ekin, drift)
		}
	}
	c.printf("\nShape to verify: bounded fluctuation, no secular drift (max |ΔE| = %.2f µHa).\n", maxDrift)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// AsyncAblation measures async vs synchronous time stepping with the
// real in-process engine (paper §VII-A: 24 % on 6PQ5, 40 % on 2BEG) and
// with the cluster simulator at the paper's node counts.
func AsyncAblation(c *Config) {
	// In-process: surrogate potential with per-fragment compute delay to
	// emulate heterogeneous fragment costs on limited cores.
	g, monomers := molecule.BetaFibril(3, 4)
	f, err := fragment.New(g, monomers, fragment.Options{
		DimerCutoff:  22 * chem.BohrPerAngstrom,
		TrimerCutoff: 9 * chem.BohrPerAngstrom,
	})
	if err != nil {
		c.printf("error: %v\n", err)
		return
	}
	delay := 0.01
	if !c.Quick {
		delay = 0.03
	}
	eval := &potential.LennardJones{Delay: delay}
	run := func(async bool) float64 {
		eng, err := sched.New(f, eval, sched.Options{Workers: 4, Async: async, Dt: 0.5 * chem.AtomicTimePerFs})
		if err != nil {
			return math.NaN()
		}
		state := md.NewState(f.Geom.Clone())
		state.SampleVelocities(100, rand.New(rand.NewSource(7)))
		start := timeNow()
		if _, err := eng.Run(state, 4, nil); err != nil {
			return math.NaN()
		}
		// Total makespan: per-step spans overlap under async and would
		// double-count.
		return timeSince(start)
	}
	tSync := run(false)
	tAsync := run(true)
	c.printf("§VII-A — asynchronous vs synchronous time steps\n\n")
	c.printf("In-process engine (β-fibril analogue, %d monomers, 4 workers):\n", len(monomers))
	c.printf("  sync:  %7.2f s   async: %7.2f s   gain: %+5.1f%%\n",
		tSync, tAsync, 100*(tSync/tAsync-1))
	c.printf("  (on a few-core host the async gain is bounded by real CPU capacity;\n")
	c.printf("   the machine simulation below shows the at-scale behaviour)\n")

	// Cluster simulation at the paper's scales.
	c.printf("\nCluster simulation:\n")
	type caseSpec struct {
		name    string
		w       *cluster.Workload
		m       cluster.Machine
		nodes   int
		paperPc float64
	}
	cases := []caseSpec{
		{"6PQ5 analogue, 64 Perlmutter nodes", cluster.FibrilWorkload(6, 6, 22, 9), cluster.Perlmutter(), 64, 24},
		{"2BEG analogue, 1024 Perlmutter nodes", cluster.FibrilWorkload(4, 53, 20, 12), cluster.Perlmutter(), 1024, 40},
	}
	for _, cs := range cases {
		a, err := cluster.Simulate(cs.w, cs.m, cluster.Options{Nodes: cs.nodes, Steps: 5, Async: true, Seed: c.Seed, Jitter: c.Jitter})
		if err != nil {
			c.printf("  error: %v\n", err)
			continue
		}
		s, err := cluster.Simulate(cs.w, cs.m, cluster.Options{Nodes: cs.nodes, Steps: 5, Async: false, Seed: c.Seed, Jitter: c.Jitter})
		if err != nil {
			c.printf("  error: %v\n", err)
			continue
		}
		c.printf("  %-38s async %6.2f s/step, sync %6.2f s/step, gain %+5.1f%% (paper: +%.0f%%)\n",
			cs.name, a.AvgStep, s.AvgStep, 100*(s.AvgStep/a.AvgStep-1), cs.paperPc)
	}
	c.printf("\nShape to verify: async is consistently faster by tens of percent, more so\n")
	c.printf("when polymer count per worker is small (2BEG case).\n")
}
