package bench

import (
	"github.com/fragmd/fragmd/internal/cluster"
)

// Fig7 reproduces the strong-scaling study (paper Fig. 7): the
// 80-molecule paracetamol sphere on Perlmutter (64→1,536 nodes, 91 %
// efficiency at full machine) and the 24,000- and 44,532-molecule urea
// clusters on Frontier (1,024→4,096 and 6,164→9,400 nodes at 92 % and
// 87 %). Under Quick the urea systems are scaled down 10× with node
// counts scaled to match.
func Fig7(c *Config) {
	c.printf("Fig. 7 — strong scaling (discrete-event machine simulation)\n\n")

	para := cluster.ParacetamolWorkload(80, 18, 18)
	c.printf("Perlmutter, 80-molecule paracetamol sphere: %s\n", para)
	perlNodes := []int{64, 128, 256, 512, 1024, 1536}
	runScaling(c, para, cluster.Perlmutter(), perlNodes, "paper: 91%% at 1,536 nodes")

	ureaSmallMols, ureaBigMols := 24000, 44532
	frontierSmall := []int{1024, 2048, 4096}
	frontierBig := []int{6164, 8192, 9400}
	if c.Quick {
		ureaSmallMols, ureaBigMols = 2400, 4440
		frontierSmall = []int{102, 205, 410}
		frontierBig = []int{616, 820, 940}
	}
	ureaS := cluster.UreaWorkload(ureaSmallMols, 4, 15.3, 15.3)
	c.printf("\nFrontier, %d-molecule urea cluster: %s\n", ureaSmallMols, ureaS)
	runScaling(c, ureaS, cluster.Frontier(), frontierSmall, "paper: 92%% at 4,096 nodes")

	ureaB := cluster.UreaWorkload(ureaBigMols, 4, 15.3, 15.3)
	c.printf("\nFrontier, %d-molecule urea cluster: %s\n", ureaBigMols, ureaB)
	runScaling(c, ureaB, cluster.Frontier(), frontierBig, "paper: 87%% at 9,400 nodes")
}

func runScaling(c *Config, w *cluster.Workload, m cluster.Machine, nodes []int, note string) {
	c.printf("%8s %10s %12s %10s %10s\n", "nodes", "s/step", "PFLOP/s", "% peak", "par.eff")
	var base *cluster.Result
	for _, n := range nodes {
		r, err := cluster.Simulate(w, m, cluster.Options{Nodes: n, Steps: 3, Async: true, Seed: c.Seed, Jitter: c.Jitter})
		if err != nil {
			c.printf("  error at %d nodes: %v\n", n, err)
			return
		}
		if base == nil {
			base = r
		}
		eff := base.AvgStep / r.AvgStep * float64(base.Nodes) / float64(r.Nodes)
		c.printf("%8d %10.2f %12.2f %9.0f%% %9.0f%%\n",
			n, r.AvgStep, r.PFLOPS, 100*r.PeakFraction, 100*eff)
	}
	c.printf("  (%s)\n", note)
}

// Fig8 reproduces the weak-scaling study (paper Fig. 8): growing urea
// spheres keeping ≈4 polymers per GCD from 512 to 4,096 Frontier nodes
// (Quick: 32→256), with the slight 4,096-node dip from coordinator
// (dynamic load balancing) overhead.
func Fig8(c *Config) {
	nodes := []int{32, 64, 128, 256}
	if !c.Quick {
		nodes = []int{512, 1024, 2048, 4096}
	}
	m := cluster.Frontier()
	c.printf("Fig. 8 — weak scaling, ~4 polymers per GCD (machine simulation)\n")
	c.printf("%8s %10s %12s %10s %10s %12s\n", "nodes", "polymers", "s/step", "% peak", "weak eff", "poly/GCD")
	var base *cluster.Result
	for _, n := range nodes {
		gcds := n * m.GCDsPerNode
		w := cluster.UreaWorkloadPolymerTarget(4*gcds, 4, 15.3, 15.3)
		r, err := cluster.Simulate(w, m, cluster.Options{Nodes: n, Steps: 3, Async: true, Seed: c.Seed, Jitter: c.Jitter})
		if err != nil {
			c.printf("  error at %d nodes: %v\n", n, err)
			return
		}
		if base == nil {
			base = r
		}
		weakEff := base.AvgStep / r.AvgStep
		c.printf("%8d %10d %12.2f %9.0f%% %9.0f%% %11.1f\n",
			n, len(w.Polymers), r.AvgStep, 100*r.PeakFraction, 100*weakEff,
			float64(len(w.Polymers))/float64(gcds))
	}
	c.printf("  (paper: near-flat with a slight efficiency drop at 4,096 nodes from\n")
	c.printf("   dynamic-load-balancing communication overheads)\n")
}

// Table5 reproduces the record runs (paper Table V / §VII-C): several
// AIMD steps of the 44,532- and 63,854-molecule urea systems on 9,400
// Frontier nodes — the million-electron, ~1 EFLOP/s-class runs — plus
// the 3.4 s/step 2BEG protein run on 1,024 Perlmutter nodes. Under
// Quick the urea systems are scaled down 20× (with nodes scaled to
// match); --full runs the paper-size workloads (minutes of enumeration).
func Table5(c *Config) {
	c.printf("Table V — record performance and time-step latency (machine simulation)\n\n")
	type spec struct {
		mols, nodes int
		note        string
	}
	specs := []spec{{44532, 9400, "paper: 13.7 min/step, 932.6 PFLOP/s"},
		{63854, 9400, "paper: 25.6 min/step, 1006.7 PFLOP/s (59% of peak), 1.55 ZFLOP total"}}
	if c.Quick {
		specs = []spec{{2226, 470, "scaled 1/20 of the 44,532-molecule run"},
			{3192, 470, "scaled 1/20 of the 63,854-molecule run"}}
	}
	m := cluster.Frontier()
	for _, s := range specs {
		w := cluster.UreaWorkload(s.mols, 4, 15.3, 15.3)
		r, err := cluster.Simulate(w, m, cluster.Options{Nodes: s.nodes, Steps: 3, Async: true, Seed: c.Seed, Jitter: c.Jitter})
		if err != nil {
			c.printf("  error: %v\n", err)
			continue
		}
		c.printf("Urea %d molecules (%d electrons) on %d Frontier nodes:\n", s.mols, w.Electrons(), s.nodes)
		c.printf("  %s\n", w)
		c.printf("  %.1f min/step, %.1f PFLOP/s sustained (%.0f%% of sustained peak), %.2f ZFLOP/step\n",
			r.AvgStep/60, r.PFLOPS, 100*r.PeakFraction, r.TotalFLOPs/float64(r.Steps)/1e21)
		c.printf("  (%s)\n\n", s.note)
	}

	w2beg := cluster.FibrilWorkload(4, 53, 20, 12)
	r, err := cluster.Simulate(w2beg, cluster.Perlmutter(), cluster.Options{Nodes: 1024, Steps: 5, Async: true, Seed: c.Seed, Jitter: c.Jitter})
	if err != nil {
		c.printf("  error: %v\n", err)
		return
	}
	c.printf("2BEG analogue (%d atoms-scale workload) on 1,024 Perlmutter nodes:\n", 1496)
	c.printf("  %s\n", w2beg)
	c.printf("  %.2f s/step → %.1f ps/day at 1 fs steps (paper: 3.4 s/step, 25 ps/day)\n",
		r.AvgStep, 86400/r.AvgStep/1000)
	c.printf("\nShape to verify: >10⁶-electron workloads sustain >50%% of machine peak;\n")
	c.printf("the protein system reaches seconds-per-step latency.\n")
}
