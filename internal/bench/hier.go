package bench

import (
	"math"
	"math/rand"

	"github.com/fragmd/fragmd/internal/chem"
	"github.com/fragmd/fragmd/internal/cluster"
	"github.com/fragmd/fragmd/internal/fragment"
	"github.com/fragmd/fragmd/internal/md"
	"github.com/fragmd/fragmd/internal/molecule"
	"github.com/fragmd/fragmd/internal/potential"
	"github.com/fragmd/fragmd/internal/sched"
)

// Hier sweeps the hierarchical coordinator (§VII / DESIGN.md §6) —
// group-coordinator count × super→group batch size, with work stealing
// — against the flat single-coordinator scheduler, in both backends of
// the shared internal/coord policy core.
//
// The simulated workload is deliberately dispatch-bound: thousands of
// single-molecule urea fragments (~1.4 ms each) against thousands of
// GCDs saturate a flat serialised coordinator, which is exactly the
// regime the paper's hierarchy exists for. The live in-process sweep
// then shows the same knobs on a real trajectory, where the check is
// physics: every configuration must reproduce the flat scheduler's
// energies to ≤ 1e-10 Ha.
func Hier(c *Config) {
	// --- discrete-event backend: dispatch-bound workload sweep --------
	nMol, nodes := 4000, 512
	if !c.Quick {
		nMol, nodes = 16000, 2048
	}
	w := cluster.UreaWorkload(nMol, 1, 4.0, 0)
	m := cluster.Frontier()
	// With Config.Jitter unset this experiment substitutes ±10 % noise
	// (documented at the mbebench -jitter flag): a perfectly uniform
	// deterministic workload has no load imbalance for the stealing
	// path to correct. The header below reports the value used.
	jitter := c.Jitter
	if jitter == 0 {
		jitter = 0.1
	}
	c.printf("hier — hierarchical group coordinators vs flat scheduler (machine simulation)\n\n")
	c.printf("Workload: %s (single-molecule fragments, dispatch-bound)\n", w)
	c.printf("Machine: %s, %d nodes (%d GCDs), jitter ±%.0f%%\n\n",
		m.Name, nodes, nodes*m.GCDsPerNode, 100*jitter)

	type cfgRow struct {
		name          string
		groups, batch int
		steal         bool
	}
	rows := []cfgRow{
		{"flat", 0, 0, false},
		{"g4 b8", 4, 8, true},
		{"g8 b16", 8, 16, true},
		{"g8 b32", 8, 32, true},
		{"g16 b32", 16, 32, true},
	}
	c.printf("%10s %10s %12s %10s %9s %8s %9s\n",
		"config", "ms/step", "tasks/s", "coordutil", "batches", "steals", "speedup")
	var flat *cluster.Result
	var bestSpeedup, bestUtilDrop float64
	for _, r := range rows {
		res, err := cluster.Simulate(w, m, cluster.Options{
			Nodes: nodes, Steps: 2, Async: true,
			Groups: r.groups, Batch: r.batch, Steal: r.steal,
			Seed: c.Seed, Jitter: jitter,
		})
		if err != nil {
			c.printf("  error: %v\n", err)
			return
		}
		if flat == nil {
			flat = res
		}
		speedup := flat.AvgStep / res.AvgStep
		c.printf("%10s %10.2f %12.0f %9.0f%% %9d %8d %8.2fx\n",
			r.name, 1e3*res.AvgStep, res.Throughput, 100*res.CoordUtil,
			res.Batches, res.Steals, speedup)
		if r.groups > 0 {
			if speedup > bestSpeedup {
				bestSpeedup = speedup
			}
			if drop := flat.CoordUtil - res.CoordUtil; drop > bestUtilDrop {
				bestUtilDrop = drop
			}
		}
	}
	c.printf("\nShape to verify: batching amortises the serialised super-coordinator\n")
	c.printf("(utilisation down) and the group layer dispatches in parallel\n")
	c.printf("(throughput up). Best hierarchy: %.2fx throughput, −%.0f points of\n",
		bestSpeedup, 100*bestUtilDrop)
	c.printf("coordinator utilisation vs flat.\n")
	if bestSpeedup <= 1 || bestUtilDrop <= 0 {
		c.fail("hierarchical dispatch did not beat the flat scheduler on a dispatch-bound workload")
	}

	// --- live in-process backend: same knobs, physics unchanged -------
	g, monomers := molecule.BetaFibril(3, 4)
	f, err := fragment.New(g, monomers, fragment.Options{
		DimerCutoff:  22 * chem.BohrPerAngstrom,
		TrimerCutoff: 9 * chem.BohrPerAngstrom,
	})
	if err != nil {
		c.printf("error: %v\n", err)
		return
	}
	delay := 0.004
	if !c.Quick {
		delay = 0.02
	}
	eval := &potential.LennardJones{Delay: delay}
	steps := 3
	run := func(groups, batch int, steal bool) ([]sched.StepStats, float64, error) {
		eng, err := sched.New(f, eval, sched.Options{
			Workers: 4, Async: true, Dt: 0.5 * chem.AtomicTimePerFs,
			Groups: groups, Batch: batch, Steal: steal,
		})
		if err != nil {
			return nil, 0, err
		}
		state := md.NewState(f.Geom.Clone())
		state.SampleVelocities(100, rand.New(rand.NewSource(7)))
		start := timeNow()
		stats, err := eng.Run(state, steps, nil)
		return stats, timeSince(start), err
	}
	c.printf("\nLive in-process engine (β-fibril analogue, %d monomers, 4 workers):\n", len(monomers))
	flatStats, flatWall, err := run(0, 0, false)
	if err != nil {
		c.printf("error: %v\n", err)
		return
	}
	c.printf("%10s %10s %16s\n", "config", "s/run", "max|ΔEtot| vs flat")
	c.printf("%10s %10.2f %16s\n", "flat", flatWall, "—")
	for _, r := range rows[1:] {
		stats, wall, err := run(r.groups, r.batch, r.steal)
		if err != nil {
			c.printf("error: %v\n", err)
			return
		}
		var maxDev float64
		for i := range stats {
			if d := math.Abs(stats[i].Etot - flatStats[i].Etot); d > maxDev {
				maxDev = d
			}
		}
		c.printf("%10s %10.2f %15.1e\n", r.name, wall, maxDev)
		if maxDev > 1e-10 {
			c.fail("hierarchical scheduling changed the trajectory energies (live backend)")
		}
	}
	c.printf("\nShape to verify: on a few-core host the live gain is bounded by CPU\n")
	c.printf("capacity — the knobs change dispatch placement only, never the physics\n")
	c.printf("(identical energies); the simulation above shows the at-scale effect.\n")
}
