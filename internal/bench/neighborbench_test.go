package bench

import (
	"math"
	"path/filepath"
	"testing"
)

func syntheticNeighborReport(exponent, speedup float64) *NeighborBenchReport {
	return &NeighborBenchReport{
		Schema: NeighborBenchSchema, Exponent: exponent, Speedup: speedup,
		Rows: []NeighborBenchRow{{Name: "water-3x3x3", Monomers: 27, Atoms: 81,
			EnumSeconds: 1e-4, FieldSeconds: 2e-4, BruteEnumSeconds: 3e-4}},
	}
}

func TestNeighborReportRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_neighbor.json")
	rep := syntheticNeighborReport(1.05, 4)
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadNeighborReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Exponent != 1.05 || got.Speedup != 4 || len(got.Rows) != 1 || got.Rows[0].Monomers != 27 {
		t.Fatalf("round trip mangled report: %+v", got)
	}

	rep.Schema = "something-else/v9"
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := rep.WriteJSON(bad); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadNeighborReport(bad); err == nil {
		t.Fatal("expected schema mismatch error")
	}
}

func TestCompareNeighborReports(t *testing.T) {
	base := syntheticNeighborReport(1.0, 4)

	// Identical run: clean.
	if bad := CompareNeighborReports(base, syntheticNeighborReport(1.0, 4), 25); len(bad) != 0 {
		t.Fatalf("unexpected regressions: %v", bad)
	}
	// Within tolerance: exponent +20 %, speedup −20 %.
	if bad := CompareNeighborReports(base, syntheticNeighborReport(1.2, 3.2), 25); len(bad) != 0 {
		t.Fatalf("within-tolerance drift flagged: %v", bad)
	}
	// Exponent blown past the ceiling (quadratic re-regression).
	if bad := CompareNeighborReports(base, syntheticNeighborReport(2.0, 4), 25); len(bad) != 1 {
		t.Fatalf("exponent regression not flagged: %v", bad)
	}
	// Speedup collapsed below the floor.
	if bad := CompareNeighborReports(base, syntheticNeighborReport(1.0, 1.5), 25); len(bad) != 1 {
		t.Fatalf("speedup regression not flagged: %v", bad)
	}
}

func TestFitLogLogSlope(t *testing.T) {
	// Exact power laws recover their exponent.
	for _, p := range []float64{1, 1.5, 2} {
		var xs, ys []float64
		for _, x := range []float64{10, 20, 40, 80} {
			xs = append(xs, x)
			ys = append(ys, 3*math.Pow(x, p))
		}
		if got := fitLogLogSlope(xs, ys); math.Abs(got-p) > 1e-12 {
			t.Errorf("slope of x^%g: got %g", p, got)
		}
	}
	if got := fitLogLogSlope([]float64{10}, []float64{1}); got != 0 {
		t.Errorf("degenerate fit: got %g, want 0", got)
	}
}

// The real sweep, shrunk: the smallest two quick sizes must produce a
// sane report — positive times, a fitted exponent far below quadratic,
// and a measured brute speedup. This is the O(N) acceptance test's
// in-process form; CI additionally runs the full quick sweep through
// cmd/mbebench with the committed baseline.
func TestRunNeighborSuiteQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling sweep is timing-heavy; run without -short")
	}
	rep := RunNeighborSuite(true)
	if len(rep.Rows) < 3 {
		t.Fatalf("sweep has %d sizes, want ≥ 3", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if row.EnumSeconds <= 0 || row.FieldSeconds <= 0 {
			t.Errorf("%s: non-positive timing %+v", row.Name, row)
		}
	}
	if rep.Exponent <= 0 || rep.Exponent > 1.8 {
		t.Errorf("fitted exponent %.3f is not plausibly sub-quadratic", rep.Exponent)
	}
	if rep.Speedup <= 0 {
		t.Error("no cell-vs-brute speedup measured")
	}
}
