package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"github.com/fragmd/fragmd/internal/linalg"
)

// GemmBenchSchema identifies the BENCH_gemm.json layout; bump on
// incompatible changes so the CI comparator can refuse stale baselines.
// v2 added the packed-asm / packed-f32 engine rows and the
// cpu_features / microkernel provenance fields.
const GemmBenchSchema = "fragmd-bench-gemm/v2"

// GemmBenchRow is one (shape, engine) measurement.
type GemmBenchRow struct {
	Name    string  `json:"name"`    // shape label, stable across runs
	M       int     `json:"m"`       // C is m×n
	K       int     `json:"k"`       // inner dimension
	N       int     `json:"n"`       //
	Kernel  string  `json:"kernel"`  // "stream-NN".."stream-TT", "packed", "packed-asm", "packed-f32"
	Seconds float64 `json:"seconds"` // best-of-reps wall time
	GFLOPS  float64 `json:"gflops"`  // 2·m·n·k / Seconds / 1e9
	Tracked bool    `json:"tracked"` // regression-gated by the CI bench job
}

// GemmBenchReport is the machine-readable output of the GEMM
// microbenchmark suite — the perf trajectory's unit of record.
type GemmBenchReport struct {
	Schema string `json:"schema"`
	GoOS   string `json:"goos"`
	GoArch string `json:"goarch"`
	NumCPU int    `json:"numcpu"`
	// CPUFeatures and MicroKernel record the detected SIMD feature set
	// and the microkernel the packed-asm rows ran on ("" / "go-4x2"
	// when no assembly kernel exists for this machine) so a report is
	// interpretable without knowing which runner produced it.
	CPUFeatures string         `json:"cpu_features"`
	MicroKernel string         `json:"microkernel"`
	Quick       bool           `json:"quick"`
	Rows        []GemmBenchRow `json:"rows"`
}

// gemmBenchShape describes one benchmarked problem.
type gemmBenchShape struct {
	name    string
	m, k, n int
	tracked bool
}

// gemmBenchShapes returns the suite. Quick sizes are the CI (-short)
// set; full adds paper-scale shapes. The tracked shapes are the
// acceptance pair: the square GEMM bound and a tall-skinny RI-MP2
// contraction (virt×aux×virt, k ≫ m, n — Table IV's regime).
func gemmBenchShapes(quick bool) []gemmBenchShape {
	shapes := []gemmBenchShape{
		{"square-256", 256, 256, 256, true},
		{"rimp2-tall-64", 64, 8192, 64, true},
		{"panel-128", 128, 1024, 128, false},
		{"small-24", 24, 24, 24, false},
	}
	if !quick {
		shapes = append(shapes,
			gemmBenchShape{"square-512", 512, 512, 512, false},
			gemmBenchShape{"rimp2-tall-120", 120, 32768, 120, false},
		)
	}
	return shapes
}

// timeGemm returns the best-of-reps seconds for one engine on one shape.
func timeGemm(kern linalg.Kernel, tA, tB linalg.Transpose, a, b, c *linalg.Mat, reps int) float64 {
	best := 0.0
	for r := 0; r < reps; r++ {
		start := time.Now()
		linalg.GemmKernel(kern, tA, tB, 1, a, b, 0, c)
		el := time.Since(start).Seconds()
		if best == 0 || el < best {
			best = el
		}
	}
	return best
}

// engineSecs is one engine's best-of-reps time on a shape.
type engineSecs struct {
	kernel  string
	seconds float64
}

// measureGemmEngines times every engine on one m×k×n problem: the four
// streaming variants, the packed engine on the portable pure-Go
// microkernel (assembly forced off for the duration of that timing, so
// the row means the same thing on every machine), the packed engine on
// the native assembly microkernel when one exists, and the
// mixed-precision packed-f32 engine. It is the single measurement
// methodology shared by Table4 and the BENCH_gemm.json suite:
// deterministic operand fill, streaming variants fed pre-transposed
// operands so only kernel time is on the clock, and the packed engines
// taking the logical orientation directly (their pack step folds the
// transposes).
func measureGemmEngines(m, k, n, reps int) []engineSecs {
	a := linalg.NewMat(m, k)
	b := linalg.NewMat(k, n)
	for i := range a.Data {
		a.Data[i] = 1e-3 * float64(i%97)
	}
	for i := range b.Data {
		b.Data[i] = 1e-3 * float64(i%89)
	}
	c := linalg.NewMat(m, n)
	out := make([]engineSecs, 0, 7)
	for v := 0; v < 4; v++ {
		tA := v == 2 || v == 3
		tB := v == 1 || v == 3
		pa, pb := a, b
		if tA {
			pa = a.T()
		}
		if tB {
			pb = b.T()
		}
		out = append(out, engineSecs{
			"stream-" + linalg.Variant(v).String(),
			timeGemm(linalg.KernelStream, linalg.Transpose(tA), linalg.Transpose(tB), pa, pb, c, reps),
		})
	}
	prev := linalg.SetAsmEnabled(false)
	out = append(out, engineSecs{"packed",
		timeGemm(linalg.KernelPacked, linalg.NoTrans, linalg.NoTrans, a, b, c, reps)})
	linalg.SetAsmEnabled(prev)
	if prev && linalg.AsmAvailable() {
		out = append(out, engineSecs{"packed-asm",
			timeGemm(linalg.KernelPacked, linalg.NoTrans, linalg.NoTrans, a, b, c, reps)})
	}
	out = append(out, engineSecs{"packed-f32",
		timeGemm(linalg.KernelPackedF32, linalg.NoTrans, linalg.NoTrans, a, b, c, reps)})
	return out
}

// RunGemmSuite executes the GEMM microbenchmark suite and returns the
// report. For every shape it measures the four streaming variants (each
// fed pre-transposed operands, so only kernel time is on the clock, as
// in Table4) and the packed engine.
func RunGemmSuite(quick bool) *GemmBenchReport {
	rep := &GemmBenchReport{
		Schema:      GemmBenchSchema,
		GoOS:        runtime.GOOS,
		GoArch:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		CPUFeatures: linalg.CPUFeatures(),
		MicroKernel: linalg.MicroKernelName(),
		Quick:       quick,
	}
	reps := 3
	if !quick {
		reps = 2
	}
	for _, s := range gemmBenchShapes(quick) {
		flops := 2 * float64(s.m) * float64(s.k) * float64(s.n)
		for _, e := range measureGemmEngines(s.m, s.k, s.n, reps) {
			// Tracked rows: the shape-independent streaming reference
			// (NN only — the other variants exist to be slow on bad
			// shapes) and every packed engine. packed-asm and
			// packed-f32 additionally carry same-run ratio gates
			// against their reference engine (see ratioReference).
			tracked := s.tracked && e.kernel != "stream-NT" &&
				e.kernel != "stream-TN" && e.kernel != "stream-TT"
			rep.Rows = append(rep.Rows, GemmBenchRow{
				Name: s.name, M: s.m, K: s.k, N: s.n,
				Kernel:  e.kernel,
				Seconds: e.seconds, GFLOPS: flops / e.seconds / 1e9,
				Tracked: tracked,
			})
		}
	}
	// End-to-end RI-MP2 fragment throughput: the blocked pair-energy
	// loop gated against the pre-change per-(i,j) baseline.
	rep.Rows = append(rep.Rows, runRIMP2E2ERows(quick)...)
	return rep
}

// WriteJSON writes the report to path.
func (r *GemmBenchReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadGemmReport reads a report written by WriteJSON.
func LoadGemmReport(path string) (*GemmBenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r GemmBenchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Schema != GemmBenchSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, r.Schema, GemmBenchSchema)
	}
	return &r, nil
}

// CompareGemmReports checks current against baseline with two gates:
//
//   - Absolute: every tracked baseline row must exist in current
//     (matched by name+kernel) with GFLOP/s no more than maxRegressPct
//     percent below the baseline value. Meaningful only when baseline
//     and current ran on comparable machines.
//   - Relative: for every tracked row whose kernel has a same-run
//     reference (ratioReference: packed vs stream-NN, the blocked
//     RI-MP2 pair loop vs the per-pair baseline), the speedup ratio —
//     measured within one run, so machine-independent — must not fall
//     more than maxRegressPct percent below the baseline ratio. This is
//     the gate that still catches an engine regression when the runner
//     is faster than the machine that recorded the baseline (where the
//     absolute floors are trivially cleared).
//
// It returns one message per violation; empty means no regression.
func CompareGemmReports(baseline, current *GemmBenchReport, maxRegressPct float64) []string {
	index := func(r *GemmBenchReport) map[string]GemmBenchRow {
		m := make(map[string]GemmBenchRow, len(r.Rows))
		for _, row := range r.Rows {
			m[row.Name+"/"+row.Kernel] = row
		}
		return m
	}
	cur := index(current)
	bas := index(baseline)
	var bad []string
	for _, base := range baseline.Rows {
		if !base.Tracked {
			continue
		}
		key := base.Name + "/" + base.Kernel
		now, ok := cur[key]
		if !ok {
			bad = append(bad, fmt.Sprintf("tracked shape %s missing from current report", key))
			continue
		}
		floor := base.GFLOPS * (1 - maxRegressPct/100)
		if now.GFLOPS < floor {
			bad = append(bad, fmt.Sprintf("%s regressed: %.2f GFLOP/s < floor %.2f (baseline %.2f, tolerance %.0f%%)",
				key, now.GFLOPS, floor, base.GFLOPS, maxRegressPct))
		}
		refKernel, hasRef := ratioReference[base.Kernel]
		if !hasRef {
			continue
		}
		baseRef, okB := bas[base.Name+"/"+refKernel]
		curRef, okC := cur[base.Name+"/"+refKernel]
		if !okB || !okC || baseRef.GFLOPS <= 0 || curRef.GFLOPS <= 0 {
			continue
		}
		baseRatio := base.GFLOPS / baseRef.GFLOPS
		curRatio := now.GFLOPS / curRef.GFLOPS
		ratioFloor := baseRatio * (1 - maxRegressPct/100)
		if curRatio < ratioFloor {
			bad = append(bad, fmt.Sprintf("%s %s/%s ratio regressed: %.2fx < floor %.2fx (baseline %.2fx, tolerance %.0f%%)",
				base.Name, base.Kernel, refKernel, curRatio, ratioFloor, baseRatio, maxRegressPct))
		}
	}
	return bad
}

// ratioReference maps a tracked kernel to the same-run reference kernel
// its machine-independent speedup ratio is gated against: the portable
// packed GEMM engine against the streaming NN variant, the assembly
// microkernel against the portable packed engine (the ratio row that
// enforces the ≥4× acceptance bar — a regression in the asm kernel
// shows up here even on a runner faster than the baseline machine),
// the mixed-precision engine against the assembly engine, and the
// blocked RI-MP2 pair loop against the pre-change per-pair loop.
var ratioReference = map[string]string{
	"packed":     "stream-NN",
	"packed-asm": "packed",
	"packed-f32": "packed-asm",
	"blocked":    "pairloop",
}

// GemmBench runs the GEMM/RI-MP2 microbenchmark suite, prints the
// GFLOP/s table with the packed-vs-streaming ratio per shape, writes
// BENCH_gemm.json when configured, and gates against a committed
// baseline when one is supplied. Regressions are recorded on the Config
// for the caller to turn into a non-zero exit.
func GemmBench(c *Config) {
	rep := RunGemmSuite(c.Quick)
	feats := rep.CPUFeatures
	if feats == "" {
		feats = "none"
	}
	c.printf("gemm microkernel: %s (cpu features: %s)\n\n", rep.MicroKernel, feats)
	c.printf("GEMM engine microbenchmarks (GFLOP/s, best of reps; PKgo = packed engine\n")
	c.printf("on the portable microkernel, PKasm = native assembly, PKf32 = mixed precision)\n")
	c.printf("%-16s %6s %7s %6s  %8s %8s %8s %8s %8s %8s %8s  %9s\n",
		"shape", "m", "k", "n", "NN", "NT", "TN", "TT", "PKgo", "PKasm", "PKf32", "asm/go")
	byShape := map[string][]GemmBenchRow{}
	var order []string
	var e2e []GemmBenchRow
	for _, row := range rep.Rows {
		if row.Kernel == "blocked" || row.Kernel == "pairloop" {
			e2e = append(e2e, row)
			continue
		}
		if _, seen := byShape[row.Name]; !seen {
			order = append(order, row.Name)
		}
		byShape[row.Name] = append(byShape[row.Name], row)
	}
	for _, name := range order {
		rows := byShape[name]
		var stream [4]float64
		var packed, packedAsm, packedF32 float64
		m, k, n := rows[0].M, rows[0].K, rows[0].N
		for _, row := range rows {
			switch row.Kernel {
			case "stream-NN":
				stream[0] = row.GFLOPS
			case "stream-NT":
				stream[1] = row.GFLOPS
			case "stream-TN":
				stream[2] = row.GFLOPS
			case "stream-TT":
				stream[3] = row.GFLOPS
			case "packed":
				packed = row.GFLOPS
			case "packed-asm":
				packedAsm = row.GFLOPS
			case "packed-f32":
				packedF32 = row.GFLOPS
			}
		}
		asmRatio := 0.0
		if packed > 0 {
			asmRatio = packedAsm / packed
		}
		c.printf("%-16s %6d %7d %6d  %8.2f %8.2f %8.2f %8.2f %8.2f %8.2f %8.2f  %8.2fx\n",
			name, m, k, n, stream[0], stream[1], stream[2], stream[3],
			packed, packedAsm, packedF32, asmRatio)
	}
	c.printf("\nShape to verify: the packed engine beats every streaming variant on the\n")
	c.printf("large shapes while small shapes stay streaming-competitive — the\n")
	c.printf("packing-cost crossover the autotuner arbitrates — and the assembly\n")
	c.printf("microkernel clears 4× over the portable one on a tracked shape.\n")

	if len(e2e) > 0 {
		c.printf("\nEnd-to-end RI-MP2 pair-energy throughput (GFLOP/s, nominal 2·naux·nvir² per pair)\n")
		c.printf("%-18s %10s %10s %9s\n", "shape", "blocked", "pairloop", "speedup")
		speed := map[string]map[string]float64{}
		var e2eOrder []string
		for _, row := range e2e {
			if _, seen := speed[row.Name]; !seen {
				speed[row.Name] = map[string]float64{}
				e2eOrder = append(e2eOrder, row.Name)
			}
			speed[row.Name][row.Kernel] = row.GFLOPS
		}
		for _, name := range e2eOrder {
			b, p := speed[name]["blocked"], speed[name]["pairloop"]
			ratio := 0.0
			if p > 0 {
				ratio = b / p
			}
			c.printf("%-18s %10.2f %10.2f %8.2fx\n", name, b, p, ratio)
		}
		c.printf("\nShape to verify: the tiled pair-energy loop beats the per-(i,j) pair loop\n")
		c.printf("by ≥1.5× — the macro-tile restructuring the baseline gate enforces.\n")
	}

	if c.BenchJSON != "" {
		if err := rep.WriteJSON(c.BenchJSON); err != nil {
			c.fail(fmt.Sprintf("write %s: %v", c.BenchJSON, err))
		} else {
			c.printf("\nwrote %s (%d rows)\n", c.BenchJSON, len(rep.Rows))
		}
	}
	if c.Baseline != "" {
		base, err := LoadGemmReport(c.Baseline)
		if err != nil {
			c.fail(fmt.Sprintf("load baseline: %v", err))
			return
		}
		if base.GoArch != rep.GoArch || base.GoOS != rep.GoOS || base.NumCPU != rep.NumCPU {
			c.printf("note: baseline machine (%s/%s, %d cpu) differs from this one (%s/%s, %d cpu);\n"+
				"      absolute GFLOP/s floors are weak across machine classes — the\n"+
				"      packed/stream-NN ratio gate is the portable signal.\n",
				base.GoOS, base.GoArch, base.NumCPU, rep.GoOS, rep.GoArch, rep.NumCPU)
		}
		viol := CompareGemmReports(base, rep, c.MaxRegressPct)
		if len(viol) == 0 {
			c.printf("baseline %s: all tracked shapes within %.0f%% — OK\n", c.Baseline, c.MaxRegressPct)
			return
		}
		for _, v := range viol {
			c.fail(v)
		}
	}
}
