package bench

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"github.com/fragmd/fragmd/internal/basis"
	"github.com/fragmd/fragmd/internal/chem"
	"github.com/fragmd/fragmd/internal/fragment"
	"github.com/fragmd/fragmd/internal/md"
	"github.com/fragmd/fragmd/internal/molecule"
	"github.com/fragmd/fragmd/internal/potential"
	"github.com/fragmd/fragmd/internal/sched"
	"github.com/fragmd/fragmd/internal/warmstart"
)

// CompareDynamics writes the cold-vs-warm per-step comparison table
// (SCF iterations, wall clock, skips, and energy deviation per step,
// plus totals and percent saved) for two trajectories of equal length.
// It is shared by the mbebench warmstart experiment and fragmd's
// -mode bench, and returns the total cold and warm SCF iteration
// counts for further reporting.
func CompareDynamics(w io.Writer, cold, warm []sched.StepStats) (coldIters, warmIters int) {
	fmt.Fprintf(w, "%6s %14s %14s %12s %12s %9s %14s\n",
		"step", "cold SCF-iter", "warm SCF-iter", "cold wall", "warm wall", "skipped", "|ΔEpot| (Ha)")
	var coldWall, warmWall float64
	var skipped int
	for i := range cold {
		coldIters += cold[i].SCFIters
		warmIters += warm[i].SCFIters
		skipped += warm[i].Skipped
		coldWall += cold[i].Wall.Seconds()
		warmWall += warm[i].Wall.Seconds()
		fmt.Fprintf(w, "%6d %14d %14d %11.3fs %11.3fs %9d %14.2e\n",
			cold[i].Step, cold[i].SCFIters, warm[i].SCFIters,
			cold[i].Wall.Seconds(), warm[i].Wall.Seconds(), warm[i].Skipped,
			math.Abs(cold[i].Epot-warm[i].Epot))
	}
	fmt.Fprintf(w, "totals %14d %14d %11.3fs %11.3fs %9d\n",
		coldIters, warmIters, coldWall, warmWall, skipped)
	if coldIters > 0 {
		fmt.Fprintf(w, "  SCF iterations saved: %.0f%%   wall saved: %.0f%%\n",
			100*(1-float64(warmIters)/float64(coldIters)),
			100*(1-warmWall/math.Max(coldWall, 1e-12)))
	}
	return coldIters, warmIters
}

// warmDynamics runs one short AIMD trajectory and returns its per-step
// stats. The same geometry, seed and engine options are used for every
// invocation so cold/warm/skip runs differ only in the reuse policy.
func warmDynamics(g *molecule.Geometry, eval fragment.Evaluator, steps int, opts sched.Options) ([]sched.StepStats, error) {
	f, err := fragment.ByMolecule(g.Clone(), 3, 1, fragment.Options{})
	if err != nil {
		return nil, err
	}
	eng, err := sched.New(f, eval, opts)
	if err != nil {
		return nil, err
	}
	state := md.NewState(f.Geom.Clone())
	state.SampleVelocities(120, rand.New(rand.NewSource(17)))
	return eng.Run(state, steps, nil)
}

// WarmStartAblation measures the incremental-evaluation subsystem: the
// same NVE water-cluster trajectory is integrated cold (core-guess SCF
// every polymer, every step) and warm (each polymer's previous
// converged density seeds its next SCF), reporting SCF iterations per
// step and wall-clock per step for both — the speedup is measured, not
// asserted. A third run with a skip tolerance shows the approximate
// reuse path (evaluations avoided outright, bounded staleness).
func WarmStartAblation(c *Config) {
	waters, steps := 2, 5
	var eval fragment.Evaluator = &potential.HF{UseRI: true, AuxOpts: basis.AuxOptions{PerL: []int{5, 4, 3}}}
	label := "RI-HF/sto-3g"
	if !c.Quick {
		waters, steps = 3, 8
		eval = &potential.RIMP2{Basis: "sto-3g", AuxOpts: glyAuxOpts}
		label = "RI-MP2/sto-3g"
	}
	g := molecule.WaterCluster(waters)
	base := sched.Options{Workers: 2, Async: true, Dt: 0.5 * chem.AtomicTimePerFs}

	// Untimed throwaway step: the process-global GEMM auto-tuner trials
	// variants on first sight of each matrix shape, so whichever timed
	// run goes first would otherwise pay the tuning overhead and bias
	// the cold-vs-warm wall comparison.
	if _, err := warmDynamics(g, eval, 1, base); err != nil {
		c.printf("error: %v\n", err)
		return
	}

	cold, err := warmDynamics(g, eval, steps, base)
	if err != nil {
		c.printf("error: %v\n", err)
		return
	}
	warmOpts := base
	warmOpts.WarmStart = true
	warm, err := warmDynamics(g, eval, steps, warmOpts)
	if err != nil {
		c.printf("error: %v\n", err)
		return
	}

	c.printf("Warm-start ablation — (H2O)%d NVE, %s, dt=0.5 fs, %d polymers/step\n",
		waters, label, cold[0].NPolymer)
	coldIters, _ := CompareDynamics(c.Out, cold, warm)

	skipOpts := base
	skipOpts.WarmStart = true
	skipOpts.SkipTol = 0.02 // Bohr; generous for a demo of the skip path
	skip, err := warmDynamics(g, eval, steps, skipOpts)
	if err != nil {
		c.printf("error: %v\n", err)
		return
	}
	var skipped, skipIters int
	var skipDev float64
	for i := range skip {
		skipped += skip[i].Skipped
		skipIters += skip[i].SCFIters
		if d := math.Abs(skip[i].Epot - cold[i].Epot); d > skipDev {
			skipDev = d
		}
	}
	c.printf("\nSkip reuse (tol %.3f Bohr, staleness bound %d): %d/%d evaluations skipped,\n",
		skipOpts.SkipTol, warmstart.DefaultMaxSkip, skipped, len(skip)*skip[0].NPolymer)
	c.printf("%d SCF iterations (vs %d cold), max |Epot − cold| = %.2e Ha (approximate path).\n",
		skipIters, coldIters, skipDev)
	c.printf("\nShape to verify: warm SCF-iterations strictly below cold every step after the\n")
	c.printf("first, with |ΔEpot| at SCF-convergence level (~1e-10 Ha) — reuse is exact.\n")
}
