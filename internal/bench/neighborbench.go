package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"github.com/fragmd/fragmd/internal/chem"
	"github.com/fragmd/fragmd/internal/fragment"
	"github.com/fragmd/fragmd/internal/molecule"
)

// NeighborBenchSchema identifies the BENCH_neighbor.json layout; bump on
// incompatible changes so the CI comparator can refuse stale baselines.
const NeighborBenchSchema = "fragmd-bench-neighbor/v1"

// NeighborBenchRow is one water-box size point of the scaling sweep.
type NeighborBenchRow struct {
	Name     string `json:"name"` // "water-4x4x4", stable across runs
	Monomers int    `json:"monomers"`
	Atoms    int    `json:"atoms"`
	// EnumSeconds is the cell-list Terms() wall time (monomer/dimer/
	// trimer enumeration under cutoffs); FieldSeconds the cell-list
	// EE-MBE field setup (one FieldAssembler plus FieldFor over every
	// monomer). Best of reps.
	EnumSeconds  float64 `json:"enum_seconds"`
	FieldSeconds float64 `json:"field_seconds"`
	// BruteEnumSeconds is the same Terms() through the O(N²)/O(N³)
	// direct-scan oracle, measured only up to bruteCap monomers
	// (0 = skipped at this size).
	BruteEnumSeconds float64 `json:"brute_enum_seconds,omitempty"`
}

// NeighborBenchReport is the machine-readable output of the neighbor
// scaling sweep — the O(N) acceptance artifact for the cell-list path.
type NeighborBenchReport struct {
	Schema string `json:"schema"`
	GoOS   string `json:"goos"`
	GoArch string `json:"goarch"`
	NumCPU int    `json:"numcpu"`
	Quick  bool   `json:"quick"`
	// Exponent is the log-log least-squares slope of the total
	// (enumeration + field setup) cell-list wall time versus monomer
	// count. O(N) enumeration means ≈ 1; the absolute gate is
	// NeighborMaxExponent, applied on every run.
	Exponent float64 `json:"exponent"`
	// Speedup is cell-list vs brute total enumeration time at the
	// largest size the brute oracle was measured on — a same-run ratio,
	// so it stays meaningful across machine classes and is the
	// baseline-gated signal.
	Speedup float64            `json:"speedup"`
	Rows    []NeighborBenchRow `json:"rows"`
}

// NeighborMaxExponent is the absolute ceiling on the fitted scaling
// exponent: a quadratic re-regression (exponent → 2) fails loudly, while
// honest O(N) with constant-factor noise stays well under it.
const NeighborMaxExponent = 1.2

// bruteCap bounds the sizes the O(N²) oracle is timed on, so the sweep
// itself stays linear-time-dominated.
const bruteCap = 600

// neighborBenchSizes returns the water-box edge counts (monomers = n³).
func neighborBenchSizes(quick bool) []int {
	if quick {
		return []int{3, 4, 5, 6, 7}
	}
	return []int{4, 5, 6, 8, 10, 12}
}

// timeNeighbor returns the best-of-reps seconds of fn.
func timeNeighbor(reps int, fn func()) float64 {
	best := 0.0
	for r := 0; r < reps; r++ {
		start := time.Now()
		fn()
		el := time.Since(start).Seconds()
		if best == 0 || el < best {
			best = el
		}
	}
	return best
}

// neighborOpts is the sweep's fragmentation configuration: periodic
// water boxes under chemically sensible finite cutoffs, so enumeration
// and field setup are the cell-list O(N) regime the gate certifies.
func neighborOpts(brute bool) fragment.Options {
	return fragment.Options{
		DimerCutoff:  6 * chem.BohrPerAngstrom,
		TrimerCutoff: 4 * chem.BohrPerAngstrom,
		FieldCutoff:  8 * chem.BohrPerAngstrom,
		Brute:        brute,
	}
}

// RunNeighborSuite executes the neighbor scaling sweep and returns the
// report.
func RunNeighborSuite(quick bool) *NeighborBenchReport {
	rep := &NeighborBenchReport{
		Schema: NeighborBenchSchema,
		GoOS:   runtime.GOOS,
		GoArch: runtime.GOARCH,
		NumCPU: runtime.NumCPU(),
		Quick:  quick,
	}
	reps := 3
	var ns, ts []float64 // monomer counts and cell-list totals for the fit
	for _, n := range neighborBenchSizes(quick) {
		g := molecule.WaterBox(n, n, n, 1)
		row := NeighborBenchRow{
			Name:     fmt.Sprintf("water-%dx%dx%d", n, n, n),
			Monomers: n * n * n,
			Atoms:    g.N(),
		}
		f, err := fragment.ByMolecule(g, 3, 1, neighborOpts(false))
		if err != nil {
			panic(err) // builders are deterministic; this cannot fail
		}
		row.EnumSeconds = timeNeighbor(reps, func() { f.Terms() })

		// Field setup: one assembler pass (centroids + cell list) plus
		// the truncated field of every monomer — the per-step cost the
		// EE-MBE SCC rounds pay.
		charges := make([]float64, g.N())
		for i := range charges {
			if g.Atoms[i].Z == 8 {
				charges[i] = -0.8
			} else {
				charges[i] = 0.4
			}
		}
		pos := func(a int) [3]float64 { return g.Atoms[a].Pos }
		row.FieldSeconds = timeNeighbor(reps, func() {
			fa := f.NewFieldAssembler(charges, pos)
			for mi := range f.Monomers {
				fa.FieldFor(fragment.Polymer{Monomers: []int{mi}})
			}
		})

		if row.Monomers <= bruteCap {
			fb, err := fragment.ByMolecule(g, 3, 1, neighborOpts(true))
			if err != nil {
				panic(err)
			}
			row.BruteEnumSeconds = timeNeighbor(reps, func() { fb.Terms() })
			if row.EnumSeconds > 0 {
				rep.Speedup = row.BruteEnumSeconds / row.EnumSeconds
			}
		}
		ns = append(ns, float64(row.Monomers))
		ts = append(ts, row.EnumSeconds+row.FieldSeconds)
		rep.Rows = append(rep.Rows, row)
	}
	rep.Exponent = fitLogLogSlope(ns, ts)
	return rep
}

// fitLogLogSlope is the least-squares slope of ln(y) against ln(x) —
// the empirical scaling exponent of the sweep.
func fitLogLogSlope(xs, ys []float64) float64 {
	n := float64(len(xs))
	if n < 2 {
		return 0
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		lx, ly := math.Log(xs[i]), math.Log(ys[i])
		sx += lx
		sy += ly
		sxx += lx * lx
		sxy += lx * ly
	}
	return (n*sxy - sx*sy) / (n*sxx - sx*sx)
}

// WriteJSON writes the report to path.
func (r *NeighborBenchReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadNeighborReport reads a report written by WriteJSON.
func LoadNeighborReport(path string) (*NeighborBenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r NeighborBenchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Schema != NeighborBenchSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, r.Schema, NeighborBenchSchema)
	}
	return &r, nil
}

// CompareNeighborReports gates current against baseline on the two
// machine-portable signals: the fitted scaling exponent must not exceed
// the baseline's by more than maxRegressPct percent (catching a slow
// slide back toward quadratic before the absolute ceiling trips), and
// the same-run cell-vs-brute speedup must not fall more than
// maxRegressPct percent below the baseline's. Absolute seconds are
// deliberately not compared — they only measure the runner.
func CompareNeighborReports(baseline, current *NeighborBenchReport, maxRegressPct float64) []string {
	var bad []string
	if baseline.Exponent > 0 {
		ceil := baseline.Exponent * (1 + maxRegressPct/100)
		if current.Exponent > ceil {
			bad = append(bad, fmt.Sprintf("scaling exponent regressed: %.3f > ceiling %.3f (baseline %.3f, tolerance %.0f%%)",
				current.Exponent, ceil, baseline.Exponent, maxRegressPct))
		}
	}
	if baseline.Speedup > 0 && current.Speedup > 0 {
		floor := baseline.Speedup * (1 - maxRegressPct/100)
		if current.Speedup < floor {
			bad = append(bad, fmt.Sprintf("cell-vs-brute speedup regressed: %.2fx < floor %.2fx (baseline %.2fx, tolerance %.0f%%)",
				current.Speedup, floor, baseline.Speedup, maxRegressPct))
		}
	}
	return bad
}

// NeighborBench runs the cell-list scaling sweep, prints the wall-time
// table with the fitted exponent, applies the absolute O(N) gate, writes
// BENCH_neighbor.json when configured, and gates against a committed
// baseline when one is supplied.
func NeighborBench(c *Config) {
	rep := RunNeighborSuite(c.Quick)
	c.printf("Cell-list neighbor enumeration scaling (periodic water boxes;\n")
	c.printf("dimer cut 6 Å, trimer cut 4 Å, field cut 8 Å; best of reps)\n")
	c.printf("%-14s %9s %7s  %11s %11s %11s %9s\n",
		"box", "monomers", "atoms", "enum (s)", "field (s)", "brute (s)", "speedup")
	for _, row := range rep.Rows {
		brute, speed := "-", "-"
		if row.BruteEnumSeconds > 0 {
			brute = fmt.Sprintf("%11.5f", row.BruteEnumSeconds)
			speed = fmt.Sprintf("%8.2fx", row.BruteEnumSeconds/row.EnumSeconds)
		}
		c.printf("%-14s %9d %7d  %11.5f %11.5f %11s %9s\n",
			row.Name, row.Monomers, row.Atoms, row.EnumSeconds, row.FieldSeconds, brute, speed)
	}
	c.printf("\nfitted exponent: t ∝ N^%.3f (gate: ≤ %.1f; O(N) cell list ≈ 1, quadratic scan = 2)\n",
		rep.Exponent, NeighborMaxExponent)
	c.printf("\nShape to verify: cell-list enumeration + field setup grow ~linearly in\n")
	c.printf("monomer count while the brute oracle pulls away quadratically — the\n")
	c.printf("re-regression this gate exists to catch.\n")

	if rep.Exponent > NeighborMaxExponent {
		c.fail(fmt.Sprintf("neighbor enumeration scaling exponent %.3f exceeds %.1f — the cell-list path has gone super-linear",
			rep.Exponent, NeighborMaxExponent))
	}
	if c.BenchJSON != "" {
		if err := rep.WriteJSON(c.BenchJSON); err != nil {
			c.fail(fmt.Sprintf("write %s: %v", c.BenchJSON, err))
		} else {
			c.printf("\nwrote %s (%d rows)\n", c.BenchJSON, len(rep.Rows))
		}
	}
	if c.Baseline != "" {
		base, err := LoadNeighborReport(c.Baseline)
		if err != nil {
			c.fail(fmt.Sprintf("load baseline: %v", err))
			return
		}
		viol := CompareNeighborReports(base, rep, c.MaxRegressPct)
		if len(viol) == 0 {
			c.printf("baseline %s: exponent and speedup within %.0f%% — OK\n", c.Baseline, c.MaxRegressPct)
			return
		}
		for _, v := range viol {
			c.fail(v)
		}
	}
}
