package bench

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"github.com/fragmd/fragmd/internal/linalg"
)

func syntheticReport(gflops float64) *GemmBenchReport {
	return &GemmBenchReport{
		Schema: GemmBenchSchema,
		GoOS:   "linux", GoArch: "amd64", NumCPU: 1, Quick: true,
		Rows: []GemmBenchRow{
			{Name: "square-256", M: 256, K: 256, N: 256, Kernel: "packed", Seconds: 1, GFLOPS: gflops, Tracked: true},
			{Name: "square-256", M: 256, K: 256, N: 256, Kernel: "stream-NN", Seconds: 1, GFLOPS: gflops / 2, Tracked: true},
			{Name: "small-24", M: 24, K: 24, N: 24, Kernel: "packed", Seconds: 1, GFLOPS: 1, Tracked: false},
		},
	}
}

func TestGemmReportRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_gemm.json")
	rep := syntheticReport(8)
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadGemmReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != len(rep.Rows) || got.Rows[0].GFLOPS != 8 || !got.Rows[0].Tracked {
		t.Fatalf("round trip mangled report: %+v", got.Rows)
	}
}

func TestLoadGemmReportRejectsBadSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	rep := syntheticReport(8)
	rep.Schema = "something-else/v9"
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadGemmReport(path); err == nil {
		t.Fatal("expected schema mismatch error")
	}
}

func TestCompareGemmReports(t *testing.T) {
	base := syntheticReport(8)

	// Identical run: no regressions.
	if bad := CompareGemmReports(base, syntheticReport(8), 25); len(bad) != 0 {
		t.Fatalf("unexpected regressions: %v", bad)
	}
	// 20 % drop within a 25 % tolerance: still fine.
	if bad := CompareGemmReports(base, syntheticReport(6.4), 25); len(bad) != 0 {
		t.Fatalf("within-tolerance drop flagged: %v", bad)
	}
	// 50 % drop: both tracked rows must be flagged.
	bad := CompareGemmReports(base, syntheticReport(4), 25)
	if len(bad) != 2 {
		t.Fatalf("want 2 regressions, got %v", bad)
	}
	if !strings.Contains(bad[0], "regressed") {
		t.Fatalf("unhelpful message: %q", bad[0])
	}
	// Tracked row missing from current: flagged.
	cur := syntheticReport(8)
	cur.Rows = cur.Rows[1:]
	bad = CompareGemmReports(base, cur, 25)
	if len(bad) != 1 || !strings.Contains(bad[0], "missing") {
		t.Fatalf("want 1 missing-row violation, got %v", bad)
	}
	// Untracked rows are never gated.
	cur = syntheticReport(8)
	cur.Rows[2].GFLOPS = 0.01
	if bad := CompareGemmReports(base, cur, 25); len(bad) != 0 {
		t.Fatalf("untracked row gated: %v", bad)
	}
}

// The packed/stream-NN ratio gate must catch an engine regression that
// absolute floors miss because the current machine is much faster than
// the baseline one.
func TestCompareGemmReportsRatioGate(t *testing.T) {
	base := syntheticReport(8) // packed 8, stream-NN 4 → ratio 2.0

	// Faster machine, healthy engine: packed 40, NN 20 → ratio 2.0. OK.
	cur := syntheticReport(40)
	if bad := CompareGemmReports(base, cur, 25); len(bad) != 0 {
		t.Fatalf("healthy fast machine flagged: %v", bad)
	}

	// Faster machine, broken packed engine: packed 20, NN 20 → ratio
	// 1.0, half the baseline ratio. Both absolute floors pass (20 ≫ 8),
	// only the ratio gate can fire.
	cur = syntheticReport(40)
	cur.Rows[0].GFLOPS = 20
	bad := CompareGemmReports(base, cur, 25)
	if len(bad) != 1 || !strings.Contains(bad[0], "ratio regressed") {
		t.Fatalf("want 1 ratio violation, got %v", bad)
	}
}

// The packed-asm/packed ratio row is the acceptance bar for the
// assembly microkernel: a baseline recording a 4.5× asm speedup must
// reject a current run where the asm kernel collapsed to parity with
// the portable one, even when absolute GFLOP/s floors are cleared.
func asmSyntheticReport(goGF, asmGF float64) *GemmBenchReport {
	return &GemmBenchReport{
		Schema: GemmBenchSchema,
		GoOS:   "linux", GoArch: "amd64", NumCPU: 1, Quick: true,
		CPUFeatures: "avx fma avx2", MicroKernel: "avx2-6x8",
		Rows: []GemmBenchRow{
			{Name: "square-256", M: 256, K: 256, N: 256, Kernel: "packed", Seconds: 1, GFLOPS: goGF, Tracked: true},
			{Name: "square-256", M: 256, K: 256, N: 256, Kernel: "packed-asm", Seconds: 1, GFLOPS: asmGF, Tracked: true},
			{Name: "square-256", M: 256, K: 256, N: 256, Kernel: "packed-f32", Seconds: 1, GFLOPS: asmGF * 0.9, Tracked: true},
		},
	}
}

func TestCompareGemmReportsAsmRatioGate(t *testing.T) {
	base := asmSyntheticReport(6.5, 29.25) // asm/go = 4.5×

	// Faster machine, same architecture of speedup: fine.
	if bad := CompareGemmReports(base, asmSyntheticReport(13, 58.5), 25); len(bad) != 0 {
		t.Fatalf("healthy fast machine flagged: %v", bad)
	}
	// Much faster machine but the asm kernel regressed to parity with
	// the portable one: absolute floors all pass, only the
	// packed-asm/packed ratio gate can fire (the f32/asm ratio then
	// improves, so exactly one violation).
	bad := CompareGemmReports(base, asmSyntheticReport(40, 44), 25)
	if len(bad) != 1 || !strings.Contains(bad[0], "packed-asm/packed ratio regressed") {
		t.Fatalf("want 1 asm ratio violation, got %v", bad)
	}
}

// The real suite: structure, JSON emission and self-consistency. Slow
// (runs actual GEMMs), so skipped under -short.
func TestRunGemmSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("GEMM suite is slow; run without -short")
	}
	var out bytes.Buffer
	path := filepath.Join(t.TempDir(), "BENCH_gemm.json")
	c := &Config{Quick: true, Out: &out, BenchJSON: path}
	GemmBench(c)
	if len(c.Failures) != 0 {
		t.Fatalf("unexpected failures: %v", c.Failures)
	}
	rep, err := LoadGemmReport(path)
	if err != nil {
		t.Fatal(err)
	}
	// 4 shapes × (4 streaming + packed + packed-f32, plus packed-asm
	// when a native microkernel ran) + the end-to-end RI-MP2 pair
	// (blocked, pairloop) in quick mode.
	engines := 6
	wantKernels := []string{"stream-NN", "stream-NT", "stream-TN", "stream-TT", "packed", "packed-f32", "blocked", "pairloop"}
	trackedPerShape := 3 // stream-NN, packed, packed-f32
	if linalg.AsmEnabled() {
		engines++
		wantKernels = append(wantKernels, "packed-asm")
		trackedPerShape++
	}
	if want := 4*engines + 2; len(rep.Rows) != want {
		t.Fatalf("want %d rows, got %d", want, len(rep.Rows))
	}
	kernels := map[string]bool{}
	tracked := 0
	for _, row := range rep.Rows {
		if row.GFLOPS <= 0 || row.Seconds <= 0 {
			t.Fatalf("non-positive measurement: %+v", row)
		}
		kernels[row.Kernel] = true
		if row.Tracked {
			tracked++
		}
	}
	for _, k := range wantKernels {
		if !kernels[k] {
			t.Fatalf("kernel %s missing from report", k)
		}
	}
	// Tracked: stream-NN + every packed engine for each of the two
	// acceptance GEMM shapes, plus the blocked engine of the
	// end-to-end RI-MP2 row.
	if want := 2*trackedPerShape + 1; tracked != want {
		t.Fatalf("want %d tracked rows, got %d", want, tracked)
	}
	if rep.MicroKernel == "" {
		t.Fatal("report missing microkernel provenance")
	}
	if !strings.Contains(out.String(), "asm/go") {
		t.Fatal("human-readable table missing")
	}
	if !strings.Contains(out.String(), "gemm microkernel: ") {
		t.Fatal("microkernel provenance line missing from output")
	}
	// A fresh run must pass the gate against its own report (generous
	// tolerance: back-to-back runs on a loaded box can wobble ±20 %).
	var out2 bytes.Buffer
	c2 := &Config{Quick: true, Out: &out2, Baseline: path, MaxRegressPct: 50}
	GemmBench(c2)
	if len(c2.Failures) != 0 {
		t.Fatalf("self-comparison failed: %v", c2.Failures)
	}
}
