// Package bench regenerates every table and figure of the paper's
// evaluation section (see DESIGN.md §4 for the experiment index). Each
// experiment writes a self-describing report to an io.Writer and returns
// structured rows where useful. Absolute numbers come from this
// machine's pure-Go kernels or the cluster simulator; the quantities to
// compare against the paper are the *shapes* — who wins, scaling
// exponents, crossovers, percentages of peak.
package bench

import (
	"fmt"
	"io"
	"time"

	"github.com/fragmd/fragmd/internal/autotune"
	"github.com/fragmd/fragmd/internal/linalg"
)

// Config controls experiment sizes.
type Config struct {
	// Quick shrinks workloads to development-box scale (default true in
	// tests; mbebench --full disables it).
	Quick bool
	Out   io.Writer

	// BenchJSON, when non-empty, is where GemmBench writes its
	// machine-readable report (conventionally BENCH_gemm.json).
	BenchJSON string
	// Baseline, when non-empty, is a committed report to gate against:
	// tracked shapes whose GFLOP/s fall more than MaxRegressPct below
	// it are recorded as Failures.
	Baseline string
	// MaxRegressPct is the allowed relative GFLOP/s drop versus the
	// baseline, in percent. 0 really means zero tolerance — the
	// cmd/mbebench flag layer owns the 25 % default.
	MaxRegressPct float64

	// Seed seeds the cluster simulator's RNG for the simulated
	// experiments (fig7, fig8, table5, async, hier) so runs are
	// reproducible run-to-run; 0 selects the simulator default.
	Seed int64
	// Jitter adds uniform ±Jitter relative noise to simulated task
	// runtimes (0 = the deterministic cost model).
	Jitter float64
	// Failures collects regression and I/O problems for the caller to
	// turn into a non-zero exit (cmd/mbebench does).
	Failures []string
}

func (c *Config) printf(format string, args ...interface{}) {
	fmt.Fprintf(c.Out, format, args...)
}

// fail records a failure and echoes it to the report stream.
func (c *Config) fail(msg string) {
	c.Failures = append(c.Failures, msg)
	c.printf("FAIL: %s\n", msg)
}

// Table1 prints the performance-attribute summary (paper Table I),
// instantiated for this reproduction.
func Table1(c *Config) {
	c.printf("Table I — summary of performance attributes (this reproduction)\n")
	c.printf("  Category of achievement    scalability, peak performance, time-to-solution\n")
	c.printf("  Type of method             MBE3/RI-MP2 ab initio molecular dynamics\n")
	c.printf("  Results reported based on  whole application including I/O\n")
	c.printf("  Precision                  double precision (float64 throughout)\n")
	c.printf("  System scale               measured kernels + discrete-event full-machine simulation\n")
	c.printf("  Measurement mechanism      timers + runtime GEMM FLOP count (2mnk per call)\n")
}

// Fig1Table2 prints the accuracy-vs-size landscape (paper Fig. 1 and
// Table II): literature state of the art plus this work's points.
func Fig1Table2(c *Config) {
	type row struct {
		theory, kind, system, basis, features, ref string
		electrons                                  int
		errKJ                                      float64 // isomerisation error kJ/mol/atom (Fig. 1 y-axis)
	}
	rows := []row{
		{"DFT(LDA/GGA)/HF", "static", "bulk silicon", "planewave", "local orbital", "[8]", 14000000, 0.8},
		{"DFT(LDA/GGA)/HF", "AIMD", "bulk methanol", "MOLOPT-DZVP", "orbital transformation", "[9]", 18432, 0.8},
		{"DFT hybrid", "static", "bulk water", "NAO", "RI + NAO", "[10]", 101920, 0.5},
		{"DFT hybrid", "AIMD", "bulk water", "planewave", "Wannier", "[11]", 2560, 0.5},
		{"MP2", "static", "ionic liquid cluster", "cc-pVDZ", "RI + fragmentation", "[12]", 623016, 0.35},
		{"MP2", "AIMD", "bulk water", "aug-cc-pVDZ", "fragmentation", "[13]", 1400, 0.35},
		{"MP2", "static", "urea cluster", "cc-pVDZ", "RI + fragmentation", "this work", 2043328, 0.35},
		{"MP2", "AIMD", "urea cluster", "cc-pVDZ", "RI + fragmentation", "this work", 2043328, 0.35},
		{"CC", "static", "lipid transfer protein", "def2-QZVP", "local orbital", "[14]", 3980, 0.25},
		{"CC", "AIMD", "bulk water", "aug-cc-pVDZ", "fragmentation", "[15]", 1400, 0.25},
	}
	c.printf("Fig. 1 / Table II — largest calculations by level of theory (literature + this work)\n")
	c.printf("%-18s %-7s %-24s %-12s %10s %8s  %s\n", "theory", "kind", "system", "basis", "electrons", "err", "ref")
	for _, r := range rows {
		c.printf("%-18s %-7s %-24s %-12s %10d %8.2f  %s\n",
			r.theory, r.kind, r.system, r.basis, r.electrons, r.errKJ, r.ref)
	}
	c.printf("\nShape to verify: the MP2 rows (this work) extend AIMD system size by >1000×\n")
	c.printf("at fixed ~0.35 kJ/mol/atom accuracy, matching the paper's claim.\n")
}

// GemmShape is one Table IV matrix shape.
type GemmShape struct{ M, K, N int }

// Table4 benchmarks the four GEMM variants on the paper's three RI-MP2
// gradient shapes (paper Table IV). On CPU the shapes are scaled down by
// /8 in the K dimension under Quick to keep runtime sane; the point is
// the *variant spread*, which the auto-tuner exploits.
func Table4(c *Config) {
	shapes := []GemmShape{
		{960, 324480, 960},
		{120, 2957880, 120},
		{192, 738048, 192},
	}
	div := 96
	if !c.Quick {
		div = 8
	}
	c.printf("Table IV — DGEMM variant performance on RI-MP2 gradient shapes (K scaled /%d)\n", div)
	c.printf("%8s %9s %6s  %10s %10s %10s %10s %10s %10s   best\n", "m", "k", "n", "NN", "NT", "TN", "TT", "PKgo", "PKasm")
	for _, s := range shapes {
		k := s.K / div
		flops := 2 * float64(s.M) * float64(k) * float64(s.N)
		rate := map[string]float64{}
		bestName, bestRate := "", 0.0
		for _, e := range measureGemmEngines(s.M, k, s.N, 1) {
			rate[e.kernel] = flops / e.seconds / 1e9
			// packed-f32 trades precision for speed; it is reported by
			// the gemm suite but does not compete for "best" here.
			if e.kernel != "packed-f32" && rate[e.kernel] > bestRate {
				bestName, bestRate = e.kernel, rate[e.kernel]
			}
		}
		c.printf("%8d %9d %6d  %9.2f %9.2f %9.2f %9.2f %9.2f %9.2f   %s\n",
			s.M, k, s.N, rate["stream-NN"], rate["stream-NT"], rate["stream-TN"], rate["stream-TT"],
			rate["packed"], rate["packed-asm"], bestName)
	}
	c.printf("\nShape to verify: variant spread per shape (paper saw up to 20×), with the\n")
	c.printf("winner varying across shapes — the premise of runtime auto-tuning (§V-G) —\n")
	c.printf("and the packed engine (PK) on top of every streaming variant at size.\n")
}

// AutotuneAblation measures the end-to-end speedup from the runtime
// GEMM auto-tuner on a repeated RI-MP2-like contraction sequence, the
// §V-G experiment (paper: 13 % urea, 12 % paracetamol on one GCD).
func AutotuneAblation(c *Config) {
	nbf, naux, nocc := 96, 320, 24
	reps := 30
	if !c.Quick {
		nbf, naux, nocc, reps = 160, 520, 40, 60
	}
	run := func(tuner *autotune.Tuner) float64 {
		b := linalg.NewMat(naux, nbf*nbf)
		co := linalg.NewMat(nbf, nocc)
		d := linalg.NewMat(nbf*nbf, 1)
		for i := range b.Data {
			b.Data[i] = float64(i%13) * 1e-3
		}
		for i := range co.Data {
			co.Data[i] = float64(i%7) * 1e-2
		}
		start := time.Now()
		u := linalg.NewMat(naux, 1)
		jv := linalg.NewMat(nbf*nbf, 1)
		bp := linalg.NewMat(nbf, nbf)
		for i := range bp.Data {
			bp.Data[i] = float64(i%11) * 1e-3
		}
		tp := linalg.NewMat(nbf, nocc)
		for r := 0; r < reps; r++ {
			// The RI Fock GEMM sequence (Eq. 8): Coulomb + exchange.
			tuner.Gemm(linalg.NoTrans, linalg.NoTrans, 1, b, d, 0, u)
			tuner.Gemm(linalg.Trans, linalg.NoTrans, 1, b, u, 0, jv)
			for p := 0; p < naux; p += 8 {
				tuner.Gemm(linalg.NoTrans, linalg.NoTrans, 1, bp, co, 0, tp)
			}
		}
		return time.Since(start).Seconds()
	}
	off := autotune.New()
	off.Enabled = false
	tOff := run(off)
	tOn := run(autotune.New())
	gain := 100 * (tOff - tOn) / tOff
	c.printf("§V-G — GEMM auto-tuning ablation (RI Fock sequence, nbf=%d naux=%d)\n", nbf, naux)
	c.printf("  tuner off: %8.3f s\n  tuner on:  %8.3f s\n  speedup:   %+7.1f%%   (paper: +12–13%%)\n",
		tOff, tOn, gain)
}
