package bench

import (
	"time"

	"github.com/fragmd/fragmd/internal/basis"
	"github.com/fragmd/fragmd/internal/chem"
	"github.com/fragmd/fragmd/internal/cluster"
	"github.com/fragmd/fragmd/internal/fragment"
	"github.com/fragmd/fragmd/internal/molecule"
	"github.com/fragmd/fragmd/internal/mp2"
	"github.com/fragmd/fragmd/internal/potential"
	"github.com/fragmd/fragmd/internal/scf"
)

// glyAuxOpts keeps auxiliary bases modest for the CPU-bound runs.
var glyAuxOpts = basis.AuxOptions{PerL: []int{6, 4, 3}}

// glyFragmentation fragments Gly_n into per-residue monomers with the
// paper's MBE3 cutoffs (20 Å dimers, 13 Å trimers, Table III).
func glyFragmentation(n int) (*fragment.Fragmentation, error) {
	g, residues := molecule.Polyglycine(n)
	return fragment.New(g, residues, fragment.Options{
		DimerCutoff:  20 * chem.BohrPerAngstrom,
		TrimerCutoff: 13 * chem.BohrPerAngstrom,
	})
}

// Table3 reproduces the single-time-step latency comparison (paper
// Table III): conventional (non-fragmented, non-RI) HF+MP2 gradients vs
// the MBE3/RI-MP2 pipeline, on polyglycine chains. The conventional
// column is measured directly at small n where it is feasible and its
// O(N⁵) wall is evident; the paper's published package timings are
// reprinted for reference.
func Table3(c *Config) {
	lengths := []int{1, 2}
	if !c.Quick {
		lengths = []int{2, 4, 6}
	}
	c.printf("Table III — single AIMD time-step latency, Gly_n (this machine, %s basis)\n", "sto-3g")
	c.printf("%6s %8s  %16s %16s %10s\n", "n", "atoms", "conventional (s)", "MBE3/RI-MP2 (s)", "speedup")

	convMax := 2
	if !c.Quick {
		convMax = 5 // the stored-ERI tensor alone reaches ~10 GB by Gly8
	}
	for _, n := range lengths {
		g, _ := molecule.Polyglycine(n)

		// Conventional path: unfragmented in-core HF (stored four-center
		// ERIs, the classic CPU-package mode) + O(N⁵) conventional MP2.
		// The gradient is omitted here — it would only slow this column
		// further, so the reported speedups are lower bounds.
		var tConv float64
		if n <= convMax { // the O(N⁴–⁵) wall makes larger n impractical — which is the point
			start := time.Now()
			bs, err := basis.Build("sto-3g", g)
			if err != nil {
				c.printf("  error: %v\n", err)
				return
			}
			ref, err := scf.RHF(g, bs, scf.Options{StoredERI: true})
			if err == nil {
				_, _ = mp2.ConventionalMP2(ref, ref.ERI)
			}
			tConv = time.Since(start).Seconds()
		}

		// MBE3/RI-MP2 path (full analytic gradient on every polymer).
		f, err := glyFragmentation(n)
		if err != nil {
			c.printf("  error: %v\n", err)
			return
		}
		start := time.Now()
		if _, err := f.Compute(&potential.RIMP2{Basis: "sto-3g", AuxOpts: glyAuxOpts}); err != nil {
			c.printf("  error: %v\n", err)
			return
		}
		tMBE := time.Since(start).Seconds()

		if tConv > 0 {
			c.printf("%6d %8d  %16.2f %16.2f %9.1fx\n", n, g.N(), tConv, tMBE, tConv/tMBE)
		} else {
			c.printf("%6d %8d  %16s %16.2f %10s\n", n, g.N(), "(intractable)", tMBE, "—")
		}
	}

	c.printf("\nPaper reference (cc-pVDZ, seconds/time step):\n")
	c.printf("%6s %8s %8s %8s %8s %12s %12s\n", "n", "Orca", "Q-Chem", "GAMESS", "NWChem", "EXESS 4xA100", "EXESS 16xA100")
	for _, r := range [][7]interface{}{
		{10, 297, 252, 258, 1477, 2.7, 1.1},
		{15, 1976, 1050, 1573, "—", 4.4, 1.4},
		{20, 6213, 5710, "—", "—", 6.4, 1.6},
	} {
		c.printf("%6v %8v %8v %8v %8v %12v %12v\n", r[0], r[1], r[2], r[3], r[4], r[5], r[6])
	}
	c.printf("\nShape to verify: MBE3+RI grows ~linearly with n while the conventional\n")
	c.printf("path grows ~quintically, giving orders of magnitude at Gly20 scale.\n")

	// Simulated GPU latency via the cluster cost model for the paper's n.
	c.printf("\nSimulated 4-GPU (A100 model) MBE3/RI-MP2 latency via the cost model:\n")
	m := cluster.Perlmutter()
	for _, n := range []int{10, 15, 20} {
		w := glycineWorkload(n)
		r, err := cluster.Simulate(w, m, cluster.Options{Nodes: 1, Steps: 2, Async: true})
		if err != nil {
			c.printf("  error: %v\n", err)
			return
		}
		c.printf("  Gly%-3d %6.2f s/step  (paper EXESS 4xA100: 2.7 / 4.4 / 6.4 s)\n", n, r.AvgStep)
	}
}

// glycineWorkload builds a cluster workload matching Gly_n fragmented
// per residue at cc-pVDZ scale.
func glycineWorkload(n int) *cluster.Workload {
	var monomers []cluster.MonomerSpec
	for r := 0; r < n; r++ {
		c := [3]float64{float64(r) * 3.63, 0, 0}
		sp := cluster.MonomerSpec{Centroid: c, Atoms: 7, NBf: 3*15 + 4*5, NOcc: 15}
		sp.NBf += 10 // cap contributions
		sp.NAux = sp.NBf * 33 / 10
		if r > 0 {
			sp.Bonded = append(sp.Bonded, r-1)
		}
		if r < n-1 {
			sp.Bonded = append(sp.Bonded, r+1)
		}
		monomers = append(monomers, sp)
	}
	return cluster.NewWorkload(monomers, 20, 13)
}

// Fig3 reproduces the RI-HF ablation (paper Fig. 3): the execution time
// of an HF+RI-MP2 gradient with the conventional four-center HF versus
// the all-RI formulation, across chain lengths. The paper reports up to
// 6× for small fragments on A100s; the pure-Go kernels show the same
// direction because the four-center integral count dwarfs the RI GEMMs.
func Fig3(c *Config) {
	lengths := []int{1}
	if !c.Quick {
		lengths = []int{1, 2}
	}
	c.printf("Fig. 3 — RI-MP2 gradient with conventional-HF vs RI-HF (Gly_n, sto-3g)\n")
	c.printf("%6s %8s  %14s %14s %9s\n", "n", "nbf", "conv-HF (s)", "RI-HF (s)", "speedup")
	for _, n := range lengths {
		g, _ := molecule.Polyglycine(n)
		bs, err := basis.Build("sto-3g", g)
		if err != nil {
			c.printf("  error: %v\n", err)
			return
		}
		// Conventional-HF reference + conventional MP2 with the full
		// four-center HF gradient (the pre-RI-HF state of the art).
		start := time.Now()
		refConv, err := scf.RHF(g, bs, scf.Options{StoredERI: true})
		if err == nil {
			_ = refConv.Gradient()
			_, _ = mp2.ConventionalMP2(refConv, refConv.ERI)
		}
		tConv := time.Since(start).Seconds()

		// All-RI: RI-HF + RI-MP2 with the full analytic gradient.
		start = time.Now()
		refRI, err := scf.RHF(g, bs, scf.Options{UseRI: true, AuxOpts: glyAuxOpts})
		if err == nil {
			if r, err2 := mp2.RIMP2(refRI, mp2.Options{}); err2 == nil {
				_, _ = r.Gradient()
			}
		}
		tRI := time.Since(start).Seconds()
		c.printf("%6d %8d  %14.2f %14.2f %8.1fx\n", n, bs.N, tConv, tRI, tConv/tRI)
	}
	c.printf("\nShape to verify: RI-HF wins at every size, with the largest factors for\n")
	c.printf("small fragments (paper: up to 6×), because four-center ERIs dominate there.\n")
}
