package bench

import (
	"math"

	"github.com/fragmd/fragmd/internal/cluster"
)

// Resilience sweeps simulated per-worker node failure rates against
// throughput and lost work on the cluster simulator (DESIGN.md §7):
// the machine runs the same urea workload under ever-shorter MTBFs,
// recovering every failed attempt by re-queueing it on a surviving (or
// restarted) worker. The run must complete every time step at every
// failure rate — resilience trades throughput, never trajectory — so
// the sweep reports recoveries, lost work and restart downtime next to
// the failure-free baseline, plus one permanent-failure row where dead
// nodes never come back.
func Resilience(c *Config) {
	nMol, nodes := 256, 8
	if !c.Quick {
		nMol, nodes = 4000, 128
	}
	w := cluster.UreaWorkload(nMol, 1, 6.0, 0)
	m := cluster.Frontier()
	const steps = 3
	c.printf("resilience — failure injection: throughput and lost work vs node MTBF\n\n")
	c.printf("Workload: %s, %d steps\n", w, steps)

	base, err := cluster.Simulate(w, m, cluster.Options{
		Nodes: nodes, Steps: steps, Async: true, Seed: c.Seed, Jitter: c.Jitter,
	})
	if err != nil {
		c.printf("  error: %v\n", err)
		return
	}
	// Restart downtime scaled to this workload's horizon (a real node
	// reboot is minutes against an hours-long production run; a fixed
	// 30 s against a ~20 ms simulated sweep would drown the signal).
	m.RestartSeconds = base.Makespan / 10
	c.printf("Machine: %s, %d nodes (%d GCDs), %.2g s restart\n\n",
		m.Name, nodes, nodes*m.GCDsPerNode, m.RestartSeconds)

	type row struct {
		name      string
		mtbf      float64
		permanent bool
	}
	rows := []row{
		{"no failures", 0, false},
		{"mtbf 10×span", 10 * base.Makespan, false},
		{"mtbf 2×span", 2 * base.Makespan, false},
		{"mtbf span/2", base.Makespan / 2, false},
		{"mtbf span/8", base.Makespan / 8, false},
		{"10×span perm", 10 * base.Makespan, true},
	}
	c.printf("%14s %10s %12s %10s %9s %9s %8s %9s\n",
		"config", "ms/step", "tasks/s", "recovered", "lost s", "restart s", "evicted", "slowdown")
	sawRecovery := false
	for _, r := range rows {
		res, err := cluster.Simulate(w, m, cluster.Options{
			Nodes: nodes, Steps: steps, Async: true, Seed: c.Seed, Jitter: c.Jitter,
			MTBF: r.mtbf, FailPermanent: r.permanent, MaxRetries: 100,
		})
		if err != nil {
			c.printf("  error: %v\n", err)
			return
		}
		c.printf("%14s %10.2f %12.0f %10d %9.3f %9.3f %8d %7.2fx\n",
			r.name, 1e3*res.AvgStep, res.Throughput, res.Recoveries,
			res.LostWork, res.RestartOverhead, res.Evicted, res.AvgStep/base.AvgStep)
		// Completing the sweep means zero lost time steps: Simulate only
		// returns once the policy has completed every (polymer, step).
		if len(res.StepSeconds) != steps {
			c.fail("a simulated run lost time steps")
			return
		}
		for _, s := range res.StepSeconds {
			if s <= 0 || math.IsInf(s, 0) || math.IsNaN(s) {
				c.fail("a simulated run lost time steps")
				return
			}
		}
		if r.mtbf > 0 && res.Recoveries > 0 {
			sawRecovery = true
		}
		// No faster-than-baseline assertion: retries reshuffle the
		// shared jitter draw sequence and list-scheduling anomalies can
		// legitimately nudge a lightly-failing run below the baseline;
		// the slowdown column reports the trend instead.
		if r.permanent && res.Evicted == 0 && res.Recoveries > 0 {
			c.fail("permanent failures recovered tasks without evicting workers")
		}
	}
	if !sawRecovery {
		c.fail("no failure rate in the sweep produced a recovery — the MTBF process never fired")
	}
	c.printf("\nShape to verify: throughput degrades smoothly as MTBF shrinks —\n")
	c.printf("lost work and restart downtime grow, but every run completes all\n")
	c.printf("%d time steps (recoveries re-queue in-flight work on surviving\n", steps)
	c.printf("workers; the trajectory itself is never shortened).\n")
}
