package bench

import (
	"time"

	"github.com/fragmd/fragmd/internal/autotune"
	"github.com/fragmd/fragmd/internal/linalg"
	"github.com/fragmd/fragmd/internal/mp2"
)

// rimp2E2EShape describes one end-to-end RI-MP2 pair-energy throughput
// problem: the correlation-energy pair loop over a synthetic Qov tensor
// of fragment-typical dimensions.
type rimp2E2EShape struct {
	name             string
	nocc, nvir, naux int
	tracked          bool
}

// rimp2E2EShapes returns the fragment-throughput suite. The quick shape
// is the CI acceptance problem: a compact-virtual-space fragment (many
// occupied pairs, small nvir) where the per-pair nvir × nvir GEMMs are
// far below the packed engine's profitable size, so the tiled loop's
// square macro products separate clearly from the per-pair baseline.
func rimp2E2EShapes(quick bool) []rimp2E2EShape {
	shapes := []rimp2E2EShape{
		{"rimp2-e2e-96x8", 96, 8, 448, true},
	}
	if !quick {
		shapes = append(shapes, rimp2E2EShape{"rimp2-e2e-128x12", 128, 12, 512, false})
	}
	return shapes
}

// synthQov builds a deterministic synthetic Qov tensor (P, i, a) and an
// orbital-energy spectrum with a healthy HOMO–LUMO gap.
func synthQov(nocc, nvir, naux int) (*linalg.Tensor3, []float64) {
	qov := linalg.NewTensor3(naux, nocc, nvir)
	for i := range qov.Data {
		qov.Data[i] = 1e-2 * float64(i%101) / 101
	}
	eps := make([]float64, nocc+nvir)
	for i := 0; i < nocc; i++ {
		eps[i] = -2 + 0.01*float64(i)
	}
	for a := 0; a < nvir; a++ {
		eps[nocc+a] = 0.5 + 0.01*float64(a)
	}
	return qov, eps
}

// bovFromQov reorders (P, i, a) → (i, P, a) for the per-pair baseline.
func bovFromQov(qov *linalg.Tensor3) *linalg.Tensor3 {
	naux, nocc := qov.N1, qov.N2
	bov := linalg.NewTensor3(nocc, naux, qov.N3)
	for p := 0; p < naux; p++ {
		qp := qov.Slice(p)
		for i := 0; i < nocc; i++ {
			copy(bov.Slice(i).Row(p), qp.Row(i))
		}
	}
	return bov
}

// rimp2PairFlops is the nominal GEMM work of one pair-loop sweep:
// nocc(nocc+1)/2 pairs, 2·naux·nvir² flops each. Both engines are
// normalised by the same figure so their GFLOP/s ratio is a pure time
// ratio.
func rimp2PairFlops(nocc, nvir, naux int) float64 {
	pairs := float64(nocc) * float64(nocc+1) / 2
	return pairs * 2 * float64(naux) * float64(nvir) * float64(nvir)
}

// runRIMP2E2ERows measures the end-to-end RI-MP2 pair-energy loop —
// tiled macro-GEMM engine vs the pre-change per-(i,j) pair loop — and
// returns baseline-gateable rows. Each engine gets its own auto-tuner,
// warmed by one untimed sweep so per-shape arbitration is locked before
// timing: production reuses the process-wide tuner across thousands of
// MD-step sweeps, so steady-state (locked) throughput is what the gate
// tracks, and the warm-up keeps the one-shot trial noise of the five
// candidate engines out of the measurement.
func runRIMP2E2ERows(quick bool) []GemmBenchRow {
	reps := 4
	if !quick {
		reps = 2
	}
	var rows []GemmBenchRow
	for _, s := range rimp2E2EShapes(quick) {
		qov, eps := synthQov(s.nocc, s.nvir, s.naux)
		bov := bovFromQov(qov)
		flops := rimp2PairFlops(s.nocc, s.nvir, s.naux)

		time1 := func(fn func() error) float64 {
			if err := fn(); err != nil { // warm-up: lock the tuner
				return 0
			}
			best := 0.0
			for r := 0; r < reps; r++ {
				start := time.Now()
				if err := fn(); err != nil {
					return 0
				}
				el := time.Since(start).Seconds()
				if best == 0 || el < best {
					best = el
				}
			}
			return best
		}
		blockedTuner := autotune.New()
		secBlocked := time1(func() error {
			_, _, err := mp2.PairEnergiesBlocked(qov, eps, s.nocc, 0, blockedTuner, linalg.F64)
			return err
		})
		pairTuner := autotune.New()
		secPair := time1(func() error {
			_, _, err := mp2.PairEnergiesUnblocked(bov, eps, s.nocc, pairTuner)
			return err
		})
		if secBlocked == 0 || secPair == 0 {
			continue
		}
		rows = append(rows,
			GemmBenchRow{
				Name: s.name, M: s.nvir, K: s.naux, N: s.nocc * s.nvir,
				Kernel:  "blocked",
				Seconds: secBlocked, GFLOPS: flops / secBlocked / 1e9,
				Tracked: s.tracked,
			},
			GemmBenchRow{
				Name: s.name, M: s.nvir, K: s.naux, N: s.nvir,
				Kernel:  "pairloop",
				Seconds: secPair, GFLOPS: flops / secPair / 1e9,
				Tracked: false,
			})
	}
	return rows
}
