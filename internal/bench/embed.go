package bench

import (
	"math"
	"time"

	"github.com/fragmd/fragmd/internal/chem"
	"github.com/fragmd/fragmd/internal/fragment"
	"github.com/fragmd/fragmd/internal/md"
	"github.com/fragmd/fragmd/internal/molecule"
	"github.com/fragmd/fragmd/internal/potential"
	"github.com/fragmd/fragmd/internal/sched"
)

// Embed reports the EE-MBE accuracy/throughput experiment (DESIGN.md
// §8): the accuracy half measures the MBE2 error against the RI-HF
// supersystem reference on water clusters, vacuum vs electrostatically
// embedded (with and without SCC refinement); the throughput half
// measures the two-phase task graph's cost in the live engine on the
// fast surrogate, vacuum vs embedded, where the per-step charge
// barrier is the only difference.
func Embed(c *Config) {
	c.printf("EE-MBE accuracy: water clusters, MBE2 vs RI-HF supersystem (STO-3G)\n")
	c.printf("  %-4s %16s %14s %14s %14s %8s\n",
		"n", "E_super (Ha)", "err vac", "err EE", "err EE+SCC2", "wall")
	sizes := []int{3, 4}
	if !c.Quick {
		sizes = []int{3, 4, 5}
	}
	hf := &potential.HF{UseRI: true}
	improved := 0
	for _, n := range sizes {
		g := molecule.WaterCluster(n)
		super, _, err := hf.Evaluate(g)
		if err != nil {
			c.fail("embed: supersystem: " + err.Error())
			return
		}
		f, err := fragment.ByMolecule(g, 3, 1, fragment.Options{MaxOrder: 2})
		if err != nil {
			c.fail("embed: " + err.Error())
			return
		}
		start := time.Now()
		vac, err := f.Compute(hf)
		if err != nil {
			c.fail("embed: vacuum MBE2: " + err.Error())
			return
		}
		ee, err := f.ComputeEmbedded(hf, nil, fragment.EmbedOptions{})
		if err != nil {
			c.fail("embed: EE-MBE2: " + err.Error())
			return
		}
		scc, err := f.ComputeEmbedded(hf, nil, fragment.EmbedOptions{SCC: 2, Damping: 0.3, SCCTol: 1e-7})
		if err != nil {
			c.fail("embed: EE-MBE2/SCC: " + err.Error())
			return
		}
		wall := time.Since(start)
		errVac := vac.Energy - super
		errEE := ee.Energy - super
		errSCC := scc.Energy - super
		c.printf("  %-4d %16.8f %14.3e %14.3e %14.3e %7.1fs\n",
			n, super, errVac, errEE, errSCC, wall.Seconds())
		if math.Abs(errEE) < math.Abs(errVac) {
			improved++
		}
	}
	c.printf("  embedding shrank the MBE2 error on %d/%d clusters\n\n", improved, len(sizes))
	if improved == 0 {
		c.fail("embed: embedding never improved the MBE2 error")
	}

	// Throughput: the surrogate potential isolates scheduling cost; the
	// embedded runs add 1 (and 2) charge rounds per step plus the
	// global per-step release the field coupling requires.
	nWaters, steps := 24, 4
	if c.Quick {
		nWaters, steps = 12, 3
	}
	g := molecule.WaterCluster(nWaters)
	f, err := fragment.ByMolecule(g, 3, 1, fragment.Options{MaxOrder: 2, DimerCutoff: 12})
	if err != nil {
		c.fail("embed: " + err.Error())
		return
	}
	lj := &potential.LennardJones{Charges: map[int]float64{1: 0.2, 8: -0.4}, Delay: 2e-4}
	c.printf("EE-MBE scheduling cost: %d waters, %d polymers, %d steps (LJ surrogate)\n",
		nWaters, len(f.Polymers()), steps)
	c.printf("  %-14s %12s %14s\n", "mode", "wall/step", "vs vacuum")
	var vacuumPerStep float64
	for _, mode := range []struct {
		name  string
		embed *fragment.EmbedOptions
	}{
		{"vacuum", nil},
		{"embedded", &fragment.EmbedOptions{}},
		{"embedded+scc", &fragment.EmbedOptions{SCC: 1, Damping: 0.3}},
	} {
		eng, err := sched.New(f, lj, sched.Options{
			Async: true, Dt: 0.5 * chem.AtomicTimePerFs, Embed: mode.embed,
		})
		if err != nil {
			c.fail("embed: " + err.Error())
			return
		}
		state := md.NewState(f.Geom.Clone())
		start := time.Now()
		if _, err := eng.Run(state, steps, nil); err != nil {
			c.fail("embed: " + err.Error())
			return
		}
		perStep := time.Since(start).Seconds() / float64(steps)
		if mode.embed == nil {
			vacuumPerStep = perStep
			c.printf("  %-14s %11.3fs %14s\n", mode.name, perStep, "—")
		} else {
			c.printf("  %-14s %11.3fs %13.2f×\n", mode.name, perStep, perStep/vacuumPerStep)
		}
	}
}
