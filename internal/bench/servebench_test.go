package bench

import (
	"path/filepath"
	"strings"
	"testing"
)

func serveReport() *ServeBenchReport {
	return &ServeBenchReport{
		Schema: ServeBenchSchema,
		GoOS:   "linux", GoArch: "amd64", NumCPU: 4,
		Jobs: 1000, Tenants: 4, StepsPerJob: 2, MaxActive: 4,
		WallSeconds: 3.2, JobsPerSec: 312.5,
		P50Ms: 2900, P99Ms: 3100, FairnessRatio: 1.05,
		DrainInterrupted: 25, DrainResumed: 25,
	}
}

func TestServeReportRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "serve.json")
	rep := serveReport()
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadServeReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *rep {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, rep)
	}
}

func TestLoadServeReportRejectsBadSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "serve.json")
	rep := serveReport()
	rep.Schema = "fragmd-bench-serve/v0"
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadServeReport(path); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("stale schema accepted: %v", err)
	}
}

// The comparator's three gates: p50 up, p99 up, throughput down — each
// beyond tolerance must be flagged; within tolerance must pass.
func TestCompareServeReports(t *testing.T) {
	base := serveReport()

	ok := *base
	ok.P50Ms *= 1.2
	ok.P99Ms *= 1.2
	ok.JobsPerSec *= 0.85
	if viol := CompareServeReports(base, &ok, 25); len(viol) != 0 {
		t.Fatalf("within-tolerance report flagged: %v", viol)
	}

	cases := []struct {
		name   string
		mutate func(*ServeBenchReport)
		want   string
	}{
		{"p50", func(r *ServeBenchReport) { r.P50Ms *= 1.5 }, "p50 latency regressed"},
		{"p99", func(r *ServeBenchReport) { r.P99Ms *= 1.5 }, "p99 latency regressed"},
		{"throughput", func(r *ServeBenchReport) { r.JobsPerSec *= 0.5 }, "throughput regressed"},
	}
	for _, c := range cases {
		cur := *base
		c.mutate(&cur)
		viol := CompareServeReports(base, &cur, 25)
		if len(viol) != 1 || !strings.Contains(viol[0], c.want) {
			t.Errorf("%s: got %v, want one violation containing %q", c.name, viol, c.want)
		}
	}
}
