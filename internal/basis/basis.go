// Package basis defines contracted Cartesian Gaussian basis sets and
// builds per-molecule shell lists for the integral engine.
//
// Two orbital basis sets are built in:
//
//   - "sto-3g": the literature STO-3G exponents/coefficients (exact
//     values) — used by the fast test and latency paths.
//   - "dzp": a double-ζ-plus-polarisation set (3-21G split-valence
//     exponents plus a d shell on heavy atoms and a p shell on H). It
//     plays the role of the paper's cc-pVDZ: the methods only require a
//     polarised double-ζ primary basis, and the Table III reference
//     calculations in the FMO literature used 6-31G(d,p), which this
//     matches in quality. Documented as a substitution in DESIGN.md.
//
// Auxiliary ("RIFIT-like") bases are generated even-tempered per element
// from the orbital exponent ranges, replacing cc-pVDZ-RIFIT.
package basis

import (
	"fmt"
	"math"

	"github.com/fragmd/fragmd/internal/molecule"
)

// Shell is one contracted Cartesian Gaussian shell placed on an atom.
// Coefs[c][p] is the full coefficient of primitive p for Cartesian
// component c, including primitive and contracted normalisation, so the
// integral engine needs no further normalisation logic.
type Shell struct {
	Atom   int        // owning atom index in the geometry
	L      int        // total angular momentum (0=s, 1=p, 2=d, ...)
	Center [3]float64 // Bohr
	Exps   []float64
	Coefs  [][]float64 // [ncart][nprim]
	Start  int         // index of the shell's first basis function
}

// NCart returns the number of Cartesian components of the shell.
func (s *Shell) NCart() int { return (s.L + 1) * (s.L + 2) / 2 }

// Set is a basis for a specific geometry.
type Set struct {
	Name   string
	Shells []Shell
	N      int // total number of basis functions
	NAtoms int
}

// CartComponents lists the Cartesian exponent triples (lx, ly, lz) of
// angular momentum L in the canonical lexicographic order
// (lx descending, then ly descending).
func CartComponents(l int) [][3]int {
	out := make([][3]int, 0, (l+1)*(l+2)/2)
	for lx := l; lx >= 0; lx-- {
		for ly := l - lx; ly >= 0; ly-- {
			out = append(out, [3]int{lx, ly, l - lx - ly})
		}
	}
	return out
}

// doubleFactorial returns n!! with (-1)!! = 1.
func doubleFactorial(n int) float64 {
	r := 1.0
	for ; n > 1; n -= 2 {
		r *= float64(n)
	}
	return r
}

// primNorm is the normalisation constant of a primitive Cartesian
// Gaussian x^i y^j z^k exp(-a r²).
func primNorm(a float64, i, j, k int) float64 {
	num := math.Pow(2*a/math.Pi, 0.75) * math.Pow(4*a, 0.5*float64(i+j+k))
	den := math.Sqrt(doubleFactorial(2*i-1) * doubleFactorial(2*j-1) * doubleFactorial(2*k-1))
	return num / den
}

// selfOverlap is the overlap of two primitives with the same center and
// the same Cartesian exponents (i, j, k).
func selfOverlap(a, b float64, i, j, k int) float64 {
	p := a + b
	pre := math.Pow(math.Pi/p, 1.5)
	f := doubleFactorial(2*i-1) * doubleFactorial(2*j-1) * doubleFactorial(2*k-1)
	return pre * f / math.Pow(2*p, float64(i+j+k))
}

// rawShell is an element-basis shell before placement/normalisation.
type rawShell struct {
	l     int
	exps  []float64
	coefs []float64
}

// newShell places a raw shell on an atom and normalises every Cartesian
// component to unit self-overlap.
func newShell(atom int, center [3]float64, rs rawShell) Shell {
	comps := CartComponents(rs.l)
	sh := Shell{Atom: atom, L: rs.l, Center: center, Exps: append([]float64(nil), rs.exps...)}
	sh.Coefs = make([][]float64, len(comps))
	for ci, c := range comps {
		cc := make([]float64, len(rs.exps))
		for p, a := range rs.exps {
			cc[p] = rs.coefs[p] * primNorm(a, c[0], c[1], c[2])
		}
		// Contracted normalisation.
		var s float64
		for p := range rs.exps {
			for q := range rs.exps {
				s += cc[p] * cc[q] * selfOverlap(rs.exps[p], rs.exps[q], c[0], c[1], c[2])
			}
		}
		inv := 1 / math.Sqrt(s)
		for p := range cc {
			cc[p] *= inv
		}
		sh.Coefs[ci] = cc
	}
	return sh
}

// Build constructs the named orbital basis for a geometry.
// Supported names: "sto-3g", "dzp".
func Build(name string, g *molecule.Geometry) (*Set, error) {
	table, ok := orbitalBases[name]
	if !ok {
		return nil, fmt.Errorf("basis: unknown basis set %q", name)
	}
	set := &Set{Name: name, NAtoms: g.N()}
	for ai, at := range g.Atoms {
		raws, ok := table[at.Z]
		if !ok {
			return nil, fmt.Errorf("basis: %s has no parameters for element Z=%d", name, at.Z)
		}
		for _, rs := range raws {
			sh := newShell(ai, at.Pos, rs)
			sh.Start = set.N
			set.N += sh.NCart()
			set.Shells = append(set.Shells, sh)
		}
	}
	return set, nil
}

// MaxL returns the largest angular momentum in the set.
func (s *Set) MaxL() int {
	m := 0
	for i := range s.Shells {
		if s.Shells[i].L > m {
			m = s.Shells[i].L
		}
	}
	return m
}

// FuncAtom returns, for every basis function, the index of its atom.
func (s *Set) FuncAtom() []int {
	out := make([]int, s.N)
	for i := range s.Shells {
		sh := &s.Shells[i]
		for c := 0; c < sh.NCart(); c++ {
			out[sh.Start+c] = sh.Atom
		}
	}
	return out
}

// sto3gS builds the common STO-3G s-contraction coefficient pattern.
var sto3gSCoef = []float64{0.15432897, 0.53532814, 0.44463454}
var sto3gSPCoefS = []float64{-0.09996723, 0.39951283, 0.70011547}
var sto3gSPCoefP = []float64{0.15591627, 0.60768372, 0.39195739}

// orbitalBases maps basis name → element Z → shells.
var orbitalBases = map[string]map[int][]rawShell{
	"sto-3g": {
		1: {
			{0, []float64{3.42525091, 0.62391373, 0.16885540}, sto3gSCoef},
		},
		2: {
			{0, []float64{6.36242139, 1.15892300, 0.31364979}, sto3gSCoef},
		},
		6: {
			{0, []float64{71.6168370, 13.0450960, 3.5305122}, sto3gSCoef},
			{0, []float64{2.9412494, 0.6834831, 0.2222899}, sto3gSPCoefS},
			{1, []float64{2.9412494, 0.6834831, 0.2222899}, sto3gSPCoefP},
		},
		7: {
			{0, []float64{99.1061690, 18.0523120, 4.8856602}, sto3gSCoef},
			{0, []float64{3.7804559, 0.8784966, 0.2857144}, sto3gSPCoefS},
			{1, []float64{3.7804559, 0.8784966, 0.2857144}, sto3gSPCoefP},
		},
		8: {
			{0, []float64{130.7093200, 23.8088610, 6.4436083}, sto3gSCoef},
			{0, []float64{5.0331513, 1.1695961, 0.3803890}, sto3gSPCoefS},
			{1, []float64{5.0331513, 1.1695961, 0.3803890}, sto3gSPCoefP},
		},
	},
	"dzp": {
		1: {
			{0, []float64{5.4471780, 0.8245470}, []float64{0.1562850, 0.9046910}},
			{0, []float64{0.1831920}, []float64{1.0}},
			{1, []float64{1.1000000}, []float64{1.0}},
		},
		6: {
			{0, []float64{172.2560, 25.9109, 5.533350}, []float64{0.0617669, 0.3587940, 0.7007130}},
			{0, []float64{3.6649800, 0.7705450}, []float64{-0.3958970, 1.2158400}},
			{1, []float64{3.6649800, 0.7705450}, []float64{0.2364600, 0.8606190}},
			{0, []float64{0.1958570}, []float64{1.0}},
			{1, []float64{0.1958570}, []float64{1.0}},
			{2, []float64{0.8000000}, []float64{1.0}},
		},
		7: {
			{0, []float64{242.7660, 36.4851, 7.814490}, []float64{0.0598657, 0.3529550, 0.7065130}},
			{0, []float64{5.4252200, 1.1491500}, []float64{-0.4133010, 1.2244200}},
			{1, []float64{5.4252200, 1.1491500}, []float64{0.2379720, 0.8589530}},
			{0, []float64{0.2832050}, []float64{1.0}},
			{1, []float64{0.2832050}, []float64{1.0}},
			{2, []float64{0.8000000}, []float64{1.0}},
		},
		8: {
			{0, []float64{322.0370, 48.4308, 10.42060}, []float64{0.0592394, 0.3515000, 0.7076580}},
			{0, []float64{7.4029400, 1.5762000}, []float64{-0.4044530, 1.2215600}},
			{1, []float64{7.4029400, 1.5762000}, []float64{0.2445860, 0.8539550}},
			{0, []float64{0.3736840}, []float64{1.0}},
			{1, []float64{0.3736840}, []float64{1.0}},
			{2, []float64{0.8000000}, []float64{1.0}},
		},
	},
}

// AuxOptions controls even-tempered auxiliary basis generation.
type AuxOptions struct {
	// PerL[l] is the number of even-tempered primitives generated for
	// angular momentum l; missing entries default to defaultAuxPerL.
	PerL []int
	// MaxL caps the auxiliary angular momentum (default: orbital MaxL+1).
	MaxL int
}

var defaultAuxPerL = []int{10, 8, 6, 4}

// BuildAux generates an even-tempered auxiliary ("RIFIT-like") basis for
// the geometry, derived from the orbital basis exponent ranges: for each
// element, products of orbital Gaussians have exponents spanning
// [2·a_min, 2·a_max], which the generated geometric series covers.
// This substitutes for cc-pVDZ-RIFIT (see DESIGN.md §2).
func BuildAux(orb *Set, g *molecule.Geometry, opts AuxOptions) *Set {
	// Exponent range and max L per element.
	type rng struct {
		min, max float64
		maxL     int
	}
	ranges := map[int]*rng{}
	for i := range orb.Shells {
		sh := &orb.Shells[i]
		z := g.Atoms[sh.Atom].Z
		r, ok := ranges[z]
		if !ok {
			r = &rng{min: math.Inf(1)}
			ranges[z] = r
		}
		for _, a := range sh.Exps {
			r.min = math.Min(r.min, a)
			r.max = math.Max(r.max, a)
		}
		if sh.L > r.maxL {
			r.maxL = sh.L
		}
	}

	perL := func(l int) int {
		if l < len(opts.PerL) && opts.PerL[l] > 0 {
			return opts.PerL[l]
		}
		if l < len(defaultAuxPerL) {
			return defaultAuxPerL[l]
		}
		return 3
	}

	set := &Set{Name: orb.Name + "-autoaux", NAtoms: g.N()}
	for ai, at := range g.Atoms {
		r := ranges[at.Z]
		maxL := opts.MaxL
		if maxL <= 0 {
			maxL = r.maxL + 1
		}
		for l := 0; l <= maxL; l++ {
			n := perL(l)
			lo := r.min * 0.8
			hi := 2 * r.max / math.Pow(2, float64(l))
			if hi < 8*lo {
				hi = 8 * lo
			}
			ratio := math.Pow(hi/lo, 1/float64(maxInt(n-1, 1)))
			for k := 0; k < n; k++ {
				a := lo * math.Pow(ratio, float64(k))
				sh := newShell(ai, at.Pos, rawShell{l, []float64{a}, []float64{1}})
				sh.Start = set.N
				set.N += sh.NCart()
				set.Shells = append(set.Shells, sh)
			}
		}
	}
	return set
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// NewCustomShell places and normalises a single shell with explicit
// parameters; intended for tests and specialised callers.
func NewCustomShell(atom int, center [3]float64, l int, exps, coefs []float64) Shell {
	return newShell(atom, center, rawShell{l, exps, coefs})
}

// FromShells assembles a Set from explicit shells, assigning function
// offsets in order.
func FromShells(name string, natoms int, shells ...Shell) *Set {
	set := &Set{Name: name, NAtoms: natoms}
	for _, sh := range shells {
		sh.Start = set.N
		set.N += sh.NCart()
		set.Shells = append(set.Shells, sh)
	}
	return set
}
