package basis

import (
	"math"
	"testing"

	"github.com/fragmd/fragmd/internal/molecule"
)

func TestCartComponents(t *testing.T) {
	if n := len(CartComponents(0)); n != 1 {
		t.Errorf("s components = %d", n)
	}
	if n := len(CartComponents(1)); n != 3 {
		t.Errorf("p components = %d", n)
	}
	if n := len(CartComponents(2)); n != 6 {
		t.Errorf("d components = %d", n)
	}
	// Canonical order: first d component is xx, last is zz.
	d := CartComponents(2)
	if d[0] != [3]int{2, 0, 0} || d[5] != [3]int{0, 0, 2} {
		t.Errorf("d ordering wrong: %v", d)
	}
	// Total angular momentum preserved.
	for _, c := range CartComponents(3) {
		if c[0]+c[1]+c[2] != 3 {
			t.Fatalf("f component %v has wrong total L", c)
		}
	}
}

func TestBuildCounts(t *testing.T) {
	g := molecule.Water()
	sto, err := Build("sto-3g", g)
	if err != nil {
		t.Fatal(err)
	}
	// O: 2s + 1p = 5; each H: 1s. Total 7.
	if sto.N != 7 {
		t.Errorf("water sto-3g N = %d, want 7", sto.N)
	}
	dzp, err := Build("dzp", g)
	if err != nil {
		t.Fatal(err)
	}
	// O: 3s + 2p + 1d(cart) = 3 + 6 + 6 = 15; H: 2s + 1p = 5. Total 25.
	if dzp.N != 25 {
		t.Errorf("water dzp N = %d, want 25", dzp.N)
	}
	if dzp.MaxL() != 2 {
		t.Errorf("dzp MaxL = %d, want 2", dzp.MaxL())
	}
	if _, err := Build("nope", g); err == nil {
		t.Error("expected unknown-basis error")
	}
}

func TestShellOffsets(t *testing.T) {
	g := molecule.Water()
	bs, _ := Build("dzp", g)
	// Start offsets must tile [0, N) without gaps.
	next := 0
	for _, sh := range bs.Shells {
		if sh.Start != next {
			t.Fatalf("shell start %d, want %d", sh.Start, next)
		}
		next += sh.NCart()
	}
	if next != bs.N {
		t.Fatalf("offsets end at %d, want %d", next, bs.N)
	}
	fa := bs.FuncAtom()
	if len(fa) != bs.N {
		t.Fatal("FuncAtom length")
	}
	if fa[0] != 0 || fa[bs.N-1] != 2 {
		t.Errorf("FuncAtom boundaries: %v", fa)
	}
}

func TestAuxGeneration(t *testing.T) {
	g := molecule.Water()
	orb, _ := Build("sto-3g", g)
	aux := BuildAux(orb, g, AuxOptions{})
	if aux.N <= orb.N {
		t.Errorf("aux basis (%d) should exceed orbital basis (%d)", aux.N, orb.N)
	}
	// All aux shells single-primitive and normalised.
	for _, sh := range aux.Shells {
		if len(sh.Exps) != 1 {
			t.Fatal("aux shells must be uncontracted")
		}
	}
	// Custom sizing respected.
	small := BuildAux(orb, g, AuxOptions{PerL: []int{2, 1}, MaxL: 1})
	// Per atom: 2 s + 1 p = 5 functions → 15 total for water.
	if small.N != 15 {
		t.Errorf("custom aux N = %d, want 15", small.N)
	}
}

func TestNormalisationSelfOverlap(t *testing.T) {
	// Contracted normalisation must give unit self-overlap for every
	// component, including mixed d components (xy vs xx).
	sh := NewCustomShell(0, [3]float64{0, 0, 0}, 2, []float64{1.3, 0.4}, []float64{0.6, 0.5})
	for ci, comp := range CartComponents(2) {
		var s float64
		for p, a := range sh.Exps {
			for q, b := range sh.Exps {
				s += sh.Coefs[ci][p] * sh.Coefs[ci][q] * selfOverlap(a, b, comp[0], comp[1], comp[2])
			}
		}
		if math.Abs(s-1) > 1e-12 {
			t.Errorf("component %v self-overlap %.14f", comp, s)
		}
	}
}

func TestDoubleFactorial(t *testing.T) {
	cases := map[int]float64{-1: 1, 0: 1, 1: 1, 3: 3, 5: 15, 7: 105}
	for n, want := range cases {
		if got := doubleFactorial(n); got != want {
			t.Errorf("(%d)!! = %g, want %g", n, got, want)
		}
	}
}
