package warmstart

import (
	"math"
	"testing"

	"github.com/fragmd/fragmd/internal/molecule"
)

func embeddedState(g *molecule.Geometry) *State {
	st := NewState(g, -1.5, make([]float64, 3*g.N()))
	st.SnapshotField([]float64{5, 0, 0, 0, 5, 0}, []float64{0.3, -0.3})
	return st
}

func TestFieldDisplacement(t *testing.T) {
	g := molecule.Water()
	st := embeddedState(g)
	if d := st.FieldDisplacement([]float64{5, 0, 0, 0, 5, 0}, []float64{0.3, -0.3}); d != 0 {
		t.Errorf("identical field displaced by %g", d)
	}
	if d := st.FieldDisplacement([]float64{5, 0, 0.01, 0, 5, 0}, []float64{0.3, -0.3}); math.Abs(d-0.01) > 1e-12 {
		t.Errorf("site move of 0.01 reported as %g", d)
	}
	if d := st.FieldDisplacement([]float64{5, 0, 0, 0, 5, 0}, []float64{0.3, -0.25}); math.Abs(d-0.05) > 1e-12 {
		t.Errorf("charge drift of 0.05 reported as %g", d)
	}
	// Vacuum vs embedded (and any site-count mismatch) is incompatible.
	if d := st.FieldDisplacement(nil, nil); !math.IsInf(d, 1) {
		t.Errorf("vacuum against embedded state reported %g, want +Inf", d)
	}
	vac := NewState(g, -1, nil)
	if d := vac.FieldDisplacement(nil, nil); d != 0 {
		t.Errorf("vacuum against vacuum state reported %g, want 0", d)
	}
}

// Stale charges must invalidate skip reuse exactly like moved atoms:
// the cache returns the entry only while both the geometry and the
// field sit inside the tolerance.
func TestReuseEmbeddedFieldDrift(t *testing.T) {
	g := molecule.Water()
	c := NewCache(0.02, 10)
	c.Put("p", embeddedState(g))

	pos := []float64{5, 0, 0, 0, 5, 0}
	q := []float64{0.3, -0.3}
	if _, ok := c.ReuseEmbedded("p", g, pos, q); !ok {
		t.Fatal("unchanged field refused reuse")
	}
	// Charge drift beyond the tolerance: re-evaluate.
	if _, ok := c.ReuseEmbedded("p", g, pos, []float64{0.33, -0.3}); ok {
		t.Fatal("reused a state whose charges drifted past the tolerance")
	}
	// Site displacement beyond the tolerance: re-evaluate.
	if _, ok := c.ReuseEmbedded("p", g, []float64{5, 0, 0.05, 0, 5, 0}, q); ok {
		t.Fatal("reused a state whose field sites moved past the tolerance")
	}
	// A vacuum lookup must never reuse an embedded entry.
	if _, ok := c.Reuse("p", g); ok {
		t.Fatal("vacuum Reuse returned an embedded state")
	}
	// Within tolerance on both axes: reuse.
	if _, ok := c.ReuseEmbedded("p", g, []float64{5, 0, 0.01, 0, 5, 0}, []float64{0.31, -0.3}); !ok {
		t.Fatal("in-tolerance field drift refused reuse")
	}
}

// Warm-start guesses stay valid across field changes (the SCF still
// converges to its own thresholds); only skip reuse is field-gated.
func TestGuessIgnoresField(t *testing.T) {
	g := molecule.Water()
	c := NewCache(0, 0)
	c.Put("p", embeddedState(g))
	if st := c.Guess("p", g); st == nil {
		t.Fatal("guess refused for an embedded state")
	}
}
