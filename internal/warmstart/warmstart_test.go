package warmstart

import (
	"math"
	"sync"
	"testing"

	"github.com/fragmd/fragmd/internal/molecule"
)

func twoAtomGeom(dz float64) *molecule.Geometry {
	g := molecule.New()
	g.AddAtom(8, 0, 0, 0)
	g.AddAtom(1, 0, 0, 1.8+dz)
	return g
}

func TestSnapshotCompatibility(t *testing.T) {
	g := twoAtomGeom(0)
	st := NewState(g, -1.5, []float64{0, 0, 0, 0, 0, 0})
	if !st.Compatible(g) {
		t.Fatal("state incompatible with its own geometry")
	}
	if d := st.MaxDisplacement(g); d != 0 {
		t.Errorf("self displacement = %g, want 0", d)
	}
	moved := twoAtomGeom(0.25)
	if d := st.MaxDisplacement(moved); math.Abs(d-0.25) > 1e-12 {
		t.Errorf("displacement = %g, want 0.25", d)
	}
	// Different element → incompatible, infinite displacement.
	other := molecule.New()
	other.AddAtom(6, 0, 0, 0)
	other.AddAtom(1, 0, 0, 1.8)
	if st.Compatible(other) {
		t.Error("state compatible with different atoms")
	}
	if !math.IsInf(st.MaxDisplacement(other), 1) {
		t.Error("incompatible displacement not +Inf")
	}
	// Different atom count → incompatible.
	short := molecule.New()
	short.AddAtom(8, 0, 0, 0)
	if st.Compatible(short) {
		t.Error("state compatible with truncated geometry")
	}
}

func TestCacheGuessAndEviction(t *testing.T) {
	c := NewCache(0, 0)
	g := twoAtomGeom(0)
	if c.Guess("0", g) != nil {
		t.Fatal("guess from empty cache")
	}
	st := NewState(g, -2, nil)
	c.Put("0", st)
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	if got := c.Guess("0", g); got != st {
		t.Fatal("guess did not return stored state")
	}
	// Incompatible geometry evicts the entry.
	other := molecule.New()
	other.AddAtom(6, 0, 0, 0)
	other.AddAtom(1, 0, 0, 1.8)
	if c.Guess("0", other) != nil {
		t.Fatal("incompatible guess returned")
	}
	if c.Len() != 0 {
		t.Fatal("incompatible entry not evicted")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 2 || s.Evictions != 1 {
		t.Errorf("stats = %+v, want 1 hit / 2 misses / 1 eviction", s)
	}
}

func TestCacheReuseToleranceAndStaleness(t *testing.T) {
	c := NewCache(0.1, 2)
	g := twoAtomGeom(0)
	c.Put("0", NewState(g, -2, []float64{1, 0, 0, 0, 0, 0}))

	// Within tolerance: two reuses allowed, third blocked by staleness.
	near := twoAtomGeom(0.05)
	for i := 0; i < 2; i++ {
		if _, ok := c.Reuse("0", near); !ok {
			t.Fatalf("reuse %d refused within tolerance", i)
		}
	}
	if _, ok := c.Reuse("0", near); ok {
		t.Fatal("staleness bound not enforced")
	}
	// A fresh Put resets the staleness counter.
	c.Put("0", NewState(near, -2.01, nil))
	if _, ok := c.Reuse("0", near); !ok {
		t.Fatal("reuse refused after fresh Put")
	}

	// Beyond tolerance: refused even with budget left.
	far := twoAtomGeom(0.5)
	if _, ok := c.Reuse("0", far); ok {
		t.Fatal("reuse allowed beyond tolerance")
	}
	// Displacement is measured against the last *evaluated* geometry:
	// repeated small steps must eventually trip the tolerance.
	c2 := NewCache(0.1, 100)
	c2.Put("0", NewState(twoAtomGeom(0), -2, nil))
	steps := 0
	for dz := 0.04; ; dz += 0.04 {
		if _, ok := c2.Reuse("0", twoAtomGeom(dz)); !ok {
			break
		}
		steps++
	}
	if steps != 2 { // 0.04, 0.08 reusable; 0.12 ≥ 0.1 is not
		t.Errorf("accumulated drift allowed %d reuses, want 2", steps)
	}
}

func TestCacheSkipDisabled(t *testing.T) {
	c := NewCache(0, 0) // skipTol 0: skip path off, guesses still served
	g := twoAtomGeom(0)
	c.Put("0", NewState(g, -2, nil))
	if _, ok := c.Reuse("0", g); ok {
		t.Fatal("skip reuse with zero tolerance")
	}
	if c.Guess("0", g) == nil {
		t.Fatal("guess unavailable with zero skip tolerance")
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	c := NewCache(0.1, 3)
	g := twoAtomGeom(0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := string(rune('a' + w%4))
			for i := 0; i < 200; i++ {
				c.Put(key, NewState(g, -2, nil))
				c.Guess(key, g)
				c.Reuse(key, g)
			}
		}(w)
	}
	wg.Wait()
	if c.Len() != 4 {
		t.Errorf("Len = %d, want 4", c.Len())
	}
}
