// Package warmstart implements incremental MBE evaluation across AIMD
// time steps (the paper's "reuse between steps" lever): fragments move
// only slightly per step, so the converged SCF state of a polymer is an
// excellent initial guess for its next evaluation, and a polymer that
// has barely moved at all need not be re-evaluated.
//
// Two reuse levels are provided, with different accuracy semantics:
//
//   - Warm start (exact): Cache.Guess returns the previous converged
//     state of a polymer; stateful evaluators inject its density as the
//     SCF initial guess (scf.Options.GuessDensity). The SCF still
//     iterates to the same convergence thresholds, so the converged
//     energy and gradient are unchanged to within those thresholds —
//     only the iteration count drops.
//
//   - Skip reuse (approximate): when every atom of a polymer has moved
//     less than the cache's skip tolerance since its last *real*
//     evaluation, Cache.Reuse hands back the cached energy/gradient and
//     the evaluation is skipped entirely. The error is bounded by the
//     tolerance times the local force curvature; a staleness bound
//     (maxSkip consecutive reuses) forces a real evaluation
//     periodically so drift cannot accumulate unchecked. Displacement
//     is always measured against the geometry of the last real
//     evaluation, not the previous step, so small per-step motions
//     still invalidate the entry once they add up.
//
// States are keyed by polymer identity (fragment.Polymer.Key) and
// validated against the fragment's atom list and basis metadata before
// any reuse; an incompatible entry is evicted. The cache is safe for
// concurrent use by the scheduler's worker pool.
package warmstart

import (
	"math"
	"sync"

	"github.com/fragmd/fragmd/internal/linalg"
	"github.com/fragmd/fragmd/internal/molecule"
)

// State is the reusable result of one fragment evaluation: the
// converged electronic state (for warm starting the next SCF) plus the
// energy/gradient and the geometry they were computed at (for skip
// reuse). D and C are nil for evaluators with no electronic state
// (e.g. the Lennard-Jones surrogate); such states still support skip
// reuse.
type State struct {
	// Zs and Pos snapshot the geometry of the evaluation: atomic
	// numbers (identity check) and flat 3N positions in Bohr
	// (displacement check).
	Zs  []int
	Pos []float64

	// FieldPos and FieldQ snapshot the external embedding field the
	// evaluation ran in (nil for vacuum). Skip reuse compares the field
	// too: a cached energy is only as good as the charges it was
	// embedded in, so stale charges must invalidate the entry exactly
	// like moved atoms do. Charge differences are measured on the same
	// scale as displacements (1 e ≡ 1 Bohr — both "small" on the skip
	// tolerance scale).
	FieldPos []float64
	FieldQ   []float64

	// Energy and Grad are the evaluation's results; Grad may be nil for
	// energy-only evaluations. FieldGrad is the gradient on the
	// embedding-field sites (nil for vacuum evaluations), kept so skip
	// reuse can hand back the complete embedded force set.
	Energy    float64
	Grad      []float64
	FieldGrad []float64

	// Converged electronic state and fitted-basis metadata (nil/zero
	// for stateless evaluators). D is the AO density (occupation-2
	// convention), C the MO coefficients. Basis, NBf and NOcc are
	// validated before the state is reused as an SCF guess; NAux (the
	// auxiliary-basis size the state was fitted with) is diagnostic
	// only — a density converged under a different auxiliary basis is
	// still a valid guess.
	D     *linalg.Mat
	C     *linalg.Mat
	Basis string
	NBf   int
	NAux  int
	NOcc  int

	// SCFIters is the number of SCF iterations the evaluation took
	// (0 for stateless evaluators) — the quantity the warm start is
	// meant to shrink.
	SCFIters int
}

// NewState snapshots a stateless evaluation (no electronic state):
// enough for skip reuse but not for SCF warm starting.
func NewState(g *molecule.Geometry, energy float64, grad []float64) *State {
	s := &State{Energy: energy, Grad: grad}
	s.Snapshot(g)
	return s
}

// Snapshot records the geometry the state was computed at.
func (s *State) Snapshot(g *molecule.Geometry) {
	s.Zs = make([]int, g.N())
	s.Pos = make([]float64, 3*g.N())
	for i, a := range g.Atoms {
		s.Zs[i] = a.Z
		for k := 0; k < 3; k++ {
			s.Pos[3*i+k] = a.Pos[k]
		}
	}
}

// SnapshotField records the embedding field the state was computed in
// (flat 3M site positions and M charges; both nil for vacuum). The
// slices are copied.
func (s *State) SnapshotField(pos, q []float64) {
	s.FieldPos = append([]float64(nil), pos...)
	s.FieldQ = append([]float64(nil), q...)
}

// FieldDisplacement returns the largest field mismatch between the
// snapshot and the given field, max over per-site displacement (Bohr)
// and per-site |Δq| (e, on the same scale). A site-count mismatch —
// including vacuum vs embedded — returns +Inf.
func (s *State) FieldDisplacement(pos, q []float64) float64 {
	if len(q) != len(s.FieldQ) || len(pos) != len(s.FieldPos) {
		return math.Inf(1)
	}
	var worst float64
	for c := range q {
		var d2 float64
		for k := 0; k < 3; k++ {
			dx := pos[3*c+k] - s.FieldPos[3*c+k]
			d2 += dx * dx
		}
		if d := math.Sqrt(d2); d > worst {
			worst = d
		}
		if dq := math.Abs(q[c] - s.FieldQ[c]); dq > worst {
			worst = dq
		}
	}
	return worst
}

// Compatible reports whether the state was computed for the same atom
// list (count and atomic numbers, in order) as g.
func (s *State) Compatible(g *molecule.Geometry) bool {
	if g.N() != len(s.Zs) {
		return false
	}
	for i, a := range g.Atoms {
		if a.Z != s.Zs[i] {
			return false
		}
	}
	return true
}

// MaxDisplacement returns the largest per-atom displacement (Bohr)
// between the snapshot and g. It returns +Inf when the geometries are
// incompatible.
func (s *State) MaxDisplacement(g *molecule.Geometry) float64 {
	if !s.Compatible(g) {
		return math.Inf(1)
	}
	var worst float64
	for i, a := range g.Atoms {
		var d2 float64
		for k := 0; k < 3; k++ {
			dx := a.Pos[k] - s.Pos[3*i+k]
			d2 += dx * dx
		}
		if d2 > worst {
			worst = d2
		}
	}
	return math.Sqrt(worst)
}

// Stats are cumulative cache counters.
type Stats struct {
	// Hits counts Guess calls that returned a usable previous state.
	Hits int
	// Misses counts Guess calls with no usable state.
	Misses int
	// Skips counts Reuse calls that skipped an evaluation.
	Skips int
	// Evictions counts entries dropped for incompatibility.
	Evictions int
}

// Cache holds per-polymer states across time steps, keyed by
// fragment.Polymer.Key strings. It is safe for concurrent use.
type Cache struct {
	mu      sync.Mutex
	entries map[string]*entry
	skipTol float64
	maxSkip int
	stats   Stats
}

type entry struct {
	state *State
	skips int // consecutive skip reuses since the last real evaluation
}

// DefaultMaxSkip bounds consecutive skip reuses when no explicit bound
// is configured.
const DefaultMaxSkip = 3

// NewCache creates a cache. skipTol is the max-atom-displacement skip
// tolerance in Bohr (0 disables skip reuse; warm-start guesses still
// work). maxSkip bounds consecutive skip reuses per polymer; 0 selects
// DefaultMaxSkip.
func NewCache(skipTol float64, maxSkip int) *Cache {
	if maxSkip <= 0 {
		maxSkip = DefaultMaxSkip
	}
	return &Cache{entries: map[string]*entry{}, skipTol: skipTol, maxSkip: maxSkip}
}

// SkipTol returns the configured skip tolerance (Bohr).
func (c *Cache) SkipTol() float64 { return c.skipTol }

// Len returns the number of cached polymer states.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns a snapshot of the cumulative counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Guess returns the cached state for key as a warm-start guess, or nil
// when absent or incompatible with g (incompatible entries are
// evicted — the polymer's composition changed).
func (c *Cache) Guess(key string, g *molecule.Geometry) *State {
	c.mu.Lock()
	defer c.mu.Unlock()
	en, ok := c.entries[key]
	if !ok {
		c.stats.Misses++
		return nil
	}
	if !en.state.Compatible(g) {
		delete(c.entries, key)
		c.stats.Evictions++
		c.stats.Misses++
		return nil
	}
	c.stats.Hits++
	return en.state
}

// Reuse decides the skip path: when the cache has a compatible state
// for key whose atoms have all moved less than the skip tolerance
// since the last real evaluation, and the staleness bound has not been
// reached, it returns that state and true, counting one more skip.
// Otherwise it returns (nil, false) and the caller must evaluate.
// Entries recorded with an embedding field are only reusable by
// vacuum evaluations if the field was empty (see ReuseEmbedded).
func (c *Cache) Reuse(key string, g *molecule.Geometry) (*State, bool) {
	return c.ReuseEmbedded(key, g, nil, nil)
}

// ReuseEmbedded is Reuse for embedded evaluations: the skip tolerance
// additionally bounds the embedding-field drift (site displacement in
// Bohr and charge change in e) since the last real evaluation, so
// cached results computed in a stale charge field are re-evaluated,
// never reused. fieldPos/fieldQ may be nil for vacuum.
func (c *Cache) ReuseEmbedded(key string, g *molecule.Geometry, fieldPos, fieldQ []float64) (*State, bool) {
	if c.skipTol <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	en, ok := c.entries[key]
	if !ok || en.skips >= c.maxSkip {
		return nil, false
	}
	if en.state.MaxDisplacement(g) >= c.skipTol {
		return nil, false
	}
	if en.state.FieldDisplacement(fieldPos, fieldQ) >= c.skipTol {
		return nil, false
	}
	en.skips++
	c.stats.Skips++
	return en.state, true
}

// Put stores the state of a fresh (real) evaluation for key, resetting
// the staleness counter.
func (c *Cache) Put(key string, st *State) {
	if st == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries[key] = &entry{state: st}
}

// Export snapshots the cached states for checkpointing (package
// resilience). The states themselves are shared, not copied — they are
// treated as immutable once Put.
func (c *Cache) Export() map[string]*State {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]*State, len(c.entries))
	for k, en := range c.entries {
		out[k] = en.state
	}
	return out
}

// Restore installs checkpointed states, marking each as fresh (zero
// consecutive skips — the checkpoint records real evaluations).
// Existing entries under the same keys are replaced; others are kept.
func (c *Cache) Restore(states map[string]*State) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, st := range states {
		if st != nil {
			c.entries[k] = &entry{state: st}
		}
	}
}
