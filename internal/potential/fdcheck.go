package potential

import (
	"fmt"
	"math"

	"github.com/fragmd/fragmd/internal/integrals"
	"github.com/fragmd/fragmd/internal/molecule"
	"github.com/fragmd/fragmd/internal/warmstart"
)

// fdEvaluator and fdEmbedded mirror fragment.Evaluator and
// fragment.EmbeddedEvaluator structurally (Go interfaces match by
// shape), so this helper stays importable from package fragment's own
// tests without an import cycle.
type fdEvaluator interface {
	Evaluate(g *molecule.Geometry) (float64, []float64, error)
}

type fdEmbedded interface {
	EvaluateEmbedded(g *molecule.Geometry, field *integrals.PointCharges, prev *warmstart.State) (float64, []float64, []float64, *warmstart.State, error)
}

// FDForces validates an evaluator's analytic forces against central
// finite differences of its energy — the reusable physics check behind
// the EE-MBE test suite (usable from any package's tests):
//
//	maxAtom = max_i |∂E/∂R_i − [E(R_i+h) − E(R_i−h)]/2h|
//	maxSite = the same over embedding-site displacements
//
// With a nil field the plain Evaluate path is differentiated (maxSite
// is 0); otherwise eval must implement fragment.EmbeddedEvaluator and
// the charges are held fixed while atoms and sites move — the EE-MBE
// frozen-charge gradient convention. atomIdx/siteIdx select the flat
// coordinate components to test (nil = all), so expensive ab initio
// evaluators can probe a representative subset and stay
// -short-compatible.
func FDForces(eval fdEvaluator, g *molecule.Geometry, field *integrals.PointCharges,
	h float64, atomIdx, siteIdx []int) (maxAtom, maxSite float64, err error) {
	if h <= 0 {
		return 0, 0, fmt.Errorf("potential: FD step %g must be positive", h)
	}
	ee, embedded := eval.(fdEmbedded)
	if field.N() > 0 && !embedded {
		return 0, 0, fmt.Errorf("potential: evaluator %T cannot evaluate embedded fragments", eval)
	}
	energy := func(gg *molecule.Geometry, fld *integrals.PointCharges) (float64, error) {
		if fld.N() > 0 {
			e, _, _, _, err := ee.EvaluateEmbedded(gg, fld, nil)
			return e, err
		}
		e, _, err := eval.Evaluate(gg)
		return e, err
	}

	var grad, fieldGrad []float64
	if field.N() > 0 {
		_, grad, fieldGrad, _, err = ee.EvaluateEmbedded(g, field, nil)
	} else {
		_, grad, err = eval.Evaluate(g)
	}
	if err != nil {
		return 0, 0, err
	}
	if grad == nil {
		return 0, 0, fmt.Errorf("potential: evaluator %T returned no gradient", eval)
	}

	if atomIdx == nil {
		for i := 0; i < 3*g.N(); i++ {
			atomIdx = append(atomIdx, i)
		}
	}
	for _, idx := range atomIdx {
		gp, gm := g.Clone(), g.Clone()
		gp.Atoms[idx/3].Pos[idx%3] += h
		gm.Atoms[idx/3].Pos[idx%3] -= h
		ep, err := energy(gp, field)
		if err != nil {
			return 0, 0, err
		}
		em, err := energy(gm, field)
		if err != nil {
			return 0, 0, err
		}
		if d := math.Abs((ep-em)/(2*h) - grad[idx]); d > maxAtom {
			maxAtom = d
		}
	}

	if field.N() == 0 {
		return maxAtom, 0, nil
	}
	if len(fieldGrad) != 3*field.N() {
		return 0, 0, fmt.Errorf("potential: evaluator %T returned %d site-gradient components for %d sites",
			eval, len(fieldGrad), field.N())
	}
	if siteIdx == nil {
		for i := 0; i < 3*field.N(); i++ {
			siteIdx = append(siteIdx, i)
		}
	}
	for _, idx := range siteIdx {
		pp, pm := field.Clone(), field.Clone()
		pp.Pos[idx] += h
		pm.Pos[idx] -= h
		ep, err := energy(g, pp)
		if err != nil {
			return 0, 0, err
		}
		em, err := energy(g, pm)
		if err != nil {
			return 0, 0, err
		}
		if d := math.Abs((ep-em)/(2*h) - fieldGrad[idx]); d > maxSite {
			maxSite = d
		}
	}
	return maxAtom, maxSite, nil
}
