package potential

import (
	"math"
	"testing"

	"github.com/fragmd/fragmd/internal/racecheck"

	"github.com/fragmd/fragmd/internal/fragment"
	"github.com/fragmd/fragmd/internal/integrals"
	"github.com/fragmd/fragmd/internal/molecule"
	"github.com/fragmd/fragmd/internal/scf"
)

// waterField places three mixed-sign charges a few Bohr from a water
// monomer at the origin.
func waterField() *integrals.PointCharges {
	return &integrals.PointCharges{
		Pos: []float64{4.2, 0.3, -0.5, -3.6, 1.9, 0.8, 0.4, -4.5, 2.1},
		Q:   []float64{0.35, -0.3, 0.22},
	}
}

// ljCharges is a crude water-like charge model for the surrogate.
var ljCharges = map[int]float64{1: 0.2, 8: -0.4, 6: 0.1, 7: -0.3}

// Finite-difference validation of every evaluator's vacuum forces
// through the shared FDForces helper.
func TestFDForcesVacuum(t *testing.T) {
	if racecheck.Enabled {
		t.Skip("pure-numerical suite; adds no race coverage and is slow under -race")
	}
	g := molecule.Water()
	cases := []struct {
		name string
		eval fragment.Evaluator
		h    float64
		tol  float64
		idx  []int
	}{
		{"LJ", &LennardJones{}, 1e-6, 1e-9, nil},
		{"RIHF", &HF{UseRI: true}, 1e-4, 1e-6, []int{0, 3, 7}},
		{"RIMP2", &RIMP2{}, 1e-4, 1e-6, []int{0, 3, 7}},
	}
	for _, tc := range cases {
		maxAtom, _, err := FDForces(tc.eval, g, nil, tc.h, tc.idx, nil)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if maxAtom > tc.tol {
			t.Errorf("%s: max FD deviation %.2e exceeds %.0e Ha/Bohr", tc.name, maxAtom, tc.tol)
		}
	}
}

// The embedded evaluators: analytic forces on fragment atoms *and*
// field sites must match finite differences ≤ 1e-6 Ha/Bohr with the
// charges frozen.
func TestFDForcesEmbedded(t *testing.T) {
	if racecheck.Enabled {
		t.Skip("pure-numerical suite; adds no race coverage and is slow under -race")
	}
	g := molecule.Water()
	pc := waterField()
	cases := []struct {
		name   string
		eval   fragment.Evaluator
		h      float64
		tol    float64
		ai, si []int
	}{
		{"LJ", &LennardJones{Charges: ljCharges}, 1e-6, 1e-9, nil, nil},
		{"RIHF", &HF{UseRI: true}, 1e-4, 1e-6, []int{0, 4, 8}, []int{1, 5, 6}},
		{"RIMP2", &RIMP2{}, 1e-4, 1e-6, []int{0, 4, 8}, []int{1, 5, 6}},
	}
	for _, tc := range cases {
		maxAtom, maxSite, err := FDForces(tc.eval, g, pc, tc.h, tc.ai, tc.si)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if maxAtom > tc.tol {
			t.Errorf("%s: atom FD deviation %.2e exceeds %.0e Ha/Bohr", tc.name, maxAtom, tc.tol)
		}
		if maxSite > tc.tol {
			t.Errorf("%s: site FD deviation %.2e exceeds %.0e Ha/Bohr", tc.name, maxSite, tc.tol)
		}
	}
}

// Capped fragments: the evaluator sees the H-cap as a real atom, so
// its forces — including those on the cap — must still match finite
// differences, in vacuum and embedded. The cap chain rule back to the
// parent system is validated separately in package fragment.
func TestFDForcesCappedFragment(t *testing.T) {
	if racecheck.Enabled {
		t.Skip("pure-numerical suite; adds no race coverage and is slow under -race")
	}
	g, residues := molecule.Polyglycine(3)
	frag, err := fragment.New(g, residues, fragment.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := fragment.Polymer{Monomers: []int{1}} // middle residue: capped on both cuts
	ex := frag.Extract(p)
	if len(ex.Caps) == 0 {
		t.Fatal("middle glycine residue extracted without caps")
	}
	capIdx := 3 * len(ex.ParentAtom) // first cap atom's x component

	lj := &LennardJones{Charges: ljCharges}
	maxAtom, _, err := FDForces(lj, ex.Geom, nil, 1e-6, []int{0, capIdx, capIdx + 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if maxAtom > 1e-9 {
		t.Errorf("LJ capped fragment: FD deviation %.2e", maxAtom)
	}

	// Embedded ab initio on a minimal capped fragment: a water dimer
	// whose first water is split across its covalent O–H bond, so the
	// {O,H} monomer extracts with one H-cap (10 electrons) and the
	// second water supplies the embedding charges. FD noise scales as
	// ConvE/2h, so the SCF is converged well past the 1e-6 target.
	gd := molecule.WaterDimer(2.95)
	fragD, err := fragment.New(gd, [][]int{{0, 1}, {2}, {3, 4, 5}}, fragment.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pd := fragment.Polymer{Monomers: []int{0}}
	exd := fragD.Extract(pd)
	if len(exd.Caps) != 1 {
		t.Fatalf("split water extracted with %d caps, want 1", len(exd.Caps))
	}
	charges := make([]float64, gd.N())
	for i, a := range gd.Atoms {
		charges[i] = ljCharges[a.Z]
	}
	fl := fragD.FieldFor(pd, charges, func(a int) [3]float64 { return gd.Atoms[a].Pos })
	if fl.PC().N() != 3 {
		t.Fatalf("embedding field has %d sites, want the second water's 3", fl.PC().N())
	}
	hf := &HF{UseRI: true, SCFOpts: scf.Options{ConvE: 1e-12, ConvErr: 1e-10}}
	capD := 3 * len(exd.ParentAtom)
	maxAtom, maxSite, err := FDForces(hf, exd.Geom, fl.PC(), 1e-4, []int{0, capD, capD + 1}, []int{0, 4})
	if err != nil {
		t.Fatal(err)
	}
	if maxAtom > 1e-6 {
		t.Errorf("RIHF capped fragment: atom FD deviation %.2e", maxAtom)
	}
	if maxSite > 1e-6 {
		t.Errorf("RIHF capped fragment: site FD deviation %.2e", maxSite)
	}
}

// EvaluateEmbedded with a nil field must reproduce Evaluate, and an
// embedded warm start must reproduce the cold embedded result with
// fewer SCF iterations.
func TestEmbeddedWarmStartContract(t *testing.T) {
	g := molecule.Water()
	pc := waterField()
	hf := &HF{UseRI: true}
	eVac, _, err := hf.Evaluate(g)
	if err != nil {
		t.Fatal(err)
	}
	eNil, _, _, _, err := hf.EvaluateEmbedded(g, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eVac-eNil) > 1e-10 {
		t.Errorf("EvaluateEmbedded(nil) %.12f != Evaluate %.12f", eNil, eVac)
	}
	eCold, _, _, st, err := hf.EvaluateEmbedded(g, pc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.FieldQ) != pc.N() || len(st.FieldGrad) != 3*pc.N() {
		t.Fatalf("state did not snapshot the field: %d charges, %d grad components", len(st.FieldQ), len(st.FieldGrad))
	}
	moved := g.Clone()
	moved.Atoms[1].Pos[0] += 0.01
	cold, _, _, stCold, err := hf.EvaluateEmbedded(moved, pc, nil)
	if err != nil {
		t.Fatal(err)
	}
	warm, _, _, stWarm, err := hf.EvaluateEmbedded(moved, pc, st)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cold-warm) > 1e-8 {
		t.Errorf("warm embedded energy deviates by %.2e", math.Abs(cold-warm))
	}
	if stWarm.SCFIters >= stCold.SCFIters {
		t.Errorf("warm embedded SCF took %d iterations, cold %d", stWarm.SCFIters, stCold.SCFIters)
	}
	if eCold == cold {
		t.Error("moved geometry left the energy bit-identical (suspicious)")
	}
}
