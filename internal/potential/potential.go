// Package potential provides fragment.Evaluator implementations: the
// paper's RI-HF + RI-MP2 potential, a plain RI-HF/conventional-HF
// potential, and a cheap Lennard-Jones surrogate used to stress-test the
// MD and scheduling machinery at scales where the ab initio evaluators
// would be too slow on a development box.
package potential

import (
	"math"

	"github.com/fragmd/fragmd/internal/basis"
	"github.com/fragmd/fragmd/internal/chem"
	"github.com/fragmd/fragmd/internal/integrals"
	"github.com/fragmd/fragmd/internal/molecule"
	"github.com/fragmd/fragmd/internal/mp2"
	"github.com/fragmd/fragmd/internal/scf"
	"github.com/fragmd/fragmd/internal/warmstart"
)

// stateFromSCF snapshots a converged SCF result as a warm-start state
// (the energy/gradient fields are filled in by the caller). The
// embedding field the SCF ran in (if any) is snapshotted too, so the
// cache can detect stale charges.
func stateFromSCF(g *molecule.Geometry, ref *scf.Result, basisName string) *warmstart.State {
	st := &warmstart.State{
		D:     ref.D,
		C:     ref.C,
		Basis: basisName,
		NBf:   ref.Bs.N,
		NOcc:  ref.NOcc,

		SCFIters: ref.Iters,
	}
	if ref.Aux != nil {
		st.NAux = ref.Aux.N
	}
	st.Snapshot(g)
	if pc := ref.Opts().EmbedCharges; pc.N() > 0 {
		st.SnapshotField(pc.Pos, pc.Q)
	}
	return st
}

// applyGuess injects prev's converged density and MO coefficients into
// the SCF options when prev is a valid guess for this geometry and
// basis (same atoms, same basis name, matching basis dimension and
// occupation); otherwise it leaves the cold core-Hamiltonian guess in
// place.
func applyGuess(opts *scf.Options, prev *warmstart.State, g *molecule.Geometry, basisName string, nbf int) {
	if prev == nil || prev.D == nil || prev.Basis != basisName || prev.NBf != nbf ||
		2*prev.NOcc != g.NumElectrons() || !prev.Compatible(g) {
		return
	}
	opts.GuessDensity = prev.D
	opts.GuessC = prev.C
}

// RIMP2 evaluates RI-HF + RI-MP2 energies and fully analytic gradients —
// the paper's production potential.
type RIMP2 struct {
	Basis   string // "sto-3g" or "dzp"
	AuxOpts basis.AuxOptions
	SCS     bool
	SCFOpts scf.Options
	MP2Opts mp2.Options
	// EnergyOnly skips the analytic gradient (returned gradient is nil);
	// used by energy-decomposition analyses such as the Fig. 5 cutoff
	// scan where forces are not needed.
	EnergyOnly bool
}

// Evaluate implements fragment.Evaluator.
func (p *RIMP2) Evaluate(g *molecule.Geometry) (float64, []float64, error) {
	e, grad, _, err := p.EvaluateFrom(g, nil)
	return e, grad, err
}

// EvaluateFrom implements fragment.StatefulEvaluator: prev's converged
// density (when compatible) becomes the SCF initial guess, and the new
// converged state is returned for the next step.
func (p *RIMP2) EvaluateFrom(g *molecule.Geometry, prev *warmstart.State) (float64, []float64, *warmstart.State, error) {
	e, grad, _, st, err := p.EvaluateEmbedded(g, nil, prev)
	return e, grad, st, err
}

// EvaluateEmbedded implements fragment.EmbeddedEvaluator: the RI-HF
// reference is converged in the point-charge field (which then flows
// through the MP2 amplitudes and the relaxed-density gradient), and
// the analytic forces on the field sites ride along. A nil field
// reproduces the vacuum evaluation exactly.
func (p *RIMP2) EvaluateEmbedded(g *molecule.Geometry, field *integrals.PointCharges, prev *warmstart.State) (float64, []float64, []float64, *warmstart.State, error) {
	bs, err := basis.Build(p.basisName(), g)
	if err != nil {
		return 0, nil, nil, nil, err
	}
	opts := p.SCFOpts
	opts.UseRI = true
	opts.AuxOpts = p.AuxOpts
	opts.EmbedCharges = field
	applyGuess(&opts, prev, g, p.basisName(), bs.N)
	ref, err := scf.RHF(g, bs, opts)
	if err != nil {
		return 0, nil, nil, nil, err
	}
	mopts := p.MP2Opts
	mopts.SCS = p.SCS
	r, err := mp2.RIMP2(ref, mopts)
	if err != nil {
		return 0, nil, nil, nil, err
	}
	st := stateFromSCF(g, ref, p.basisName())
	st.Energy = r.ETotal
	if p.EnergyOnly {
		return r.ETotal, nil, nil, st, nil
	}
	grad, fieldGrad, err := r.Gradients()
	if err != nil {
		return 0, nil, nil, nil, err
	}
	// Note: the analytic gradient is for the plain MP2 functional; when
	// SCS energies are requested the gradient still corresponds to plain
	// MP2 (as in the paper, which reports SCS energetics but plain-MP2
	// dynamics).
	st.Grad = grad
	st.FieldGrad = fieldGrad
	return r.ETotal, grad, fieldGrad, st, nil
}

// PartialCharges implements fragment.ChargeSource: Mulliken charges of
// the RI-HF reference (the MP2 correction does not relax the density
// used for embedding charges — phase 1 needs the reference SCF only).
func (p *RIMP2) PartialCharges(g *molecule.Geometry, field *integrals.PointCharges) ([]float64, int, error) {
	hf := &HF{Basis: p.basisName(), UseRI: true, AuxOpts: p.AuxOpts, SCFOpts: p.SCFOpts}
	return hf.PartialCharges(g, field)
}

func (p *RIMP2) basisName() string {
	if p.Basis == "" {
		return "sto-3g"
	}
	return p.Basis
}

// HF evaluates the Hartree-Fock energy and analytic gradient, with or
// without the RI approximation (UseRI=false is the conventional
// four-center baseline of Fig. 3).
type HF struct {
	Basis   string
	UseRI   bool
	AuxOpts basis.AuxOptions
	SCFOpts scf.Options
}

// Evaluate implements fragment.Evaluator.
func (p *HF) Evaluate(g *molecule.Geometry) (float64, []float64, error) {
	e, grad, _, err := p.EvaluateFrom(g, nil)
	return e, grad, err
}

// EvaluateFrom implements fragment.StatefulEvaluator (see RIMP2).
func (p *HF) EvaluateFrom(g *molecule.Geometry, prev *warmstart.State) (float64, []float64, *warmstart.State, error) {
	e, grad, _, st, err := p.EvaluateEmbedded(g, nil, prev)
	return e, grad, st, err
}

// run converges the HF SCF for g in the given field.
func (p *HF) run(g *molecule.Geometry, field *integrals.PointCharges, prev *warmstart.State) (*scf.Result, string, error) {
	name := p.Basis
	if name == "" {
		name = "sto-3g"
	}
	bs, err := basis.Build(name, g)
	if err != nil {
		return nil, name, err
	}
	opts := p.SCFOpts
	opts.UseRI = p.UseRI
	opts.AuxOpts = p.AuxOpts
	opts.EmbedCharges = field
	applyGuess(&opts, prev, g, name, bs.N)
	ref, err := scf.RHF(g, bs, opts)
	return ref, name, err
}

// EvaluateEmbedded implements fragment.EmbeddedEvaluator (see RIMP2).
func (p *HF) EvaluateEmbedded(g *molecule.Geometry, field *integrals.PointCharges, prev *warmstart.State) (float64, []float64, []float64, *warmstart.State, error) {
	ref, name, err := p.run(g, field, prev)
	if err != nil {
		return 0, nil, nil, nil, err
	}
	grad, fieldGrad := ref.Gradients()
	st := stateFromSCF(g, ref, name)
	st.Energy = ref.Energy
	st.Grad = grad
	st.FieldGrad = fieldGrad
	return ref.Energy, grad, fieldGrad, st, nil
}

// PartialCharges implements fragment.ChargeSource: Mulliken charges of
// the converged (optionally embedded) SCF density.
func (p *HF) PartialCharges(g *molecule.Geometry, field *integrals.PointCharges) ([]float64, int, error) {
	ref, _, err := p.run(g, field, nil)
	if err != nil {
		return nil, 0, err
	}
	return ref.MullikenCharges(), ref.Iters, nil
}

// LennardJones is a pairwise 12-6 surrogate potential with element-
// dependent radii. It is *not* chemically accurate; it exists so the MD
// integrator, the MBE assembly and the asynchronous scheduler can be
// exercised on thousands of atoms in tests and demos. The default sigma
// sits *below* covalent bond lengths so that intramolecular pairs live
// on the soft attractive branch rather than the r⁻¹² wall, keeping
// short NVE test trajectories numerically tame.
type LennardJones struct {
	// Epsilon is the well depth in Hartree (default 2e-4).
	Epsilon float64
	// SigmaScale multiplies the covalent-radius-derived sigma
	// (default 0.7).
	SigmaScale float64
	// Delay optionally burns CPU per call to emulate expensive fragments
	// in scheduler tests (seconds).
	Delay float64
	// Charges assigns a fixed partial charge per atomic number (e),
	// giving the surrogate an embedding model: PartialCharges returns
	// them and EvaluateEmbedded adds the classical fragment–field
	// Coulomb energy. Because the charges are geometry-independent, the
	// embedded LJ surrogate is *exactly* conservative — the testbed for
	// EE-MBE force folding and NVE drift at scales the ab initio
	// evaluators cannot reach. A nil map means zero charges everywhere
	// (embedding becomes a no-op).
	Charges map[int]float64
}

// Evaluate implements fragment.Evaluator.
func (p *LennardJones) Evaluate(g *molecule.Geometry) (float64, []float64, error) {
	eps := p.Epsilon
	if eps == 0 {
		eps = 2e-4
	}
	ss := p.SigmaScale
	if ss == 0 {
		ss = 0.7
	}
	var energy float64
	grad := make([]float64, 3*g.N())
	for i := 0; i < g.N(); i++ {
		ri := chem.CovalentRadius(g.Atoms[i].Z)
		for j := i + 1; j < g.N(); j++ {
			rj := chem.CovalentRadius(g.Atoms[j].Z)
			sigma := ss * (ri + rj)
			// Minimum-image displacement on periodic geometries, so
			// energy and forces stay consistent across the boundary
			// (identical to the raw displacement when Cell is nil).
			d := g.Displacement(i, j)
			r := math.Sqrt(d[0]*d[0] + d[1]*d[1] + d[2]*d[2])
			sr6 := math.Pow(sigma/r, 6)
			sr12 := sr6 * sr6
			energy += 4 * eps * (sr12 - sr6)
			dEdr := 4 * eps * (-12*sr12 + 6*sr6) / r
			for k := 0; k < 3; k++ {
				u := d[k] / r
				grad[3*i+k] += dEdr * u
				grad[3*j+k] -= dEdr * u
			}
		}
	}
	if p.Delay > 0 {
		burn(p.Delay)
	}
	return energy, grad, nil
}

// EvaluateFrom implements fragment.StatefulEvaluator as a trivial
// pass-through: LJ has no electronic state to warm, so prev is ignored
// and the returned state carries only energy/gradient/geometry (enough
// for skip reuse in the scheduler).
func (p *LennardJones) EvaluateFrom(g *molecule.Geometry, _ *warmstart.State) (float64, []float64, *warmstart.State, error) {
	e, grad, err := p.Evaluate(g)
	if err != nil {
		return 0, nil, nil, err
	}
	return e, grad, warmstart.NewState(g, e, grad), nil
}

// PartialCharges implements fragment.ChargeSource with the fixed
// per-element charges (zeros without a Charges map); the field is
// ignored, so SCC iteration converges after the vacuum round.
func (p *LennardJones) PartialCharges(g *molecule.Geometry, _ *integrals.PointCharges) ([]float64, int, error) {
	q := make([]float64, g.N())
	for i, a := range g.Atoms {
		q[i] = p.Charges[a.Z]
	}
	return q, 0, nil
}

// EvaluateEmbedded implements fragment.EmbeddedEvaluator: the LJ
// energy plus the classical Coulomb interaction of the fragment's
// fixed partial charges with the field, with analytic forces on both
// atoms and field sites.
func (p *LennardJones) EvaluateEmbedded(g *molecule.Geometry, field *integrals.PointCharges, _ *warmstart.State) (float64, []float64, []float64, *warmstart.State, error) {
	e, grad, err := p.Evaluate(g)
	if err != nil {
		return 0, nil, nil, nil, err
	}
	var fieldGrad []float64
	if n := field.N(); n > 0 {
		fieldGrad = make([]float64, 3*n)
		for i, at := range g.Atoms {
			qa := p.Charges[at.Z]
			if qa == 0 {
				continue
			}
			for c := 0; c < n; c++ {
				ec, dA := integrals.CoulombPairTerm(at.Pos,
					[3]float64{field.Pos[3*c], field.Pos[3*c+1], field.Pos[3*c+2]}, qa, field.Q[c])
				e += ec
				for k := 0; k < 3; k++ {
					grad[3*i+k] += dA[k]
					fieldGrad[3*c+k] -= dA[k]
				}
			}
		}
	}
	st := warmstart.NewState(g, e, grad)
	if field.N() > 0 {
		st.SnapshotField(field.Pos, field.Q)
		st.FieldGrad = fieldGrad
	}
	return e, grad, fieldGrad, st, nil
}

// burn spins for roughly d seconds of CPU work.
func burn(d float64) {
	x := 1.0
	n := int(d * 5e7)
	for i := 0; i < n; i++ {
		x = math.Sqrt(x + 1)
	}
	_ = x
}
