// Package potential provides fragment.Evaluator implementations: the
// paper's RI-HF + RI-MP2 potential, a plain RI-HF/conventional-HF
// potential, and a cheap Lennard-Jones surrogate used to stress-test the
// MD and scheduling machinery at scales where the ab initio evaluators
// would be too slow on a development box.
package potential

import (
	"math"

	"github.com/fragmd/fragmd/internal/basis"
	"github.com/fragmd/fragmd/internal/chem"
	"github.com/fragmd/fragmd/internal/molecule"
	"github.com/fragmd/fragmd/internal/mp2"
	"github.com/fragmd/fragmd/internal/scf"
)

// RIMP2 evaluates RI-HF + RI-MP2 energies and fully analytic gradients —
// the paper's production potential.
type RIMP2 struct {
	Basis   string // "sto-3g" or "dzp"
	AuxOpts basis.AuxOptions
	SCS     bool
	SCFOpts scf.Options
	MP2Opts mp2.Options
	// EnergyOnly skips the analytic gradient (returned gradient is nil);
	// used by energy-decomposition analyses such as the Fig. 5 cutoff
	// scan where forces are not needed.
	EnergyOnly bool
}

// Evaluate implements fragment.Evaluator.
func (p *RIMP2) Evaluate(g *molecule.Geometry) (float64, []float64, error) {
	bs, err := basis.Build(p.basisName(), g)
	if err != nil {
		return 0, nil, err
	}
	opts := p.SCFOpts
	opts.UseRI = true
	opts.AuxOpts = p.AuxOpts
	ref, err := scf.RHF(g, bs, opts)
	if err != nil {
		return 0, nil, err
	}
	mopts := p.MP2Opts
	mopts.SCS = p.SCS
	r, err := mp2.RIMP2(ref, mopts)
	if err != nil {
		return 0, nil, err
	}
	if p.EnergyOnly {
		return r.ETotal, nil, nil
	}
	grad, err := r.Gradient()
	if err != nil {
		return 0, nil, err
	}
	// Note: the analytic gradient is for the plain MP2 functional; when
	// SCS energies are requested the gradient still corresponds to plain
	// MP2 (as in the paper, which reports SCS energetics but plain-MP2
	// dynamics).
	return r.ETotal, grad, nil
}

func (p *RIMP2) basisName() string {
	if p.Basis == "" {
		return "sto-3g"
	}
	return p.Basis
}

// HF evaluates the Hartree-Fock energy and analytic gradient, with or
// without the RI approximation (UseRI=false is the conventional
// four-center baseline of Fig. 3).
type HF struct {
	Basis   string
	UseRI   bool
	AuxOpts basis.AuxOptions
	SCFOpts scf.Options
}

// Evaluate implements fragment.Evaluator.
func (p *HF) Evaluate(g *molecule.Geometry) (float64, []float64, error) {
	name := p.Basis
	if name == "" {
		name = "sto-3g"
	}
	bs, err := basis.Build(name, g)
	if err != nil {
		return 0, nil, err
	}
	opts := p.SCFOpts
	opts.UseRI = p.UseRI
	opts.AuxOpts = p.AuxOpts
	ref, err := scf.RHF(g, bs, opts)
	if err != nil {
		return 0, nil, err
	}
	return ref.Energy, ref.Gradient(), nil
}

// LennardJones is a pairwise 12-6 surrogate potential with element-
// dependent radii. It is *not* chemically accurate; it exists so the MD
// integrator, the MBE assembly and the asynchronous scheduler can be
// exercised on thousands of atoms in tests and demos. The default sigma
// sits *below* covalent bond lengths so that intramolecular pairs live
// on the soft attractive branch rather than the r⁻¹² wall, keeping
// short NVE test trajectories numerically tame.
type LennardJones struct {
	// Epsilon is the well depth in Hartree (default 2e-4).
	Epsilon float64
	// SigmaScale multiplies the covalent-radius-derived sigma
	// (default 0.7).
	SigmaScale float64
	// Delay optionally burns CPU per call to emulate expensive fragments
	// in scheduler tests (seconds).
	Delay float64
}

// Evaluate implements fragment.Evaluator.
func (p *LennardJones) Evaluate(g *molecule.Geometry) (float64, []float64, error) {
	eps := p.Epsilon
	if eps == 0 {
		eps = 2e-4
	}
	ss := p.SigmaScale
	if ss == 0 {
		ss = 0.7
	}
	var energy float64
	grad := make([]float64, 3*g.N())
	for i := 0; i < g.N(); i++ {
		ri := chem.CovalentRadius(g.Atoms[i].Z)
		for j := i + 1; j < g.N(); j++ {
			rj := chem.CovalentRadius(g.Atoms[j].Z)
			sigma := ss * (ri + rj)
			r := g.Dist(i, j)
			sr6 := math.Pow(sigma/r, 6)
			sr12 := sr6 * sr6
			energy += 4 * eps * (sr12 - sr6)
			dEdr := 4 * eps * (-12*sr12 + 6*sr6) / r
			for k := 0; k < 3; k++ {
				u := (g.Atoms[i].Pos[k] - g.Atoms[j].Pos[k]) / r
				grad[3*i+k] += dEdr * u
				grad[3*j+k] -= dEdr * u
			}
		}
	}
	if p.Delay > 0 {
		burn(p.Delay)
	}
	return energy, grad, nil
}

// burn spins for roughly d seconds of CPU work.
func burn(d float64) {
	x := 1.0
	n := int(d * 5e7)
	for i := 0; i < n; i++ {
		x = math.Sqrt(x + 1)
	}
	_ = x
}
