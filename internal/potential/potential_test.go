package potential

import (
	"math"
	"testing"

	"github.com/fragmd/fragmd/internal/molecule"
)

func TestLennardJonesGradientFD(t *testing.T) {
	g := molecule.WaterCluster(2)
	lj := &LennardJones{}
	_, grad, err := lj.Evaluate(g)
	if err != nil {
		t.Fatal(err)
	}
	h := 1e-6
	for _, idx := range []int{0, 4, 3*g.N() - 1} {
		atom, d := idx/3, idx%3
		gp := g.Clone()
		gp.Atoms[atom].Pos[d] += h
		gm := g.Clone()
		gm.Atoms[atom].Pos[d] -= h
		ep, _, _ := lj.Evaluate(gp)
		em, _, _ := lj.Evaluate(gm)
		fd := (ep - em) / (2 * h)
		if math.Abs(grad[idx]-fd) > 1e-9 {
			t.Errorf("LJ grad[%d]: %.12f vs FD %.12f", idx, grad[idx], fd)
		}
	}
}

func TestLennardJonesInvariance(t *testing.T) {
	g := molecule.WaterCluster(3)
	lj := &LennardJones{}
	e1, _, _ := lj.Evaluate(g)
	g2 := g.Clone()
	g2.Translate(3, -1, 2)
	g2.RotateZ(1.1)
	e2, _, _ := lj.Evaluate(g2)
	if math.Abs(e1-e2) > 1e-12 {
		t.Errorf("LJ energy not invariant: %g vs %g", e1, e2)
	}
}

// The HF and RIMP2 evaluators must agree with each other in the
// appropriate limits: RI-MP2 total < RI-HF total (correlation negative).
func TestEvaluatorHierarchy(t *testing.T) {
	g := molecule.Water()
	hf := &HF{UseRI: true}
	eHF, gradHF, err := hf.Evaluate(g)
	if err != nil {
		t.Fatal(err)
	}
	mp := &RIMP2{}
	eMP2, gradMP2, err := mp.Evaluate(g)
	if err != nil {
		t.Fatal(err)
	}
	if eMP2 >= eHF {
		t.Errorf("MP2 total %.6f not below HF %.6f", eMP2, eHF)
	}
	if len(gradHF) != 3*g.N() || len(gradMP2) != 3*g.N() {
		t.Fatal("gradient lengths")
	}
}

// SCS changes the energy but not the (plain-MP2) gradient.
func TestSCSEnergyOnly(t *testing.T) {
	g := molecule.Water()
	plain := &RIMP2{}
	scs := &RIMP2{SCS: true}
	e1, g1, err := plain.Evaluate(g)
	if err != nil {
		t.Fatal(err)
	}
	e2, g2, err := scs.Evaluate(g)
	if err != nil {
		t.Fatal(err)
	}
	if e1 == e2 {
		t.Error("SCS energy should differ from plain MP2")
	}
	for i := range g1 {
		if math.Abs(g1[i]-g2[i]) > 1e-12 {
			t.Fatal("gradient should be the plain-MP2 gradient in both cases")
		}
	}
}
