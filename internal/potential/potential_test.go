package potential

import (
	"math"
	"testing"

	"github.com/fragmd/fragmd/internal/molecule"
	"github.com/fragmd/fragmd/internal/warmstart"
)

func TestLennardJonesGradientFD(t *testing.T) {
	g := molecule.WaterCluster(2)
	lj := &LennardJones{}
	_, grad, err := lj.Evaluate(g)
	if err != nil {
		t.Fatal(err)
	}
	h := 1e-6
	for _, idx := range []int{0, 4, 3*g.N() - 1} {
		atom, d := idx/3, idx%3
		gp := g.Clone()
		gp.Atoms[atom].Pos[d] += h
		gm := g.Clone()
		gm.Atoms[atom].Pos[d] -= h
		ep, _, _ := lj.Evaluate(gp)
		em, _, _ := lj.Evaluate(gm)
		fd := (ep - em) / (2 * h)
		if math.Abs(grad[idx]-fd) > 1e-9 {
			t.Errorf("LJ grad[%d]: %.12f vs FD %.12f", idx, grad[idx], fd)
		}
	}
}

func TestLennardJonesInvariance(t *testing.T) {
	g := molecule.WaterCluster(3)
	lj := &LennardJones{}
	e1, _, _ := lj.Evaluate(g)
	g2 := g.Clone()
	g2.Translate(3, -1, 2)
	g2.RotateZ(1.1)
	e2, _, _ := lj.Evaluate(g2)
	if math.Abs(e1-e2) > 1e-12 {
		t.Errorf("LJ energy not invariant: %g vs %g", e1, e2)
	}
}

// The HF and RIMP2 evaluators must agree with each other in the
// appropriate limits: RI-MP2 total < RI-HF total (correlation negative).
func TestEvaluatorHierarchy(t *testing.T) {
	g := molecule.Water()
	hf := &HF{UseRI: true}
	eHF, gradHF, err := hf.Evaluate(g)
	if err != nil {
		t.Fatal(err)
	}
	mp := &RIMP2{}
	eMP2, gradMP2, err := mp.Evaluate(g)
	if err != nil {
		t.Fatal(err)
	}
	if eMP2 >= eHF {
		t.Errorf("MP2 total %.6f not below HF %.6f", eMP2, eHF)
	}
	if len(gradHF) != 3*g.N() || len(gradMP2) != 3*g.N() {
		t.Fatal("gradient lengths")
	}
}

// EvaluateFrom with a nil previous state must equal Evaluate exactly,
// and with the previous geometry's converged state it must reproduce
// the cold result while converging in strictly fewer SCF iterations —
// the warm-start contract of fragment.StatefulEvaluator.
func TestStatefulEvaluatorsWarmStart(t *testing.T) {
	g := molecule.Water()
	moved := g.Clone()
	moved.Atoms[1].Pos[0] += 0.015
	for _, tc := range []struct {
		name string
		eval interface {
			Evaluate(*molecule.Geometry) (float64, []float64, error)
			EvaluateFrom(*molecule.Geometry, *warmstart.State) (float64, []float64, *warmstart.State, error)
		}
	}{
		{"RIHF", &HF{UseRI: true}},
		{"RIMP2", &RIMP2{}},
	} {
		// Separate evaluations are not bitwise identical (the runtime
		// GEMM auto-tuner may pick different variants run to run, which
		// reassociates floating-point sums), so compare at noise level.
		eCold, gCold, err := tc.eval.Evaluate(g)
		if err != nil {
			t.Fatal(err)
		}
		eFrom, gFrom, st, err := tc.eval.EvaluateFrom(g, nil)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(eCold-eFrom) > 1e-10 {
			t.Errorf("%s: EvaluateFrom(nil) energy %.12f != Evaluate %.12f", tc.name, eFrom, eCold)
		}
		for i := range gCold {
			if math.Abs(gCold[i]-gFrom[i]) > 1e-8 {
				t.Fatalf("%s: EvaluateFrom(nil) gradient differs at %d: %.12f vs %.12f",
					tc.name, i, gFrom[i], gCold[i])
			}
		}
		if st == nil || st.D == nil || st.SCFIters == 0 {
			t.Fatalf("%s: state missing density or iteration count", tc.name)
		}
		if st.Energy != eFrom {
			t.Errorf("%s: state energy %.12f != returned %.12f", tc.name, st.Energy, eFrom)
		}

		eColdMoved, _, stCold, err := tc.eval.EvaluateFrom(moved, nil)
		if err != nil {
			t.Fatal(err)
		}
		eWarm, _, stWarm, err := tc.eval.EvaluateFrom(moved, st)
		if err != nil {
			t.Fatal(err)
		}
		if d := math.Abs(eWarm - eColdMoved); d > 1e-8 {
			t.Errorf("%s: warm energy deviates by %.2e Ha", tc.name, d)
		}
		if stWarm.SCFIters >= stCold.SCFIters {
			t.Errorf("%s: warm iters %d not below cold %d", tc.name, stWarm.SCFIters, stCold.SCFIters)
		}
	}
}

// An incompatible previous state (different molecule) must be ignored:
// same result as a cold start, no error.
func TestWarmStartIncompatiblePrev(t *testing.T) {
	hf := &HF{UseRI: true}
	_, _, stWater, err := hf.EvaluateFrom(molecule.Water(), nil)
	if err != nil {
		t.Fatal(err)
	}
	dimer := molecule.WaterDimer(3.0)
	eCold, _, stC, err := hf.EvaluateFrom(dimer, nil)
	if err != nil {
		t.Fatal(err)
	}
	eWarm, _, stW, err := hf.EvaluateFrom(dimer, stWater)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eCold-eWarm) > 1e-10 || stC.SCFIters != stW.SCFIters {
		t.Error("incompatible previous state was not ignored")
	}
}

// The LJ surrogate passes through: EvaluateFrom ignores prev and the
// returned state carries energy/gradient/geometry for skip reuse.
func TestLennardJonesEvaluateFrom(t *testing.T) {
	g := molecule.WaterCluster(2)
	lj := &LennardJones{}
	e1, g1, err := lj.Evaluate(g)
	if err != nil {
		t.Fatal(err)
	}
	e2, g2, st, err := lj.EvaluateFrom(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if e1 != e2 {
		t.Errorf("pass-through energy %.12f != %.12f", e2, e1)
	}
	for i := range g1 {
		if g1[i] != g2[i] {
			t.Fatal("pass-through gradient differs")
		}
	}
	if st == nil || st.Energy != e1 || st.Grad == nil || st.SCFIters != 0 || st.D != nil {
		t.Errorf("LJ state = %+v, want minimal energy/grad snapshot", st)
	}
	if !st.Compatible(g) || st.MaxDisplacement(g) != 0 {
		t.Error("LJ state snapshot does not match its geometry")
	}
}

// SCS changes the energy but not the (plain-MP2) gradient.
func TestSCSEnergyOnly(t *testing.T) {
	g := molecule.Water()
	plain := &RIMP2{}
	scs := &RIMP2{SCS: true}
	e1, g1, err := plain.Evaluate(g)
	if err != nil {
		t.Fatal(err)
	}
	e2, g2, err := scs.Evaluate(g)
	if err != nil {
		t.Fatal(err)
	}
	if e1 == e2 {
		t.Error("SCS energy should differ from plain MP2")
	}
	for i := range g1 {
		if math.Abs(g1[i]-g2[i]) > 1e-12 {
			t.Fatal("gradient should be the plain-MP2 gradient in both cases")
		}
	}
}
