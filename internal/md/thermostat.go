package md

import (
	"math"

	"github.com/fragmd/fragmd/internal/chem"
)

// Berendsen is a weak-coupling thermostat: velocities are rescaled each
// step by λ = √(1 + dt/τ·(T₀/T − 1)). The paper's production runs are
// NVE (§VII-A); the thermostat is provided for equilibration before
// production dynamics, the usual workflow for the crystal and fibril
// systems.
type Berendsen struct {
	// TargetK is the target temperature in Kelvin.
	TargetK float64
	// TauFs is the coupling time constant in femtoseconds (default 50).
	TauFs float64
}

// Scale returns the velocity scaling factor for the current state and
// time step (atomic units).
func (b *Berendsen) Scale(s *State, dt float64) float64 {
	tau := b.TauFs
	if tau == 0 {
		tau = 50
	}
	tK := s.Temperature()
	if tK <= 0 {
		return 1
	}
	dtFs := dt * chem.FsPerAtomicTime
	f := 1 + dtFs/tau*(b.TargetK/tK-1)
	if f < 0.64 {
		f = 0.64 // clamp rescaling to ±20 % in velocity
	}
	if f > 1.44 {
		f = 1.44
	}
	return math.Sqrt(f)
}

// Apply rescales the state's velocities in place.
func (b *Berendsen) Apply(s *State, dt float64) {
	lam := b.Scale(s, dt)
	for i := range s.Vel {
		for k := 0; k < 3; k++ {
			s.Vel[i][k] *= lam
		}
	}
}

// RunNVT integrates n velocity-Verlet steps with Berendsen coupling
// applied after each step — an equilibration helper; switch to
// VelocityVerlet.Run (NVE) for production trajectories.
func (vv *VelocityVerlet) RunNVT(s *State, n int, thermo *Berendsen, obs Observer) error {
	for step := 0; step < n; step++ {
		if err := vv.Run(s, 2, func(si StepInfo) {
			if si.Step == 0 && obs != nil {
				si.Step = step
				obs(si)
			}
		}); err != nil {
			return err
		}
		thermo.Apply(s, vv.Dt)
	}
	return nil
}
