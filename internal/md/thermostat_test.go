package md

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"github.com/fragmd/fragmd/internal/chem"
	"github.com/fragmd/fragmd/internal/molecule"
)

// The Berendsen thermostat must pull the kinetic temperature toward the
// target from both directions.
func TestBerendsenPullsTowardTarget(t *testing.T) {
	for _, startK := range []float64{50.0, 600.0} {
		g := molecule.WaterCluster(4)
		s := NewState(g)
		s.SampleVelocities(startK, rand.New(rand.NewSource(4)))
		thermo := &Berendsen{TargetK: 300, TauFs: 10}
		vv := &VelocityVerlet{Dt: 0.5 * chem.AtomicTimePerFs, Provider: ljProvider()}
		before := s.Temperature()
		if err := vv.RunNVT(s, 60, thermo, nil); err != nil {
			t.Fatal(err)
		}
		after := s.Temperature()
		if distBefore, distAfter := absf(before-300), absf(after-300); distAfter >= distBefore {
			t.Errorf("start %g K: temperature did not approach target (%.0f → %.0f K)", startK, before, after)
		}
	}
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestBerendsenScaleClamps(t *testing.T) {
	g := molecule.Water()
	s := NewState(g)
	s.SampleVelocities(1, rand.New(rand.NewSource(5))) // far below target
	b := &Berendsen{TargetK: 10000, TauFs: 0.001}      // absurd coupling
	lam := b.Scale(s, 1.0*chem.AtomicTimePerFs)
	if lam > 1.2000001 {
		t.Errorf("scale %.3f exceeds clamp", lam)
	}
}

func TestTrajectoryWriter(t *testing.T) {
	g := molecule.Water()
	s := NewState(g)
	var buf bytes.Buffer
	tw := &TrajectoryWriter{W: &buf, Stride: 2}
	vv := &VelocityVerlet{Dt: 0.5 * chem.AtomicTimePerFs, Provider: ljProvider()}
	if err := vv.Run(s, 5, tw.Observer(s)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	frames := strings.Count(out, "step=")
	if frames != 3 { // steps 0, 2, 4 with stride 2
		t.Errorf("frames = %d, want 3", frames)
	}
	// Each frame must be parseable XYZ.
	first := strings.SplitN(out, "step=", 2)[0]
	if !strings.HasPrefix(first, "3\n") {
		t.Errorf("frame header wrong: %q", first)
	}
	if _, err := molecule.ParseXYZ(strings.NewReader(out)); err != nil {
		t.Errorf("first frame not parseable: %v", err)
	}
}
