package md_test

import (
	"math"
	"math/rand"
	"testing"

	"github.com/fragmd/fragmd/internal/racecheck"

	"github.com/fragmd/fragmd/internal/chem"
	"github.com/fragmd/fragmd/internal/integrals"
	"github.com/fragmd/fragmd/internal/md"
	"github.com/fragmd/fragmd/internal/molecule"
	"github.com/fragmd/fragmd/internal/potential"
)

// nveMaxDrift integrates an NVE trajectory with the reference
// velocity-Verlet integrator and returns the max |E(t) − E(0)|.
func nveMaxDrift(t *testing.T, prov md.ForceProvider, g *molecule.Geometry, dtFs float64, steps int, tempK float64, seed int64) float64 {
	t.Helper()
	state := md.NewState(g.Clone())
	state.SampleVelocities(tempK, rand.New(rand.NewSource(seed)))
	obs, get := md.NewConservationTracker()
	vv := &md.VelocityVerlet{Dt: dtFs * chem.AtomicTimePerFs, Provider: prov}
	if err := vv.Run(state, steps, obs); err != nil {
		t.Fatal(err)
	}
	st := get()
	if st.N != steps {
		t.Fatalf("tracker saw %d steps, want %d", st.N, steps)
	}
	return st.MaxDrift
}

// Full-length LJ NVE: the drift envelope must be bounded and shrink
// ~4× when the time step halves over the same simulated time — the
// O(dt²) signature of a symplectic integrator fed exact gradients. A
// force/energy inconsistency would leave a dt-independent linear
// drift instead.
func TestNVEConservationLJ(t *testing.T) {
	steps := 300
	if testing.Short() {
		steps = 120
	}
	g := molecule.WaterCluster(8)
	lj := &potential.LennardJones{Charges: map[int]float64{1: 0.2, 8: -0.4}}
	prov := md.ForceFunc(lj.Evaluate)
	d1 := nveMaxDrift(t, prov, g, 0.5, steps, 100, 7)
	d2 := nveMaxDrift(t, prov, g, 0.25, 2*steps, 100, 7)
	if d1 > 5e-6 {
		t.Fatalf("LJ NVE drift %.3e Ha over %d steps exceeds 5e-6", d1, steps)
	}
	if d2 <= 0 || d1/d2 < 3 {
		t.Fatalf("drift not O(dt²): %.3e at dt vs %.3e at dt/2 (ratio %.2f)", d1, d2, d1/d2)
	}
	t.Logf("LJ NVE: %d steps, drift %.3e (dt=0.5fs) vs %.3e (dt=0.25fs), ratio %.2f", steps, d1, d2, d1/d2)
}

// Periodic LJ NVE: the same O(dt²) signature on a minimum-image water
// box. The whole-system LJ force uses Geometry.Displacement, so every
// pair interacts through its nearest periodic image; if the min-image
// gradient were inconsistent with the min-image energy (e.g. the force
// direction not folded with the distance), the drift would be linear
// and dt-independent instead of shrinking ~4× at dt/2. The 3×3×3 box
// keeps every pair component ~1.5 Å clear of the ±L/2 image-branch
// boundary, so the trajectory never crosses a min-image kink.
func TestNVEConservationPeriodicLJ(t *testing.T) {
	steps := 300
	if testing.Short() {
		steps = 120
	}
	g := molecule.WaterBox(3, 3, 3, 1)
	lj := &potential.LennardJones{Charges: map[int]float64{1: 0.2, 8: -0.4}}
	prov := md.ForceFunc(lj.Evaluate)
	d1 := nveMaxDrift(t, prov, g, 0.5, steps, 100, 7)
	d2 := nveMaxDrift(t, prov, g, 0.25, 2*steps, 100, 7)
	if d1 > 5e-6 {
		t.Fatalf("periodic LJ NVE drift %.3e Ha over %d steps exceeds 5e-6", d1, steps)
	}
	if d2 <= 0 || d1/d2 < 3 {
		t.Fatalf("drift not O(dt²): %.3e at dt vs %.3e at dt/2 (ratio %.2f)", d1, d2, d1/d2)
	}
	t.Logf("periodic LJ NVE: %d steps, drift %.3e (dt=0.5fs) vs %.3e (dt=0.25fs), ratio %.2f", steps, d1, d2, d1/d2)
}

// HF smoke: a handful of ab initio NVE steps on one water molecule.
// The stiff O–H modes put the velocity-Verlet oscillation near 1e-5 Ha
// at this dt, so the sharp assertion is the O(dt²) signature: halving
// the step over the same simulated time must shrink the envelope ~4×,
// which only happens when the analytic gradient is the exact
// derivative of the energy (a broken term leaves dt-independent
// drift).
func TestNVEConservationHFSmoke(t *testing.T) {
	if racecheck.Enabled {
		t.Skip("pure-numerical suite; adds no race coverage and is slow under -race")
	}
	steps := 8
	if testing.Short() {
		steps = 5
	}
	hf := &potential.HF{UseRI: true}
	prov := md.ForceFunc(hf.Evaluate)
	d1 := nveMaxDrift(t, prov, molecule.Water(), 0.25, steps, 150, 3)
	d2 := nveMaxDrift(t, prov, molecule.Water(), 0.125, 2*steps, 150, 3)
	if d1 > 5e-5 {
		t.Fatalf("HF NVE drift %.3e Ha over %d steps exceeds 5e-5", d1, steps)
	}
	if d2 <= 0 || d1/d2 < 2.5 {
		t.Fatalf("drift not O(dt²): %.3e at dt vs %.3e at dt/2 (ratio %.2f)", d1, d2, d1/d2)
	}
	t.Logf("HF NVE smoke: %d steps, drift %.3e vs %.3e at dt/2, ratio %.2f", steps, d1, d2, d1/d2)
}

// The same holds for an *embedded* whole-system force: water in a
// static external charge field (field fixed in space, charges frozen)
// is a conservative system, and the embedded HF gradient must conserve
// its energy.
func TestNVEConservationHFEmbeddedSmoke(t *testing.T) {
	if racecheck.Enabled {
		t.Skip("pure-numerical suite; adds no race coverage and is slow under -race")
	}
	steps := 6
	if testing.Short() {
		steps = 4
	}
	hf := &potential.HF{UseRI: true}
	field := &integrals.PointCharges{
		Pos: []float64{5.0, 0.8, -0.6, -4.4, 2.2, 1.3},
		Q:   []float64{0.3, -0.25},
	}
	prov := md.ForceFunc(func(g *molecule.Geometry) (float64, []float64, error) {
		e, grad, _, _, err := hf.EvaluateEmbedded(g, field, nil)
		return e, grad, err
	})
	d1 := nveMaxDrift(t, prov, molecule.Water(), 0.25, steps, 150, 3)
	d2 := nveMaxDrift(t, prov, molecule.Water(), 0.125, 2*steps, 150, 3)
	if d1 > 5e-5 {
		t.Fatalf("embedded HF NVE drift %.3e Ha over %d steps exceeds 5e-5", d1, steps)
	}
	if d2 <= 0 || d1/d2 < 2.5 {
		t.Fatalf("drift not O(dt²): %.3e at dt vs %.3e at dt/2 (ratio %.2f)", d1, d2, d1/d2)
	}
	t.Logf("embedded HF NVE smoke: %d steps, drift %.3e vs %.3e at dt/2, ratio %.2f", steps, d1, d2, d1/d2)
}

// Sanity on the tracker itself.
func TestConservationTrackerStats(t *testing.T) {
	obs, get := md.NewConservationTracker()
	for _, e := range []float64{1.0, 1.5, 0.5} {
		obs(md.StepInfo{Etot: e})
	}
	st := get()
	if st.E0 != 1.0 || math.Abs(st.MaxDrift-0.5) > 1e-15 || st.N != 3 {
		t.Fatalf("tracker stats wrong: %+v", st)
	}
}
