// Package md implements velocity-Verlet molecular dynamics in the
// microcanonical (NVE) ensemble — the integrator behind the paper's
// AIMD trajectories (§VII-A) — plus Maxwell–Boltzmann velocity
// initialisation and energy-conservation diagnostics.
//
// All quantities are in Hartree atomic units; chem provides the fs ↔
// atomic-time conversions.
package md

import (
	"errors"
	"math"
	"math/rand"

	"github.com/fragmd/fragmd/internal/chem"
	"github.com/fragmd/fragmd/internal/molecule"
)

// ForceProvider supplies the potential energy and nuclear gradient of a
// full system geometry.
type ForceProvider interface {
	Forces(g *molecule.Geometry) (energy float64, grad []float64, err error)
}

// ForceFunc adapts a function to the ForceProvider interface.
type ForceFunc func(g *molecule.Geometry) (float64, []float64, error)

// Forces implements ForceProvider.
func (f ForceFunc) Forces(g *molecule.Geometry) (float64, []float64, error) { return f(g) }

// State is a dynamical state: positions (inside Geom), velocities and
// masses, all in atomic units.
type State struct {
	Geom   *molecule.Geometry
	Vel    [][3]float64
	Masses []float64 // mₑ
}

// NewState builds a state with zero velocities and standard atomic
// masses.
func NewState(g *molecule.Geometry) *State {
	s := &State{Geom: g, Vel: make([][3]float64, g.N()), Masses: make([]float64, g.N())}
	for i, a := range g.Atoms {
		s.Masses[i] = chem.MassAMU(a.Z) * chem.AmuToElectronMass
	}
	return s
}

// Clone returns a deep copy of the state.
func (s *State) Clone() *State {
	c := &State{Geom: s.Geom.Clone()}
	c.Vel = append([][3]float64(nil), s.Vel...)
	c.Masses = append([]float64(nil), s.Masses...)
	return c
}

// KineticEnergy returns ½ Σ m v² in Hartree.
func (s *State) KineticEnergy() float64 {
	var ke float64
	for i, v := range s.Vel {
		ke += 0.5 * s.Masses[i] * (v[0]*v[0] + v[1]*v[1] + v[2]*v[2])
	}
	return ke
}

// Temperature returns the instantaneous kinetic temperature in Kelvin
// (3N degrees of freedom).
func (s *State) Temperature() float64 {
	n := len(s.Vel)
	if n == 0 {
		return 0
	}
	return 2 * s.KineticEnergy() / (3 * float64(n)) * chem.KelvinPerHartree
}

// SampleVelocities draws Maxwell–Boltzmann velocities at temperature T
// (Kelvin) and removes the centre-of-mass drift.
func (s *State) SampleVelocities(temperature float64, rng *rand.Rand) {
	kt := temperature / chem.KelvinPerHartree
	for i := range s.Vel {
		sigma := math.Sqrt(kt / s.Masses[i])
		for k := 0; k < 3; k++ {
			s.Vel[i][k] = sigma * rng.NormFloat64()
		}
	}
	s.RemoveDrift()
}

// RemoveDrift zeroes the total linear momentum.
func (s *State) RemoveDrift() {
	var p [3]float64
	var mTot float64
	for i, v := range s.Vel {
		for k := 0; k < 3; k++ {
			p[k] += s.Masses[i] * v[k]
		}
		mTot += s.Masses[i]
	}
	for i := range s.Vel {
		for k := 0; k < 3; k++ {
			s.Vel[i][k] -= p[k] / mTot
		}
	}
}

// StepInfo reports one completed MD step.
type StepInfo struct {
	Step int
	Epot float64
	Ekin float64
	Etot float64
	Temp float64
}

// Observer receives per-step reports.
type Observer func(StepInfo)

// VelocityVerlet integrates NVE dynamics with the given time step
// (atomic units). It is the synchronous whole-system reference
// integrator; package sched implements the per-monomer asynchronous
// variant with identical numerics.
type VelocityVerlet struct {
	Dt       float64
	Provider ForceProvider
}

// Run performs n force evaluations (steps 0..n−1), mutating the state in
// place. The observer, if non-nil, fires once per step with full-step
// velocities.
func (vv *VelocityVerlet) Run(s *State, n int, obs Observer) error {
	if vv.Dt <= 0 {
		return errors.New("md: time step must be positive")
	}
	dt := vv.Dt
	epot, grad, err := vv.Provider.Forces(s.Geom)
	if err != nil {
		return err
	}
	for step := 0; step < n; step++ {
		if obs != nil {
			ek := s.KineticEnergy()
			obs(StepInfo{Step: step, Epot: epot, Ekin: ek, Etot: epot + ek, Temp: s.Temperature()})
		}
		if step == n-1 {
			break
		}
		// Kick-drift: v(t+½) = v(t) − g/2m·dt ; x(t+1) = x + v(t+½)·dt.
		for i := range s.Vel {
			for k := 0; k < 3; k++ {
				s.Vel[i][k] -= grad[3*i+k] / (2 * s.Masses[i]) * dt
				s.Geom.Atoms[i].Pos[k] += s.Vel[i][k] * dt
			}
		}
		epot, grad, err = vv.Provider.Forces(s.Geom)
		if err != nil {
			return err
		}
		// Second kick: v(t+1) = v(t+½) − g(t+1)/2m·dt.
		for i := range s.Vel {
			for k := 0; k < 3; k++ {
				s.Vel[i][k] -= grad[3*i+k] / (2 * s.Masses[i]) * dt
			}
		}
	}
	return nil
}

// ConservationStats summarises total-energy conservation over a
// trajectory (the paper's Fig. 6 diagnostic).
type ConservationStats struct {
	E0       float64
	MaxDrift float64 // max |E(t) − E0|
	RMS      float64 // RMS fluctuation about the mean
	N        int
}

// NewConservationTracker returns an Observer computing drift statistics
// plus an accessor for the result.
func NewConservationTracker() (Observer, func() ConservationStats) {
	var energies []float64
	obs := func(si StepInfo) { energies = append(energies, si.Etot) }
	get := func() ConservationStats {
		st := ConservationStats{N: len(energies)}
		if len(energies) == 0 {
			return st
		}
		st.E0 = energies[0]
		var mean float64
		for _, e := range energies {
			mean += e
			if d := math.Abs(e - st.E0); d > st.MaxDrift {
				st.MaxDrift = d
			}
		}
		mean /= float64(len(energies))
		var ss float64
		for _, e := range energies {
			ss += (e - mean) * (e - mean)
		}
		st.RMS = math.Sqrt(ss / float64(len(energies)))
		return st
	}
	return obs, get
}
