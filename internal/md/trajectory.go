package md

import (
	"fmt"
	"io"

	"github.com/fragmd/fragmd/internal/chem"
)

// TrajectoryWriter streams an MD trajectory as concatenated XYZ frames
// (the multi-frame format every molecular viewer reads).
type TrajectoryWriter struct {
	W io.Writer
	// Stride writes every Stride-th frame (default 1).
	Stride int
	frames int
}

// WriteFrame appends one frame with the step index and energies encoded
// in the comment line.
func (tw *TrajectoryWriter) WriteFrame(s *State, step int, epot, etot float64) error {
	stride := tw.Stride
	if stride <= 0 {
		stride = 1
	}
	tw.frames++
	if (tw.frames-1)%stride != 0 {
		return nil
	}
	g := s.Geom
	if _, err := fmt.Fprintf(tw.W, "%d\nstep=%d epot=%.10f etot=%.10f\n", g.N(), step, epot, etot); err != nil {
		return err
	}
	for _, a := range g.Atoms {
		if _, err := fmt.Fprintf(tw.W, "%-3s % 15.8f % 15.8f % 15.8f\n", chem.Symbol(a.Z),
			a.Pos[0]*chem.AngstromPerBohr, a.Pos[1]*chem.AngstromPerBohr, a.Pos[2]*chem.AngstromPerBohr); err != nil {
			return err
		}
	}
	return nil
}

// Observer adapts the writer to the md.Observer interface for a fixed
// state reference (the integrator mutates the state in place).
func (tw *TrajectoryWriter) Observer(s *State) Observer {
	return func(si StepInfo) {
		_ = tw.WriteFrame(s, si.Step, si.Epot, si.Etot)
	}
}
