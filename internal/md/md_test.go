package md

import (
	"math"
	"math/rand"
	"testing"

	"github.com/fragmd/fragmd/internal/chem"
	"github.com/fragmd/fragmd/internal/molecule"
	"github.com/fragmd/fragmd/internal/potential"
)

func ljProvider() ForceProvider {
	lj := &potential.LennardJones{}
	return ForceFunc(func(g *molecule.Geometry) (float64, []float64, error) {
		return lj.Evaluate(g)
	})
}

func TestHarmonicOscillatorPeriod(t *testing.T) {
	// Two unit-mass-ish particles on a harmonic spring integrate with a
	// known period; velocity Verlet must track it.
	k := 0.5
	r0 := 2.0
	provider := ForceFunc(func(g *molecule.Geometry) (float64, []float64, error) {
		r := g.Dist(0, 1)
		e := 0.5 * k * (r - r0) * (r - r0)
		grad := make([]float64, 6)
		for d := 0; d < 3; d++ {
			u := (g.Atoms[0].Pos[d] - g.Atoms[1].Pos[d]) / r
			grad[d] = k * (r - r0) * u
			grad[3+d] = -k * (r - r0) * u
		}
		return e, grad, nil
	})
	g := molecule.New()
	g.AddAtom(1, 0, 0, 0)
	g.AddAtom(1, 0, 0, r0+0.1)
	s := NewState(g)
	m := s.Masses[0]
	// Reduced mass μ = m/2; ω = sqrt(k/μ).
	omega := math.Sqrt(k / (m / 2))
	period := 2 * math.Pi / omega
	dt := period / 400
	steps := 401 // one full period
	var traj []float64
	vv := &VelocityVerlet{Dt: dt, Provider: provider}
	if err := vv.Run(s, steps, func(si StepInfo) { traj = append(traj, si.Epot) }); err != nil {
		t.Fatal(err)
	}
	// After one period the bond length returns to the start.
	if d := math.Abs(g.Dist(0, 1) - (r0 + 0.1)); d > 1e-3 {
		t.Errorf("period mismatch: Δr = %.5f", d)
	}
	// Energy conserved.
	if math.Abs(traj[0]-traj[len(traj)-1]) > 1e-6 {
		t.Errorf("potential at period endpoints differ: %g vs %g", traj[0], traj[len(traj)-1])
	}
}

func TestNVEConservationLJ(t *testing.T) {
	g := molecule.WaterCluster(4)
	s := NewState(g)
	s.SampleVelocities(150, rand.New(rand.NewSource(1)))
	obs, stats := NewConservationTracker()
	vv := &VelocityVerlet{Dt: 0.5 * chem.AtomicTimePerFs, Provider: ljProvider()}
	if err := vv.Run(s, 100, obs); err != nil {
		t.Fatal(err)
	}
	st := stats()
	if st.N != 100 {
		t.Fatalf("observer fired %d times, want 100", st.N)
	}
	if st.MaxDrift > 1e-5 {
		t.Errorf("energy drift %.2e too large for LJ NVE", st.MaxDrift)
	}
}

func TestDriftRemovalAndTemperature(t *testing.T) {
	g := molecule.WaterCluster(3)
	s := NewState(g)
	s.SampleVelocities(300, rand.New(rand.NewSource(2)))
	var p [3]float64
	for i, v := range s.Vel {
		for k := 0; k < 3; k++ {
			p[k] += s.Masses[i] * v[k]
		}
	}
	for k := 0; k < 3; k++ {
		if math.Abs(p[k]) > 1e-9 {
			t.Errorf("net momentum component %d = %g", k, p[k])
		}
	}
	temp := s.Temperature()
	if temp < 100 || temp > 600 {
		t.Errorf("sampled temperature %g K implausible for 300 K target", temp)
	}
}

func TestTimeStepValidation(t *testing.T) {
	vv := &VelocityVerlet{Dt: 0, Provider: ljProvider()}
	if err := vv.Run(NewState(molecule.Water()), 5, nil); err == nil {
		t.Fatal("expected error for zero time step")
	}
}

func TestEnergyConservationDegradesWithTimestep(t *testing.T) {
	run := func(dtFs float64) float64 {
		g := molecule.WaterCluster(3)
		s := NewState(g)
		s.SampleVelocities(200, rand.New(rand.NewSource(3)))
		obs, stats := NewConservationTracker()
		vv := &VelocityVerlet{Dt: dtFs * chem.AtomicTimePerFs, Provider: ljProvider()}
		if err := vv.Run(s, 60, obs); err != nil {
			t.Fatal(err)
		}
		return stats().RMS
	}
	small := run(0.25)
	large := run(4.0)
	if large <= small {
		t.Errorf("RMS fluctuation should grow with dt: %.3e (0.25fs) vs %.3e (4fs)", small, large)
	}
}
