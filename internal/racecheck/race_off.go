//go:build !race

package racecheck

// Enabled is true when the binary is built with -race.
const Enabled = false
