//go:build race

// Package racecheck reports whether the race detector is compiled in,
// so expensive pure-numerical test suites (finite-difference physics
// validation, supersystem references) can skip the race pass they add
// nothing to — their concurrency is exercised by the fast scheduler
// suites that do run under -race.
package racecheck

// Enabled is true when the binary is built with -race.
const Enabled = true
