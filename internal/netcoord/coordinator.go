package netcoord

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"github.com/fragmd/fragmd/internal/sched"
)

// CoordinatorOptions configures a listening coordinator.
type CoordinatorOptions struct {
	// Eval is the evaluator specification shipped to every worker in
	// the Welcome message.
	Eval EvalSpec
	// Heartbeat is the ping interval (default DefaultHeartbeat);
	// HeartbeatTimeout is how long a connection may stay silent before
	// the process is declared dead (default 5×Heartbeat). Any inbound
	// frame counts as liveness, not just pongs.
	Heartbeat        time.Duration
	HeartbeatTimeout time.Duration
	// Logf receives operational log lines (nil = silent).
	Logf func(format string, args ...interface{})
}

// Coordinator accepts worker registrations on a TCP listener and
// exposes the connected fleet as sched.Executor snapshots. Create one
// with Listen, wait for capacity with WaitWorkers, then hand
// Executor() snapshots to sched engine runs.
type Coordinator struct {
	ln   net.Listener
	opts CoordinatorOptions

	mu     sync.Mutex
	procs  map[int64]*proc
	nextID int64
	closed bool
	joinCh chan struct{} // closed and replaced on every membership gain
}

// proc is one connected worker process. Its inflight map is the
// exactly-once gate for result delivery: deliver (a decoded ResultMsg)
// and declareDead (connection loss, heartbeat expiry, send failure)
// both claim entries under mu, and only the claimant reports the
// attempt's outcome — a late result racing an eviction is dropped.
type proc struct {
	c     *Coordinator
	id    int64
	addr  string
	conn  net.Conn
	enc   *gob.Encoder
	slots int
	done  chan struct{} // closed by declareDead

	encMu sync.Mutex

	mu       sync.Mutex
	dead     bool
	lastSeen time.Time
	inflight map[int]inflightAttempt
}

// inflightAttempt joins a dispatched slot back to the engine run that
// dispatched it.
type inflightAttempt struct {
	worker int // engine worker handle
	task   sched.ExecRequest
	out    chan<- sched.ExecResult
}

// Listen starts a coordinator on addr (e.g. ":9137", or ":0" for an
// ephemeral test port) and begins accepting workers immediately.
func Listen(addr string, opts CoordinatorOptions) (*Coordinator, error) {
	if opts.Heartbeat <= 0 {
		opts.Heartbeat = DefaultHeartbeat
	}
	if opts.HeartbeatTimeout <= 0 {
		opts.HeartbeatTimeout = 5 * opts.Heartbeat
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		ln:     ln,
		opts:   opts,
		procs:  map[int64]*proc{},
		joinCh: make(chan struct{}),
	}
	go c.accept()
	return c, nil
}

func (c *Coordinator) logf(format string, args ...interface{}) {
	if c.opts.Logf != nil {
		c.opts.Logf(format, args...)
	}
}

// Addr returns the listener's address — the value workers dial, and
// what tests parse when listening on ":0".
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// Close stops accepting registrations and severs every connected
// worker. Workers with redialling enabled park in their dial loops, so
// a restarted coordinator (same address) reassembles the fleet — the
// resume path for internal/resilience checkpoints.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	procs := make([]*proc, 0, len(c.procs))
	for _, p := range c.procs {
		procs = append(procs, p)
	}
	c.mu.Unlock()
	err := c.ln.Close()
	for _, p := range procs {
		c.declareDead(p, errors.New("coordinator shut down"))
	}
	return err
}

// Workers returns the number of live connected worker processes and
// the total evaluation slots they offer.
func (c *Coordinator) Workers() (procs, slots int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, p := range c.procs {
		procs++
		slots += p.slots
	}
	return procs, slots
}

// WaitWorkers blocks until at least min worker processes are
// registered (or ctx ends). It returns the number of processes seen.
func (c *Coordinator) WaitWorkers(ctx context.Context, min int) (int, error) {
	for {
		c.mu.Lock()
		n := len(c.procs)
		join := c.joinCh
		c.mu.Unlock()
		if n >= min {
			return n, nil
		}
		select {
		case <-join:
		case <-ctx.Done():
			return n, fmt.Errorf("netcoord: waiting for %d workers (have %d): %w", min, n, ctx.Err())
		}
	}
}

func (c *Coordinator) accept() {
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return // listener closed
		}
		go c.register(conn)
	}
}

// register performs the coordinator side of the handshake and, on
// success, adds the process to the registry and starts its reader and
// heartbeat goroutines.
func (c *Coordinator) register(conn net.Conn) {
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	// A connection that cannot even accept a deadline is already dying;
	// proceeding without one would leave the handshake read unbounded,
	// wedging this goroutine on a half-open peer forever.
	if err := conn.SetReadDeadline(time.Now().Add(c.opts.HeartbeatTimeout)); err != nil {
		c.logf("netcoord: dropped %s: handshake read deadline: %v", conn.RemoteAddr(), err)
		conn.Close()
		return
	}
	var hf frame
	if err := dec.Decode(&hf); err != nil || hf.Hello == nil {
		conn.Close()
		return
	}
	h := hf.Hello
	if reject := func() string {
		switch {
		case h.Magic != Magic:
			return fmt.Sprintf("bad magic %q", h.Magic)
		case h.Version != ProtocolVersion:
			return fmt.Sprintf("protocol version %d, coordinator speaks %d", h.Version, ProtocolVersion)
		case h.Slots < 1:
			return fmt.Sprintf("invalid slot count %d", h.Slots)
		default:
			return ""
		}
	}(); reject != "" {
		c.logf("netcoord: rejected %s: %s", conn.RemoteAddr(), reject)
		enc.Encode(&frame{Welcome: &Welcome{Reject: reject}})
		conn.Close()
		return
	}
	if err := conn.SetReadDeadline(time.Time{}); err != nil {
		c.logf("netcoord: dropped %s: clear handshake deadline: %v", conn.RemoteAddr(), err)
		conn.Close()
		return
	}
	if err := conn.SetWriteDeadline(time.Now().Add(c.opts.HeartbeatTimeout)); err != nil {
		c.logf("netcoord: dropped %s: welcome write deadline: %v", conn.RemoteAddr(), err)
		conn.Close()
		return
	}
	if err := enc.Encode(&frame{Welcome: &Welcome{Eval: c.opts.Eval, Heartbeat: c.opts.Heartbeat}}); err != nil {
		conn.Close()
		return
	}
	if err := conn.SetWriteDeadline(time.Time{}); err != nil {
		c.logf("netcoord: dropped %s: clear welcome deadline: %v", conn.RemoteAddr(), err)
		conn.Close()
		return
	}

	p := &proc{
		c:        c,
		addr:     conn.RemoteAddr().String(),
		conn:     conn,
		enc:      enc,
		slots:    h.Slots,
		done:     make(chan struct{}),
		lastSeen: time.Now(),
		inflight: map[int]inflightAttempt{},
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		conn.Close()
		return
	}
	c.nextID++
	p.id = c.nextID
	c.procs[p.id] = p
	close(c.joinCh)
	c.joinCh = make(chan struct{})
	c.mu.Unlock()
	c.logf("netcoord: worker %d registered from %s with %d slot(s)", p.id, p.addr, p.slots)
	go c.read(p, dec)
	go c.heartbeat(p)
}

// send encodes one frame on the process's connection under a write
// deadline, so a wedged peer cannot block the caller past the
// heartbeat timeout. A failed deadline set is reported like a failed
// write: without the deadline the encode could block forever on a
// dying connection, silently defeating the heartbeat eviction path, so
// the connection must be treated as dead — every caller routes a send
// error through declareDead.
func (p *proc) send(f *frame) error {
	p.encMu.Lock()
	defer p.encMu.Unlock()
	if err := p.conn.SetWriteDeadline(time.Now().Add(p.c.opts.HeartbeatTimeout)); err != nil {
		return fmt.Errorf("set write deadline: %w", err)
	}
	return p.enc.Encode(f)
}

// read drains the process's connection: results are joined to their
// in-flight attempts, and every inbound frame refreshes liveness. A
// decode error of any kind means the connection is unusable, which is
// a declaration of death.
func (c *Coordinator) read(p *proc, dec *gob.Decoder) {
	for {
		f := new(frame)
		if err := dec.Decode(f); err != nil {
			c.declareDead(p, fmt.Errorf("connection lost: %w", err))
			return
		}
		p.mu.Lock()
		p.lastSeen = time.Now()
		p.mu.Unlock()
		if f.Result != nil {
			c.deliver(p, f.Result)
		}
	}
}

// deliver reports one remote result to the engine run that dispatched
// it. Results for slots with no matching in-flight attempt — or with a
// different task than dispatched — are stale leftovers of an earlier,
// abandoned engine run racing a fresh dispatch on the same slot, and
// are dropped: only the matching attempt may be reported, exactly
// once.
func (c *Coordinator) deliver(p *proc, r *ResultMsg) {
	p.mu.Lock()
	att, ok := p.inflight[r.Slot]
	if ok && att.task.Task != r.Task {
		ok = false
	}
	if !ok || p.dead {
		p.mu.Unlock()
		c.logf("netcoord: dropped stale result for task %v from worker %d slot %d", r.Task, p.id, r.Slot)
		return
	}
	delete(p.inflight, r.Slot)
	p.mu.Unlock()
	res := sched.ExecResult{
		Worker:    att.worker,
		Task:      r.Task,
		E:         r.E,
		Grad:      r.Grad,
		FieldGrad: r.FieldGrad,
		Charges:   r.Charges,
		Iters:     r.Iters,
		Skipped:   r.Skipped,
	}
	if r.Err != "" {
		res = sched.ExecResult{Worker: att.worker, Task: r.Task,
			Err: fmt.Errorf("netcoord: remote attempt failed on worker %d: %s", p.id, r.Err)}
	}
	att.out <- res
}

// heartbeat pings the process on the configured interval and declares
// it dead when the connection stays silent past the timeout — the
// network-partition detector (a kill -9 usually surfaces faster, as a
// read error or TCP reset).
func (c *Coordinator) heartbeat(p *proc) {
	tick := time.NewTicker(c.opts.Heartbeat)
	defer tick.Stop()
	var seq int64
	for {
		select {
		case <-p.done:
			return
		case <-tick.C:
		}
		p.mu.Lock()
		silent := time.Since(p.lastSeen)
		p.mu.Unlock()
		if silent > c.opts.HeartbeatTimeout {
			c.declareDead(p, fmt.Errorf("heartbeat timeout: silent for %s", silent.Round(time.Millisecond)))
			return
		}
		seq++
		if err := p.send(&frame{Ping: &Ping{Seq: seq}}); err != nil {
			c.declareDead(p, fmt.Errorf("ping failed: %w", err))
			return
		}
	}
}

// declareDead removes the process from the fleet and reports a
// WorkerDown failure for each of its in-flight attempts — the network
// backend's equivalent of the simulator's injected deaths, feeding the
// same coord eviction/re-queue path. The connection is closed before
// the evictions are reported, so a straggling result can never arrive
// after its slot was declared down. Idempotent: only the first caller
// acts.
func (c *Coordinator) declareDead(p *proc, cause error) {
	p.mu.Lock()
	if p.dead {
		p.mu.Unlock()
		return
	}
	p.dead = true
	orphans := p.inflight
	p.inflight = nil
	p.mu.Unlock()
	close(p.done)
	p.conn.Close()
	c.mu.Lock()
	delete(c.procs, p.id)
	c.mu.Unlock()
	c.logf("netcoord: worker %d (%s) declared dead: %v (%d attempts reclaimed)",
		p.id, p.addr, cause, len(orphans))
	for _, att := range orphans {
		att.out <- sched.ExecResult{
			Worker:     att.worker,
			Task:       att.task.Task,
			Err:        fmt.Errorf("netcoord: worker %d died mid-attempt: %w", p.id, cause),
			WorkerDown: true,
		}
	}
}

// Executor freezes the current fleet into a sched.Executor for one
// engine run: engine worker handles 0..Workers()-1 map onto the
// processes' slots, contiguously per process and ordered by
// registration, so coord's contiguous group assignment puts each
// remote process under its own group coordinator. Workers that join
// after the snapshot park until the next Executor() call — the dense
// fixed-handle invariant coord.RunContext enforces.
type Executor struct {
	procs     []*proc
	slotProc  []*proc
	slotLocal []int
	results   chan sched.ExecResult
}

// Executor snapshots the live fleet. Call WaitWorkers first; a
// snapshot with zero slots cannot run an engine.
func (c *Coordinator) Executor() *Executor {
	c.mu.Lock()
	procs := make([]*proc, 0, len(c.procs))
	for _, p := range c.procs {
		procs = append(procs, p)
	}
	c.mu.Unlock()
	sort.Slice(procs, func(i, j int) bool { return procs[i].id < procs[j].id })
	x := &Executor{procs: procs}
	for _, p := range procs {
		for s := 0; s < p.slots; s++ {
			x.slotProc = append(x.slotProc, p)
			x.slotLocal = append(x.slotLocal, s)
		}
	}
	x.results = make(chan sched.ExecResult, len(x.slotProc)+1)
	return x
}

// Workers returns the snapshot's total slot count.
func (x *Executor) Workers() int { return len(x.slotProc) }

// Procs returns the number of worker processes in the snapshot — the
// natural Options.Groups for an engine run over it.
func (x *Executor) Procs() int { return len(x.procs) }

// Execute ships the attempt to the slot's worker process. A dead
// process (or a send failure, which kills it) surfaces as a WorkerDown
// result through the usual eviction path; the engine run must budget
// retries for those re-queues (Options.MaxRetries ≥ 1).
func (x *Executor) Execute(w int, req sched.ExecRequest) {
	p := x.slotProc[w]
	slot := x.slotLocal[w]
	p.mu.Lock()
	if p.dead {
		p.mu.Unlock()
		x.results <- sched.ExecResult{
			Worker:     w,
			Task:       req.Task,
			Err:        fmt.Errorf("netcoord: worker %d is dead, slot %d evicted", p.id, w),
			WorkerDown: true,
		}
		return
	}
	p.inflight[slot] = inflightAttempt{worker: w, task: req, out: x.results}
	p.mu.Unlock()
	if err := p.send(&frame{Task: &TaskMsg{Slot: slot, Req: req}}); err != nil {
		// The failed send makes the connection unusable; declareDead
		// claims this attempt along with any other in-flight work and
		// reports each exactly once.
		p.c.declareDead(p, fmt.Errorf("task send failed: %w", err))
	}
}

// Results returns the snapshot's result channel (buffered for one
// outstanding result per slot).
func (x *Executor) Results() <-chan sched.ExecResult { return x.results }
