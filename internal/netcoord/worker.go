package netcoord

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/fragmd/fragmd/internal/fragment"
	"github.com/fragmd/fragmd/internal/warmstart"
)

// WorkerOptions configures a network worker process.
type WorkerOptions struct {
	// Slots is the number of tasks this process evaluates concurrently
	// (default 1). Each slot registers as one coordinator worker
	// handle, and the coordinator groups all of a process's slots under
	// one group coordinator.
	Slots int
	// WarmStart enables the worker-local warm-start cache: polymers
	// re-dispatched to this process seed their SCF from the cached
	// converged state. SkipTol/MaxSkip additionally enable skip reuse
	// (see warmstart.NewCache). The cache survives redials, so a
	// coordinator restart keeps the incremental-SCF advantage.
	WarmStart bool
	SkipTol   float64
	MaxSkip   int
	// Redial is the pause between dial attempts after a failed dial or
	// a lost connection (default 500 ms). Workers redial until the
	// context is cancelled — that is what lets them survive coordinator
	// restarts. Negative disables redialling: the worker exits after
	// one session.
	Redial time.Duration
	// Eval overrides the evaluator instead of building it from the
	// coordinator's Welcome EvalSpec — the hook tests and benchmarks
	// use to run instrumented potentials.
	Eval fragment.Evaluator
	// Logf receives operational log lines (nil = silent).
	Logf func(format string, args ...interface{})
}

func (o *WorkerOptions) logf(format string, args ...interface{}) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// errRejected marks a coordinator handshake rejection — deterministic,
// so the worker must not redial into the same refusal forever.
var errRejected = errors.New("netcoord: registration rejected")

// RunWorker dials the coordinator at addr, registers Slots evaluation
// slots, and serves tasks until ctx is cancelled. Connection loss (a
// coordinator restart, a severed link) sends it back to the dial loop;
// a handshake rejection (bad version) is fatal. The error is nil when
// the worker exits because ctx ended.
func RunWorker(ctx context.Context, addr string, opts WorkerOptions) error {
	if opts.Slots <= 0 {
		opts.Slots = 1
	}
	redial := opts.Redial
	if redial == 0 {
		redial = 500 * time.Millisecond
	}
	var cache *warmstart.Cache
	if opts.WarmStart || opts.SkipTol > 0 {
		cache = warmstart.NewCache(opts.SkipTol, opts.MaxSkip)
	}
	for {
		err := workerSession(ctx, addr, &opts, cache)
		switch {
		case ctx.Err() != nil:
			return nil
		case errors.Is(err, errRejected):
			return err
		case redial < 0:
			return err
		}
		if err != nil {
			opts.logf("netcoord worker: session ended: %v (redialling in %s)", err, redial)
		}
		select {
		case <-time.After(redial):
		case <-ctx.Done():
			return nil
		}
	}
}

// workerSession runs one dial-handshake-serve cycle.
func workerSession(ctx context.Context, addr string, opts *WorkerOptions, cache *warmstart.Cache) error {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	// Cancellation unblocks the decode loop by closing the connection.
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()

	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	var encMu sync.Mutex
	send := func(f *frame) error {
		encMu.Lock()
		defer encMu.Unlock()
		return enc.Encode(f)
	}

	if err := send(&frame{Hello: &Hello{Magic: Magic, Version: ProtocolVersion, Slots: opts.Slots}}); err != nil {
		return fmt.Errorf("netcoord: handshake send: %w", err)
	}
	var wf frame
	if err := dec.Decode(&wf); err != nil {
		return fmt.Errorf("netcoord: handshake read: %w", err)
	}
	if wf.Welcome == nil {
		return errors.New("netcoord: coordinator did not answer the handshake with a Welcome")
	}
	if wf.Welcome.Reject != "" {
		return fmt.Errorf("%w: %s", errRejected, wf.Welcome.Reject)
	}
	eval := opts.Eval
	if eval == nil {
		if eval, err = wf.Welcome.Eval.Build(); err != nil {
			return err
		}
	}
	opts.logf("netcoord worker: registered %d slot(s) with %s (%s potential)",
		opts.Slots, addr, wf.Welcome.Eval.Potential)

	for {
		f := new(frame)
		if err := dec.Decode(f); err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return fmt.Errorf("netcoord: connection lost: %w", err)
		}
		switch {
		case f.Ping != nil:
			if err := send(&frame{Pong: &Pong{Seq: f.Ping.Seq}}); err != nil {
				return fmt.Errorf("netcoord: pong send: %w", err)
			}
		case f.Task != nil:
			// The coordinator dispatches at most one attempt per slot,
			// so concurrency is bounded by Slots without further
			// accounting here; results multiplex onto the shared
			// encoder. A send failure is detected by the decode loop
			// (the connection is gone either way).
			go func(tm *TaskMsg) {
				res := evaluateTask(eval, cache, tm)
				if err := send(&frame{Result: res}); err != nil {
					opts.logf("netcoord worker: result send failed: %v", err)
				}
			}(f.Task)
		}
	}
}

// evaluateTask executes one attempt with the same semantics as the
// live engine's in-process workers: panic recovery turns evaluator
// panics into failed attempts, charge tasks derive partial charges,
// embedded runs route polymers through the embedded-evaluation path
// even with an empty field so remote results match local ones exactly.
func evaluateTask(eval fragment.Evaluator, cache *warmstart.Cache, tm *TaskMsg) (res *ResultMsg) {
	res = &ResultMsg{Slot: tm.Slot, Task: tm.Req.Task}
	defer func() {
		if r := recover(); r != nil {
			res.Err = fmt.Sprintf("netcoord: evaluator panic: %v", r)
		}
	}()
	req := &tm.Req
	switch {
	case req.Charge:
		cs, ok := eval.(fragment.ChargeSource)
		if !ok {
			res.Err = fmt.Sprintf("netcoord: evaluator %T cannot derive monomer charges", eval)
			return res
		}
		q, iters, err := cs.PartialCharges(req.Geom, req.Field)
		if err == nil && len(q) != req.Geom.N() {
			err = fmt.Errorf("netcoord: charge source returned %d values for %d atoms", len(q), req.Geom.N())
		}
		if err != nil {
			res.Err = err.Error()
			return res
		}
		res.Charges, res.Iters = q, iters
	case req.Embed:
		ee, ok := eval.(fragment.EmbeddedEvaluator)
		if !ok {
			res.Err = fmt.Sprintf("netcoord: evaluator %T cannot evaluate embedded fragments", eval)
			return res
		}
		var fl *fragment.Field
		if req.Field != nil {
			fl = &fragment.Field{Charges: *req.Field}
		}
		e, grad, fieldGrad, iters, skipped, err := fragment.EvaluateEmbeddedWithCache(ee, cache, req.Key, req.Geom, fl)
		if err != nil {
			res.Err = err.Error()
			return res
		}
		res.E, res.Grad, res.FieldGrad, res.Iters, res.Skipped = e, grad, fieldGrad, iters, skipped
	default:
		e, grad, iters, skipped, err := fragment.EvaluateWithCache(eval, cache, req.Key, req.Geom)
		if err != nil {
			res.Err = err.Error()
			return res
		}
		res.E, res.Grad, res.Iters, res.Skipped = e, grad, iters, skipped
	}
	return res
}
