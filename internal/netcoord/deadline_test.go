package netcoord

import (
	"encoding/gob"
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"github.com/fragmd/fragmd/internal/sched"
)

// deadlineFailConn is a net.Conn whose deadline setters fail — the
// shape of a connection whose fd already died under it. Writes still
// "succeed" so the test proves eviction comes from the deadline error
// itself, not from a failed encode.
type deadlineFailConn struct {
	err error
}

func (c *deadlineFailConn) Read(b []byte) (int, error)  { return 0, io.EOF }
func (c *deadlineFailConn) Write(b []byte) (int, error) { return len(b), nil }
func (c *deadlineFailConn) Close() error                { return nil }
func (c *deadlineFailConn) LocalAddr() net.Addr         { return &net.TCPAddr{} }
func (c *deadlineFailConn) RemoteAddr() net.Addr        { return &net.TCPAddr{} }
func (c *deadlineFailConn) SetDeadline(time.Time) error { return c.err }

func (c *deadlineFailConn) SetReadDeadline(time.Time) error  { return c.err }
func (c *deadlineFailConn) SetWriteDeadline(time.Time) error { return c.err }

// newFakeProc wires a proc over conn into a minimal coordinator
// registry, exactly as register would.
func newFakeProc(t *testing.T, conn net.Conn) (*Coordinator, *proc) {
	t.Helper()
	c := &Coordinator{
		opts:   CoordinatorOptions{Heartbeat: 50 * time.Millisecond, HeartbeatTimeout: 250 * time.Millisecond, Logf: t.Logf},
		procs:  map[int64]*proc{},
		joinCh: make(chan struct{}),
	}
	p := &proc{
		c:        c,
		id:       1,
		addr:     "fake",
		conn:     conn,
		enc:      gob.NewEncoder(conn),
		slots:    1,
		done:     make(chan struct{}),
		lastSeen: time.Now(),
		inflight: map[int]inflightAttempt{},
	}
	c.procs[p.id] = p
	return c, p
}

// A connection that cannot accept a write deadline must fail the send:
// encoding without the deadline would block unboundedly on a dying
// peer, defeating the heartbeat eviction path.
func TestSendFailsWhenDeadlineCannotBeSet(t *testing.T) {
	boom := errors.New("setsockopt: bad file descriptor")
	_, p := newFakeProc(t, &deadlineFailConn{err: boom})
	err := p.send(&frame{Ping: &Ping{Seq: 1}})
	if !errors.Is(err, boom) {
		t.Fatalf("send returned %v, want the deadline error", err)
	}
	if !strings.Contains(err.Error(), "deadline") {
		t.Errorf("error %q does not name the deadline failure", err)
	}
}

// A deadline failure during Execute is a declaration of death: the
// in-flight attempt comes back WorkerDown (feeding the usual eviction
// path) and the process leaves the fleet, instead of leaving a
// blocking read with no timeout behind.
func TestDeadlineFailureEvictsWorker(t *testing.T) {
	boom := errors.New("setsockopt: bad file descriptor")
	c, p := newFakeProc(t, &deadlineFailConn{err: boom})
	x := &Executor{
		procs:     []*proc{p},
		slotProc:  []*proc{p},
		slotLocal: []int{0},
		results:   make(chan sched.ExecResult, 2),
	}
	x.Execute(0, sched.ExecRequest{})
	select {
	case r := <-x.Results():
		if !r.WorkerDown || r.Err == nil {
			t.Fatalf("result = %+v, want WorkerDown with error", r)
		}
		if !strings.Contains(r.Err.Error(), "deadline") {
			t.Errorf("eviction error %q does not carry the deadline cause", r.Err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("deadline failure produced no WorkerDown result")
	}
	if procs, _ := c.Workers(); procs != 0 {
		t.Errorf("fleet still has %d processes, want 0 after the eviction", procs)
	}
	p.mu.Lock()
	dead := p.dead
	p.mu.Unlock()
	if !dead {
		t.Error("proc not marked dead after deadline failure")
	}
}

// The heartbeat loop, too, must evict on a deadline failure rather
// than pinging into the void forever.
func TestHeartbeatEvictsOnDeadlineFailure(t *testing.T) {
	boom := errors.New("setsockopt: bad file descriptor")
	c, p := newFakeProc(t, &deadlineFailConn{err: boom})
	go c.heartbeat(p)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if procs, _ := c.Workers(); procs == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("heartbeat never evicted the deadline-failing worker")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
