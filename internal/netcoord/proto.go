// Package netcoord is the network worker backend of the shared
// scheduling core (ROADMAP item 3, the paper's §VII hierarchy over a
// real transport): a coordinator process drives the ordinary
// sched.Engine while the fragment evaluations execute in separate
// worker processes connected over TCP. The transport is stdlib-only —
// net + encoding/gob — keeping the module at zero external
// dependencies.
//
// Roles:
//
//   - Worker (fragmd worker -connect host:port, or RunWorker): dials
//     the coordinator, handshakes (magic + protocol version), receives
//     an evaluator specification, then evaluates serialized tasks —
//     capped fragment geometries plus optional embedding fields — and
//     streams results back. On connection loss it redials, so workers
//     survive a coordinator restart.
//
//   - Coordinator (fragmd coordinate -listen :port -min-workers N, or
//     Listen): accepts workers, heartbeats every connection, and
//     exposes the registered worker slots as a sched.Executor. Each
//     worker process becomes one group coordinator of the hierarchical
//     policy; a process offering multiple slots evaluates that many
//     tasks concurrently.
//
// Failure semantics (DESIGN.md §10): a dead connection, missed
// heartbeat deadline, or killed worker process surfaces as a
// WorkerDown result for each of the process's in-flight attempts,
// which the coordinator's existing eviction path turns into re-queued
// work on surviving workers — exactly the injected-death path of
// internal/resilience. Late results from a worker already declared
// dead are dropped at the transport (the connection is closed before
// the eviction is reported), and duplicate completions are dropped by
// coord.Policy.Completed, so every task still completes exactly once.
package netcoord

import (
	"fmt"
	"time"

	"github.com/fragmd/fragmd/internal/coord"
	"github.com/fragmd/fragmd/internal/fragment"
	"github.com/fragmd/fragmd/internal/potential"
	"github.com/fragmd/fragmd/internal/scf"
	"github.com/fragmd/fragmd/internal/sched"
)

// Magic is the handshake tag both ends require before speaking the
// protocol; a stray client (or a port collision) is rejected at the
// first message.
const Magic = "fragmd-netcoord"

// ProtocolVersion is the wire schema version. The coordinator rejects
// workers speaking a different version during the handshake — mixed
// deployments fail loudly at registration, never mid-trajectory.
const ProtocolVersion = 1

// DefaultHeartbeat is the default coordinator→worker ping interval.
const DefaultHeartbeat = 1 * time.Second

// EvalSpec names the potential a worker must build — the coordinator
// ships it in the Welcome message so both sides of a run agree on the
// physics by construction (one source of truth, the coordinator's
// flags).
type EvalSpec struct {
	// Potential selects the evaluator: "rimp2", "hf", "hf4c"
	// (conventional four-center Fock build) or "lj".
	Potential string
	// Basis is the orbital basis ("sto-3g" or "dzp"; ab initio
	// potentials only).
	Basis string
	// SCS applies spin-component scaling to reported RI-MP2 energies.
	SCS bool
	// RIScreen is the Schwarz screening threshold for three-center
	// integrals (0 = default, negative disables; see scf.Options).
	RIScreen float64
}

// Build constructs the evaluator an EvalSpec describes.
func (s EvalSpec) Build() (fragment.Evaluator, error) {
	switch s.Potential {
	case "rimp2":
		return &potential.RIMP2{Basis: s.Basis, SCS: s.SCS,
			SCFOpts: scf.Options{RIScreenThresh: s.RIScreen}}, nil
	case "hf":
		return &potential.HF{Basis: s.Basis, UseRI: true}, nil
	case "hf4c":
		return &potential.HF{Basis: s.Basis}, nil
	case "lj":
		return &potential.LennardJones{}, nil
	default:
		return nil, fmt.Errorf("netcoord: unknown potential %q (want rimp2, hf, hf4c or lj)", s.Potential)
	}
}

// Hello is the worker's first message after dialing.
type Hello struct {
	// Magic must equal Magic; Version must equal ProtocolVersion.
	Magic   string
	Version int
	// Slots is the number of tasks the worker process evaluates
	// concurrently (≥ 1); each slot becomes one coordinator worker
	// handle.
	Slots int
}

// Welcome is the coordinator's handshake reply.
type Welcome struct {
	// Reject, when non-empty, refuses the registration (version
	// mismatch, bad magic) and the connection is closed.
	Reject string
	// Eval tells the worker which potential to build (ignored by
	// workers running with an explicit WorkerOptions.Eval override).
	Eval EvalSpec
	// Heartbeat is the coordinator's ping interval; a worker can use it
	// to size its own liveness expectations.
	Heartbeat time.Duration
}

// TaskMsg dispatches one attempt to a worker slot.
type TaskMsg struct {
	// Slot is the process-local slot (0..Hello.Slots-1) the attempt
	// occupies; results echo it so the coordinator can join them to the
	// in-flight attempt.
	Slot int
	// Req is the engine's execution request: task identity, standalone
	// capped geometry, optional embedding field.
	Req sched.ExecRequest
}

// ResultMsg reports one executed attempt back to the coordinator.
type ResultMsg struct {
	// Slot echoes TaskMsg.Slot.
	Slot int
	// Task echoes the task identity for transport-level sanity checks.
	Task coord.Task
	// E, Grad, FieldGrad, Charges, Iters and Skipped mirror
	// sched.ExecResult.
	E         float64
	Grad      []float64
	FieldGrad []float64
	Charges   []float64
	Iters     int
	Skipped   bool
	// Err is the evaluation failure, serialized as text ("" = success).
	Err string
}

// Ping is the coordinator's periodic liveness probe; Pong is the
// worker's reply. Any frame counts as liveness, so a worker busy
// streaming results never needs to win a race against the deadline.
type Ping struct{ Seq int64 }

// Pong echoes a Ping's sequence number.
type Pong struct{ Seq int64 }

// frame is the single gob-encoded envelope both directions use:
// exactly one field is non-nil per frame. gob omits nil pointers, so
// the envelope costs one byte per absent variant.
type frame struct {
	Hello   *Hello
	Welcome *Welcome
	Task    *TaskMsg
	Result  *ResultMsg
	Ping    *Ping
	Pong    *Pong
}
