package netcoord

import (
	"context"
	"encoding/gob"
	"math"
	"math/rand"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/fragmd/fragmd/internal/chem"
	"github.com/fragmd/fragmd/internal/fragment"
	"github.com/fragmd/fragmd/internal/md"
	"github.com/fragmd/fragmd/internal/molecule"
	"github.com/fragmd/fragmd/internal/potential"
	"github.com/fragmd/fragmd/internal/sched"
)

const dt = 0.5 * chem.AtomicTimePerFs

// checkGoroutines registers a leak check that runs after the test's
// other cleanups (t.Cleanup is LIFO): the goroutine count must return
// to its pre-test baseline once workers are cancelled and the
// coordinator closed.
func checkGoroutines(t *testing.T) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if runtime.NumGoroutine() <= base {
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Errorf("goroutine leak: %d live, baseline %d\n%s", runtime.NumGoroutine(), base, buf[:n])
	})
}

func waterFrag(t *testing.T, nWater int) *fragment.Fragmentation {
	t.Helper()
	f, err := fragment.ByMolecule(molecule.WaterCluster(nWater), 3, 1,
		fragment.Options{DimerCutoff: 12, TrimerCutoff: 9})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func newState(f *fragment.Fragmentation, seed int64) *md.State {
	s := md.NewState(f.Geom.Clone())
	s.SampleVelocities(150, rand.New(rand.NewSource(seed)))
	return s
}

// startCoordinator listens on an ephemeral port with fast heartbeats
// and closes on cleanup.
func startCoordinator(t *testing.T, opts CoordinatorOptions) *Coordinator {
	t.Helper()
	if opts.Heartbeat == 0 {
		opts.Heartbeat = 50 * time.Millisecond
	}
	if opts.Logf == nil {
		opts.Logf = t.Logf
	}
	c, err := Listen("127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// startWorker runs one worker goroutine against addr and returns its
// cancel func; cleanup cancels and waits for exit.
func startWorker(t *testing.T, addr string, opts WorkerOptions) context.CancelFunc {
	t.Helper()
	if opts.Logf == nil {
		opts.Logf = t.Logf
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := RunWorker(ctx, addr, opts); err != nil {
			t.Errorf("worker exited: %v", err)
		}
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
	return cancel
}

// runTrajectory drives the engine for n steps and returns final state
// and per-step stats; opts.Exec == nil runs the in-process reference.
func runTrajectory(t *testing.T, f *fragment.Fragmentation, eval fragment.Evaluator,
	opts sched.Options, seed int64, n int) (*md.State, []sched.StepStats) {
	t.Helper()
	opts.Dt = dt
	opts.Async = true
	eng, err := sched.New(f, eval, opts)
	if err != nil {
		t.Fatal(err)
	}
	state := newState(f, seed)
	stats, err := eng.Run(state, n, nil)
	if err != nil {
		t.Fatal(err)
	}
	return state, stats
}

func assertTrajectoriesMatch(t *testing.T, want, got *md.State, wantStats, gotStats []sched.StepStats) {
	t.Helper()
	for s := range wantStats {
		if d := math.Abs(wantStats[s].Etot - gotStats[s].Etot); d > 1e-10 {
			t.Errorf("Etot diverges at step %d by %.2e (local %.12f, network %.12f)",
				s, d, wantStats[s].Etot, gotStats[s].Etot)
		}
	}
	for i := range want.Geom.Atoms {
		for k := 0; k < 3; k++ {
			if d := math.Abs(want.Geom.Atoms[i].Pos[k] - got.Geom.Atoms[i].Pos[k]); d > 1e-10 {
				t.Fatalf("positions diverge at atom %d dim %d by %.2e", i, k, d)
			}
		}
	}
}

// A trajectory over live TCP workers must reproduce the in-process
// engine's energies and positions to 1e-10 — the wire moves only
// serialized geometries and payloads, never different physics.
func TestNetworkMatchesLocalTrajectory(t *testing.T) {
	checkGoroutines(t)
	const steps, seed = 4, 11
	f := waterFrag(t, 6)
	localState, localStats := runTrajectory(t, f, &potential.LennardJones{},
		sched.Options{Workers: 4, Groups: 2}, seed, steps)

	c := startCoordinator(t, CoordinatorOptions{Eval: EvalSpec{Potential: "lj"}})
	for i := 0; i < 2; i++ {
		startWorker(t, c.Addr(), WorkerOptions{Slots: 2})
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := c.WaitWorkers(ctx, 2); err != nil {
		t.Fatal(err)
	}
	x := c.Executor()
	if x.Workers() != 4 || x.Procs() != 2 {
		t.Fatalf("executor snapshot: %d slots over %d procs, want 4 over 2", x.Workers(), x.Procs())
	}
	netState, netStats := runTrajectory(t, f, nil,
		sched.Options{Exec: x, Groups: x.Procs()}, seed, steps)
	assertTrajectoriesMatch(t, localState, netState, localStats, netStats)
}

// Same equivalence for an EE-MBE trajectory: charge tasks and embedded
// polymer evaluations both cross the wire (the workers use an explicit
// evaluator override carrying the embedding charge model).
func TestNetworkMatchesLocalEmbedded(t *testing.T) {
	checkGoroutines(t)
	const steps, seed = 2, 5
	embedEval := func() fragment.Evaluator {
		return &potential.LennardJones{Charges: map[int]float64{1: 0.2, 8: -0.4}}
	}
	f := waterFrag(t, 5)
	embed := &fragment.EmbedOptions{SCC: 1, Damping: 0.2}
	localState, localStats := runTrajectory(t, f, embedEval(),
		sched.Options{Workers: 3, Embed: embed}, seed, steps)

	c := startCoordinator(t, CoordinatorOptions{Eval: EvalSpec{Potential: "lj"}})
	startWorker(t, c.Addr(), WorkerOptions{Slots: 2, Eval: embedEval()})
	startWorker(t, c.Addr(), WorkerOptions{Slots: 1, Eval: embedEval()})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := c.WaitWorkers(ctx, 2); err != nil {
		t.Fatal(err)
	}
	x := c.Executor()
	netState, netStats := runTrajectory(t, f, nil,
		sched.Options{Exec: x, Groups: x.Procs(), Embed: embed}, seed, steps)
	assertTrajectoriesMatch(t, localState, netState, localStats, netStats)
}

// slowEval paces evaluations so a run keeps in-flight work on every
// worker long enough for mid-run failures to matter.
type slowEval struct {
	lj    potential.LennardJones
	delay time.Duration
}

func (s *slowEval) Evaluate(g *molecule.Geometry) (float64, []float64, error) {
	time.Sleep(s.delay)
	return s.lj.Evaluate(g)
}

// severEval severs its own worker's connection (by cancelling the
// worker context) after a fixed number of evaluations — the in-test
// stand-in for a network partition or kill -9.
type severEval struct {
	slowEval
	evals atomic.Int64
	after int64
	sever func()
	once  sync.Once
}

func (s *severEval) Evaluate(g *molecule.Geometry) (float64, []float64, error) {
	if s.evals.Add(1) > s.after {
		s.once.Do(s.sever)
	}
	return s.slowEval.Evaluate(g)
}

// Severing a worker's connection mid-run must evict only that worker:
// its in-flight attempts are reclaimed, re-queued on the survivors,
// and the trajectory still matches the single-process reference.
func TestSeveredConnectionEvictsAndRecovers(t *testing.T) {
	checkGoroutines(t)
	const steps, seed = 3, 23
	f := waterFrag(t, 6)
	localState, localStats := runTrajectory(t, f, &potential.LennardJones{},
		sched.Options{Workers: 3}, seed, steps)

	c := startCoordinator(t, CoordinatorOptions{Eval: EvalSpec{Potential: "lj"}})
	startWorker(t, c.Addr(), WorkerOptions{Slots: 2, Eval: &slowEval{delay: 2 * time.Millisecond}})
	victimCtx, severVictim := context.WithCancel(context.Background())
	defer severVictim()
	victim := &severEval{slowEval: slowEval{delay: 2 * time.Millisecond}, after: 2, sever: severVictim}
	victimDone := make(chan struct{})
	go func() {
		defer close(victimDone)
		RunWorker(victimCtx, c.Addr(), WorkerOptions{Slots: 1, Eval: victim, Redial: -1, Logf: t.Logf})
	}()
	t.Cleanup(func() { severVictim(); <-victimDone })

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := c.WaitWorkers(ctx, 2); err != nil {
		t.Fatal(err)
	}
	x := c.Executor()
	opts := sched.Options{Exec: x, Groups: x.Procs(), MaxRetries: 3, Timeout: 30 * time.Second}
	opts.Dt, opts.Async = dt, true
	eng, err := sched.New(f, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	netState := newState(f, seed)
	netStats, err := eng.Run(netState, steps, nil)
	if err != nil {
		t.Fatal(err)
	}
	if victim.evals.Load() <= victim.after {
		t.Fatalf("victim worker evaluated only %d tasks, sever never triggered", victim.evals.Load())
	}
	if rs := eng.RunStats(); rs.Evicted != 1 {
		t.Errorf("RunStats.Evicted = %d, want exactly 1 (the severed worker)", rs.Evicted)
	}
	assertTrajectoriesMatch(t, localState, netState, localStats, netStats)
}

// A coordinator restart must not strand the fleet: redialling workers
// reattach to the new listener on the same address, and a trajectory
// chunked across the restart matches the same chunking run locally —
// the transport-level half of checkpoint/resume.
func TestCoordinatorRestartReassemblesFleet(t *testing.T) {
	checkGoroutines(t)
	const seed = 31
	f := waterFrag(t, 5)

	// Local reference with identical chunking (2 steps + 2 steps).
	localState := newState(f, seed)
	var localStats []sched.StepStats
	for chunk := 0; chunk < 2; chunk++ {
		eng, err := sched.New(f, &potential.LennardJones{}, sched.Options{Workers: 3, Async: true, Dt: dt})
		if err != nil {
			t.Fatal(err)
		}
		stats, err := eng.Run(localState, 2, nil)
		if err != nil {
			t.Fatal(err)
		}
		localStats = append(localStats, stats...)
	}

	c1, err := Listen("127.0.0.1:0", CoordinatorOptions{
		Eval: EvalSpec{Potential: "lj"}, Heartbeat: 50 * time.Millisecond, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	addr := c1.Addr()
	startWorker(t, addr, WorkerOptions{Slots: 2, Redial: 30 * time.Millisecond})
	startWorker(t, addr, WorkerOptions{Slots: 1, Redial: 30 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if _, err := c1.WaitWorkers(ctx, 2); err != nil {
		t.Fatal(err)
	}

	netState := newState(f, seed)
	var netStats []sched.StepStats
	runChunk := func(c *Coordinator) {
		t.Helper()
		if _, err := c.WaitWorkers(ctx, 2); err != nil {
			t.Fatal(err)
		}
		x := c.Executor()
		eng, err := sched.New(f, nil, sched.Options{Exec: x, Groups: x.Procs(), Async: true, Dt: dt})
		if err != nil {
			t.Fatal(err)
		}
		stats, err := eng.Run(netState, 2, nil)
		if err != nil {
			t.Fatal(err)
		}
		netStats = append(netStats, stats...)
	}
	runChunk(c1)
	c1.Close()

	// Restart on the same address; the OS may briefly hold the port.
	var c2 *Coordinator
	for deadline := time.Now().Add(5 * time.Second); ; {
		c2, err = Listen(addr, CoordinatorOptions{
			Eval: EvalSpec{Potential: "lj"}, Heartbeat: 50 * time.Millisecond, Logf: t.Logf})
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebinding %s: %v", addr, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Cleanup(func() { c2.Close() })
	runChunk(c2)

	assertTrajectoriesMatch(t, localState, netState, localStats, netStats)
}

// The coordinator must reject protocol strangers at the first message:
// wrong version, wrong magic, and nonsense slot counts all get an
// explanatory Welcome.Reject before the connection closes.
func TestHandshakeRejectsStrangers(t *testing.T) {
	checkGoroutines(t)
	c := startCoordinator(t, CoordinatorOptions{Eval: EvalSpec{Potential: "lj"}})
	cases := []struct {
		name  string
		hello Hello
	}{
		{"version-mismatch", Hello{Magic: Magic, Version: ProtocolVersion + 1, Slots: 1}},
		{"bad-magic", Hello{Magic: "not-fragmd", Version: ProtocolVersion, Slots: 1}},
		{"zero-slots", Hello{Magic: Magic, Version: ProtocolVersion, Slots: 0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			conn, err := net.Dial("tcp", c.Addr())
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()
			if err := gob.NewEncoder(conn).Encode(&frame{Hello: &tc.hello}); err != nil {
				t.Fatal(err)
			}
			var f frame
			if err := gob.NewDecoder(conn).Decode(&f); err != nil {
				t.Fatal(err)
			}
			if f.Welcome == nil || f.Welcome.Reject == "" {
				t.Fatalf("stranger %+v was not rejected (reply %+v)", tc.hello, f)
			}
		})
	}
	if procs, _ := c.Workers(); procs != 0 {
		t.Errorf("%d strangers registered as workers", procs)
	}
}

// A worker whose handshake is rejected must report the rejection
// instead of redialling into the same refusal forever.
func TestRejectedWorkerDoesNotRedial(t *testing.T) {
	checkGoroutines(t)
	// A fake coordinator that rejects everyone.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				var f frame
				if gob.NewDecoder(conn).Decode(&f) == nil {
					gob.NewEncoder(conn).Encode(&frame{Welcome: &Welcome{Reject: "go away"}})
				}
			}(conn)
		}
	}()
	errCh := make(chan error, 1)
	go func() {
		errCh <- RunWorker(context.Background(), ln.Addr().String(), WorkerOptions{Redial: time.Millisecond})
	}()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("rejected worker returned nil")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("rejected worker kept redialling")
	}
}

// Dispatching to a slot of an already-dead process must synthesize an
// immediate WorkerDown result — the engine's eviction path depends on
// exactly one result per Execute.
func TestExecuteOnDeadSlotSynthesizesEviction(t *testing.T) {
	checkGoroutines(t)
	c := startCoordinator(t, CoordinatorOptions{Eval: EvalSpec{Potential: "lj"}})
	cancel := startWorker(t, c.Addr(), WorkerOptions{Slots: 1, Redial: -1})
	ctx, cancelWait := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancelWait()
	if _, err := c.WaitWorkers(ctx, 1); err != nil {
		t.Fatal(err)
	}
	x := c.Executor()
	cancel() // worker gone before any dispatch
	deadline := time.Now().Add(5 * time.Second)
	for {
		if procs, _ := c.Workers(); procs == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("dead worker never left the registry")
		}
		time.Sleep(10 * time.Millisecond)
	}
	x.Execute(0, sched.ExecRequest{Geom: molecule.WaterCluster(1)})
	select {
	case r := <-x.Results():
		if !r.WorkerDown || r.Err == nil {
			t.Fatalf("dead-slot result = %+v, want WorkerDown with error", r)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no synthetic result for dead-slot dispatch")
	}
}
