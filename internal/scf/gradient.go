package scf

import (
	"github.com/fragmd/fragmd/internal/integrals"
	"github.com/fragmd/fragmd/internal/linalg"
)

// Gradient returns the analytic nuclear gradient ∂E_HF/∂R (flat [3N],
// Hartree/Bohr). On the RI path no four-center integral derivatives are
// evaluated anywhere — the two-electron contribution reduces to the
// Z^P_μν and ζ_PQ contractions of paper Eq. 10; on the conventional path
// the full (μν|λσ)^ξ derivatives are recomputed on the fly.
func (r *Result) Gradient() []float64 {
	grad, _ := r.Gradients()
	return grad
}

// Gradients returns the analytic nuclear gradient plus, when the SCF
// was embedded in a point-charge field (Options.EmbedCharges), the
// gradient on the field sites (flat [3M], Hartree/Bohr; nil in
// vacuum). The site forces hold the charge values fixed — the EE-MBE
// frozen-charge convention.
func (r *Result) Gradients() (grad, siteGrad []float64) {
	grad = r.Geom.NuclearRepulsionGradient()

	// One-electron terms: Σ D_μν h^ξ_μν.
	integrals.KineticDeriv(r.Bs, r.D, 1, grad)
	integrals.NuclearDeriv(r.Bs, r.Geom, r.D, 1, grad)
	if pc := r.opts.EmbedCharges; pc.N() > 0 {
		siteGrad = make([]float64, 3*pc.N())
		integrals.PointChargeDeriv(r.Bs, pc, r.D, 1, grad, siteGrad)
		integrals.NuclearFieldDeriv(r.Geom, pc, 1, grad, siteGrad)
	}

	// Pulay term: −Σ W_μν S^ξ_μν, W = 2 Σ_i ε_i C_i C_iᵀ.
	w := r.EnergyWeightedDensity()
	integrals.OverlapDeriv(r.Bs, w, -1, grad)

	if r.B != nil {
		z := linalg.NewTensor3(r.Aux.N, r.Bs.N, r.Bs.N)
		zeta := linalg.NewMat(r.Aux.N, r.Aux.N)
		r.AddRISeparableCoeffs(r.D, r.D, 0.5, z, zeta)
		integrals.ThreeCenterDeriv(r.Bs, r.Aux, z, 1, grad)
		integrals.TwoCenterDeriv(r.Aux, zeta, 1, grad)
	} else {
		integrals.FourCenterDerivHF(r.Bs, r.D, r.Schwarz, r.opts.SchwarzThresh, 1, grad)
	}
	return grad, siteGrad
}

// MullikenCharges returns the per-atom Mulliken partial charges of the
// converged density, q_A = Z_A − Σ_{μ∈A} (D·S)_μμ — the charge model
// of the EE-MBE embedding field (phase 1).
func (r *Result) MullikenCharges() []float64 {
	ds := r.opts.Tuner.MatMul(linalg.NoTrans, linalg.NoTrans, r.D, r.S)
	q := make([]float64, r.Geom.N())
	for i, at := range r.Geom.Atoms {
		q[i] = float64(at.Z)
	}
	fa := r.Bs.FuncAtom()
	for mu := 0; mu < r.Bs.N; mu++ {
		q[fa[mu]] -= ds.At(mu, mu)
	}
	return q
}

// EnergyWeightedDensity returns W_μν = 2 Σ_i^occ ε_i C_μi C_νi.
func (r *Result) EnergyWeightedDensity() *linalg.Mat {
	n := r.Bs.N
	w := linalg.NewMat(n, n)
	for mu := 0; mu < n; mu++ {
		for nu := 0; nu < n; nu++ {
			var s float64
			for i := 0; i < r.NOcc; i++ {
				s += r.Eps[i] * r.C.At(mu, i) * r.C.At(nu, i)
			}
			w.Set(mu, nu, 2*s)
		}
	}
	return w
}

// CTilde returns the tensor C̃_P = Σ_Q J^{-1}_PQ (Q|μν) (lazily built and
// cached; geometry is immutable per Result).
func (r *Result) CTilde() *linalg.Tensor3 {
	if r.ctilde == nil {
		r.ctilde = linalg.NewTensor3(r.Aux.N, r.Bs.N, r.Bs.N)
		r.opts.Tuner.Gemm(linalg.NoTrans, linalg.NoTrans, 1, r.JInvHalf, r.B.Flatten(), 0, r.ctilde.Flatten())
	}
	return r.ctilde
}

// AddRISeparableCoeffs accumulates into (zAcc, zetaAcc) the derivative
// coefficients of the RI-factorised separable two-electron energy
//
//	E_sep(Da, Db) = factor · Σ_μνλσ Da_μν Db_λσ [(μν|λσ) − ½(μλ|νσ)]_RI
//
// such that dE_sep = Σ zAcc_Pμν (P|μν)^ξ + Σ zetaAcc_PQ (P|Q)^ξ.
// Both densities must be symmetric. The HF energy uses (D, D) with
// factor/2; the MP2 orbital-response coupling uses (P^relaxed, D_HF).
func (r *Result) AddRISeparableCoeffs(da, db *linalg.Mat, factor float64, zAcc *linalg.Tensor3, zetaAcc *linalg.Mat) {
	nbf := r.Bs.N
	naux := r.Aux.N
	tuner := r.opts.Tuner
	ct := r.CTilde()

	// u^x_P = Σ_μν V_Pμν Dx_μν ; w^x = J^{-1} u^x.
	uvec := func(d *linalg.Mat) *linalg.Mat {
		dv := &linalg.Mat{Rows: nbf * nbf, Cols: 1, Data: d.Data}
		u := linalg.NewMat(naux, 1)
		tuner.Gemm(linalg.NoTrans, linalg.NoTrans, 1, r.V3.Flatten(), dv, 0, u)
		return u
	}
	applyJinv := func(u *linalg.Mat) *linalg.Mat {
		t := linalg.NewMat(naux, 1)
		tuner.Gemm(linalg.NoTrans, linalg.NoTrans, 1, r.JInvHalf, u, 0, t)
		w := linalg.NewMat(naux, 1)
		tuner.Gemm(linalg.NoTrans, linalg.NoTrans, 1, r.JInvHalf, t, 0, w)
		return w
	}
	wa := applyJinv(uvec(da))
	wb := applyJinv(uvec(db))

	// Exchange intermediates Y_P = Da·C̃_P·Db (and the transposed pair),
	// accumulated into zAcc; Coulomb adds w^b_P·Da + w^a_P·Db.
	y := linalg.NewTensor3(naux, nbf, nbf)
	tmp := linalg.NewMat(nbf, nbf)
	for p := 0; p < naux; p++ {
		cp := ct.Slice(p)
		zp := zAcc.Slice(p)
		yp := y.Slice(p)
		// tmp = Da·C̃_P ; Y_P = tmp·Db.
		tuner.Gemm(linalg.NoTrans, linalg.NoTrans, 1, da, cp, 0, tmp)
		tuner.Gemm(linalg.NoTrans, linalg.NoTrans, 1, tmp, db, 0, yp)
		wap := wa.Data[p] * factor
		wbp := wb.Data[p] * factor
		for i := 0; i < nbf; i++ {
			yrow := yp.Row(i)
			zrow := zp.Row(i)
			darow := da.Row(i)
			dbrow := db.Row(i)
			for j := 0; j < nbf; j++ {
				// Exchange coefficient −factor·(Da C̃_P Db)_μν, written in
				// the symmetrised form −factor·½(Y_P + Y_Pᵀ).
				zrow[j] += wbp*darow[j] + wap*dbrow[j] -
					0.5*factor*(yrow[j]+yp.At(j, i))
			}
		}
	}

	// ζ: −½(w^a w^bᵀ + w^b w^aᵀ) + ½ G, G_PQ = tr(Da C̃_P Db C̃_Q).
	gmat := linalg.NewMat(naux, naux)
	tuner.Gemm(linalg.NoTrans, linalg.Trans, 1, y.Flatten(), ct.Flatten(), 0, gmat)
	for p := 0; p < naux; p++ {
		for q := 0; q < naux; q++ {
			v := -0.5*(wa.Data[p]*wb.Data[q]+wb.Data[p]*wa.Data[q]) +
				0.25*(gmat.At(p, q)+gmat.At(q, p))
			zetaAcc.Add(p, q, factor*v)
		}
	}
}
