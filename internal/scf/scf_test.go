package scf

import (
	"math"
	"testing"

	"github.com/fragmd/fragmd/internal/basis"
	"github.com/fragmd/fragmd/internal/linalg"
	"github.com/fragmd/fragmd/internal/molecule"
)

func runRHF(t *testing.T, g *molecule.Geometry, bsName string, useRI bool) *Result {
	t.Helper()
	bs, err := basis.Build(bsName, g)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RHF(g, bs, Options{UseRI: useRI})
	if err != nil {
		t.Fatalf("RHF failed: %v", err)
	}
	return res
}

// He/STO-3G is a geometry-free external anchor: E = −2.807784 Ha.
func TestHeliumAnchor(t *testing.T) {
	g := molecule.New()
	g.AddAtom(2, 0, 0, 0)
	res := runRHF(t, g, "sto-3g", false)
	if math.Abs(res.Energy-(-2.807784)) > 1e-5 {
		t.Errorf("He/STO-3G E = %.6f, want −2.807784", res.Energy)
	}
}

// H2 at R = 1.4 Bohr, STO-3G: E = −1.1167 Ha (Szabo & Ostlund §3.5.2:
// E_elec = −1.8310, E_nuc = 1/1.4).
func TestH2Anchor(t *testing.T) {
	g := molecule.New()
	g.AddAtom(1, 0, 0, 0)
	g.AddAtom(1, 0, 0, 1.4)
	res := runRHF(t, g, "sto-3g", false)
	if math.Abs(res.Energy-(-1.1167)) > 1e-4 {
		t.Errorf("H2/STO-3G E = %.6f, want −1.1167", res.Energy)
	}
	if res.NOcc != 1 {
		t.Errorf("NOcc = %d, want 1", res.NOcc)
	}
}

// Water/STO-3G at the experimental geometry: E ≈ −74.9630 Ha.
func TestWaterAnchor(t *testing.T) {
	res := runRHF(t, molecule.Water(), "sto-3g", false)
	if math.Abs(res.Energy-(-74.963)) > 5e-3 {
		t.Errorf("H2O/STO-3G E = %.5f, want ≈ −74.963", res.Energy)
	}
}

// The RI energy must track the conventional energy closely, and improve
// as the auxiliary basis grows.
func TestRIMatchesConventional(t *testing.T) {
	g := molecule.Water()
	conv := runRHF(t, g, "sto-3g", false)
	bs, _ := basis.Build("sto-3g", g)

	small, err := RHF(g, bs, Options{UseRI: true, AuxOpts: basis.AuxOptions{PerL: []int{4, 3, 2}}})
	if err != nil {
		t.Fatal(err)
	}
	large, err := RHF(g, bs, Options{UseRI: true, AuxOpts: basis.AuxOptions{PerL: []int{12, 9, 7}}})
	if err != nil {
		t.Fatal(err)
	}
	errSmall := math.Abs(small.Energy - conv.Energy)
	errLarge := math.Abs(large.Energy - conv.Energy)
	if errLarge > 2e-3 {
		t.Errorf("RI(large aux) error %.2e > 2e-3 Ha", errLarge)
	}
	if errLarge > errSmall+1e-6 {
		t.Errorf("larger aux basis did not improve RI error: %.2e vs %.2e", errLarge, errSmall)
	}
}

// Density matrix invariants: idempotency D S D = 2 D, trace = N electrons.
func TestDensityInvariants(t *testing.T) {
	g := molecule.Water()
	res := runRHF(t, g, "sto-3g", true)
	ds := linalg.MatMul(linalg.NoTrans, linalg.NoTrans, res.D, res.S)
	tr := ds.Trace()
	if math.Abs(tr-float64(g.NumElectrons())) > 1e-8 {
		t.Errorf("tr(DS) = %.8f, want %d", tr, g.NumElectrons())
	}
	dsd := linalg.MatMul(linalg.NoTrans, linalg.NoTrans, ds, res.D)
	for i := range dsd.Data {
		if math.Abs(dsd.Data[i]-2*res.D.Data[i]) > 1e-7 {
			t.Fatal("density not idempotent: DSD != 2D")
		}
	}
}

// Orbital energies must satisfy the aufbau gap and Koopmans sanity
// (HOMO below zero for a stable closed-shell molecule).
func TestOrbitalEnergies(t *testing.T) {
	res := runRHF(t, molecule.Water(), "sto-3g", false)
	homo := res.Eps[res.NOcc-1]
	lumo := res.Eps[res.NOcc]
	if homo >= lumo {
		t.Errorf("HOMO %.4f >= LUMO %.4f", homo, lumo)
	}
	if homo > 0 {
		t.Errorf("HOMO %.4f > 0 for water", homo)
	}
}

// fdGradient computes the central-difference gradient of the total HF
// energy for the given backend.
func fdGradient(t *testing.T, g *molecule.Geometry, useRI bool, auxOpts basis.AuxOptions, h float64) []float64 {
	t.Helper()
	energy := func(gg *molecule.Geometry) float64 {
		bs, err := basis.Build("sto-3g", gg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RHF(gg, bs, Options{UseRI: useRI, AuxOpts: auxOpts, ConvE: 1e-12, ConvErr: 1e-10})
		if err != nil {
			t.Fatal(err)
		}
		return res.Energy
	}
	grad := make([]float64, 3*g.N())
	for i := range g.Atoms {
		for d := 0; d < 3; d++ {
			gp := g.Clone()
			gp.Atoms[i].Pos[d] += h
			gm := g.Clone()
			gm.Atoms[i].Pos[d] -= h
			grad[3*i+d] = (energy(gp) - energy(gm)) / (2 * h)
		}
	}
	return grad
}

// The injected guess density (warm start) must not change the converged
// result — only shrink the iteration count. Checked on both Fock-build
// back ends, starting from the converged density of a slightly
// different geometry, as in consecutive AIMD steps.
func TestGuessDensityWarmStart(t *testing.T) {
	g := molecule.Water()
	for _, useRI := range []bool{false, true} {
		bs, _ := basis.Build("sto-3g", g)
		prev, err := RHF(g, bs, Options{UseRI: useRI})
		if err != nil {
			t.Fatal(err)
		}
		moved := g.Clone()
		moved.Atoms[0].Pos[0] += 0.01
		moved.Atoms[2].Pos[1] -= 0.008
		bs2, _ := basis.Build("sto-3g", moved)
		cold, err := RHF(moved, bs2, Options{UseRI: useRI})
		if err != nil {
			t.Fatal(err)
		}
		warm, err := RHF(moved, bs2, Options{UseRI: useRI, GuessDensity: prev.D})
		if err != nil {
			t.Fatal(err)
		}
		if !warm.Converged {
			t.Fatalf("useRI=%v: warm-started SCF did not converge", useRI)
		}
		if d := math.Abs(warm.Energy - cold.Energy); d > 1e-8 {
			t.Errorf("useRI=%v: warm energy deviates by %.2e Ha", useRI, d)
		}
		if warm.Iters >= cold.Iters {
			t.Errorf("useRI=%v: warm iters %d not below cold %d", useRI, warm.Iters, cold.Iters)
		}
		// Supplying the MO coefficients alongside the density (the fast
		// path that skips the spectral decomposition) must behave the
		// same: C·Cᵀ over the occupied block equals D/2 exactly.
		warmC, err := RHF(moved, bs2, Options{UseRI: useRI, GuessDensity: prev.D, GuessC: prev.C})
		if err != nil {
			t.Fatal(err)
		}
		if d := math.Abs(warmC.Energy - cold.Energy); d > 1e-8 {
			t.Errorf("useRI=%v: GuessC warm energy deviates by %.2e Ha", useRI, d)
		}
		if warmC.Iters >= cold.Iters {
			t.Errorf("useRI=%v: GuessC warm iters %d not below cold %d", useRI, warmC.Iters, cold.Iters)
		}
	}
}

// A wrongly-dimensioned guess must be ignored, not crash or corrupt.
func TestGuessDensityDimensionMismatch(t *testing.T) {
	g := molecule.Water()
	bs, _ := basis.Build("sto-3g", g)
	bad := linalg.NewMat(2, 2)
	res, err := RHF(g, bs, Options{UseRI: true, GuessDensity: bad})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Energy-(-74.963)) > 5e-3 {
		t.Errorf("energy %.5f with ignored guess, want ≈ −74.963", res.Energy)
	}
}

func TestConventionalGradientFD(t *testing.T) {
	if testing.Short() {
		t.Skip("finite-difference gradient of conventional SCF is slow; run without -short")
	}
	g := molecule.Water()
	bs, _ := basis.Build("sto-3g", g)
	res, err := RHF(g, bs, Options{ConvE: 1e-12, ConvErr: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Gradient()
	want := fdGradient(t, g, false, basis.AuxOptions{}, 1e-4)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 5e-7 {
			t.Errorf("conventional grad[%d]: analytic %.9f vs FD %.9f", i, got[i], want[i])
		}
	}
}

func TestRIGradientFD(t *testing.T) {
	g := molecule.Water()
	auxOpts := basis.AuxOptions{PerL: []int{5, 4, 3}}
	bs, _ := basis.Build("sto-3g", g)
	res, err := RHF(g, bs, Options{UseRI: true, AuxOpts: auxOpts, ConvE: 1e-12, ConvErr: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Gradient()
	// FD of the *same RI functional*: analytic and FD must agree to FD
	// accuracy, independent of auxiliary basis quality.
	want := fdGradient(t, g, true, auxOpts, 1e-4)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 5e-7 {
			t.Errorf("RI grad[%d]: analytic %.9f vs FD %.9f", i, got[i], want[i])
		}
	}
}

// The gradient of a rigid system must sum to zero (no net force).
func TestGradientTranslationalSumRule(t *testing.T) {
	g := molecule.WaterDimer(3.0)
	bs, _ := basis.Build("sto-3g", g)
	res, err := RHF(g, bs, Options{UseRI: true})
	if err != nil {
		t.Fatal(err)
	}
	grad := res.Gradient()
	for d := 0; d < 3; d++ {
		var s float64
		for i := 0; i < g.N(); i++ {
			s += grad[3*i+d]
		}
		if math.Abs(s) > 1e-7 {
			t.Errorf("net force along %d = %.2e, want 0", d, s)
		}
	}
}

func TestOddElectronRejected(t *testing.T) {
	g := molecule.New()
	g.AddAtom(1, 0, 0, 0)
	bs, _ := basis.Build("sto-3g", g)
	if _, err := RHF(g, bs, Options{}); err == nil {
		t.Fatal("expected error for odd electron count")
	}
}
