// Package scf implements restricted closed-shell Hartree-Fock with two
// Fock-build back ends:
//
//   - RI-HF (paper Eq. 8): the two-electron integrals are factorised
//     through an auxiliary basis, B^P_μν = Σ_Q (μν|Q) J^{-1/2}_QP, and
//     both Coulomb and exchange matrices become short sequences of
//     GEMMs routed through the runtime auto-tuner. No four-center
//     integrals are computed anywhere on this path.
//   - Conventional direct SCF: recomputed four-center integrals with
//     Schwarz screening — the baseline whose elimination is the paper's
//     innovation (ii), retained for Fig. 3 and Table III comparisons.
//
// Analytic nuclear gradients are provided for both paths (gradient.go).
package scf

import (
	"errors"
	"fmt"
	"math"

	"github.com/fragmd/fragmd/internal/autotune"
	"github.com/fragmd/fragmd/internal/basis"
	"github.com/fragmd/fragmd/internal/integrals"
	"github.com/fragmd/fragmd/internal/linalg"
	"github.com/fragmd/fragmd/internal/molecule"
)

// Options configures an SCF run.
type Options struct {
	// UseRI selects the RI-HF Fock build; false means conventional
	// direct SCF with four-center integrals.
	UseRI bool
	// StoredERI keeps the full (μν|λσ) tensor in memory on the
	// conventional path (in-core SCF) instead of recomputing integrals
	// every iteration — the classic small-molecule CPU-package mode used
	// as the Table III baseline. Ignored when UseRI is set.
	StoredERI bool
	// AuxOpts controls auxiliary basis generation for the RI path.
	AuxOpts basis.AuxOptions
	// MaxIter bounds the SCF iterations (default 128).
	MaxIter int
	// ConvE is the energy convergence threshold (default 1e-10 Ha).
	ConvE float64
	// ConvErr is the threshold on the max |FDS−SDF| element
	// (default 1e-8).
	ConvErr float64
	// DIISLen is the DIIS history length (default 8).
	DIISLen int
	// SchwarzThresh screens shell quartets on the conventional path
	// (default 1e-12).
	SchwarzThresh float64
	// RIScreenThresh is the Cauchy–Schwarz threshold for three-center
	// (μν|P) generation on the RI path: bra shell pairs whose bound
	// Q_μν·Q_P falls below it are skipped, so distant-pair integral
	// work vanishes while retained integrals stay exact (max elementwise
	// error below the threshold). 0 selects the 1e-12 default; any
	// negative value disables screening entirely.
	RIScreenThresh float64
	// Tuner routes GEMMs; nil uses autotune.Default.
	Tuner *autotune.Tuner
	// Precision selects the packed-panel storage precision for the
	// bandwidth-bound RI contractions (the B-tensor build and the
	// exchange build). linalg.F32 stores packed GEMM panels in float32
	// with float64 accumulation — each operand carries one ≤2⁻²⁴
	// relative rounding, bounding the converged-energy deviation near
	// 1e-7 relative (see DESIGN.md §11). The default F64 is exact.
	// Small matvec-like GEMMs and the DIIS algebra stay full f64 either
	// way.
	Precision linalg.Precision
	// GuessDensity, when non-nil and dimensioned nbf×nbf, replaces the
	// core-Hamiltonian initial guess — the warm-start path for AIMD,
	// where the previous step's converged density of the same fragment
	// is an excellent starting point. The SCF still iterates to the
	// configured thresholds, so the converged result is unchanged;
	// only the iteration count drops.
	GuessDensity *linalg.Mat
	// GuessC optionally supplies the MO coefficients the guess density
	// was built from; its occupied block then seeds the RI exchange
	// build directly. Without it the occupied factor is recovered from
	// the density's spectral decomposition (an O(nbf³) EigSym), which
	// is exact for any D of the 2·C·Cᵀ form. Ignored unless
	// GuessDensity is set.
	GuessC *linalg.Mat
	// EmbedCharges places the SCF in an external point-charge field
	// (electrostatic embedding, EE-MBE phase 2): the electron–field
	// attraction joins the core Hamiltonian and the classical
	// nuclear–field interaction the total energy (Result.EField). The
	// charge–charge energy among the field sites is never included.
	// Gradients gain analytic contributions on both the atoms and the
	// field sites (Result.Gradients), treating the charge *values* as
	// geometry-independent constants.
	EmbedCharges *integrals.PointCharges
}

func (o *Options) fill() {
	if o.MaxIter == 0 {
		o.MaxIter = 128
	}
	if o.ConvE == 0 {
		o.ConvE = 1e-10
	}
	if o.ConvErr == 0 {
		o.ConvErr = 1e-8
	}
	if o.DIISLen == 0 {
		o.DIISLen = 8
	}
	if o.SchwarzThresh == 0 {
		o.SchwarzThresh = 1e-12
	}
	if o.RIScreenThresh == 0 {
		o.RIScreenThresh = 1e-12
	}
	if o.Tuner == nil {
		o.Tuner = autotune.Default
	}
	// The mixed-precision Fock build floors the attainable DIIS residual
	// near the float32 storage quantisation: the packed-panel rounding is
	// deterministic but non-smooth in the density, so the error vector
	// stalls around ~2⁻²⁴·‖F‖ no matter how many iterations run. Clamp
	// the convergence thresholds to that noise floor rather than spinning
	// to MaxIter and failing.
	if o.Precision == linalg.F32 {
		if o.ConvE < 1e-8 {
			o.ConvE = 1e-8
		}
		if o.ConvErr < 1e-6 {
			o.ConvErr = 1e-6
		}
	}
}

// Result holds a converged SCF state plus the intermediates retained for
// the MP2 stage (the paper avoids recomputing three-center integrals by
// keeping B resident; we do the same).
type Result struct {
	Energy float64 // total HF energy (Ha), including EField
	Eelec  float64
	Enuc   float64
	// EField is the classical nuclear–field interaction energy when
	// Options.EmbedCharges is set (0 in vacuum); the electron–field
	// attraction is part of Eelec through the core Hamiltonian.
	EField    float64
	C         *linalg.Mat // MO coefficients, columns are orbitals
	Eps       []float64   // orbital energies, ascending
	D         *linalg.Mat // AO density, occupation-2 convention
	NOcc      int
	Converged bool
	Iters     int

	Geom *molecule.Geometry
	Bs   *basis.Set
	S    *linalg.Mat
	H    *linalg.Mat

	// RI intermediates (nil on the conventional path).
	Aux      *basis.Set
	V3       *linalg.Tensor3 // raw (P|μν)
	J2       *linalg.Mat     // (P|Q)
	JInvHalf *linalg.Mat     // J^{-1/2}
	B        *linalg.Tensor3 // B^P_μν = Σ_Q J^{-1/2}_PQ (Q|μν)

	// Schwarz holds the shell-pair Cauchy–Schwarz bounds: always set on
	// the conventional path, and on the RI path whenever three-center
	// screening is enabled (Options.RIScreenThresh > 0).
	Schwarz *linalg.Mat
	// ERI is the stored four-center tensor when Options.StoredERI was
	// set (reused by the conventional-MP2 baseline).
	ERI []float64

	opts   Options
	ctilde *linalg.Tensor3 // lazy J^{-1}·(Q|μν) cache (gradient.go)
}

// Opts returns the options the SCF was run with (for downstream reuse).
func (r *Result) Opts() Options { return r.opts }

// NVirt returns the number of virtual orbitals.
func (r *Result) NVirt() int { return r.Bs.N - r.NOcc }

// COcc returns the occupied-orbital coefficient block (nbf × nocc).
func (r *Result) COcc() *linalg.Mat {
	c := linalg.NewMat(r.Bs.N, r.NOcc)
	for mu := 0; mu < r.Bs.N; mu++ {
		copy(c.Row(mu), r.C.Row(mu)[:r.NOcc])
	}
	return c
}

// CVirt returns the virtual-orbital coefficient block (nbf × nvirt).
func (r *Result) CVirt() *linalg.Mat {
	nv := r.NVirt()
	c := linalg.NewMat(r.Bs.N, nv)
	for mu := 0; mu < r.Bs.N; mu++ {
		copy(c.Row(mu), r.C.Row(mu)[r.NOcc:])
	}
	return c
}

// RHF runs a restricted closed-shell Hartree-Fock calculation.
func RHF(g *molecule.Geometry, bs *basis.Set, opts Options) (*Result, error) {
	opts.fill()
	nelec := g.NumElectrons()
	if nelec%2 != 0 {
		return nil, fmt.Errorf("scf: odd electron count %d (closed-shell RHF only)", nelec)
	}
	nocc := nelec / 2
	if nocc > bs.N {
		return nil, fmt.Errorf("scf: %d occupied orbitals exceed %d basis functions", nocc, bs.N)
	}

	res := &Result{Geom: g, Bs: bs, NOcc: nocc, Enuc: g.NuclearRepulsion(), opts: opts}
	res.S = integrals.Overlap(bs)
	res.H = integrals.Hcore(bs, g)
	if pc := opts.EmbedCharges; pc.N() > 0 {
		res.H.AxpyMat(1, integrals.PointChargeMatrix(bs, pc))
		res.EField = integrals.NuclearFieldEnergy(g, pc)
	}
	x := linalg.InvSqrtSym(res.S, 1e-10)

	var fockBuild func(d *linalg.Mat, co *linalg.Mat) *linalg.Mat
	if opts.UseRI {
		res.Aux = basis.BuildAux(bs, g, opts.AuxOpts)
		if th := opts.RIScreenThresh; th > 0 {
			res.Schwarz = integrals.SchwarzShellPairs(bs)
			res.V3 = integrals.ThreeCenterScreened(bs, res.Aux, res.Schwarz, th)
		} else {
			res.V3 = integrals.ThreeCenter(bs, res.Aux)
		}
		res.J2 = integrals.TwoCenter(res.Aux)
		res.JInvHalf = linalg.InvSqrtSym(res.J2, 1e-10)
		res.B = linalg.NewTensor3(res.Aux.N, bs.N, bs.N)
		// The B-build stays exact even under Options.Precision = F32:
		// J^{-1/2} has large entries whenever the RI metric is
		// ill-conditioned, so float32 panel quantisation here is
		// amplified by the metric's condition number and lands ~mHa
		// errors in the Coulomb energy (measured on the water-trimer
		// golden). It is also a one-time contraction — the bandwidth-
		// bound per-iteration work the mixed-precision path targets is
		// the exchange build below and the MP2 transforms.
		opts.Tuner.Gemm(linalg.NoTrans, linalg.NoTrans, 1, res.JInvHalf, res.V3.Flatten(), 0, res.B.Flatten())
		fockBuild = func(d, co *linalg.Mat) *linalg.Mat {
			return res.riFock(d, co, opts.Tuner, opts.Precision)
		}
	} else if opts.StoredERI {
		res.Schwarz = integrals.SchwarzShellPairs(bs)
		eri := integrals.FourCenterAll(bs)
		res.ERI = eri
		n := bs.N
		fockBuild = func(d, co *linalg.Mat) *linalg.Mat {
			f := res.H.Clone()
			for mu := 0; mu < n; mu++ {
				for nu := 0; nu < n; nu++ {
					var s float64
					base := (mu*n + nu) * n * n
					for la := 0; la < n; la++ {
						dRow := d.Row(la)
						kBase := ((mu*n+la)*n + nu) * n
						jRow := eri[base+la*n : base+la*n+n]
						kRow := eri[kBase : kBase+n]
						for si := 0; si < n; si++ {
							s += dRow[si] * (jRow[si] - 0.5*kRow[si])
						}
					}
					f.Add(mu, nu, s)
				}
			}
			return f
		}
	} else {
		res.Schwarz = integrals.SchwarzShellPairs(bs)
		fockBuild = func(d, co *linalg.Mat) *linalg.Mat {
			g2 := integrals.FockDirect(bs, d, res.Schwarz, opts.SchwarzThresh)
			f := res.H.Clone()
			f.AxpyMat(1, g2)
			return f
		}
	}

	// Initial guess: injected density (warm start) or core Hamiltonian.
	var c, d, co *linalg.Mat
	var eps []float64
	if gd := opts.GuessDensity; gd != nil && gd.Rows == bs.N && gd.Cols == bs.N {
		d = gd.Clone()
		if gc := opts.GuessC; gc != nil && gc.Rows == bs.N && gc.Cols >= nocc {
			co = occBlock(gc, nocc)
		} else {
			co = occFromDensity(d, nocc)
		}
	} else {
		c, eps = solveFock(res.H, x)
		d = densityFromC(c, nocc)
		co = occBlock(c, nocc)
	}

	diis := newDIIS(opts.DIISLen)
	var ePrev float64
	for iter := 1; iter <= opts.MaxIter; iter++ {
		f := fockBuild(d, co)
		eElec := 0.5 * (linalg.Dot(d, res.H) + linalg.Dot(d, f))

		// DIIS error FDS − SDF, routed through the tuner so the nbf²
		// shapes join the per-shape engine arbitration.
		fd := opts.Tuner.MatMul(linalg.NoTrans, linalg.NoTrans, f, d)
		fds := opts.Tuner.MatMul(linalg.NoTrans, linalg.NoTrans, fd, res.S)
		sd := opts.Tuner.MatMul(linalg.NoTrans, linalg.NoTrans, res.S, d)
		sdf := opts.Tuner.MatMul(linalg.NoTrans, linalg.NoTrans, sd, f)
		errMat := fds.Clone()
		errMat.AxpyMat(-1, sdf)
		maxErr := errMat.MaxAbs()

		f = diis.extrapolate(f, errMat)
		c, eps = solveFock(f, x)
		d = densityFromC(c, nocc)
		co = occBlock(c, nocc)

		if math.Abs(eElec-ePrev) < opts.ConvE && maxErr < opts.ConvErr {
			res.Eelec = eElec
			res.Energy = eElec + res.Enuc + res.EField
			res.C = c
			res.Eps = eps
			res.D = d
			res.Converged = true
			res.Iters = iter
			return res, nil
		}
		ePrev = eElec
	}
	res.Converged = false
	res.Iters = opts.MaxIter
	res.C = c
	res.Eps = eps
	res.D = d
	res.Eelec = ePrev
	res.Energy = ePrev + res.Enuc + res.EField
	return res, errors.New("scf: not converged")
}

// riFock builds F = h + J − ½K from the resident B tensor with GEMMs
// (paper Eq. 8). co is the occupied coefficient block. prec applies to
// the exchange-build GEMMs only; the Coulomb matvecs are tiny and stay
// exact.
func (r *Result) riFock(d, co *linalg.Mat, tuner *autotune.Tuner, prec linalg.Precision) *linalg.Mat {
	nbf := r.Bs.N
	naux := r.Aux.N
	nocc := co.Cols

	// Coulomb: u_P = Σ_μν B_Pμν D_μν ; J_μν = Σ_P B_Pμν u_P.
	dvec := &linalg.Mat{Rows: nbf * nbf, Cols: 1, Data: d.Data}
	u := linalg.NewMat(naux, 1)
	tuner.Gemm(linalg.NoTrans, linalg.NoTrans, 1, r.B.Flatten(), dvec, 0, u)
	jvec := linalg.NewMat(nbf*nbf, 1)
	tuner.Gemm(linalg.Trans, linalg.NoTrans, 1, r.B.Flatten(), u, 0, jvec)

	// Exchange: T_P = B_P · C_occ ; K = M Mᵀ with M_μ,(P,i) = T_P μi.
	m := linalg.NewMat(nbf, naux*nocc)
	tp := linalg.NewMat(nbf, nocc)
	for p := 0; p < naux; p++ {
		tuner.GemmPrec(prec, linalg.NoTrans, linalg.NoTrans, 1, r.B.Slice(p), co, 0, tp)
		for mu := 0; mu < nbf; mu++ {
			copy(m.Row(mu)[p*nocc:(p+1)*nocc], tp.Row(mu))
		}
	}
	k := linalg.NewMat(nbf, nbf)
	tuner.GemmPrec(prec, linalg.NoTrans, linalg.Trans, 1, m, m, 0, k)

	// M Mᵀ = Σ_P B_P (C_o C_oᵀ) B_P = ½ K[D] since D = 2 C_o C_oᵀ, so the
	// −½K[D] exchange term is −1·(M Mᵀ).
	f := r.H.Clone()
	for i := range f.Data {
		f.Data[i] += jvec.Data[i] - k.Data[i]
	}
	return f
}

// solveFock diagonalises F in the orthonormalised basis: F' = XᵀFX,
// C = X C'. Returns MO coefficients and energies (ascending).
func solveFock(f, x *linalg.Mat) (*linalg.Mat, []float64) {
	fx := linalg.MatMul(linalg.NoTrans, linalg.NoTrans, f, x)
	fp := linalg.MatMul(linalg.Trans, linalg.NoTrans, x, fx)
	fp.Sym()
	eps, cp := linalg.EigSym(fp)
	c := linalg.MatMul(linalg.NoTrans, linalg.NoTrans, x, cp)
	return c, eps
}

// densityFromC returns D = 2 Σ_i^occ C_i C_iᵀ.
func densityFromC(c *linalg.Mat, nocc int) *linalg.Mat {
	n := c.Rows
	d := linalg.NewMat(n, n)
	for mu := 0; mu < n; mu++ {
		for nu := 0; nu < n; nu++ {
			var s float64
			for i := 0; i < nocc; i++ {
				s += c.At(mu, i) * c.At(nu, i)
			}
			d.Set(mu, nu, 2*s)
		}
	}
	return d
}

// occFromDensity recovers an occupied-orbital factor from an AO density:
// D = 2·C_o·C_oᵀ has rank nocc, so its spectral decomposition D = U Λ Uᵀ
// yields C'_o = U·sqrt(Λ/2) over the top nocc eigenvalues with
// C'_o C'_oᵀ = D/2 exactly. Any such factor builds the same Fock matrix
// (J and K depend on D only), so the guess density alone suffices for
// the RI exchange path.
func occFromDensity(d *linalg.Mat, nocc int) *linalg.Mat {
	w, v := linalg.EigSym(d) // ascending eigenvalues
	n := d.Rows
	co := linalg.NewMat(n, nocc)
	for i := 0; i < nocc; i++ {
		col := n - 1 - i // largest eigenvalues last
		lam := w[col]
		if lam < 0 {
			lam = 0
		}
		s := math.Sqrt(lam / 2)
		for mu := 0; mu < n; mu++ {
			co.Set(mu, i, s*v.At(mu, col))
		}
	}
	return co
}

func occBlock(c *linalg.Mat, nocc int) *linalg.Mat {
	o := linalg.NewMat(c.Rows, nocc)
	for mu := 0; mu < c.Rows; mu++ {
		copy(o.Row(mu), c.Row(mu)[:nocc])
	}
	return o
}

// diis implements Pulay's direct inversion in the iterative subspace.
type diis struct {
	maxLen int
	focks  []*linalg.Mat
	errs   []*linalg.Mat
}

func newDIIS(n int) *diis { return &diis{maxLen: n} }

// extrapolate mixes the Fock history to minimise the residual norm.
// On any numerical failure it returns the input Fock unchanged.
func (d *diis) extrapolate(f, errMat *linalg.Mat) *linalg.Mat {
	d.focks = append(d.focks, f.Clone())
	d.errs = append(d.errs, errMat.Clone())
	if len(d.focks) > d.maxLen {
		d.focks = d.focks[1:]
		d.errs = d.errs[1:]
	}
	n := len(d.focks)
	if n < 2 {
		return f
	}
	// Build the DIIS system with the Lagrange row/column.
	b := linalg.NewMat(n+1, n+1)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b.Set(i, j, linalg.Dot(d.errs[i], d.errs[j]))
		}
		b.Set(i, n, -1)
		b.Set(n, i, -1)
	}
	rhs := linalg.NewMat(n+1, 1)
	rhs.Set(n, 0, -1)
	sol, err := linalg.Solve(b, rhs)
	if err != nil {
		return f
	}
	out := linalg.NewMat(f.Rows, f.Cols)
	for i := 0; i < n; i++ {
		out.AxpyMat(sol.At(i, 0), d.focks[i])
	}
	return out
}
