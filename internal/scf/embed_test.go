package scf

import (
	"math"
	"testing"

	"github.com/fragmd/fragmd/internal/racecheck"

	"github.com/fragmd/fragmd/internal/basis"
	"github.com/fragmd/fragmd/internal/integrals"
	"github.com/fragmd/fragmd/internal/molecule"
)

// embedField places three charges of mixed sign a few Bohr from the
// water molecule.
func embedField() *integrals.PointCharges {
	return &integrals.PointCharges{
		Pos: []float64{
			4.0, 0.5, -0.3,
			-3.5, 2.0, 1.0,
			0.7, -4.2, 2.5,
		},
		Q: []float64{0.4, -0.3, 0.25},
	}
}

// An empty field must reproduce the vacuum SCF bit-for-bit; a real
// field must polarise the density and shift the energy.
func TestEmbeddedSCFAgainstVacuum(t *testing.T) {
	g := molecule.Water()
	bs, _ := basis.Build("sto-3g", g)
	vac, err := RHF(g, bs, Options{UseRI: true})
	if err != nil {
		t.Fatal(err)
	}
	empty, err := RHF(g, bs, Options{UseRI: true, EmbedCharges: &integrals.PointCharges{}})
	if err != nil {
		t.Fatal(err)
	}
	// Separate runs are not bitwise identical (the timing-based GEMM
	// auto-tuner may reassociate sums), so compare at noise level.
	if math.Abs(empty.Energy-vac.Energy) > 1e-10 || empty.EField != 0 {
		t.Fatalf("empty field changed the SCF: %.12f vs %.12f", empty.Energy, vac.Energy)
	}
	emb, err := RHF(g, bs, Options{UseRI: true, EmbedCharges: embedField()})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(emb.Energy-vac.Energy) < 1e-6 {
		t.Errorf("field left the energy unchanged: %.10f", emb.Energy)
	}
	// The induction (density relaxation) must lower the embedded energy
	// below the frozen-density estimate E_vac + tr(D_vac·V^pc) + EField.
	frozen := vac.Energy + emb.EField
	vpc := integrals.PointChargeMatrix(bs, embedField())
	for i := range vpc.Data {
		frozen += vac.D.Data[i] * vpc.Data[i]
	}
	if emb.Energy > frozen+1e-10 {
		t.Errorf("embedded energy %.10f above frozen-density bound %.10f", emb.Energy, frozen)
	}
}

// Central-difference validation of the embedded gradient on both Fock
// back ends: atoms and field sites, charges held fixed.
func TestEmbeddedGradientFD(t *testing.T) {
	if racecheck.Enabled {
		t.Skip("pure-numerical suite; adds no race coverage and is slow under -race")
	}
	g := molecule.Water()
	pc := embedField()
	for _, useRI := range []bool{true, false} {
		opts := Options{UseRI: useRI, EmbedCharges: pc, ConvE: 1e-12, ConvErr: 1e-10}
		if useRI {
			opts.AuxOpts = basis.AuxOptions{PerL: []int{5, 4, 3}}
		}
		energy := func(gg *molecule.Geometry, field *integrals.PointCharges) float64 {
			bb, err := basis.Build("sto-3g", gg)
			if err != nil {
				t.Fatal(err)
			}
			o := opts
			o.EmbedCharges = field
			res, err := RHF(gg, bb, o)
			if err != nil {
				t.Fatal(err)
			}
			return res.Energy
		}
		bs, _ := basis.Build("sto-3g", g)
		res, err := RHF(g, bs, opts)
		if err != nil {
			t.Fatal(err)
		}
		grad, siteGrad := res.Gradients()
		if len(siteGrad) != 3*pc.N() {
			t.Fatalf("useRI=%v: site gradient length %d", useRI, len(siteGrad))
		}
		// All components on the RI path; a representative subset on the
		// slower conventional path keeps the suite -short-compatible.
		atomIdx := []int{0, 1, 2, 3, 4, 5, 6, 7, 8}
		siteIdx := []int{0, 1, 2, 3, 4, 5, 6, 7, 8}
		if !useRI {
			atomIdx = []int{0, 4, 8}
			siteIdx = []int{1, 5}
		}
		const h = 1e-4
		for _, idx := range atomIdx {
			gp, gm := g.Clone(), g.Clone()
			gp.Atoms[idx/3].Pos[idx%3] += h
			gm.Atoms[idx/3].Pos[idx%3] -= h
			fd := (energy(gp, pc) - energy(gm, pc)) / (2 * h)
			if math.Abs(fd-grad[idx]) > 1e-6 {
				t.Errorf("useRI=%v atom grad[%d]: analytic %.9f vs FD %.9f", useRI, idx, grad[idx], fd)
			}
		}
		for _, idx := range siteIdx {
			pp, pm := pc.Clone(), pc.Clone()
			pp.Pos[idx] += h
			pm.Pos[idx] -= h
			fd := (energy(g, pp) - energy(g, pm)) / (2 * h)
			if math.Abs(fd-siteGrad[idx]) > 1e-6 {
				t.Errorf("useRI=%v site grad[%d]: analytic %.9f vs FD %.9f", useRI, idx, siteGrad[idx], fd)
			}
		}
	}
}

// Mulliken charges must sum to the total molecular charge (zero for
// neutral water) and put the negative end on oxygen.
func TestMullikenCharges(t *testing.T) {
	g := molecule.Water()
	bs, _ := basis.Build("sto-3g", g)
	res, err := RHF(g, bs, Options{UseRI: true})
	if err != nil {
		t.Fatal(err)
	}
	q := res.MullikenCharges()
	var sum float64
	for _, v := range q {
		sum += v
	}
	if math.Abs(sum) > 1e-8 {
		t.Errorf("Mulliken charges sum to %.2e, want 0", sum)
	}
	if q[0] >= 0 {
		t.Errorf("oxygen Mulliken charge %.4f not negative", q[0])
	}
	for i := 1; i < 3; i++ {
		if q[i] <= 0 {
			t.Errorf("hydrogen %d Mulliken charge %.4f not positive", i, q[i])
		}
	}
}
