package linalg

// On arm64 Advanced SIMD (NEON) is architectural baseline — every
// AArch64 core has 128-bit vector FMA — so no runtime probing is
// needed: the NEON kernel is installed unconditionally.
func init() {
	cpuFeatures = joinFeatures([]string{"neon"})
	asmKernel = &neonKernel
}
