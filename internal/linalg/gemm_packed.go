package linalg

import (
	"runtime"
	"sync"
)

// gemmPacked executes C += alpha·op(A)·op(B) via the packed,
// register-blocked engine. Both operand transposes are folded into the
// packing step, so all four variants (NN/NT/TN/TT) reach the same
// orientation-free micro-kernel — the packed path has no variant spread
// by construction.
//
// Decomposition (Goto/BLIS): C is tiled into a 2D grid of
// mcBlock×ncBlock macro-tiles. Each tile is an independent task — the
// parallel unit is the tile grid, not raw row ranges — and every task
// owns disjoint elements of C, so no synchronisation is needed beyond
// the final join. Within a task the inner dimension is swept in kcBlock
// panels: pack A tile, pack B tile, then run the mr×nr micro-kernel
// over the packed panels.
//
// beta is assumed already applied to C by the caller (Gemm does this
// before dispatch), and alpha must be non-zero.
func gemmPacked(tA, tB Transpose, alpha float64, a, b, c *Mat) {
	m, n := c.Rows, c.Cols
	k := a.Cols
	if tA {
		k = a.Rows
	}

	nIC := (m + mcBlock - 1) / mcBlock
	nJC := (n + ncBlock - 1) / ncBlock
	tiles := nIC * nJC

	task := func(tile int) {
		ic, jc := tile/nJC, tile%nJC
		i0 := ic * mcBlock
		mc := m - i0
		if mc > mcBlock {
			mc = mcBlock
		}
		j0 := jc * ncBlock
		nc := n - j0
		if nc > ncBlock {
			nc = ncBlock
		}

		buf := packPool.Get().(*packBuf)
		for l0 := 0; l0 < k; l0 += kcBlock {
			kc := k - l0
			if kc > kcBlock {
				kc = kcBlock
			}
			packA(buf.a, a, tA, i0, mc, l0, kc)
			packB(buf.b, b, tB, l0, kc, j0, nc)

			// A micro-panel outer, B micro-panel inner: the kc×mr A
			// panel stays L1-resident across the jp sweep while the
			// narrower kc×nr B panels stream from L2 — half the cold
			// traffic per micro-kernel call of the opposite nesting.
			mPanels := (mc + mr - 1) / mr
			for ip := 0; ip < mPanels; ip++ {
				pap := buf.a[ip*kc*mr:]
				ii := i0 + ip*mr
				me := mc - ip*mr
				if me > mr {
					me = mr
				}
				microKernelRow(kc, pap, buf.b, alpha, c, ii, j0, me, nc)
			}
		}
		packPool.Put(buf)
	}

	nw := 1
	if int64(m)*int64(n)*int64(k) > parallelThreshold {
		nw = runtime.GOMAXPROCS(0)
		if nw > tiles {
			nw = tiles
		}
	}
	if nw <= 1 {
		for t := 0; t < tiles; t++ {
			task(t)
		}
		return
	}
	var wg sync.WaitGroup
	var next sync.Mutex
	cursor := 0
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				next.Lock()
				t := cursor
				cursor++
				next.Unlock()
				if t >= tiles {
					return
				}
				task(t)
			}
		}()
	}
	wg.Wait()
}
