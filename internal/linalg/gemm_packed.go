package linalg

import (
	"runtime"
	"sync"
)

// gemmPacked executes C += alpha·op(A)·op(B) via the packed,
// register-blocked engine. Both operand transposes are folded into the
// packing step, so all four variants (NN/NT/TN/TT) reach the same
// orientation-free micro-kernel — the packed path has no variant spread
// by construction.
//
// Decomposition (Goto/BLIS): C is tiled into a 2D grid of mc×nc
// macro-tiles (sizes from the active kernelImpl). Each tile is an
// independent task — the parallel unit is the tile grid, not raw row
// ranges — and every task owns disjoint elements of C, so no
// synchronisation is needed beyond the final join. Within a task the
// inner dimension is swept in kc panels: pack A tile, pack B tile, then
// run the mr×nr micro-kernel over the packed panels.
//
// The micro-kernel itself is resolved once per call through
// activeKernel(): the CPU-specific assembly kernel when the feature
// detection installed one (and SetAsmEnabled/FRAGMD_NOASM has not
// disabled it), the portable Go kernel otherwise.
//
// beta is assumed already applied to C by the caller (Gemm does this
// before dispatch), and alpha must be non-zero.
func gemmPacked(tA, tB Transpose, alpha float64, a, b, c *Mat) {
	impl := activeKernel()
	kern := impl.f64
	m, n := c.Rows, c.Cols
	k := a.Cols
	if tA {
		k = a.Rows
	}

	nIC := (m + impl.mc - 1) / impl.mc
	nJC := (n + impl.nc - 1) / impl.nc

	task := func(tile int) {
		ic, jc := tile/nJC, tile%nJC
		i0 := ic * impl.mc
		mc := m - i0
		if mc > impl.mc {
			mc = impl.mc
		}
		j0 := jc * impl.nc
		nc := n - j0
		if nc > impl.nc {
			nc = impl.nc
		}

		buf := packPool.Get().(*packBuf)
		buf.a64 = growTo(buf.a64, impl.mc*impl.kc)
		buf.b64 = growTo(buf.b64, impl.kc*impl.nc)
		for l0 := 0; l0 < k; l0 += impl.kc {
			kc := k - l0
			if kc > impl.kc {
				kc = impl.kc
			}
			packAPanels(buf.a64, a, tA, i0, mc, l0, kc, impl.mr)
			packBPanels(buf.b64, b, tB, l0, kc, j0, nc, impl.nr)
			sweepTile(kern, buf.a64, buf.b64, kc, alpha, c, i0, j0, mc, nc, impl.mr, impl.nr)
		}
		packPool.Put(buf)
	}
	runTiles(nIC*nJC, int64(m)*int64(n)*int64(k), task)
}

// gemmPackedF32 is the mixed-precision packed engine: identical tiling
// and dispatch to gemmPacked, but the A and B panels are packed as
// float32 (halving the packing traffic and the cache footprint of the
// panels) while every accumulation stays float64 inside the kernel.
// C remains float64 end to end.
func gemmPackedF32(tA, tB Transpose, alpha float64, a, b, c *Mat) {
	impl := activeKernelF32()
	kern := impl.f32
	m, n := c.Rows, c.Cols
	k := a.Cols
	if tA {
		k = a.Rows
	}

	nIC := (m + impl.mc - 1) / impl.mc
	nJC := (n + impl.nc - 1) / impl.nc

	task := func(tile int) {
		ic, jc := tile/nJC, tile%nJC
		i0 := ic * impl.mc
		mc := m - i0
		if mc > impl.mc {
			mc = impl.mc
		}
		j0 := jc * impl.nc
		nc := n - j0
		if nc > impl.nc {
			nc = impl.nc
		}

		buf := packPool.Get().(*packBuf)
		buf.a32 = growTo(buf.a32, impl.mc*impl.kc)
		buf.b32 = growTo(buf.b32, impl.kc*impl.nc)
		for l0 := 0; l0 < k; l0 += impl.kc {
			kc := k - l0
			if kc > impl.kc {
				kc = impl.kc
			}
			packAPanels(buf.a32, a, tA, i0, mc, l0, kc, impl.mr)
			packBPanels(buf.b32, b, tB, l0, kc, j0, nc, impl.nr)
			sweepTile(kern, buf.a32, buf.b32, kc, alpha, c, i0, j0, mc, nc, impl.mr, impl.nr)
		}
		packPool.Put(buf)
	}
	runTiles(nIC*nJC, int64(m)*int64(n)*int64(k), task)
}

// sweepTile runs the micro-kernel over one packed macro-tile: A
// micro-panel outer, B micro-panel inner, so the kc×mr A panel stays
// L1-resident across the whole jp sweep while the narrower kc×nr B
// panels stream from L2 — half the cold traffic per micro-kernel call
// of the opposite nesting.
func sweepTile[T packElem](kern func(kc int, pa, pb []T, alpha float64, c *Mat, i0, j0, me, ne int),
	pa, pb []T, kc int, alpha float64, c *Mat, i0, j0, mc, nc, mr, nr int) {
	mPanels := (mc + mr - 1) / mr
	nPanels := (nc + nr - 1) / nr
	for ip := 0; ip < mPanels; ip++ {
		pap := pa[ip*kc*mr:]
		ii := i0 + ip*mr
		me := mc - ip*mr
		if me > mr {
			me = mr
		}
		for jp := 0; jp < nPanels; jp++ {
			ne := nc - jp*nr
			if ne > nr {
				ne = nr
			}
			kern(kc, pap, pb[jp*kc*nr:], alpha, c, ii, j0+jp*nr, me, ne)
		}
	}
}

// runTiles executes the tile tasks, fanning out across GOMAXPROCS
// workers when the problem is large enough to amortise goroutine
// startup (same threshold as the streaming engine).
func runTiles(tiles int, work int64, task func(int)) {
	nw := 1
	if work > parallelThreshold {
		nw = runtime.GOMAXPROCS(0)
		if nw > tiles {
			nw = tiles
		}
	}
	if nw <= 1 {
		for t := 0; t < tiles; t++ {
			task(t)
		}
		return
	}
	var wg sync.WaitGroup
	var next sync.Mutex
	cursor := 0
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				next.Lock()
				t := cursor
				cursor++
				next.Unlock()
				if t >= tiles {
					return
				}
				task(t)
			}
		}()
	}
	wg.Wait()
}
