package linalg

import "sync"

// The packed GEMM path (gemm_packed.go) follows the classic Goto/BLIS
// decomposition: C is tiled into mc×nc macro-tiles, the inner dimension
// is split into kc panels sized so one packed A panel (mc×kc) and one
// packed B panel (kc×nc) stay resident in cache while the register
// micro-kernel sweeps them. The blocking parameters and the register
// shape (mr×nr) live on the kernelImpl (kernel.go): the portable kernel
// packs 4×2 micro-panels, the AVX2 kernel 6×8, the NEON kernel 8×4 —
// the pack routines below take the shape as arguments so one packing
// implementation serves every kernel, in both storage precisions.

// packElem is the panel storage element: float64 for the exact path,
// float32 for the mixed-precision path (f32 storage, f64 accumulation).
type packElem interface {
	float32 | float64
}

// packBuf holds one worker's packing scratch, grown on demand to the
// active kernel's macro-tile sizes in whichever precision the call
// needs.
type packBuf struct {
	a64, b64 []float64
	a32, b32 []float32
}

var packPool = sync.Pool{New: func() interface{} { return new(packBuf) }}

// growTo returns s with length ≥ n, reallocating only when capacity is
// insufficient (pool buffers are reused across kernels with different
// blocking, so the first call per size class allocates).
func growTo[T packElem](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// packAPanels packs op(A)[i0:i0+mc, l0:l0+kc] into dst as ceil(mc/mr)
// row micro-panels. Panel ip occupies dst[ip*kc*mr : (ip+1)*kc*mr] with
// layout dst[l*mr+r] = op(A)(i0+ip*mr+r, l0+l); rows beyond mc are
// zero-padded so the micro-kernel never needs a row mask. The transpose
// is folded into the pack: after packing, the kernel is
// orientation-free. For float32 dst the rounding to storage precision
// happens here, once per element, not per use.
func packAPanels[T packElem](dst []T, a *Mat, tA Transpose, i0, mc, l0, kc, mr int) {
	panels := (mc + mr - 1) / mr
	if tA {
		// op(A)(i,l) = A[l,i]: each k-step reads mr contiguous elements
		// of one source row — the cheap direction.
		for ip := 0; ip < panels; ip++ {
			base := ip * kc * mr
			i := i0 + ip*mr
			rows := mc - ip*mr
			if rows > mr {
				rows = mr
			}
			for l := 0; l < kc; l++ {
				src := a.Row(l0 + l)
				d := dst[base+l*mr : base+l*mr+mr]
				for r := 0; r < rows; r++ {
					d[r] = T(src[i+r])
				}
				for r := rows; r < mr; r++ {
					d[r] = 0
				}
			}
		}
		return
	}
	// op(A)(i,l) = A[i,l]: interleave mr source rows. Each source row is
	// a sequential read stream; the strided writes stay inside the
	// L1-resident panel. Packing is a visible cost on tall-skinny shapes
	// (O(mk) against O(mnk) with small n), so rows are swept one at a
	// time with the bounds hoisted instead of per-element 2D indexing.
	for ip := 0; ip < panels; ip++ {
		base := ip * kc * mr
		i := i0 + ip*mr
		rows := mc - ip*mr
		if rows > mr {
			rows = mr
		}
		for r := 0; r < rows; r++ {
			src := a.Row(i + r)[l0 : l0+kc]
			d := dst[base+r : base+(kc-1)*mr+r+1]
			for l, v := range src {
				d[l*mr] = T(v)
			}
		}
		for r := rows; r < mr; r++ {
			d := dst[base+r : base+(kc-1)*mr+r+1]
			for l := 0; l < kc; l++ {
				d[l*mr] = 0
			}
		}
	}
}

// packBPanels packs op(B)[l0:l0+kc, j0:j0+nc] into dst as ceil(nc/nr)
// column micro-panels. Panel jp occupies dst[jp*kc*nr : (jp+1)*kc*nr]
// with layout dst[l*nr+s] = op(B)(l0+l, j0+jp*nr+s); columns beyond nc
// are zero-padded. As with packAPanels, the transpose is folded into
// the pack.
func packBPanels[T packElem](dst []T, b *Mat, tB Transpose, l0, kc, j0, nc, nr int) {
	panels := (nc + nr - 1) / nr
	if !tB {
		// op(B)(l,j) = B[l,j]: each k-step reads nr contiguous elements.
		for jp := 0; jp < panels; jp++ {
			base := jp * kc * nr
			j := j0 + jp*nr
			cols := nc - jp*nr
			if cols >= nr {
				// Full-width panel: contiguous nr-element copies.
				for l := 0; l < kc; l++ {
					src := b.Row(l0 + l)[j : j+nr]
					d := dst[base+l*nr : base+l*nr+nr]
					for s, v := range src {
						d[s] = T(v)
					}
				}
				continue
			}
			for l := 0; l < kc; l++ {
				src := b.Row(l0 + l)
				d := dst[base+l*nr : base+l*nr+nr]
				for s := 0; s < cols; s++ {
					d[s] = T(src[j+s])
				}
				for s := cols; s < nr; s++ {
					d[s] = 0
				}
			}
		}
		return
	}
	// op(B)(l,j) = B[j,l]: interleave nr source rows, one sequential
	// read stream per column of the panel.
	for jp := 0; jp < panels; jp++ {
		base := jp * kc * nr
		j := j0 + jp*nr
		cols := nc - jp*nr
		if cols > nr {
			cols = nr
		}
		for s := 0; s < cols; s++ {
			src := b.Row(j + s)[l0 : l0+kc]
			d := dst[base+s : base+(kc-1)*nr+s+1]
			for l, v := range src {
				d[l*nr] = T(v)
			}
		}
		for s := cols; s < nr; s++ {
			d := dst[base+s : base+(kc-1)*nr+s+1]
			for l := 0; l < kc; l++ {
				d[l*nr] = 0
			}
		}
	}
}
