package linalg

import "sync"

// Cache-blocking parameters for the packed GEMM path (gemm_packed.go).
// The loop structure follows the classic Goto/BLIS decomposition: C is
// tiled into mcBlock×ncBlock macro-tiles, the inner dimension is split
// into kcBlock panels sized so one packed A panel (mcBlock×kcBlock) and
// one packed B panel (kcBlock×ncBlock) stay resident in cache while the
// register micro-kernel sweeps them.
const (
	mr = 4 // micro-kernel rows  (register block height)
	nr = 2 // micro-kernel cols  (register block width)

	mcBlock = 128 // rows of op(A) packed per macro-tile   (multiple of mr)
	kcBlock = 256 // inner-dimension panel height
	ncBlock = 256 // cols of op(B) packed per macro-tile   (multiple of nr)
)

// packBuf holds one worker's packing scratch: an A panel of up to
// mcBlock×kcBlock and a B panel of up to kcBlock×ncBlock, both padded to
// full micro-panels.
type packBuf struct {
	a []float64
	b []float64
}

var packPool = sync.Pool{
	New: func() interface{} {
		return &packBuf{
			a: make([]float64, mcBlock*kcBlock),
			b: make([]float64, kcBlock*ncBlock),
		}
	},
}

// packA packs op(A)[i0:i0+mc, l0:l0+kc] into dst as ceil(mc/mr) row
// micro-panels. Panel ip occupies dst[ip*kc*mr : (ip+1)*kc*mr] with
// layout dst[l*mr+r] = op(A)(i0+ip*mr+r, l0+l); rows beyond mc are
// zero-padded so the micro-kernel never needs a row mask. The transpose
// is folded into the pack: after packing, the kernel is orientation-free.
func packA(dst []float64, a *Mat, tA Transpose, i0, mc, l0, kc int) {
	panels := (mc + mr - 1) / mr
	if tA {
		// op(A)(i,l) = A[l,i]: each k-step reads mr contiguous elements
		// of one source row — the cheap direction.
		for ip := 0; ip < panels; ip++ {
			base := ip * kc * mr
			i := i0 + ip*mr
			rows := mc - ip*mr
			if rows > mr {
				rows = mr
			}
			for l := 0; l < kc; l++ {
				src := a.Row(l0 + l)
				d := dst[base+l*mr : base+l*mr+mr]
				for r := 0; r < rows; r++ {
					d[r] = src[i+r]
				}
				for r := rows; r < mr; r++ {
					d[r] = 0
				}
			}
		}
		return
	}
	// op(A)(i,l) = A[i,l]: interleave mr source rows.
	for ip := 0; ip < panels; ip++ {
		base := ip * kc * mr
		i := i0 + ip*mr
		rows := mc - ip*mr
		if rows > mr {
			rows = mr
		}
		if rows >= mr {
			// Full-height panel: one pass with sequential writes and
			// four sequential read streams beats mr strided-write
			// passes — packing is a visible cost on tall-skinny
			// shapes, where it is O(mk) against O(mnk) with small n.
			r0 := a.Row(i)[l0 : l0+kc]
			r1 := a.Row(i + 1)[l0 : l0+kc]
			r2 := a.Row(i + 2)[l0 : l0+kc]
			r3 := a.Row(i + 3)[l0 : l0+kc]
			d := dst[base : base+kc*mr]
			for l, v := range r0 {
				o := l * mr
				d[o] = v
				d[o+1] = r1[l]
				d[o+2] = r2[l]
				d[o+3] = r3[l]
			}
			continue
		}
		for r := 0; r < rows; r++ {
			src := a.Row(i + r)[l0 : l0+kc]
			for l, v := range src {
				dst[base+l*mr+r] = v
			}
		}
		for r := rows; r < mr; r++ {
			for l := 0; l < kc; l++ {
				dst[base+l*mr+r] = 0
			}
		}
	}
}

// packB packs op(B)[l0:l0+kc, j0:j0+nc] into dst as ceil(nc/nr) column
// micro-panels. Panel jp occupies dst[jp*kc*nr : (jp+1)*kc*nr] with
// layout dst[l*nr+s] = op(B)(l0+l, j0+jp*nr+s); columns beyond nc are
// zero-padded. As with packA, the transpose is folded into the pack.
func packB(dst []float64, b *Mat, tB Transpose, l0, kc, j0, nc int) {
	panels := (nc + nr - 1) / nr
	if !tB {
		// op(B)(l,j) = B[l,j]: each k-step reads nr contiguous elements.
		for jp := 0; jp < panels; jp++ {
			base := jp * kc * nr
			j := j0 + jp*nr
			cols := nc - jp*nr
			if cols >= nr {
				// Full-width panel: unrolled pair copy.
				for l := 0; l < kc; l++ {
					src := b.Row(l0 + l)
					dst[base+l*nr] = src[j]
					dst[base+l*nr+1] = src[j+1]
				}
				continue
			}
			for l := 0; l < kc; l++ {
				src := b.Row(l0 + l)
				d := dst[base+l*nr : base+l*nr+nr]
				for s := 0; s < cols; s++ {
					d[s] = src[j+s]
				}
				for s := cols; s < nr; s++ {
					d[s] = 0
				}
			}
		}
		return
	}
	// op(B)(l,j) = B[j,l]: interleave nr source rows.
	for jp := 0; jp < panels; jp++ {
		base := jp * kc * nr
		j := j0 + jp*nr
		cols := nc - jp*nr
		if cols > nr {
			cols = nr
		}
		if cols >= nr {
			// Full-width panel: one pass, two sequential read streams.
			r0 := b.Row(j)[l0 : l0+kc]
			r1 := b.Row(j + 1)[l0 : l0+kc]
			d := dst[base : base+kc*nr]
			for l, v := range r0 {
				o := l * nr
				d[o] = v
				d[o+1] = r1[l]
			}
			continue
		}
		for s := 0; s < cols; s++ {
			src := b.Row(j + s)[l0 : l0+kc]
			for l, v := range src {
				dst[base+l*nr+s] = v
			}
		}
		for s := cols; s < nr; s++ {
			for l := 0; l < kc; l++ {
				dst[base+l*nr+s] = 0
			}
		}
	}
}
