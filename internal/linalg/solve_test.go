package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCholeskyReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, n := range []int{1, 2, 7, 25} {
		m := randMat(rng, n, n)
		a := MatMul(NoTrans, Trans, m, m)
		for i := 0; i < n; i++ {
			a.Add(i, i, float64(n))
		}
		l, err := Cholesky(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		llt := MatMul(NoTrans, Trans, l, l)
		matsClose(t, llt, a, 1e-9)
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewMatFrom(2, 2, []float64{1, 0, 0, -1})
	if _, err := Cholesky(a); err == nil {
		t.Fatal("expected error for indefinite matrix")
	}
}

func TestSolveSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 15
	m := randMat(rng, n, n)
	a := MatMul(NoTrans, Trans, m, m)
	for i := 0; i < n; i++ {
		a.Add(i, i, float64(n))
	}
	x0 := randMat(rng, n, 3)
	b := MatMul(NoTrans, NoTrans, a, x0)
	x, err := SolveSPD(a, b)
	if err != nil {
		t.Fatal(err)
	}
	matsClose(t, x, x0, 1e-8)
}

func TestLUSolveRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		a := randMat(rng, n, n)
		for i := 0; i < n; i++ {
			a.Add(i, i, 5) // keep well-conditioned
		}
		x0 := randMat(rng, n, 2)
		b := MatMul(NoTrans, NoTrans, a, x0)
		x, err := Solve(a, b)
		if err != nil {
			return false
		}
		for i := range x.Data {
			if math.Abs(x.Data[i]-x0.Data[i]) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := 9
	a := randMat(rng, n, n)
	for i := 0; i < n; i++ {
		a.Add(i, i, 4)
	}
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	prod := MatMul(NoTrans, NoTrans, a, inv)
	matsClose(t, prod, Identity(n), 1e-9)
}

func TestSolveSingular(t *testing.T) {
	a := NewMat(3, 3) // all zero
	if _, err := Solve(a, Identity(3)); err == nil {
		t.Fatal("expected ErrSingular")
	}
}

func TestMatBasics(t *testing.T) {
	a := NewMatFrom(2, 2, []float64{1, 2, 3, 4})
	if a.Trace() != 5 {
		t.Error("trace")
	}
	at := a.T()
	if at.At(0, 1) != 3 {
		t.Error("transpose")
	}
	b := a.Clone()
	b.Scale(2)
	if a.At(0, 0) != 1 || b.At(0, 0) != 2 {
		t.Error("clone/scale aliasing")
	}
	b.AxpyMat(-2, a)
	if b.MaxAbs() != 0 {
		t.Error("axpy")
	}
	if math.Abs(Dot(a, a)-30) > 1e-14 {
		t.Error("dot")
	}
	if math.Abs(a.FrobeniusNorm()-math.Sqrt(30)) > 1e-14 {
		t.Error("frobenius")
	}
}
