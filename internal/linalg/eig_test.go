package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randSym(rng *rand.Rand, n int) *Mat {
	m := randMat(rng, n, n)
	return m.Sym()
}

func TestEigSymReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 5, 20, 60} {
		a := randSym(rng, n)
		w, v := EigSym(a)
		// A·v_j == w_j·v_j
		for j := 0; j < n; j++ {
			col := make([]float64, n)
			for i := 0; i < n; i++ {
				col[i] = v.At(i, j)
			}
			av := a.MulVec(col)
			for i := 0; i < n; i++ {
				if math.Abs(av[i]-w[j]*col[i]) > 1e-8 {
					t.Fatalf("n=%d: eigenpair %d violates A v = w v (Δ=%g)", n, j, av[i]-w[j]*col[i])
				}
			}
		}
		// Eigenvalues ascending.
		for j := 1; j < n; j++ {
			if w[j] < w[j-1]-1e-12 {
				t.Fatalf("eigenvalues not ascending: %v", w)
			}
		}
		// V orthogonal.
		vtv := MatMul(Trans, NoTrans, v, v)
		eye := Identity(n)
		for i := range vtv.Data {
			if math.Abs(vtv.Data[i]-eye.Data[i]) > 1e-9 {
				t.Fatalf("n=%d: eigenvectors not orthonormal", n)
			}
		}
	}
}

func TestEigSymTraceInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(15)
		a := randSym(rng, n)
		w, _ := EigSym(a)
		var s float64
		for _, x := range w {
			s += x
		}
		return math.Abs(s-a.Trace()) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestInvSqrtSym(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{1, 3, 12, 40} {
		// SPD matrix: M Mᵀ + n·I.
		m := randMat(rng, n, n)
		a := MatMul(NoTrans, Trans, m, m)
		for i := 0; i < n; i++ {
			a.Add(i, i, float64(n))
		}
		x := InvSqrtSym(a, 1e-12)
		// x·a·x == I
		xa := MatMul(NoTrans, NoTrans, x, a)
		xax := MatMul(NoTrans, NoTrans, xa, x)
		eye := Identity(n)
		for i := range xax.Data {
			if math.Abs(xax.Data[i]-eye.Data[i]) > 1e-8 {
				t.Fatalf("n=%d: A^{-1/2} A A^{-1/2} != I (Δ=%g)", n, xax.Data[i]-eye.Data[i])
			}
		}
	}
}

func TestSqrtSym(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 8
	m := randMat(rng, n, n)
	a := MatMul(NoTrans, Trans, m, m)
	s := SqrtSym(a)
	ss := MatMul(NoTrans, NoTrans, s, s)
	for i := range ss.Data {
		if math.Abs(ss.Data[i]-a.Data[i]) > 1e-8 {
			t.Fatal("SqrtSym squared != A")
		}
	}
}

func TestInvSqrtSymDropsNullSpace(t *testing.T) {
	// Rank-1 2x2 matrix; the null direction must be projected out,
	// not blow up.
	a := NewMatFrom(2, 2, []float64{1, 1, 1, 1})
	x := InvSqrtSym(a, 1e-10)
	for _, v := range x.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("InvSqrtSym produced non-finite values on singular input")
		}
	}
}
