#include "textflag.h"

// AVX2/FMA 6×8 micro-kernels. See DESIGN.md §11 for the ABI contract
// and register allocation.
//
// Both kernels compute C[0:6, 0:8] += alpha · Ap·Bp on a row-major C
// with stride ldc, from packed micro-panels:
//
//	pa[l*6 + r] = A(r, l)   (k-major, one 6-row micro-panel)
//	pb[l*8 + s] = B(l, s)   (k-major, one 8-column micro-panel)
//
// The full 6×8 tile is always computed and written — edge masking is
// the Go wrapper's job (it redirects the write into a scratch tile).
// kc ≥ 1 is required (guaranteed: the packed driver never emits empty
// panels).
//
// Register allocation (f64 kernel):
//
//	Y0..Y11   6×8 accumulator block, row r in Y(2r) | Y(2r+1)
//	Y12, Y13  one k-step of B (8 doubles)
//	Y14       broadcast of one A element; alpha at write-back
//	Y15       C row staging at write-back
//
// Per k-step: 2 B loads + 6 A broadcasts + 12 FMAs = 96 flops. All 16
// ymm registers are live — 6×8 is the widest spill-free f64 shape on
// AVX2. The f32 kernel differs only in the loads: B widens via
// VCVTPS2PD, A in pairs via VCVTPS2PD mem64→xmm + VPERMPD broadcasts;
// accumulation and write-back stay float64.

// func kernel6x8F64(kc int64, pa, pb *float64, alpha float64, c *float64, ldc int64)
TEXT ·kernel6x8F64(SB), NOSPLIT, $0-48
	MOVQ kc+0(FP), CX
	MOVQ pa+8(FP), SI
	MOVQ pb+16(FP), DI
	MOVQ c+32(FP), DX
	MOVQ ldc+40(FP), R8

	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7
	VXORPD Y8, Y8, Y8
	VXORPD Y9, Y9, Y9
	VXORPD Y10, Y10, Y10
	VXORPD Y11, Y11, Y11

loop64:
	VMOVUPD (DI), Y12
	VMOVUPD 32(DI), Y13
	VBROADCASTSD (SI), Y14
	VFMADD231PD Y12, Y14, Y0
	VFMADD231PD Y13, Y14, Y1
	VBROADCASTSD 8(SI), Y14
	VFMADD231PD Y12, Y14, Y2
	VFMADD231PD Y13, Y14, Y3
	VBROADCASTSD 16(SI), Y14
	VFMADD231PD Y12, Y14, Y4
	VFMADD231PD Y13, Y14, Y5
	VBROADCASTSD 24(SI), Y14
	VFMADD231PD Y12, Y14, Y6
	VFMADD231PD Y13, Y14, Y7
	VBROADCASTSD 32(SI), Y14
	VFMADD231PD Y12, Y14, Y8
	VFMADD231PD Y13, Y14, Y9
	VBROADCASTSD 40(SI), Y14
	VFMADD231PD Y12, Y14, Y10
	VFMADD231PD Y13, Y14, Y11
	ADDQ $48, SI
	ADDQ $64, DI
	DECQ CX
	JNZ  loop64

	// C[r, 0:8] += alpha · acc[r], rows advanced by ldc doubles.
	VBROADCASTSD alpha+24(FP), Y14
	SHLQ $3, R8

	VMOVUPD (DX), Y15
	VFMADD231PD Y0, Y14, Y15
	VMOVUPD Y15, (DX)
	VMOVUPD 32(DX), Y15
	VFMADD231PD Y1, Y14, Y15
	VMOVUPD Y15, 32(DX)
	ADDQ R8, DX

	VMOVUPD (DX), Y15
	VFMADD231PD Y2, Y14, Y15
	VMOVUPD Y15, (DX)
	VMOVUPD 32(DX), Y15
	VFMADD231PD Y3, Y14, Y15
	VMOVUPD Y15, 32(DX)
	ADDQ R8, DX

	VMOVUPD (DX), Y15
	VFMADD231PD Y4, Y14, Y15
	VMOVUPD Y15, (DX)
	VMOVUPD 32(DX), Y15
	VFMADD231PD Y5, Y14, Y15
	VMOVUPD Y15, 32(DX)
	ADDQ R8, DX

	VMOVUPD (DX), Y15
	VFMADD231PD Y6, Y14, Y15
	VMOVUPD Y15, (DX)
	VMOVUPD 32(DX), Y15
	VFMADD231PD Y7, Y14, Y15
	VMOVUPD Y15, 32(DX)
	ADDQ R8, DX

	VMOVUPD (DX), Y15
	VFMADD231PD Y8, Y14, Y15
	VMOVUPD Y15, (DX)
	VMOVUPD 32(DX), Y15
	VFMADD231PD Y9, Y14, Y15
	VMOVUPD Y15, 32(DX)
	ADDQ R8, DX

	VMOVUPD (DX), Y15
	VFMADD231PD Y10, Y14, Y15
	VMOVUPD Y15, (DX)
	VMOVUPD 32(DX), Y15
	VFMADD231PD Y11, Y14, Y15
	VMOVUPD Y15, 32(DX)

	VZEROUPPER
	RET

// func kernel6x8F32(kc int64, pa, pb *float32, alpha float64, c *float64, ldc int64)
TEXT ·kernel6x8F32(SB), NOSPLIT, $0-48
	MOVQ kc+0(FP), CX
	MOVQ pa+8(FP), SI
	MOVQ pb+16(FP), DI
	MOVQ c+32(FP), DX
	MOVQ ldc+40(FP), R8

	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7
	VXORPD Y8, Y8, Y8
	VXORPD Y9, Y9, Y9
	VXORPD Y10, Y10, Y10
	VXORPD Y11, Y11, Y11

	// A elements are widened in pairs with VCVTPS2PD mem64→xmm — the
	// VEX xmm write zeroes bits 128..255, so unlike the scalar
	// VCVTSS2SD (which merges into its destination and would serialise
	// the loop on a false dependency) every convert is independent.
	// VPERMPD then broadcasts each half of the pair.
loop32:
	VCVTPS2PD (DI), Y12
	VCVTPS2PD 16(DI), Y13
	VCVTPS2PD (SI), X14
	VPERMPD $0x00, Y14, Y15
	VFMADD231PD Y12, Y15, Y0
	VFMADD231PD Y13, Y15, Y1
	VPERMPD $0x55, Y14, Y15
	VFMADD231PD Y12, Y15, Y2
	VFMADD231PD Y13, Y15, Y3
	VCVTPS2PD 8(SI), X14
	VPERMPD $0x00, Y14, Y15
	VFMADD231PD Y12, Y15, Y4
	VFMADD231PD Y13, Y15, Y5
	VPERMPD $0x55, Y14, Y15
	VFMADD231PD Y12, Y15, Y6
	VFMADD231PD Y13, Y15, Y7
	VCVTPS2PD 16(SI), X14
	VPERMPD $0x00, Y14, Y15
	VFMADD231PD Y12, Y15, Y8
	VFMADD231PD Y13, Y15, Y9
	VPERMPD $0x55, Y14, Y15
	VFMADD231PD Y12, Y15, Y10
	VFMADD231PD Y13, Y15, Y11
	ADDQ $24, SI
	ADDQ $32, DI
	DECQ CX
	JNZ  loop32

	VBROADCASTSD alpha+24(FP), Y14
	SHLQ $3, R8

	VMOVUPD (DX), Y15
	VFMADD231PD Y0, Y14, Y15
	VMOVUPD Y15, (DX)
	VMOVUPD 32(DX), Y15
	VFMADD231PD Y1, Y14, Y15
	VMOVUPD Y15, 32(DX)
	ADDQ R8, DX

	VMOVUPD (DX), Y15
	VFMADD231PD Y2, Y14, Y15
	VMOVUPD Y15, (DX)
	VMOVUPD 32(DX), Y15
	VFMADD231PD Y3, Y14, Y15
	VMOVUPD Y15, 32(DX)
	ADDQ R8, DX

	VMOVUPD (DX), Y15
	VFMADD231PD Y4, Y14, Y15
	VMOVUPD Y15, (DX)
	VMOVUPD 32(DX), Y15
	VFMADD231PD Y5, Y14, Y15
	VMOVUPD Y15, 32(DX)
	ADDQ R8, DX

	VMOVUPD (DX), Y15
	VFMADD231PD Y6, Y14, Y15
	VMOVUPD Y15, (DX)
	VMOVUPD 32(DX), Y15
	VFMADD231PD Y7, Y14, Y15
	VMOVUPD Y15, 32(DX)
	ADDQ R8, DX

	VMOVUPD (DX), Y15
	VFMADD231PD Y8, Y14, Y15
	VMOVUPD Y15, (DX)
	VMOVUPD 32(DX), Y15
	VFMADD231PD Y9, Y14, Y15
	VMOVUPD Y15, 32(DX)
	ADDQ R8, DX

	VMOVUPD (DX), Y15
	VFMADD231PD Y10, Y14, Y15
	VMOVUPD Y15, (DX)
	VMOVUPD 32(DX), Y15
	VFMADD231PD Y11, Y14, Y15
	VMOVUPD Y15, 32(DX)

	VZEROUPPER
	RET
