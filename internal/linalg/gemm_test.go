package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randMat(rng *rand.Rand, r, c int) *Mat {
	m := NewMat(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// refGemm is a deliberately naive reference implementation.
func refGemm(tA, tB Transpose, alpha float64, a, b *Mat, beta float64, c *Mat) {
	get := func(m *Mat, t Transpose, i, j int) float64 {
		if t {
			return m.At(j, i)
		}
		return m.At(i, j)
	}
	mm, k := a.Rows, a.Cols
	if tA {
		mm, k = a.Cols, a.Rows
	}
	n := b.Cols
	if tB {
		n = b.Rows
	}
	for i := 0; i < mm; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for l := 0; l < k; l++ {
				s += get(a, tA, i, l) * get(b, tB, l, j)
			}
			c.Set(i, j, alpha*s+beta*c.At(i, j))
		}
	}
}

func matsClose(t *testing.T, got, want *Mat, tol float64) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("dims %dx%d vs %dx%d", got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range got.Data {
		if d := math.Abs(got.Data[i] - want.Data[i]); d > tol {
			t.Fatalf("element %d: got %g want %g (|Δ|=%g)", i, got.Data[i], want.Data[i], d)
		}
	}
}

func TestGemmAllVariantsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dims := range [][3]int{{1, 1, 1}, {3, 4, 5}, {8, 8, 8}, {17, 5, 31}, {64, 64, 64}, {5, 90, 7}} {
		m, k, n := dims[0], dims[1], dims[2]
		for _, tA := range []Transpose{NoTrans, Trans} {
			for _, tB := range []Transpose{NoTrans, Trans} {
				a := randMat(rng, m, k)
				if tA {
					a = randMat(rng, k, m)
				}
				b := randMat(rng, k, n)
				if tB {
					b = randMat(rng, n, k)
				}
				c0 := randMat(rng, m, n)
				got := c0.Clone()
				want := c0.Clone()
				Gemm(tA, tB, 1.3, a, b, 0.7, got)
				refGemm(tA, tB, 1.3, a, b, 0.7, want)
				matsClose(t, got, want, 1e-11*float64(k+1))
			}
		}
	}
}

func TestGemmParallelPathMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Big enough to cross parallelThreshold.
	a := randMat(rng, 96, 96)
	b := randMat(rng, 96, 96)
	got := NewMat(96, 96)
	Gemm(NoTrans, NoTrans, 1, a, b, 0, got)
	want := NewMat(96, 96)
	refGemm(NoTrans, NoTrans, 1, a, b, 0, want)
	matsClose(t, got, want, 1e-10)
}

func TestGemmBetaZeroOverwritesNaN(t *testing.T) {
	a := Identity(2)
	b := Identity(2)
	c := NewMat(2, 2)
	c.Set(0, 0, math.NaN())
	Gemm(NoTrans, NoTrans, 1, a, b, 0, c)
	if math.IsNaN(c.At(0, 0)) {
		t.Fatal("beta=0 must overwrite, not scale, existing NaN")
	}
}

func TestFLOPCounting(t *testing.T) {
	ResetFLOPs()
	a := NewMat(7, 11)
	b := NewMat(11, 13)
	c := NewMat(7, 13)
	Gemm(NoTrans, NoTrans, 1, a, b, 0, c)
	want := int64(2 * 7 * 11 * 13)
	if got := FLOPs(); got != want {
		t.Fatalf("FLOPs = %d, want %d", got, want)
	}
	if prev := ResetFLOPs(); prev != want {
		t.Fatalf("ResetFLOPs returned %d, want %d", prev, want)
	}
	if FLOPs() != 0 {
		t.Fatal("counter must be zero after reset")
	}
}

// Property: (A·B)ᵀ == Bᵀ·Aᵀ for random small matrices.
func TestQuickTransposeProduct(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(12), 1+rng.Intn(12), 1+rng.Intn(12)
		a := randMat(rng, m, k)
		b := randMat(rng, k, n)
		ab := MatMul(NoTrans, NoTrans, a, b)
		btat := MatMul(Trans, Trans, b, a)
		d := ab.T()
		for i := range d.Data {
			if math.Abs(d.Data[i]-btat.Data[i]) > 1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Gemm is linear in alpha.
func TestQuickGemmLinearity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		a := randMat(rng, n, n)
		b := randMat(rng, n, n)
		c1 := NewMat(n, n)
		c2 := NewMat(n, n)
		Gemm(NoTrans, NoTrans, 2.5, a, b, 0, c1)
		Gemm(NoTrans, NoTrans, 1, a, b, 0, c2)
		c2.Scale(2.5)
		for i := range c1.Data {
			if math.Abs(c1.Data[i]-c2.Data[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestVariantOf(t *testing.T) {
	cases := []struct {
		tA, tB Transpose
		want   Variant
	}{
		{NoTrans, NoTrans, VariantNN},
		{NoTrans, Trans, VariantNT},
		{Trans, NoTrans, VariantTN},
		{Trans, Trans, VariantTT},
	}
	for _, c := range cases {
		if got := VariantOf(c.tA, c.tB); got != c.want {
			t.Errorf("VariantOf(%v,%v) = %v, want %v", c.tA, c.tB, got, c.want)
		}
	}
	if VariantNT.String() != "NT" || VariantTT.String() != "TT" {
		t.Error("variant names wrong")
	}
}

func TestMulVec(t *testing.T) {
	a := NewMatFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	y := a.MulVec([]float64{1, 1, 1})
	if y[0] != 6 || y[1] != 15 {
		t.Fatalf("MulVec = %v", y)
	}
}
