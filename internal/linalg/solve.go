package linalg

import (
	"errors"
	"math"
)

// ErrSingular reports a (numerically) singular matrix in a factorisation.
var ErrSingular = errors.New("linalg: matrix is singular to working precision")

// Cholesky computes the lower-triangular factor L with A = L·Lᵀ for a
// symmetric positive-definite A. The input is not modified.
func Cholesky(a *Mat) (*Mat, error) {
	if a.Rows != a.Cols {
		panic("linalg: Cholesky requires a square matrix")
	}
	n := a.Rows
	l := NewMat(n, n)
	for j := 0; j < n; j++ {
		d := a.Data[j*n+j]
		for k := 0; k < j; k++ {
			d -= l.Data[j*n+k] * l.Data[j*n+k]
		}
		if d <= 0 {
			return nil, ErrSingular
		}
		ljj := math.Sqrt(d)
		l.Data[j*n+j] = ljj
		for i := j + 1; i < n; i++ {
			s := a.Data[i*n+j]
			for k := 0; k < j; k++ {
				s -= l.Data[i*n+k] * l.Data[j*n+k]
			}
			l.Data[i*n+j] = s / ljj
		}
	}
	return l, nil
}

// SolveSPD solves A·x = b for symmetric positive-definite A via Cholesky.
// b is a matrix of one or more right-hand-side columns.
func SolveSPD(a, b *Mat) (*Mat, error) {
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	n := a.Rows
	nrhs := b.Cols
	x := b.Clone()
	// Forward substitution L·y = b.
	for c := 0; c < nrhs; c++ {
		for i := 0; i < n; i++ {
			s := x.Data[i*nrhs+c]
			for k := 0; k < i; k++ {
				s -= l.Data[i*n+k] * x.Data[k*nrhs+c]
			}
			x.Data[i*nrhs+c] = s / l.Data[i*n+i]
		}
		// Back substitution Lᵀ·x = y.
		for i := n - 1; i >= 0; i-- {
			s := x.Data[i*nrhs+c]
			for k := i + 1; k < n; k++ {
				s -= l.Data[k*n+i] * x.Data[k*nrhs+c]
			}
			x.Data[i*nrhs+c] = s / l.Data[i*n+i]
		}
	}
	return x, nil
}

// LU holds a row-pivoted LU factorisation P·A = L·U packed in a single
// matrix (unit lower triangle implicit).
type LU struct {
	lu   *Mat
	piv  []int
	sign int
}

// NewLU factorises a square matrix with partial pivoting.
func NewLU(a *Mat) (*LU, error) {
	if a.Rows != a.Cols {
		panic("linalg: NewLU requires a square matrix")
	}
	n := a.Rows
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1
	for k := 0; k < n; k++ {
		p := k
		mx := math.Abs(lu.Data[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.Data[i*n+k]); v > mx {
				mx, p = v, i
			}
		}
		if mx == 0 {
			return nil, ErrSingular
		}
		if p != k {
			for j := 0; j < n; j++ {
				lu.Data[p*n+j], lu.Data[k*n+j] = lu.Data[k*n+j], lu.Data[p*n+j]
			}
			piv[p], piv[k] = piv[k], piv[p]
			sign = -sign
		}
		pivVal := lu.Data[k*n+k]
		for i := k + 1; i < n; i++ {
			f := lu.Data[i*n+k] / pivVal
			lu.Data[i*n+k] = f
			if f == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				lu.Data[i*n+j] -= f * lu.Data[k*n+j]
			}
		}
	}
	return &LU{lu: lu, piv: piv, sign: sign}, nil
}

// Solve solves A·x = b for the factorised A; b has one or more columns.
func (f *LU) Solve(b *Mat) *Mat {
	n := f.lu.Rows
	if b.Rows != n {
		panic("linalg: LU.Solve dimension mismatch")
	}
	nrhs := b.Cols
	x := NewMat(n, nrhs)
	for i := 0; i < n; i++ {
		copy(x.Row(i), b.Row(f.piv[i]))
	}
	for c := 0; c < nrhs; c++ {
		for i := 1; i < n; i++ {
			s := x.Data[i*nrhs+c]
			for k := 0; k < i; k++ {
				s -= f.lu.Data[i*n+k] * x.Data[k*nrhs+c]
			}
			x.Data[i*nrhs+c] = s
		}
		for i := n - 1; i >= 0; i-- {
			s := x.Data[i*nrhs+c]
			for k := i + 1; k < n; k++ {
				s -= f.lu.Data[i*n+k] * x.Data[k*nrhs+c]
			}
			x.Data[i*nrhs+c] = s / f.lu.Data[i*n+i]
		}
	}
	return x
}

// Solve solves A·x = b by LU with partial pivoting.
func Solve(a, b *Mat) (*Mat, error) {
	f, err := NewLU(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}

// Inverse returns A^{-1} via LU.
func Inverse(a *Mat) (*Mat, error) {
	return Solve(a, Identity(a.Rows))
}
