package linalg

// microKernel4x2 computes the mr×nr register block
//
//	C[i0:i0+me, j0:j0+ne] += alpha · Ap·Bp
//
// where Ap is one packed A micro-panel (kc×4, k-major, see packAPanels)
// and Bp one packed B micro-panel (kc×2, see packBPanels).
//
// The register shape is 4×2 with the k loop unrolled ×4: 8 accumulators
// plus 6 live operands fit the 16 scalar FP registers of amd64/arm64
// without spilling, which measures ~2.3× faster than either a 4×4 block
// (16 accumulators spill) or the streaming loops. The slice-advance
// iteration style (pa = pa[16:]) is deliberate — it lets the compiler
// prove bounds once per unrolled step, where an index-arithmetic loop
// re-checks every load. Padding rows/columns in the panels are zero, so
// the accumulation loop is unconditional; only the write-back is masked
// to me×ne.
func microKernel4x2(kc int, pa, pb []float64, alpha float64, c *Mat, i0, j0, me, ne int) {
	const mr, nr = 4, 2
	var c00, c01 float64
	var c10, c11 float64
	var c20, c21 float64
	var c30, c31 float64

	pa = pa[: kc*mr : kc*mr]
	pb = pb[: kc*nr : kc*nr]
	for len(pa) >= 4*mr && len(pb) >= 4*nr {
		a0, a1, a2, a3 := pa[0], pa[1], pa[2], pa[3]
		b0, b1 := pb[0], pb[1]
		c00 += a0 * b0
		c01 += a0 * b1
		c10 += a1 * b0
		c11 += a1 * b1
		c20 += a2 * b0
		c21 += a2 * b1
		c30 += a3 * b0
		c31 += a3 * b1

		a0, a1, a2, a3 = pa[4], pa[5], pa[6], pa[7]
		b0, b1 = pb[2], pb[3]
		c00 += a0 * b0
		c01 += a0 * b1
		c10 += a1 * b0
		c11 += a1 * b1
		c20 += a2 * b0
		c21 += a2 * b1
		c30 += a3 * b0
		c31 += a3 * b1

		a0, a1, a2, a3 = pa[8], pa[9], pa[10], pa[11]
		b0, b1 = pb[4], pb[5]
		c00 += a0 * b0
		c01 += a0 * b1
		c10 += a1 * b0
		c11 += a1 * b1
		c20 += a2 * b0
		c21 += a2 * b1
		c30 += a3 * b0
		c31 += a3 * b1

		a0, a1, a2, a3 = pa[12], pa[13], pa[14], pa[15]
		b0, b1 = pb[6], pb[7]
		c00 += a0 * b0
		c01 += a0 * b1
		c10 += a1 * b0
		c11 += a1 * b1
		c20 += a2 * b0
		c21 += a2 * b1
		c30 += a3 * b0
		c31 += a3 * b1

		pa = pa[4*mr:]
		pb = pb[4*nr:]
	}
	for len(pa) >= mr && len(pb) >= nr {
		a0, a1, a2, a3 := pa[0], pa[1], pa[2], pa[3]
		b0, b1 := pb[0], pb[1]
		c00 += a0 * b0
		c01 += a0 * b1
		c10 += a1 * b0
		c11 += a1 * b1
		c20 += a2 * b0
		c21 += a2 * b1
		c30 += a3 * b0
		c31 += a3 * b1
		pa = pa[mr:]
		pb = pb[nr:]
	}

	if me == mr && ne == nr {
		r0 := c.Row(i0)[j0 : j0+nr]
		r0[0] += alpha * c00
		r0[1] += alpha * c01
		r1 := c.Row(i0 + 1)[j0 : j0+nr]
		r1[0] += alpha * c10
		r1[1] += alpha * c11
		r2 := c.Row(i0 + 2)[j0 : j0+nr]
		r2[0] += alpha * c20
		r2[1] += alpha * c21
		r3 := c.Row(i0 + 3)[j0 : j0+nr]
		r3[0] += alpha * c30
		r3[1] += alpha * c31
		return
	}

	// Edge tile: masked write-back of the valid me×ne corner.
	var acc [mr][nr]float64
	acc[0] = [nr]float64{c00, c01}
	acc[1] = [nr]float64{c10, c11}
	acc[2] = [nr]float64{c20, c21}
	acc[3] = [nr]float64{c30, c31}
	for r := 0; r < me; r++ {
		row := c.Row(i0 + r)
		for s := 0; s < ne; s++ {
			row[j0+s] += alpha * acc[r][s]
		}
	}
}

// microKernel4x2F32 is the mixed-precision portable kernel: identical
// 4×2 register block and unrolling as microKernel4x2, but the packed
// panels hold float32 elements which are widened to float64 before
// every multiply, and the 8 accumulators are float64 throughout. Each
// operand therefore carries one float32 rounding (relative error
// ≤ 2⁻²⁴); the accumulation itself loses nothing beyond ordinary f64
// summation. Kept structurally in lockstep with the f64 kernel so the
// two stay easy to diff.
func microKernel4x2F32(kc int, pa, pb []float32, alpha float64, c *Mat, i0, j0, me, ne int) {
	const mr, nr = 4, 2
	var c00, c01 float64
	var c10, c11 float64
	var c20, c21 float64
	var c30, c31 float64

	pa = pa[: kc*mr : kc*mr]
	pb = pb[: kc*nr : kc*nr]
	for len(pa) >= mr && len(pb) >= nr {
		a0, a1 := float64(pa[0]), float64(pa[1])
		a2, a3 := float64(pa[2]), float64(pa[3])
		b0, b1 := float64(pb[0]), float64(pb[1])
		c00 += a0 * b0
		c01 += a0 * b1
		c10 += a1 * b0
		c11 += a1 * b1
		c20 += a2 * b0
		c21 += a2 * b1
		c30 += a3 * b0
		c31 += a3 * b1
		pa = pa[mr:]
		pb = pb[nr:]
	}

	if me == mr && ne == nr {
		r0 := c.Row(i0)[j0 : j0+nr]
		r0[0] += alpha * c00
		r0[1] += alpha * c01
		r1 := c.Row(i0 + 1)[j0 : j0+nr]
		r1[0] += alpha * c10
		r1[1] += alpha * c11
		r2 := c.Row(i0 + 2)[j0 : j0+nr]
		r2[0] += alpha * c20
		r2[1] += alpha * c21
		r3 := c.Row(i0 + 3)[j0 : j0+nr]
		r3[0] += alpha * c30
		r3[1] += alpha * c31
		return
	}

	var acc [mr][nr]float64
	acc[0] = [nr]float64{c00, c01}
	acc[1] = [nr]float64{c10, c11}
	acc[2] = [nr]float64{c20, c21}
	acc[3] = [nr]float64{c30, c31}
	for r := 0; r < me; r++ {
		row := c.Row(i0 + r)
		for s := 0; s < ne; s++ {
			row[j0+s] += alpha * acc[r][s]
		}
	}
}
