package linalg

// microKernel computes the mr×nr register block
//
//	C[i0:i0+me, j0:j0+ne] += alpha · Ap·Bp
//
// where Ap is one packed A micro-panel (kc×mr, k-major, see packA) and
// Bp one packed B micro-panel (kc×nr, see packB).
//
// The register shape is 4×2 with the k loop unrolled ×4: 8 accumulators
// plus 6 live operands fit the 16 scalar FP registers of amd64/arm64
// without spilling, which measures ~2.3× faster than either a 4×4 block
// (16 accumulators spill) or the streaming loops. The slice-advance
// iteration style (pa = pa[16:]) is deliberate — it lets the compiler
// prove bounds once per unrolled step, where an index-arithmetic loop
// re-checks every load. Padding rows/columns in the panels are zero, so
// the accumulation loop is unconditional; only the write-back is masked
// to me×ne.
// microKernelRow sweeps one packed A micro-panel against every B
// micro-panel of a macro-tile: C[i0:i0+me, j0:j0+nc] += alpha·Ap·Bp for
// all ceil(nc/nr) panels in pb. Hoisting the jp loop inside the call
// keeps the kc×mr A panel hot in L1 across the whole sweep and
// amortises the per-call setup over the row (thousands of micro-tiles
// per GEMM otherwise pay it individually).
func microKernelRow(kc int, pa, pb []float64, alpha float64, c *Mat, i0, j0, me, nc int) {
	nPanels := (nc + nr - 1) / nr
	for jp := 0; jp < nPanels; jp++ {
		ne := nc - jp*nr
		if ne > nr {
			ne = nr
		}
		microKernel(kc, pa, pb[jp*kc*nr:], alpha, c, i0, j0+jp*nr, me, ne)
	}
}

func microKernel(kc int, pa, pb []float64, alpha float64, c *Mat, i0, j0, me, ne int) {
	var c00, c01 float64
	var c10, c11 float64
	var c20, c21 float64
	var c30, c31 float64

	pa = pa[: kc*mr : kc*mr]
	pb = pb[: kc*nr : kc*nr]
	for len(pa) >= 4*mr && len(pb) >= 4*nr {
		a0, a1, a2, a3 := pa[0], pa[1], pa[2], pa[3]
		b0, b1 := pb[0], pb[1]
		c00 += a0 * b0
		c01 += a0 * b1
		c10 += a1 * b0
		c11 += a1 * b1
		c20 += a2 * b0
		c21 += a2 * b1
		c30 += a3 * b0
		c31 += a3 * b1

		a0, a1, a2, a3 = pa[4], pa[5], pa[6], pa[7]
		b0, b1 = pb[2], pb[3]
		c00 += a0 * b0
		c01 += a0 * b1
		c10 += a1 * b0
		c11 += a1 * b1
		c20 += a2 * b0
		c21 += a2 * b1
		c30 += a3 * b0
		c31 += a3 * b1

		a0, a1, a2, a3 = pa[8], pa[9], pa[10], pa[11]
		b0, b1 = pb[4], pb[5]
		c00 += a0 * b0
		c01 += a0 * b1
		c10 += a1 * b0
		c11 += a1 * b1
		c20 += a2 * b0
		c21 += a2 * b1
		c30 += a3 * b0
		c31 += a3 * b1

		a0, a1, a2, a3 = pa[12], pa[13], pa[14], pa[15]
		b0, b1 = pb[6], pb[7]
		c00 += a0 * b0
		c01 += a0 * b1
		c10 += a1 * b0
		c11 += a1 * b1
		c20 += a2 * b0
		c21 += a2 * b1
		c30 += a3 * b0
		c31 += a3 * b1

		pa = pa[4*mr:]
		pb = pb[4*nr:]
	}
	for len(pa) >= mr && len(pb) >= nr {
		a0, a1, a2, a3 := pa[0], pa[1], pa[2], pa[3]
		b0, b1 := pb[0], pb[1]
		c00 += a0 * b0
		c01 += a0 * b1
		c10 += a1 * b0
		c11 += a1 * b1
		c20 += a2 * b0
		c21 += a2 * b1
		c30 += a3 * b0
		c31 += a3 * b1
		pa = pa[mr:]
		pb = pb[nr:]
	}

	if me == mr && ne == nr {
		r0 := c.Row(i0)[j0 : j0+nr]
		r0[0] += alpha * c00
		r0[1] += alpha * c01
		r1 := c.Row(i0 + 1)[j0 : j0+nr]
		r1[0] += alpha * c10
		r1[1] += alpha * c11
		r2 := c.Row(i0 + 2)[j0 : j0+nr]
		r2[0] += alpha * c20
		r2[1] += alpha * c21
		r3 := c.Row(i0 + 3)[j0 : j0+nr]
		r3[0] += alpha * c30
		r3[1] += alpha * c31
		return
	}

	// Edge tile: masked write-back of the valid me×ne corner.
	var acc [mr][nr]float64
	acc[0] = [nr]float64{c00, c01}
	acc[1] = [nr]float64{c10, c11}
	acc[2] = [nr]float64{c20, c21}
	acc[3] = [nr]float64{c30, c31}
	for r := 0; r < me; r++ {
		row := c.Row(i0 + r)
		for s := 0; s < ne; s++ {
			row[j0+s] += alpha * acc[r][s]
		}
	}
}
