package linalg

// Assembly entry point (microkernel_arm64.s): computes the full 8×4
// tile C += alpha·Ap·Bp on a row-major C with stride ldc doubles; edge
// masking is handled here in the wrapper, never in asm.

//go:noescape
func kernel8x4F64(kc int64, pa, pb *float64, alpha float64, c *float64, ldc int64)

// neonKernel is the arm64 NEON implementation, installed
// unconditionally by cpu_arm64.go (ASIMD is architectural baseline on
// arm64). mc=128 keeps macro-tiles in whole 8-row micro-panels; kc/nc
// match the portable kernel. No f32 variant: the mixed-precision path
// falls back to the portable kernel on arm64 (activeKernelF32).
var neonKernel = kernelImpl{
	name: "neon-8x4",
	mr:   8, nr: 4,
	mc: 128, kc: 256, nc: 256,
	f64: microKernelNEONF64,
	f32: nil,
}

// microKernelNEONF64 adapts the asm ABI to the microKernelF64
// contract. Full tiles write straight into C; edge tiles are computed
// into a zeroed scratch tile — which then holds exactly alpha·acc —
// and the valid me×ne corner is added back under a mask.
func microKernelNEONF64(kc int, pa, pb []float64, alpha float64, c *Mat, i0, j0, me, ne int) {
	if me == 8 && ne == 4 {
		kernel8x4F64(int64(kc), &pa[0], &pb[0], alpha, &c.Data[i0*c.Cols+j0], int64(c.Cols))
		return
	}
	var tile [32]float64
	kernel8x4F64(int64(kc), &pa[0], &pb[0], alpha, &tile[0], 4)
	for r := 0; r < me; r++ {
		row := c.Row(i0 + r)
		for s := 0; s < ne; s++ {
			row[j0+s] += tile[r*4+s]
		}
	}
}
