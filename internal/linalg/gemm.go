package linalg

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Transpose selects whether a GEMM operand is used as-is or transposed.
type Transpose bool

// Operand orientations for Gemm.
const (
	NoTrans Transpose = false
	Trans   Transpose = true
)

func (t Transpose) String() string {
	if t {
		return "T"
	}
	return "N"
}

// Variant identifies one of the four GEMM algorithmic variants
// (paper Table IV): the orientation pair of the two operands.
type Variant int

// The four GEMM variants.
const (
	VariantNN Variant = iota
	VariantNT
	VariantTN
	VariantTT
)

var variantNames = [...]string{"NN", "NT", "TN", "TT"}

func (v Variant) String() string { return variantNames[v] }

// VariantOf returns the variant matching an orientation pair.
func VariantOf(tA, tB Transpose) Variant {
	switch a, b := bool(tA), bool(tB); {
	case !a && !b:
		return VariantNN
	case !a && b:
		return VariantNT
	case a && !b:
		return VariantTN
	default:
		return VariantTT
	}
}

// flopCount accumulates 2·m·n·k for every GEMM call, mirroring the
// paper's runtime FLOP measurement mechanism (§VI-C). It deliberately
// counts only GEMM work. Note the streaming kernels skip inner updates
// whose A element is exactly zero (the av == 0 fast path), so per call
// the counter is an *upper bound* on the multiply-adds actually
// executed; for the dense operands of the chemistry kernels the two
// coincide to within noise.
var flopCount atomic.Int64

// FLOPs returns the GEMM floating-point operations counted so far.
func FLOPs() int64 { return flopCount.Load() }

// ResetFLOPs zeroes the global GEMM FLOP counter and returns the
// previous value.
func ResetFLOPs() int64 { return flopCount.Swap(0) }

// AddFLOPs credits n externally-performed floating point operations to
// the global counter (used by non-GEMM kernels that opt in).
func AddFLOPs(n int64) { flopCount.Add(n) }

// parallelThreshold is the m*n*k product above which Gemm fans work out
// across goroutines.
const parallelThreshold = 1 << 17

// Kernel selects the execution engine for a GEMM call.
type Kernel int

// The available GEMM engines.
const (
	// KernelAuto picks between streaming and packed by a size
	// heuristic: small problems run the streaming loops (no packing
	// cost), larger ones the packed engine. The autotuner refines this
	// per shape by measurement.
	KernelAuto Kernel = iota
	// KernelStream runs the four variant streaming loops (the original
	// engine): no operand copies, loop order chosen by variant.
	KernelStream
	// KernelPacked runs the packed, cache-tiled, register-blocked
	// engine: operands are packed into contiguous micro-panels (the
	// transpose folds into the pack, so all four variants reach one
	// micro-kernel), then an mr×nr register block sweeps kc panels.
	KernelPacked
	// KernelPackedF32 runs the packed engine with float32 panel storage
	// and float64 register accumulation: the opt-in mixed-precision
	// path. Each A/B element carries one float32 rounding (relative
	// error ≤ 2⁻²⁴); the contraction itself stays double. See DESIGN.md
	// §11 for the error model.
	KernelPackedF32
)

var kernelNames = [...]string{"auto", "stream", "packed", "packed-f32"}

func (k Kernel) String() string { return kernelNames[k] }

// Precision selects the packed-panel storage precision for callers that
// thread the knob through higher layers (scf.Options, mp2.Options).
type Precision int

// The available panel storage precisions.
const (
	// F64 is full double precision everywhere (the default).
	F64 Precision = iota
	// F32 stores packed A/B panels in float32 with float64
	// accumulation — roughly half the packing bandwidth at ~1e-7
	// relative accuracy per GEMM.
	F32
)

var precisionNames = [...]string{"f64", "f32"}

func (p Precision) String() string { return precisionNames[p] }

// packedThreshold is the m*n*k product above which KernelAuto prefers
// the packed engine when only the portable micro-kernel is available:
// below it the O(mk + kn) packing traffic is not amortised by the
// O(mnk) arithmetic.
const packedThreshold = 1 << 15

// packedThresholdAsm is the KernelAuto crossover when an assembly
// micro-kernel is active. A ~5× faster inner kernel moves the packing
// break-even down, not up: packing cost is O(mk+kn) either way, but the
// streaming alternative's arithmetic got no faster, so the packed
// engine wins earlier. Measured on AVX2 (see gemm_auto_test.go): the
// packed engine already wins 24³ decisively; 2·16³ ≈ the true
// break-even within noise.
const packedThresholdAsm = 1 << 13

// packedCrossover returns the live KernelAuto stream→packed crossover,
// re-arbitrated for the active micro-kernel (satellite: the break-even
// moves when the asm kernel is installed and enabled).
func packedCrossover() int64 {
	if AsmEnabled() {
		return packedThresholdAsm
	}
	return packedThreshold
}

// Gemm computes C = alpha·op(A)·op(B) + beta·C where op is controlled by
// tA and tB, choosing the engine automatically. Dimensions: op(A) is
// m×k, op(B) is k×n, C is m×n. The work is counted as 2·m·n·k FLOPs in
// the global counter.
func Gemm(tA, tB Transpose, alpha float64, a, b *Mat, beta float64, c *Mat) {
	GemmKernel(KernelAuto, tA, tB, alpha, a, b, beta, c)
}

// GemmPrec is Gemm with a panel-precision request. F64 is plain Gemm.
// F32 routes problems above the packed crossover to the mixed-precision
// packed engine; below it the streaming loops run in full double — tiny
// problems don't amortise packing in either precision, and keeping them
// exact costs nothing.
func GemmPrec(prec Precision, tA, tB Transpose, alpha float64, a, b *Mat, beta float64, c *Mat) {
	if prec != F32 {
		Gemm(tA, tB, alpha, a, b, beta, c)
		return
	}
	m, k := a.Rows, a.Cols
	if tA {
		m, k = a.Cols, a.Rows
	}
	n := b.Cols
	if tB {
		n = b.Rows
	}
	kern := KernelStream
	if int64(m)*int64(n)*int64(k) > packedCrossover() {
		kern = KernelPackedF32
	}
	GemmKernel(kern, tA, tB, alpha, a, b, beta, c)
}

// GemmKernel is Gemm with an explicit engine choice. KernelAuto applies
// the size heuristic; KernelStream and KernelPacked force their engine
// (used by the autotuner's per-shape arbitration and the benchmarks).
func GemmKernel(kern Kernel, tA, tB Transpose, alpha float64, a, b *Mat, beta float64, c *Mat) {
	m, k := a.Rows, a.Cols
	if tA {
		m, k = a.Cols, a.Rows
	}
	kb, n := b.Rows, b.Cols
	if tB {
		kb, n = b.Cols, b.Rows
	}
	if k != kb {
		panic("linalg: Gemm inner dimension mismatch")
	}
	if c.Rows != m || c.Cols != n {
		panic("linalg: Gemm output dimension mismatch")
	}
	flopCount.Add(2 * int64(m) * int64(n) * int64(k))

	if beta == 0 {
		c.Zero()
	} else if beta != 1 {
		c.Scale(beta)
	}
	if m == 0 || n == 0 || k == 0 || alpha == 0 {
		return
	}

	work := int64(m) * int64(n) * int64(k)
	if kern == KernelAuto {
		kern = KernelStream
		if work > packedCrossover() {
			kern = KernelPacked
		}
	}
	if kern == KernelPacked {
		gemmPacked(tA, tB, alpha, a, b, c)
		return
	}
	if kern == KernelPackedF32 {
		gemmPackedF32(tA, tB, alpha, a, b, c)
		return
	}

	nw := 1
	if work > parallelThreshold {
		nw = runtime.GOMAXPROCS(0)
		if nw > m {
			nw = m
		}
	}
	if nw <= 1 {
		gemmRange(tA, tB, alpha, a, b, c, 0, m)
		return
	}
	var wg sync.WaitGroup
	chunk := (m + nw - 1) / nw
	for w := 0; w < nw; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			gemmRange(tA, tB, alpha, a, b, c, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// gemmRange dispatches rows [lo,hi) of C to the variant kernel.
func gemmRange(tA, tB Transpose, alpha float64, a, b, c *Mat, lo, hi int) {
	switch VariantOf(tA, tB) {
	case VariantNN:
		gemmNN(alpha, a, b, c, lo, hi)
	case VariantNT:
		gemmNT(alpha, a, b, c, lo, hi)
	case VariantTN:
		gemmTN(alpha, a, b, c, lo, hi)
	default:
		gemmTT(alpha, a, b, c, lo, hi)
	}
}

// gemmNN: C += alpha·A·B. Streams rows of B with an i-k-j loop order,
// which is cache-friendly for row-major operands — typically the fastest
// variant for square-ish shapes.
func gemmNN(alpha float64, a, b, c *Mat, lo, hi int) {
	n := c.Cols
	k := a.Cols
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		crow := c.Row(i)
		for l := 0; l < k; l++ {
			av := alpha * arow[l]
			if av == 0 {
				continue
			}
			brow := b.Data[l*n : l*n+n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// gemmNT: C += alpha·A·Bᵀ. Pure dot products of contiguous rows — the
// best variant when k is very large and m, n small (the "tall-skinny"
// contraction shapes of RI-MP2, cf. Table IV row 1).
func gemmNT(alpha float64, a, b, c *Mat, lo, hi int) {
	n := c.Cols
	k := a.Cols
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		crow := c.Row(i)
		for j := 0; j < n; j++ {
			brow := b.Data[j*k : j*k+k]
			var s float64
			for l, av := range arow {
				s += av * brow[l]
			}
			crow[j] += alpha * s
		}
	}
}

// tnBlock is the k-panel height for the TN kernel.
const tnBlock = 64

// gemmTN: C += alpha·Aᵀ·B. Both operands are traversed row-by-row in a
// k-outer accumulation, so all reads are contiguous; the variant of
// choice when m and n are small relative to k (Table IV rows 2–3).
func gemmTN(alpha float64, a, b, c *Mat, lo, hi int) {
	n := c.Cols
	k := a.Rows // op(A) is m×k with A stored k×m
	for l0 := 0; l0 < k; l0 += tnBlock {
		l1 := l0 + tnBlock
		if l1 > k {
			l1 = k
		}
		for l := l0; l < l1; l++ {
			arow := a.Row(l)
			brow := b.Data[l*n : l*n+n]
			for i := lo; i < hi; i++ {
				av := alpha * arow[i]
				if av == 0 {
					continue
				}
				crow := c.Row(i)
				for j, bv := range brow {
					crow[j] += av * bv
				}
			}
		}
	}
}

// gemmTT: C += alpha·Aᵀ·Bᵀ. Strided reads of both operands; kept
// deliberately simple — like the vendor libraries in Table IV, TT is the
// slowest variant for most shapes, which is exactly what gives the
// auto-tuner something to avoid.
func gemmTT(alpha float64, a, b, c *Mat, lo, hi int) {
	n := c.Cols
	k := a.Rows
	for i := lo; i < hi; i++ {
		crow := c.Row(i)
		for j := 0; j < n; j++ {
			var s float64
			for l := 0; l < k; l++ {
				s += a.Data[l*a.Cols+i] * b.Data[j*b.Cols+l]
			}
			crow[j] += alpha * s
		}
	}
}

// MatMul returns op(A)·op(B) as a fresh matrix (alpha=1, beta=0).
func MatMul(tA, tB Transpose, a, b *Mat) *Mat {
	m := a.Rows
	if tA {
		m = a.Cols
	}
	n := b.Cols
	if tB {
		n = b.Rows
	}
	c := NewMat(m, n)
	Gemm(tA, tB, 1, a, b, 0, c)
	return c
}
