package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// forceAsm flips the assembly microkernel on or off for the duration of
// a test and registers the restore. Returns false (and skips nothing)
// when asked to enable asm on a machine without a native kernel.
func forceAsm(t *testing.T, on bool) bool {
	t.Helper()
	if on && !AsmAvailable() {
		return false
	}
	prev := SetAsmEnabled(on)
	t.Cleanup(func() { SetAsmEnabled(prev) })
	return true
}

// Satellite pin: KernelAuto must re-arbitrate its stream→packed
// crossover when the assembly microkernel is active — the asm kernel
// amortises its packing cost at a quarter of the portable kernel's
// problem volume.
func TestPackedCrossoverRearbitrates(t *testing.T) {
	if AsmAvailable() {
		prev := SetAsmEnabled(true)
		if got := packedCrossover(); got != packedThresholdAsm {
			t.Errorf("asm enabled: crossover %d, want packedThresholdAsm %d", got, packedThresholdAsm)
		}
		SetAsmEnabled(prev)
	}
	prev := SetAsmEnabled(false)
	if got := packedCrossover(); got != packedThreshold {
		t.Errorf("asm disabled: crossover %d, want packedThreshold %d", got, packedThreshold)
	}
	SetAsmEnabled(prev)
	if packedThresholdAsm >= packedThreshold {
		t.Errorf("asm crossover %d must sit below the portable one %d", packedThresholdAsm, packedThreshold)
	}
}

// edgeShapes builds the shape classes that exercise every microkernel
// path: single row/column, exact multiples of the register tile, one
// off either side of the tile, kc-panel boundaries, and a multi-tile
// interior. mr/nr/kc come from the active kernel so the same test is
// meaningful for any microkernel geometry.
func edgeShapes(mr, nr, kc int) [][3]int {
	ms := []int{1, mr - 1, mr, mr + 1, 2*mr + 3}
	ns := []int{1, nr - 1, nr, nr + 1, 2*nr + 3}
	ks := []int{1, 2, 7, kc - 1, kc, kc + 7}
	var shapes [][3]int
	for _, m := range ms {
		for _, n := range ns {
			for _, k := range ks {
				if m < 1 || n < 1 || k < 1 {
					continue
				}
				shapes = append(shapes, [3]int{m, k, n})
			}
		}
	}
	// One shape spanning several macro-tiles in every dimension.
	shapes = append(shapes, [3]int{3*mr + 1, kc + 3, 3*nr + 2})
	return shapes
}

// The assembly f64 microkernel must agree with the portable pure-Go
// microkernel to accumulated-rounding tolerance on every edge-shape
// class, orientation, and alpha/beta combination. (Not bitwise: the
// asm kernel contracts multiply-add pairs through FMA, the portable
// kernel rounds each product.)
func TestAsmKernelMatchesPortableF64(t *testing.T) {
	if !forceAsm(t, true) {
		t.Skip("no assembly microkernel on this machine")
	}
	impl := activeKernel()
	rng := rand.New(rand.NewSource(11))
	for _, s := range edgeShapes(impl.mr, impl.nr, impl.kc) {
		m, k, n := s[0], s[1], s[2]
		for _, tA := range []Transpose{NoTrans, Trans} {
			for _, tB := range []Transpose{NoTrans, Trans} {
				for _, ab := range [][2]float64{{1, 0}, {2.5, 0.5}, {-0.75, 1}} {
					a := randMat(rng, m, k)
					if tA {
						a = randMat(rng, k, m)
					}
					b := randMat(rng, k, n)
					if tB {
						b = randMat(rng, n, k)
					}
					c0 := randMat(rng, m, n)

					got := c0.Clone()
					GemmKernel(KernelPacked, tA, tB, ab[0], a, b, ab[1], got)

					SetAsmEnabled(false)
					want := c0.Clone()
					GemmKernel(KernelPacked, tA, tB, ab[0], a, b, ab[1], want)
					SetAsmEnabled(true)

					tol := 1e-13 * float64(k+1)
					for i := range got.Data {
						if d := math.Abs(got.Data[i] - want.Data[i]); d > tol {
							t.Fatalf("m=%d k=%d n=%d tA=%v tB=%v α=%g β=%g: asm vs portable |Δ|=%g at %d",
								m, k, n, tA, tB, ab[0], ab[1], d, i)
						}
					}
				}
			}
		}
	}
}

// The mixed-precision packed path is bitwise deterministic across
// microkernels when α is a power of two (as at every chemistry call
// site, which uses α=1): every product is f32×f32 widened to f64,
// which is exact (24-bit × 24-bit mantissas fit in 53), so FMA and
// mul+add accumulate identical bits, and the α·acc write-back is exact
// when α's multiplication cannot round. For general α the kernels may
// differ by one rounding in the write-back only. See DESIGN.md §11.
func TestAsmF32KernelBitIdenticalToPortable(t *testing.T) {
	if !forceAsm(t, true) {
		t.Skip("no assembly microkernel on this machine")
	}
	// On architectures whose asm kernel has no f32 variant the packed
	// f32 engine falls back to the portable kernel and the comparison
	// is trivially bitwise — the test still pins the contract.
	impl := activeKernel()
	rng := rand.New(rand.NewSource(12))
	for _, s := range edgeShapes(impl.mr, impl.nr, impl.kc) {
		m, k, n := s[0], s[1], s[2]
		a := randMat(rng, m, k)
		b := randMat(rng, k, n)
		c0 := randMat(rng, m, n)

		got := c0.Clone()
		GemmKernel(KernelPackedF32, NoTrans, NoTrans, 1, a, b, 0.5, got)

		SetAsmEnabled(false)
		want := c0.Clone()
		GemmKernel(KernelPackedF32, NoTrans, NoTrans, 1, a, b, 0.5, want)
		SetAsmEnabled(true)

		for i := range got.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("m=%d k=%d n=%d: asm f32 %v != portable f32 %v at %d (must be bit-identical)",
					m, k, n, got.Data[i], want.Data[i], i)
			}
		}
	}
}

// Property test: the packed-f32 engine's error against the exact f64
// result is bounded by the storage quantisation — each packed operand
// carries at most a 2⁻²⁴ relative perturbation and the accumulation is
// exact in f64, so per element |Δ| ≤ ~2·k·2⁻²⁴·max|a|·max|b| with a
// comfortable safety factor. Runs whichever f32 microkernel is active.
func TestPackedF32ErrorBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		m := 1 + rng.Intn(40)
		k := 1 + rng.Intn(300)
		n := 1 + rng.Intn(40)
		scale := math.Exp(rng.Float64()*8 - 4) // ~e⁻⁴..e⁴ dynamic range
		a := randMat(rng, m, k)
		b := randMat(rng, k, n)
		maxA, maxB := 0.0, 0.0
		for i := range a.Data {
			a.Data[i] *= scale
			if v := math.Abs(a.Data[i]); v > maxA {
				maxA = v
			}
		}
		for i := range b.Data {
			if v := math.Abs(b.Data[i]); v > maxB {
				maxB = v
			}
		}
		got := NewMat(m, n)
		GemmKernel(KernelPackedF32, NoTrans, NoTrans, 1, a, b, 0, got)
		want := NewMat(m, n)
		GemmKernel(KernelStream, NoTrans, NoTrans, 1, a, b, 0, want)
		tol := 4 * float64(k) * maxA * maxB * math.Pow(2, -24)
		for i := range got.Data {
			if d := math.Abs(got.Data[i] - want.Data[i]); d > tol {
				t.Fatalf("trial %d m=%d k=%d n=%d: f32 error %g beyond bound %g", trial, m, k, n, d, tol)
			}
		}
	}
}

// Fuzz the pack→microkernel round trip: arbitrary small shapes and
// seeds through the packed engines must match the naive reference (f64,
// rounding tolerance) and the portable f32 path (bitwise). Covers the
// edge-tile scratch write-back, zero-padded panels, and both packers.
func FuzzPackKernel(f *testing.F) {
	f.Add(uint8(1), uint8(1), uint8(1), int64(1))
	f.Add(uint8(6), uint8(8), uint8(3), int64(2))
	f.Add(uint8(7), uint8(9), uint8(33), int64(3))
	f.Add(uint8(13), uint8(40), uint8(17), int64(4))
	f.Fuzz(func(t *testing.T, mm, nn, kk uint8, seed int64) {
		m := 1 + int(mm)%48
		n := 1 + int(nn)%48
		k := 1 + int(kk)%48
		rng := rand.New(rand.NewSource(seed))
		a := randMat(rng, m, k)
		b := randMat(rng, k, n)
		c0 := randMat(rng, m, n)

		want := c0.Clone()
		refGemm(NoTrans, NoTrans, 1.3, a, b, 0.6, want)
		got := c0.Clone()
		GemmKernel(KernelPacked, NoTrans, NoTrans, 1.3, a, b, 0.6, got)
		tol := 1e-12 * float64(k+1)
		for i := range got.Data {
			if d := math.Abs(got.Data[i] - want.Data[i]); d > tol {
				t.Fatalf("packed vs reference: m=%d k=%d n=%d |Δ|=%g", m, k, n, d)
			}
		}

		// α=1 for the f32 cross-kernel comparison: bit-identity is the
		// contract only when α·acc cannot round (see DESIGN.md §11).
		g32 := c0.Clone()
		GemmKernel(KernelPackedF32, NoTrans, NoTrans, 1, a, b, 0.6, g32)
		if AsmAvailable() {
			prev := SetAsmEnabled(false)
			p32 := c0.Clone()
			GemmKernel(KernelPackedF32, NoTrans, NoTrans, 1, a, b, 0.6, p32)
			SetAsmEnabled(prev)
			for i := range g32.Data {
				if g32.Data[i] != p32.Data[i] {
					t.Fatalf("f32 asm/portable bit mismatch: m=%d k=%d n=%d at %d", m, k, n, i)
				}
			}
		}
	})
}
