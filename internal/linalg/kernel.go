package linalg

import (
	"os"
	"strings"
	"sync/atomic"
)

// microKernelF64 computes one register block of the packed engine:
// C[i0:i0+me, j0:j0+ne] += alpha·Ap·Bp from one packed A micro-panel
// (kc×mr, k-major) and one packed B micro-panel (kc×nr). Padding
// rows/columns in the panels are zero, so implementations may always
// compute the full mr×nr tile and mask only the write-back.
type microKernelF64 func(kc int, pa, pb []float64, alpha float64, c *Mat, i0, j0, me, ne int)

// microKernelF32 is the mixed-precision variant: the packed panels
// store float32 elements, every product is accumulated in float64
// registers, and the write-back into C is float64. Storage precision is
// the only thing that drops — see DESIGN.md §11 for the error model.
type microKernelF32 func(kc int, pa, pb []float32, alpha float64, c *Mat, i0, j0, me, ne int)

// kernelImpl bundles one micro-kernel implementation with the register
// block shape its packed panels are laid out for and the cache-blocking
// parameters tuned to it. mc must be a multiple of mr and nc a multiple
// of nr so macro-tiles decompose into whole micro-panels.
type kernelImpl struct {
	name       string // reported by MicroKernelName and the benchmarks
	mr, nr     int    // register block: mr rows × nr columns of C
	mc, kc, nc int    // macro-tile blocking (rows of A, inner panel, cols of B)
	f64        microKernelF64
	f32        microKernelF32 // nil if this impl has no mixed-precision kernel
}

// goKernel is the portable pure-Go implementation: a 4×2 register block
// (the widest spill-free shape on 16 scalar FP registers), always
// available, and the cross-check reference for the assembly kernels.
var goKernel = kernelImpl{
	name: "go-4x2",
	mr:   4, nr: 2,
	mc: 128, kc: 256, nc: 256,
	f64: microKernel4x2,
	f32: microKernel4x2F32,
}

// asmKernel is installed by the per-architecture init (cpu_amd64.go,
// cpu_arm64.go) when the CPU supports it; nil means only the portable
// kernel exists. cpuFeatures is the detected feature list for
// reporting, set by the same init.
var (
	asmKernel   *kernelImpl
	cpuFeatures string
)

// asmOff force-disables the assembly kernels at runtime. It is set at
// startup by the FRAGMD_NOASM environment variable (any non-empty
// value) and togglable through SetAsmEnabled — the seam the test suite
// and the same-run asm↔pure-Go benchmark rows use.
var asmOff atomic.Bool

func init() {
	if os.Getenv("FRAGMD_NOASM") != "" {
		asmOff.Store(true)
	}
}

// activeKernel returns the micro-kernel the packed f64 engine dispatches
// to: the assembly kernel when the CPU supports one and it has not been
// disabled, otherwise the portable Go kernel.
func activeKernel() *kernelImpl {
	if asmKernel != nil && !asmOff.Load() {
		return asmKernel
	}
	return &goKernel
}

// activeKernelF32 returns the micro-kernel for the mixed-precision
// packed engine. An architecture whose assembly kernel has no f32
// variant falls back to the portable kernel for the whole f32 path
// (pack layout and kernel must agree on mr/nr).
func activeKernelF32() *kernelImpl {
	k := activeKernel()
	if k.f32 == nil {
		return &goKernel
	}
	return k
}

// AsmAvailable reports whether a CPU-specific assembly micro-kernel was
// detected and installed for this machine (independent of whether it is
// currently enabled).
func AsmAvailable() bool { return asmKernel != nil }

// AsmEnabled reports whether the packed engine currently dispatches to
// an assembly micro-kernel.
func AsmEnabled() bool { return asmKernel != nil && !asmOff.Load() }

// SetAsmEnabled enables or disables the assembly micro-kernels at
// runtime and returns the previous setting. Disabling falls back to the
// portable pure-Go kernel — the knob behind the FRAGMD_NOASM
// environment variable, the golden-trajectory tests (which pin the
// portable kernel for machine-independent bit-exactness) and the
// same-run asm↔pure-Go benchmark ratio rows. Safe for concurrent use;
// in-flight GEMMs finish on the kernel they started with.
func SetAsmEnabled(on bool) (prev bool) {
	prev = !asmOff.Load()
	asmOff.Store(!on)
	return prev
}

// MicroKernelName returns the name of the micro-kernel the packed f64
// engine currently dispatches to (e.g. "avx2-6x8", "neon-8x4",
// "go-4x2").
func MicroKernelName() string { return activeKernel().name }

// MicroKernelF32Name returns the name of the micro-kernel serving the
// mixed-precision packed path.
func MicroKernelF32Name() string { return activeKernelF32().name }

// CPUFeatures returns the detected SIMD feature list relevant to kernel
// dispatch as a comma-separated string (e.g. "avx,fma,avx2,avx512f" or
// "neon"); empty when no features beyond the architecture baseline were
// detected.
func CPUFeatures() string { return cpuFeatures }

// joinFeatures renders a detected-feature list for CPUFeatures.
func joinFeatures(fs []string) string { return strings.Join(fs, ",") }
