// Package linalg provides the dense linear-algebra substrate used by the
// whole library: a row-major matrix type, general matrix multiplication
// with four algorithmic variants (NN, NT, TN, TT), a symmetric
// eigensolver, Cholesky and LU factorisations, and a global FLOP counter
// mirroring the paper's runtime FLOP accounting (2·m·n·k per GEMM call).
//
// The paper executes its bottlenecks as sequences of vendor DGEMMs on
// MI250X/A100 GPUs; here the same call graph runs on pure-Go kernels.
// The four GEMM variants use genuinely different loop orders and blocking
// so that their relative performance differs by shape, which is what the
// runtime auto-tuner (package autotune) exploits, exactly as the paper's
// Table IV motivates.
package linalg

import (
	"fmt"
	"math"
)

// Mat is a dense row-major matrix.
type Mat struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, element (i,j) at Data[i*Cols+j]
}

// NewMat returns a zeroed r×c matrix.
func NewMat(r, c int) *Mat {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("linalg: negative dimension %dx%d", r, c))
	}
	return &Mat{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// NewMatFrom returns an r×c matrix backed by a copy of data (row-major).
func NewMatFrom(r, c int, data []float64) *Mat {
	if len(data) != r*c {
		panic(fmt.Sprintf("linalg: data length %d != %d*%d", len(data), r, c))
	}
	m := NewMat(r, c)
	copy(m.Data, data)
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Mat {
	m := NewMat(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns element (i, j).
func (m *Mat) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Mat) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add increments element (i, j) by v.
func (m *Mat) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Row returns a view (not a copy) of row i.
func (m *Mat) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Mat) Clone() *Mat {
	c := NewMat(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// CopyFrom copies the contents of src into m; dimensions must match.
func (m *Mat) CopyFrom(src *Mat) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic("linalg: CopyFrom dimension mismatch")
	}
	copy(m.Data, src.Data)
}

// Zero sets every element of m to zero.
func (m *Mat) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// T returns a newly allocated transpose of m.
func (m *Mat) T() *Mat {
	t := NewMat(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.Data[j*t.Cols+i] = v
		}
	}
	return t
}

// Scale multiplies every element of m by s and returns m.
func (m *Mat) Scale(s float64) *Mat {
	for i := range m.Data {
		m.Data[i] *= s
	}
	return m
}

// AxpyMat computes m += s*x element-wise; dimensions must match.
func (m *Mat) AxpyMat(s float64, x *Mat) *Mat {
	if m.Rows != x.Rows || m.Cols != x.Cols {
		panic("linalg: AxpyMat dimension mismatch")
	}
	for i, v := range x.Data {
		m.Data[i] += s * v
	}
	return m
}

// Sym symmetrises m in place: m = (m + mᵀ)/2. m must be square.
func (m *Mat) Sym() *Mat {
	if m.Rows != m.Cols {
		panic("linalg: Sym requires a square matrix")
	}
	n := m.Rows
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := 0.5 * (m.Data[i*n+j] + m.Data[j*n+i])
			m.Data[i*n+j] = v
			m.Data[j*n+i] = v
		}
	}
	return m
}

// Trace returns the trace of a square matrix.
func (m *Mat) Trace() float64 {
	if m.Rows != m.Cols {
		panic("linalg: Trace requires a square matrix")
	}
	var t float64
	for i := 0; i < m.Rows; i++ {
		t += m.Data[i*m.Cols+i]
	}
	return t
}

// MaxAbs returns the largest absolute element of m (0 for empty).
func (m *Mat) MaxAbs() float64 {
	var mx float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Mat) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Dot returns the element-wise inner product tr(aᵀb).
func Dot(a, b *Mat) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("linalg: Dot dimension mismatch")
	}
	var s float64
	for i, v := range a.Data {
		s += v * b.Data[i]
	}
	return s
}

// MulVec computes y = m·x for a vector x of length m.Cols.
func (m *Mat) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic("linalg: MulVec dimension mismatch")
	}
	y := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// String renders small matrices for debugging.
func (m *Mat) String() string {
	s := fmt.Sprintf("Mat %dx%d\n", m.Rows, m.Cols)
	if m.Rows*m.Cols > 400 {
		return s + "  (too large to print)"
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			s += fmt.Sprintf(" % .8f", m.At(i, j))
		}
		s += "\n"
	}
	return s
}
