package linalg

// Tensor3 is a dense rank-3 tensor stored contiguously with the first
// index slowest: element (p, i, j) lives at Data[(p*N2+i)*N3+j].
// It is the storage used for the RI three-index intermediates
// B^P_μν, B^P_ia and Γ^P_μν of the paper; the contiguous layout allows
// zero-copy matrix views so every contraction is a plain GEMM.
type Tensor3 struct {
	N1, N2, N3 int
	Data       []float64
}

// NewTensor3 allocates a zeroed n1×n2×n3 tensor.
func NewTensor3(n1, n2, n3 int) *Tensor3 {
	return &Tensor3{N1: n1, N2: n2, N3: n3, Data: make([]float64, n1*n2*n3)}
}

// At returns element (p, i, j).
func (t *Tensor3) At(p, i, j int) float64 { return t.Data[(p*t.N2+i)*t.N3+j] }

// Set assigns element (p, i, j).
func (t *Tensor3) Set(p, i, j int, v float64) { t.Data[(p*t.N2+i)*t.N3+j] = v }

// Add increments element (p, i, j) by v.
func (t *Tensor3) Add(p, i, j int, v float64) { t.Data[(p*t.N2+i)*t.N3+j] += v }

// Slice returns a zero-copy n2×n3 matrix view of block p. Mutating the
// view mutates the tensor.
func (t *Tensor3) Slice(p int) *Mat {
	off := p * t.N2 * t.N3
	return &Mat{Rows: t.N2, Cols: t.N3, Data: t.Data[off : off+t.N2*t.N3]}
}

// Flatten returns a zero-copy N1×(N2·N3) matrix view of the whole tensor,
// used to apply J^{-1/2} across the auxiliary index with one GEMM.
func (t *Tensor3) Flatten() *Mat {
	return &Mat{Rows: t.N1, Cols: t.N2 * t.N3, Data: t.Data}
}

// FlattenRows returns a zero-copy (N1·N2)×N3 matrix view of the tensor,
// used to transform the trailing index of every (p, i) row with one
// batched GEMM — the macro-tile shape of the DF/RI-MP2 AO→MO pipeline.
func (t *Tensor3) FlattenRows() *Mat {
	return &Mat{Rows: t.N1 * t.N2, Cols: t.N3, Data: t.Data}
}

// TransposeBlocks returns a new N1×N3×N2 tensor with every leading-index
// block transposed: out(p, j, i) = t(p, i, j). It is the reorder between
// the two batched GEMMs of the AO→MO transform.
func (t *Tensor3) TransposeBlocks() *Tensor3 {
	out := NewTensor3(t.N1, t.N3, t.N2)
	for p := 0; p < t.N1; p++ {
		src := t.Slice(p)
		dst := out.Slice(p)
		for i := 0; i < t.N2; i++ {
			row := src.Row(i)
			for j, v := range row {
				dst.Data[j*t.N2+i] = v
			}
		}
	}
	return out
}

// Clone returns a deep copy.
func (t *Tensor3) Clone() *Tensor3 {
	c := NewTensor3(t.N1, t.N2, t.N3)
	copy(c.Data, t.Data)
	return c
}

// Zero sets all elements to zero.
func (t *Tensor3) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}
