package linalg

// Assembly entry points (microkernel_amd64.s). Both compute the full
// 6×8 tile C += alpha·Ap·Bp on a row-major C with stride ldc doubles;
// edge masking is handled here in the wrappers, never in asm.

//go:noescape
func kernel6x8F64(kc int64, pa, pb *float64, alpha float64, c *float64, ldc int64)

//go:noescape
func kernel6x8F32(kc int64, pa, pb *float32, alpha float64, c *float64, ldc int64)

// avx2Kernel is the amd64 AVX2/FMA implementation, installed by the
// cpu_amd64.go feature probe when AVX2+FMA are present and the OS has
// enabled ymm state. Blocking chosen by measurement (the driver repacks
// B per macro-tile, so tall mc tiles — fewer B repacks per column strip
// — beat the classic L2-sized square tile here): mc=384 is 64 whole
// 6-row micro-panels.
var avx2Kernel = kernelImpl{
	name: "avx2-6x8",
	mr:   6, nr: 8,
	mc: 384, kc: 256, nc: 256,
	f64: microKernelAVX2F64,
	f32: microKernelAVX2F32,
}

// microKernelAVX2F64 adapts the asm ABI to the microKernelF64 contract.
// Full tiles write straight into C; edge tiles (me<6 or ne<8, from the
// zero-padded packed panels) are computed into a zeroed scratch tile —
// which then holds exactly alpha·acc — and the valid me×ne corner is
// added back under a mask. The scratch stays on the stack (no escape:
// the pointer passed to asm is noescape).
func microKernelAVX2F64(kc int, pa, pb []float64, alpha float64, c *Mat, i0, j0, me, ne int) {
	if me == 6 && ne == 8 {
		kernel6x8F64(int64(kc), &pa[0], &pb[0], alpha, &c.Data[i0*c.Cols+j0], int64(c.Cols))
		return
	}
	var tile [48]float64
	kernel6x8F64(int64(kc), &pa[0], &pb[0], alpha, &tile[0], 8)
	for r := 0; r < me; r++ {
		row := c.Row(i0 + r)
		for s := 0; s < ne; s++ {
			row[j0+s] += tile[r*8+s]
		}
	}
}

// microKernelAVX2F32 is the mixed-precision adapter: float32 packed
// panels widened in-register (VCVTPS2PD / VCVTSS2SD), float64
// accumulation and write-back. Same edge strategy as the f64 wrapper.
func microKernelAVX2F32(kc int, pa, pb []float32, alpha float64, c *Mat, i0, j0, me, ne int) {
	if me == 6 && ne == 8 {
		kernel6x8F32(int64(kc), &pa[0], &pb[0], alpha, &c.Data[i0*c.Cols+j0], int64(c.Cols))
		return
	}
	var tile [48]float64
	kernel6x8F32(int64(kc), &pa[0], &pb[0], alpha, &tile[0], 8)
	for r := 0; r < me; r++ {
		row := c.Row(i0 + r)
		for s := 0; s < ne; s++ {
			row[j0+s] += tile[r*8+s]
		}
	}
}
