#include "textflag.h"

// NEON 8×4 f64 micro-kernel. See DESIGN.md §11 for the ABI contract.
//
// Computes C[0:8, 0:4] += alpha · Ap·Bp on a row-major C with stride
// ldc, from packed micro-panels:
//
//	pa[l*8 + r] = A(r, l)   (k-major, one 8-row micro-panel)
//	pb[l*4 + s] = B(l, s)   (k-major, one 4-column micro-panel)
//
// The full 8×4 tile is always computed and written — edge masking is
// the Go wrapper's job. kc ≥ 1 required.
//
// Register allocation:
//
//	V0..V15   8×4 accumulator block, row r in V(2r) | V(2r+1)
//	V16, V17  one k-step of B (4 doubles)
//	V20..V23  one k-step of A (8 doubles)
//	V28       broadcast of one A element (VDUP temp)
//	V29       alpha broadcast at write-back
//	V24, V25  C row staging at write-back
//
// The Go assembler has no by-element FMLA (VFMLA Vn.D[i]) and no
// vector VFMUL/VFADD, so A elements are VDUP-broadcast into V28
// (8 VDUPs + 16 FMLAs per k-step = 64 flops) and the write-back is a
// third FMLA pass: C_row += alphaVec · acc.

// func kernel8x4F64(kc int64, pa, pb *float64, alpha float64, c *float64, ldc int64)
TEXT ·kernel8x4F64(SB), NOSPLIT, $0-48
	MOVD kc+0(FP), R0
	MOVD pa+8(FP), R1
	MOVD pb+16(FP), R2
	MOVD c+32(FP), R3
	MOVD ldc+40(FP), R4

	VEOR V0.B16, V0.B16, V0.B16
	VEOR V1.B16, V1.B16, V1.B16
	VEOR V2.B16, V2.B16, V2.B16
	VEOR V3.B16, V3.B16, V3.B16
	VEOR V4.B16, V4.B16, V4.B16
	VEOR V5.B16, V5.B16, V5.B16
	VEOR V6.B16, V6.B16, V6.B16
	VEOR V7.B16, V7.B16, V7.B16
	VEOR V8.B16, V8.B16, V8.B16
	VEOR V9.B16, V9.B16, V9.B16
	VEOR V10.B16, V10.B16, V10.B16
	VEOR V11.B16, V11.B16, V11.B16
	VEOR V12.B16, V12.B16, V12.B16
	VEOR V13.B16, V13.B16, V13.B16
	VEOR V14.B16, V14.B16, V14.B16
	VEOR V15.B16, V15.B16, V15.B16

loop:
	VLD1.P 32(R2), [V16.D2, V17.D2]
	VLD1.P 64(R1), [V20.D2, V21.D2, V22.D2, V23.D2]

	VDUP  V20.D[0], V28.D2
	VFMLA V16.D2, V28.D2, V0.D2
	VFMLA V17.D2, V28.D2, V1.D2
	VDUP  V20.D[1], V28.D2
	VFMLA V16.D2, V28.D2, V2.D2
	VFMLA V17.D2, V28.D2, V3.D2
	VDUP  V21.D[0], V28.D2
	VFMLA V16.D2, V28.D2, V4.D2
	VFMLA V17.D2, V28.D2, V5.D2
	VDUP  V21.D[1], V28.D2
	VFMLA V16.D2, V28.D2, V6.D2
	VFMLA V17.D2, V28.D2, V7.D2
	VDUP  V22.D[0], V28.D2
	VFMLA V16.D2, V28.D2, V8.D2
	VFMLA V17.D2, V28.D2, V9.D2
	VDUP  V22.D[1], V28.D2
	VFMLA V16.D2, V28.D2, V10.D2
	VFMLA V17.D2, V28.D2, V11.D2
	VDUP  V23.D[0], V28.D2
	VFMLA V16.D2, V28.D2, V12.D2
	VFMLA V17.D2, V28.D2, V13.D2
	VDUP  V23.D[1], V28.D2
	VFMLA V16.D2, V28.D2, V14.D2
	VFMLA V17.D2, V28.D2, V15.D2

	SUBS $1, R0, R0
	BNE  loop

	// C[r, 0:4] += alpha · acc[r], rows advanced by ldc doubles.
	FMOVD alpha+24(FP), F28
	VDUP  V28.D[0], V29.D2
	LSL   $3, R4, R4

	VLD1  (R3), [V24.D2, V25.D2]
	VFMLA V0.D2, V29.D2, V24.D2
	VFMLA V1.D2, V29.D2, V25.D2
	VST1  [V24.D2, V25.D2], (R3)
	ADD   R4, R3, R3

	VLD1  (R3), [V24.D2, V25.D2]
	VFMLA V2.D2, V29.D2, V24.D2
	VFMLA V3.D2, V29.D2, V25.D2
	VST1  [V24.D2, V25.D2], (R3)
	ADD   R4, R3, R3

	VLD1  (R3), [V24.D2, V25.D2]
	VFMLA V4.D2, V29.D2, V24.D2
	VFMLA V5.D2, V29.D2, V25.D2
	VST1  [V24.D2, V25.D2], (R3)
	ADD   R4, R3, R3

	VLD1  (R3), [V24.D2, V25.D2]
	VFMLA V6.D2, V29.D2, V24.D2
	VFMLA V7.D2, V29.D2, V25.D2
	VST1  [V24.D2, V25.D2], (R3)
	ADD   R4, R3, R3

	VLD1  (R3), [V24.D2, V25.D2]
	VFMLA V8.D2, V29.D2, V24.D2
	VFMLA V9.D2, V29.D2, V25.D2
	VST1  [V24.D2, V25.D2], (R3)
	ADD   R4, R3, R3

	VLD1  (R3), [V24.D2, V25.D2]
	VFMLA V10.D2, V29.D2, V24.D2
	VFMLA V11.D2, V29.D2, V25.D2
	VST1  [V24.D2, V25.D2], (R3)
	ADD   R4, R3, R3

	VLD1  (R3), [V24.D2, V25.D2]
	VFMLA V12.D2, V29.D2, V24.D2
	VFMLA V13.D2, V29.D2, V25.D2
	VST1  [V24.D2, V25.D2], (R3)
	ADD   R4, R3, R3

	VLD1  (R3), [V24.D2, V25.D2]
	VFMLA V14.D2, V29.D2, V24.D2
	VFMLA V15.D2, V29.D2, V25.D2
	VST1  [V24.D2, V25.D2], (R3)

	RET
