package linalg

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTensor3SliceAliasing(t *testing.T) {
	tt := NewTensor3(3, 4, 5)
	tt.Set(1, 2, 3, 7.5)
	s := tt.Slice(1)
	if s.At(2, 3) != 7.5 {
		t.Fatal("slice view does not see tensor data")
	}
	s.Set(0, 0, -2)
	if tt.At(1, 0, 0) != -2 {
		t.Fatal("slice mutation must reach the tensor")
	}
	f := tt.Flatten()
	if f.Rows != 3 || f.Cols != 20 {
		t.Fatalf("flatten dims %dx%d", f.Rows, f.Cols)
	}
	if f.At(1, 0) != -2 {
		t.Fatal("flatten view mismatch")
	}
}

func TestTensor3CloneIndependent(t *testing.T) {
	a := NewTensor3(2, 2, 2)
	a.Set(0, 1, 1, 3)
	b := a.Clone()
	b.Set(0, 1, 1, 9)
	if a.At(0, 1, 1) != 3 {
		t.Fatal("clone aliases original")
	}
	b.Zero()
	if b.At(0, 1, 1) != 0 {
		t.Fatal("zero failed")
	}
}

// Property: applying a matrix across the flattened first index equals
// per-slice accumulation.
func TestQuickTensor3FlattenContraction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n1, n2, n3 := 1+rng.Intn(4), 1+rng.Intn(4), 1+rng.Intn(4)
		tt := NewTensor3(n1, n2, n3)
		for i := range tt.Data {
			tt.Data[i] = rng.NormFloat64()
		}
		m := randMat(rng, n1, n1)
		out := NewTensor3(n1, n2, n3)
		Gemm(NoTrans, NoTrans, 1, m, tt.Flatten(), 0, out.Flatten())
		// Reference: out_p = Σ_q m[p,q]·slice(q).
		for p := 0; p < n1; p++ {
			for i := 0; i < n2; i++ {
				for j := 0; j < n3; j++ {
					var s float64
					for q := 0; q < n1; q++ {
						s += m.At(p, q) * tt.At(q, i, j)
					}
					if d := s - out.At(p, i, j); d > 1e-10 || d < -1e-10 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
