package linalg

// Stdlib-only CPU feature detection: raw CPUID/XGETBV in assembly
// (cpu_amd64.s), no golang.org/x/sys dependency. Runs once at package
// init and installs the AVX2 kernel when the hardware and the OS both
// support it.

// cpuid executes the CPUID instruction for the given leaf/subleaf.
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register XCR0 (requires OSXSAVE).
func xgetbv() (eax, edx uint32)

func init() {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 1 {
		return
	}
	_, _, c1, _ := cpuid(1, 0)
	fma := c1&(1<<12) != 0
	osxsave := c1&(1<<27) != 0
	avx := c1&(1<<28) != 0

	var avx2, avx512f bool
	if maxLeaf >= 7 {
		_, b7, _, _ := cpuid(7, 0)
		avx2 = b7&(1<<5) != 0
		avx512f = b7&(1<<16) != 0
	}

	// AVX state must be OS-enabled: XCR0 bits 1 (SSE) and 2 (AVX) both
	// set, else ymm registers fault or lose state across context
	// switches regardless of what CPUID advertises.
	osAVX := false
	if osxsave {
		lo, _ := xgetbv()
		osAVX = lo&0x6 == 0x6
	}

	var feats []string
	if avx && osAVX {
		feats = append(feats, "avx")
	}
	if fma {
		feats = append(feats, "fma")
	}
	if avx2 && osAVX {
		feats = append(feats, "avx2")
	}
	if avx512f && osAVX {
		// Reported for diagnostics only; the 6×8 AVX2 kernel already
		// saturates the FMA ports on most parts and avoids zmm
		// frequency licensing, so no AVX-512 tier is installed.
		feats = append(feats, "avx512f")
	}
	cpuFeatures = joinFeatures(feats)

	if avx && avx2 && fma && osAVX {
		asmKernel = &avx2Kernel
	}
}
