package linalg

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"
)

// maxAbsDiff returns the largest absolute element difference.
func maxAbsDiff(a, b *Mat) float64 {
	var mx float64
	for i := range a.Data {
		if d := math.Abs(a.Data[i] - b.Data[i]); d > mx {
			mx = d
		}
	}
	return mx
}

// Every engine must handle the degenerate shapes m/n/k ∈ {0, 1} for all
// variants, alpha ∈ {0, 1.3} and beta ∈ {0, 1, 0.5}, matching the
// reference kernel exactly.
func TestGemmEdgeShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	kernels := []Kernel{KernelAuto, KernelStream, KernelPacked}
	for _, m := range []int{0, 1, 2} {
		for _, n := range []int{0, 1, 3} {
			for _, k := range []int{0, 1, 5} {
				for _, tA := range []Transpose{NoTrans, Trans} {
					for _, tB := range []Transpose{NoTrans, Trans} {
						a := randMat(rng, m, k)
						if tA {
							a = randMat(rng, k, m)
						}
						b := randMat(rng, k, n)
						if tB {
							b = randMat(rng, n, k)
						}
						for _, alpha := range []float64{0, 1.3} {
							for _, beta := range []float64{0, 1, 0.5} {
								c0 := randMat(rng, m, n)
								want := c0.Clone()
								refGemm(tA, tB, alpha, a, b, beta, want)
								for _, kern := range kernels {
									got := c0.Clone()
									GemmKernel(kern, tA, tB, alpha, a, b, beta, got)
									if d := maxAbsDiff(got, want); d > 1e-14 {
										t.Fatalf("kern=%v m=%d n=%d k=%d tA=%v tB=%v alpha=%g beta=%g: |Δ|=%g",
											kern, m, n, k, tA, tB, alpha, beta, d)
									}
								}
							}
						}
					}
				}
			}
		}
	}
}

// beta=0 must overwrite (not scale) pre-existing NaN on the packed path
// too, mirroring TestGemmBetaZeroOverwritesNaN.
func TestGemmPackedBetaZeroOverwritesNaN(t *testing.T) {
	a := Identity(2)
	c := NewMat(2, 2)
	c.Set(0, 0, math.NaN())
	GemmKernel(KernelPacked, NoTrans, NoTrans, 1, a, a, 0, c)
	if math.IsNaN(c.At(0, 0)) {
		t.Fatal("beta=0 must overwrite, not scale, existing NaN")
	}
}

// Property: the packed engine agrees with the naive reference kernel to
// ≤ 1e-12 max-abs across random shapes, orientations and scalars. Shapes
// cross the micro-tile (mr/nr) and kc-panel (k > kc) boundaries of every
// installed kernel.
func TestGemmPackedMatchesReferenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(67)
		n := 1 + rng.Intn(67)
		k := 1 + rng.Intn(300) // > kcBlock exercised on ~15 % of draws
		tA := rng.Intn(2) == 1
		tB := rng.Intn(2) == 1
		alpha := []float64{1, -0.5, 2.25}[rng.Intn(3)]
		beta := []float64{0, 1, 0.5}[rng.Intn(3)]
		a := randMat(rng, m, k)
		if tA {
			a = randMat(rng, k, m)
		}
		b := randMat(rng, k, n)
		if tB {
			b = randMat(rng, n, k)
		}
		c0 := randMat(rng, m, n)
		got := c0.Clone()
		want := c0.Clone()
		GemmKernel(KernelPacked, Transpose(tA), Transpose(tB), alpha, a, b, beta, got)
		refGemm(Transpose(tA), Transpose(tB), alpha, a, b, beta, want)
		if d := maxAbsDiff(got, want); d > 1e-12 {
			t.Logf("seed=%d m=%d n=%d k=%d tA=%v tB=%v alpha=%g beta=%g: |Δ|=%g",
				seed, m, n, k, tA, tB, alpha, beta, d)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// The packed engine's parallel tile-grid path must agree with the
// serial reference regardless of worker count. Run with -race this also
// proves the tile tasks write disjoint C elements.
func TestGemmPackedParallelMatchesSerial(t *testing.T) {
	prev := runtime.GOMAXPROCS(4) // force the multi-worker path even on 1-CPU boxes
	defer runtime.GOMAXPROCS(prev)

	rng := rand.New(rand.NewSource(12))
	// Big enough to cross parallelThreshold with several macro-tiles,
	// with ragged edges in every dimension (relative to the active
	// kernel's blocking, whichever kernel that is).
	impl := activeKernel()
	m, k, n := 2*impl.mc+5, impl.kc+17, 2*impl.nc+3
	a := randMat(rng, m, k)
	b := randMat(rng, k, n)
	got := NewMat(m, n)
	GemmKernel(KernelPacked, NoTrans, NoTrans, 1, a, b, 0, got)

	want := NewMat(m, n)
	refGemm(NoTrans, NoTrans, 1, a, b, 0, want)
	if d := maxAbsDiff(got, want); d > 1e-12 {
		t.Fatalf("parallel packed vs reference: |Δ|=%g", d)
	}
}

// The streaming parallel path must agree too (regression guard for the
// row-range fan-out, kept for the small-shape engine).
func TestGemmStreamParallelMatchesSerial(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	rng := rand.New(rand.NewSource(13))
	a := randMat(rng, 101, 103)
	b := randMat(rng, 103, 97)
	got := NewMat(101, 97)
	GemmKernel(KernelStream, NoTrans, NoTrans, 1, a, b, 0, got)
	want := NewMat(101, 97)
	refGemm(NoTrans, NoTrans, 1, a, b, 0, want)
	if d := maxAbsDiff(got, want); d > 1e-10 {
		t.Fatalf("parallel stream vs reference: |Δ|=%g", d)
	}
}

func TestKernelNames(t *testing.T) {
	if KernelAuto.String() != "auto" || KernelStream.String() != "stream" || KernelPacked.String() != "packed" {
		t.Fatal("kernel names wrong")
	}
}

// KernelAuto must route to the packed engine above the threshold and
// the streaming engine below it; both must produce the same numbers, so
// the only observable here is correctness at the crossover sizes.
func TestGemmAutoCrossover(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for _, dim := range []int{4, 31, 32, 33, 64} {
		a := randMat(rng, dim, dim)
		b := randMat(rng, dim, dim)
		got := NewMat(dim, dim)
		Gemm(NoTrans, NoTrans, 1, a, b, 0, got)
		want := NewMat(dim, dim)
		refGemm(NoTrans, NoTrans, 1, a, b, 0, want)
		if d := maxAbsDiff(got, want); d > 1e-12 {
			t.Fatalf("dim=%d: |Δ|=%g", dim, d)
		}
	}
}
