package linalg

import (
	"math"
	"sort"
)

// EigSym computes the full eigendecomposition of the symmetric matrix a:
// a = V·diag(w)·Vᵀ with eigenvalues w in ascending order and eigenvectors
// in the columns of V. The input is not modified.
//
// The solver is a cyclic Jacobi iteration, which is unconditionally
// stable and more than fast enough for the per-fragment matrix sizes the
// paper targets (≲1k basis functions per fragment, §V-E). The paper notes
// that eigensolves are one of the FLOP-inefficient O(N³) phases limiting
// fragment-level throughput — the same is true here, and the cluster
// simulator's cost model accounts for it.
func EigSym(a *Mat) (w []float64, v *Mat) {
	if a.Rows != a.Cols {
		panic("linalg: EigSym requires a square matrix")
	}
	n := a.Rows
	m := a.Clone()
	v = Identity(n)
	if n == 0 {
		return nil, v
	}
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += m.Data[i*n+j] * m.Data[i*n+j]
			}
		}
		if off < 1e-24*float64(n*n) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := m.Data[p*n+q]
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app := m.Data[p*n+p]
				aqq := m.Data[q*n+q]
				theta := (aqq - app) / (2 * apq)
				var t float64
				if math.Abs(theta) > 1e12 {
					t = 1 / (2 * theta)
				} else {
					t = math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				}
				cth := 1 / math.Sqrt(t*t+1)
				s := t * cth
				tau := s / (1 + cth)

				m.Data[p*n+p] = app - t*apq
				m.Data[q*n+q] = aqq + t*apq
				m.Data[p*n+q] = 0
				m.Data[q*n+p] = 0
				for i := 0; i < n; i++ {
					if i != p && i != q {
						aip := m.Data[i*n+p]
						aiq := m.Data[i*n+q]
						m.Data[i*n+p] = aip - s*(aiq+tau*aip)
						m.Data[i*n+q] = aiq + s*(aip-tau*aiq)
						m.Data[p*n+i] = m.Data[i*n+p]
						m.Data[q*n+i] = m.Data[i*n+q]
					}
					vip := v.Data[i*n+p]
					viq := v.Data[i*n+q]
					v.Data[i*n+p] = vip - s*(viq+tau*vip)
					v.Data[i*n+q] = viq + s*(vip-tau*viq)
				}
			}
		}
	}

	w = make([]float64, n)
	for i := 0; i < n; i++ {
		w[i] = m.Data[i*n+i]
	}
	// Sort eigenpairs ascending.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return w[idx[i]] < w[idx[j]] })
	ws := make([]float64, n)
	vs := NewMat(n, n)
	for col, src := range idx {
		ws[col] = w[src]
		for i := 0; i < n; i++ {
			vs.Data[i*n+col] = v.Data[i*n+src]
		}
	}
	return ws, vs
}

// InvSqrtSym returns A^{-1/2} for a symmetric positive-definite matrix,
// computed through the eigendecomposition (the J^{-1/2}_PQ of paper
// Eq. 6). Eigenvalues below dropTol·max(w) are discarded (canonical
// orthogonalisation), which also guards near-linear-dependent auxiliary
// basis sets.
func InvSqrtSym(a *Mat, dropTol float64) *Mat {
	w, v := EigSym(a)
	n := a.Rows
	wmax := 0.0
	for _, x := range w {
		if x > wmax {
			wmax = x
		}
	}
	half := NewMat(n, n)
	for j := 0; j < n; j++ {
		if w[j] <= dropTol*wmax || w[j] <= 0 {
			continue // drop the near-null direction
		}
		s := 1 / math.Sqrt(w[j])
		for i := 0; i < n; i++ {
			half.Data[i*n+j] = v.Data[i*n+j] * s
		}
	}
	return MatMul(NoTrans, Trans, half, v)
}

// SqrtSym returns A^{1/2} for a symmetric positive semi-definite matrix.
func SqrtSym(a *Mat) *Mat {
	w, v := EigSym(a)
	n := a.Rows
	half := NewMat(n, n)
	for j := 0; j < n; j++ {
		if w[j] < 0 {
			w[j] = 0
		}
		s := math.Sqrt(w[j])
		for i := 0; i < n; i++ {
			half.Data[i*n+j] = v.Data[i*n+j] * s
		}
	}
	return MatMul(NoTrans, Trans, half, v)
}
