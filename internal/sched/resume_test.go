package sched

import (
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"github.com/fragmd/fragmd/internal/chem"
	"github.com/fragmd/fragmd/internal/md"
	"github.com/fragmd/fragmd/internal/potential"
	"github.com/fragmd/fragmd/internal/resilience"
	"github.com/fragmd/fragmd/internal/warmstart"
)

// The restart acceptance test: a trajectory killed after k steps and
// resumed from its checkpoint reproduces the uninterrupted
// trajectory's per-step energies to ≤ 1e-10 Ha. The resumed engine's
// local step 0 re-evaluates forces at the checkpointed geometry —
// exactly the chunk-boundary semantics of chaining two Run calls — so
// global step k−1 appears in both runs and every later step must
// match.
func TestCheckpointResumeReproducesTrajectory(t *testing.T) {
	f := chaosSystem(t)
	const total, cut = 6, 3
	dt := 0.5 * chem.AtomicTimePerFs
	newEngine := func(cache *warmstart.Cache) *Engine {
		eng, err := New(f, &potential.LennardJones{}, Options{
			Workers: 3, Async: true, Dt: dt, WarmStart: true, Cache: cache,
		})
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	newState := func() *md.State {
		s := md.NewState(f.Geom.Clone())
		s.SampleVelocities(140, rand.New(rand.NewSource(9)))
		return s
	}

	// Uninterrupted reference.
	full, err := newEngine(warmstart.NewCache(0, 0)).Run(newState(), total, nil)
	if err != nil {
		t.Fatal(err)
	}

	// "Killed" run: integrate cut steps, checkpoint, throw everything
	// away.
	cache := warmstart.NewCache(0, 0)
	state := newState()
	if _, err := newEngine(cache).Run(state, cut, nil); err != nil {
		t.Fatal(err)
	}
	ck := resilience.Snapshot(state, cut, dt)
	ck.TotalSteps = total
	ck.AttachCache(cache)
	path := filepath.Join(t.TempDir(), "traj.ckpt")
	if err := resilience.Save(path, ck); err != nil {
		t.Fatal(err)
	}

	// Resume in a fresh process-worth of state: everything rebuilt from
	// the checkpoint file.
	loaded, err := resilience.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.Matches(f.Geom) {
		t.Fatal("checkpoint does not match the system geometry")
	}
	resumedState, err := loaded.State()
	if err != nil {
		t.Fatal(err)
	}
	resumedCache := warmstart.NewCache(0, 0)
	if err := loaded.RestoreCache(resumedCache); err != nil {
		t.Fatal(err)
	}
	if resumedCache.Len() == 0 {
		t.Fatal("warm cache empty after restore")
	}
	// Continuation: local step i is global step StepsDone−1+i, so the
	// remaining run has total−StepsDone+1 steps.
	rest, err := newEngine(resumedCache).Run(resumedState, total-loaded.StepsDone+1, nil)
	if err != nil {
		t.Fatal(err)
	}

	for i, st := range rest {
		global := loaded.StepsDone - 1 + i
		if d := math.Abs(st.Etot - full[global].Etot); d > 1e-10 {
			t.Errorf("global step %d: |ΔEtot| = %.3e Ha between resumed and uninterrupted runs", global, d)
		}
		if d := math.Abs(st.Epot - full[global].Epot); d > 1e-10 {
			t.Errorf("global step %d: |ΔEpot| = %.3e Ha between resumed and uninterrupted runs", global, d)
		}
	}
}
