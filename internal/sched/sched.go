// Package sched implements the paper's asynchronous time-step AIMD
// engine (innovation iii, §V-F): a super-coordinator owns a priority
// queue of ready polymer tasks, dynamically distributes them to worker
// groups, accumulates energies and gradients as results return, and
// integrates each monomer to the next time step the moment every polymer
// touching it has completed — no global synchronisation anywhere.
//
// Queue ordering follows the paper: polymers are prioritised by the
// minimum distance of their constituent monomers to a reference monomer
// (chosen at a system extremity), tie-broken by decreasing size so large
// fragments launch early and small ones fill trailing gaps.
//
// Fragments with severed bonds are deferred until the monomers owning
// their H-cap partner atoms have also advanced (the dependency list of
// §V-F), which fragment.TouchSet encodes.
//
// The same engine runs in synchronous mode (global barrier per step) for
// the paper's async-vs-sync comparisons (24 % / 40 % throughput gains).
package sched

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"time"

	"github.com/fragmd/fragmd/internal/fragment"
	"github.com/fragmd/fragmd/internal/md"
	"github.com/fragmd/fragmd/internal/warmstart"
)

// Options configures the engine.
type Options struct {
	// Workers is the number of concurrent fragment evaluators
	// (default 2).
	Workers int
	// Async enables per-monomer time-step release; false inserts a
	// global barrier between steps.
	Async bool
	// Dt is the time step in atomic units.
	Dt float64
	// RefMonomer is the reference monomer for queue ordering; −1 picks
	// the monomer farthest from the system centroid (the paper chooses
	// "an arbitrary fragment towards an extremity").
	RefMonomer int

	// WarmStart enables incremental evaluation across time steps: each
	// polymer's converged electronic state is cached and injected as
	// the SCF initial guess of its next evaluation. Exact — the SCF
	// still converges to the same thresholds; only iteration counts
	// (and wall time) drop. Requires a fragment.StatefulEvaluator to
	// have any effect; the LJ surrogate passes through.
	WarmStart bool
	// SkipTol is a max-atom-displacement tolerance in Bohr: when > 0,
	// a polymer whose atoms have all moved less than SkipTol since its
	// last real evaluation reuses the cached energy/gradient and skips
	// the evaluation entirely. Approximate — the reused forces lag the
	// geometry by up to SkipTol; MaxSkip bounds the staleness. Setting
	// SkipTol > 0 implies warm starting (the state cache exists either
	// way).
	SkipTol float64
	// MaxSkip bounds consecutive skipped evaluations per polymer
	// (default warmstart.DefaultMaxSkip when SkipTol > 0).
	MaxSkip int
	// Cache optionally carries a warm-start cache across Run calls or
	// in from a serial fragment.ComputeWithCache; nil allocates one
	// internally when WarmStart or SkipTol is set. An explicit Cache
	// takes full precedence: its own skip tolerance and staleness
	// bound apply, and WarmStart/SkipTol/MaxSkip here are ignored.
	Cache *warmstart.Cache
}

// StepStats reports a completed time step.
type StepStats struct {
	Step     int
	Epot     float64
	Ekin     float64
	Etot     float64
	Wall     time.Duration // first dispatch → last result of this step
	NPolymer int
	// SCFIters totals SCF iterations across this step's polymer
	// evaluations (0 for stateless evaluators); Skipped counts polymer
	// evaluations avoided via skip reuse.
	SCFIters int
	Skipped  int
}

// Engine drives asynchronous MBE AIMD.
type Engine struct {
	Frag *fragment.Fragmentation
	Eval fragment.Evaluator
	Opts Options

	terms    *fragment.Terms
	polymers []fragment.Polymer
	coeff    []float64 // per polymer index
	touch    [][]int   // polymer → monomer dependency set
	touching [][]int   // monomer → polymer indices touching it
	prio     []taskPriority
	refMono  int
	cache    *warmstart.Cache // nil unless WarmStart/SkipTol configured
}

// Cache returns the engine's warm-start cache (nil when incremental
// evaluation is disabled), e.g. to inspect hit/skip statistics or to
// hand the warmed states to a later engine.
func (e *Engine) Cache() *warmstart.Cache { return e.cache }

type taskPriority struct {
	dist float64
	size int
}

// task is one polymer evaluation at one time step.
type task struct {
	poly int // polymer index
	step int
}

type result struct {
	task    task
	e       float64
	grad    []float64
	ex      *fragment.Extracted
	err     error
	iters   int  // SCF iterations of this evaluation
	skipped bool // cached energy/gradient reused, no evaluation
}

// taskHeap orders by (distance to reference asc, size desc, step asc).
type taskHeap struct {
	items []task
	eng   *Engine
}

func (h *taskHeap) Len() int { return len(h.items) }
func (h *taskHeap) Less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if a.step != b.step {
		return a.step < b.step
	}
	pa, pb := h.eng.prio[a.poly], h.eng.prio[b.poly]
	if pa.dist != pb.dist {
		return pa.dist < pb.dist
	}
	return pa.size > pb.size
}
func (h *taskHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *taskHeap) Push(x interface{}) { h.items = append(h.items, x.(task)) }
func (h *taskHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}

// New creates an engine and precomputes the polymer lists, dependency
// sets and queue priorities from the initial geometry (the paper's
// "pre-formed list" strategy for large systems).
func New(f *fragment.Fragmentation, eval fragment.Evaluator, opts Options) (*Engine, error) {
	if opts.Workers == 0 {
		opts.Workers = 2
	}
	if opts.Dt <= 0 {
		return nil, errors.New("sched: time step must be positive")
	}
	e := &Engine{Frag: f, Eval: eval, Opts: opts}
	if opts.Cache != nil {
		e.cache = opts.Cache
	} else if opts.WarmStart || opts.SkipTol > 0 {
		e.cache = warmstart.NewCache(opts.SkipTol, opts.MaxSkip)
	}
	e.terms = f.Terms()
	coeffMap := e.terms.Coefficients()
	e.polymers = e.terms.All()
	e.coeff = make([]float64, len(e.polymers))
	e.touch = make([][]int, len(e.polymers))
	e.touching = make([][]int, len(f.Monomers))
	for pi, p := range e.polymers {
		e.coeff[pi] = coeffMap[p.Key()]
		e.touch[pi] = f.TouchSet(p)
		for _, m := range e.touch[pi] {
			e.touching[m] = append(e.touching[m], pi)
		}
	}

	// Reference monomer: farthest centroid from the system centroid.
	e.refMono = opts.RefMonomer
	if e.refMono < 0 {
		sys := f.Geom.Centroid()
		best := -1.0
		for m := range f.Monomers {
			c := f.Centroid(m)
			d := dist3(c, sys)
			if d > best {
				best = d
				e.refMono = m
			}
		}
	}
	refC := f.Centroid(e.refMono)
	e.prio = make([]taskPriority, len(e.polymers))
	for pi, p := range e.polymers {
		minD := math.Inf(1)
		for _, m := range p.Monomers {
			if d := dist3(f.Centroid(m), refC); d < minD {
				minD = d
			}
		}
		e.prio[pi] = taskPriority{dist: minD, size: p.Order()}
	}
	return e, nil
}

func dist3(a, b [3]float64) float64 {
	dx, dy, dz := a[0]-b[0], a[1]-b[1], a[2]-b[2]
	return math.Sqrt(dx*dx + dy*dy + dz*dz)
}

// monoState tracks one monomer through the asynchronous trajectory.
type monoState struct {
	step    int               // step whose positions are current
	pending int               // outstanding polymer results for this step
	pos     map[int][]float64 // step → flat positions of the monomer's atoms
}

// Run integrates n time steps (n force evaluations per monomer) starting
// from state. The observer fires once per completed step with assembled
// energies. The state is mutated to the final step. Returns per-step
// statistics.
func (e *Engine) Run(state *md.State, n int, obs func(StepStats)) ([]StepStats, error) {
	if n <= 0 {
		return nil, errors.New("sched: need at least one step")
	}
	f := e.Frag
	nm := len(f.Monomers)
	npoly := len(e.polymers)
	dt := e.Opts.Dt

	monos := make([]*monoState, nm)
	for m := range monos {
		monos[m] = &monoState{pos: map[int][]float64{}, pending: len(e.touching[m])}
		atoms := f.Monomers[m].Atoms
		p0 := make([]float64, 3*len(atoms))
		for i, a := range atoms {
			for k := 0; k < 3; k++ {
				p0[3*i+k] = state.Geom.Atoms[a].Pos[k]
			}
		}
		monos[m].pos[0] = p0
	}
	atomMono := f.AtomMonomer()
	atomSlot := make([]int, f.Geom.N()) // index of atom within its monomer
	for m := range f.Monomers {
		for i, a := range f.Monomers[m].Atoms {
			atomSlot[a] = i
		}
	}
	positionAt := func(step int) func(atom int) [3]float64 {
		return func(atom int) [3]float64 {
			ms := monos[atomMono[atom]]
			p, ok := ms.pos[step]
			if !ok {
				panic(fmt.Sprintf("sched: monomer %d has no positions for step %d", atomMono[atom], step))
			}
			i := atomSlot[atom]
			return [3]float64{p[3*i], p[3*i+1], p[3*i+2]}
		}
	}

	// Per-step accumulators.
	gradStep := map[int][]float64{}
	epotStep := make([]float64, n)
	polyRemaining := make([]int, n)
	monoRemaining := make([]int, n)
	ekinStep := make([]float64, n)
	scfIterStep := make([]int, n)
	skipStep := make([]int, n)
	firstDispatch := make([]time.Time, n)
	lastResult := make([]time.Time, n)
	for t := 0; t < n; t++ {
		polyRemaining[t] = npoly
		monoRemaining[t] = nm
	}
	stepGrad := func(t int) []float64 {
		g, ok := gradStep[t]
		if !ok {
			g = make([]float64, 3*f.Geom.N())
			gradStep[t] = g
		}
		return g
	}

	// Task plumbing.
	taskCh := make(chan taskWithEx)
	resCh := make(chan result, e.Opts.Workers)
	for w := 0; w < e.Opts.Workers; w++ {
		go func() {
			for tw := range taskCh {
				key := e.polymers[tw.task.poly].Key()
				en, gr, iters, skipped, err := fragment.EvaluateWithCache(e.Eval, e.cache, key, tw.ex.Geom)
				resCh <- result{task: tw.task, e: en, grad: gr, ex: tw.ex, err: err,
					iters: iters, skipped: skipped}
			}
		}()
	}
	defer close(taskCh)

	h := &taskHeap{eng: e}
	heap.Init(h)
	nextStep := make([]int, npoly) // next step index each polymer should run
	globalMin := 0

	tryEnqueue := func(pi int) {
		for nextStep[pi] < n {
			t := nextStep[pi]
			ready := true
			for _, m := range e.touch[pi] {
				if monos[m].step < t {
					ready = false
					break
				}
			}
			if ready && !e.Opts.Async {
				// Synchronous mode: a global barrier — no polymer of
				// step t launches until every monomer reached step t.
				if globalMin < t {
					ready = false
				}
			}
			if !ready {
				return
			}
			heap.Push(h, task{poly: pi, step: t})
			nextStep[pi]++
		}
	}
	for pi := range e.polymers {
		tryEnqueue(pi)
	}

	var stats []StepStats
	finished := 0 // monomers that completed step n−1

	integrate := func(m, t int) {
		ms := monos[m]
		atoms := f.Monomers[m].Atoms
		g := stepGrad(t)
		// Second half-kick completes v(t); at t=0 velocities are v(0).
		if t > 0 {
			for _, a := range atoms {
				for k := 0; k < 3; k++ {
					state.Vel[a][k] -= g[3*a+k] / (2 * state.Masses[a]) * dt
				}
			}
		}
		var ke float64
		for _, a := range atoms {
			v := state.Vel[a]
			ke += 0.5 * state.Masses[a] * (v[0]*v[0] + v[1]*v[1] + v[2]*v[2])
		}
		ekinStep[t] += ke
		monoRemaining[t]--

		if t == n-1 {
			// Final step: write positions back, no further drift.
			p := ms.pos[t]
			for i, a := range atoms {
				for k := 0; k < 3; k++ {
					state.Geom.Atoms[a].Pos[k] = p[3*i+k]
				}
			}
			finished++
			return
		}
		// First half-kick + drift to t+1.
		p := ms.pos[t]
		pNew := make([]float64, len(p))
		for i, a := range atoms {
			for k := 0; k < 3; k++ {
				state.Vel[a][k] -= g[3*a+k] / (2 * state.Masses[a]) * dt
				pNew[3*i+k] = p[3*i+k] + state.Vel[a][k]*dt
			}
		}
		ms.step = t + 1
		ms.pos[t+1] = pNew
		// Every polymer reading this monomer's step-t positions has
		// completed (that is why it advanced), so prune the history.
		delete(ms.pos, t)
		ms.pending = len(e.touching[m])

		if !e.Opts.Async {
			newMin := ms.step
			for _, other := range monos {
				if other.step < newMin {
					newMin = other.step
				}
			}
			if newMin > globalMin {
				globalMin = newMin
				for pi := range e.polymers {
					tryEnqueue(pi)
				}
				return
			}
		}
		for _, pi := range e.touching[m] {
			tryEnqueue(pi)
		}
	}

	handle := func(r result) error {
		if r.err != nil {
			return fmt.Errorf("sched: polymer %s step %d: %w", e.polymers[r.task.poly].Key(), r.task.step, r.err)
		}
		t := r.task.step
		lastResult[t] = time.Now()
		scfIterStep[t] += r.iters
		if r.skipped {
			skipStep[t]++
		}
		c := e.coeff[r.task.poly]
		epotStep[t] += c * r.e
		r.ex.FoldGradient(r.grad, c, stepGrad(t))
		polyRemaining[t]--
		for _, m := range e.touch[r.task.poly] {
			monos[m].pending--
			if monos[m].pending == 0 && monos[m].step == t {
				integrate(m, t)
			}
		}
		return nil
	}

	inflight := 0
	for finished < nm {
		if h.Len() > 0 {
			next := h.items[0]
			ex := e.Frag.ExtractAt(e.polymers[next.poly], positionAt(next.step))
			if firstDispatch[next.step].IsZero() {
				firstDispatch[next.step] = time.Now()
			}
			select {
			case taskCh <- taskWithEx{task: next, ex: ex}:
				heap.Pop(h)
				inflight++
			case r := <-resCh:
				inflight--
				if err := handle(r); err != nil {
					return nil, err
				}
			}
			continue
		}
		if inflight == 0 {
			return nil, errors.New("sched: deadlock — no ready tasks and none in flight")
		}
		r := <-resCh
		inflight--
		if err := handle(r); err != nil {
			return nil, err
		}
	}
	// Drain any stragglers (should be none).
	for inflight > 0 {
		r := <-resCh
		inflight--
		if err := handle(r); err != nil {
			return nil, err
		}
	}

	for t := 0; t < n; t++ {
		st := StepStats{
			Step: t, Epot: epotStep[t], Ekin: ekinStep[t],
			Etot: epotStep[t] + ekinStep[t], NPolymer: npoly,
			SCFIters: scfIterStep[t], Skipped: skipStep[t],
		}
		if !firstDispatch[t].IsZero() && !lastResult[t].IsZero() {
			st.Wall = lastResult[t].Sub(firstDispatch[t])
		}
		stats = append(stats, st)
		if obs != nil {
			obs(st)
		}
	}
	return stats, nil
}

type taskWithEx struct {
	task task
	ex   *fragment.Extracted
}
