// Package sched implements the paper's asynchronous time-step AIMD
// engine (innovation iii, §V-F) as the in-process live backend of the
// shared scheduling core in internal/coord: the coordinator owns a
// priority queue of ready polymer tasks, dynamically distributes them —
// flat or through batched group coordinators with work stealing
// (DESIGN.md §6) — to evaluator goroutines, accumulates energies and
// gradients as results return, and integrates each monomer to the next
// time step the moment every polymer touching it has completed — no
// global synchronisation anywhere.
//
// Queue ordering follows the paper: polymers are prioritised by the
// minimum distance of their constituent monomers to a reference monomer
// (chosen at a system extremity), tie-broken by decreasing size so large
// fragments launch early and small ones fill trailing gaps.
//
// Fragments with severed bonds are deferred until the monomers owning
// their H-cap partner atoms have also advanced (the dependency list of
// §V-F), which fragment.TouchSet encodes.
//
// The same engine runs in synchronous mode (global barrier per step) for
// the paper's async-vs-sync comparisons (24 % / 40 % throughput gains).
// The identical policy drives internal/cluster's discrete-event machine
// simulation, so scheduling changes can be A/B'd at simulated
// Frontier/Perlmutter scale before they run a live trajectory.
package sched

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"time"

	"github.com/fragmd/fragmd/internal/coord"
	"github.com/fragmd/fragmd/internal/fragment"
	"github.com/fragmd/fragmd/internal/md"
	"github.com/fragmd/fragmd/internal/resilience"
	"github.com/fragmd/fragmd/internal/warmstart"
)

// Options configures the engine.
type Options struct {
	// Workers is the number of concurrent fragment evaluators
	// (default runtime.GOMAXPROCS(0)).
	Workers int
	// Async enables per-monomer time-step release; false inserts a
	// global barrier between steps.
	Async bool
	// Dt is the time step in atomic units.
	Dt float64
	// RefMonomer is the reference monomer for queue ordering; −1 picks
	// the monomer farthest from the system centroid (the paper chooses
	// "an arbitrary fragment towards an extremity").
	RefMonomer int

	// Groups is the number of group coordinators between the
	// super-coordinator and the workers (≤ 1 = flat); Batch is the
	// number of tasks per super→group transfer (≤ 1 = single-task
	// dispatch); Steal enables work stealing between group queues.
	// See DESIGN.md §6.
	Groups int
	Batch  int
	Steal  bool

	// WarmStart enables incremental evaluation across time steps: each
	// polymer's converged electronic state is cached and injected as
	// the SCF initial guess of its next evaluation. Exact — the SCF
	// still converges to the same thresholds; only iteration counts
	// (and wall time) drop. Requires a fragment.StatefulEvaluator to
	// have any effect; the LJ surrogate passes through.
	WarmStart bool
	// SkipTol is a max-atom-displacement tolerance in Bohr: when > 0,
	// a polymer whose atoms have all moved less than SkipTol since its
	// last real evaluation reuses the cached energy/gradient and skips
	// the evaluation entirely. Approximate — the reused forces lag the
	// geometry by up to SkipTol; MaxSkip bounds the staleness. Setting
	// SkipTol > 0 implies warm starting (the state cache exists either
	// way).
	SkipTol float64
	// MaxSkip bounds consecutive skipped evaluations per polymer
	// (default warmstart.DefaultMaxSkip when SkipTol > 0).
	MaxSkip int
	// Cache optionally carries a warm-start cache across Run calls or
	// in from a serial fragment.ComputeWithCache; nil allocates one
	// internally when WarmStart or SkipTol is set. An explicit Cache
	// takes full precedence: its own skip tolerance and staleness
	// bound apply, and WarmStart/SkipTol/MaxSkip here are ignored.
	Cache *warmstart.Cache

	// Embed engages electrostatically embedded MBE (EE-MBE): every
	// step first derives monomer charges (1 + Embed.SCC rounds of
	// per-monomer charge tasks — a real barrier in the task graph),
	// then evaluates every polymer in the resulting field, with field
	// forces folded back onto the parent atoms. Requires the evaluator
	// to implement fragment.EmbeddedEvaluator and fragment.ChargeSource.
	// Embed.SCCTol is ignored here (the engine's task graph is static,
	// so all SCC rounds always run); use the serial
	// fragment.ComputeEmbedded for tolerance-based early stopping.
	// nil = vacuum MBE.
	Embed *fragment.EmbedOptions

	// MaxRetries is the per-task failure budget: an evaluation that
	// fails (evaluator error, evaluator panic, injected failure) is
	// re-queued on a surviving worker at most MaxRetries times before
	// the run aborts. 0 keeps failures fatal on first occurrence.
	MaxRetries int
	// Speculate re-dispatches the oldest still-running task to an
	// otherwise idle worker (one extra copy per task) — the straggler
	// defence; the losing copy's result is dropped, so energies are
	// unchanged.
	Speculate bool
	// Timeout bounds a whole Run call: when > 0 and the deadline
	// passes, Run returns a clear error instead of wedging on a worker
	// that never reports (the barrier-wedge fix).
	Timeout time.Duration
	// Injector, when non-nil, injects seeded deterministic failures —
	// task-level failures, worker deaths, slow-worker stragglers — for
	// chaos testing. See internal/resilience. Ignored when Exec is set
	// (network chaos is injected at the transport: killed worker
	// processes and severed connections).
	Injector *resilience.FailureInjector

	// Exec, when non-nil, replaces the in-process evaluator pool with
	// an external Executor (the network backend, internal/netcoord):
	// every dispatched attempt is handed to Exec.Execute and its
	// outcome read back from Exec.Results(), while all coordination —
	// scheduling policy, integration, gradient folding, retries,
	// eviction, speculation — stays in this engine. Workers must be 0
	// (adopting Exec.Workers()) or equal it. Evaluation happens on the
	// remote workers, so Eval may be nil and WarmStart/SkipTol/Cache
	// and Injector are ignored (remote workers own their caches; see
	// the fragmd worker flags).
	Exec Executor

	// TraceDispatch, when non-nil, observes every dispatch in order —
	// the policy-equivalence test hook shared with the cluster
	// simulator.
	TraceDispatch func(t coord.Task, m coord.DispatchMeta)
}

// StepStats reports a completed time step.
type StepStats struct {
	Step     int
	Epot     float64
	Ekin     float64
	Etot     float64
	Wall     time.Duration // first dispatch → last result of this step
	NPolymer int
	// SCFIters totals SCF iterations across this step's polymer and
	// charge-task evaluations (0 for stateless evaluators); Skipped
	// counts polymer evaluations avoided via skip reuse.
	SCFIters int
	Skipped  int
	// Drift is the total-energy drift E_tot(t) − E_tot(0) of this
	// trajectory segment (Ha) — the NVE conservation diagnostic
	// surfaced per step so drivers can print and gate it.
	Drift float64
}

// Engine drives asynchronous MBE AIMD.
type Engine struct {
	Frag *fragment.Fragmentation
	Eval fragment.Evaluator
	Opts Options

	terms    *fragment.Terms
	polymers []fragment.Polymer
	coeff    []float64 // per polymer index
	graph    *coord.Graph
	refMono  int
	cache    *warmstart.Cache // nil unless WarmStart/SkipTol configured
	runStats coord.RunStats   // resilience events of the last Run
}

// Cache returns the engine's warm-start cache (nil when incremental
// evaluation is disabled), e.g. to inspect hit/skip statistics or to
// hand the warmed states to a later engine.
func (e *Engine) Cache() *warmstart.Cache { return e.cache }

// Graph returns the engine's scheduling task graph (the shared
// internal/coord representation).
func (e *Engine) Graph() *coord.Graph { return e.graph }

// RunStats reports the resilience events — retries, evictions,
// speculative dispatches, dropped duplicates — of the most recent Run.
func (e *Engine) RunStats() coord.RunStats { return e.runStats }

type result struct {
	worker  int
	task    coord.Task
	e       float64
	grad    []float64
	ex      *fragment.Extracted
	err     error
	down    bool // the worker died with this attempt
	iters   int  // SCF iterations of this evaluation
	skipped bool // cached energy/gradient reused, no evaluation

	// EE-MBE payloads: charges of a phase-1 task (per fragment atom,
	// caps included), or the field-site gradient + field of a phase-2
	// polymer evaluation.
	charges   []float64
	fieldGrad []float64
	field     *fragment.Field
}

// New creates an engine and precomputes the polymer lists, dependency
// sets and queue priorities from the initial geometry (the paper's
// "pre-formed list" strategy for large systems).
func New(f *fragment.Fragmentation, eval fragment.Evaluator, opts Options) (*Engine, error) {
	if opts.Workers < 0 {
		return nil, fmt.Errorf("sched: worker count %d must not be negative", opts.Workers)
	}
	if opts.Groups < 0 {
		return nil, fmt.Errorf("sched: group count %d must not be negative", opts.Groups)
	}
	if opts.Batch < 0 {
		return nil, fmt.Errorf("sched: batch size %d must not be negative", opts.Batch)
	}
	if opts.MaxRetries < 0 {
		return nil, fmt.Errorf("sched: retry budget %d must not be negative", opts.MaxRetries)
	}
	if opts.Exec != nil {
		// External execution: the engine coordinates, the executor's
		// worker slots evaluate. Worker count is the executor's.
		if opts.Workers == 0 {
			opts.Workers = opts.Exec.Workers()
		}
		if opts.Workers != opts.Exec.Workers() {
			return nil, fmt.Errorf("sched: worker count %d differs from executor's %d slots",
				opts.Workers, opts.Exec.Workers())
		}
	}
	if opts.Workers == 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.Dt <= 0 {
		return nil, errors.New("sched: time step must be positive")
	}
	if opts.Embed != nil {
		if err := opts.Embed.Validate(); err != nil {
			return nil, fmt.Errorf("sched: %w", err)
		}
		// With an external executor the remote workers own evaluation
		// (their evaluators are checked worker-side); locally the
		// evaluator must support the embedded primitives.
		if opts.Exec == nil {
			if _, ok := eval.(fragment.EmbeddedEvaluator); !ok {
				return nil, fmt.Errorf("sched: evaluator %T cannot evaluate embedded fragments", eval)
			}
			if _, ok := eval.(fragment.ChargeSource); !ok {
				return nil, fmt.Errorf("sched: evaluator %T cannot derive monomer charges", eval)
			}
		}
	}
	e := &Engine{Frag: f, Eval: eval, Opts: opts}
	if opts.Exec == nil {
		if opts.Cache != nil {
			e.cache = opts.Cache
		} else if opts.WarmStart || opts.SkipTol > 0 {
			e.cache = warmstart.NewCache(opts.SkipTol, opts.MaxSkip)
		}
	}
	e.terms = f.Terms()
	coeffMap := e.terms.Coefficients()
	e.polymers = e.terms.All()
	e.coeff = make([]float64, len(e.polymers))
	members := make([][]int32, len(e.polymers))
	touch := make([][]int32, len(e.polymers))
	for pi, p := range e.polymers {
		e.coeff[pi] = coeffMap[p.Key()]
		ms := make([]int32, len(p.Monomers))
		for i, m := range p.Monomers {
			ms[i] = int32(m)
		}
		sort.Slice(ms, func(i, j int) bool { return ms[i] < ms[j] })
		members[pi] = ms
		ts := f.TouchSet(p)
		t32 := make([]int32, len(ts))
		for i, m := range ts {
			t32[i] = int32(m)
		}
		touch[pi] = t32
	}

	// Queue priorities anchored at the reference monomer (shared policy
	// computation, DESIGN.md §6).
	var dist []float64
	e.refMono, dist = coord.Priorities(len(f.Monomers), members, f.Centroid,
		f.Geom.Centroid(), opts.RefMonomer)
	var err error
	e.graph, err = coord.NewGraph(len(f.Monomers), members, touch, dist)
	if err != nil {
		return nil, fmt.Errorf("sched: %w", err)
	}
	return e, nil
}

// monoState tracks one monomer through the asynchronous trajectory.
type monoState struct {
	pos map[int][]float64 // step → flat positions of the monomer's atoms
}

// evalSafe runs one polymer evaluation, converting an evaluator panic
// into a failed attempt the coordinator can retry instead of a dead
// worker goroutine that wedges the run.
func (e *Engine) evalSafe(key string, ex *fragment.Extracted) (en float64, gr []float64, iters int, skipped bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sched: evaluator panic: %v", r)
		}
	}()
	return fragment.EvaluateWithCache(e.Eval, e.cache, key, ex.Geom)
}

// evalSafeEmbedded is evalSafe for EE-MBE phase-2 tasks.
func (e *Engine) evalSafeEmbedded(key string, ex *fragment.Extracted, fl *fragment.Field) (en float64, gr, fg []float64, iters int, skipped bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sched: evaluator panic: %v", r)
		}
	}()
	return fragment.EvaluateEmbeddedWithCache(e.Eval.(fragment.EmbeddedEvaluator), e.cache, key, ex.Geom, fl)
}

// chargeSafe runs one EE-MBE phase-1 charge task.
func (e *Engine) chargeSafe(ex *fragment.Extracted, fl *fragment.Field) (q []float64, iters int, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sched: charge-source panic: %v", r)
		}
	}()
	q, iters, err = e.Eval.(fragment.ChargeSource).PartialCharges(ex.Geom, fl.PC())
	if err == nil && len(q) != ex.Geom.N() {
		err = fmt.Errorf("sched: charge source returned %d values for %d atoms", len(q), ex.Geom.N())
	}
	return q, iters, err
}

// Run integrates n time steps (n force evaluations per monomer) starting
// from state. The observer fires once per completed step with assembled
// energies, streamed in step order the moment each step finalizes —
// during the run, not after it — so drivers can report live progress.
// The state is mutated to the final step. Returns per-step statistics.
func (e *Engine) Run(state *md.State, n int, obs func(StepStats)) ([]StepStats, error) {
	return e.RunContext(context.Background(), state, n, obs)
}

// RunContext is Run under a caller-owned context: cancelling ctx aborts
// the run between monomer advances with ctx's error, leaving state
// mid-trajectory (callers that need a consistent snapshot should resume
// from their last checkpoint, not from the abandoned state). Options.
// Timeout, when set, still applies — as a child of ctx, so whichever
// deadline lands first wins.
func (e *Engine) RunContext(ctx context.Context, state *md.State, n int, obs func(StepStats)) ([]StepStats, error) {
	if n <= 0 {
		return nil, errors.New("sched: need at least one step")
	}
	f := e.Frag
	nm := len(f.Monomers)
	npoly := len(e.polymers)
	dt := e.Opts.Dt

	monos := make([]*monoState, nm)
	for m := range monos {
		monos[m] = &monoState{pos: map[int][]float64{}}
		atoms := f.Monomers[m].Atoms
		p0 := make([]float64, 3*len(atoms))
		for i, a := range atoms {
			for k := 0; k < 3; k++ {
				p0[3*i+k] = state.Geom.Atoms[a].Pos[k]
			}
		}
		monos[m].pos[0] = p0
	}
	atomMono := f.AtomMonomer()
	atomSlot := make([]int, f.Geom.N()) // index of atom within its monomer
	for m := range f.Monomers {
		for i, a := range f.Monomers[m].Atoms {
			atomSlot[a] = i
		}
	}
	positionAt := func(step int) func(atom int) [3]float64 {
		return func(atom int) [3]float64 {
			ms := monos[atomMono[atom]]
			p, ok := ms.pos[step]
			if !ok {
				panic(fmt.Sprintf("sched: monomer %d has no positions for step %d", atomMono[atom], step))
			}
			i := atomSlot[atom]
			return [3]float64{p[3*i], p[3*i+1], p[3*i+2]}
		}
	}

	// Per-step accumulators.
	gradStep := map[int][]float64{}
	epotStep := make([]float64, n)
	ekinStep := make([]float64, n)
	scfIterStep := make([]int, n)
	skipStep := make([]int, n)
	firstDispatch := make([]time.Time, n)
	lastResult := make([]time.Time, n)
	stepGrad := func(t int) []float64 {
		g, ok := gradStep[t]
		if !ok {
			g = make([]float64, 3*f.Geom.N())
			gradStep[t] = g
		}
		return g
	}

	// EE-MBE: rounds of per-monomer charge tasks precede each step's
	// polymer phase; chargeQ[step][round] holds the folded (and damped)
	// parent-atom charges, complete once the round's barrier passes.
	chargeRounds := 0
	if e.Opts.Embed != nil {
		chargeRounds = e.Opts.Embed.Rounds()
	}
	chargeQ := map[int][][]float64{}
	chargeAt := func(step, round int) []float64 {
		rs, ok := chargeQ[step]
		if !ok {
			rs = make([][]float64, chargeRounds)
			for r := range rs {
				rs[r] = make([]float64, f.Geom.N())
			}
			chargeQ[step] = rs
		}
		return rs[round]
	}
	monoAdvanced := make([]int, n)  // monomers past step t (chargeQ pruning)
	residualDone := make([]bool, n) // far-pair correction folded per step
	var sPair []float64             // pair-inclusion weights (static)
	if chargeRounds > 0 {
		sPair = f.PairInclusion()
	}
	// Embedding fields read *every* monomer's step-t positions — unlike
	// vacuum extraction, which only reads a polymer's touch set — so
	// they cannot go through the pruned per-monomer histories: a
	// monomer that advanced early drops its step-t positions while
	// unrelated polymers of step t are still dispatching. Instead, the
	// whole step's positions are snapshotted once at the charge
	// barrier: the first consumer runs strictly after round 0 of the
	// step completes (every monomer at step t, nothing advanced past
	// it), which is exactly when all histories are guaranteed live.
	stepPos := map[int][]float64{}
	fieldPosAt := func(step int) func(atom int) [3]float64 {
		snap, ok := stepPos[step]
		if !ok {
			snap = make([]float64, 3*f.Geom.N())
			at := positionAt(step)
			for a := 0; a < f.Geom.N(); a++ {
				xyz := at(a)
				copy(snap[3*a:], xyz[:])
			}
			stepPos[step] = snap
		}
		return func(atom int) [3]float64 {
			return [3]float64{snap[3*atom], snap[3*atom+1], snap[3*atom+2]}
		}
	}

	pol, err := coord.NewPolicy(e.graph, coord.Options{
		Steps: n, Workers: e.Opts.Workers, Sync: !e.Opts.Async,
		Groups: e.Opts.Groups, Batch: e.Opts.Batch, Steal: e.Opts.Steal,
		MaxRetries: e.Opts.MaxRetries, Speculate: e.Opts.Speculate,
		ChargeRounds: chargeRounds,
	})
	if err != nil {
		return nil, fmt.Errorf("sched: %w", err)
	}

	// Task plumbing: one channel per worker (a worker only receives a
	// task while idle, so sends never block), one shared result channel
	// buffered for every worker to finish without a reader.
	type liveTask struct {
		task    coord.Task
		ex      *fragment.Extracted
		field   *fragment.Field // embedding field (nil in vacuum / round 0)
		charge  bool            // phase-1 charge task
		attempt int
	}
	inj := e.Opts.Injector
	exec := e.Opts.Exec
	// With an external executor the coordinator must be able to fold
	// remote payloads back onto the parent system, so it remembers each
	// slot's in-flight extraction bookkeeping (at most one attempt is
	// outstanding per slot).
	var pending map[int]liveTask
	if exec != nil {
		pending = make(map[int]liveTask, e.Opts.Workers)
	}
	taskCh := make([]chan liveTask, e.Opts.Workers)
	resCh := make(chan result, e.Opts.Workers)
	for w := 0; w < e.Opts.Workers && exec == nil; w++ {
		taskCh[w] = make(chan liveTask, 1)
		go func(w int) {
			completed := 0
			for tw := range taskCh[w] {
				if inj.WorkerDies(w, completed) {
					// The worker dies with the attempt it was handed;
					// the coordinator evicts it and reclaims the task.
					resCh <- result{worker: w, task: tw.task, ex: tw.ex,
						err: resilience.ErrWorkerDeath, down: true}
					return
				}
				if inj.FailTask(tw.task.Poly, tw.task.Step, tw.attempt) {
					resCh <- result{worker: w, task: tw.task, ex: tw.ex, err: resilience.ErrInjected}
					continue
				}
				start := time.Now()
				var res result
				if tw.charge {
					q, iters, err := e.chargeSafe(tw.ex, tw.field)
					res = result{worker: w, task: tw.task, ex: tw.ex, charges: q, iters: iters, err: err}
				} else if chargeRounds > 0 {
					key := e.polymers[tw.task.Poly].Key()
					en, gr, fg, iters, skipped, err := e.evalSafeEmbedded(key, tw.ex, tw.field)
					res = result{worker: w, task: tw.task, e: en, grad: gr, fieldGrad: fg,
						field: tw.field, ex: tw.ex, err: err, iters: iters, skipped: skipped}
				} else {
					key := e.polymers[tw.task.Poly].Key()
					en, gr, iters, skipped, err := e.evalSafe(key, tw.ex)
					res = result{worker: w, task: tw.task, e: en, grad: gr, ex: tw.ex, err: err,
						iters: iters, skipped: skipped}
				}
				if f := inj.Straggle(w, tw.task.Poly, tw.task.Step); f > 1 {
					time.Sleep(time.Duration(float64(time.Since(start)) * (f - 1)))
				}
				completed++
				resCh <- res
			}
		}(w)
	}
	defer func() {
		for _, ch := range taskCh {
			if ch != nil {
				close(ch)
			}
		}
	}()

	// send hands one attempt to whichever execution substrate is
	// configured: the in-process goroutine pool, or the external
	// executor (serialising only the standalone geometry and field —
	// the fold bookkeeping stays here in pending).
	send := func(w int, tw liveTask) {
		if exec == nil {
			taskCh[w] <- tw
			return
		}
		pending[w] = tw
		req := ExecRequest{Task: tw.task, Attempt: tw.attempt, Charge: tw.charge,
			Embed: chargeRounds > 0, Geom: tw.ex.Geom, Field: tw.field.PC()}
		if !tw.charge {
			req.Key = e.polymers[tw.task.Poly].Key()
		}
		exec.Execute(w, req)
	}
	// recv blocks for the next attempt outcome from the configured
	// substrate, rejoining executor results with their pending fold
	// bookkeeping.
	recv := func(ctx context.Context) (result, error) {
		if exec == nil {
			select {
			case r := <-resCh:
				return r, nil
			case <-ctx.Done():
				return result{}, ctx.Err()
			}
		}
		select {
		case xr := <-exec.Results():
			tw, ok := pending[xr.Worker]
			if !ok {
				return result{}, fmt.Errorf("sched: executor result for idle worker slot %d", xr.Worker)
			}
			if xr.Task != tw.task {
				return result{}, fmt.Errorf("sched: executor result for task %v on slot %d running %v",
					xr.Task, xr.Worker, tw.task)
			}
			delete(pending, xr.Worker)
			return result{worker: xr.Worker, task: xr.Task, e: xr.E, grad: xr.Grad,
				fieldGrad: xr.FieldGrad, charges: xr.Charges, iters: xr.Iters,
				skipped: xr.Skipped, err: xr.Err, down: xr.WorkerDown,
				ex: tw.ex, field: tw.field}, nil
		case <-ctx.Done():
			return result{}, ctx.Err()
		}
	}

	backend := &coord.BackendFuncs{
		NumWorkers: e.Opts.Workers,
		DispatchFn: func(w int, t coord.Task, m coord.DispatchMeta) {
			if e.Opts.TraceDispatch != nil {
				e.Opts.TraceDispatch(t, m)
			}
			if firstDispatch[t.Step].IsZero() {
				firstDispatch[t.Step] = time.Now()
			}
			if int(t.Phase) < chargeRounds {
				// Phase-1 charge task: the monomer's capped geometry,
				// embedded (rounds > 0) in the previous round's charges.
				p := fragment.Polymer{Monomers: []int{int(t.Poly)}}
				ex := f.ExtractAt(p, positionAt(int(t.Step)))
				var fl *fragment.Field
				if t.Phase > 0 {
					fl = f.FieldFor(p, chargeAt(int(t.Step), int(t.Phase)-1), fieldPosAt(int(t.Step)))
				}
				send(w, liveTask{task: t, ex: ex, field: fl, charge: true, attempt: m.Attempt})
				return
			}
			ex := f.ExtractAt(e.polymers[t.Poly], positionAt(int(t.Step)))
			var fl *fragment.Field
			if chargeRounds > 0 {
				step := int(t.Step)
				fl = f.FieldFor(e.polymers[t.Poly], chargeAt(step, chargeRounds-1), fieldPosAt(step))
				if !residualDone[step] {
					// First polymer dispatch of the step: charges are
					// final and every monomer has step positions, so
					// fold in the far-pair residual correction once.
					residualDone[step] = true
					epotStep[step] += f.PairResidual(sPair, chargeAt(step, chargeRounds-1),
						fieldPosAt(step), stepGrad(step))
				}
			}
			send(w, liveTask{task: t, ex: ex, field: fl, attempt: m.Attempt})
		},
		AwaitFn: func(ctx context.Context) (coord.Completion, error) {
			r, err := recv(ctx)
			if err != nil {
				if ctx.Err() != nil {
					// The wedge escape: a worker that will never report
					// (a hung evaluator, a partitioned remote) no longer
					// blocks the run forever.
					return coord.Completion{}, fmt.Errorf("sched: run abandoned awaiting results: %w", err)
				}
				return coord.Completion{}, err
			}
			if r.err != nil {
				// A failed attempt, not a failed run: the coordinator
				// retries it against the budget or aborts with this
				// error attached. Charge tasks carry a monomer index in
				// Poly, not a polymer index — name them accordingly.
				var desc string
				if int(r.task.Phase) < chargeRounds {
					desc = fmt.Sprintf("charge task monomer %d round %d", r.task.Poly, r.task.Phase)
				} else {
					desc = fmt.Sprintf("polymer %s", e.polymers[r.task.Poly].Key())
				}
				return coord.Completion{Worker: r.worker, Task: r.task, WorkerDown: r.down,
					Err: fmt.Errorf("sched: %s step %d: %w", desc, r.task.Step, r.err)}, nil
			}
			if pol.Completed(r.task) {
				// The losing copy of a speculated task: its twin's
				// payload is already folded in; drop this one.
				return coord.Completion{Worker: r.worker, Task: r.task}, nil
			}
			t := int(r.task.Step)
			lastResult[t] = time.Now()
			scfIterStep[t] += r.iters
			if r.charges != nil {
				// Phase-1 payload: fold the fragment's charges (caps
				// onto inner atoms) into this round's parent array,
				// damping against the previous round (the serial
				// MonomerCharges recipe, barrier-safe because every
				// write touches only this monomer's atoms).
				round := int(r.task.Phase)
				buf := make([]float64, f.Geom.N())
				r.ex.FoldCharges(r.charges, buf)
				dst := chargeAt(t, round)
				damp := 0.0
				if round > 0 {
					damp = e.Opts.Embed.Damping
				}
				for _, a := range f.Monomers[r.task.Poly].Atoms {
					v := buf[a]
					if damp > 0 {
						v = (1-damp)*v + damp*chargeQ[t][round-1][a]
					}
					dst[a] = v
				}
				return coord.Completion{Worker: r.worker, Task: r.task}, nil
			}
			if r.skipped {
				skipStep[t]++
			}
			c := e.coeff[r.task.Poly]
			epotStep[t] += c * r.e
			r.ex.FoldGradient(r.grad, c, stepGrad(t))
			r.field.FoldGradient(r.fieldGrad, c, stepGrad(t))
			return coord.Completion{Worker: r.worker, Task: r.task}, nil
		},
	}

	// Steps finalize strictly in order (a monomer advances past step
	// t+1 only after advancing past t), so completed StepStats stream
	// to the observer while later steps are still in flight — live
	// progress for long trajectories, essential when the evaluations
	// run on remote workers.
	var stats []StepStats
	var e0 float64
	nextFinal := 0
	finalize := func() {
		for ; nextFinal < n && monoAdvanced[nextFinal] == nm; nextFinal++ {
			t := nextFinal
			st := StepStats{
				Step: t, Epot: epotStep[t], Ekin: ekinStep[t],
				Etot: epotStep[t] + ekinStep[t], NPolymer: npoly,
				SCFIters: scfIterStep[t], Skipped: skipStep[t],
			}
			if t == 0 {
				e0 = st.Etot
			}
			st.Drift = st.Etot - e0
			if !firstDispatch[t].IsZero() && !lastResult[t].IsZero() {
				st.Wall = lastResult[t].Sub(firstDispatch[t])
			}
			stats = append(stats, st)
			if obs != nil {
				obs(st)
			}
		}
	}

	// integrate advances monomer m through step t the moment its last
	// polymer result lands (the policy's per-monomer release); the
	// wrapper below streams every step the advance finalized.
	integrateMono := func(mi, step int32) {
		m, t := int(mi), int(step)
		monoAdvanced[t]++
		if monoAdvanced[t] == nm {
			// Every polymer of step t has completed (that is why every
			// monomer advanced), so the step's charge field is dead.
			delete(chargeQ, t)
			delete(stepPos, t)
		}
		ms := monos[m]
		atoms := f.Monomers[m].Atoms
		g := stepGrad(t)
		// Second half-kick completes v(t); at t=0 velocities are v(0).
		if t > 0 {
			for _, a := range atoms {
				for k := 0; k < 3; k++ {
					state.Vel[a][k] -= g[3*a+k] / (2 * state.Masses[a]) * dt
				}
			}
		}
		var ke float64
		for _, a := range atoms {
			v := state.Vel[a]
			ke += 0.5 * state.Masses[a] * (v[0]*v[0] + v[1]*v[1] + v[2]*v[2])
		}
		ekinStep[t] += ke

		if t == n-1 {
			// Final step: write positions back, no further drift.
			p := ms.pos[t]
			for i, a := range atoms {
				for k := 0; k < 3; k++ {
					state.Geom.Atoms[a].Pos[k] = p[3*i+k]
				}
			}
			return
		}
		// First half-kick + drift to t+1.
		p := ms.pos[t]
		pNew := make([]float64, len(p))
		for i, a := range atoms {
			for k := 0; k < 3; k++ {
				state.Vel[a][k] -= g[3*a+k] / (2 * state.Masses[a]) * dt
				pNew[3*i+k] = p[3*i+k] + state.Vel[a][k]*dt
			}
		}
		ms.pos[t+1] = pNew
		// Every polymer reading this monomer's step-t positions has
		// completed (that is why it advanced), so prune the history.
		delete(ms.pos, t)
	}
	integrate := func(mi, step int32) {
		integrateMono(mi, step)
		finalize()
	}

	if e.Opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.Opts.Timeout)
		defer cancel()
	}
	runStats, err := coord.RunContext(ctx, pol, backend, integrate)
	e.runStats = runStats
	if err != nil {
		return nil, err
	}
	if nextFinal != n {
		return nil, fmt.Errorf("sched: run completed with only %d of %d steps finalized", nextFinal, n)
	}
	return stats, nil
}
