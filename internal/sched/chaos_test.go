package sched

import (
	"math"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/fragmd/fragmd/internal/chem"
	"github.com/fragmd/fragmd/internal/fragment"
	"github.com/fragmd/fragmd/internal/md"
	"github.com/fragmd/fragmd/internal/molecule"
	"github.com/fragmd/fragmd/internal/potential"
	"github.com/fragmd/fragmd/internal/resilience"
)

// chaosSystem builds the shared chaos workload: a water cluster with
// enough polymers for failures to land mid-trajectory.
func chaosSystem(t *testing.T) *fragment.Fragmentation {
	t.Helper()
	g := molecule.WaterCluster(6)
	f, err := fragment.ByMolecule(g, 3, 1, fragment.Options{
		DimerCutoff: 14, TrimerCutoff: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// chaosRun integrates steps of LJ dynamics from a fixed seed and
// returns the per-step stats.
func chaosRun(t *testing.T, f *fragment.Fragmentation, opts Options, steps int) ([]StepStats, *Engine) {
	t.Helper()
	opts.Dt = 0.5 * chem.AtomicTimePerFs
	opts.Async = true
	eng, err := New(f, &potential.LennardJones{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	state := md.NewState(f.Geom.Clone())
	state.SampleVelocities(120, rand.New(rand.NewSource(11)))
	stats, err := eng.Run(state, steps, nil)
	if err != nil {
		t.Fatal(err)
	}
	return stats, eng
}

// The chaos acceptance test: a trajectory under injected task
// failures, a worker death, stragglers and speculation reproduces the
// failure-free trajectory's energies to ≤ 1e-10 Ha — resilience
// changes placement and retries, never physics.
func TestChaosEnergiesMatchFailureFree(t *testing.T) {
	f := chaosSystem(t)
	const steps = 4
	clean, _ := chaosRun(t, f, Options{Workers: 4}, steps)

	inj, err := resilience.NewFailureInjector(resilience.InjectOptions{
		Seed:          5,
		TaskFailProb:  0.15,
		DeadWorkers:   map[int]int{2: 3}, // worker 2 dies starting its 4th task
		StragglerProb: 0.1, StragglerFactor: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	chaos, eng := chaosRun(t, f, Options{
		Workers: 4, MaxRetries: 8, Speculate: true, Injector: inj,
	}, steps)

	if len(chaos) != len(clean) {
		t.Fatalf("chaos run reported %d steps, clean %d", len(chaos), len(clean))
	}
	for i := range clean {
		if d := math.Abs(chaos[i].Etot - clean[i].Etot); d > 1e-10 {
			t.Errorf("step %d: |ΔEtot| = %.3e Ha under failure injection (> 1e-10)", i, d)
		}
		if d := math.Abs(chaos[i].Epot - clean[i].Epot); d > 1e-10 {
			t.Errorf("step %d: |ΔEpot| = %.3e Ha under failure injection (> 1e-10)", i, d)
		}
	}
	st := eng.RunStats()
	if st.Retries == 0 {
		t.Error("no retries recorded — the injector never fired, test is vacuous")
	}
	if st.Evicted != 1 {
		t.Errorf("Evicted = %d, want 1 (worker 2's scripted death)", st.Evicted)
	}
}

// Repeating the same chaos configuration yields the same failure
// pattern: injected decisions are functions of stable identifiers, not
// of goroutine timing.
func TestChaosInjectionDeterministicAcrossRuns(t *testing.T) {
	f := chaosSystem(t)
	run := func() ([]StepStats, int) {
		inj, err := resilience.NewFailureInjector(resilience.InjectOptions{Seed: 7, TaskFailProb: 0.2})
		if err != nil {
			t.Fatal(err)
		}
		stats, eng := chaosRun(t, f, Options{Workers: 3, MaxRetries: 10, Injector: inj}, 3)
		return stats, eng.RunStats().Retries
	}
	s1, r1 := run()
	s2, r2 := run()
	if r1 != r2 {
		t.Errorf("retry counts differ across identical runs: %d vs %d", r1, r2)
	}
	if r1 == 0 {
		t.Error("no retries — injector never fired")
	}
	for i := range s1 {
		if d := math.Abs(s1[i].Etot - s2[i].Etot); d > 1e-10 {
			t.Errorf("step %d energies differ across identical chaos runs by %.3e", i, d)
		}
	}
}

// An evaluator panic is a retryable failure, not a dead worker and not
// a wedged run.
func TestChaosEvaluatorPanicRetried(t *testing.T) {
	f := chaosSystem(t)
	clean, _ := chaosRun(t, f, Options{Workers: 3}, 2)

	eval := &panicOnce{inner: &potential.LennardJones{}}
	eng, err := New(f, eval, Options{
		Workers: 3, Async: true, Dt: 0.5 * chem.AtomicTimePerFs, MaxRetries: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	state := md.NewState(f.Geom.Clone())
	state.SampleVelocities(120, rand.New(rand.NewSource(11)))
	stats, err := eng.Run(state, 2, nil)
	if err != nil {
		t.Fatalf("run died on a recoverable panic: %v", err)
	}
	if !eval.fired {
		t.Fatal("panic never fired")
	}
	if eng.RunStats().Retries == 0 {
		t.Error("panicked attempt not counted as a retry")
	}
	for i := range clean {
		if d := math.Abs(stats[i].Etot - clean[i].Etot); d > 1e-10 {
			t.Errorf("step %d: |ΔEtot| = %.3e after panic recovery", i, d)
		}
	}
}

// With MaxRetries 0 (the default), failures stay fatal — the
// pre-resilience contract — and the error names the polymer.
func TestChaosRetryBudgetZeroIsFatal(t *testing.T) {
	f := chaosSystem(t)
	inj, err := resilience.NewFailureInjector(resilience.InjectOptions{Seed: 3, TaskFailProb: 1})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(f, &potential.LennardJones{}, Options{
		Workers: 2, Async: true, Dt: 0.5 * chem.AtomicTimePerFs, Injector: inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	state := md.NewState(f.Geom.Clone())
	_, err = eng.Run(state, 1, nil)
	if err == nil {
		t.Fatal("run succeeded with every attempt failing and no retry budget")
	}
	if !strings.Contains(err.Error(), "polymer") {
		t.Errorf("error %q does not name the failed polymer", err)
	}
}

// The barrier-wedge fix, live half: an evaluator that never returns no
// longer hangs Run forever — Options.Timeout aborts with a clear error.
func TestChaosTimeoutUnwedgesHungEvaluator(t *testing.T) {
	f := chaosSystem(t)
	hang := &hangEval{release: make(chan struct{})}
	defer close(hang.release) // let the stuck workers drain at test end
	eng, err := New(f, hang, Options{
		Workers: 2, Async: true, Dt: 0.5 * chem.AtomicTimePerFs, Timeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	state := md.NewState(f.Geom.Clone())
	done := make(chan error, 1)
	go func() {
		_, err := eng.Run(state, 1, nil)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("wedged run reported success")
		}
		if !strings.Contains(err.Error(), "abandoned") {
			t.Errorf("got %q, want the abandoned-run error", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run still wedged 10s after its 100ms deadline")
	}
}

// Chaos runs must not leak worker goroutines — through completions,
// evictions, or abandoned runs.
func TestChaosNoGoroutineLeaks(t *testing.T) {
	f := chaosSystem(t)
	before := runtime.NumGoroutine()

	// A run with a worker death (one goroutine exits early, the rest by
	// channel close).
	inj, err := resilience.NewFailureInjector(resilience.InjectOptions{
		Seed: 5, TaskFailProb: 0.1, DeadWorkers: map[int]int{0: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	chaosRun(t, f, Options{Workers: 4, MaxRetries: 8, Injector: inj}, 2)

	// An aborted run (budget exhausted mid-flight).
	injAll, err := resilience.NewFailureInjector(resilience.InjectOptions{Seed: 2, TaskFailProb: 1})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(f, &potential.LennardJones{}, Options{
		Workers: 4, Async: true, Dt: 0.5 * chem.AtomicTimePerFs, Injector: injAll, MaxRetries: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	state := md.NewState(f.Geom.Clone())
	if _, err := eng.Run(state, 1, nil); err == nil {
		t.Fatal("all-failing run succeeded")
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after chaos runs", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// panicOnce panics on the first evaluation only.
type panicOnce struct {
	inner fragment.Evaluator
	mu    sync.Mutex
	fired bool
}

func (p *panicOnce) Evaluate(g *molecule.Geometry) (float64, []float64, error) {
	p.mu.Lock()
	first := !p.fired
	p.fired = true
	p.mu.Unlock()
	if first {
		panic("chaos: injected evaluator panic")
	}
	return p.inner.Evaluate(g)
}

// hangEval blocks every evaluation until released.
type hangEval struct{ release chan struct{} }

func (h *hangEval) Evaluate(g *molecule.Geometry) (float64, []float64, error) {
	<-h.release
	return 0, make([]float64, 3*g.N()), nil
}
