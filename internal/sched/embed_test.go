package sched

import (
	"math"
	"math/rand"
	"testing"

	"github.com/fragmd/fragmd/internal/chem"
	"github.com/fragmd/fragmd/internal/fragment"
	"github.com/fragmd/fragmd/internal/md"
	"github.com/fragmd/fragmd/internal/molecule"
	"github.com/fragmd/fragmd/internal/potential"
)

func ljEmbedEval() *potential.LennardJones {
	return &potential.LennardJones{Charges: map[int]float64{1: 0.2, 8: -0.4}}
}

// The engine's step-0 embedded potential energy must equal the serial
// two-phase driver bit-for-bit up to fold order — on a molecular
// cluster and on a capped covalent chain, with and without SCC rounds.
func TestEngineMatchesSerialEmbedded(t *testing.T) {
	cases := []struct {
		name     string
		geom     *molecule.Geometry
		monomers [][]int
		opts     fragment.Options
		embed    fragment.EmbedOptions
	}{
		{"water-cluster", molecule.WaterCluster(5), nil,
			fragment.Options{MaxOrder: 2, DimerCutoff: 10}, fragment.EmbedOptions{}},
		{"water-cluster-scc", molecule.WaterCluster(4), nil,
			fragment.Options{MaxOrder: 2}, fragment.EmbedOptions{SCC: 2, Damping: 0.3}},
	}
	gGly, residues := molecule.Polyglycine(4)
	cases = append(cases, struct {
		name     string
		geom     *molecule.Geometry
		monomers [][]int
		opts     fragment.Options
		embed    fragment.EmbedOptions
	}{"polyglycine-capped", gGly, residues, fragment.Options{MaxOrder: 2, DimerCutoff: 8}, fragment.EmbedOptions{SCC: 1}})

	for _, tc := range cases {
		var f *fragment.Fragmentation
		var err error
		if tc.monomers == nil {
			f, err = fragment.ByMolecule(tc.geom, 3, 1, tc.opts)
		} else {
			f, err = fragment.New(tc.geom, tc.monomers, tc.opts)
		}
		if err != nil {
			t.Fatal(err)
		}
		serial, err := f.ComputeEmbedded(ljEmbedEval(), nil, tc.embed)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 4} {
			embed := tc.embed
			eng, err := New(f, ljEmbedEval(), Options{
				Workers: workers, Async: true, Dt: 0.5 * chem.AtomicTimePerFs, Embed: &embed,
			})
			if err != nil {
				t.Fatal(err)
			}
			state := md.NewState(f.Geom.Clone())
			stats, err := eng.Run(state, 1, nil)
			if err != nil {
				t.Fatal(err)
			}
			if d := math.Abs(stats[0].Epot - serial.Energy); d > 1e-10 {
				t.Errorf("%s (workers=%d): engine %.12f vs serial %.12f (Δ %.2e)",
					tc.name, workers, stats[0].Epot, serial.Energy, d)
			}
		}
	}
}

// An embedded engine refuses evaluators without the charge/embedding
// interfaces and malformed embed options.
func TestEngineEmbedValidation(t *testing.T) {
	g := molecule.WaterCluster(3)
	f, err := fragment.ByMolecule(g, 3, 1, fragment.Options{MaxOrder: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(f, stripEval{ljEmbedEval()}, Options{
		Async: true, Dt: 1, Embed: &fragment.EmbedOptions{},
	}); err == nil {
		t.Error("evaluator without embedding interfaces accepted")
	}
	if _, err := New(f, ljEmbedEval(), Options{
		Async: true, Dt: 1, Embed: &fragment.EmbedOptions{SCC: -1},
	}); err == nil {
		t.Error("negative SCC accepted")
	}
}

// stripEval hides the embedding interfaces of an evaluator.
type stripEval struct{ inner fragment.Evaluator }

func (s stripEval) Evaluate(g *molecule.Geometry) (float64, []float64, error) {
	return s.inner.Evaluate(g)
}

// NVE with embedding on (the acceptance criterion): the embedded LJ
// surrogate has geometry-independent charges, so the EE-MBE forces are
// exactly the energy gradient and a velocity-Verlet trajectory must
// conserve total energy to integrator accuracy. Also pins the
// StepStats.Drift wiring.
func TestNVEDriftWithEmbedding(t *testing.T) {
	g := molecule.WaterCluster(6)
	f, err := fragment.ByMolecule(g, 3, 1, fragment.Options{MaxOrder: 2, DimerCutoff: 12})
	if err != nil {
		t.Fatal(err)
	}
	steps := 60
	if testing.Short() {
		steps = 25
	}
	run := func(dtFs float64, nSteps int) float64 {
		eng, err := New(f, ljEmbedEval(), Options{
			Workers: 4, Async: true, Dt: dtFs * chem.AtomicTimePerFs,
			Embed: &fragment.EmbedOptions{SCC: 1, Damping: 0.2},
		})
		if err != nil {
			t.Fatal(err)
		}
		state := md.NewState(f.Geom.Clone())
		state.SampleVelocities(60, rand.New(rand.NewSource(11)))
		stats, err := eng.Run(state, nSteps, nil)
		if err != nil {
			t.Fatal(err)
		}
		e0 := stats[0].Etot
		var maxDrift float64
		for _, st := range stats {
			if got := st.Etot - e0; math.Abs(got-st.Drift) > 1e-15 {
				t.Fatalf("step %d: Drift %.3e inconsistent with Etot−E0 %.3e", st.Step, st.Drift, got)
			}
			if d := math.Abs(st.Drift); d > maxDrift {
				maxDrift = d
			}
		}
		return maxDrift
	}
	// Bounded drift at 0.5 fs, and — the sharp conservation statement —
	// the envelope must shrink ~4× when dt halves over the same
	// simulated time: a nonconservative force component (e.g. a missing
	// field-force fold) leaves a dt-independent linear drift instead.
	d1 := run(0.5, steps)
	d2 := run(0.25, 2*steps)
	if d1 > 2e-6 {
		t.Fatalf("embedded NVE drift envelope %.3e Ha exceeds 2e-6", d1)
	}
	if d2 <= 0 || d1/d2 < 3 {
		t.Fatalf("drift not O(dt²): envelope %.3e at dt, %.3e at dt/2 (ratio %.2f, want ≈4)", d1, d2, d1/d2)
	}
	t.Logf("embedded NVE: drift envelope %.3e (dt=0.5fs) vs %.3e (dt=0.25fs), ratio %.2f", d1, d2, d1/d2)
}

// Warm-started embedded trajectories reproduce cold embedded energies:
// the cache key/skip machinery accounts for the field, so reuse never
// hands back results from a stale charge environment.
func TestEmbeddedWarmTrajectoryMatchesCold(t *testing.T) {
	g := molecule.WaterCluster(4)
	f, err := fragment.ByMolecule(g, 3, 1, fragment.Options{MaxOrder: 2})
	if err != nil {
		t.Fatal(err)
	}
	run := func(warm bool) []StepStats {
		eng, err := New(f, ljEmbedEval(), Options{
			Workers: 2, Async: true, Dt: 0.5 * chem.AtomicTimePerFs,
			Embed:     &fragment.EmbedOptions{SCC: 1},
			WarmStart: warm,
		})
		if err != nil {
			t.Fatal(err)
		}
		state := md.NewState(f.Geom.Clone())
		state.SampleVelocities(80, rand.New(rand.NewSource(3)))
		stats, err := eng.Run(state, 5, nil)
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	cold := run(false)
	warm := run(true)
	for i := range cold {
		if d := math.Abs(cold[i].Epot - warm[i].Epot); d > 1e-9 {
			t.Errorf("step %d: warm embedded Epot deviates by %.2e", i, d)
		}
	}
}
