package sched

import (
	"math"
	"math/rand"
	"testing"

	"github.com/fragmd/fragmd/internal/chem"
	"github.com/fragmd/fragmd/internal/coord"
	"github.com/fragmd/fragmd/internal/fragment"
	"github.com/fragmd/fragmd/internal/md"
	"github.com/fragmd/fragmd/internal/molecule"
	"github.com/fragmd/fragmd/internal/potential"
)

func ljFrag(t *testing.T, nWater int, opts fragment.Options) *fragment.Fragmentation {
	t.Helper()
	g := molecule.WaterCluster(nWater)
	f, err := fragment.ByMolecule(g, 3, 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func newLJState(f *fragment.Fragmentation, seed int64) *md.State {
	s := md.NewState(f.Geom.Clone())
	s.SampleVelocities(150, rand.New(rand.NewSource(seed)))
	return s
}

const dtFs = 0.5

// The async engine must reproduce the serial fragment.Compute reference:
// the first step's potential energy and forces are identical by
// construction.
func TestEngineMatchesSerialReference(t *testing.T) {
	f := ljFrag(t, 5, fragment.Options{})
	eval := &potential.LennardJones{}
	ref, err := f.Compute(eval)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(f, eval, Options{Workers: 3, Async: true, Dt: dtFs * chem.AtomicTimePerFs})
	if err != nil {
		t.Fatal(err)
	}
	state := newLJState(f, 1)
	stats, err := eng.Run(state, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(stats[0].Epot-ref.Energy) > 1e-10 {
		t.Errorf("step-0 Epot %.12f != serial MBE %.12f", stats[0].Epot, ref.Energy)
	}
}

// Async and synchronous modes are numerically the same dynamics; the
// trajectories must agree to floating-point accumulation noise.
func TestAsyncEqualsSyncTrajectory(t *testing.T) {
	eval := &potential.LennardJones{}
	run := func(async bool) (*md.State, []StepStats) {
		f := ljFrag(t, 6, fragment.Options{DimerCutoff: 12, TrimerCutoff: 9})
		eng, err := New(f, eval, Options{Workers: 4, Async: async, Dt: dtFs * chem.AtomicTimePerFs})
		if err != nil {
			t.Fatal(err)
		}
		state := newLJState(f, 7)
		stats, err := eng.Run(state, 6, nil)
		if err != nil {
			t.Fatal(err)
		}
		return state, stats
	}
	sa, statsA := run(true)
	ss, statsS := run(false)
	for i := range sa.Geom.Atoms {
		for k := 0; k < 3; k++ {
			if d := math.Abs(sa.Geom.Atoms[i].Pos[k] - ss.Geom.Atoms[i].Pos[k]); d > 1e-9 {
				t.Fatalf("async/sync positions diverge at atom %d dim %d by %.2e", i, k, d)
			}
		}
	}
	for s := range statsA {
		if d := math.Abs(statsA[s].Etot - statsS[s].Etot); d > 1e-9 {
			t.Errorf("async/sync Etot differ at step %d by %.2e", s, d)
		}
	}
}

// The engine must match the monolithic velocity-Verlet integrator when
// the MBE is exact (3 monomers, MBE3 ≡ supersystem).
func TestEngineMatchesMonolithicVV(t *testing.T) {
	f := ljFrag(t, 3, fragment.Options{})
	eval := &potential.LennardJones{}

	engState := newLJState(f, 3)
	eng, err := New(f, eval, Options{Workers: 2, Async: true, Dt: dtFs * chem.AtomicTimePerFs})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(engState, 5, nil); err != nil {
		t.Fatal(err)
	}

	vvState := newLJState(f, 3) // same seed → same initial velocities
	vv := &md.VelocityVerlet{Dt: dtFs * chem.AtomicTimePerFs, Provider: md.ForceFunc(
		func(g *molecule.Geometry) (float64, []float64, error) { return eval.Evaluate(g) })}
	if err := vv.Run(vvState, 5, nil); err != nil {
		t.Fatal(err)
	}
	for i := range engState.Geom.Atoms {
		for k := 0; k < 3; k++ {
			d := math.Abs(engState.Geom.Atoms[i].Pos[k] - vvState.Geom.Atoms[i].Pos[k])
			if d > 1e-8 {
				t.Fatalf("engine vs monolithic VV positions differ at atom %d by %.2e", i, d)
			}
		}
	}
}

// NVE conservation through the async engine (the Fig. 6 diagnostic).
func TestAsyncEnergyConservation(t *testing.T) {
	f := ljFrag(t, 6, fragment.Options{})
	eng, err := New(f, &potential.LennardJones{}, Options{Workers: 4, Async: true, Dt: 0.25 * chem.AtomicTimePerFs})
	if err != nil {
		t.Fatal(err)
	}
	state := newLJState(f, 11)
	stats, err := eng.Run(state, 40, nil)
	if err != nil {
		t.Fatal(err)
	}
	e0 := stats[0].Etot
	for _, st := range stats {
		if math.Abs(st.Etot-e0) > 1e-5 {
			t.Fatalf("energy drift %.2e at step %d", st.Etot-e0, st.Step)
		}
	}
}

// H-capped (covalent) systems must also run asynchronously: the cap
// dependency list defers fragments until neighbours advance.
func TestAsyncWithHCaps(t *testing.T) {
	g, residues := molecule.Polyglycine(4)
	f, err := fragment.New(g, residues, fragment.Options{})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(f, &potential.LennardJones{}, Options{Workers: 3, Async: true, Dt: 0.25 * chem.AtomicTimePerFs})
	if err != nil {
		t.Fatal(err)
	}
	state := md.NewState(g.Clone())
	state.SampleVelocities(100, rand.New(rand.NewSource(5)))
	stats, err := eng.Run(state, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	e0 := stats[0].Etot
	for _, st := range stats {
		if math.Abs(st.Etot-e0) > 1e-4 {
			t.Fatalf("capped-system drift %.2e", st.Etot-e0)
		}
	}
	// Touch sets of monomer fragments must include bonded neighbours.
	ts := f.TouchSet(fragment.Polymer{Monomers: []int{1}})
	if len(ts) < 2 {
		t.Errorf("touch set of interior residue = %v, want bonded neighbours included", ts)
	}
}

// Queue priority: with one worker every step-0 task is dispatched in
// pure policy order — distance to the reference monomer ascending, ties
// broken by decreasing size — before any step-1 task can overtake it.
func TestQueueOrdering(t *testing.T) {
	f := ljFrag(t, 4, fragment.Options{})
	var order []coord.Task
	eng, err := New(f, &potential.LennardJones{}, Options{
		Workers: 1, Async: true, Dt: 1,
		TraceDispatch: func(tk coord.Task, _ coord.DispatchMeta) { order = append(order, tk) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(newLJState(f, 9), 1, nil); err != nil {
		t.Fatal(err)
	}
	if len(order) != len(eng.polymers) {
		t.Fatalf("dispatched %d tasks, want %d", len(order), len(eng.polymers))
	}
	// The first dispatch is a maximal-order polymer containing the
	// reference monomer (priority distance zero).
	first := eng.polymers[order[0].Poly]
	hasRef := false
	for _, m := range first.Monomers {
		if m == eng.refMono {
			hasRef = true
		}
	}
	if !hasRef {
		t.Errorf("first dispatch %v does not contain reference monomer %d", first, eng.refMono)
	}
	if first.Order() != 3 {
		t.Errorf("first dispatch order %d, want 3 (largest fragments launch first)", first.Order())
	}
	// Distances are non-decreasing, and sizes non-increasing within
	// equal distance.
	g := eng.Graph()
	for i := 1; i < len(order); i++ {
		da, db := g.Dist[order[i-1].Poly], g.Dist[order[i].Poly]
		if da > db {
			t.Fatalf("dispatch %d: distance %.6f after %.6f", i, db, da)
		}
		if da == db && len(g.Members[order[i-1].Poly]) < len(g.Members[order[i].Poly]) {
			t.Fatalf("dispatch %d: size tie-break inverted at distance %.6f", i, da)
		}
	}
}

// Hierarchical dispatch (group coordinators, batching, stealing) is a
// scheduling change only: the trajectory must match the flat scheduler
// to floating-point accumulation noise.
func TestHierMatchesFlatTrajectory(t *testing.T) {
	eval := &potential.LennardJones{}
	run := func(opts Options) (*md.State, []StepStats) {
		f := ljFrag(t, 6, fragment.Options{DimerCutoff: 12, TrimerCutoff: 9})
		opts.Async = true
		opts.Dt = dtFs * chem.AtomicTimePerFs
		eng, err := New(f, eval, opts)
		if err != nil {
			t.Fatal(err)
		}
		state := newLJState(f, 7)
		stats, err := eng.Run(state, 6, nil)
		if err != nil {
			t.Fatal(err)
		}
		return state, stats
	}
	sf, statsF := run(Options{Workers: 4})
	sh, statsH := run(Options{Workers: 4, Groups: 2, Batch: 3, Steal: true})
	for i := range sf.Geom.Atoms {
		for k := 0; k < 3; k++ {
			if d := math.Abs(sf.Geom.Atoms[i].Pos[k] - sh.Geom.Atoms[i].Pos[k]); d > 1e-10 {
				t.Fatalf("flat/hier positions diverge at atom %d dim %d by %.2e", i, k, d)
			}
		}
	}
	for s := range statsF {
		if d := math.Abs(statsF[s].Etot - statsH[s].Etot); d > 1e-10 {
			t.Errorf("flat/hier Etot differ at step %d by %.2e", s, d)
		}
	}
}

// The group-coordinator and work-stealing paths must be clean under the
// race detector with many workers hammering the result channel.
func TestGroupSchedulingRace(t *testing.T) {
	f := ljFrag(t, 8, fragment.Options{DimerCutoff: 14, TrimerCutoff: 10})
	eng, err := New(f, &potential.LennardJones{}, Options{
		Workers: 8, Groups: 4, Batch: 2, Steal: true,
		Async: true, Dt: 0.25 * chem.AtomicTimePerFs,
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := eng.Run(newLJState(f, 13), 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	e0 := stats[0].Etot
	for _, st := range stats {
		if math.Abs(st.Etot-e0) > 1e-4 {
			t.Fatalf("energy drift %.2e under hierarchical scheduling", st.Etot-e0)
		}
	}
}

func TestEngineValidation(t *testing.T) {
	f := ljFrag(t, 2, fragment.Options{})
	lj := &potential.LennardJones{}
	if _, err := New(f, lj, Options{}); err == nil {
		t.Fatal("expected error for missing dt")
	}
	if _, err := New(f, lj, Options{Dt: 1, Workers: -1}); err == nil {
		t.Fatal("expected error for negative workers")
	}
	if _, err := New(f, lj, Options{Dt: 1, Groups: -2}); err == nil {
		t.Fatal("expected error for negative groups")
	}
	if _, err := New(f, lj, Options{Dt: 1, Batch: -1}); err == nil {
		t.Fatal("expected error for negative batch")
	}
	eng, err := New(f, lj, Options{Dt: 1})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Opts.Workers < 1 {
		t.Errorf("default workers = %d, want runtime.GOMAXPROCS(0) ≥ 1", eng.Opts.Workers)
	}
	if _, err := eng.Run(md.NewState(f.Geom.Clone()), 0, nil); err == nil {
		t.Fatal("expected error for zero steps")
	}
}
