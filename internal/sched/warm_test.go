package sched

import (
	"math"
	"math/rand"
	"testing"

	"github.com/fragmd/fragmd/internal/basis"
	"github.com/fragmd/fragmd/internal/chem"
	"github.com/fragmd/fragmd/internal/fragment"
	"github.com/fragmd/fragmd/internal/md"
	"github.com/fragmd/fragmd/internal/molecule"
	"github.com/fragmd/fragmd/internal/potential"
)

// runWaterTrajectory integrates a short RI-HF NVE trajectory of a small
// water cluster with identical initial conditions, varying only the
// engine's reuse policy.
func runWaterTrajectory(t *testing.T, waters, steps int, opts Options) []StepStats {
	t.Helper()
	g := molecule.WaterCluster(waters)
	f, err := fragment.ByMolecule(g, 3, 1, fragment.Options{})
	if err != nil {
		t.Fatal(err)
	}
	eval := &potential.HF{UseRI: true, AuxOpts: basis.AuxOptions{PerL: []int{5, 4, 3}}}
	opts.Workers = 2
	opts.Async = true
	opts.Dt = 0.5 * chem.AtomicTimePerFs
	eng, err := New(f, eval, opts)
	if err != nil {
		t.Fatal(err)
	}
	state := md.NewState(f.Geom.Clone())
	state.SampleVelocities(120, rand.New(rand.NewSource(23)))
	stats, err := eng.Run(state, steps, nil)
	if err != nil {
		t.Fatal(err)
	}
	return stats
}

// Acceptance: warm-started dynamics must reproduce the cold-start
// trajectory energies within 1e-8 Ha per polymer on a water cluster,
// while converging the SCF in strictly fewer total iterations across a
// ≥5-step trajectory. Warm starting is exact — the per-polymer guess
// only changes where the SCF starts, not where it converges.
func TestWarmStartMatchesColdTrajectory(t *testing.T) {
	if testing.Short() {
		t.Skip("ab initio trajectory comparison is slow; run without -short")
	}
	const steps = 6
	cold := runWaterTrajectory(t, 2, steps, Options{})
	warm := runWaterTrajectory(t, 2, steps, Options{WarmStart: true})

	npoly := cold[0].NPolymer
	var coldIters, warmIters int
	for i := range cold {
		if d := math.Abs(cold[i].Epot - warm[i].Epot); d > 1e-8*float64(npoly) {
			t.Errorf("step %d: warm Epot deviates from cold by %.2e Ha (%d polymers)", i, d, npoly)
		}
		if warm[i].Skipped != 0 {
			t.Errorf("step %d: %d evaluations skipped with SkipTol=0", i, warm[i].Skipped)
		}
		if cold[i].SCFIters == 0 || warm[i].SCFIters == 0 {
			t.Fatalf("step %d: missing SCF iteration counts (cold %d, warm %d)",
				i, cold[i].SCFIters, warm[i].SCFIters)
		}
		coldIters += cold[i].SCFIters
		warmIters += warm[i].SCFIters
	}
	if warmIters >= coldIters {
		t.Errorf("warm total SCF iterations %d not strictly below cold %d", warmIters, coldIters)
	}
	t.Logf("total SCF iterations over %d steps: cold %d, warm %d (%.0f%% saved)",
		steps, coldIters, warmIters, 100*(1-float64(warmIters)/float64(coldIters)))
}

// Step 0 has no previous state, so cold and warm step-0 iteration
// counts must be identical; savings appear from step 1 on.
func TestWarmStartFirstStepIsCold(t *testing.T) {
	if testing.Short() {
		t.Skip("ab initio trajectory comparison is slow; run without -short")
	}
	cold := runWaterTrajectory(t, 2, 2, Options{})
	warm := runWaterTrajectory(t, 2, 2, Options{WarmStart: true})
	if cold[0].SCFIters != warm[0].SCFIters {
		t.Errorf("step-0 iterations differ: cold %d vs warm %d", cold[0].SCFIters, warm[0].SCFIters)
	}
	if warm[1].SCFIters >= cold[1].SCFIters {
		t.Errorf("step-1 warm iterations %d not below cold %d", warm[1].SCFIters, cold[1].SCFIters)
	}
}

// Skip reuse with the LJ surrogate: under a generous tolerance the
// engine must actually skip evaluations, respect the staleness bound,
// and stay close to the exact trajectory.
func TestSkipReuseDynamics(t *testing.T) {
	g := molecule.WaterCluster(4)
	run := func(opts Options) []StepStats {
		f, err := fragment.ByMolecule(g.Clone(), 3, 1, fragment.Options{})
		if err != nil {
			t.Fatal(err)
		}
		opts.Workers = 3
		opts.Async = true
		opts.Dt = 0.25 * chem.AtomicTimePerFs
		eng, err := New(f, &potential.LennardJones{}, opts)
		if err != nil {
			t.Fatal(err)
		}
		state := md.NewState(f.Geom.Clone())
		state.SampleVelocities(120, rand.New(rand.NewSource(9)))
		stats, err := eng.Run(state, 12, nil)
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	exact := run(Options{})
	skip := run(Options{SkipTol: 0.05, MaxSkip: 2})

	npoly := exact[0].NPolymer
	var skipped int
	for i := range skip {
		skipped += skip[i].Skipped
		if skip[i].Skipped > npoly {
			t.Fatalf("step %d skipped %d > %d polymers", i, skip[i].Skipped, npoly)
		}
		if d := math.Abs(skip[i].Epot - exact[i].Epot); d > 1e-4 {
			t.Errorf("step %d: skip-reuse Epot deviates by %.2e Ha", i, d)
		}
	}
	if skipped == 0 {
		t.Fatal("no evaluations skipped under a generous tolerance")
	}
	// MaxSkip=2 forces a real evaluation at least every third visit:
	// over n steps each polymer needs ≥ ceil(n/3) real evaluations, so
	// at most n − ceil(n/3) skips.
	n := len(skip)
	total := n * npoly
	maxSkipsPerPolymer := n - (n+2)/3
	if limit := npoly * maxSkipsPerPolymer; skipped > limit {
		t.Errorf("skipped %d of %d evaluations, staleness bound allows at most %d", skipped, total, limit)
	}
}

// The engine must expose its cache so callers can inspect reuse
// counters or carry the warmed states into another engine.
func TestEngineCacheExposed(t *testing.T) {
	f := ljFrag(t, 3, fragment.Options{})
	eng, err := New(f, &potential.LennardJones{}, Options{Dt: 1, SkipTol: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Cache() == nil {
		t.Fatal("cache not created with SkipTol set")
	}
	state := newLJState(f, 2)
	if _, err := eng.Run(state, 6, nil); err != nil {
		t.Fatal(err)
	}
	if eng.Cache().Len() != len(eng.polymers) {
		t.Errorf("cache holds %d states, want %d", eng.Cache().Len(), len(eng.polymers))
	}
	if s := eng.Cache().Stats(); s.Skips == 0 {
		t.Errorf("cache stats report no skips: %+v", s)
	}
	cold, err := New(f, &potential.LennardJones{}, Options{Dt: 1})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Cache() != nil {
		t.Error("cache created without warm-start options")
	}
}
