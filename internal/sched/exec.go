package sched

import (
	"github.com/fragmd/fragmd/internal/coord"
	"github.com/fragmd/fragmd/internal/integrals"
	"github.com/fragmd/fragmd/internal/molecule"
)

// This file defines the engine's external-execution seam: with
// Options.Exec set, the engine keeps every piece of its coordination
// logic — the shared internal/coord policy, per-monomer velocity-Verlet
// integration, gradient/charge folding, retry/eviction/speculation —
// and delegates only the *evaluation* of each dispatched attempt to an
// Executor. The network backend (internal/netcoord) is the production
// implementation: it ships each ExecRequest to a remote worker process
// over TCP and streams ExecResults back. Everything an Executor
// receives is standalone and serialisable (a fragment geometry plus an
// optional point-charge field); everything needed to fold results back
// onto the parent system (fragment.Extracted cap bookkeeping,
// fragment.Field parent maps) stays on the coordinator.

// ExecRequest is one dispatched attempt handed to an Executor. All
// fields are serialisable with encoding/gob — the request is exactly
// what crosses the wire to a remote worker.
type ExecRequest struct {
	// Task identifies the attempt's (polymer|monomer, step, phase).
	Task coord.Task
	// Attempt numbers the dispatches of this task (0 = first try);
	// retries and speculative copies increment it.
	Attempt int
	// Charge marks an EE-MBE phase-1 charge task: evaluate partial
	// charges of the (monomer) geometry instead of energy/gradient.
	Charge bool
	// Embed marks that the run is an EE-MBE trajectory: polymer
	// evaluations must go through the embedded-evaluation path even
	// when Field is nil, so remote results match the local engine
	// bit-for-bit.
	Embed bool
	// Key is the polymer's canonical cache key ("" for charge tasks);
	// remote workers use it for their local warm-start caches.
	Key string
	// Geom is the standalone capped fragment geometry to evaluate.
	Geom *molecule.Geometry
	// Field is the external point-charge field (nil in vacuum and in
	// round-0 charge tasks).
	Field *integrals.PointCharges
}

// ExecResult is the outcome of one executed attempt. Exactly one
// ExecResult must be delivered per Execute call — a worker death is
// reported as a result with WorkerDown set, never silently dropped.
type ExecResult struct {
	// Worker is the engine worker slot the attempt was dispatched to.
	Worker int
	// Task echoes the request's task identity.
	Task coord.Task
	// E and Grad are the fragment energy (Ha) and gradient (Ha/Bohr,
	// 3·natoms, caps included) of a successful polymer evaluation.
	E    float64
	Grad []float64
	// FieldGrad is the gradient on the external field sites (embedded
	// evaluations only).
	FieldGrad []float64
	// Charges holds the per-fragment-atom partial charges of a charge
	// task.
	Charges []float64
	// Iters reports SCF iterations (0 for stateless evaluators);
	// Skipped marks a worker-side skip-tolerance cache reuse.
	Iters   int
	Skipped bool
	// Err marks the attempt as failed: the payload is invalid and the
	// coordinator re-queues the task against the retry budget.
	Err error
	// WorkerDown reports that the worker slot died with this attempt
	// (connection lost, heartbeat deadline missed, process killed); the
	// coordinator evicts the slot and reclaims the task.
	WorkerDown bool
}

// Executor evaluates dispatched attempts outside the engine's own
// goroutine pool — the seam the network backend plugs into.
//
// Contract: Workers() is the number of worker slots and must stay
// constant for the lifetime of one engine Run (slots are the dense
// coordinator handles 0..Workers()-1; see coord.Backend). Execute must
// not block and is only ever called for an idle slot, so at most one
// attempt is outstanding per slot. Every Execute must eventually
// produce exactly one ExecResult on Results() — dispatching to a dead
// slot yields an immediate WorkerDown failure result. The Results
// channel must be buffered for at least Workers() outstanding results
// so executors never block delivering.
type Executor interface {
	// Workers returns the fixed number of worker slots.
	Workers() int
	// Execute starts req on idle slot w without blocking.
	Execute(w int, req ExecRequest)
	// Results returns the channel executed attempts are delivered on.
	Results() <-chan ExecResult
}
