// Package resilience makes long fragmd trajectories survivable: it
// provides schema-versioned, atomically-written, checksummed trajectory
// checkpoints (Save/Load/Checkpoint.State — the restart half) and a
// seeded deterministic FailureInjector (the failure half) that both
// scheduler backends use to rehearse the node failures that are routine
// on hour-scale full-machine runs (the regime of the paper's
// million-electron trajectories, where the coordinator must tolerate
// lost workers the way Schade et al. and Jia et al. treat resilience as
// first-class).
//
// Injected decisions are pure functions of the seed and stable
// identifiers — (polymer, step, attempt) for task failures, (worker,
// completed-count) for deaths, (worker, polymer, step) for stragglers —
// never of call order or goroutine interleaving. A fixed seed therefore
// produces the same failure pattern in the live engine and the
// discrete-event simulator, which is what makes chaos tests assertable:
// identical final energies, identical dispatch traces.
package resilience

import (
	"errors"
	"fmt"
)

// ErrInjected marks a task attempt failed by the injector; the
// scheduler retries it against the task's budget like any real failure.
var ErrInjected = errors.New("resilience: injected task failure")

// ErrWorkerDeath marks an attempt lost to an injected worker death.
var ErrWorkerDeath = errors.New("resilience: injected worker death")

// InjectOptions configures a FailureInjector.
type InjectOptions struct {
	// Seed selects the deterministic failure pattern; 0 selects 1.
	Seed int64
	// TaskFailProb is the probability that any given attempt of a task
	// fails (decided per (polymer, step, attempt) — retries of a failed
	// attempt redraw).
	TaskFailProb float64
	// WorkerDeathProb is the probability that a worker dies when
	// starting its n-th task (decided per (worker, n)); the attempt it
	// was handed is lost with it.
	WorkerDeathProb float64
	// DeadWorkers explicitly kills workers after a fixed number of
	// completed tasks: worker w dies when starting its (DeadWorkers[w]+1)-th
	// task. Deterministic and test-friendly; independent of
	// WorkerDeathProb.
	DeadWorkers map[int]int
	// StragglerProb is the probability a (worker, task) pairing runs
	// slow; StragglerFactor is its runtime multiplier (≥ 1; 0 selects
	// 8×).
	StragglerProb   float64
	StragglerFactor float64
}

// FailureInjector makes seeded, order-independent failure decisions.
// It is immutable after construction and safe for concurrent use.
type FailureInjector struct {
	opts InjectOptions
	seed uint64
}

// NewFailureInjector validates the options and builds an injector.
func NewFailureInjector(o InjectOptions) (*FailureInjector, error) {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"TaskFailProb", o.TaskFailProb},
		{"WorkerDeathProb", o.WorkerDeathProb},
		{"StragglerProb", o.StragglerProb},
	} {
		if p.v < 0 || p.v > 1 {
			return nil, fmt.Errorf("resilience: %s %g outside 0..1", p.name, p.v)
		}
	}
	if o.StragglerFactor < 0 || (o.StragglerFactor > 0 && o.StragglerFactor < 1) {
		return nil, fmt.Errorf("resilience: straggler factor %g must be ≥ 1", o.StragglerFactor)
	}
	if o.StragglerFactor == 0 {
		o.StragglerFactor = 8
	}
	seed := o.Seed
	if seed == 0 {
		seed = 1
	}
	return &FailureInjector{opts: o, seed: uint64(seed)}, nil
}

// Options returns the injector's configuration.
func (fi *FailureInjector) Options() InjectOptions { return fi.opts }

// FailTask reports whether the given attempt of task (poly, step)
// fails.
func (fi *FailureInjector) FailTask(poly, step int32, attempt int) bool {
	if fi == nil {
		return false
	}
	return fi.chance(fi.opts.TaskFailProb, 0xf417, uint64(uint32(poly)), uint64(uint32(step)), uint64(attempt))
}

// WorkerDies reports whether worker w dies when starting the task after
// having completed `completed` tasks.
func (fi *FailureInjector) WorkerDies(worker, completed int) bool {
	if fi == nil {
		return false
	}
	if after, ok := fi.opts.DeadWorkers[worker]; ok && completed >= after {
		return true
	}
	return fi.chance(fi.opts.WorkerDeathProb, 0xdead, uint64(worker), uint64(completed))
}

// Straggle returns the runtime multiplier for task (poly, step) on the
// given worker: 1 for a healthy pairing, StragglerFactor for an
// injected straggler.
func (fi *FailureInjector) Straggle(worker int, poly, step int32) float64 {
	if fi == nil {
		return 1
	}
	if fi.chance(fi.opts.StragglerProb, 0x510e, uint64(worker), uint64(uint32(poly)), uint64(uint32(step))) {
		return fi.opts.StragglerFactor
	}
	return 1
}

// chance draws a deterministic Bernoulli from the hashed identifiers.
func (fi *FailureInjector) chance(p float64, ids ...uint64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	h := fi.seed
	for _, id := range ids {
		h = splitmix64(h ^ id)
	}
	return float64(h>>11)/float64(1<<53) < p
}

// splitmix64 is the standard 64-bit finaliser (Steele et al.),
// well-mixed enough that consecutive identifiers decorrelate.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
