package resilience

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// interceptSyncDir replaces the directory-fsync seam for one test,
// recording every directory synced (while still performing the real
// sync) and restoring the original on cleanup.
func interceptSyncDir(t *testing.T) *[]string {
	t.Helper()
	var synced []string
	orig := syncDir
	syncDir = func(dir string) error {
		synced = append(synced, dir)
		return orig(dir)
	}
	t.Cleanup(func() { syncDir = orig })
	return &synced
}

// Save must fsync the checkpoint's parent directory after the rename:
// the temp-file + rename dance alone leaves the new directory entry in
// unsynced parent metadata, so a crash right after publish could lose
// the checkpoint entirely on ext4/XFS.
func TestSaveSyncsParentDirectory(t *testing.T) {
	synced := interceptSyncDir(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "traj.ckpt")
	if err := Save(path, Snapshot(testState(t), 3, 20.0)); err != nil {
		t.Fatal(err)
	}
	if len(*synced) != 1 {
		t.Fatalf("Save synced %d directories (%v), want exactly 1", len(*synced), *synced)
	}
	if got := (*synced)[0]; got != dir {
		t.Errorf("Save synced %q, want the checkpoint's parent %q", got, dir)
	}
	// The publish happened before the sync was observed complete.
	if _, err := Load(path); err != nil {
		t.Errorf("checkpoint unreadable after durable save: %v", err)
	}
}

// A failed directory sync is a failed save, not a silent success — the
// caller must not believe the checkpoint is durable.
func TestSaveReportsDirSyncFailure(t *testing.T) {
	orig := syncDir
	boom := errors.New("injected dir-sync failure")
	syncDir = func(string) error { return boom }
	t.Cleanup(func() { syncDir = orig })
	path := filepath.Join(t.TempDir(), "traj.ckpt")
	err := Save(path, Snapshot(testState(t), 1, 20.0))
	if !errors.Is(err, boom) {
		t.Fatalf("Save returned %v, want the injected dir-sync failure", err)
	}
}

// AtomicWriteFile is the shared durable-publish primitive: contents are
// intact, no temp droppings remain, and the parent is synced once per
// call.
func TestAtomicWriteFile(t *testing.T) {
	synced := interceptSyncDir(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "job.json")
	if err := AtomicWriteFile(path, []byte(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := AtomicWriteFile(path, []byte(`{"v":2}`)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != `{"v":2}` {
		t.Errorf("contents %q, want the second write", data)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("dir has %d entries, want 1 (no temp files left)", len(entries))
	}
	if len(*synced) != 2 {
		t.Errorf("2 writes synced the directory %d times, want 2", len(*synced))
	}
	for _, d := range *synced {
		if !strings.HasPrefix(path, d) {
			t.Errorf("synced %q, not a parent of %q", d, path)
		}
	}
}
