package resilience

import (
	"encoding/json"
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/fragmd/fragmd/internal/linalg"
	"github.com/fragmd/fragmd/internal/md"
	"github.com/fragmd/fragmd/internal/molecule"
	"github.com/fragmd/fragmd/internal/warmstart"
)

func testState(t *testing.T) *md.State {
	t.Helper()
	s := md.NewState(molecule.WaterCluster(2))
	s.SampleVelocities(200, rand.New(rand.NewSource(3)))
	return s
}

// Save∘Load is the identity on the trajectory state, including the
// warm-start cache with its electronic-state matrices.
func TestCheckpointRoundTrip(t *testing.T) {
	s := testState(t)
	ck := Snapshot(s, 7, 20.0)
	ck.TotalSteps = 12
	ck.Seed = 42
	ck.Thermostat = &ThermostatState{TargetK: 300, TauFs: 50}

	cache := warmstart.NewCache(0.01, 2)
	g := s.Geom
	st := warmstart.NewState(g, -1.25, []float64{0.5, -0.5, 0.25})
	st.D = linalg.NewMatFrom(2, 2, []float64{1, 2, 3, 4})
	st.C = linalg.NewMatFrom(2, 2, []float64{5, 6, 7, 8})
	st.Basis, st.NBf, st.NAux, st.NOcc, st.SCFIters = "sto-3g", 2, 7, 1, 9
	cache.Put("0-1", st)
	cache.Put("0", warmstart.NewState(g, -0.5, nil))
	ck.AttachCache(cache)

	path := filepath.Join(t.TempDir(), "traj.ckpt")
	if err := Save(path, ck); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.StepsDone != 7 || got.TotalSteps != 12 || got.Dt != 20.0 || got.Seed != 42 {
		t.Errorf("metadata mismatch: %+v", got)
	}
	if got.Thermostat == nil || got.Thermostat.TargetK != 300 {
		t.Errorf("thermostat lost: %+v", got.Thermostat)
	}
	rs, err := got.State()
	if err != nil {
		t.Fatal(err)
	}
	if rs.Geom.N() != s.Geom.N() {
		t.Fatalf("restored %d atoms, want %d", rs.Geom.N(), s.Geom.N())
	}
	for i := range s.Geom.Atoms {
		if rs.Geom.Atoms[i].Z != s.Geom.Atoms[i].Z {
			t.Fatalf("atom %d Z mismatch", i)
		}
		for k := 0; k < 3; k++ {
			if rs.Geom.Atoms[i].Pos[k] != s.Geom.Atoms[i].Pos[k] {
				t.Fatalf("atom %d position component %d not bit-identical", i, k)
			}
			if rs.Vel[i][k] != s.Vel[i][k] {
				t.Fatalf("atom %d velocity component %d not bit-identical", i, k)
			}
		}
		if rs.Masses[i] != s.Masses[i] {
			t.Fatalf("atom %d mass mismatch", i)
		}
	}
	if !got.Matches(s.Geom) {
		t.Error("Matches rejected the source geometry")
	}

	restored := warmstart.NewCache(0.01, 2)
	if err := got.RestoreCache(restored); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != 2 {
		t.Fatalf("restored cache has %d entries, want 2", restored.Len())
	}
	back := restored.Export()["0-1"]
	if back == nil || back.Energy != -1.25 || back.SCFIters != 9 || back.Basis != "sto-3g" {
		t.Fatalf("warm state mangled: %+v", back)
	}
	if back.D == nil || back.D.At(1, 0) != 3 || back.C.At(0, 1) != 6 {
		t.Error("electronic-state matrices mangled")
	}
	if len(back.Grad) != 3 || back.Grad[2] != 0.25 {
		t.Errorf("gradient mangled: %v", back.Grad)
	}
}

// A periodic trajectory's cell survives the checkpoint round trip
// bit-identically, and Matches treats the boundary conditions as part
// of the system identity: a periodic checkpoint never restores into an
// open-boundary run (or a differently-sized box) and vice versa.
func TestCheckpointPeriodicCell(t *testing.T) {
	g := molecule.WaterBox(2, 2, 2, 1)
	s := md.NewState(g)
	s.SampleVelocities(150, rand.New(rand.NewSource(5)))

	path := filepath.Join(t.TempDir(), "box.ckpt")
	if err := Save(path, Snapshot(s, 3, 20.0)); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := got.State()
	if err != nil {
		t.Fatal(err)
	}
	if rs.Geom.Cell == nil {
		t.Fatal("restored geometry lost its periodic cell")
	}
	for k := 0; k < 3; k++ {
		if rs.Geom.Cell.L[k] != g.Cell.L[k] {
			t.Fatalf("cell edge %d: restored %v, want %v", k, rs.Geom.Cell.L[k], g.Cell.L[k])
		}
	}
	if !got.Matches(g) {
		t.Error("Matches rejected the source periodic geometry")
	}
	open := g.Clone()
	open.Cell = nil
	if got.Matches(open) {
		t.Error("periodic checkpoint matched an open-boundary geometry")
	}
	resized := g.Clone()
	resized.Cell.L[0] *= 2
	if got.Matches(resized) {
		t.Error("periodic checkpoint matched a differently-sized cell")
	}

	// And the other direction: an open checkpoint never restores into a
	// periodic run.
	openCk := Snapshot(md.NewState(open), 0, 20.0)
	if openCk.Matches(g) {
		t.Error("open checkpoint matched a periodic geometry")
	}

	// A corrupted cell (wrong edge count / non-positive edge) is refused
	// as corruption, not silently accepted.
	bad := Snapshot(s, 0, 20.0)
	bad.Cell = []float64{1, 2}
	if _, err := bad.State(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("2-edge cell accepted: %v", err)
	}
	bad.Cell = []float64{1, -2, 3}
	if _, err := bad.State(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("negative cell edge accepted: %v", err)
	}
}

// A flipped payload byte is caught by the checksum, not trusted.
func TestCheckpointCorruptionDetected(t *testing.T) {
	s := testState(t)
	path := filepath.Join(t.TempDir(), "traj.ckpt")
	if err := Save(path, Snapshot(s, 1, 20.0)); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var env envelope
	if err := json.Unmarshal(blob, &env); err != nil {
		t.Fatal(err)
	}
	// Tamper inside the still-valid-JSON payload: change one digit.
	tampered := strings.Replace(string(env.Payload), `"steps_done":1`, `"steps_done":2`, 1)
	if tampered == string(env.Payload) {
		t.Fatal("tamper target not found in payload")
	}
	env.Payload = json.RawMessage(tampered)
	blob, err = json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("tampered checkpoint loaded: %v", err)
	}

	// Truncation is also corruption, not a decode panic.
	if err := os.WriteFile(path, blob[:len(blob)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated checkpoint loaded: %v", err)
	}
}

// A checkpoint from a future schema is refused with a clear message,
// and non-checkpoint files are refused as corrupt.
func TestCheckpointVersionAndMagic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "future.ckpt")
	payload := json.RawMessage(`{}`)
	blob, _ := json.Marshal(envelope{Magic: checkpointMagic, Schema: SchemaVersion + 1,
		CRC32C: 0, Payload: payload})
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Load(path)
	if err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("future schema: got %v, want a schema error", err)
	}
	other := filepath.Join(dir, "other.json")
	if err := os.WriteFile(other, []byte(`{"hello":"world"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(other); !errors.Is(err, ErrCorrupt) {
		t.Errorf("foreign JSON: got %v, want ErrCorrupt", err)
	}
	if _, err := Load(filepath.Join(dir, "missing.ckpt")); err == nil || errors.Is(err, ErrCorrupt) {
		t.Errorf("missing file: got %v, want a plain I/O error", err)
	}
}

// Save is atomic: overwriting an existing checkpoint leaves no
// temporary droppings and the old file is replaced wholesale.
func TestCheckpointSaveAtomicOverwrite(t *testing.T) {
	s := testState(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "traj.ckpt")
	if err := Save(path, Snapshot(s, 1, 20.0)); err != nil {
		t.Fatal(err)
	}
	if err := Save(path, Snapshot(s, 2, 20.0)); err != nil {
		t.Fatal(err)
	}
	ck, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if ck.StepsDone != 2 {
		t.Errorf("StepsDone = %d, want the second save's 2", ck.StepsDone)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("checkpoint dir has %d entries, want 1 (no temp files left)", len(entries))
	}
}

// State() validates dimensions instead of panicking on corrupt data.
func TestCheckpointStateValidation(t *testing.T) {
	ck := &Checkpoint{Zs: []int{1, 8}, Pos: make([]float64, 6), Vel: make([]float64, 3)}
	if _, err := ck.State(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("mismatched velocity length: got %v, want ErrCorrupt", err)
	}
	if (&Checkpoint{}).Matches(molecule.Water()) {
		t.Error("empty checkpoint matched a real geometry")
	}
}

// The deterministic injector: same seed, same decisions; different
// seeds decorrelate; probabilities land near their targets; explicit
// worker deaths fire exactly at their threshold.
func TestFailureInjectorDeterminismAndRates(t *testing.T) {
	fi, err := NewFailureInjector(InjectOptions{Seed: 9, TaskFailProb: 0.3,
		WorkerDeathProb: 0.1, StragglerProb: 0.2, StragglerFactor: 4})
	if err != nil {
		t.Fatal(err)
	}
	fi2, _ := NewFailureInjector(InjectOptions{Seed: 9, TaskFailProb: 0.3,
		WorkerDeathProb: 0.1, StragglerProb: 0.2, StragglerFactor: 4})
	fails, deaths, slows := 0, 0, 0
	const n = 20000
	for i := 0; i < n; i++ {
		f := fi.FailTask(int32(i%977), int32(i/977), i%3)
		if f != fi2.FailTask(int32(i%977), int32(i/977), i%3) {
			t.Fatal("same seed, different FailTask decision")
		}
		if f {
			fails++
		}
		if fi.WorkerDies(i%64, i/64) {
			deaths++
		}
		if fi.Straggle(i%64, int32(i%977), int32(i/977)) > 1 {
			slows++
		}
	}
	check := func(name string, got int, p float64) {
		t.Helper()
		f := float64(got) / n
		if math.Abs(f-p) > 0.02 {
			t.Errorf("%s rate %.3f, want ≈ %.2f", name, f, p)
		}
	}
	check("task failure", fails, 0.3)
	check("worker death", deaths, 0.1)
	check("straggler", slows, 0.2)

	// Explicit deaths.
	fx, _ := NewFailureInjector(InjectOptions{DeadWorkers: map[int]int{2: 5}})
	if fx.WorkerDies(2, 4) || !fx.WorkerDies(2, 5) || fx.WorkerDies(1, 100) {
		t.Error("DeadWorkers threshold wrong")
	}

	// A nil injector is inert (the disabled path in both backends).
	var ni *FailureInjector
	if ni.FailTask(0, 0, 0) || ni.WorkerDies(0, 0) || ni.Straggle(0, 0, 0) != 1 {
		t.Error("nil injector not inert")
	}
}

func TestFailureInjectorValidation(t *testing.T) {
	if _, err := NewFailureInjector(InjectOptions{TaskFailProb: 1.5}); err == nil {
		t.Error("probability > 1 accepted")
	}
	if _, err := NewFailureInjector(InjectOptions{StragglerFactor: 0.5}); err == nil {
		t.Error("slowdown < 1 accepted")
	}
	fi, err := NewFailureInjector(InjectOptions{StragglerProb: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := fi.Straggle(0, 0, 0); got != 8 {
		t.Errorf("default straggler factor = %g, want 8", got)
	}
	if fi.Options().StragglerFactor != 8 {
		t.Error("Options does not reflect the filled default")
	}
}
