package resilience

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"

	"github.com/fragmd/fragmd/internal/linalg"
	"github.com/fragmd/fragmd/internal/md"
	"github.com/fragmd/fragmd/internal/molecule"
	"github.com/fragmd/fragmd/internal/warmstart"
)

// SchemaVersion is the checkpoint schema this build writes. Load
// accepts any version up to it (older schemas only add fields) and
// rejects newer ones with a clear error.
//
// History: v1 — initial layout; v2 — adds the optional periodic cell
// (absent in v1 payloads, which decode as open-boundary).
const SchemaVersion = 2

// checkpointMagic identifies a fragmd checkpoint envelope.
const checkpointMagic = "fragmd-checkpoint"

// ErrCorrupt marks a checkpoint whose payload failed its checksum or
// could not be decoded — a truncated write, bit rot, or an unrelated
// file.
var ErrCorrupt = errors.New("resilience: corrupt checkpoint")

// ThermostatState snapshots a Berendsen thermostat so NVT
// equilibration resumes with the same coupling. The NVE engine never
// sets it; callers running md.VelocityVerlet.RunNVT equilibration
// populate it themselves through the exported field.
type ThermostatState struct {
	TargetK float64 `json:"target_k"`
	TauFs   float64 `json:"tau_fs"`
}

// MatState is a serialised dense matrix (row-major, like linalg.Mat).
type MatState struct {
	Rows int       `json:"rows"`
	Cols int       `json:"cols"`
	Data []float64 `json:"data"`
}

func matState(m *linalg.Mat) *MatState {
	if m == nil {
		return nil
	}
	return &MatState{Rows: m.Rows, Cols: m.Cols, Data: append([]float64(nil), m.Data...)}
}

func (ms *MatState) mat() (*linalg.Mat, error) {
	if ms == nil {
		return nil, nil
	}
	if ms.Rows < 0 || ms.Cols < 0 || len(ms.Data) != ms.Rows*ms.Cols {
		return nil, fmt.Errorf("%w: matrix %dx%d with %d elements", ErrCorrupt, ms.Rows, ms.Cols, len(ms.Data))
	}
	return linalg.NewMatFrom(ms.Rows, ms.Cols, ms.Data), nil
}

// WarmEntry is one polymer's checkpointed warm-start state
// (warmstart.State with the matrices flattened for JSON).
type WarmEntry struct {
	Key      string    `json:"key"`
	Zs       []int     `json:"zs"`
	Pos      []float64 `json:"pos"`
	Energy   float64   `json:"energy"`
	Grad     []float64 `json:"grad,omitempty"`
	D        *MatState `json:"d,omitempty"`
	C        *MatState `json:"c,omitempty"`
	Basis    string    `json:"basis,omitempty"`
	NBf      int       `json:"nbf,omitempty"`
	NAux     int       `json:"naux,omitempty"`
	NOcc     int       `json:"nocc,omitempty"`
	SCFIters int       `json:"scf_iters,omitempty"`
}

// Checkpoint is a schema-versioned snapshot of a trajectory: the MD
// state (positions, velocities, masses, atomic numbers), the
// integration/RNG metadata needed to continue the run, and optionally
// the warm-start cache so the resumed run keeps its incremental-SCF
// advantage.
type Checkpoint struct {
	// StepsDone counts completed force evaluations: the state sits at
	// trajectory step StepsDone−1, fully integrated. A resumed engine
	// re-evaluates forces at that geometry as its local step 0 (the
	// same boundary semantics as chaining two Engine.Run calls), so
	// energies reproduce the uninterrupted trajectory.
	StepsDone int `json:"steps_done"`
	// TotalSteps is the intended trajectory length (0 = open-ended);
	// resume surfaces a mismatch against the requested length.
	TotalSteps int `json:"total_steps,omitempty"`
	// Dt is the time step in atomic units. Resuming at a different dt
	// breaks trajectory reproduction, so consumers must validate it
	// (cmd/fragmd refuses the mismatch).
	Dt float64 `json:"dt"`
	// Seed records the RNG seed the trajectory's velocities were
	// sampled with — provenance for reproducing the run from scratch;
	// the resumed dynamics itself is deterministic and reads the
	// velocities, not the seed.
	Seed int64 `json:"seed,omitempty"`
	// E0 records the trajectory's step-0 total energy, the baseline of
	// the NVE drift diagnostic, so a resumed run reports drift against
	// the *original* start rather than its own first step. HasE0 marks
	// it valid (pre-E0 checkpoints load with both zero).
	E0    float64 `json:"e0,omitempty"`
	HasE0 bool    `json:"has_e0,omitempty"`

	Zs     []int     `json:"atomic_numbers"`
	Pos    []float64 `json:"pos"` // 3N, Bohr
	Vel    []float64 `json:"vel"` // 3N, atomic units
	Masses []float64 `json:"masses"`
	// Cell holds the orthorhombic box edge lengths in Bohr for a
	// periodic trajectory (empty = open boundaries; schema ≥ 2).
	Cell []float64 `json:"cell,omitempty"`

	Thermostat *ThermostatState `json:"thermostat,omitempty"`
	Warm       []WarmEntry      `json:"warm,omitempty"`
}

// Snapshot captures a trajectory checkpoint from an MD state after
// stepsDone completed force evaluations.
func Snapshot(state *md.State, stepsDone int, dt float64) *Checkpoint {
	n := state.Geom.N()
	ck := &Checkpoint{
		StepsDone: stepsDone,
		Dt:        dt,
		Zs:        make([]int, n),
		Pos:       make([]float64, 3*n),
		Vel:       make([]float64, 3*n),
		Masses:    append([]float64(nil), state.Masses...),
	}
	for i, a := range state.Geom.Atoms {
		ck.Zs[i] = a.Z
		for k := 0; k < 3; k++ {
			ck.Pos[3*i+k] = a.Pos[k]
			ck.Vel[3*i+k] = state.Vel[i][k]
		}
	}
	if c := state.Geom.Cell; c != nil {
		ck.Cell = []float64{c.L[0], c.L[1], c.L[2]}
	}
	return ck
}

// AttachCache records the warm-start cache's states in the checkpoint,
// in deterministic key order so identical runs write identical bytes.
func (ck *Checkpoint) AttachCache(c *warmstart.Cache) {
	if c == nil {
		return
	}
	states := c.Export()
	keys := make([]string, 0, len(states))
	for k := range states {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	ck.Warm = ck.Warm[:0]
	for _, k := range keys {
		st := states[k]
		ck.Warm = append(ck.Warm, WarmEntry{
			Key: k, Zs: st.Zs, Pos: st.Pos, Energy: st.Energy, Grad: st.Grad,
			D: matState(st.D), C: matState(st.C),
			Basis: st.Basis, NBf: st.NBf, NAux: st.NAux, NOcc: st.NOcc,
			SCFIters: st.SCFIters,
		})
	}
}

// State rebuilds the MD state the checkpoint was taken from.
func (ck *Checkpoint) State() (*md.State, error) {
	n := len(ck.Zs)
	if n == 0 || len(ck.Pos) != 3*n || len(ck.Vel) != 3*n {
		return nil, fmt.Errorf("%w: %d atoms with %d positions, %d velocities",
			ErrCorrupt, n, len(ck.Pos), len(ck.Vel))
	}
	g := molecule.New()
	for i, z := range ck.Zs {
		g.AddAtom(z, ck.Pos[3*i], ck.Pos[3*i+1], ck.Pos[3*i+2])
	}
	if len(ck.Cell) != 0 {
		if len(ck.Cell) != 3 {
			return nil, fmt.Errorf("%w: cell has %d edges, want 3", ErrCorrupt, len(ck.Cell))
		}
		cell, err := molecule.NewCell(ck.Cell[0], ck.Cell[1], ck.Cell[2])
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		g.Cell = cell
	}
	s := md.NewState(g)
	for i := range s.Vel {
		for k := 0; k < 3; k++ {
			s.Vel[i][k] = ck.Vel[3*i+k]
		}
	}
	if len(ck.Masses) == n {
		copy(s.Masses, ck.Masses)
	}
	return s, nil
}

// Matches reports whether the checkpoint was taken from a system with
// the same atom list (count and atomic numbers, in order) and the same
// boundary conditions (cell edges, or both open) as g.
func (ck *Checkpoint) Matches(g *molecule.Geometry) bool {
	if g.N() != len(ck.Zs) {
		return false
	}
	for i, a := range g.Atoms {
		if a.Z != ck.Zs[i] {
			return false
		}
	}
	if g.Cell == nil {
		return len(ck.Cell) == 0
	}
	if len(ck.Cell) != 3 {
		return false
	}
	for k := 0; k < 3; k++ {
		if ck.Cell[k] != g.Cell.L[k] {
			return false
		}
	}
	return true
}

// RestoreCache installs the checkpoint's warm states into a cache
// (typically a fresh one configured with the run's skip tolerance).
func (ck *Checkpoint) RestoreCache(c *warmstart.Cache) error {
	if c == nil || len(ck.Warm) == 0 {
		return nil
	}
	states := make(map[string]*warmstart.State, len(ck.Warm))
	for _, we := range ck.Warm {
		d, err := we.D.mat()
		if err != nil {
			return fmt.Errorf("warm entry %s: %w", we.Key, err)
		}
		cm, err := we.C.mat()
		if err != nil {
			return fmt.Errorf("warm entry %s: %w", we.Key, err)
		}
		states[we.Key] = &warmstart.State{
			Zs: we.Zs, Pos: we.Pos, Energy: we.Energy, Grad: we.Grad,
			D: d, C: cm, Basis: we.Basis, NBf: we.NBf, NAux: we.NAux,
			NOcc: we.NOcc, SCFIters: we.SCFIters,
		}
	}
	c.Restore(states)
	return nil
}

// envelope wraps the checkpoint payload with the integrity metadata
// checked before any field is trusted.
type envelope struct {
	Magic   string          `json:"magic"`
	Schema  int             `json:"schema"`
	CRC32C  uint32          `json:"crc32c"`
	Payload json.RawMessage `json:"payload"`
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// syncDir opens a directory and fsyncs it, making a just-renamed entry
// durable. It is a replaceable seam so tests can observe that every
// atomic publish syncs its parent directory.
var syncDir = func(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return err
	}
	return d.Close()
}

// AtomicWriteFile writes data to path crash-durably: a temporary file in
// the same directory is written, fsynced, and renamed over path, and the
// parent directory is fsynced after the rename. The temp-file dance
// alone only guarantees the *file contents* are never torn; on ext4/XFS
// the renamed directory entry itself lives in the parent directory's
// metadata, so a crash right after the rename can lose the new name
// entirely unless the directory is synced too.
func AtomicWriteFile(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after the rename succeeds
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("write %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("sync %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("close %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("publish %s: %w", path, err)
	}
	if err := syncDir(dir); err != nil {
		return fmt.Errorf("sync parent of %s: %w", path, err)
	}
	return nil
}

// Save writes the checkpoint to path atomically and durably: the
// envelope is marshalled with a Castagnoli CRC over the payload bytes,
// written to a temporary file in the same directory, synced, renamed
// over path, and the parent directory is fsynced — a crash at any point
// leaves either the old checkpoint or the new one, never a torn or
// vanished one.
func Save(path string, ck *Checkpoint) error {
	payload, err := json.Marshal(ck)
	if err != nil {
		return fmt.Errorf("resilience: encode checkpoint: %w", err)
	}
	blob, err := json.Marshal(envelope{
		Magic:   checkpointMagic,
		Schema:  SchemaVersion,
		CRC32C:  crc32.Checksum(payload, castagnoli),
		Payload: payload,
	})
	if err != nil {
		return fmt.Errorf("resilience: encode envelope: %w", err)
	}
	if err := AtomicWriteFile(path, blob); err != nil {
		return fmt.Errorf("resilience: %w", err)
	}
	return nil
}

// Load reads and verifies a checkpoint: magic, schema version, and the
// payload checksum are all checked before decoding, so corruption
// surfaces as ErrCorrupt instead of a silently wrong trajectory.
func Load(path string) (*Checkpoint, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("resilience: %w", err)
	}
	var env envelope
	if err := json.Unmarshal(blob, &env); err != nil {
		return nil, fmt.Errorf("%w: %s is not a checkpoint envelope: %v", ErrCorrupt, path, err)
	}
	if env.Magic != checkpointMagic {
		return nil, fmt.Errorf("%w: %s has magic %q, want %q", ErrCorrupt, path, env.Magic, checkpointMagic)
	}
	if env.Schema > SchemaVersion {
		return nil, fmt.Errorf("resilience: %s uses checkpoint schema %d; this build reads ≤ %d",
			path, env.Schema, SchemaVersion)
	}
	if got := crc32.Checksum(env.Payload, castagnoli); got != env.CRC32C {
		return nil, fmt.Errorf("%w: %s checksum %08x, recorded %08x", ErrCorrupt, path, got, env.CRC32C)
	}
	var ck Checkpoint
	if err := json.Unmarshal(env.Payload, &ck); err != nil {
		return nil, fmt.Errorf("%w: %s payload: %v", ErrCorrupt, path, err)
	}
	return &ck, nil
}
