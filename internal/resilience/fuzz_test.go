package resilience

import (
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// fuzzFloats derives a finite float64 slice from raw fuzz bytes
// (encoding/json rejects NaN/Inf, which a checkpoint never contains).
func fuzzFloats(data []byte, n int) []float64 {
	if len(data) == 0 {
		data = []byte{42}
	}
	out := make([]float64, n)
	for i := range out {
		var bits uint64
		for k := 0; k < 8; k++ {
			bits = bits<<8 | uint64(data[(8*i+k)%len(data)])
		}
		f := math.Float64frombits(bits)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			f = float64(bits%1000) / 7
		}
		out[i] = f
	}
	return out
}

// Save∘Load must be the identity on any well-formed checkpoint the
// fuzzer can derive — the round-trip half of the checkpoint contract.
func FuzzCheckpointRoundTrip(f *testing.F) {
	f.Add(uint8(3), int64(1), []byte("seed corpus"))
	f.Add(uint8(1), int64(-9), []byte{0xff, 0x00, 0x80, 0x7f, 0xf0})
	f.Add(uint8(9), int64(1<<40), []byte{})
	f.Fuzz(func(t *testing.T, nRaw uint8, seed int64, data []byte) {
		n := int(nRaw)%8 + 1
		ck := &Checkpoint{
			StepsDone:  int(nRaw),
			TotalSteps: int(nRaw) * 2,
			Dt:         1 + float64(nRaw)/3,
			Seed:       seed,
			Zs:         make([]int, n),
			Pos:        fuzzFloats(data, 3*n),
			Vel:        fuzzFloats(append(data, 7), 3*n),
			Masses:     fuzzFloats(append(data, 13), n),
		}
		for i := range ck.Zs {
			ck.Zs[i] = i%10 + 1
		}
		if len(data) > 4 {
			ck.Thermostat = &ThermostatState{TargetK: float64(data[0]), TauFs: float64(data[1]) + 1}
			ck.Warm = []WarmEntry{{
				Key: "0-1", Zs: ck.Zs, Pos: ck.Pos, Energy: ck.Dt,
				Grad:  fuzzFloats(data, 3*n),
				D:     &MatState{Rows: 1, Cols: 2, Data: fuzzFloats(data, 2)},
				Basis: "sto-3g", NBf: 2, NOcc: 1,
			}}
		}
		path := filepath.Join(t.TempDir(), "fuzz.ckpt")
		if err := Save(path, ck); err != nil {
			t.Fatalf("save: %v", err)
		}
		got, err := Load(path)
		if err != nil {
			t.Fatalf("load after save: %v", err)
		}
		if !reflect.DeepEqual(ck, got) {
			t.Fatalf("round trip not identity:\nsaved  %+v\nloaded %+v", ck, got)
		}
		if _, err := got.State(); err != nil {
			t.Fatalf("state rebuild: %v", err)
		}
	})
}

// Load must never panic on arbitrary bytes — it either decodes a valid
// checkpoint or returns an error.
func FuzzLoadCheckpoint(f *testing.F) {
	f.Add([]byte(`{"magic":"fragmd-checkpoint","schema":1,"crc32c":0,"payload":{}}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte{0x00, 0xff, 0x7b, 0x7d})
	crc := make([]byte, 4)
	binary.LittleEndian.PutUint32(crc, 0xdeadbeef)
	f.Add(crc)
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "arbitrary.ckpt")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		ck, err := Load(path)
		if err == nil && ck == nil {
			t.Fatal("nil checkpoint with nil error")
		}
	})
}
