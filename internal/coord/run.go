package coord

import "errors"

// Completion is one finished task reported by a backend.
type Completion struct {
	Worker int
	Task   Task
}

// Backend executes tasks on workers. Dispatch must not block (workers
// handed tasks are known idle); Await blocks — in real time for the
// live engine, in simulated time for the discrete-event simulator —
// until the next task finishes. Backends accumulate their own payloads
// (energies and gradients, or FLOPs and clocks) before Await returns,
// so Run can release dependencies immediately afterwards.
type Backend interface {
	// Workers returns the number of workers (must stay constant).
	Workers() int
	// Dispatch starts t on idle worker w; m carries the coordination
	// events (batch refill, steal) that preceded the dispatch.
	Dispatch(w int, t Task, m DispatchMeta)
	// Await returns the next completion, or an error that aborts the
	// run.
	Await() (Completion, error)
}

// BackendFuncs adapts plain closures to the Backend interface, letting
// backends keep their state in run-scoped locals.
type BackendFuncs struct {
	NumWorkers int
	DispatchFn func(w int, t Task, m DispatchMeta)
	AwaitFn    func() (Completion, error)
}

func (b *BackendFuncs) Workers() int                           { return b.NumWorkers }
func (b *BackendFuncs) Dispatch(w int, t Task, m DispatchMeta) { b.DispatchFn(w, t, m) }
func (b *BackendFuncs) Await() (Completion, error)             { return b.AwaitFn() }

// Run drives the policy to completion over a backend: it offers work to
// idle workers group by group, dispatches what is ready, then blocks on
// the backend for the next completion and releases its dependants.
// onAdvance fires whenever a monomer finishes a time step (the live
// backend integrates there); it may be nil.
//
// Idle workers are tracked per group: once one worker of a group is
// refused, the whole group is skipped for the rest of the sweep — a
// refusal means the group's queue and the super-coordinator are both
// empty (and stealing found nothing), which no other group's *pops* can
// change mid-sweep. This keeps the sweep O(groups + dispatches) per
// completion instead of O(idle workers), which matters when thousands
// of simulated workers sit idle in a dispatch-bound phase.
func Run(p *Policy, b Backend, onAdvance func(mono, step int32)) error {
	nw := b.Workers()
	if nw != p.opts.Workers {
		return errors.New("coord: backend worker count differs from policy options")
	}
	idle := make([][]int, p.Groups())
	for w := nw - 1; w >= 0; w-- {
		g := p.GroupOf(w)
		idle[g] = append(idle[g], w) // pop order: lowest worker first
	}
	inflight := 0
	for !p.Done() {
		for g := range idle {
			for len(idle[g]) > 0 {
				w := idle[g][len(idle[g])-1]
				t, m, ok := p.Next(w)
				if !ok {
					break
				}
				b.Dispatch(w, t, m)
				idle[g] = idle[g][:len(idle[g])-1]
				inflight++
			}
		}
		if inflight == 0 {
			if p.Done() {
				break
			}
			return errors.New("coord: deadlock — no ready tasks and none in flight")
		}
		c, err := b.Await()
		if err != nil {
			return err
		}
		inflight--
		g := p.GroupOf(c.Worker)
		idle[g] = append(idle[g], c.Worker)
		p.Complete(c.Task, onAdvance)
	}
	return nil
}
