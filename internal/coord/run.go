package coord

import (
	"context"
	"errors"
	"fmt"
)

// Completion is one finished attempt reported by a backend.
type Completion struct {
	Worker int
	Task   Task
	// Err, when non-nil, marks the attempt as failed: the task's result
	// was lost and the driver will re-queue it against the retry budget
	// (Options.MaxRetries). Backends must not have accumulated any
	// payload for a failed attempt.
	Err error
	// WorkerDown reports that the worker died executing the attempt
	// (injected death, simulated node loss). The driver evicts it —
	// nothing is dispatched to it again — and reclaims the in-flight
	// task. WorkerDown without Err marks a clean last completion before
	// death; with Err the attempt itself was also lost.
	WorkerDown bool
}

// Backend executes tasks on workers. Dispatch must not block (workers
// handed tasks are known idle); Await blocks — in real time for the
// live engine, in simulated time for the discrete-event simulator —
// until the next attempt finishes or the context is cancelled (the
// escape hatch from a backend that will never complete a task).
// Backends accumulate their own payloads (energies and gradients, or
// FLOPs and clocks) before Await returns, so Run can release
// dependencies immediately afterwards; payloads of failed attempts and
// of duplicate completions of already-Completed tasks must be dropped,
// not accumulated.
type Backend interface {
	// Workers returns the number of workers and must stay constant for
	// the whole run. Worker identity is a *dense fixed handle*: workers
	// are exactly 0..Workers()-1, assigned once before the run and
	// never re-issued. An evicted handle stays dead — backends with
	// late-joining physical workers (the network backend) must park
	// them until the next run's handle assignment rather than reusing a
	// dead slot, and RunContext enforces this by aborting on any
	// completion that names an out-of-range or already-evicted worker.
	Workers() int
	// Dispatch starts t on idle worker w; m carries the coordination
	// events (batch refill, steal, attempt number, speculation) that
	// preceded the dispatch.
	Dispatch(w int, t Task, m DispatchMeta)
	// Await returns the next completion, or an error that aborts the
	// run. A backend that can block in real time must honour ctx.
	Await(ctx context.Context) (Completion, error)
}

// BackendFuncs adapts plain closures to the Backend interface, letting
// backends keep their state in run-scoped locals.
type BackendFuncs struct {
	NumWorkers int
	DispatchFn func(w int, t Task, m DispatchMeta)
	AwaitFn    func(ctx context.Context) (Completion, error)
}

// Workers reports the fixed worker count of the adapted backend.
func (b *BackendFuncs) Workers() int { return b.NumWorkers }

// Dispatch forwards to DispatchFn.
func (b *BackendFuncs) Dispatch(w int, t Task, m DispatchMeta) { b.DispatchFn(w, t, m) }

// Await forwards to AwaitFn.
func (b *BackendFuncs) Await(ctx context.Context) (Completion, error) {
	return b.AwaitFn(ctx)
}

// RunStats summarises the resilience events of one driver run.
type RunStats struct {
	// Retries counts failed attempts that were re-queued (each
	// recovered unit of work, the simulator's Result.Recoveries).
	Retries int
	// Evicted counts workers removed from service after dying.
	Evicted int
	// Speculated counts extra straggler copies dispatched.
	Speculated int
	// Duplicates counts late completions dropped because the task had
	// already completed on another worker.
	Duplicates int
}

// Run drives the policy to completion over a backend with no deadline;
// see RunContext.
func Run(p *Policy, b Backend, onAdvance func(mono, step int32)) error {
	_, err := RunContext(context.Background(), p, b, onAdvance)
	return err
}

// RunContext drives the policy to completion over a backend: it offers
// work to idle workers group by group, dispatches what is ready, then
// blocks on the backend for the next completion and releases its
// dependants. onAdvance fires whenever a monomer finishes a time step
// (the live backend integrates there); it may be nil.
//
// Failure semantics: an attempt reported with Completion.Err is
// re-queued on a surviving worker until the task's retry budget
// (Options.MaxRetries) is exhausted; a completion with WorkerDown
// evicts the worker and reclaims its in-flight task; with
// Options.Speculate, idle workers with nothing ready re-run the oldest
// in-flight task (one extra copy per task — the straggler defence) and
// the losing copy's completion is dropped. The context bounds the whole
// run: cancellation (or a deadline) aborts with a clear error instead
// of wedging on a backend that never completes a task.
//
// Idle workers are tracked per group: once one worker of a group is
// refused, the whole group is skipped for the rest of the sweep — a
// refusal means the group's queue and the super-coordinator are both
// empty (and stealing found nothing), which no other group's *pops* can
// change mid-sweep. This keeps the sweep O(groups + dispatches) per
// completion instead of O(idle workers), which matters when thousands
// of simulated workers sit idle in a dispatch-bound phase.
func RunContext(ctx context.Context, p *Policy, b Backend, onAdvance func(mono, step int32)) (RunStats, error) {
	var st RunStats
	nw := b.Workers()
	if nw != p.opts.Workers {
		return st, errors.New("coord: backend worker count differs from policy options")
	}
	idle := make([][]int, p.Groups())
	for w := nw - 1; w >= 0; w-- {
		g := p.GroupOf(w)
		idle[g] = append(idle[g], w) // pop order: lowest worker first
	}
	alive := nw
	evicted := make([]bool, nw)
	inflight := 0
	// attempts/retries/speculated only ever hold tasks that failed or
	// were speculated — a vanishing fraction — and the speculation
	// queue is head-trimmed as tasks complete (they complete in roughly
	// dispatch order) and compacted, so the resilience bookkeeping
	// stays proportional to the in-flight window, not the task count.
	attempts := map[Task]int{} // next attempt number, absent = 0
	retries := map[Task]int{}  // failed attempts per task
	live := map[Task]int{}     // in-flight copies per task
	speculated := map[Task]bool{}
	var specQ []Task // primary dispatches in order, for straggler picks
	specHead := 0

	dispatch := func(w int, t Task, m DispatchMeta) {
		m.Attempt = attempts[t]
		b.Dispatch(w, t, m)
		live[t]++
		inflight++
	}
	// trimSpecQ drops completed/stale entries from the queue head and
	// reclaims the consumed prefix once it dominates the backing array.
	trimSpecQ := func() {
		for specHead < len(specQ) {
			t := specQ[specHead]
			if !p.Completed(t) && !speculated[t] && live[t] > 0 {
				break
			}
			specHead++
		}
		if specHead > 1024 && specHead*2 > len(specQ) {
			specQ = append(specQ[:0], specQ[specHead:]...)
			specHead = 0
		}
	}
	// nextSpeculation pops the oldest in-flight, not-yet-duplicated
	// task.
	nextSpeculation := func() (Task, bool) {
		trimSpecQ()
		if specHead < len(specQ) {
			t := specQ[specHead]
			specHead++
			return t, true
		}
		return Task{}, false
	}

	for !p.Done() {
		if err := ctx.Err(); err != nil {
			return st, fmt.Errorf("coord: run cancelled with %d tasks outstanding: %w", p.remaining, err)
		}
		for g := range idle {
			for len(idle[g]) > 0 {
				w := idle[g][len(idle[g])-1]
				t, m, ok := p.Next(w)
				if !ok {
					break
				}
				idle[g] = idle[g][:len(idle[g])-1]
				dispatch(w, t, m)
				if p.opts.Speculate {
					specQ = append(specQ, t)
				}
			}
		}
		if p.opts.Speculate {
			for g := range idle {
				for len(idle[g]) > 0 {
					t, ok := nextSpeculation()
					if !ok {
						break
					}
					w := idle[g][len(idle[g])-1]
					idle[g] = idle[g][:len(idle[g])-1]
					speculated[t] = true
					attempts[t]++
					st.Speculated++
					dispatch(w, t, DispatchMeta{Group: p.GroupOf(w), Speculative: true})
				}
			}
		}
		if inflight == 0 {
			if p.Done() {
				break
			}
			if alive == 0 {
				return st, fmt.Errorf("coord: every worker evicted with %d tasks outstanding", p.remaining)
			}
			return st, errors.New("coord: deadlock — no ready tasks and none in flight")
		}
		c, err := b.Await(ctx)
		if err != nil {
			return st, err
		}
		// Worker identity is a dense fixed handle (see Backend.Workers):
		// a completion naming a handle outside 0..nw-1, or one already
		// evicted, is a backend identity bug (a late joiner reusing a
		// dead slot would silently rejoin the idle pool), so fail loud.
		if c.Worker < 0 || c.Worker >= nw {
			return st, fmt.Errorf("coord: completion from worker %d outside the run's dense handle range 0..%d",
				c.Worker, nw-1)
		}
		if evicted[c.Worker] {
			return st, fmt.Errorf("coord: completion from evicted worker %d — handles are never re-issued within a run; late-joining workers must wait for the next run", c.Worker)
		}
		inflight--
		live[c.Task]--
		if live[c.Task] == 0 {
			delete(live, c.Task)
		}
		if c.WorkerDown {
			st.Evicted++
			alive--
			evicted[c.Worker] = true
		} else {
			g := p.GroupOf(c.Worker)
			idle[g] = append(idle[g], c.Worker)
		}
		switch {
		case c.Err != nil:
			if p.Completed(c.Task) || live[c.Task] > 0 {
				// A twin copy already delivered the result, or is still
				// running and may yet deliver it: this copy's failure
				// neither burns the retry budget nor aborts anything —
				// speculation is an optimisation, never a new way to
				// fail.
				break
			}
			retries[c.Task]++
			if retries[c.Task] > p.opts.MaxRetries {
				return st, fmt.Errorf("coord: task %v failed %d times, retry budget %d exhausted: %w",
					c.Task, retries[c.Task], p.opts.MaxRetries, c.Err)
			}
			st.Retries++
			attempts[c.Task]++
			p.Requeue(c.Task)
		case p.Completed(c.Task):
			st.Duplicates++ // losing copy of a speculated task
		default:
			p.Complete(c.Task, onAdvance)
		}
		if p.opts.Speculate {
			trimSpecQ()
		}
	}
	return st, nil
}
