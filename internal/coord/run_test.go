package coord

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// scriptedBackend completes attempts in dispatch order, failing the
// attempts a script marks, and records every dispatch.
type scriptedBackend struct {
	workers    int
	fail       func(t Task, attempt int) (fail, down bool)
	dispatches []Task
	byWorker   map[int]int
	pending    []Completion
}

func (b *scriptedBackend) Workers() int { return b.workers }
func (b *scriptedBackend) Dispatch(w int, t Task, m DispatchMeta) {
	b.dispatches = append(b.dispatches, t)
	if b.byWorker == nil {
		b.byWorker = map[int]int{}
	}
	b.byWorker[w]++
	c := Completion{Worker: w, Task: t}
	if b.fail != nil {
		if fail, down := b.fail(t, m.Attempt); fail {
			c.Err = errors.New("scripted failure")
			c.WorkerDown = down
		}
	}
	b.pending = append(b.pending, c)
}
func (b *scriptedBackend) Await(context.Context) (Completion, error) {
	c := b.pending[0]
	b.pending = b.pending[1:]
	return c, nil
}

// A failed attempt within the retry budget is re-queued and the run
// still completes every task exactly once.
func TestRunRetriesFailedAttempts(t *testing.T) {
	g := chainGraph(t, 5, true)
	p, err := NewPolicy(g, Options{Steps: 2, Workers: 2, MaxRetries: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Every task's first attempt fails; retries succeed.
	b := &scriptedBackend{workers: 2, fail: func(_ Task, attempt int) (bool, bool) {
		return attempt == 0, false
	}}
	st, err := RunContext(context.Background(), p, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := g.NPoly() * 2
	if st.Retries != want {
		t.Errorf("Retries = %d, want %d (every task failed once)", st.Retries, want)
	}
	if !p.Done() {
		t.Error("policy not done after retried run")
	}
	if len(b.dispatches) != 2*want {
		t.Errorf("dispatched %d attempts, want %d", len(b.dispatches), 2*want)
	}
}

// Exhausting the retry budget aborts the run with the task named.
func TestRunRetryBudgetExhausted(t *testing.T) {
	g := chainGraph(t, 3, false)
	p, err := NewPolicy(g, Options{Steps: 1, Workers: 1, MaxRetries: 1})
	if err != nil {
		t.Fatal(err)
	}
	b := &scriptedBackend{workers: 1, fail: func(tk Task, _ int) (bool, bool) {
		return tk.Poly == 1, false // polymer 1 always fails
	}}
	_, err = RunContext(context.Background(), p, b, nil)
	if err == nil {
		t.Fatal("run succeeded despite an always-failing task")
	}
	if !strings.Contains(err.Error(), "retry budget") {
		t.Errorf("error %q does not name the retry budget", err)
	}
}

// A worker that dies is evicted — no further dispatches — and its
// in-flight task is reclaimed onto a survivor.
func TestRunEvictsDeadWorker(t *testing.T) {
	g := chainGraph(t, 6, false)
	p, err := NewPolicy(g, Options{Steps: 2, Workers: 3, MaxRetries: 1})
	if err != nil {
		t.Fatal(err)
	}
	died := false
	b := &scriptedBackend{workers: 3}
	b.fail = func(tk Task, _ int) (bool, bool) {
		if !died && tk.Poly == 2 {
			died = true
			return true, true // worker dies with polymer 2's first attempt
		}
		return false, false
	}
	st, err := RunContext(context.Background(), p, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Evicted != 1 {
		t.Errorf("Evicted = %d, want 1", st.Evicted)
	}
	if st.Retries != 1 {
		t.Errorf("Retries = %d, want 1 (the reclaimed in-flight task)", st.Retries)
	}
	if !p.Done() {
		t.Error("policy not done after eviction")
	}
}

// When every worker dies the run aborts instead of wedging.
func TestRunAllWorkersEvicted(t *testing.T) {
	g := chainGraph(t, 4, false)
	p, err := NewPolicy(g, Options{Steps: 1, Workers: 2, MaxRetries: 100})
	if err != nil {
		t.Fatal(err)
	}
	b := &scriptedBackend{workers: 2, fail: func(Task, int) (bool, bool) { return true, true }}
	_, err = RunContext(context.Background(), p, b, nil)
	if err == nil || !strings.Contains(err.Error(), "evicted") {
		t.Fatalf("got %v, want an every-worker-evicted error", err)
	}
}

// slowBackend finishes one designated straggler task only after the
// context dies; everything else completes instantly. With Speculate the
// straggler's duplicate copy completes and the run finishes.
type slowBackend struct {
	workers  int
	straggle Task
	pending  []Completion
	held     int // attempts of the straggler swallowed (never complete)
}

func (b *slowBackend) Workers() int { return b.workers }
func (b *slowBackend) Dispatch(w int, t Task, m DispatchMeta) {
	if t == b.straggle && !m.Speculative {
		b.held++ // primary copy hangs forever
		return
	}
	b.pending = append(b.pending, Completion{Worker: w, Task: t})
}
func (b *slowBackend) Await(ctx context.Context) (Completion, error) {
	if len(b.pending) == 0 {
		<-ctx.Done()
		return Completion{}, ctx.Err()
	}
	c := b.pending[0]
	b.pending = b.pending[1:]
	return c, nil
}

func TestRunSpeculatesAgainstStraggler(t *testing.T) {
	g := chainGraph(t, 6, false)
	p, err := NewPolicy(g, Options{Steps: 1, Workers: 2, Speculate: true})
	if err != nil {
		t.Fatal(err)
	}
	b := &slowBackend{workers: 2, straggle: Task{Poly: 3, Step: 0}}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	st, err := RunContext(ctx, p, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Speculated == 0 {
		t.Error("no speculative copies dispatched against the straggler")
	}
	if b.held != 1 {
		t.Errorf("straggler primary dispatched %d times, want 1", b.held)
	}
	if !p.Done() {
		t.Error("policy not done: speculation failed to cover the straggler")
	}
}

// Late completions of a task that a speculative copy already finished
// are dropped, not double-completed: monomer X's step-0 primary attempt
// straggles until after its speculative copy has completed and step 1
// is already in flight, then lands as a duplicate.
func TestRunDropsDuplicateCompletions(t *testing.T) {
	g := chainGraph(t, 2, false) // monomers X=0, Y=1
	p, err := NewPolicy(g, Options{Steps: 2, Workers: 2, Speculate: true})
	if err != nil {
		t.Fatal(err)
	}
	x0 := Task{Poly: 0, Step: 0}
	var pending []Completion
	held := false
	b := &BackendFuncs{NumWorkers: 2}
	b.DispatchFn = func(w int, tk Task, m DispatchMeta) {
		c := Completion{Worker: w, Task: tk}
		if tk == x0 && !m.Speculative {
			held = true // the straggling primary: hold its completion
			return
		}
		pending = append(pending, c)
		if tk == x0 && m.Speculative && held {
			// The held primary limps in right after the speculative
			// copy completes.
			pending = append(pending, Completion{Worker: 0, Task: x0})
			held = false
		}
	}
	b.AwaitFn = func(context.Context) (Completion, error) {
		c := pending[0]
		pending = pending[1:]
		return c, nil
	}
	st, err := RunContext(context.Background(), p, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Duplicates == 0 {
		t.Error("the straggling primary's late completion was not counted as a duplicate")
	}
	if st.Speculated == 0 {
		t.Error("no speculative copies dispatched")
	}
	if !p.Done() {
		t.Error("policy not done")
	}
}

// A failed speculative copy must not burn the retry budget or abort
// the run while the task's healthy primary copy is still running —
// speculation is an optimisation, never a new way to fail.
func TestRunSpeculativeFailureDoesNotBurnBudget(t *testing.T) {
	g := chainGraph(t, 2, false) // monomers X=0, Y=1
	p, err := NewPolicy(g, Options{Steps: 2, Workers: 2, Speculate: true, MaxRetries: 0})
	if err != nil {
		t.Fatal(err)
	}
	x0 := Task{Poly: 0, Step: 0}
	var pending []Completion
	held := false
	b := &BackendFuncs{NumWorkers: 2}
	b.DispatchFn = func(w int, tk Task, m DispatchMeta) {
		c := Completion{Worker: w, Task: tk}
		if tk == x0 && !m.Speculative {
			held = true // straggling primary: completion deferred
			return
		}
		if tk == x0 && m.Speculative {
			c.Err = errors.New("speculative copy failed")
		}
		pending = append(pending, c)
		if tk == x0 && m.Speculative && held {
			// The healthy primary limps in right after its copy fails.
			pending = append(pending, Completion{Worker: 0, Task: x0})
			held = false
		}
	}
	b.AwaitFn = func(context.Context) (Completion, error) {
		c := pending[0]
		pending = pending[1:]
		return c, nil
	}
	st, err := RunContext(context.Background(), p, b, nil)
	if err != nil {
		t.Fatalf("speculative copy's failure aborted a run whose primary succeeded: %v", err)
	}
	if st.Speculated == 0 {
		t.Error("no speculation happened — test is vacuous")
	}
	if st.Retries != 0 {
		t.Errorf("Retries = %d, want 0 (the primary delivered, nothing was re-queued)", st.Retries)
	}
	if !p.Done() {
		t.Error("policy not done")
	}
}

// The barrier-wedge fix: a backend that never completes a task no
// longer hangs Run forever — the context deadline aborts with a clear
// error naming the outstanding work.
func TestRunContextDeadlineUnwedges(t *testing.T) {
	g := chainGraph(t, 3, false)
	p, err := NewPolicy(g, Options{Steps: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b := &BackendFuncs{
		NumWorkers: 1,
		DispatchFn: func(int, Task, DispatchMeta) {}, // swallow the task
		AwaitFn: func(ctx context.Context) (Completion, error) {
			<-ctx.Done() // a wedged backend at least honours ctx
			return Completion{}, ctx.Err()
		},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := RunContext(ctx, p, b, nil)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("wedged run reported success")
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("got %v, want a deadline error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RunContext still wedged 5s after its deadline")
	}
}

// Requeue of an already-completed task is a no-op, and Completed
// reflects Complete.
func TestCompletedAndRequeue(t *testing.T) {
	g := chainGraph(t, 2, false)
	p, err := NewPolicy(g, Options{Steps: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	tk, _, ok := p.Next(0)
	if !ok {
		t.Fatal("no task ready")
	}
	if p.Completed(tk) {
		t.Error("task completed before Complete")
	}
	p.Complete(tk, nil)
	if !p.Completed(tk) {
		t.Error("task not completed after Complete")
	}
	before := p.ready.Len()
	p.Requeue(tk)
	if p.ready.Len() != before {
		t.Error("Requeue re-queued a completed task")
	}
	remaining := p.remaining
	p.Complete(tk, nil) // double-complete must be a no-op
	if p.remaining != remaining {
		t.Error("double Complete decremented remaining twice")
	}
}

// Worker identity is a dense fixed handle: once a handle is evicted, a
// backend that lets a late joiner reuse the dead slot (or invents a
// handle outside the range) must be caught, not silently re-admitted to
// the idle pool.
func TestRunRejectsForgedWorkerIdentity(t *testing.T) {
	run := func(forge func(c Completion, evictedSeen bool) Completion) error {
		g := chainGraph(t, 4, false)
		p, err := NewPolicy(g, Options{Steps: 1, Workers: 2, MaxRetries: 3})
		if err != nil {
			t.Fatal(err)
		}
		var queue []Completion
		evictedSeen := false
		b := &BackendFuncs{
			NumWorkers: 2,
			DispatchFn: func(w int, tk Task, m DispatchMeta) {
				c := Completion{Worker: w, Task: tk}
				if w == 0 && !evictedSeen {
					// First attempt on worker 0 kills it.
					c.Err = errors.New("injected death")
					c.WorkerDown = true
				} else {
					c = forge(c, evictedSeen)
				}
				queue = append(queue, c)
			},
			AwaitFn: func(context.Context) (Completion, error) {
				c := queue[0]
				queue = queue[1:]
				if c.WorkerDown {
					evictedSeen = true
				}
				return c, nil
			},
		}
		_, err = RunContext(context.Background(), p, b, nil)
		return err
	}

	err := run(func(c Completion, evictedSeen bool) Completion {
		if evictedSeen {
			c.Worker = 0 // a late joiner squatting on the dead slot
		}
		return c
	})
	if err == nil || !strings.Contains(err.Error(), "evicted worker") {
		t.Fatalf("completion reusing an evicted handle not rejected: %v", err)
	}

	err = run(func(c Completion, evictedSeen bool) Completion {
		c.Worker = 7 // outside the dense handle range
		return c
	})
	if err == nil || !strings.Contains(err.Error(), "outside") {
		t.Fatalf("completion with out-of-range handle not rejected: %v", err)
	}
}
