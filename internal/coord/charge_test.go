package coord

import (
	"testing"
)

// With ChargeRounds = R, a serial drain must emit, per step: R rounds
// of all monomers' charge tasks (each round a barrier, monomers in
// index order), then the step's polymers in the usual priority order.
func TestChargePhaseOrdering(t *testing.T) {
	const n, rounds, steps = 4, 2, 2
	g := chainGraph(t, n, true)
	p, err := NewPolicy(g, Options{Steps: steps, Workers: 1, ChargeRounds: rounds})
	if err != nil {
		t.Fatal(err)
	}
	order := drain(t, p)
	wantTotal := steps * (rounds*n + g.NPoly())
	if len(order) != wantTotal {
		t.Fatalf("dispatched %d tasks, want %d", len(order), wantTotal)
	}
	idx := 0
	for step := int32(0); step < steps; step++ {
		for round := int32(0); round < rounds; round++ {
			for mi := int32(0); mi < n; mi++ {
				tk := order[idx]
				idx++
				if tk.Step != step || tk.Phase != round || tk.Poly != mi {
					t.Fatalf("dispatch %d: got %+v, want charge (mono %d, step %d, round %d)",
						idx-1, tk, mi, step, round)
				}
			}
		}
		for i := 0; i < g.NPoly(); i++ {
			tk := order[idx]
			idx++
			if tk.Step != step || int(tk.Phase) != rounds {
				t.Fatalf("dispatch %d: got %+v, want a step-%d polymer task", idx-1, tk, step)
			}
		}
	}
}

// The phase barrier holds even when workers sit idle: with nothing but
// charge tasks outstanding, no polymer may dispatch, and the next
// round only opens when the previous one fully completes.
func TestChargePhaseBarrier(t *testing.T) {
	const n = 3
	g := chainGraph(t, n, false)
	p, err := NewPolicy(g, Options{Steps: 1, Workers: 8, ChargeRounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Pull everything dispatchable right now: exactly the n round-0
	// charge tasks.
	var first []Task
	for w := 0; w < 8; w++ {
		if tk, _, ok := p.Next(w); ok {
			first = append(first, tk)
		}
	}
	if len(first) != n {
		t.Fatalf("%d tasks dispatchable before any completion, want %d round-0 charges", len(first), n)
	}
	for _, tk := range first[:n-1] {
		p.Complete(tk, nil)
	}
	if tk, _, ok := p.Next(0); ok {
		t.Fatalf("task %+v dispatched while round 0 incomplete", tk)
	}
	p.Complete(first[n-1], nil)
	// Round 1 opens — all n tasks, still no polymers.
	var second []Task
	for w := 0; w < 8; w++ {
		if tk, _, ok := p.Next(w); ok {
			second = append(second, tk)
		}
	}
	if len(second) != n {
		t.Fatalf("%d tasks after round 0, want %d round-1 charges", len(second), n)
	}
	for _, tk := range second {
		if tk.Phase != 1 {
			t.Fatalf("expected round-1 charge task, got %+v", tk)
		}
		p.Complete(tk, nil)
	}
	// Now the polymer phase is open.
	tk, _, ok := p.Next(0)
	if !ok || int(tk.Phase) != 2 {
		t.Fatalf("polymer phase not released after final round: %+v ok=%v", tk, ok)
	}
}

// Async across steps: a monomer whose step-t polymers are all done may
// run its step-t+1 vacuum charge task while other monomers still
// compute step t — but round 1 and the polymers of t+1 stay blocked.
func TestChargeRoundZeroIsPerMonomerAsync(t *testing.T) {
	// Monomer-only graph: each monomer's sole polymer is itself, so
	// completing monomer i's polymer advances it immediately.
	g := chainGraph(t, 3, false)
	p, err := NewPolicy(g, Options{Steps: 2, Workers: 1, ChargeRounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	order := drain(t, p)
	// Find the first step-1 round-0 charge task and the last step-0
	// polymer: asynchrony means the charge may precede the polymer
	// completion of other monomers. In a serial drain the order is
	// deterministic; just assert every task appears exactly once and
	// phases never regress within (step, monomer lane).
	seen := map[Task]bool{}
	for _, tk := range order {
		if seen[tk] {
			t.Fatalf("task %+v dispatched twice", tk)
		}
		seen[tk] = true
	}
	wantTotal := 2 * (2*3 + g.NPoly())
	if len(order) != wantTotal {
		t.Fatalf("dispatched %d tasks, want %d", len(order), wantTotal)
	}
}

// Vacuum (ChargeRounds 0) must be bit-compatible with the previous
// scheduler: no charge tasks, Phase always 0.
func TestChargeRoundsZeroUnchanged(t *testing.T) {
	g := chainGraph(t, 4, true)
	p, err := NewPolicy(g, Options{Steps: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, tk := range drain(t, p) {
		if tk.Phase != 0 {
			t.Fatalf("vacuum task with phase %d: %+v", tk.Phase, tk)
		}
	}
}

// Negative round counts are rejected.
func TestChargeRoundsValidation(t *testing.T) {
	g := chainGraph(t, 2, false)
	if _, err := NewPolicy(g, Options{Steps: 1, Workers: 1, ChargeRounds: -1}); err == nil {
		t.Fatal("negative ChargeRounds accepted")
	}
}

// A failed charge task retries like any other: requeue keeps the
// barrier intact and the run completes.
func TestChargeTaskRequeue(t *testing.T) {
	g := chainGraph(t, 3, true)
	p, err := NewPolicy(g, Options{Steps: 1, Workers: 1, ChargeRounds: 1, MaxRetries: 2})
	if err != nil {
		t.Fatal(err)
	}
	failedOnce := false
	var order []Task
	for !p.Done() {
		tk, _, ok := p.Next(0)
		if !ok {
			t.Fatalf("policy stuck with %d outstanding", p.remaining)
		}
		if !failedOnce && p.isCharge(tk) {
			failedOnce = true
			p.Requeue(tk) // simulate a failed attempt
			continue
		}
		order = append(order, tk)
		p.Complete(tk, nil)
	}
	if !failedOnce {
		t.Fatal("no charge task was failed")
	}
	want := 1*3 + g.NPoly()
	if len(order) != want {
		t.Fatalf("completed %d tasks, want %d", len(order), want)
	}
}
