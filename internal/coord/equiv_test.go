package coord_test

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/fragmd/fragmd/internal/chem"
	"github.com/fragmd/fragmd/internal/cluster"
	"github.com/fragmd/fragmd/internal/coord"
	"github.com/fragmd/fragmd/internal/fragment"
	"github.com/fragmd/fragmd/internal/md"
	"github.com/fragmd/fragmd/internal/molecule"
	"github.com/fragmd/fragmd/internal/potential"
	"github.com/fragmd/fragmd/internal/sched"
)

// taskID renders a dispatch as a backend-independent string: the
// polymer's monomer tuple plus the time step, or — for EE-MBE charge
// tasks (phase below the round count) — the monomer index, step and
// round.
func taskID(members [][]int32, rounds int, t coord.Task) string {
	if int(t.Phase) < rounds {
		return fmt.Sprintf("q%d@%d#%d", t.Poly, t.Step, t.Phase)
	}
	return fmt.Sprintf("%v@%d", members[t.Poly], t.Step)
}

// The tentpole acceptance test: the live in-process engine and the
// discrete-event cluster simulator run the *same* policy core, so on
// the same workload — identical monomer centroids, cutoffs, and
// serialised execution (one worker) — they must dispatch the identical
// task sequence, flat and hierarchical, async and sync.
func TestLiveAndSimulatedBackendsDispatchIdentically(t *testing.T) {
	const (
		dimerCut  = 12.0 // Bohr; ≥ trimerCut so both enumerations agree
		trimerCut = 9.0
		steps     = 3
	)
	g := molecule.WaterCluster(7)
	f, err := fragment.ByMolecule(g, 3, 1, fragment.Options{
		DimerCutoff: dimerCut, TrimerCutoff: trimerCut,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The simulator sees the same workload through monomer centroids:
	// fragment dimensions only move the simulated clock, which a single
	// serialised worker makes irrelevant to dispatch order.
	var specs []cluster.MonomerSpec
	for mi := range f.Monomers {
		specs = append(specs, cluster.MonomerSpec{
			Centroid: f.Centroid(mi), Atoms: 3, NBf: 13, NOcc: 5, NAux: 42,
		})
	}
	w := cluster.NewWorkload(specs, dimerCut, trimerCut)
	if len(w.Polymers) != len(f.Polymers()) {
		t.Fatalf("enumerations disagree: simulator %d polymers, fragmentation %d",
			len(w.Polymers), len(f.Polymers()))
	}
	testMachine := cluster.Machine{
		Name: "equiv", Nodes: 1, GCDsPerNode: 1, PeakTF: 1,
		EffMax: 0.8, EffHalf: 100, DispatchLatency: 1e-6, CoordService: 1e-6,
	}

	configs := []struct {
		name          string
		async         bool
		groups, batch int
		steal         bool
		scc           int // EE-MBE SCC rounds; −1 = vacuum (no embedding)
	}{
		{"flat-async", true, 0, 0, false, -1},
		{"flat-sync", false, 0, 0, false, -1},
		{"batched-async", true, 2, 4, true, -1},
		// The two-phase embedded graph: charge rounds barrier each step
		// in both backends.
		{"embedded-async", true, 0, 0, false, 1},
		{"embedded-sync", false, 0, 0, false, 0},
		{"embedded-batched", true, 2, 4, true, 0},
	}
	for _, cfg := range configs {
		var embed *fragment.EmbedOptions
		rounds := 0
		if cfg.scc >= 0 {
			embed = &fragment.EmbedOptions{SCC: cfg.scc}
			rounds = embed.Rounds()
		}
		var live []string
		var eng *sched.Engine
		eng, err = sched.New(f, &potential.LennardJones{Charges: map[int]float64{1: 0.2, 8: -0.4}}, sched.Options{
			Workers: 1, Async: cfg.async, Dt: 0.5 * chem.AtomicTimePerFs,
			// Near-symmetric lattices leave the farthest-from-centroid
			// choice to float summation order; pin both backends to the
			// simulator's pick so the priorities are identical.
			RefMonomer: w.RefMono(),
			Groups:     cfg.groups, Batch: cfg.batch, Steal: cfg.steal,
			Embed: embed,
			TraceDispatch: func(tk coord.Task, _ coord.DispatchMeta) {
				live = append(live, taskID(eng.Graph().Members, rounds, tk))
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		state := md.NewState(f.Geom.Clone())
		state.SampleVelocities(100, rand.New(rand.NewSource(17)))
		if _, err := eng.Run(state, steps, nil); err != nil {
			t.Fatal(err)
		}

		var sim []string
		_, err = cluster.Simulate(w, testMachine, cluster.Options{
			Nodes: 1, Steps: steps, Async: cfg.async, Seed: 17,
			Groups: cfg.groups, Batch: cfg.batch, Steal: cfg.steal,
			ChargeRounds: rounds,
			TraceDispatch: func(tk coord.Task, _ coord.DispatchMeta) {
				sim = append(sim, taskID(w.Graph().Members, rounds, tk))
			},
		})
		if err != nil {
			t.Fatal(err)
		}

		if len(live) != len(sim) {
			t.Fatalf("%s: live dispatched %d tasks, simulator %d", cfg.name, len(live), len(sim))
		}
		for i := range live {
			if live[i] != sim[i] {
				t.Fatalf("%s: dispatch %d diverges — live %s, simulator %s",
					cfg.name, i, live[i], sim[i])
			}
		}
		t.Logf("%s: %d dispatches identical across backends", cfg.name, len(live))
	}
}
