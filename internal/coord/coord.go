// Package coord is the backend-agnostic scheduling core shared by the
// in-process live engine (internal/sched) and the discrete-event
// cluster simulator (internal/cluster). It owns the paper's scheduling
// policy exactly once:
//
//   - a super-coordinator ready queue ordered by (time step, distance of
//     the polymer's closest monomer to a reference monomer, decreasing
//     polymer size), with a final deterministic tie-break on the
//     polymer's monomer tuple so every backend dispatches the same
//     workload in the same order;
//   - dependency tracking over fragment touch sets (a polymer of step t
//     becomes ready when every monomer it touches has advanced to t;
//     H-cap partners are part of the touch set, §V-F);
//   - per-monomer time-step release (a monomer advances the moment all
//     polymers touching it complete), with an optional global barrier
//     for synchronous mode;
//   - the paper's coordinator hierarchy (§VII): group coordinators that
//     receive *batches* of tasks from the super-coordinator — amortising
//     the serialised super-coordinator over Batch tasks — and feed their
//     local workers, with optional work stealing between groups.
//
// Backends drive the policy through the Backend interface (dispatch /
// complete / clock): the live engine's Await blocks on a result
// channel, the simulator's pops its event heap and advances simulated
// time. The Policy itself is a single-threaded state machine; Run
// serialises all calls on the driver goroutine.
package coord

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
)

// Task is one unit of scheduled work at one time step. With
// Options.ChargeRounds == 0 (vacuum MBE) every task is a polymer
// evaluation and Phase is always 0. Under electrostatic embedding the
// step pipelines through phases: Phase r < ChargeRounds is the r-th
// per-monomer charge task (Poly is then a *monomer* index), and Phase
// == ChargeRounds is the polymer-evaluation phase — the phase-1→phase-2
// dependency is a real barrier per step (every polymer of step t waits
// for all of step t's charge rounds).
type Task struct {
	Poly  int32
	Step  int32
	Phase int32
}

// Graph is the static task graph of a fragment workload: one node per
// (polymer, step), with edges induced by the per-polymer monomer
// dependency sets.
type Graph struct {
	// NMono is the number of monomers.
	NMono int
	// Members[pi] lists polymer pi's constituent monomers in ascending
	// order; it doubles as the polymer's canonical identity for
	// deterministic tie-breaking (len(Members[pi]) is the MBE order).
	Members [][]int32
	// Touch[pi] is the full dependency set of polymer pi: its members
	// plus the monomers owning its H-cap partner atoms
	// (fragment.TouchSet).
	Touch [][]int32
	// Touching[mi] lists the polymers whose touch sets contain monomer
	// mi (computed by NewGraph).
	Touching [][]int32
	// Dist[pi] is the distance from polymer pi's closest monomer to the
	// reference monomer — the paper's queue-priority key.
	Dist []float64
}

// NewGraph validates the inputs and computes the monomer→polymer
// reverse index.
func NewGraph(nMono int, members, touch [][]int32, dist []float64) (*Graph, error) {
	if len(members) != len(touch) || len(members) != len(dist) {
		return nil, fmt.Errorf("coord: %d members, %d touch sets, %d priorities — lengths must match",
			len(members), len(touch), len(dist))
	}
	if nMono <= 0 {
		return nil, errors.New("coord: need at least one monomer")
	}
	g := &Graph{NMono: nMono, Members: members, Touch: touch, Dist: dist}
	g.Touching = make([][]int32, nMono)
	for pi, ts := range touch {
		if len(members[pi]) == 0 {
			return nil, fmt.Errorf("coord: polymer %d has no members", pi)
		}
		for _, mi := range ts {
			if mi < 0 || int(mi) >= nMono {
				return nil, fmt.Errorf("coord: polymer %d touches monomer %d outside 0..%d", pi, mi, nMono-1)
			}
			g.Touching[mi] = append(g.Touching[mi], int32(pi))
		}
	}
	return g, nil
}

// NPoly returns the number of polymers.
func (g *Graph) NPoly() int { return len(g.Members) }

// Priorities computes the queue-priority inputs of the paper's ordering
// for nMono monomers with the given centroids: the reference monomer
// (ref if ≥ 0; otherwise the monomer farthest from sysCentroid — "an
// arbitrary fragment towards an extremity") and, for every polymer, the
// distance of its closest member to that reference. Both backends build
// their Graph.Dist through this one function.
func Priorities(nMono int, members [][]int32, centroid func(mono int) [3]float64, sysCentroid [3]float64, ref int) (refMono int, dist []float64) {
	refMono = ref
	if refMono < 0 {
		best := -1.0
		for m := 0; m < nMono; m++ {
			if d := dist3(centroid(m), sysCentroid); d > best {
				best = d
				refMono = m
			}
		}
	}
	refC := centroid(refMono)
	dist = make([]float64, len(members))
	for pi, ms := range members {
		minD := math.Inf(1)
		for _, m := range ms {
			if d := dist3(centroid(int(m)), refC); d < minD {
				minD = d
			}
		}
		dist[pi] = minD
	}
	return refMono, dist
}

func dist3(a, b [3]float64) float64 {
	dx, dy, dz := a[0]-b[0], a[1]-b[1], a[2]-b[2]
	return math.Sqrt(dx*dx + dy*dy + dz*dz)
}

// Options configures a Policy.
type Options struct {
	// Steps is the number of time steps (≥ 1).
	Steps int
	// Workers is the number of backend workers (≥ 1); the policy maps
	// worker w to group w·Groups/Workers (contiguous blocks).
	Workers int
	// Sync inserts a global barrier between time steps instead of the
	// per-monomer release.
	Sync bool
	// Groups is the number of group coordinators; values ≤ 1 (and any
	// value when Workers == 1) collapse to a single group. Groups is
	// clamped to Workers.
	Groups int
	// Batch is the number of tasks transferred per super-coordinator →
	// group-coordinator refill; ≤ 1 means single-task transfers (the
	// flat scheduler's behaviour).
	Batch int
	// Steal lets a group whose queue and the super-coordinator's are
	// both empty steal the lower-priority half of the fullest peer
	// group's queue.
	Steal bool

	// MaxRetries is the per-task failure budget: an attempt that a
	// backend reports as failed (Completion.Err) is re-queued on a
	// surviving worker at most MaxRetries times before the run aborts.
	// 0 keeps the pre-resilience behaviour — the first failure is
	// fatal.
	MaxRetries int
	// Speculate enables straggler re-dispatch: when workers sit idle
	// with nothing ready, the oldest still-running task is dispatched a
	// second time (at most one extra copy per task); the first copy to
	// complete wins and the duplicate completion is dropped.
	Speculate bool

	// ChargeRounds engages the two-phase EE-MBE pipeline: every step
	// first runs ChargeRounds rounds of per-monomer charge tasks
	// (round 0 = vacuum charges, later rounds = SCC refinements, each
	// round a barrier over all monomers), and only then releases the
	// step's polymer evaluations. 0 = vacuum MBE, no charge tasks.
	ChargeRounds int
}

// Hierarchical reports whether the options engage the group-coordinator
// layer (more than one group, or multi-task batches).
func (o Options) Hierarchical() bool { return o.Groups > 1 || o.Batch > 1 }

// DispatchMeta describes the coordination events behind one dispatch;
// cost-modelling backends charge for them.
type DispatchMeta struct {
	// Group is the group coordinator the task was dispatched through.
	Group int
	// Refill, when > 0, is the size of the super→group batch transfer
	// that immediately preceded this dispatch.
	Refill int
	// Stolen, when > 0, is the number of tasks this group just stole
	// from a peer.
	Stolen int
	// Attempt numbers the dispatches of this task: 0 for the first
	// attempt, incremented for every retry and speculative copy.
	// Failure injectors key their deterministic decisions on it.
	Attempt int
	// Speculative marks a straggler re-dispatch: the task is already
	// running elsewhere and this copy races it.
	Speculative bool
}

// Policy is the single-threaded scheduling state machine. All methods
// must be called from one goroutine (Run's driver loop).
type Policy struct {
	g    *Graph
	opts Options

	groups int
	batch  int

	ready taskHeap // super-coordinator priority queue
	local [][]Task // per-group local queues, priority-ordered

	nextStep    []int32 // next step each polymer should enqueue
	monoStep    []int32 // step whose positions are current per monomer
	monoPending []int32 // outstanding polymer results per monomer
	globalMin   int32   // sync-mode barrier front

	chargeRounds int       // charge phases per step (0 = vacuum)
	chargeDone   [][]int32 // [step][round] completed charge tasks
	polyDone     []int32   // completed polymer tasks per step (embedding)
	tasksPerStep int

	remaining int      // tasks not yet completed
	done      []uint64 // completion bitset over task index
	batches   int
	steals    int
}

// NewPolicy creates a policy over g and fills the step-0 ready queue.
func NewPolicy(g *Graph, opts Options) (*Policy, error) {
	if opts.Steps <= 0 {
		return nil, errors.New("coord: need at least one step")
	}
	if opts.Workers <= 0 {
		return nil, fmt.Errorf("coord: worker count %d must be positive", opts.Workers)
	}
	if opts.Groups < 0 {
		return nil, fmt.Errorf("coord: group count %d must not be negative", opts.Groups)
	}
	if opts.Batch < 0 {
		return nil, fmt.Errorf("coord: batch size %d must not be negative", opts.Batch)
	}
	if opts.MaxRetries < 0 {
		return nil, fmt.Errorf("coord: retry budget %d must not be negative", opts.MaxRetries)
	}
	if opts.ChargeRounds < 0 {
		return nil, fmt.Errorf("coord: charge round count %d must not be negative", opts.ChargeRounds)
	}
	p := &Policy{g: g, opts: opts}
	p.groups = opts.Groups
	if p.groups < 1 {
		p.groups = 1
	}
	if p.groups > opts.Workers {
		p.groups = opts.Workers
	}
	p.batch = opts.Batch
	if p.batch < 1 {
		p.batch = 1
	}
	p.ready.p = p
	p.local = make([][]Task, p.groups)
	p.nextStep = make([]int32, g.NPoly())
	p.monoStep = make([]int32, g.NMono)
	p.monoPending = make([]int32, g.NMono)
	for mi := range p.monoPending {
		p.monoPending[mi] = int32(len(g.Touching[mi]))
	}
	p.chargeRounds = opts.ChargeRounds
	p.tasksPerStep = p.chargeRounds*g.NMono + g.NPoly()
	p.chargeDone = make([][]int32, opts.Steps)
	for t := range p.chargeDone {
		p.chargeDone[t] = make([]int32, p.chargeRounds)
	}
	if p.chargeRounds > 0 {
		p.polyDone = make([]int32, opts.Steps)
	}
	p.remaining = p.tasksPerStep * opts.Steps
	p.done = make([]uint64, (p.remaining+63)/64)
	for mi := int32(0); mi < int32(g.NMono) && p.chargeRounds > 0; mi++ {
		heap.Push(&p.ready, Task{Poly: mi, Step: 0, Phase: 0})
	}
	for pi := int32(0); pi < int32(g.NPoly()); pi++ {
		p.tryEnqueue(pi)
	}
	return p, nil
}

// ChargeRounds returns the number of charge phases per step.
func (p *Policy) ChargeRounds() int { return p.chargeRounds }

// isCharge reports whether t is a per-monomer charge task.
func (p *Policy) isCharge(t Task) bool { return int(t.Phase) < p.chargeRounds }

// chargeReady reports whether step t's polymer phase is unblocked:
// every charge round of the step has completed on every monomer.
func (p *Policy) chargeReady(t int32) bool {
	return p.chargeRounds == 0 || p.chargeDone[t][p.chargeRounds-1] == int32(p.g.NMono)
}

// Groups returns the effective group-coordinator count.
func (p *Policy) Groups() int { return p.groups }

// Batch returns the effective super→group batch size.
func (p *Policy) Batch() int { return p.batch }

// Batches returns how many super→group batch transfers happened.
func (p *Policy) Batches() int { return p.batches }

// Steals returns how many inter-group steals happened.
func (p *Policy) Steals() int { return p.steals }

// Done reports whether every task of every step has completed.
func (p *Policy) Done() bool { return p.remaining == 0 }

// taskIndex maps a task to its bit in the completion set (step-major:
// the step's charge rounds first, then its polymers).
func (p *Policy) taskIndex(t Task) int {
	base := int(t.Step) * p.tasksPerStep
	if p.isCharge(t) {
		return base + int(t.Phase)*p.g.NMono + int(t.Poly)
	}
	return base + p.chargeRounds*p.g.NMono + int(t.Poly)
}

// Completed reports whether task t has already completed. Backends use
// it to drop the payload of late duplicate completions (a speculated
// task finishing twice) before the driver sees them.
func (p *Policy) Completed(t Task) bool {
	i := p.taskIndex(t)
	return p.done[i/64]&(1<<(i%64)) != 0
}

// Requeue puts a reclaimed task — a failed attempt, or work stranded on
// an evicted worker — back on the super-coordinator's ready queue. A
// task that already completed (its speculative twin won) is left alone.
func (p *Policy) Requeue(t Task) {
	if p.Completed(t) {
		return
	}
	heap.Push(&p.ready, t)
}

// GroupOf maps a worker to its group coordinator (contiguous blocks).
func (p *Policy) GroupOf(worker int) int { return worker * p.groups / p.opts.Workers }

// less is the total dispatch order: step, then phase (charge rounds
// before the polymer phase), then — for charge tasks — the monomer
// index, or — for polymers — distance to the reference monomer, then
// decreasing polymer size, then the polymer's monomer tuple. Fully
// deterministic and backend-independent.
func (p *Policy) less(a, b Task) bool {
	if a.Step != b.Step {
		return a.Step < b.Step
	}
	if a.Phase != b.Phase {
		return a.Phase < b.Phase
	}
	if p.isCharge(a) {
		return a.Poly < b.Poly
	}
	if da, db := p.g.Dist[a.Poly], p.g.Dist[b.Poly]; da != db {
		return da < db
	}
	ma, mb := p.g.Members[a.Poly], p.g.Members[b.Poly]
	if len(ma) != len(mb) {
		return len(ma) > len(mb)
	}
	for k := range ma {
		if ma[k] != mb[k] {
			return ma[k] < mb[k]
		}
	}
	return false
}

// tryEnqueue pushes every ready step of polymer pi onto the super
// queue.
func (p *Policy) tryEnqueue(pi int32) {
	for p.nextStep[pi] < int32(p.opts.Steps) {
		t := p.nextStep[pi]
		for _, mi := range p.g.Touch[pi] {
			if p.monoStep[mi] < t {
				return
			}
		}
		if p.opts.Sync && p.globalMin < t {
			// Synchronous mode: no polymer of step t launches until
			// every monomer reached step t.
			return
		}
		if !p.chargeReady(t) {
			// Phase barrier: step t's embedding charges are not final.
			return
		}
		heap.Push(&p.ready, Task{Poly: pi, Step: t, Phase: int32(p.chargeRounds)})
		p.nextStep[pi]++
	}
}

// Next picks the next task for the given worker: from its group's local
// queue, refilling the queue with a batch from the super-coordinator
// when empty, or stealing from the fullest peer when the
// super-coordinator is also empty. ok is false when nothing is ready
// for this worker right now.
func (p *Policy) Next(worker int) (t Task, m DispatchMeta, ok bool) {
	gid := p.GroupOf(worker)
	m.Group = gid
	if len(p.local[gid]) == 0 {
		switch {
		case p.ready.Len() > 0:
			k := p.batch
			if k > p.ready.Len() {
				k = p.ready.Len()
			}
			for i := 0; i < k; i++ {
				p.local[gid] = append(p.local[gid], heap.Pop(&p.ready).(Task))
			}
			m.Refill = k
			p.batches++
		case p.opts.Steal && p.groups > 1:
			victim, most := -1, 0
			for g2 := range p.local {
				if g2 != gid && len(p.local[g2]) > most {
					victim, most = g2, len(p.local[g2])
				}
			}
			if victim >= 0 {
				take := (most + 1) / 2
				vq := p.local[victim]
				// Take the lower-priority tail; the victim keeps the
				// head it is about to dispatch.
				p.local[gid] = append(p.local[gid], vq[len(vq)-take:]...)
				p.local[victim] = vq[:len(vq)-take]
				m.Stolen = take
				p.steals++
			}
		}
	}
	q := p.local[gid]
	if len(q) == 0 {
		return Task{}, DispatchMeta{Group: gid}, false
	}
	p.local[gid] = q[1:]
	return q[0], m, true
}

// Complete records that task t finished. A charge task counts toward
// its (step, round) barrier: the last completion of a round enqueues
// the next round, and the last completion of the final round releases
// the step's polymer phase. For a polymer task, every monomer of t's
// touch set whose last outstanding polymer this was fires advanced
// (the live backend integrates the monomer there) and advances,
// releasing newly ready work. Completing a task twice is a no-op (the
// driver drops duplicate completions before calling this, but the
// bitset makes the invariant local).
func (p *Policy) Complete(t Task, advanced func(mono, step int32)) {
	i := p.taskIndex(t)
	if p.done[i/64]&(1<<(i%64)) != 0 {
		return
	}
	p.done[i/64] |= 1 << (i % 64)
	p.remaining--
	if p.isCharge(t) {
		p.chargeDone[t.Step][t.Phase]++
		if p.chargeDone[t.Step][t.Phase] != int32(p.g.NMono) {
			return
		}
		if next := t.Phase + 1; int(next) < p.chargeRounds {
			// Every monomer completed round Phase of this step — and a
			// completed round 0 implies every monomer has reached the
			// step, so all field-site positions exist. Launch the next
			// round wholesale (it is a barrier, not per-monomer).
			for mi := int32(0); mi < int32(p.g.NMono); mi++ {
				heap.Push(&p.ready, Task{Poly: mi, Step: t.Step, Phase: next})
			}
			return
		}
		// Final round done: the step's polymer phase unblocks.
		for pi := int32(0); pi < int32(p.g.NPoly()); pi++ {
			p.tryEnqueue(pi)
		}
		return
	}
	if p.chargeRounds > 0 {
		// Electrostatic embedding globally couples the forces: every
		// polymer's field sites exert forces on *all* monomers, so no
		// monomer's step-t force is complete until every polymer of
		// step t is. Per-monomer release — valid for vacuum MBE, where
		// only the touch set feels a polymer — would integrate early
		// with truncated forces and break NVE conservation. Embedded
		// steps therefore release wholesale.
		p.polyDone[t.Step]++
		if p.polyDone[t.Step] == int32(p.g.NPoly()) {
			for mi := int32(0); mi < int32(p.g.NMono); mi++ {
				p.advanceMono(mi, t.Step, advanced)
			}
		}
		return
	}
	for _, mi := range p.g.Touch[t.Poly] {
		p.monoPending[mi]--
		if p.monoPending[mi] == 0 && p.monoStep[mi] == t.Step {
			p.advanceMono(mi, t.Step, advanced)
		}
	}
}

func (p *Policy) advanceMono(mi, t int32, advanced func(mono, step int32)) {
	if advanced != nil {
		advanced(mi, t)
	}
	p.monoStep[mi] = t + 1
	p.monoPending[mi] = int32(len(p.g.Touching[mi]))
	if p.chargeRounds > 0 && int(t+1) < p.opts.Steps {
		// The monomer's next-step positions exist now, which is all a
		// round-0 (vacuum) charge task needs — later rounds and the
		// step's polymers still wait on their barriers, preserving what
		// asynchrony the embedding allows.
		heap.Push(&p.ready, Task{Poly: mi, Step: t + 1, Phase: 0})
	}
	if p.opts.Sync {
		newMin := p.monoStep[mi]
		for _, s := range p.monoStep {
			if s < newMin {
				newMin = s
			}
		}
		if newMin > p.globalMin {
			p.globalMin = newMin
			for pi := int32(0); pi < int32(p.g.NPoly()); pi++ {
				p.tryEnqueue(pi)
			}
		}
		return
	}
	for _, pi := range p.g.Touching[mi] {
		p.tryEnqueue(pi)
	}
}

// taskHeap is the super-coordinator's priority queue under Policy.less.
type taskHeap struct {
	items []Task
	p     *Policy
}

func (h *taskHeap) Len() int           { return len(h.items) }
func (h *taskHeap) Less(i, j int) bool { return h.p.less(h.items[i], h.items[j]) }
func (h *taskHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *taskHeap) Push(x interface{}) { h.items = append(h.items, x.(Task)) }
func (h *taskHeap) Pop() interface{} {
	old := h.items
	it := old[len(old)-1]
	h.items = old[:len(old)-1]
	return it
}
