package coord

import (
	"context"
	"testing"
)

// chainGraph builds n monomers on a line at unit spacing, each its own
// polymer, plus nearest-neighbour dimers; the reference is monomer 0
// (Dist = distance of the polymer's closest member to monomer 0).
func chainGraph(t *testing.T, n int, dimers bool) *Graph {
	t.Helper()
	var members, touch [][]int32
	var dist []float64
	for i := 0; i < n; i++ {
		members = append(members, []int32{int32(i)})
		touch = append(touch, []int32{int32(i)})
		dist = append(dist, float64(i))
	}
	if dimers {
		for i := 0; i+1 < n; i++ {
			members = append(members, []int32{int32(i), int32(i + 1)})
			touch = append(touch, []int32{int32(i), int32(i + 1)})
			dist = append(dist, float64(i))
		}
	}
	g, err := NewGraph(n, members, touch, dist)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// drain runs the policy serially (one worker, immediate completion) and
// returns the dispatch order.
func drain(t *testing.T, p *Policy) []Task {
	t.Helper()
	var order []Task
	for !p.Done() {
		tk, _, ok := p.Next(0)
		if !ok {
			t.Fatalf("policy stuck with %d tasks outstanding", p.remaining)
		}
		order = append(order, tk)
		p.Complete(tk, nil)
	}
	return order
}

// The dispatch order is total and deterministic: step, then distance,
// then size descending, then the monomer tuple.
func TestPolicyOrderingDeterministic(t *testing.T) {
	g := chainGraph(t, 5, true)
	p, err := NewPolicy(g, Options{Steps: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	order := drain(t, p)
	if len(order) != g.NPoly() {
		t.Fatalf("dispatched %d tasks, want %d", len(order), g.NPoly())
	}
	// Dimer {0,1} (dist 0, size 2) precedes monomer {0} (dist 0, size
	// 1), which precedes everything at dist ≥ 1.
	want := [][]int32{{0, 1}, {0}, {1, 2}, {1}, {2, 3}, {2}, {3, 4}, {3}, {4}}
	for i, tk := range order {
		got := g.Members[tk.Poly]
		if len(got) != len(want[i]) {
			t.Fatalf("dispatch %d: polymer %v, want %v", i, got, want[i])
		}
		for k := range got {
			if got[k] != want[i][k] {
				t.Fatalf("dispatch %d: polymer %v, want %v", i, got, want[i])
			}
		}
	}
}

// Async mode releases a monomer's next step the moment every polymer
// touching it completes; sync mode holds it behind the global barrier.
func TestPerMonomerReleaseVsBarrier(t *testing.T) {
	find := func(g *Graph, want ...int32) int32 {
		for pi, ms := range g.Members {
			if len(ms) != len(want) {
				continue
			}
			match := true
			for k := range ms {
				if ms[k] != want[k] {
					match = false
				}
			}
			if match {
				return int32(pi)
			}
		}
		t.Fatalf("no polymer %v", want)
		return -1
	}
	for _, sync := range []bool{false, true} {
		g := chainGraph(t, 6, true)
		p, err := NewPolicy(g, Options{Steps: 2, Workers: 1, Sync: sync})
		if err != nil {
			t.Fatal(err)
		}
		// The first two dispatches are dimer {0,1} then monomer {0} —
		// the only polymers touching monomer 0. Completing both
		// advances monomer 0 to step 1.
		a, _, _ := p.Next(0)
		b, _, _ := p.Next(0)
		p.Complete(a, nil)
		p.Complete(b, nil)
		m0 := find(g, 0)
		switch {
		case !sync && p.nextStep[m0] != 2:
			t.Errorf("async: monomer 0's step-1 task not released (nextStep=%d, want 2)", p.nextStep[m0])
		case sync && p.nextStep[m0] != 1:
			t.Errorf("sync: monomer 0's step-1 task leaked through the barrier (nextStep=%d, want 1)", p.nextStep[m0])
		}
	}
	// A sync drain never goes back in step.
	g := chainGraph(t, 6, false)
	p, err := NewPolicy(g, Options{Steps: 3, Workers: 1, Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	prev := int32(0)
	for _, tk := range drain(t, p) {
		if tk.Step < prev {
			t.Fatalf("sync mode dispatched step %d after step %d", tk.Step, prev)
		}
		prev = tk.Step
	}
}

// Dependencies defer dispatch: with a dimer chain, monomer i's step-1
// task cannot launch until the dimers touching it complete step 0.
func TestDependencyRelease(t *testing.T) {
	g := chainGraph(t, 4, true)
	p, err := NewPolicy(g, Options{Steps: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	done := map[Task]bool{}
	for !p.Done() {
		tk, _, ok := p.Next(0)
		if !ok {
			t.Fatal("policy stuck")
		}
		if tk.Step == 1 {
			// Every polymer touching tk's touch-set monomers must have
			// completed step 0.
			for _, mi := range g.Touch[tk.Poly] {
				for _, pi := range g.Touching[mi] {
					if !done[Task{Poly: pi, Step: 0}] {
						t.Fatalf("task %+v dispatched before dependency polymer %d finished step 0", tk, pi)
					}
				}
			}
		}
		done[tk] = true
		p.Complete(tk, nil)
	}
}

// Batch refills amortise the super-coordinator: draining through one
// group with Batch=4 moves tasks in ≥4-task transfers while preserving
// the flat dispatch order.
func TestBatchRefillPreservesOrder(t *testing.T) {
	g := chainGraph(t, 8, true)
	flat, err := NewPolicy(g, Options{Steps: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	batched, err := NewPolicy(g, Options{Steps: 2, Workers: 1, Batch: 4})
	if err != nil {
		t.Fatal(err)
	}
	fo, bo := drain(t, flat), drain(t, batched)
	for i := range fo {
		if fo[i] != bo[i] {
			t.Fatalf("dispatch %d: batched %+v, flat %+v", i, bo[i], fo[i])
		}
	}
	if flat.Batches() != len(fo) {
		t.Errorf("flat made %d transfers for %d tasks", flat.Batches(), len(fo))
	}
	if batched.Batches() >= flat.Batches() {
		t.Errorf("batching made %d transfers, flat %d", batched.Batches(), flat.Batches())
	}
}

// Work stealing: when the super-coordinator is empty and one group
// holds a long queue, a starved group steals the lower-priority tail.
func TestWorkStealing(t *testing.T) {
	g := chainGraph(t, 8, false)
	p, err := NewPolicy(g, Options{Steps: 1, Workers: 2, Groups: 2, Batch: 100, Steal: true})
	if err != nil {
		t.Fatal(err)
	}
	// Worker 0 (group 0) grabs everything in one batch.
	t0, m0, ok := p.Next(0)
	if !ok || m0.Refill != 8 {
		t.Fatalf("group 0 refill = %+v ok=%v, want 8-task batch", m0, ok)
	}
	if t0.Poly != 0 {
		t.Errorf("group 0 dispatched polymer %d first, want 0 (closest to reference)", t0.Poly)
	}
	// Worker 1 (group 1) finds the super empty and steals half of what
	// group 0 still holds (7 tasks → 4 stolen from the far tail).
	t1, m1, ok := p.Next(1)
	if !ok {
		t.Fatal("starved group failed to steal")
	}
	if m1.Stolen != 4 {
		t.Errorf("stole %d tasks, want 4", m1.Stolen)
	}
	if g.Dist[t1.Poly] <= g.Dist[t0.Poly] {
		t.Errorf("stolen head dist %.0f not beyond victim head dist %.0f (must take the tail)",
			g.Dist[t1.Poly], g.Dist[t0.Poly])
	}
	if p.Steals() != 1 {
		t.Errorf("Steals() = %d, want 1", p.Steals())
	}
	// No work lost or duplicated.
	seen := map[Task]bool{t0: true, t1: true}
	p.Complete(t0, nil)
	p.Complete(t1, nil)
	for !p.Done() {
		dispatched := false
		for w := 0; w < 2; w++ {
			tk, _, ok := p.Next(w)
			if !ok {
				continue
			}
			if seen[tk] {
				t.Fatalf("task %+v dispatched twice", tk)
			}
			seen[tk] = true
			p.Complete(tk, nil)
			dispatched = true
		}
		if !dispatched {
			t.Fatal("policy stuck")
		}
	}
	if len(seen) != 8 {
		t.Errorf("completed %d tasks, want 8", len(seen))
	}
}

// GroupOf partitions workers into contiguous, balanced blocks.
func TestGroupOf(t *testing.T) {
	g := chainGraph(t, 2, false)
	p, err := NewPolicy(g, Options{Steps: 1, Workers: 8, Groups: 3})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	prev := 0
	for w := 0; w < 8; w++ {
		gid := p.GroupOf(w)
		if gid < prev || gid >= 3 {
			t.Fatalf("worker %d → group %d (prev %d)", w, gid, prev)
		}
		prev = gid
		counts[gid]++
	}
	for gid, c := range counts {
		if c < 2 || c > 3 {
			t.Errorf("group %d has %d workers, want 2..3", gid, c)
		}
	}
	// Groups beyond Workers collapse.
	p2, err := NewPolicy(g, Options{Steps: 1, Workers: 2, Groups: 64})
	if err != nil {
		t.Fatal(err)
	}
	if p2.Groups() != 2 {
		t.Errorf("64 groups over 2 workers = %d effective groups, want 2", p2.Groups())
	}
}

func TestPolicyValidation(t *testing.T) {
	g := chainGraph(t, 2, false)
	if _, err := NewPolicy(g, Options{Steps: 0, Workers: 1}); err == nil {
		t.Error("expected zero-steps error")
	}
	if _, err := NewPolicy(g, Options{Steps: 1, Workers: 0}); err == nil {
		t.Error("expected zero-workers error")
	}
	if _, err := NewPolicy(g, Options{Steps: 1, Workers: 1, Groups: -1}); err == nil {
		t.Error("expected negative-groups error")
	}
	if _, err := NewPolicy(g, Options{Steps: 1, Workers: 1, Batch: -1}); err == nil {
		t.Error("expected negative-batch error")
	}
	if _, err := NewGraph(2, [][]int32{{0}}, [][]int32{{0}, {1}}, []float64{0}); err == nil {
		t.Error("expected length-mismatch error")
	}
	if _, err := NewGraph(1, [][]int32{{0}}, [][]int32{{3}}, []float64{0}); err == nil {
		t.Error("expected out-of-range touch error")
	}
	if _, err := NewGraph(1, [][]int32{{}}, [][]int32{{0}}, []float64{0}); err == nil {
		t.Error("expected empty-polymer error")
	}
}

// Run over a trivial immediate-completion backend: every task completes
// exactly once and onAdvance fires once per (monomer, step).
func TestRunCompletesAllTasks(t *testing.T) {
	g := chainGraph(t, 6, true)
	const steps = 3
	p, err := NewPolicy(g, Options{Steps: steps, Workers: 3, Groups: 2, Batch: 2, Steal: true})
	if err != nil {
		t.Fatal(err)
	}
	var pending []Completion
	completed := map[Task]int{}
	backend := &BackendFuncs{
		NumWorkers: 3,
		DispatchFn: func(w int, tk Task, _ DispatchMeta) {
			pending = append(pending, Completion{Worker: w, Task: tk})
		},
		AwaitFn: func(context.Context) (Completion, error) {
			c := pending[0]
			pending = pending[1:]
			completed[c.Task]++
			return c, nil
		},
	}
	advances := map[[2]int32]int{}
	if err := Run(p, backend, func(mono, step int32) { advances[[2]int32{mono, step}]++ }); err != nil {
		t.Fatal(err)
	}
	if len(completed) != g.NPoly()*steps {
		t.Fatalf("completed %d distinct tasks, want %d", len(completed), g.NPoly()*steps)
	}
	for tk, nTimes := range completed {
		if nTimes != 1 {
			t.Errorf("task %+v completed %d times", tk, nTimes)
		}
	}
	if len(advances) != g.NMono*steps {
		t.Fatalf("%d monomer advances, want %d", len(advances), g.NMono*steps)
	}
}

// Hierarchical knobs never change the work done, only its placement:
// the multiset of dispatched tasks is identical across configurations.
func TestConfigurationsDispatchSameWork(t *testing.T) {
	g := chainGraph(t, 7, true)
	gather := func(opts Options) map[Task]bool {
		p, err := NewPolicy(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[Task]bool{}
		for !p.Done() {
			progressed := false
			for w := 0; w < opts.Workers; w++ {
				tk, _, ok := p.Next(w)
				if !ok {
					continue
				}
				seen[tk] = true
				p.Complete(tk, nil)
				progressed = true
			}
			if !progressed {
				t.Fatal("policy stuck")
			}
		}
		return seen
	}
	base := gather(Options{Steps: 2, Workers: 1})
	for _, opts := range []Options{
		{Steps: 2, Workers: 4, Groups: 2, Batch: 3, Steal: true},
		{Steps: 2, Workers: 4, Groups: 4, Batch: 1, Steal: true, Sync: true},
	} {
		got := gather(opts)
		if len(got) != len(base) {
			t.Fatalf("%+v dispatched %d tasks, flat %d", opts, len(got), len(base))
		}
		for tk := range base {
			if !got[tk] {
				t.Fatalf("%+v missed task %+v", opts, tk)
			}
		}
	}
}
