module github.com/fragmd/fragmd

go 1.22
