package fragmd_test

// Benchmarks regenerating the paper's tables and figures (one benchmark
// per experiment; see DESIGN.md §4 for the index). Run with
//
//	go test -bench=. -benchmem
//
// Full paper-size configurations: cmd/mbebench -full <experiment>.

import (
	"io"
	"testing"

	"github.com/fragmd/fragmd/internal/bench"
)

func runExperiment(b *testing.B, fn func(*bench.Config)) {
	b.Helper()
	if testing.Short() {
		b.Skip("paper-experiment benchmarks are slow; run without -short")
	}
	cfg := &bench.Config{Quick: true, Out: io.Discard}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fn(cfg)
	}
}

func BenchmarkTable1Attributes(b *testing.B)     { runExperiment(b, bench.Table1) }
func BenchmarkTable2Landscape(b *testing.B)      { runExperiment(b, bench.Fig1Table2) }
func BenchmarkTable3GlycineLatency(b *testing.B) { runExperiment(b, bench.Table3) }
func BenchmarkFig3RIHFSpeedup(b *testing.B)      { runExperiment(b, bench.Fig3) }
func BenchmarkTable4GemmVariants(b *testing.B)   { runExperiment(b, bench.Table4) }
func BenchmarkGemmEngines(b *testing.B)          { runExperiment(b, bench.GemmBench) }
func BenchmarkAutotuneAblation(b *testing.B)     { runExperiment(b, bench.AutotuneAblation) }
func BenchmarkFig5Contributions(b *testing.B)    { runExperiment(b, bench.Fig5) }
func BenchmarkFig6Conservation(b *testing.B)     { runExperiment(b, bench.Fig6) }
func BenchmarkAsyncVsSync(b *testing.B)          { runExperiment(b, bench.AsyncAblation) }
func BenchmarkWarmStartAblation(b *testing.B)    { runExperiment(b, bench.WarmStartAblation) }
func BenchmarkFig7StrongScaling(b *testing.B)    { runExperiment(b, bench.Fig7) }
func BenchmarkFig8WeakScaling(b *testing.B)      { runExperiment(b, bench.Fig8) }
func BenchmarkTable5Records(b *testing.B)        { runExperiment(b, bench.Table5) }
